#include "apps/retail_fleet.h"

#include <gtest/gtest.h>

#include "apps/retail_knactor.h"

namespace knactor::apps {
namespace {

using common::Value;

RetailFleetOptions fast_options() {
  RetailFleetOptions options;
  options.shipment_processing = sim::LatencyModel::normal_ms(50.0, 2.0);
  options.payment_processing = sim::LatencyModel::constant_ms(1.0);
  return options;
}

TEST(RetailFleet, ManyOrdersCompleteConcurrently) {
  core::Runtime runtime;
  auto app = build_retail_fleet_app(runtime, fast_options());
  auto orders = app.place_orders_sync(8);
  ASSERT_TRUE(orders.ok()) << orders.error().to_string();
  ASSERT_EQ(orders.value().size(), 8u);
  for (const auto& order : orders.value()) {
    EXPECT_EQ(order.get("status")->as_string(), "shipped");
    EXPECT_NE(order.get("trackingID"), nullptr);
    EXPECT_NE(order.get("paymentID"), nullptr);
    EXPECT_NE(order.get("shippingCost"), nullptr);
  }
}

TEST(RetailFleet, PerOrderPolicyDecisions) {
  core::Runtime runtime;
  auto app = build_retail_fleet_app(runtime, fast_options());
  ASSERT_TRUE(app.place_orders_sync(4).ok());
  // Odd ids are cheap (ground), even ids expensive (air).
  EXPECT_EQ(app.shipping_store->peek("order/1")->data->get("method")->as_string(),
            "ground");
  EXPECT_EQ(app.shipping_store->peek("order/2")->data->get("method")->as_string(),
            "air");
  EXPECT_EQ(app.shipping_store->peek("order/3")->data->get("method")->as_string(),
            "ground");
  EXPECT_EQ(app.shipping_store->peek("order/4")->data->get("method")->as_string(),
            "air");
}

TEST(RetailFleet, DistinctTrackingAndPaymentIds) {
  core::Runtime runtime;
  auto app = build_retail_fleet_app(runtime, fast_options());
  auto orders = app.place_orders_sync(6);
  ASSERT_TRUE(orders.ok());
  std::set<std::string> tracking;
  std::set<std::string> payments;
  for (const auto& order : orders.value()) {
    tracking.insert(order.get("trackingID")->as_string());
    payments.insert(order.get("paymentID")->as_string());
  }
  EXPECT_EQ(tracking.size(), 6u);
  EXPECT_EQ(payments.size(), 6u);
}

TEST(RetailFleet, ConcurrentOrdersOverlapInTime) {
  // N concurrent orders finish in ~one shipment time, not N of them: the
  // pipeline really is parallel.
  core::Runtime runtime;
  RetailFleetOptions options = fast_options();
  options.shipment_processing = sim::LatencyModel::constant_ms(100.0);
  auto app = build_retail_fleet_app(runtime, options);
  sim::SimTime t0 = runtime.clock().now();
  ASSERT_TRUE(app.place_orders_sync(10).ok());
  sim::SimTime elapsed = runtime.clock().now() - t0;
  EXPECT_LT(elapsed, sim::from_ms(400.0));   // not 10 x 100 ms
  EXPECT_GT(elapsed, sim::from_ms(100.0));   // but at least one shipment
}

TEST(RetailFleet, SecondWaveAfterFirst) {
  core::Runtime runtime;
  auto app = build_retail_fleet_app(runtime, fast_options());
  ASSERT_TRUE(app.place_orders_sync(3).ok());
  EXPECT_EQ(app.shipped_count(), 3u);
  // More orders arrive later; earlier ones stay shipped.
  for (int i = 4; i <= 5; ++i) {
    (void)app.checkout_store->put_sync(
        "customer", "order/" + std::to_string(i), sample_order());
  }
  runtime.run_until_idle();
  EXPECT_EQ(app.shipped_count(), 5u);
}

TEST(RetailFleet, ApiserverProfileAlsoWorks) {
  core::Runtime runtime;
  RetailFleetOptions options = fast_options();
  options.de_profile = de::ObjectDeProfile::apiserver();
  auto app = build_retail_fleet_app(runtime, options);
  auto orders = app.place_orders_sync(3);
  ASSERT_TRUE(orders.ok()) << orders.error().to_string();
  EXPECT_EQ(app.shipped_count(), 3u);
}

}  // namespace
}  // namespace knactor::apps
