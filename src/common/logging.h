// Minimal leveled logging. Off by default in tests/benches; examples enable
// info level to narrate what the framework is doing.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace knactor::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);
  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace knactor::common

#define KN_LOG(level_enum)                                      \
  if (::knactor::common::Log::level() <= (level_enum))          \
  ::knactor::common::detail::LogLine(level_enum)

#define KN_DEBUG KN_LOG(::knactor::common::LogLevel::kDebug)
#define KN_INFO KN_LOG(::knactor::common::LogLevel::kInfo)
#define KN_WARN KN_LOG(::knactor::common::LogLevel::kWarn)
#define KN_ERROR KN_LOG(::knactor::common::LogLevel::kError)
