// Fleet composition: many orders at once through fan-out DXG nodes
// (`S.* / $for: C order/`). The same three-service exchange as Fig. 6, but
// set-to-set — every `order/<id>` object in Checkout drives its own
// shipment and charge, concurrently.
#include <cstdio>

#include "apps/retail_fleet.h"
#include "common/json.h"

using namespace knactor;

int main() {
  core::Runtime runtime;
  apps::RetailFleetApp app = apps::build_retail_fleet_app(runtime);
  if (app.integrator == nullptr) return 1;

  const int kOrders = 12;
  std::printf("placing %d orders at once...\n", kOrders);
  sim::SimTime t0 = runtime.clock().now();
  auto orders = app.place_orders_sync(kOrders);
  if (!orders.ok()) {
    std::fprintf(stderr, "fleet failed: %s\n",
                 orders.error().to_string().c_str());
    return 1;
  }
  double makespan = sim::to_ms(runtime.clock().now() - t0);

  std::printf("%-10s %-8s %-8s %-12s %-10s\n", "order", "status", "method",
              "tracking", "payment");
  for (int i = 1; i <= kOrders; ++i) {
    const de::StateObject* order =
        app.checkout_store->peek("order/" + std::to_string(i));
    const de::StateObject* shipment =
        app.shipping_store->peek("order/" + std::to_string(i));
    std::printf("%-10s %-8s %-8s %-12s %-10s\n",
                ("order/" + std::to_string(i)).c_str(),
                order->data->get("status")->as_string().c_str(),
                shipment->data->get("method")->as_string().c_str(),
                order->data->get("trackingID")->as_string().c_str(),
                order->data->get("paymentID")->as_string().c_str());
  }
  std::printf("\nall %d orders shipped in %.0f ms of simulated time —\n"
              "about one shipment's worth (%0.f ms/order amortized).\n",
              kOrders, makespan, makespan / kOrders);
  std::printf("integrator passes: %llu, fields written: %llu\n",
              static_cast<unsigned long long>(app.integrator->stats().passes),
              static_cast<unsigned long long>(
                  app.integrator->stats().fields_written));
  return 0;
}
