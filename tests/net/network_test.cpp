#include "net/network.h"

#include <gtest/gtest.h>

namespace knactor::net {
namespace {

using common::Value;

class NetworkTest : public ::testing::Test {
 protected:
  sim::VirtualClock clock_;
  SimNetwork net_{clock_};
};

TEST_F(NetworkTest, DeliversToHandlerByType) {
  net_.add_node("a");
  net_.add_node("b");
  std::string got;
  net_.set_handler("b", "ping", [&](const Message& m) {
    got = m.payload.get("x")->as_string();
  });
  Message m;
  m.src = "a";
  m.dst = "b";
  m.type = "ping";
  m.payload = Value::object({{"x", "hello"}});
  ASSERT_TRUE(net_.send(std::move(m)).ok());
  clock_.run_all();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(net_.stats().messages_delivered, 1u);
}

TEST_F(NetworkTest, UnknownNodesRejected) {
  net_.add_node("a");
  Message m;
  m.src = "a";
  m.dst = "ghost";
  EXPECT_FALSE(net_.send(std::move(m)).ok());
  Message m2;
  m2.src = "ghost";
  m2.dst = "a";
  EXPECT_FALSE(net_.send(std::move(m2)).ok());
}

TEST_F(NetworkTest, MissingHandlerCountsDropped) {
  net_.add_node("a");
  net_.add_node("b");
  Message m;
  m.src = "a";
  m.dst = "b";
  m.type = "nobody-listens";
  ASSERT_TRUE(net_.send(std::move(m)).ok());
  clock_.run_all();
  EXPECT_EQ(net_.stats().dropped_no_handler, 1u);
  EXPECT_EQ(net_.stats().dropped_partition, 0u);
  EXPECT_EQ(net_.stats().messages_dropped(), 1u);
  EXPECT_EQ(net_.stats().messages_delivered, 0u);
}

TEST_F(NetworkTest, CatchAllHandler) {
  net_.add_node("a");
  net_.add_node("b");
  int got = 0;
  net_.set_handler("b", "", [&](const Message&) { ++got; });
  for (const char* type : {"x", "y"}) {
    Message m;
    m.src = "a";
    m.dst = "b";
    m.type = type;
    ASSERT_TRUE(net_.send(std::move(m)).ok());
  }
  clock_.run_all();
  EXPECT_EQ(got, 2);
}

TEST_F(NetworkTest, LatencyCharged) {
  net_.add_node("a");
  net_.add_node("b");
  net_.set_link_latency("a", "b", sim::LatencyModel::constant_ms(3.0));
  sim::SimTime delivered_at = -1;
  net_.set_handler("b", "t",
                   [&](const Message&) { delivered_at = clock_.now(); });
  Message m;
  m.src = "a";
  m.dst = "b";
  m.type = "t";
  ASSERT_TRUE(net_.send(std::move(m)).ok());
  clock_.run_all();
  EXPECT_EQ(delivered_at, sim::from_ms(3.0));
}

TEST_F(NetworkTest, DirectionalLinkLatency) {
  net_.add_node("a");
  net_.add_node("b");
  net_.set_link_latency("a", "b", sim::LatencyModel::constant_ms(5.0));
  net_.set_link_latency("b", "a", sim::LatencyModel::constant_ms(1.0));
  sim::SimTime ab = -1;
  sim::SimTime ba = -1;
  net_.set_handler("b", "t", [&](const Message&) { ab = clock_.now(); });
  net_.set_handler("a", "t", [&](const Message&) { ba = clock_.now(); });
  Message m1;
  m1.src = "a";
  m1.dst = "b";
  m1.type = "t";
  (void)net_.send(std::move(m1));
  Message m2;
  m2.src = "b";
  m2.dst = "a";
  m2.type = "t";
  (void)net_.send(std::move(m2));
  clock_.run_all();
  EXPECT_EQ(ab, sim::from_ms(5.0));
  EXPECT_EQ(ba, sim::from_ms(1.0));
}

TEST_F(NetworkTest, SelfSendWithoutLinkIsImmediate) {
  net_.add_node("a");
  bool got = false;
  net_.set_handler("a", "t", [&](const Message&) { got = true; });
  Message m;
  m.src = "a";
  m.dst = "a";
  m.type = "t";
  (void)net_.send(std::move(m));
  clock_.run_all();
  EXPECT_TRUE(got);
  EXPECT_EQ(clock_.now(), 0);
}

TEST_F(NetworkTest, PartitionDropsBothDirections) {
  net_.add_node("a");
  net_.add_node("b");
  int got = 0;
  net_.set_handler("a", "t", [&](const Message&) { ++got; });
  net_.set_handler("b", "t", [&](const Message&) { ++got; });
  net_.set_partitioned("a", "b", true);
  for (auto [src, dst] : {std::pair{"a", "b"}, std::pair{"b", "a"}}) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = "t";
    ASSERT_TRUE(net_.send(std::move(m)).ok());  // fire-and-forget semantics
  }
  clock_.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net_.stats().dropped_partition, 2u);
  EXPECT_EQ(net_.stats().dropped_no_handler, 0u);
  EXPECT_EQ(net_.stats().messages_dropped(), 2u);

  net_.set_partitioned("a", "b", false);
  Message m;
  m.src = "a";
  m.dst = "b";
  m.type = "t";
  (void)net_.send(std::move(m));
  clock_.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, BandwidthAddsTransferTime) {
  net_.add_node("a");
  net_.add_node("b");
  net_.set_link_latency("a", "b", sim::LatencyModel::constant_ms(1.0));
  net_.set_bandwidth(1'000'000);  // 1 MB/s
  sim::SimTime delivered_at = -1;
  net_.set_handler("b", "t",
                   [&](const Message&) { delivered_at = clock_.now(); });
  Message m;
  m.src = "a";
  m.dst = "b";
  m.type = "t";
  m.bytes = 100'000;  // 0.1s at 1MB/s
  (void)net_.send(std::move(m));
  clock_.run_all();
  EXPECT_EQ(delivered_at, sim::from_ms(1.0) + sim::from_ms(100.0));
}

TEST_F(NetworkTest, BytesEstimatedFromPayload) {
  net_.add_node("a");
  net_.add_node("b");
  net_.set_handler("b", "t", [](const Message&) {});
  Message m;
  m.src = "a";
  m.dst = "b";
  m.type = "t";
  m.payload = Value::object({{"blob", std::string(500, 'x')}});
  (void)net_.send(std::move(m));
  EXPECT_GT(net_.stats().bytes_sent, 500u);
}

TEST_F(NetworkTest, StatsCountSends) {
  net_.add_node("a");
  net_.add_node("b");
  net_.set_handler("b", "t", [](const Message&) {});
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.src = "a";
    m.dst = "b";
    m.type = "t";
    (void)net_.send(std::move(m));
  }
  clock_.run_all();
  EXPECT_EQ(net_.stats().messages_sent, 5u);
  EXPECT_EQ(net_.stats().messages_delivered, 5u);
}

TEST_F(NetworkTest, FaultPlanLossDropsAndRecords) {
  net_.add_node("a");
  net_.add_node("b");
  int got = 0;
  net_.set_handler("b", "t", [&](const Message&) { ++got; });
  net_.set_fault_plan(sim::FaultPlan{}.with_seed(7).with_loss(1.0));
  Message m;
  m.src = "a";
  m.dst = "b";
  m.type = "t";
  ASSERT_TRUE(net_.send(std::move(m)).ok());
  clock_.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net_.stats().dropped_fault, 1u);
  ASSERT_EQ(net_.fault_records().size(), 1u);
  EXPECT_EQ(net_.fault_records()[0].kind, sim::FaultKind::kLoss);
  EXPECT_EQ(net_.fault_records()[0].src, "a");
  EXPECT_EQ(net_.fault_records()[0].dst, "b");
}

TEST_F(NetworkTest, FaultPlanDuplicateDeliversTwice) {
  net_.add_node("a");
  net_.add_node("b");
  int got = 0;
  net_.set_handler("b", "t", [&](const Message&) { ++got; });
  net_.set_fault_plan(sim::FaultPlan{}.with_seed(7).with_duplication(1.0));
  Message m;
  m.src = "a";
  m.dst = "b";
  m.type = "t";
  ASSERT_TRUE(net_.send(std::move(m)).ok());
  clock_.run_all();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net_.stats().duplicated_fault, 1u);
  EXPECT_EQ(net_.stats().messages_delivered, 2u);
}

TEST_F(NetworkTest, FlapWindowDropsDuringAndHealsAfter) {
  net_.add_node("a");
  net_.add_node("b");
  int got = 0;
  net_.set_handler("b", "t", [&](const Message&) { ++got; });
  net_.set_fault_plan(sim::FaultPlan{}.add_flap(
      "a", "b", sim::from_ms(1.0), sim::from_ms(10.0)));

  auto send_at = [&](double ms) {
    clock_.schedule_at(sim::from_ms(ms), [&] {
      Message m;
      m.src = "a";
      m.dst = "b";
      m.type = "t";
      (void)net_.send(std::move(m));
    });
  };
  send_at(0.0);   // before the flap: delivered
  send_at(5.0);   // inside the flap: dropped
  send_at(20.0);  // after the flap heals: delivered
  clock_.run_all();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net_.stats().dropped_fault, 1u);
  ASSERT_EQ(net_.fault_records().size(), 1u);
  EXPECT_EQ(net_.fault_records()[0].kind, sim::FaultKind::kLinkDown);
}

TEST_F(NetworkTest, FaultObserverSeesEveryInjection) {
  net_.add_node("a");
  net_.add_node("b");
  net_.set_handler("b", "t", [](const Message&) {});
  std::vector<std::string> seen;
  net_.set_fault_observer(
      [&](const sim::FaultRecord& r) { seen.push_back(r.to_string()); });
  net_.set_fault_plan(sim::FaultPlan{}.with_seed(3).with_loss(1.0));
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.src = "a";
    m.dst = "b";
    m.type = "t";
    (void)net_.send(std::move(m));
  }
  clock_.run_all();
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(net_.fault_records().size(), 3u);
}

// Same seed + same traffic → bit-identical fault schedule.
TEST(FaultDeterminismTest, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    sim::VirtualClock clock;
    SimNetwork net(clock);
    net.add_node("a");
    net.add_node("b");
    net.set_handler("b", "t", [](const Message&) {});
    sim::FaultPlan::RandomOptions opts;
    opts.flap_links = {{"a", "b"}};
    net.set_fault_plan(sim::FaultPlan::random(seed, opts));
    const std::string src = "a", dst = "b", type = "t";
    for (int i = 0; i < 200; ++i) {
      Message m;
      m.src = src;
      m.dst = dst;
      m.type = type;
      (void)net.send(std::move(m));
      clock.run_all();
    }
    std::string schedule;
    for (const auto& rec : net.fault_records()) {
      schedule += rec.to_string();
      schedule += '\n';
    }
    return schedule;
  };
  for (std::uint64_t seed : {1ull, 42ull, 9999ull}) {
    const auto first = run(seed);
    EXPECT_EQ(first, run(seed)) << "seed " << seed;
    EXPECT_FALSE(first.empty()) << "seed " << seed;
  }
}

TEST(FaultPlanTest, RandomPlanWindowsInsideHorizon) {
  sim::FaultPlan::RandomOptions opts;
  opts.horizon = sim::kSecond;
  opts.crash_targets = {"x", "y"};
  opts.flap_links = {{"a", "b"}};
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto plan = sim::FaultPlan::random(seed, opts);
    EXPECT_EQ(plan.seed, seed);
    EXPECT_LE(plan.links.loss, opts.max_loss);
    EXPECT_LE(plan.links.duplicate, opts.max_duplicate);
    EXPECT_LE(plan.links.reorder, opts.max_reorder);
    for (const auto& w : plan.flaps) {
      EXPECT_GE(w.start, 0);
      EXPECT_LT(w.start, w.end);
    }
    for (const auto& w : plan.crashes) {
      EXPECT_GE(w.start, 0);
      EXPECT_LT(w.start, w.end);
    }
    EXPECT_LE(plan.last_window_end(), opts.horizon + opts.max_window);
  }
}

}  // namespace
}  // namespace knactor::net
