// Recursive-descent / precedence-climbing parser for the DXG expression
// language. Grammar (loosely Python's expression subset):
//
//   expr     := or ("if" or "else" expr)?          -- Python conditional
//   or       := and ("or" and)*
//   and      := not ("and" not)*
//   not      := "not" not | cmp
//   cmp      := add (("=="|"!="|"<"|"<="|">"|">="|"in"|"not" "in") add)*
//   add      := mul (("+"|"-") mul)*
//   mul      := pow (("*"|"/"|"%"|"//") pow)*
//   pow      := unary ("**" pow)?
//   unary    := ("-"|"+") unary | postfix
//   postfix  := primary ("." IDENT | "(" args ")" | "[" expr "]")*
//   primary  := NUMBER | STRING | "True" | "False" | "None" | IDENT
//            | "(" expr ")" | listlit | listcomp | dictlit
#pragma once

#include <string_view>

#include "common/result.h"
#include "expr/ast.h"

namespace knactor::expr {

/// Parses expression text into an AST.
common::Result<NodePtr> parse(std::string_view text);

}  // namespace knactor::expr
