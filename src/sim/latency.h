// Latency models: every simulated component (network link, DE backend,
// external API) draws per-operation latency from one of these models.
// Calibration values for the Table 2 reproduction live in
// bench/bench_table2.cpp and apps/latency_profiles.h.
#pragma once

#include <algorithm>

#include "sim/clock.h"
#include "sim/random.h"

namespace knactor::sim {

/// Latency distribution: constant, uniform, or truncated normal.
class LatencyModel {
 public:
  /// Zero latency (useful for logic-only tests).
  LatencyModel() = default;

  static LatencyModel constant(SimTime value) {
    LatencyModel m;
    m.kind_ = Kind::kConstant;
    m.a_ = value;
    return m;
  }
  static LatencyModel constant_ms(double ms) { return constant(from_ms(ms)); }

  static LatencyModel uniform(SimTime lo, SimTime hi) {
    LatencyModel m;
    m.kind_ = Kind::kUniform;
    m.a_ = lo;
    m.b_ = hi;
    return m;
  }
  static LatencyModel uniform_ms(double lo_ms, double hi_ms) {
    return uniform(from_ms(lo_ms), from_ms(hi_ms));
  }

  /// Truncated normal: negative draws clamp to zero.
  static LatencyModel normal(SimTime mean, SimTime stddev) {
    LatencyModel m;
    m.kind_ = Kind::kNormal;
    m.a_ = mean;
    m.b_ = stddev;
    return m;
  }
  static LatencyModel normal_ms(double mean_ms, double stddev_ms) {
    return normal(from_ms(mean_ms), from_ms(stddev_ms));
  }

  [[nodiscard]] SimTime sample(Rng& rng) const {
    switch (kind_) {
      case Kind::kZero:
        return 0;
      case Kind::kConstant:
        return a_;
      case Kind::kUniform:
        return a_ + static_cast<SimTime>(
                        rng.uniform(0.0, static_cast<double>(b_ - a_)));
      case Kind::kNormal:
        return std::max<SimTime>(
            0, static_cast<SimTime>(rng.normal(static_cast<double>(a_),
                                               static_cast<double>(b_))));
    }
    return 0;
  }

  /// Expected value (mean) of the distribution, for documentation/benches.
  [[nodiscard]] SimTime mean() const {
    switch (kind_) {
      case Kind::kZero: return 0;
      case Kind::kConstant: return a_;
      case Kind::kUniform: return (a_ + b_) / 2;
      case Kind::kNormal: return a_;
    }
    return 0;
  }

 private:
  enum class Kind { kZero, kConstant, kUniform, kNormal };
  Kind kind_ = Kind::kZero;
  SimTime a_ = 0;
  SimTime b_ = 0;
};

}  // namespace knactor::sim
