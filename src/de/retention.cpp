#include "de/retention.h"

#include <vector>

#include "common/logging.h"

namespace knactor::de {

void RetentionManager::set_policy(const std::string& store,
                                  RetentionPolicy policy) {
  policies_[store] = policy;
}

void RetentionManager::claim(const std::string& store, const std::string& key,
                             const std::string& consumer) {
  ++stats_.claims;
  ++usage_[{store, key}].holders[consumer];
}

void RetentionManager::release(const std::string& store,
                               const std::string& key,
                               const std::string& consumer, bool done) {
  auto it = usage_.find({store, key});
  if (it == usage_.end()) return;
  ++stats_.releases;
  auto hit = it->second.holders.find(consumer);
  if (hit != it->second.holders.end()) {
    if (--hit->second == 0) it->second.holders.erase(hit);
  }
  if (done) it->second.processed = true;
}

std::uint64_t RetentionManager::refcount(const std::string& store,
                                         const std::string& key) const {
  auto it = usage_.find({store, key});
  if (it == usage_.end()) return 0;
  std::uint64_t total = 0;
  for (const auto& [consumer, count] : it->second.holders) total += count;
  return total;
}

std::size_t RetentionManager::sweep(const std::string& principal) {
  ++stats_.sweeps;
  std::size_t collected = 0;
  for (const auto& [store_name, policy] : policies_) {
    if (policy.kind == RetentionPolicy::Kind::kKeepForever) continue;
    ObjectStore* store = de_.store(store_name);
    if (store == nullptr) continue;
    // Collect eligible keys first; deletion mutates the store.
    auto listing = store->list_sync(principal, "");
    if (!listing.ok()) {
      KN_WARN << "retention: cannot list " << store_name << ": "
              << listing.error().to_string();
      continue;
    }
    std::vector<std::string> eligible;
    for (const auto& obj : listing.value()) {
      auto uit = usage_.find({store_name, obj.key});
      bool has_refs = uit != usage_.end() && !uit->second.holders.empty();
      if (has_refs) continue;
      if (policy.kind == RetentionPolicy::Kind::kRefCount) {
        if (uit == usage_.end() || !uit->second.processed) continue;
        eligible.push_back(obj.key);
      } else {  // kTtl
        if (de_.clock().now() - obj.updated_at >= policy.ttl) {
          eligible.push_back(obj.key);
        }
      }
    }
    for (const auto& key : eligible) {
      auto status = store->remove_sync(principal, key);
      if (status.ok()) {
        ++collected;
        ++stats_.collected;
        usage_.erase({store_name, key});
      }
    }
  }
  return collected;
}

void RetentionManager::register_with_kernel(const std::string& principal) {
  de_.kernel().add_gc_hook([this, principal] { return sweep(principal); });
}

void RetentionManager::start_periodic_sweep(const std::string& principal,
                                            sim::SimTime interval) {
  periodic_ = true;
  de_.clock().schedule_after(interval, [this, principal, interval]() {
    if (!periodic_) return;
    sweep(principal);
    start_periodic_sweep(principal, interval);
  });
}

}  // namespace knactor::de
