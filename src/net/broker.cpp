#include "net/broker.h"

#include "common/logging.h"
#include "common/strings.h"

namespace knactor::net {

using common::Error;
using common::Result;
using common::Value;

Broker::Broker(SimNetwork& network, std::string node)
    : network_(network), node_(std::move(node)) {
  network_.add_node(node_);
  network_.set_handler(node_, "pubsub.publish",
                       [this](const Message& msg) { on_message(msg); });
  network_.set_handler(node_, "pubsub.ack",
                       [this](const Message& msg) { on_ack(msg); });
}

void Broker::subscribe(const std::string& topic,
                       const std::string& subscriber_node, Handler handler) {
  network_.add_node(subscriber_node);
  // The broker owns a per-node dispatch handler: one "pubsub.deliver"
  // message per (publish, subscriber node), dispatched locally to every
  // matching subscription registered for that node.
  network_.set_handler(subscriber_node, "pubsub.deliver",
                       [this, subscriber_node](const Message& msg) {
                         on_deliver(subscriber_node, msg);
                       });
  Subscription sub{subscriber_node, std::move(handler)};
  if (common::ends_with(topic, "/#")) {
    prefix_subs_[topic.substr(0, topic.size() - 2)].push_back(std::move(sub));
    return;
  }
  subs_[topic].push_back(std::move(sub));
  if (retain_) {
    auto it = retained_.find(topic);
    if (it != retained_.end()) {
      deliver(topic, it->second, subscriber_node);
    }
  }
}

void Broker::unsubscribe(const std::string& topic,
                         const std::string& subscriber_node) {
  auto drop = [&](std::vector<Subscription>& list) {
    std::erase_if(list,
                  [&](const Subscription& s) { return s.node == subscriber_node; });
  };
  if (common::ends_with(topic, "/#")) {
    auto it = prefix_subs_.find(topic.substr(0, topic.size() - 2));
    if (it != prefix_subs_.end()) drop(it->second);
    return;
  }
  auto it = subs_.find(topic);
  if (it != subs_.end()) drop(it->second);
}

Result<std::size_t> Broker::publish(const std::string& publisher_node,
                                    const std::string& topic, Value message) {
  if (!network_.has_node(publisher_node)) {
    return Error::not_found("broker: unknown publisher node '" +
                            publisher_node + "'");
  }
  Message msg;
  msg.src = publisher_node;
  msg.dst = node_;
  msg.type = "pubsub.publish";
  Value payload = Value::object();
  payload.set("topic", Value(topic));
  payload.set("message", std::move(message));
  msg.payload = std::move(payload);
  KN_TRY(network_.send(std::move(msg)));
  return match(topic).size();
}

std::vector<const Broker::Subscription*> Broker::match(
    const std::string& topic) const {
  std::vector<const Subscription*> out;
  auto it = subs_.find(topic);
  if (it != subs_.end()) {
    for (const auto& s : it->second) out.push_back(&s);
  }
  for (const auto& [prefix, list] : prefix_subs_) {
    if (common::starts_with(topic, prefix)) {
      for (const auto& s : list) out.push_back(&s);
    }
  }
  return out;
}

void Broker::deliver(const std::string& topic, const Value& message,
                     const std::string& subscriber_node) {
  if (retry_.enabled()) {
    const std::uint64_t id = next_delivery_id_++;
    PendingDelivery pd;
    pd.topic = topic;
    pd.message = message;
    pd.node = subscriber_node;
    pd.first_sent = network_.clock().now();
    pending_[id] = std::move(pd);
    send_delivery(id);
    return;
  }
  Message msg;
  msg.src = node_;
  msg.dst = subscriber_node;
  msg.type = "pubsub.deliver";
  Value payload = Value::object();
  payload.set("topic", Value(topic));
  payload.set("message", message);
  msg.payload = std::move(payload);
  auto sent = network_.send(std::move(msg));
  if (!sent.ok()) {
    KN_WARN << "broker: failed to deliver to " << subscriber_node << ": "
            << sent.error().to_string();
  }
}

void Broker::send_delivery(std::uint64_t delivery_id) {
  auto it = pending_.find(delivery_id);
  if (it == pending_.end()) return;
  const PendingDelivery& pd = it->second;
  Message msg;
  msg.src = node_;
  msg.dst = pd.node;
  msg.type = "pubsub.deliver";
  Value payload = Value::object();
  payload.set("topic", Value(pd.topic));
  payload.set("message", pd.message);
  payload.set("delivery_id", Value(static_cast<std::int64_t>(delivery_id)));
  msg.payload = std::move(payload);
  (void)network_.send(std::move(msg));
  arm_delivery_timeout(delivery_id, it->second.epoch);
}

void Broker::arm_delivery_timeout(std::uint64_t delivery_id, int epoch) {
  network_.clock().schedule_after(delivery_timeout_, [this, delivery_id,
                                                      epoch]() {
    auto it = pending_.find(delivery_id);
    if (it == pending_.end() || it->second.epoch != epoch) return;
    PendingDelivery& pd = it->second;
    const sim::SimTime elapsed = network_.clock().now() - pd.first_sent;
    if (retry_.should_retry(pd.attempts, elapsed)) {
      const sim::SimTime backoff = retry_.backoff(pd.attempts, retry_rng_);
      ++pd.attempts;
      ++pd.epoch;
      ++redeliveries_;
      const int next_epoch = pd.epoch;
      network_.clock().schedule_after(
          backoff, [this, delivery_id, next_epoch]() {
            auto rit = pending_.find(delivery_id);
            if (rit == pending_.end() || rit->second.epoch != next_epoch) {
              return;
            }
            send_delivery(delivery_id);
          });
      return;
    }
    ++delivery_failures_;
    KN_WARN << "broker: delivery " << delivery_id << " to " << pd.node
            << " failed after " << pd.attempts << " attempts";
    pending_.erase(it);
  });
}

void Broker::mark_seen(const std::string& subscriber_node,
                       std::uint64_t delivery_id) {
  auto& ids = seen_[subscriber_node];
  auto& order = seen_order_[subscriber_node];
  if (ids.insert(delivery_id).second) {
    order.push_back(delivery_id);
    while (order.size() > kSeenCap) {
      ids.erase(order.front());
      order.pop_front();
    }
  }
}

void Broker::on_deliver(const std::string& subscriber_node,
                        const Message& msg) {
  const Value* topic_v = msg.payload.get("topic");
  const Value* message_v = msg.payload.get("message");
  if (topic_v == nullptr || message_v == nullptr) return;
  const Value* delivery_id_v = msg.payload.get("delivery_id");
  if (delivery_id_v != nullptr) {
    const auto id = static_cast<std::uint64_t>(delivery_id_v->as_int());
    // Always (re-)ack — the previous ack may itself have been lost.
    Message ack;
    ack.src = subscriber_node;
    ack.dst = node_;
    ack.type = "pubsub.ack";
    Value payload = Value::object();
    payload.set("delivery_id", Value(static_cast<std::int64_t>(id)));
    ack.payload = std::move(payload);
    (void)network_.send(std::move(ack));

    auto sit = seen_.find(subscriber_node);
    if (sit != seen_.end() && sit->second.count(id) != 0) {
      ++duplicates_suppressed_;
      return;  // redelivered duplicate: handler already ran
    }
    mark_seen(subscriber_node, id);
  }
  for (const Subscription* sub : match(topic_v->as_string())) {
    if (sub->node == subscriber_node) {
      sub->handler(topic_v->as_string(), *message_v);
    }
  }
}

void Broker::on_ack(const Message& msg) {
  const Value* delivery_id_v = msg.payload.get("delivery_id");
  if (delivery_id_v == nullptr) return;
  pending_.erase(static_cast<std::uint64_t>(delivery_id_v->as_int()));
}

void Broker::on_message(const Message& msg) {
  if (msg.type != "pubsub.publish") return;
  const Value* topic = msg.payload.get("topic");
  const Value* message = msg.payload.get("message");
  if (topic == nullptr || message == nullptr) return;
  if (retain_) retained_[topic->as_string()] = *message;
  // One network message per distinct subscriber node; local dispatch fans
  // out to every matching subscription on that node.
  std::vector<std::string> nodes;
  for (const Subscription* sub : match(topic->as_string())) {
    ++routed_;
    if (std::find(nodes.begin(), nodes.end(), sub->node) == nodes.end()) {
      nodes.push_back(sub->node);
    }
  }
  for (const auto& node : nodes) {
    deliver(topic->as_string(), *message, node);
  }
}

}  // namespace knactor::net
