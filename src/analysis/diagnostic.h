// Unified diagnostics for the Knactor static analyzer (§5 "framework
// support for composition"). Every analysis pass — DXG graph checks,
// expression type inference, Sync pipeline schema flow, RBAC pre-flight —
// reports through this one type so `knctl lint` can render a single
// located, machine-readable stream.
//
// Diagnostic codes are stable KN### identifiers:
//
//   KN0xx  composition-graph checks (aliases, cycles, schema conformance)
//   KN1xx  expression type inference
//   KN2xx  Sync pipeline schema flow
//   KN3xx  RBAC pre-flight
//   KN4xx  input/parse failures
//   KN5xx  expression semantics (abstract interpretation, analysis/absint.h)
//   KN6xx  cross-spec composition (project graph, analysis/compose_graph.h)
//   KN7xx  subscription clauses (Watch: filter satisfiability)
//
// The catalog below is the single source of truth for code -> severity;
// docs/ANALYSIS.md documents every code with a minimal trigger example.
#pragma once

#include <string>
#include <vector>

#include "common/value.h"

namespace knactor::analysis {

enum class Severity {
  kWarning,  // suspicious but not composition-breaking
  kError,    // the composition will misbehave or fail at runtime
};

const char* severity_name(Severity s);

/// 1-based position in a spec file; line 0 means "whole file".
struct SourceLoc {
  std::string file;
  int line = 0;
  int col = 0;
};

/// One analyzer finding.
struct Diagnostic {
  std::string code;  // stable "KN###" identifier
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
  std::string hint;  // optional fix suggestion

  /// Second endpoint of a cross-spec finding (KN6xx): e.g. the other
  /// writer of a shadowed field. Empty file means "no related endpoint".
  SourceLoc related;
  std::string related_note;  // what the related endpoint is

  /// "file:line:col: error: message [KN###]" (position elided when
  /// unknown; "  hint: ..." appended on its own line when present;
  /// "  note: <related_note> (<file>:<line>:<col>)" when a related
  /// endpoint is set).
  [[nodiscard]] std::string to_text() const;
  /// Object form for --format json: {code, severity, file, line, col,
  /// message, hint, related?}.
  [[nodiscard]] common::Value to_value() const;
};

/// Catalog entry describing one KN### code.
struct DiagnosticInfo {
  const char* code;
  Severity severity;
  const char* title;  // short kebab-case name, e.g. "type-mismatch"
};

/// The full code catalog, sorted by code.
const std::vector<DiagnosticInfo>& diagnostic_catalog();

/// Looks up a code in the catalog; null when unknown.
const DiagnosticInfo* find_diagnostic_info(std::string_view code);

/// Builds a diagnostic, filling severity from the catalog (unknown codes
/// get kError).
Diagnostic make_diag(std::string code, SourceLoc loc, std::string message,
                     std::string hint = {});

/// Stable output order: (file, line, col, code, message).
void sort_diagnostics(std::vector<Diagnostic>& diags);

/// Sorts and removes exact duplicates (same code, location, message, and
/// related endpoint) — the shared aggregation path for multi-file and
/// `--project` lint runs, where per-file and cross-spec passes can emit
/// the same finding twice.
void dedupe_diagnostics(std::vector<Diagnostic>& diags);

/// True when any diagnostic is error severity.
bool has_errors(const std::vector<Diagnostic>& diags);

/// Renders one diagnostic per line, plus a trailing summary line
/// ("N error(s), M warning(s)" — omitted when empty).
std::string render_text(const std::vector<Diagnostic>& diags);

/// Renders {"diagnostics": [...], "errors": N, "warnings": M} as JSON.
std::string render_json(const std::vector<Diagnostic>& diags);

}  // namespace knactor::analysis
