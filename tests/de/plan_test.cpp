// Query planner unit tests: which operators fuse, which scan hints derive,
// and that the Log DE's scan honors head/tail push-down (charging and
// scanning only the bounded prefix/suffix).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "de/log.h"
#include "de/plan.h"
#include "sim/clock.h"

namespace knactor::de {
namespace {

using common::Value;

Value rec(int n) {
  Value v = Value::object();
  v.set("n", Value(static_cast<std::int64_t>(n)));
  return v;
}

TEST(PlanTest, RecordLocalRunFusesToOneStage) {
  LogQuery q;
  q.push_back(LogOp::filter("n > 1").value());
  q.push_back(LogOp::rename({{"n", "m"}}));
  q.push_back(LogOp::project({"m"}));
  QueryPlan plan = plan_query(q);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_FALSE(plan.stages[0].is_barrier);
  EXPECT_EQ(plan.stages[0].fused.size(), 3u);
  EXPECT_EQ(plan.passes(), 1u);
}

TEST(PlanTest, BarriersSplitStages) {
  LogQuery q;
  q.push_back(LogOp::filter("n > 1").value());
  q.push_back(LogOp::sort("n"));
  q.push_back(LogOp::drop({"x"}));
  q.push_back(LogOp::aggregate({}, {{"c", {"count", ""}}}));
  QueryPlan plan = plan_query(q);
  // filter | sort | drop | aggregate -> 4 stages (fused, barrier, fused,
  // barrier).
  ASSERT_EQ(plan.stages.size(), 4u);
  EXPECT_FALSE(plan.stages[0].is_barrier);
  EXPECT_TRUE(plan.stages[1].is_barrier);
  EXPECT_FALSE(plan.stages[2].is_barrier);
  EXPECT_TRUE(plan.stages[3].is_barrier);
}

TEST(PlanTest, LeadingHeadBecomesScanHint) {
  LogQuery q;
  q.push_back(LogOp::head(5));
  q.push_back(LogOp::rename({{"n", "m"}}));
  QueryPlan plan = plan_query(q);
  EXPECT_EQ(plan.scan_head, 5u);
  EXPECT_EQ(plan.scan_tail, kNoLimit);
}

TEST(PlanTest, LeadingTailBecomesScanHint) {
  LogQuery q;
  q.push_back(LogOp::tail(3));
  QueryPlan plan = plan_query(q);
  EXPECT_EQ(plan.scan_tail, 3u);
}

TEST(PlanTest, FilterThenHeadDerivesEarlyStop) {
  LogQuery q;
  q.push_back(LogOp::filter("n > 1").value());
  q.push_back(LogOp::head(2));
  QueryPlan plan = plan_query(q);
  EXPECT_EQ(plan.scan_head, kNoLimit);  // filter runs before the head
  EXPECT_EQ(plan.early_stop, 2u);
}

TEST(PlanTest, MidPipelineHeadIsNoScanHint) {
  LogQuery q;
  q.push_back(LogOp::sort("n"));
  q.push_back(LogOp::head(2));
  QueryPlan plan = plan_query(q);
  EXPECT_EQ(plan.scan_head, kNoLimit);
  EXPECT_EQ(plan.early_stop, kNoLimit);
}

TEST(PlanTest, RunPlanMatchesNaivePipeline) {
  LogQuery q;
  q.push_back(LogOp::filter("n % 2 == 0").value());
  q.push_back(LogOp::map("twice", "n * 2").value());
  q.push_back(LogOp::sort("twice", true));
  q.push_back(LogOp::head(3));

  std::vector<Value> records;
  for (int i = 0; i < 20; ++i) records.push_back(rec(i));
  auto naive = run_pipeline(q, records);
  auto fused = run_plan(plan_query(q), records);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(naive.value().size(), fused.value().size());
  for (std::size_t i = 0; i < naive.value().size(); ++i) {
    EXPECT_EQ(naive.value()[i], fused.value()[i]) << "record " << i;
  }
}

TEST(PlanTest, EarlyStopReportsConsumed) {
  LogQuery q;
  q.push_back(LogOp::filter("n >= 0").value());  // passes everything
  q.push_back(LogOp::head(4));
  std::vector<common::CowValue> records;
  for (int i = 0; i < 100; ++i) records.emplace_back(rec(i));
  PlanRunStats stats;
  auto out = run_plan(plan_query(q), std::move(records), &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 4u);
  // Stage 0 stopped after the 4th survivor instead of reading all 100.
  EXPECT_EQ(stats.consumed, 4u);
}

TEST(PlanTest, HeadPushdownBoundsTheScan) {
  sim::VirtualClock clock;
  LogDe de(clock, LogDeProfile::instant());
  LogPool& pool = de.create_pool("p");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.append_sync("svc", rec(i)).ok());
  }
  LogQuery q;
  q.push_back(LogOp::head(5));
  auto out = pool.query_sync("svc", q);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 5u);
  EXPECT_EQ(out.value()[0].get("n")->as_int(), 0);
  // 45 of the 50 records were never materialized or charged.
  EXPECT_EQ(de.stats().records_scan_saved, 45u);
  EXPECT_EQ(de.stats().records_scanned, 5u);
}

TEST(PlanTest, TailPushdownScansSuffix) {
  sim::VirtualClock clock;
  LogDe de(clock, LogDeProfile::instant());
  LogPool& pool = de.create_pool("p");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.append_sync("svc", rec(i)).ok());
  }
  LogQuery q;
  q.push_back(LogOp::tail(4));
  auto out = pool.query_sync("svc", q);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 4u);
  EXPECT_EQ(out.value()[0].get("n")->as_int(), 46);
  EXPECT_EQ(out.value()[3].get("n")->as_int(), 49);
  EXPECT_EQ(de.stats().records_scan_saved, 46u);
}

TEST(PlanTest, BatchHistogramsRecord) {
  sim::VirtualClock clock;
  LogDe de(clock, LogDeProfile::instant());
  LogPool& pool = de.create_pool("p");
  std::vector<Value> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(rec(i));
  ASSERT_TRUE(pool.append_batch_sync("svc", std::move(batch)).ok());
  ASSERT_TRUE(pool.query_sync("svc", {}).ok());
  EXPECT_EQ(de.stats().append_batch_sizes.count(), 1u);
  EXPECT_EQ(de.stats().append_batch_sizes.max(), 10u);
  EXPECT_EQ(de.stats().query_batch_sizes.count(), 1u);
  EXPECT_EQ(de.stats().query_batch_sizes.sum(), 10u);
}

TEST(PlanTest, SharedQueryIsZeroCopyUntilMutation) {
  sim::VirtualClock clock;
  LogDe de(clock, LogDeProfile::instant());
  LogPool& pool = de.create_pool("p");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.append_sync("svc", rec(i)).ok());
  }
  // A filter-only query never mutates: every returned handle must alias a
  // stored buffer (shared), not a private copy.
  LogQuery q;
  q.push_back(LogOp::filter("n >= 2").value());
  auto out = pool.query_shared_sync("svc", q);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 3u);
  for (auto& handle : out.value()) {
    EXPECT_TRUE(handle.shared());
  }
  // A renaming query mutates: handles detach from the store.
  LogQuery q2;
  q2.push_back(LogOp::rename({{"n", "m"}}));
  auto out2 = pool.query_shared_sync("svc", q2);
  ASSERT_TRUE(out2.ok());
  ASSERT_EQ(out2.value().size(), 5u);
  EXPECT_NE(out2.value()[0]->get("m"), nullptr);
  // The stored records are untouched.
  auto raw = pool.query_sync("svc", {});
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw.value()[0].get("n"), nullptr);
}

}  // namespace
}  // namespace knactor::de
