// Lightweight expected-style error handling. The Knactor data plane does not
// throw across module boundaries: fallible operations return Result<T>.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace knactor::common {

/// Error with a machine-usable code and a human-readable message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kPermissionDenied,
    kFailedPrecondition,  // e.g. resource-version conflict
    kUnavailable,         // e.g. network partition in SimNetwork
    kParse,               // YAML/JSON/expression syntax errors
    kEval,                // expression evaluation errors
    kInternal,
  };

  Code code = Code::kInternal;
  std::string message;

  static Error invalid_argument(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  static Error not_found(std::string msg) {
    return {Code::kNotFound, std::move(msg)};
  }
  static Error already_exists(std::string msg) {
    return {Code::kAlreadyExists, std::move(msg)};
  }
  static Error permission_denied(std::string msg) {
    return {Code::kPermissionDenied, std::move(msg)};
  }
  static Error failed_precondition(std::string msg) {
    return {Code::kFailedPrecondition, std::move(msg)};
  }
  static Error unavailable(std::string msg) {
    return {Code::kUnavailable, std::move(msg)};
  }
  static Error parse(std::string msg) { return {Code::kParse, std::move(msg)}; }
  static Error eval(std::string msg) { return {Code::kEval, std::move(msg)}; }
  static Error internal(std::string msg) {
    return {Code::kInternal, std::move(msg)};
  }

  [[nodiscard]] const char* code_name() const {
    switch (code) {
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kPermissionDenied: return "PermissionDenied";
      case Code::kFailedPrecondition: return "FailedPrecondition";
      case Code::kUnavailable: return "Unavailable";
      case Code::kParse: return "Parse";
      case Code::kEval: return "Eval";
      case Code::kInternal: return "Internal";
    }
    return "Unknown";
  }

  [[nodiscard]] std::string to_string() const {
    return std::string(code_name()) + ": " + message;
  }
};

/// Result<T>: holds either a T or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}
  Result(Error error) : data_(std::move(error)) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() { return std::get<T>(data_); }
  [[nodiscard]] const T& value() const { return std::get<T>(data_); }
  [[nodiscard]] T&& take() { return std::move(std::get<T>(data_)); }
  [[nodiscard]] const Error& error() const { return std::get<Error>(data_); }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void>: success or an Error.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}

  static Status success() { return Status(); }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const { return *error_; }

 private:
  std::optional<Error> error_;
};

}  // namespace knactor::common

/// Propagates the error of a Result/Status expression from the enclosing
/// function (which must itself return a Result or Status).
#define KN_TRY(expr)                          \
  do {                                        \
    auto&& kn_try_result_ = (expr);           \
    if (!kn_try_result_.ok()) {               \
      return kn_try_result_.error();          \
    }                                         \
  } while (0)

#define KN_CONCAT_INNER(a, b) a##b
#define KN_CONCAT(a, b) KN_CONCAT_INNER(a, b)

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define KN_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto KN_CONCAT(kn_aor_, __LINE__) = (expr);           \
  if (!KN_CONCAT(kn_aor_, __LINE__).ok()) {             \
    return KN_CONCAT(kn_aor_, __LINE__).error();        \
  }                                                     \
  lhs = KN_CONCAT(kn_aor_, __LINE__).take()
