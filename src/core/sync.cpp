#include "core/sync.h"

#include <algorithm>

#include "common/logging.h"
#include "de/plan.h"

namespace knactor::core {

using common::Error;
using common::Result;
using common::Status;
using common::Value;

SyncIntegrator::SyncIntegrator(std::string name, de::LogDe& de,
                               Options options, Tracer* tracer)
    : name_(std::move(name)), de_(de), options_(options), tracer_(tracer) {}

SyncIntegrator::SyncIntegrator(std::string name, de::LogDe& de)
    : SyncIntegrator(std::move(name), de, Options{}) {}

Status SyncIntegrator::add_route(SyncRoute route) {
  if (route.source == nullptr || route.target == nullptr) {
    return Error::invalid_argument("sync " + name_ +
                                   ": route needs source and target pools");
  }
  for (const auto& r : routes_) {
    if (r.name == route.name) {
      return Error::already_exists("sync " + name_ + ": route '" + route.name +
                                   "' exists");
    }
  }
  routes_.push_back(std::move(route));
  return Status::success();
}

Status SyncIntegrator::remove_route(const std::string& route_name) {
  auto before = routes_.size();
  std::erase_if(routes_,
                [&](const SyncRoute& r) { return r.name == route_name; });
  if (routes_.size() == before) {
    return Error::not_found("sync " + name_ + ": no route '" + route_name +
                            "'");
  }
  return Status::success();
}

Status SyncIntegrator::set_pipeline(const std::string& route_name,
                                    de::LogQuery pipeline) {
  for (auto& r : routes_) {
    if (r.name == route_name) {
      r.pipeline = std::move(pipeline);
      ++stats_.reconfigurations;
      return Status::success();
    }
  }
  return Error::not_found("sync " + name_ + ": no route '" + route_name + "'");
}

Status SyncIntegrator::start() {
  if (running_) return Status::success();
  running_ = true;
  if (options_.interval > 0) schedule_tick();
  if (options_.push) install_subscriptions();
  return Status::success();
}

void SyncIntegrator::stop() {
  running_ = false;
  remove_subscriptions();
}

void SyncIntegrator::install_subscriptions() {
  remove_subscriptions();
  for (const auto& route : routes_) {
    de::SubscriptionSpec spec;
    // Predicate push-down: the pipeline's leading `where` clause becomes
    // the subscription's content filter, evaluated at the source pool's
    // append point — a record it rejects never wakes the integrator.
    if (!route.pipeline.empty() &&
        route.pipeline.front().kind == de::LogOp::Kind::kFilter) {
      spec.filter = route.pipeline.front().expr_text;
    }
    auto sub = route.source->subscribe(
        principal(), std::move(spec), [this](const de::LogRecord&) {
          if (!running_ || round_pending_) return;
          // Coalesce a burst of matching appends into one round, scheduled
          // after the current clock step so the append completes first.
          round_pending_ = true;
          de_.clock().schedule_after(0, [this]() {
            round_pending_ = false;
            if (!running_) return;
            auto moved = run_round_sync();
            if (!moved.ok()) {
              KN_WARN << "sync " << name_ << ": push round failed: "
                      << moved.error().to_string();
            }
          });
        });
    if (!sub.ok()) {
      KN_WARN << "sync " << name_ << ": subscribe denied on pool '"
              << route.source->name() << "': " << sub.error().to_string();
      continue;
    }
    subscriptions_.emplace_back(route.source, sub.value());
  }
}

void SyncIntegrator::remove_subscriptions() {
  for (auto& [pool, id] : subscriptions_) pool->unsubscribe(id);
  subscriptions_.clear();
}

Status SyncIntegrator::reconfigure(const Value& config) {
  const Value* consolidate = config.get("consolidate");
  if (consolidate != nullptr && consolidate->is_bool()) {
    options_.consolidate = consolidate->as_bool();
    ++stats_.reconfigurations;
    return Status::success();
  }
  return Error::invalid_argument(
      "sync " + name_ +
      ": use add_route/set_pipeline for route reconfiguration");
}

void SyncIntegrator::schedule_tick() {
  de_.clock().schedule_after(options_.interval, [this]() {
    if (!running_) return;
    auto moved = run_round_sync();
    if (!moved.ok()) {
      KN_WARN << "sync " << name_
              << ": round failed: " << moved.error().to_string();
    }
    schedule_tick();
  });
}

std::size_t SyncIntegrator::count_passes(const de::LogQuery& pipeline,
                                         bool consolidated) {
  if (pipeline.empty()) return 0;
  if (!consolidated) return pipeline.size();
  // The planner is the single source of truth for what fuses: one pass per
  // plan stage (fused record-local segment or barrier).
  return de::plan_query(pipeline).passes();
}

Result<std::size_t> SyncIntegrator::run_route(SyncRoute& route) {
  std::uint64_t span = 0;
  auto open_stage = [this, &span](const char* what, const SyncRoute& r,
                                  const char* stage) -> std::uint64_t {
    if (tracer_ == nullptr) return 0;
    std::uint64_t s = tracer_->begin(std::string(what) + r.name, span);
    tracer_->annotate(s, "stage", stage);
    return s;
  };
  auto end_span = [this](std::uint64_t s) {
    if (tracer_ != nullptr && s != 0) tracer_->end(s);
  };
  if (tracer_ != nullptr) {
    span = tracer_->begin("sync.route." + route.name);
  }
  // Pull raw records after the cursor; the source query itself charges the
  // DE's scan cost once.
  std::uint64_t latest = route.source->latest_seq();
  sim::SimTime per_record = de_.profile().per_record.mean();
  std::size_t moved = 0;
  // Lineage: snapshot the consumed window (seq + shared payload) before
  // the pipeline consumes it. Zero-copy; only taken when recording is on.
  const bool lineage = de_.kernel().provenance().enabled();
  std::vector<de::LogRecord> raw;
  if (lineage) raw = route.source->records_after(route.cursor);
  if (options_.consolidate) {
    // Consolidated round (§3.3): records move as copy-on-write handles
    // (no deep copy until a pipeline stage mutates one), the fused plan
    // runs record-local segments as single passes, and execution cost is
    // charged on the records each stage actually processed.
    std::uint64_t q_span = open_stage("sync.query.", route, "C-I");
    auto batch_r =
        route.source->query_shared_sync(principal(), {}, route.cursor);
    end_span(q_span);
    if (!batch_r.ok()) {
      end_span(span);
      return batch_r.error();
    }
    std::uint64_t p_span = open_stage("sync.pipeline.", route, "I");
    de::QueryPlan plan = de::plan_query(route.pipeline);
    de::PlanRunStats prs;
    auto transformed_r = de::run_plan(plan, batch_r.take(), &prs);
    if (!transformed_r.ok()) {
      end_span(p_span);
      end_span(span);
      return transformed_r.error();
    }
    std::vector<common::CowValue> transformed = transformed_r.take();
    stats_.records_processed += prs.total_processed();
    de_.clock().advance(
        static_cast<sim::SimTime>(prs.total_processed()) * per_record);
    end_span(p_span);
    moved = transformed.size();
    if (!transformed.empty()) {
      std::uint64_t a_span = open_stage("sync.append.", route, "I-S");
      auto appended = route.target->append_batch_shared_sync(
          principal(), std::move(transformed));
      end_span(a_span);
      if (!appended.ok()) {
        ++stats_.pipeline_errors;
        end_span(span);
        return appended.error();
      }
      if (lineage) {
        record_route_lineage(route, raw, appended.value(), moved, span);
      }
    }
  } else {
    std::uint64_t q_span = open_stage("sync.query.", route, "C-I");
    auto batch_r = route.source->query_sync(principal(), {}, route.cursor);
    end_span(q_span);
    if (!batch_r.ok()) {
      end_span(span);
      return batch_r.error();
    }
    std::vector<Value> batch = batch_r.take();

    // Charge pipeline execution: one per-record scan per operator (this is
    // the operator-consolidation ablation surface).
    std::uint64_t p_span = open_stage("sync.pipeline.", route, "I");
    std::size_t passes = count_passes(route.pipeline, /*consolidated=*/false);
    stats_.records_processed += passes * batch.size();
    de_.clock().advance(static_cast<sim::SimTime>(passes * batch.size()) *
                        per_record);

    auto transformed_r = de::run_pipeline(route.pipeline, std::move(batch));
    end_span(p_span);
    if (!transformed_r.ok()) {
      end_span(span);
      return transformed_r.error();
    }
    std::vector<Value> transformed = transformed_r.take();

    moved = transformed.size();
    if (!transformed.empty()) {
      std::uint64_t a_span = open_stage("sync.append.", route, "I-S");
      auto appended =
          route.target->append_batch_sync(principal(), std::move(transformed));
      end_span(a_span);
      if (!appended.ok()) {
        ++stats_.pipeline_errors;
        end_span(span);
        return appended.error();
      }
      if (lineage) {
        record_route_lineage(route, raw, appended.value(), moved, span);
      }
    }
  }
  route.cursor = latest;
  stats_.records_moved += moved;
  end_span(span);
  return moved;
}

void SyncIntegrator::record_route_lineage(const SyncRoute& route,
                                          const std::vector<de::LogRecord>& raw,
                                          std::uint64_t last_seq,
                                          std::size_t appended,
                                          std::uint64_t span_id) {
  auto& ring = de_.kernel().provenance();
  if (!ring.enabled() || appended == 0) return;
  auto make_ref = [&](const de::LogRecord& r) {
    LineageRef ref;
    ref.store = route.source->name();
    ref.key = std::to_string(r.seq);
    ref.version = r.seq;
    ref.data = r.data;
    return ref;
  };
  bool barrier = false;
  for (const auto& op : route.pipeline) {
    if (op.kind == de::LogOp::Kind::kSort ||
        op.kind == de::LogOp::Kind::kHead ||
        op.kind == de::LogOp::Kind::kTail ||
        op.kind == de::LogOp::Kind::kAggregate) {
      barrier = true;
      break;
    }
  }
  // Per-output input attribution. Record-local pipelines map each output
  // to exactly one source record; confirm by singleton replay (each input
  // alone produces 0 or 1 outputs, survivors line up with the batch
  // output). Anything else falls back to whole-window attribution.
  std::vector<std::vector<LineageRef>> per_out(appended);
  bool exact = false;
  if (!barrier) {
    std::vector<const de::LogRecord*> survivors;
    bool ok = true;
    for (const auto& r : raw) {
      auto one = de::run_pipeline(
          route.pipeline, {r.data ? *r.data : Value(nullptr)});
      if (!one.ok() || one.value().size() > 1) {
        ok = false;
        break;
      }
      if (one.value().size() == 1) survivors.push_back(&r);
    }
    if (ok && survivors.size() == appended) {
      for (std::size_t i = 0; i < appended; ++i) {
        per_out[i].push_back(make_ref(*survivors[i]));
      }
      exact = true;
    }
  }
  if (!exact) {
    std::vector<LineageRef> all;
    all.reserve(raw.size());
    for (const auto& r : raw) all.push_back(make_ref(r));
    for (auto& inputs : per_out) inputs = all;
  }
  // Batch appends allocate consecutive revisions in one synchronous
  // commit, so this append covers [last_seq - appended + 1, last_seq].
  const std::uint64_t first_seq = last_seq - appended + 1;
  for (std::size_t i = 0; i < appended; ++i) {
    const std::uint64_t seq = first_seq + i;
    LineageRecord rec;
    rec.output.store = route.target->name();
    rec.output.key = std::to_string(seq);
    rec.output.version = seq;
    if (const de::LogRecord* stored = route.target->peek(seq);
        stored != nullptr) {
      rec.output.data = stored->data;  // the committed buffer, byte-exact
    }
    rec.inputs = std::move(per_out[i]);
    rec.op = "sync:" + name_ + "/" + route.name;
    rec.stage = "I-S";
    rec.span_id = span_id;
    rec.time = de_.clock().now();
    ring.record(std::move(rec));
  }
}

Result<std::size_t> SyncIntegrator::run_round_sync() {
  ++stats_.rounds;
  std::size_t total = 0;
  std::optional<common::Error> first_error;
  for (auto& route : routes_) {
    auto moved = run_route(route);
    if (!moved.ok()) {
      // The failed route's cursor is unchanged; keep syncing the others and
      // let the retry (or the next round) re-pull the unsynced suffix.
      ++stats_.route_failures;
      if (options_.metrics != nullptr) {
        options_.metrics->inc("sync." + name_ + ".route_failures");
      }
      if (!first_error.has_value()) first_error = moved.error();
      continue;
    }
    total += moved.value();
  }
  if (first_error.has_value()) {
    maybe_schedule_retry();
    return *first_error;
  }
  round_attempt_ = 0;
  return total;
}

void SyncIntegrator::maybe_schedule_retry() {
  if (!options_.retry.enabled()) return;
  if (round_attempt_ == 0) round_first_attempt_ = de_.clock().now();
  ++round_attempt_;
  const sim::SimTime elapsed = de_.clock().now() - round_first_attempt_;
  if (!options_.retry.should_retry(round_attempt_, elapsed)) {
    round_attempt_ = 0;  // budget exhausted; the next tick starts fresh
    return;
  }
  ++stats_.retries;
  if (options_.metrics != nullptr) {
    options_.metrics->inc("sync." + name_ + ".retries");
  }
  de_.clock().schedule_after(
      options_.retry.backoff(round_attempt_, retry_rng_), [this]() {
        if (!running_) return;
        auto moved = run_round_sync();
        if (!moved.ok()) {
          KN_DEBUG << "sync " << name_
                   << ": retry round failed: " << moved.error().to_string();
        }
      });
}

}  // namespace knactor::core
