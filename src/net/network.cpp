#include "net/network.h"

#include "common/json.h"
#include "common/logging.h"

namespace knactor::net {

using common::Error;
using common::Result;

void SimNetwork::add_node(const std::string& name) { nodes_.insert(name); }

bool SimNetwork::has_node(const std::string& name) const {
  return nodes_.count(name) != 0;
}

void SimNetwork::set_handler(const std::string& node, const std::string& type,
                             Handler handler) {
  handlers_[node][type] = std::move(handler);
}

void SimNetwork::set_link_latency(const std::string& src,
                                  const std::string& dst,
                                  sim::LatencyModel model) {
  links_[{src, dst}] = model;
}

void SimNetwork::set_fault_plan(sim::FaultPlan plan) {
  fault_plan_ = std::move(plan);
  fault_plan_active_ = true;
  fault_rng_.reseed(fault_plan_.seed);
  fault_records_.clear();
}

void SimNetwork::clear_fault_plan() {
  fault_plan_ = sim::FaultPlan{};
  fault_plan_active_ = false;
}

void SimNetwork::record_fault(sim::FaultKind kind, const Message& msg,
                              std::string detail) {
  sim::FaultRecord rec;
  rec.time = clock_.now();
  rec.kind = kind;
  rec.src = msg.src;
  rec.dst = msg.dst;
  rec.detail = std::move(detail);
  rec.message_id = msg.id;
  fault_records_.push_back(rec);
  if (fault_observer_) fault_observer_(fault_records_.back());
}

void SimNetwork::set_partitioned(const std::string& a, const std::string& b,
                                 bool partitioned) {
  if (partitioned) {
    partitions_.insert({a, b});
    partitions_.insert({b, a});
  } else {
    partitions_.erase({a, b});
    partitions_.erase({b, a});
  }
}

sim::SimTime SimNetwork::link_delay(const std::string& src,
                                    const std::string& dst,
                                    std::size_t bytes) {
  sim::SimTime delay = 0;
  auto it = links_.find({src, dst});
  if (it != links_.end()) {
    delay = it->second.sample(rng_);
  } else if (src != dst) {
    delay = default_latency_.sample(rng_);
  }
  if (bytes_per_sec_ > 0 && bytes > 0) {
    delay += static_cast<sim::SimTime>(
        static_cast<double>(bytes) / static_cast<double>(bytes_per_sec_) *
        static_cast<double>(sim::kSecond));
  }
  return delay;
}

Result<std::uint64_t> SimNetwork::send(Message msg) {
  if (!has_node(msg.src)) {
    return Error::not_found("network: unknown source node '" + msg.src + "'");
  }
  if (!has_node(msg.dst)) {
    return Error::not_found("network: unknown destination node '" + msg.dst +
                            "'");
  }
  msg.id = next_id_++;
  if (msg.bytes == 0) {
    // Estimate the encoded size from the JSON form; the wire codec gives an
    // exact size when the caller pre-encodes.
    msg.bytes = common::to_json(msg.payload).size() + msg.type.size() + 16;
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += msg.bytes;

  if (partitions_.count({msg.src, msg.dst}) != 0) {
    ++stats_.dropped_partition;
    KN_DEBUG << "net: dropped (partition) " << msg.src << " -> " << msg.dst;
    return msg.id;
  }

  sim::SimTime extra_delay = 0;
  bool duplicate = false;
  if (fault_plan_active_) {
    const sim::SimTime now = clock_.now();
    // Window faults first (no RNG draw), then probabilistic faults in a
    // fixed order so the same seed yields a bit-identical schedule.
    if (fault_plan_.link_down(msg.src, msg.dst, now)) {
      ++stats_.dropped_fault;
      record_fault(sim::FaultKind::kLinkDown, msg, msg.type);
      return msg.id;
    }
    if (fault_plan_.node_down(msg.src, now) ||
        fault_plan_.node_down(msg.dst, now)) {
      ++stats_.dropped_fault;
      record_fault(sim::FaultKind::kNodeDown, msg, msg.type);
      return msg.id;
    }
    const auto& links = fault_plan_.links;
    if (links.loss > 0.0 && fault_rng_.next_double() < links.loss) {
      ++stats_.dropped_fault;
      record_fault(sim::FaultKind::kLoss, msg, msg.type);
      return msg.id;
    }
    if (links.duplicate > 0.0 && fault_rng_.next_double() < links.duplicate) {
      duplicate = true;
      ++stats_.duplicated_fault;
      record_fault(sim::FaultKind::kDuplicate, msg, msg.type);
    }
    if (links.reorder > 0.0 && fault_rng_.next_double() < links.reorder) {
      extra_delay = 1 + static_cast<sim::SimTime>(
                            fault_rng_.next_double() *
                            static_cast<double>(links.reorder_delay));
      ++stats_.reordered_fault;
      record_fault(sim::FaultKind::kReorder, msg, msg.type);
    }
  }

  sim::SimTime delay = link_delay(msg.src, msg.dst, msg.bytes);
  std::uint64_t id = msg.id;
  if (duplicate) {
    // The copy travels independently: its own link-latency sample plus the
    // reorder delay, so it typically lands after the original.
    sim::SimTime dup_delay =
        link_delay(msg.src, msg.dst, msg.bytes) + extra_delay;
    clock_.schedule_after(dup_delay, [this, msg]() { deliver(msg); });
  }
  clock_.schedule_after(delay + extra_delay,
                        [this, msg = std::move(msg)]() { deliver(msg); });
  return id;
}

void SimNetwork::deliver(const Message& msg) {
  if (fault_plan_active_) {
    // A crash or flap window that opened while the message was in flight
    // still swallows it.
    const sim::SimTime now = clock_.now();
    if (fault_plan_.node_down(msg.dst, now)) {
      ++stats_.dropped_fault;
      record_fault(sim::FaultKind::kNodeDown, msg, msg.type + " (in flight)");
      return;
    }
    if (fault_plan_.link_down(msg.src, msg.dst, now)) {
      ++stats_.dropped_fault;
      record_fault(sim::FaultKind::kLinkDown, msg, msg.type + " (in flight)");
      return;
    }
  }
  auto node_it = handlers_.find(msg.dst);
  if (node_it != handlers_.end()) {
    auto type_it = node_it->second.find(msg.type);
    if (type_it == node_it->second.end()) {
      type_it = node_it->second.find("");  // catch-all
    }
    if (type_it != node_it->second.end() && type_it->second) {
      ++stats_.messages_delivered;
      type_it->second(msg);
      return;
    }
  }
  ++stats_.dropped_no_handler;
  KN_DEBUG << "net: dropped (no handler) " << msg.src << " -> " << msg.dst
           << " type=" << msg.type;
}

}  // namespace knactor::net
