#include <gtest/gtest.h>

#include "de/object.h"

namespace knactor::de {
namespace {

using common::Value;

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : de_(clock_, ObjectDeProfile::instant()) {
    store_ = &de_.create_store("s");
  }

  sim::VirtualClock clock_;
  ObjectDe de_;
  ObjectStore* store_ = nullptr;
};

TEST_F(AuditTest, DisabledByDefault) {
  (void)store_->put_sync("me", "k", Value::object({}));
  EXPECT_TRUE(de_.audit_log().empty());
}

TEST_F(AuditTest, RecordsAllowedOperations) {
  de_.enable_audit();
  (void)store_->put_sync("alice", "k", Value::object({{"a", 1}}));
  (void)store_->get_sync("bob", "k");
  ASSERT_EQ(de_.audit_log().size(), 2u);
  const auto& write = de_.audit_log()[0];
  EXPECT_EQ(write.principal, "alice");
  EXPECT_EQ(write.verb, Verb::kUpdate);
  EXPECT_EQ(write.store, "s");
  EXPECT_EQ(write.key, "k");
  EXPECT_TRUE(write.allowed);
  EXPECT_EQ(de_.audit_log()[1].principal, "bob");
  EXPECT_EQ(de_.audit_log()[1].verb, Verb::kGet);
}

TEST_F(AuditTest, RecordsDenials) {
  Rbac& rbac = de_.rbac();
  Role reader;
  reader.name = "reader";
  PolicyRule rule;
  rule.store = "s";
  rule.verbs = {Verb::kGet};
  reader.rules.push_back(rule);
  ASSERT_TRUE(rbac.add_role(reader).ok());
  ASSERT_TRUE(rbac.bind("alice", "reader").ok());
  rbac.set_enabled(true);
  de_.enable_audit();

  EXPECT_FALSE(store_->put_sync("alice", "k", Value::object({})).ok());
  ASSERT_EQ(de_.audit_log().size(), 1u);
  EXPECT_FALSE(de_.audit_log()[0].allowed);
  EXPECT_EQ(de_.audit_log()[0].verb, Verb::kUpdate);
}

TEST_F(AuditTest, RecordsWatchRegistrations) {
  de_.enable_audit();
  (void)store_->watch("observer", "prefix/", [](const WatchEvent&) {});
  ASSERT_EQ(de_.audit_log().size(), 1u);
  EXPECT_EQ(de_.audit_log()[0].verb, Verb::kWatch);
  EXPECT_EQ(de_.audit_log()[0].key, "prefix/");
}

TEST_F(AuditTest, RingBufferBounded) {
  de_.enable_audit(5);
  for (int i = 0; i < 20; ++i) {
    (void)store_->put_sync("w", "k" + std::to_string(i), Value::object({}));
  }
  EXPECT_EQ(de_.audit_log().size(), 5u);
  // The newest entries survive.
  EXPECT_EQ(de_.audit_log().back().key, "k19");
  EXPECT_EQ(de_.audit_log().front().key, "k15");
}

TEST_F(AuditTest, DisableStopsRecording) {
  de_.enable_audit();
  (void)store_->put_sync("w", "a", Value::object({}));
  de_.disable_audit();
  (void)store_->put_sync("w", "b", Value::object({}));
  EXPECT_EQ(de_.audit_log().size(), 1u);
}

TEST_F(AuditTest, TimestampsAreSimTime) {
  ObjectDe timed(clock_, ObjectDeProfile::redis());
  ObjectStore& store = timed.create_store("s");
  timed.enable_audit();
  (void)store.put_sync("w", "k", Value::object({}));
  ASSERT_EQ(timed.audit_log().size(), 1u);
  EXPECT_GT(timed.audit_log()[0].time, 0);
}

TEST_F(AuditTest, UdfAccessesAudited) {
  de_.enable_audit();
  (void)de_.register_udf("owner", "f",
                         [](UdfContext& ctx, const Value&)
                             -> common::Result<Value> {
                           Value v = Value::object();
                           v.set("x", Value(1));
                           KN_TRY(ctx.put("s", "k", v));
                           return Value(true);
                         });
  ASSERT_TRUE(de_.call_udf_sync("caller", "f", Value::object({})).ok());
  // The invoke check and the engine write are both on the trail.
  bool saw_invoke = false;
  bool saw_engine_write = false;
  for (const auto& entry : de_.audit_log()) {
    if (entry.verb == Verb::kInvokeUdf && entry.principal == "caller") {
      saw_invoke = true;
    }
    if (entry.verb == Verb::kUpdate && entry.principal == "owner") {
      saw_engine_write = true;
    }
  }
  EXPECT_TRUE(saw_invoke);
  EXPECT_TRUE(saw_engine_write);
}

}  // namespace
}  // namespace knactor::de
