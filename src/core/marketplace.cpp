#include "core/marketplace.h"

#include <algorithm>

#include "common/strings.h"

namespace knactor::core {

using common::Error;
using common::Status;

int compare_versions(const std::string& a, const std::string& b) {
  auto as = common::split(a, '.');
  auto bs = common::split(b, '.');
  for (std::size_t i = 0; i < std::max(as.size(), bs.size()); ++i) {
    std::string sa = i < as.size() ? as[i] : "0";
    std::string sb = i < bs.size() ? bs[i] : "0";
    bool na = !sa.empty() && sa.find_first_not_of("0123456789") == std::string::npos;
    bool nb = !sb.empty() && sb.find_first_not_of("0123456789") == std::string::npos;
    if (na && nb) {
      long va = std::stol(sa);
      long vb = std::stol(sb);
      if (va != vb) return va < vb ? -1 : 1;
    } else {
      int c = sa.compare(sb);
      if (c != 0) return c < 0 ? -1 : 1;
    }
  }
  return 0;
}

Status Marketplace::publish(Package package) {
  if (package.name.empty() || package.version.empty()) {
    return Error::invalid_argument("marketplace: package needs name+version");
  }
  auto key = std::make_pair(package.name, package.version);
  if (packages_.find(key) != packages_.end()) {
    return Error::already_exists("marketplace: " + package.name + "@" +
                                 package.version + " already published");
  }

  // Derive metadata and validate the artifacts.
  package.provides.clear();
  package.reads.clear();
  package.fills.clear();
  if (package.kind == Package::Kind::kKnactor) {
    if (package.schema_yamls.empty()) {
      return Error::invalid_argument(
          "marketplace: knactor package needs at least one schema");
    }
    for (const auto& yaml_text : package.schema_yamls) {
      KN_ASSIGN_OR_RETURN(de::StoreSchema schema,
                          de::parse_schema(yaml_text));
      package.provides.push_back(schema.id);
    }
  } else {
    if (package.dxg_yaml.empty()) {
      return Error::invalid_argument(
          "marketplace: integrator package needs a DXG");
    }
    KN_ASSIGN_OR_RETURN(Dxg dxg, Dxg::parse(package.dxg_yaml));
    auto issues = analyze(dxg, nullptr);
    for (const auto& issue : issues) {
      if (issue.kind == DxgIssue::Kind::kCycle ||
          issue.kind == DxgIssue::Kind::kUnresolvedAlias) {
        return Error::invalid_argument("marketplace: integrator DXG " +
                                       std::string(issue_kind_name(issue.kind)) +
                                       ": " + issue.detail);
      }
    }
    for (const auto& alias : dxg.read_aliases()) {
      auto it = dxg.inputs().find(alias);
      if (it != dxg.inputs().end()) package.reads.push_back(it->second);
    }
    std::sort(package.reads.begin(), package.reads.end());
    package.reads.erase(
        std::unique(package.reads.begin(), package.reads.end()),
        package.reads.end());
    for (const auto& mapping : dxg.mappings()) {
      auto it = dxg.inputs().find(mapping.target_alias);
      if (it == dxg.inputs().end()) continue;
      auto& fields = package.fills[it->second];
      if (std::find(fields.begin(), fields.end(), mapping.field) ==
          fields.end()) {
        fields.push_back(mapping.field);
      }
    }
  }

  // Update the latest-version index.
  auto latest = latest_.find(package.name);
  if (latest == latest_.end() ||
      compare_versions(package.version, latest->second) > 0) {
    latest_[package.name] = package.version;
  }
  packages_[key] = std::move(package);
  return Status::success();
}

const Package* Marketplace::find(const std::string& name) const {
  auto latest = latest_.find(name);
  if (latest == latest_.end()) return nullptr;
  return find(name, latest->second);
}

const Package* Marketplace::find(const std::string& name,
                                 const std::string& version) const {
  auto it = packages_.find({name, version});
  return it == packages_.end() ? nullptr : &it->second;
}

std::vector<const Package*> Marketplace::search(
    const std::string& query) const {
  std::vector<const Package*> out;
  for (const auto& [name, version] : latest_) {
    const Package* p = find(name, version);
    if (p == nullptr) continue;
    if (query.empty() || p->name.find(query) != std::string::npos ||
        p->description.find(query) != std::string::npos) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<const Package*> Marketplace::integrators_for(
    const std::string& schema_id, const std::string& field) const {
  std::vector<const Package*> out;
  for (const auto& [name, version] : latest_) {
    const Package* p = find(name, version);
    if (p == nullptr || p->kind != Package::Kind::kIntegrator) continue;
    auto it = p->fills.find(schema_id);
    if (it == p->fills.end()) continue;
    if (!field.empty() && std::find(it->second.begin(), it->second.end(),
                                    field) == it->second.end()) {
      continue;
    }
    out.push_back(p);
  }
  return out;
}

std::vector<const Package*> Marketplace::providers_of(
    const std::string& schema_id) const {
  std::vector<const Package*> out;
  for (const auto& [name, version] : latest_) {
    const Package* p = find(name, version);
    if (p == nullptr || p->kind != Package::Kind::kKnactor) continue;
    if (std::find(p->provides.begin(), p->provides.end(), schema_id) !=
        p->provides.end()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<std::string> Marketplace::missing_requirements(
    const std::string& integrator_name) const {
  std::vector<std::string> missing;
  const Package* integrator = find(integrator_name);
  if (integrator == nullptr ||
      integrator->kind != Package::Kind::kIntegrator) {
    missing.push_back("integrator '" + integrator_name + "' not published");
    return missing;
  }
  // Every read schema must have a provider.
  for (const auto& schema_id : integrator->reads) {
    if (providers_of(schema_id).empty()) {
      missing.push_back("no provider for schema " + schema_id);
    }
  }
  // Every filled field must be external in some provider's schema.
  for (const auto& [schema_id, fields] : integrator->fills) {
    auto providers = providers_of(schema_id);
    if (providers.empty()) {
      missing.push_back("no provider for schema " + schema_id);
      continue;
    }
    // Re-parse the provider's schema to check field annotations.
    const Package* provider = providers.front();
    for (const auto& yaml_text : provider->schema_yamls) {
      auto schema = de::parse_schema(yaml_text);
      if (!schema.ok() || schema.value().id != schema_id) continue;
      for (const auto& field : fields) {
        const de::SchemaField* f = schema.value().field(field);
        if (f == nullptr) {
          missing.push_back("schema " + schema_id + " has no field '" + field +
                            "'");
        } else if (!f->external) {
          missing.push_back("field '" + field + "' of " + schema_id +
                            " is not '+kr: external'");
        }
      }
    }
  }
  return missing;
}

}  // namespace knactor::core
