#include "common/value.h"

#include <cassert>
#include <charconv>

namespace knactor::common {

OrderedMap::OrderedMap(std::initializer_list<Entry> entries) {
  for (const auto& [k, v] : entries) set(k, v);
}

void OrderedMap::set(std::string key, Value value) {
  if (auto it = index_.find(key); it != index_.end()) {
    entries_[it->second].second = std::move(value);
    return;
  }
  index_.emplace(key, entries_.size());
  entries_.emplace_back(std::move(key), std::move(value));
}

const Value* OrderedMap::find(std::string_view key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second].second;
}

Value* OrderedMap::find(std::string_view key) {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second].second;
}

bool OrderedMap::contains(std::string_view key) const {
  return index_.find(key) != index_.end();
}

bool OrderedMap::erase(std::string_view key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  std::size_t pos = it->second;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(pos));
  index_.erase(it);
  for (auto& [k, idx] : index_) {
    if (idx > pos) --idx;
  }
  return true;
}

bool OrderedMap::operator==(const OrderedMap& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  // Order-insensitive comparison: two objects with the same fields are
  // equal regardless of insertion order (matches JSON semantics).
  for (const auto& [k, v] : entries_) {
    const Value* ov = other.find(k);
    if (ov == nullptr || !(*ov == v)) return false;
  }
  return true;
}

Value Value::object(std::initializer_list<OrderedMap::Entry> entries) {
  return Value(Object(entries));
}

Value Value::array(std::initializer_list<Value> items) {
  return Value(Array(items));
}

Value::Type Value::type() const {
  return static_cast<Type>(data_.index());
}

const char* Value::type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "unknown";
}

const char* Value::type_name() const { return type_name(type()); }

double Value::as_number() const {
  if (is_int()) return static_cast<double>(as_int());
  return as_double();
}

std::optional<bool> Value::try_bool() const {
  if (is_bool()) return as_bool();
  return std::nullopt;
}

std::optional<std::int64_t> Value::try_int() const {
  if (is_int()) return as_int();
  return std::nullopt;
}

std::optional<double> Value::try_number() const {
  if (is_number()) return as_number();
  return std::nullopt;
}

std::optional<std::string> Value::try_string() const {
  if (is_string()) return as_string();
  return std::nullopt;
}

const Value* Value::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  return as_object().find(key);
}

Value* Value::get(std::string_view key) {
  if (!is_object()) return nullptr;
  return as_object().find(key);
}

void Value::set(std::string key, Value v) {
  if (is_null()) data_ = Object{};
  assert(is_object());
  as_object().set(std::move(key), std::move(v));
}

namespace {

std::optional<std::size_t> parse_index(std::string_view seg) {
  if (seg.empty()) return std::nullopt;
  std::size_t idx = 0;
  auto [ptr, ec] = std::from_chars(seg.data(), seg.data() + seg.size(), idx);
  if (ec != std::errc{} || ptr != seg.data() + seg.size()) return std::nullopt;
  return idx;
}

std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> segs;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t dot = path.find('.', start);
    if (dot == std::string_view::npos) {
      segs.push_back(path.substr(start));
      break;
    }
    segs.push_back(path.substr(start, dot - start));
    start = dot + 1;
  }
  return segs;
}

}  // namespace

const Value* Value::at_path(std::string_view dotted_path) const {
  const Value* cur = this;
  for (std::string_view seg : split_path(dotted_path)) {
    if (cur->is_object()) {
      cur = cur->as_object().find(seg);
    } else if (cur->is_array()) {
      auto idx = parse_index(seg);
      if (!idx || *idx >= cur->as_array().size()) return nullptr;
      cur = &cur->as_array()[*idx];
    } else {
      return nullptr;
    }
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

bool Value::set_path(std::string_view dotted_path, Value v) {
  auto segs = split_path(dotted_path);
  if (segs.empty()) return false;
  Value* cur = this;
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    if (cur->is_null()) cur->data_ = Object{};
    if (!cur->is_object()) return false;
    Value* next = cur->as_object().find(segs[i]);
    if (next == nullptr) {
      cur->as_object().set(std::string(segs[i]), Value::object());
      next = cur->as_object().find(segs[i]);
    }
    cur = next;
  }
  if (cur->is_null()) cur->data_ = Object{};
  if (!cur->is_object()) return false;
  cur->as_object().set(std::string(segs.back()), std::move(v));
  return true;
}

bool Value::truthy() const {
  switch (type()) {
    case Type::kNull: return false;
    case Type::kBool: return as_bool();
    case Type::kInt: return as_int() != 0;
    case Type::kDouble: return as_double() != 0.0;
    case Type::kString: return !as_string().empty();
    case Type::kArray: return !as_array().empty();
    case Type::kObject: return !as_object().empty();
  }
  return false;
}

bool Value::operator==(const Value& other) const { return data_ == other.data_; }

std::size_t Value::deep_size_bytes() const {
  std::size_t base = sizeof(Value);
  switch (type()) {
    case Type::kString:
      return base + as_string().capacity();
    case Type::kArray: {
      std::size_t total = base;
      for (const auto& v : as_array()) total += v.deep_size_bytes();
      return total;
    }
    case Type::kObject: {
      std::size_t total = base;
      for (const auto& [k, v] : as_object())
        total += k.capacity() + v.deep_size_bytes();
      return total;
    }
    default:
      return base;
  }
}

}  // namespace knactor::common
