// Pipeline planner for Log queries (§3.3 operator consolidation): fuses
// adjacent record-local operators (filter, rename, cut/project, drop, put/
// map) into a single per-record pass, keeps barrier operators (sort, head,
// tail, summarize) as their own passes, and derives scan hints that push
// head/tail limits into the Log scan itself:
//
//   where kwh > 0.5 | put wh := kwh*1000 | cut device, wh | head 5
//     -> stage 0: fused {filter, map, project}   (one record pass)
//        stage 1: head 5                          (barrier)
//        early_stop = 5  (the scan stops once 5 records survive stage 0)
//
// Execution is copy-on-write over shared record buffers (common/cow.h):
// records that pass through unmutated move as handles, and a mutation
// (rename/map/...) clones at most once per record regardless of how many
// fused operators touch it. Results are bit-identical to the naive
// one-pass-per-operator `run_pipeline` — the differential equivalence
// suite in tests/property enforces this.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/cow.h"
#include "common/result.h"
#include "de/log.h"

namespace knactor::de {

constexpr std::size_t kNoLimit = std::numeric_limits<std::size_t>::max();

/// One execution pass: either a fused run of record-local operators or a
/// single barrier operator.
struct PlanStage {
  std::vector<LogOp> fused;  // record-local segment (empty for barriers)
  LogOp barrier;             // meaningful iff is_barrier
  bool is_barrier = false;
};

struct QueryPlan {
  std::vector<PlanStage> stages;

  /// Scan hints for the Log DE (kNoLimit = none):
  /// * scan_head: the pipeline starts with `head N` — the scan only needs
  ///   the first N matching records.
  /// * scan_tail: the pipeline starts with `tail N` — only the last N.
  /// * early_stop: stage 0 is a fused segment immediately followed by
  ///   `head N` — execution stops once N records survive stage 0.
  std::size_t scan_head = kNoLimit;
  std::size_t scan_tail = kNoLimit;
  std::size_t early_stop = kNoLimit;

  /// Record passes this plan costs (the consolidation ablation surface):
  /// one per stage.
  [[nodiscard]] std::size_t passes() const { return stages.size(); }
};

/// Plans a query. Pure function of the pipeline; cheap enough to run per
/// round (ops are copied by value, compiled expressions are shared).
QueryPlan plan_query(const LogQuery& q);

/// Static per-stage record-count upper bounds for `input_records` entering
/// the plan: entry i is the worst-case number of records entering stage i,
/// and the final extra entry is the output estimate. Mirrors the clamping
/// run_plan actually performs (scan_head/scan_tail/early_stop, head/tail
/// barriers); filters and aggregates keep the upper bound. This is the
/// cost model behind `knctl analyze --cost`.
std::vector<std::size_t> estimate_stage_inputs(const QueryPlan& plan,
                                               std::size_t input_records);

/// Executes a plan over copy-on-write record handles. `stats`, when given,
/// receives the per-stage record counts actually processed (the charging
/// basis for consolidated Sync rounds) and how many input records the
/// first stage consumed before an early stop.
struct PlanRunStats {
  std::vector<std::size_t> stage_inputs;  // records entering each stage
  std::size_t consumed = 0;               // stage-0 inputs actually read
  [[nodiscard]] std::size_t total_processed() const {
    std::size_t total = 0;
    for (std::size_t n : stage_inputs) total += n;
    return total;
  }
};
common::Result<std::vector<common::CowValue>> run_plan(
    const QueryPlan& plan, std::vector<common::CowValue> records,
    PlanRunStats* stats = nullptr);

/// Wraps/unwraps plain values (convenience for callers without shared
/// buffers; still benefits from fused passes).
common::Result<std::vector<common::Value>> run_plan(
    const QueryPlan& plan, std::vector<common::Value> records,
    PlanRunStats* stats = nullptr);

}  // namespace knactor::de
