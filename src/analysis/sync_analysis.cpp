#include "analysis/sync_analysis.h"

#include <utility>

#include "de/log.h"
#include "de/query.h"

namespace knactor::analysis {

using FieldMap = std::map<std::string, Type>;

std::map<std::string, Type> schema_field_types(const de::StoreSchema& schema) {
  FieldMap out;
  for (const auto& field : schema.fields) {
    out[field.name] = type_from_decl(field.type);
  }
  return out;
}

namespace {

bool numeric_ok(const Type& t) {
  return t.is_any() || t.is_numeric() || t.kind == TypeKind::kNull;
}

/// Checks a stage expression (filter predicate or put value) against the
/// current record shape; KN106/KN105 are re-coded into the pipeline space
/// (KN201 unknown field, KN203 invalid predicate).
Type check_stage_expr(const expr::Node& node, const FieldMap& fields,
                      const SourceLoc& loc, const std::string& context,
                      std::vector<Diagnostic>& out) {
  FieldMapResolver resolver(fields);
  ExprCheckOptions options;
  options.code_unknown_ref = "KN201";
  options.code_operand = "KN203";
  ExprTypeChecker checker(resolver, loc, context, out, options);
  return checker.infer(node);
}

void missing_field(const std::string& field, const FieldMap& fields,
                   const SourceLoc& loc, const std::string& context,
                   std::vector<Diagnostic>& out) {
  std::string have;
  for (const auto& entry : fields) {
    if (!have.empty()) have += ", ";
    have += entry.first;
  }
  out.push_back(make_diag(
      "KN201", loc,
      context + ": field '" + field + "' is not in the record at this stage",
      have.empty() ? std::string()
                   : "fields available here: " + have));
}

}  // namespace

FieldMap analyze_pipeline(const std::string& pipeline_text, FieldMap fields,
                          const SourceLoc& loc, const std::string& route_name,
                          std::vector<Diagnostic>& out) {
  if (pipeline_text.empty()) return fields;  // identity route
  auto parsed = de::parse_query(pipeline_text);
  if (!parsed.ok()) {
    out.push_back(make_diag("KN208", loc,
                            "route '" + route_name + "': pipeline does not "
                            "parse: " + parsed.error().message));
    return fields;
  }
  const de::LogQuery& query = parsed.value();
  int stage = 0;
  for (const auto& op : query) {
    ++stage;
    std::string context =
        "route '" + route_name + "' stage " + std::to_string(stage);
    switch (op.kind) {
      case de::LogOp::Kind::kFilter: {
        if (op.compiled != nullptr) {
          check_stage_expr(*op.compiled, fields, loc,
                           context + " (where)", out);
        }
        break;
      }
      case de::LogOp::Kind::kRename: {
        // renames: old -> new. All renames apply to the incoming shape
        // simultaneously, but a new name colliding with a surviving field
        // silently overwrites it at runtime — flag it.
        FieldMap next = fields;
        for (const auto& [old_name, new_name] : op.renames) {
          auto it = fields.find(old_name);
          if (it == fields.end()) {
            missing_field(old_name, fields, loc, context + " (rename)", out);
            continue;
          }
          if (new_name != old_name && fields.count(new_name) != 0 &&
              op.renames.count(new_name) == 0) {
            out.push_back(make_diag(
                "KN202", loc,
                context + " (rename): renaming '" + old_name + "' to '" +
                    new_name + "' collides with an existing field",
                "drop or rename the other '" + new_name + "' first"));
          }
          next.erase(old_name);
          next[new_name] = it->second;
        }
        fields = std::move(next);
        break;
      }
      case de::LogOp::Kind::kProject: {
        FieldMap next;
        for (const auto& field : op.fields) {
          auto it = fields.find(field);
          if (it == fields.end()) {
            missing_field(field, fields, loc, context + " (cut)", out);
            continue;
          }
          next[field] = it->second;
        }
        fields = std::move(next);
        break;
      }
      case de::LogOp::Kind::kDrop: {
        for (const auto& field : op.fields) {
          if (fields.erase(field) == 0) {
            missing_field(field, fields, loc, context + " (drop)", out);
          }
        }
        break;
      }
      case de::LogOp::Kind::kSort: {
        auto it = fields.find(op.field);
        if (it == fields.end()) {
          missing_field(op.field, fields, loc, context + " (sort)", out);
        } else if (it->second.kind == TypeKind::kList ||
                   it->second.kind == TypeKind::kObject) {
          out.push_back(make_diag(
              "KN204", loc,
              context + " (sort): field '" + op.field + "' is " +
                  type_to_string(it->second) + ", which has no ordering"));
        }
        break;
      }
      case de::LogOp::Kind::kHead:
      case de::LogOp::Kind::kTail:
        break;  // shape-preserving
      case de::LogOp::Kind::kMap: {
        Type t = Type::any();
        if (op.compiled != nullptr) {
          t = check_stage_expr(*op.compiled, fields, loc,
                               context + " (put " + op.field + ")", out);
        }
        fields[op.field] = t;
        break;
      }
      case de::LogOp::Kind::kAggregate: {
        FieldMap next;
        for (const auto& field : op.fields) {  // group_by keys
          auto it = fields.find(field);
          if (it == fields.end()) {
            missing_field(field, fields, loc, context + " (summarize by)",
                          out);
            next[field] = Type::any();
          } else {
            next[field] = it->second;
          }
        }
        for (const auto& [out_name, agg] : op.aggs) {
          const auto& [fn, in_name] = agg;
          Type in_type = Type::any();
          if (!in_name.empty()) {
            auto it = fields.find(in_name);
            if (it == fields.end()) {
              missing_field(in_name, fields, loc,
                            context + " (summarize " + fn + ")", out);
            } else {
              in_type = it->second;
            }
          }
          if ((fn == "sum" || fn == "min" || fn == "max" || fn == "avg") &&
              !numeric_ok(in_type)) {
            out.push_back(make_diag(
                "KN205", loc,
                context + " (summarize): " + fn + "(" + in_name + ") "
                "aggregates a " + type_to_string(in_type) + " field"));
          }
          if (fn == "count") {
            next[out_name] = Type::of(TypeKind::kInt);
          } else if (fn == "avg") {
            next[out_name] = Type::of(TypeKind::kNumber);
          } else {
            // sum/min/max/first/last follow the input field's type.
            next[out_name] = in_type;
          }
        }
        fields = std::move(next);
        break;
      }
    }
  }
  return fields;
}

FieldMap analyze_sync_route(const SyncRouteSpec& route,
                            const de::SchemaRegistry& schemas,
                            std::vector<Diagnostic>& out) {
  const de::StoreSchema* source = schemas.find(route.source_schema);
  if (source == nullptr) {
    out.push_back(make_diag(
        "KN207", route.loc,
        "route '" + route.name + "': source schema '" + route.source_schema +
            "' is not registered; pipeline fields cannot be checked",
        "pass its schema file via --schema"));
    return {};
  }
  FieldMap flow = analyze_pipeline(route.pipeline_text,
                                   schema_field_types(*source), route.loc,
                                   route.name, out);
  const de::StoreSchema* target = schemas.find(route.target_schema);
  if (target == nullptr) {
    if (!route.target_schema.empty()) {
      out.push_back(make_diag(
          "KN207", route.loc,
          "route '" + route.name + "': target schema '" +
              route.target_schema + "' is not registered; output conformance "
              "cannot be checked",
          "pass its schema file via --schema"));
    }
    return flow;
  }
  for (const auto& [name, type] : flow) {
    const de::SchemaField* field = target->field(name);
    if (field == nullptr) {
      out.push_back(make_diag(
          "KN206", route.loc,
          "route '" + route.name + "': output field '" + name +
              "' is not in target schema " + target->id,
          "cut it before the route's end, or add it to the schema"));
      continue;
    }
    Type expected = type_from_decl(field->type);
    if (!assignable(expected, type)) {
      out.push_back(make_diag(
          "KN206", route.loc,
          "route '" + route.name + "': output field '" + name + "' is " +
              type_to_string(type) + " but target schema " + target->id +
              " declares " + type_to_string(expected)));
    }
  }
  return flow;
}

}  // namespace knactor::analysis
