// Unit tests for the durable persistence tier: the binary format layer
// (CRC framing, value codec, journal scan, snapshot codec), the
// generation-based Engine (append/snapshot/recover/gc/inspect), and the
// ObjectDe integration (journal-before-notify, counter restoration,
// transaction/epoch frames, auto-snapshot cadence, GC safety). The
// crash-seed differential and torn-tail fuzz suites live under
// tests/property/ with the `durable` label.
#include "de/persist/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "de/object.h"
#include "de/persist/format.h"
#include "de/retention.h"

namespace knactor::de::persist {
namespace {

using common::Value;

std::string test_dir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "kn_persist_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- format layer ----------------------------------------------------------

TEST(PersistFormat, Crc32KnownVector) {
  // The IEEE CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(PersistFormat, ValueCodecRoundTripIsByteFaithful) {
  Value v = Value::object({
      {"null", Value(nullptr)},
      {"t", Value(true)},
      {"f", Value(false)},
      {"int", Value(static_cast<std::int64_t>(-42))},
      {"dbl", Value(3.25)},
      {"str", Value("hello")},
  });
  Value arr = Value::array();
  arr.as_array().push_back(Value(1));
  arr.as_array().push_back(Value("two"));
  arr.as_array().push_back(Value::object({{"nested", Value(3)}}));
  v.set("arr", std::move(arr));

  std::string bytes;
  put_value(bytes, v);
  Cursor in(bytes);
  Value decoded;
  ASSERT_TRUE(in.get_value(&decoded));
  EXPECT_TRUE(in.done());

  std::string again;
  put_value(again, decoded);
  EXPECT_EQ(bytes, again);  // byte-faithful: field order survives
}

TEST(PersistFormat, RecordRoundTrip) {
  std::string bytes;
  encode_put(bytes, "orders", "o-1", 17, 100, 200,
             Value::object({{"qty", Value(3)}}));
  encode_delete(bytes, "orders", "o-2");

  Cursor in(bytes);
  Record put;
  ASSERT_TRUE(decode_record(in, &put));
  EXPECT_EQ(put.op, Record::Op::kPut);
  EXPECT_EQ(put.store, "orders");
  EXPECT_EQ(put.key, "o-1");
  EXPECT_EQ(put.version, 17u);
  EXPECT_EQ(put.created_at, 100);
  EXPECT_EQ(put.updated_at, 200);
  ASSERT_NE(put.data, nullptr);
  EXPECT_EQ(put.data->as_object().find("qty")->as_int(), 3);

  Record del;
  ASSERT_TRUE(decode_record(in, &del));
  EXPECT_EQ(del.op, Record::Op::kDelete);
  EXPECT_EQ(del.key, "o-2");
  EXPECT_EQ(del.data, nullptr);
  EXPECT_TRUE(in.done());
}

TEST(PersistFormat, JournalScanWalksFrames) {
  std::string rec1;
  encode_put(rec1, "s", "a", 1, 0, 0, Value(1));
  std::string rec2;
  encode_delete(rec2, "s", "a");

  std::string journal = build_journal_header(3);
  journal += build_frame({rec1}, 1, 2, 2);
  journal += build_frame({rec2}, 1, 2, 3);

  JournalScan scan = scan_journal(journal);
  EXPECT_TRUE(scan.header_valid);
  EXPECT_EQ(scan.generation, 3u);
  ASSERT_EQ(scan.frames.size(), 2u);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, journal.size());
  EXPECT_EQ(scan.frames[0].records.size(), 1u);
  EXPECT_EQ(scan.frames[1].records[0].op, Record::Op::kDelete);
  EXPECT_EQ(scan.frames[1].next_revision, 2u);
  EXPECT_EQ(scan.frames[1].commit_seq, 3u);
}

TEST(PersistFormat, TornTailStopsAtLastValidFrame) {
  std::string rec;
  encode_put(rec, "s", "a", 1, 0, 0, Value(1));
  std::string journal = build_journal_header(0);
  journal += build_frame({rec}, 1, 2, 2);
  const std::size_t valid = journal.size();
  std::string torn_frame = build_frame({rec}, 1, 3, 3);
  journal += torn_frame.substr(0, torn_frame.size() / 2);

  JournalScan scan = scan_journal(journal);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, valid);
}

TEST(PersistFormat, BitFlipInvalidatesExactlyTheHitFrame) {
  std::string rec;
  encode_put(rec, "s", "a", 1, 0, 0, Value(1));
  std::string journal = build_journal_header(0);
  journal += build_frame({rec}, 1, 2, 2);
  const std::size_t first_end = journal.size();
  journal += build_frame({rec}, 1, 3, 3);
  journal[first_end + kFrameHeaderBytes + 2] ^= 0x40;  // payload of frame 2

  JournalScan scan = scan_journal(journal);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, first_end);
}

TEST(PersistFormat, SnapshotRoundTrip) {
  Image image;
  image.next_revision = 42;
  image.commit_seq = 17;
  StoreImage store;
  store.name = "orders";
  ObjectImage obj;
  obj.key = "o-1";
  obj.version = 7;
  obj.created_at = 5;
  obj.updated_at = 9;
  obj.data = std::make_shared<const Value>(Value::object({{"x", Value(1)}}));
  store.objects.push_back(obj);
  image.stores.push_back(store);

  const std::string bytes = encode_snapshot(image, 4);
  SnapshotInfo info = probe_snapshot(bytes);
  EXPECT_TRUE(info.header_valid);
  EXPECT_TRUE(info.complete);
  EXPECT_EQ(info.generation, 4u);

  auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->next_revision, 42u);
  EXPECT_EQ(decoded->commit_seq, 17u);
  ASSERT_EQ(decoded->stores.size(), 1u);
  ASSERT_EQ(decoded->stores[0].objects.size(), 1u);
  EXPECT_EQ(decoded->stores[0].objects[0].version, 7u);
  // Identical state must serialize to identical bytes.
  EXPECT_EQ(encode_snapshot(*decoded, 4), bytes);
}

TEST(PersistFormat, CorruptSnapshotRejected) {
  Image image;
  std::string bytes = encode_snapshot(image, 1);
  EXPECT_TRUE(decode_snapshot(bytes).has_value());
  // Torn tail.
  EXPECT_FALSE(decode_snapshot(
                   std::string_view(bytes).substr(0, bytes.size() - 1))
                   .has_value());
  // Bit flip in the payload.
  std::string flipped = bytes;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x01);
  EXPECT_FALSE(decode_snapshot(flipped).has_value());
}

// --- engine ----------------------------------------------------------------

TEST(PersistEngine, AppendThenRecoverReplaysJournal) {
  const std::string dir = test_dir("append_recover");
  Engine engine({dir, 0});
  ASSERT_TRUE(engine.open().ok());

  std::string rec1;
  encode_put(rec1, "s", "a", 1, 0, 0, Value(10));
  std::string rec2;
  encode_put(rec2, "s", "b", 2, 0, 0, Value(20));
  ASSERT_TRUE(engine.append_batch({rec1}, 1, 2, 2).ok());
  ASSERT_TRUE(engine.append_batch({rec2}, 1, 3, 3).ok());

  Engine reader({dir, 0});
  auto recovered = reader.recover();
  ASSERT_TRUE(recovered.ok());
  const Image& image = recovered.value();
  EXPECT_EQ(image.next_revision, 3u);
  EXPECT_EQ(image.commit_seq, 3u);
  ASSERT_EQ(image.stores.size(), 1u);
  ASSERT_EQ(image.stores[0].objects.size(), 2u);
  EXPECT_EQ(image.stores[0].objects[0].key, "a");
  EXPECT_EQ(image.stores[0].objects[1].key, "b");
  EXPECT_EQ(reader.stats().frames_replayed, 2u);
}

TEST(PersistEngine, SnapshotRotatesGenerationAndBoundsReplay) {
  const std::string dir = test_dir("rotate");
  Engine engine({dir, 0});
  ASSERT_TRUE(engine.open().ok());
  EXPECT_EQ(engine.generation(), 0u);

  std::string rec;
  encode_put(rec, "s", "a", 1, 0, 0, Value(1));
  ASSERT_TRUE(engine.append_batch({rec}, 1, 2, 2).ok());

  Image image;
  image.next_revision = 2;
  image.commit_seq = 2;
  StoreImage store;
  store.name = "s";
  ObjectImage obj;
  obj.key = "a";
  obj.version = 1;
  obj.data = std::make_shared<const Value>(Value(1));
  store.objects.push_back(obj);
  image.stores.push_back(store);
  ASSERT_TRUE(engine.snapshot(image).ok());
  EXPECT_EQ(engine.generation(), 1u);
  EXPECT_EQ(engine.records_since_snapshot(), 0u);

  std::string rec2;
  encode_put(rec2, "s", "b", 2, 0, 0, Value(2));
  ASSERT_TRUE(engine.append_batch({rec2}, 1, 3, 3).ok());

  // Recovery loads the snapshot and replays only the generation-1 delta.
  Engine reader({dir, 0});
  auto recovered = reader.recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().object_count(), 2u);
  EXPECT_EQ(recovered.value().next_revision, 3u);
  EXPECT_EQ(reader.stats().frames_replayed, 1u);  // delta only
}

TEST(PersistEngine, TornSnapshotFallsBackToPreviousGeneration) {
  const std::string dir = test_dir("torn_snapshot");
  Engine engine({dir, 0});
  ASSERT_TRUE(engine.open().ok());
  std::string rec;
  encode_put(rec, "s", "a", 1, 0, 0, Value(1));
  ASSERT_TRUE(engine.append_batch({rec}, 1, 2, 2).ok());

  Image image;
  image.next_revision = 2;
  image.commit_seq = 2;
  ASSERT_TRUE(engine.snapshot(image).ok());
  std::string rec2;
  encode_put(rec2, "s", "b", 2, 0, 0, Value(2));
  ASSERT_TRUE(engine.append_batch({rec2}, 1, 3, 3).ok());

  // Corrupt the newest snapshot: recovery must fall back to generation 0's
  // chain (empty image + journal-0 + journal-1) and still see everything.
  const std::string snap = engine.snapshot_path(1);
  std::string bytes = slurp(snap);
  spit(snap, bytes.substr(0, bytes.size() / 2));

  Engine reader({dir, 0});
  auto recovered = reader.recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().object_count(), 2u);
  EXPECT_EQ(recovered.value().next_revision, 3u);
  EXPECT_EQ(reader.stats().snapshots_skipped, 1u);
  EXPECT_EQ(reader.stats().frames_replayed, 2u);  // full chain
}

TEST(PersistEngine, GcReclaimsOnlyGenerationsBelowNewestValidSnapshot) {
  const std::string dir = test_dir("gc");
  Engine engine({dir, 0});
  ASSERT_TRUE(engine.open().ok());
  std::string rec;
  encode_put(rec, "s", "a", 1, 0, 0, Value(1));
  ASSERT_TRUE(engine.append_batch({rec}, 1, 2, 2).ok());
  Image image;
  ASSERT_TRUE(engine.snapshot(image).ok());
  ASSERT_TRUE(engine.append_batch({rec}, 1, 3, 3).ok());
  ASSERT_TRUE(engine.snapshot(image).ok());

  // Generations 0 and 1 are below snapshot-2: both reclaimable.
  EXPECT_EQ(engine.gc(), 2u);
  EXPECT_FALSE(std::filesystem::exists(engine.journal_path(0)));
  EXPECT_FALSE(std::filesystem::exists(engine.snapshot_path(1)));
  EXPECT_TRUE(std::filesystem::exists(engine.snapshot_path(2)));
  EXPECT_TRUE(std::filesystem::exists(engine.journal_path(2)));
  EXPECT_EQ(engine.gc(), 0u);  // idempotent
}

TEST(PersistEngine, GcNeverReclaimsTheRecoveryBaseOfATornSnapshot) {
  // Regression for the snapshot-write/truncation race: if the newest
  // snapshot is torn (crash between snapshot write and old-generation
  // reclamation), the previous generation is still the recovery base and
  // GC must keep it.
  const std::string dir = test_dir("gc_torn");
  Engine engine({dir, 0});
  ASSERT_TRUE(engine.open().ok());
  std::string rec;
  encode_put(rec, "s", "a", 1, 0, 0, Value(1));
  ASSERT_TRUE(engine.append_batch({rec}, 1, 2, 2).ok());
  Image image;
  ASSERT_TRUE(engine.snapshot(image).ok());

  // Tear snapshot-1 after the fact (as a crash mid-write would have).
  const std::string snap = engine.snapshot_path(1);
  std::string bytes = slurp(snap);
  spit(snap, bytes.substr(0, bytes.size() / 2));

  Engine reader({dir, 0});
  ASSERT_TRUE(reader.open().ok());
  EXPECT_EQ(reader.gc(), 0u);  // nothing valid above generation 0
  EXPECT_TRUE(std::filesystem::exists(reader.journal_path(0)));
  auto recovered = reader.recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().object_count(), 1u);
}

TEST(PersistEngine, InspectListsGenerations) {
  const std::string dir = test_dir("inspect");
  Engine engine({dir, 0});
  ASSERT_TRUE(engine.open().ok());
  std::string rec;
  encode_put(rec, "s", "a", 1, 0, 0, Value(1));
  ASSERT_TRUE(engine.append_batch({rec}, 1, 2, 2).ok());
  Image image;
  image.next_revision = 2;
  image.commit_seq = 2;
  ASSERT_TRUE(engine.snapshot(image).ok());

  auto gens = Engine::inspect(dir);
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens[0].generation, 0u);
  EXPECT_TRUE(gens[0].has_journal);
  EXPECT_FALSE(gens[0].has_snapshot);
  EXPECT_EQ(gens[0].journal_frames, 1u);
  EXPECT_EQ(gens[0].journal_records, 1u);
  EXPECT_FALSE(gens[0].journal_torn);
  EXPECT_EQ(gens[1].generation, 1u);
  EXPECT_TRUE(gens[1].snapshot_valid);
  EXPECT_TRUE(gens[1].has_journal);
  ASSERT_TRUE(Engine::recovery_base(gens).has_value());
  EXPECT_EQ(*Engine::recovery_base(gens), 1u);
}

TEST(PersistEngine, SimulatedCrashTearsTheFrameAndFailsTheEngine) {
  const std::string dir = test_dir("crash_append");
  Engine engine({dir, 0});
  ASSERT_TRUE(engine.open().ok());
  std::string rec;
  encode_put(rec, "s", "a", 1, 0, 0, Value(1));
  ASSERT_TRUE(engine.append_batch({rec}, 1, 2, 2).ok());

  engine.set_fault_hook(
      [](CrashPoint p) { return p == CrashPoint::kJournalAppend; });
  EXPECT_FALSE(engine.append_batch({rec}, 1, 3, 3).ok());
  EXPECT_TRUE(engine.failed());
  // Everything fails until recovery.
  EXPECT_FALSE(engine.append_batch({rec}, 1, 3, 3).ok());

  engine.set_fault_hook(nullptr);
  auto recovered = engine.recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(engine.failed());
  // Only the first (intact) frame survived; the torn tail was truncated.
  EXPECT_EQ(engine.stats().frames_replayed, 1u);
  EXPECT_EQ(recovered.value().next_revision, 2u);
  // Appends continue cleanly after the truncation.
  ASSERT_TRUE(engine.append_batch({rec}, 1, 3, 3).ok());
  Engine reader({dir, 0});
  auto again = reader.recover();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(reader.stats().frames_replayed, 2u);
}

// --- ObjectDe integration --------------------------------------------------

ObjectDeProfile durable_instant() {
  ObjectDeProfile p = ObjectDeProfile::instant();
  p.durable = true;
  return p;
}

TEST(PersistObjectDe, RestartRecoversStateVersionsAndCounters) {
  const std::string dir = test_dir("de_restart");
  sim::VirtualClock clock;
  ObjectDe de(clock, durable_instant());
  Engine engine({dir, 0});
  ASSERT_TRUE(de.enable_persistence(&engine).ok());

  ObjectStore& store = de.create_store("s");
  auto v1 = store.put_sync("me", "a", Value::object({{"x", Value(1)}}));
  auto v2 = store.put_sync("me", "b", Value::object({{"x", Value(2)}}));
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(store.remove_sync("me", "a").ok());

  de.crash();
  de.recover();

  ObjectStore* recovered = de.store("s");
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->peek("a"), nullptr);
  const StateObject* b = recovered->peek("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->version, v2.value());  // exact version, not re-assigned
  EXPECT_EQ(b->data->as_object().find("x")->as_int(), 2);

  // Counters resume where the durable history left off: the next write
  // gets the version a fault-free run would have assigned.
  auto v3 = recovered->put_sync("me", "c", Value(3));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3.value(), v2.value() + 1);
}

TEST(PersistObjectDe, AutoSnapshotHonorsCadence) {
  const std::string dir = test_dir("de_cadence");
  sim::VirtualClock clock;
  ObjectDe de(clock, durable_instant());
  Engine engine({dir, 3});
  ASSERT_TRUE(de.enable_persistence(&engine).ok());

  ObjectStore& store = de.create_store("s");
  ASSERT_TRUE(store.put_sync("me", "a", Value(1)).ok());
  ASSERT_TRUE(store.put_sync("me", "b", Value(2)).ok());
  EXPECT_EQ(engine.generation(), 0u);
  ASSERT_TRUE(store.put_sync("me", "c", Value(3)).ok());  // 3rd record
  EXPECT_EQ(engine.generation(), 1u);
  EXPECT_EQ(engine.records_since_snapshot(), 0u);
  EXPECT_EQ(engine.stats().snapshots, 1u);

  // Snapshot-bounded recovery: a fresh engine replays zero frames.
  Engine reader({dir, 0});
  auto recovered = reader.recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(reader.stats().frames_replayed, 0u);
  EXPECT_EQ(recovered.value().object_count(), 3u);
}

TEST(PersistObjectDe, TransactionJournalsAsOneAtomicFrame) {
  const std::string dir = test_dir("de_txn");
  sim::VirtualClock clock;
  ObjectDe de(clock, durable_instant());
  Engine engine({dir, 0});
  ASSERT_TRUE(de.enable_persistence(&engine).ok());
  de.create_store("s");

  std::vector<ObjectDe::TxnOp> ops;
  ops.push_back({"s", "a", Value(1), false, std::nullopt});
  ops.push_back({"s", "b", Value(2), false, std::nullopt});
  ops.push_back({"s", "c", Value(3), false, std::nullopt});
  ASSERT_TRUE(de.transact_sync("me", std::move(ops)).ok());

  auto gens = Engine::inspect(dir);
  ASSERT_EQ(gens.size(), 1u);
  EXPECT_EQ(gens[0].journal_frames, 1u);   // one frame...
  EXPECT_EQ(gens[0].journal_records, 3u);  // ...carrying all three writes
}

TEST(PersistObjectDe, EpochJournalsAsOneAtomicFrame) {
  const std::string dir = test_dir("de_epoch");
  sim::VirtualClock clock;
  ObjectDe de(clock, durable_instant());
  Engine engine({dir, 0});
  ASSERT_TRUE(de.enable_persistence(&engine).ok());
  ObjectStore& store = de.create_store("s");

  std::vector<EpochWrite> writes;
  for (int i = 0; i < 5; ++i) {
    EpochWrite w;
    w.key = "k" + std::to_string(i);
    w.data = Value(i);
    writes.push_back(std::move(w));
  }
  auto results = store.put_epoch_sync("me", std::move(writes));
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  auto gens = Engine::inspect(dir);
  ASSERT_EQ(gens.size(), 1u);
  EXPECT_EQ(gens[0].journal_frames, 1u);
  EXPECT_EQ(gens[0].journal_records, 5u);

  // The frame's counter footer carries the epoch's full reservation.
  de.crash();
  de.recover();
  auto next = de.store("s")->put_sync("me", "z", Value(9));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 6u);  // 5 epoch revisions + 1
}

TEST(PersistObjectDe, KernelGcDrivesGenerationReclamation) {
  // RetentionManager registers with the kernel; the persistence engine's
  // generation GC rides the same run_gc() hook chain.
  const std::string dir = test_dir("de_gc");
  sim::VirtualClock clock;
  ObjectDe de(clock, durable_instant());
  RetentionManager retention(de);
  retention.register_with_kernel("gc");
  Engine engine({dir, 0});
  ASSERT_TRUE(de.enable_persistence(&engine).ok());

  ObjectStore& store = de.create_store("s");
  ASSERT_TRUE(store.put_sync("me", "a", Value(1)).ok());
  ASSERT_TRUE(de.snapshot_now().ok());
  ASSERT_TRUE(store.put_sync("me", "b", Value(2)).ok());
  ASSERT_TRUE(de.snapshot_now().ok());

  ASSERT_TRUE(std::filesystem::exists(engine.journal_path(0)));
  EXPECT_GE(de.kernel().run_gc(), 2u);  // generations 0 and 1
  EXPECT_FALSE(std::filesystem::exists(engine.journal_path(0)));
  EXPECT_TRUE(std::filesystem::exists(engine.snapshot_path(2)));

  // Post-GC recovery still sees everything.
  de.crash();
  de.recover();
  EXPECT_NE(de.store("s")->peek("a"), nullptr);
  EXPECT_NE(de.store("s")->peek("b"), nullptr);
}

TEST(PersistObjectDe, TornAppendFailsTheOpAndRetryMatchesOracle) {
  const std::string dir = test_dir("de_torn_append");
  sim::VirtualClock clock;
  ObjectDe de(clock, durable_instant());
  Engine engine({dir, 0});
  ASSERT_TRUE(de.enable_persistence(&engine).ok());
  ObjectStore& store = de.create_store("s");
  ASSERT_TRUE(store.put_sync("me", "a", Value(1)).ok());

  // Crash exactly one append.
  int fires = 0;
  engine.set_fault_hook([&fires](CrashPoint p) {
    return p == CrashPoint::kJournalAppend && fires++ == 0;
  });
  auto failed = store.put_sync("me", "b", Value(2));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, common::Error::Code::kUnavailable);
  EXPECT_FALSE(de.available());

  de.recover();
  EXPECT_EQ(de.store("s")->peek("b"), nullptr);  // op was not durable
  auto retried = de.store("s")->put_sync("me", "b", Value(2));
  ASSERT_TRUE(retried.ok());

  // Oracle: the same two puts with no crash.
  const std::string oracle_dir = test_dir("de_torn_append_oracle");
  sim::VirtualClock oracle_clock;
  ObjectDe oracle(oracle_clock, durable_instant());
  Engine oracle_engine({oracle_dir, 0});
  ASSERT_TRUE(oracle.enable_persistence(&oracle_engine).ok());
  ObjectStore& oracle_store = oracle.create_store("s");
  ASSERT_TRUE(oracle_store.put_sync("me", "a", Value(1)).ok());
  auto oracle_b = oracle_store.put_sync("me", "b", Value(2));
  ASSERT_TRUE(oracle_b.ok());
  EXPECT_EQ(retried.value(), oracle_b.value());
}

}  // namespace
}  // namespace knactor::de::persist
