#include "expr/eval.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"
#include "expr/parser.h"

namespace knactor::expr {

using common::Error;
using common::Result;
using common::Value;

namespace {

Error eval_error(const std::string& msg) { return Error::eval(msg); }

/// Python-style equality: numbers compare by value across int/double;
/// everything else by type+structure.
bool values_equal(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) return a.as_number() == b.as_number();
  return a == b;
}

Result<int> compare_values(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) {
    double x = a.as_number();
    double y = b.as_number();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.is_string() && b.is_string()) {
    return a.as_string().compare(b.as_string()) < 0
               ? -1
               : (a.as_string() == b.as_string() ? 0 : 1);
  }
  return eval_error(std::string("cannot order ") + a.type_name() + " and " +
                    b.type_name());
}

class Evaluator {
 public:
  Evaluator(const Env& env, const FunctionRegistry& functions)
      : env_(env), functions_(functions) {}

  Result<Value> eval(const Node& node) {
    switch (node.kind) {
      case NodeKind::kLiteral:
        return node.literal;
      case NodeKind::kName: {
        const Value* v = env_.resolve(node.name);
        if (v == nullptr) {
          return eval_error("unknown name '" + node.name + "'");
        }
        return *v;
      }
      case NodeKind::kAttribute: {
        KN_ASSIGN_OR_RETURN(Value base, eval(*node.a));
        if (base.is_null()) {
          // Missing upstream state resolves to null rather than erroring:
          // Cast treats null results as "dependency not ready yet".
          return Value(nullptr);
        }
        if (!base.is_object()) {
          return eval_error("cannot access attribute '" + node.name +
                            "' of " + base.type_name());
        }
        const Value* v = base.get(node.name);
        return v == nullptr ? Value(nullptr) : *v;
      }
      case NodeKind::kIndex: {
        KN_ASSIGN_OR_RETURN(Value base, eval(*node.a));
        KN_ASSIGN_OR_RETURN(Value sub, eval(*node.b));
        if (base.is_array()) {
          auto idx = sub.try_int();
          if (!idx) return eval_error("array index must be an int");
          std::int64_t i = *idx;
          auto n = static_cast<std::int64_t>(base.as_array().size());
          if (i < 0) i += n;  // Python negative indexing
          if (i < 0 || i >= n) return eval_error("array index out of range");
          return base.as_array()[static_cast<std::size_t>(i)];
        }
        if (base.is_object()) {
          auto key = sub.try_string();
          if (!key) return eval_error("object index must be a string");
          const Value* v = base.get(*key);
          return v == nullptr ? Value(nullptr) : *v;
        }
        if (base.is_string()) {
          auto idx = sub.try_int();
          if (!idx) return eval_error("string index must be an int");
          std::int64_t i = *idx;
          auto n = static_cast<std::int64_t>(base.as_string().size());
          if (i < 0) i += n;
          if (i < 0 || i >= n) return eval_error("string index out of range");
          return Value(std::string(1, base.as_string()[static_cast<std::size_t>(i)]));
        }
        return eval_error(std::string("cannot index ") + base.type_name());
      }
      case NodeKind::kCall: {
        const Function* fn = functions_.find(node.name);
        if (fn == nullptr) {
          return eval_error("unknown function '" + node.name + "'");
        }
        std::vector<Value> args;
        args.reserve(node.args.size());
        for (const auto& arg : node.args) {
          KN_ASSIGN_OR_RETURN(Value v, eval(*arg));
          args.push_back(std::move(v));
        }
        return (*fn)(args);
      }
      case NodeKind::kUnary: {
        KN_ASSIGN_OR_RETURN(Value v, eval(*node.a));
        if (node.op == "not") return Value(!v.truthy());
        if (!v.is_number()) {
          return eval_error("unary '" + node.op + "' needs a number");
        }
        if (node.op == "-") {
          if (v.is_int()) return Value(-v.as_int());
          return Value(-v.as_double());
        }
        return v;  // unary '+'
      }
      case NodeKind::kBinary:
        return eval_binary(node);
      case NodeKind::kTernary: {
        KN_ASSIGN_OR_RETURN(Value cond, eval(*node.a));
        // A null condition means the deciding state has not arrived:
        // neither branch is taken (the Cast integrator skips the mapping
        // until the dependency resolves).
        if (cond.is_null()) return Value(nullptr);
        return cond.truthy() ? eval(*node.b) : eval(*node.c);
      }
      case NodeKind::kList: {
        Value::Array arr;
        arr.reserve(node.args.size());
        for (const auto& item : node.args) {
          KN_ASSIGN_OR_RETURN(Value v, eval(*item));
          arr.push_back(std::move(v));
        }
        return Value(std::move(arr));
      }
      case NodeKind::kDict: {
        Value::Object obj;
        for (std::size_t i = 0; i < node.args.size(); ++i) {
          KN_ASSIGN_OR_RETURN(Value v, eval(*node.args[i]));
          obj.set(node.dict_keys[i], std::move(v));
        }
        return Value(std::move(obj));
      }
      case NodeKind::kListComp: {
        KN_ASSIGN_OR_RETURN(Value iter, eval(*node.a));
        if (iter.is_null()) return Value(nullptr);  // dependency not ready
        if (!iter.is_array()) {
          return eval_error("comprehension iterable must be a list, got " +
                            std::string(iter.type_name()));
        }
        Value::Array out;
        for (const auto& item : iter.as_array()) {
          MapEnv scope(&env_);
          scope.bind(node.name, item);
          Evaluator inner(scope, functions_);
          if (node.c) {
            KN_ASSIGN_OR_RETURN(Value keep, inner.eval(*node.c));
            if (!keep.truthy()) continue;
          }
          KN_ASSIGN_OR_RETURN(Value v, inner.eval(*node.b));
          out.push_back(std::move(v));
        }
        return Value(std::move(out));
      }
    }
    return eval_error("unhandled node kind");
  }

 private:
  Result<Value> eval_binary(const Node& node) {
    const std::string& op = node.op;
    if (op == "and") {
      KN_ASSIGN_OR_RETURN(Value lhs, eval(*node.a));
      if (!lhs.truthy()) return lhs;  // Python returns the operand
      return eval(*node.b);
    }
    if (op == "or") {
      KN_ASSIGN_OR_RETURN(Value lhs, eval(*node.a));
      if (lhs.truthy()) return lhs;
      return eval(*node.b);
    }

    KN_ASSIGN_OR_RETURN(Value lhs, eval(*node.a));
    KN_ASSIGN_OR_RETURN(Value rhs, eval(*node.b));

    if (op == "==") return Value(values_equal(lhs, rhs));
    if (op == "!=") return Value(!values_equal(lhs, rhs));
    if (op == "<" || op == "<=" || op == ">" || op == ">=") {
      // Null (missing upstream state) propagates through orderings: the
      // policy "cost > 1000" is *not ready* until cost arrives, rather
      // than false (which would prematurely commit the else-branch of a
      // conditional) or an error. Null is falsy, so log filters simply
      // drop records lacking the field.
      if (lhs.is_null() || rhs.is_null()) return Value(nullptr);
      KN_ASSIGN_OR_RETURN(int c, compare_values(lhs, rhs));
      if (op == "<") return Value(c < 0);
      if (op == "<=") return Value(c <= 0);
      if (op == ">") return Value(c > 0);
      return Value(c >= 0);
    }
    if (op == "in" || op == "not in") {
      bool found = false;
      if (rhs.is_array()) {
        for (const auto& item : rhs.as_array()) {
          if (values_equal(item, lhs)) {
            found = true;
            break;
          }
        }
      } else if (rhs.is_object()) {
        auto key = lhs.try_string();
        found = key && rhs.as_object().contains(*key);
      } else if (rhs.is_string() && lhs.is_string()) {
        found = rhs.as_string().find(lhs.as_string()) != std::string::npos;
      } else {
        return eval_error(std::string("'in' needs a container, got ") +
                          rhs.type_name());
      }
      return Value(op == "in" ? found : !found);
    }

    if (op == "+") {
      if (lhs.is_string() && rhs.is_string()) {
        return Value(lhs.as_string() + rhs.as_string());
      }
      if (lhs.is_array() && rhs.is_array()) {
        Value::Array out = lhs.as_array();
        for (const auto& v : rhs.as_array()) out.push_back(v);
        return Value(std::move(out));
      }
    }
    if (!lhs.is_number() || !rhs.is_number()) {
      // Null operands propagate: a mapping whose inputs are absent yields
      // null ("not ready") rather than an error.
      if (lhs.is_null() || rhs.is_null()) return Value(nullptr);
      return eval_error("operator '" + op + "' needs numbers, got " +
                        lhs.type_name() + " and " + rhs.type_name());
    }

    bool both_int = lhs.is_int() && rhs.is_int();
    if (op == "+") {
      if (both_int) return Value(lhs.as_int() + rhs.as_int());
      return Value(lhs.as_number() + rhs.as_number());
    }
    if (op == "-") {
      if (both_int) return Value(lhs.as_int() - rhs.as_int());
      return Value(lhs.as_number() - rhs.as_number());
    }
    if (op == "*") {
      if (both_int) return Value(lhs.as_int() * rhs.as_int());
      return Value(lhs.as_number() * rhs.as_number());
    }
    if (op == "/") {
      if (rhs.as_number() == 0.0) return eval_error("division by zero");
      return Value(lhs.as_number() / rhs.as_number());
    }
    if (op == "//") {
      if (rhs.as_number() == 0.0) return eval_error("division by zero");
      double q = std::floor(lhs.as_number() / rhs.as_number());
      if (both_int) return Value(static_cast<std::int64_t>(q));
      return Value(q);
    }
    if (op == "%") {
      if (rhs.as_number() == 0.0) return eval_error("modulo by zero");
      if (both_int) {
        // Python semantics: result has the sign of the divisor.
        std::int64_t r = lhs.as_int() % rhs.as_int();
        if (r != 0 && ((r < 0) != (rhs.as_int() < 0))) r += rhs.as_int();
        return Value(r);
      }
      double r = std::fmod(lhs.as_number(), rhs.as_number());
      if (r != 0 && ((r < 0) != (rhs.as_number() < 0))) r += rhs.as_number();
      return Value(r);
    }
    if (op == "**") {
      double p = std::pow(lhs.as_number(), rhs.as_number());
      if (both_int && rhs.as_int() >= 0 && std::abs(p) < 9.0e15) {
        return Value(static_cast<std::int64_t>(p));
      }
      return Value(p);
    }
    return eval_error("unknown operator '" + op + "'");
  }

  const Env& env_;
  const FunctionRegistry& functions_;
};

}  // namespace

Result<Value> evaluate(const Node& node, const Env& env,
                       const FunctionRegistry& functions) {
  return Evaluator(env, functions).eval(node);
}

Result<Value> evaluate(std::string_view text, const Env& env,
                       const FunctionRegistry& functions) {
  KN_ASSIGN_OR_RETURN(NodePtr node, parse(text));
  return Evaluator(env, functions).eval(*node);
}

}  // namespace knactor::expr
