// Deterministic chaos engine (§3.3, Fig. 8): a FaultPlan describes seeded,
// reproducible network faults — message loss, duplication, reordering,
// transient link flaps — plus scheduled crash/restart windows for named
// targets (network nodes, DEs, knactors, integrators). A plan is pure data:
// attaching the same plan to the same simulation always yields a
// bit-identical fault schedule, so any failing chaos seed can be replayed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"
#include "sim/clock.h"
#include "sim/random.h"

namespace knactor::sim {

enum class FaultKind {
  kLoss,       // message silently dropped
  kDuplicate,  // message delivered twice
  kReorder,    // message delayed past later traffic
  kLinkDown,   // message dropped: link inside a flap window
  kNodeDown,   // message dropped: endpoint inside a crash window
  kCrash,      // component taken down (emitted by the crash scheduler)
  kRestart,    // component brought back up
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One injected fault. The ordered sequence of records is the fault
/// schedule; serializing it lets tests assert bit-identical replay.
struct FaultRecord {
  SimTime time = 0;
  FaultKind kind = FaultKind::kLoss;
  std::string src;     // sender, or crash target for kCrash/kRestart
  std::string dst;     // receiver ("" for crash/restart records)
  std::string detail;  // message type or window description
  std::uint64_t message_id = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Probabilistic per-message faults, applied to every link.
struct LinkFaultProfile {
  double loss = 0.0;       // P(drop) per message
  double duplicate = 0.0;  // P(second delivery) per delivered message
  double reorder = 0.0;    // P(extra delay) per delivered message
  SimTime reorder_delay = 5 * kMillisecond;  // max extra delay when reordered

  [[nodiscard]] bool any() const {
    return loss > 0.0 || duplicate > 0.0 || reorder > 0.0;
  }
};

/// Transient bidirectional link outage: messages on (a,b) in either
/// direction are dropped while `start <= now < end`.
struct FlapWindow {
  std::string a;
  std::string b;
  SimTime start = 0;
  SimTime end = 0;
};

/// Scheduled crash/restart of a named target. For network nodes the
/// SimNetwork drops traffic to/from the node inside the window; for
/// components (DEs, knactors, integrators) the chaos harness invokes the
/// registered down/up hooks at the window edges.
struct CrashWindow {
  std::string target;
  SimTime start = 0;
  SimTime end = 0;
};

class FaultPlan {
 public:
  std::uint64_t seed = 1;
  LinkFaultProfile links;
  std::vector<FlapWindow> flaps;
  std::vector<CrashWindow> crashes;

  FaultPlan& with_seed(std::uint64_t s);
  FaultPlan& with_loss(double p);
  FaultPlan& with_duplication(double p);
  FaultPlan& with_reorder(double p, SimTime max_delay);
  FaultPlan& add_flap(std::string a, std::string b, SimTime start,
                      SimTime duration);
  FaultPlan& add_crash(std::string target, SimTime start, SimTime duration);

  [[nodiscard]] bool link_down(const std::string& a, const std::string& b,
                               SimTime now) const;
  [[nodiscard]] bool node_down(const std::string& name, SimTime now) const;
  /// Latest end of any flap/crash window — after this instant the plan
  /// injects only probabilistic faults (which heal by construction).
  [[nodiscard]] SimTime last_window_end() const;
  [[nodiscard]] bool empty() const {
    return !links.any() && flaps.empty() && crashes.empty();
  }

  /// Generation knobs for `FaultPlan::random`. All windows are placed
  /// inside [0, horizon) so faults are guaranteed to heal by `horizon`.
  struct RandomOptions {
    SimTime horizon = 5 * kSecond;
    double max_loss = 0.15;
    double max_duplicate = 0.10;
    double max_reorder = 0.25;
    SimTime max_reorder_delay = 20 * kMillisecond;
    std::vector<std::pair<std::string, std::string>> flap_links;
    int max_flaps = 2;
    std::vector<std::string> crash_targets;
    int max_crashes = 3;
    SimTime min_window = 50 * kMillisecond;
    SimTime max_window = 800 * kMillisecond;
  };

  /// Derives a plan from a seed: same seed + same options → identical plan.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const RandomOptions& opts);

  /// Structured dump (used by docs tooling and failure repro messages).
  [[nodiscard]] common::Value to_value() const;
  [[nodiscard]] std::string describe() const;
};

/// Deterministic crash-point schedule for the durable persistence tier
/// (de::persist): decides, per named crash point, which occurrence fires a
/// simulated crash. The decision is a pure hash of (seed, point,
/// occurrence index), so a plan is replayable data just like FaultPlan —
/// the same seed always crashes the same write. Wire `fires` into
/// persist::Engine::set_fault_hook via a per-point occurrence counter
/// (see tests/property/persist_recovery_test.cpp).
class CrashPointPlan {
 public:
  CrashPointPlan(std::uint64_t seed, double probability)
      : seed_(seed), probability_(probability) {}

  /// True when occurrence `occurrence` of crash point `point` should
  /// crash. Pure: no internal state, any call order yields the same
  /// schedule.
  [[nodiscard]] bool fires(std::string_view point,
                           std::uint64_t occurrence) const;

  /// Counting helper: bumps the per-point occurrence counter and reports
  /// whether this occurrence fires.
  [[nodiscard]] bool next(std::string_view point);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  double probability_ = 0.0;
  std::map<std::string, std::uint64_t, std::less<>> counts_;
};

}  // namespace knactor::sim
