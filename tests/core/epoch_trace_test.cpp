// Epoch-boundary observability: worker-local Tracer::SpanBuffer /
// Metrics::Delta sinks replace shared-state emission on the parallel
// commit path. These tests pin the contract: merging buffers at the epoch
// boundary yields the same span counts, stage attribution, and counter
// totals as serial emission — for every shard/worker configuration, and
// whether the Cast integrator writes per-patch or per-epoch.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/retail_knactor.h"
#include "common/worker_pool.h"
#include "core/runtime.h"
#include "core/trace.h"
#include "de/object.h"

namespace knactor {
namespace {

using common::Value;

TEST(SpanBuffer, MergeRestampsIdsAndPreservesParentLinks) {
  sim::VirtualClock clock;
  core::Tracer tracer(clock);
  // A span emitted directly on the tracer first, so buffer-local ids (which
  // also start at 1) would collide without the re-stamp.
  const std::uint64_t direct = tracer.begin("direct");
  tracer.end(direct);

  core::Tracer::SpanBuffer buffer;
  const std::uint64_t parent = buffer.begin("epoch.parent", 10);
  const std::uint64_t child = buffer.begin("epoch.child", 11, parent);
  buffer.annotate(child, "stage", "S");
  buffer.end(child, 12);
  buffer.end(parent, 13);
  ASSERT_EQ(buffer.size(), 2u);

  tracer.merge(buffer);
  EXPECT_TRUE(buffer.empty());

  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "epoch.parent");
  EXPECT_EQ(spans[2].name, "epoch.child");
  // Globally sequential ids, distinct from the pre-existing span.
  EXPECT_NE(spans[1].id, spans[0].id);
  EXPECT_NE(spans[2].id, spans[0].id);
  // The within-buffer parent link survived the re-stamp.
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[2].attributes.at("stage"), "S");
  EXPECT_EQ(spans[2].start, 11u);
  EXPECT_EQ(spans[2].end, 12u);

  // A drained buffer is reusable: ids restart and merge again cleanly.
  const std::uint64_t again = buffer.begin("epoch.again", 20);
  buffer.end(again, 21);
  tracer.merge(buffer);
  EXPECT_EQ(tracer.spans().size(), 4u);
}

TEST(MetricsDelta, MergeEqualsSerialIncrements) {
  core::Metrics serial;
  core::Metrics merged;
  core::Metrics::Delta a;
  core::Metrics::Delta b;
  for (int i = 0; i < 7; ++i) {
    serial.inc("ops");
    (i % 2 == 0 ? a : b).inc("ops");
  }
  serial.inc("bytes", 100);
  a.inc("bytes", 60);
  b.inc("bytes", 40);
  // Merge order is irrelevant: counter addition commutes.
  merged.merge(b);
  merged.merge(a);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(merged.get("ops"), serial.get("ops"));
  EXPECT_EQ(merged.get("bytes"), serial.get("bytes"));
}

// Multiset of span names / stage attributes — the configuration-invariant
// part of the trace (span *order* groups by shard across configs).
std::map<std::string, int> span_counts(const std::vector<core::Span>& spans) {
  std::map<std::string, int> counts;
  for (const auto& s : spans) {
    ++counts[s.name];
    auto stage = s.attributes.find("stage");
    if (stage != s.attributes.end()) ++counts["stage:" + stage->second];
  }
  return counts;
}

TEST(EpochObservability, SpanCountsAndCountersAreShardInvariant) {
  struct Config {
    std::size_t shards;
    int workers;
  };
  const Config configs[] = {{1, 1}, {2, 4}, {8, 4}};
  std::map<std::string, int> oracle_spans;
  std::map<std::string, std::uint64_t> oracle_counters;
  for (std::size_t c = 0; c < std::size(configs); ++c) {
    sim::VirtualClock clock;
    core::Tracer tracer(clock);
    core::Metrics metrics;
    de::ObjectDe de(clock, de::ObjectDeProfile::instant());
    common::WorkerPool pool(configs[c].workers);
    de.set_shards(configs[c].shards);
    de.set_worker_pool(&pool);
    de.set_observability(&tracer, &metrics);
    de::ObjectStore& store = de.create_store("items");

    for (int epoch = 0; epoch < 3; ++epoch) {
      std::vector<de::EpochWrite> writes;
      for (int i = 0; i < 6; ++i) {
        de::EpochWrite w;
        w.key = "k-" + std::to_string(i);
        if (epoch == 2 && i == 5) {
          w.data = Value::object({{"v", i}});
          w.expected_version = 99;  // deterministic conflict -> failed op
        } else {
          w.data = Value::object({{"e", epoch}, {"v", i}});
        }
        writes.push_back(std::move(w));
      }
      (void)store.put_epoch_sync("writer", std::move(writes));
    }

    auto spans = span_counts(tracer.spans());
    EXPECT_EQ(spans["de.epoch.op"], 18);
    EXPECT_EQ(spans["stage:S"], 18);
    EXPECT_EQ(metrics.get("de.epoch.epochs"), 3u);
    EXPECT_EQ(metrics.get("de.epoch.committed"), 17u);
    EXPECT_EQ(metrics.get("de.epoch.failed"), 1u);
    std::map<std::string, std::uint64_t> counters(metrics.all().begin(),
                                                  metrics.all().end());
    if (c == 0) {
      oracle_spans = spans;
      oracle_counters = counters;
    } else {
      EXPECT_EQ(spans, oracle_spans) << configs[c].shards << " shards";
      EXPECT_EQ(counters, oracle_counters) << configs[c].shards << " shards";
    }
  }
}

TEST(EpochObservability, CrashedEpochLeaksNoSpansOrCounters) {
  sim::VirtualClock clock;
  core::Tracer tracer(clock);
  core::Metrics metrics;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de.set_shards(4);
  de.set_observability(&tracer, &metrics);
  de::ObjectStore& store = de.create_store("items");
  de.set_epoch_fault_hook([] { return true; });

  std::vector<de::EpochWrite> writes;
  de::EpochWrite w;
  w.key = "k";
  w.data = Value::object({{"v", 1}});
  writes.push_back(std::move(w));
  auto results = store.put_epoch_sync("writer", std::move(writes));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  // The rolled-back epoch is invisible to observability too.
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(metrics.get("de.epoch.epochs"), 0u);
  EXPECT_EQ(metrics.get("de.epoch.committed"), 0u);
}

// Regression: switching the Cast integrator from per-patch writes to the
// epoch pipeline must not change what the composition's traces report —
// same span counts per name, same stage attribution (C-I / I / I-S), same
// pass structure.
TEST(EpochObservability, CastEpochCommitKeepsSpanCountsAndStages) {
  auto run = [](bool epoch) {
    core::Runtime rt;
    apps::RetailKnactorOptions options;
    options.epoch_commit = epoch;
    options.metrics = &rt.metrics();
    apps::RetailKnactorApp app = apps::build_retail_knactor_app(rt, options);
    auto order = app.place_order_sync(apps::sample_order());
    EXPECT_TRUE(order.ok());
    return span_counts(rt.tracer().spans());
  };
  auto with_epoch = run(true);
  auto without = run(false);
  EXPECT_GT(without["stage:I-S"], 0);  // the write stage is actually traced
  EXPECT_EQ(with_epoch, without);
}

}  // namespace
}  // namespace knactor
