// Ecosystem demo (§5): a marketplace where knactors and integrators from
// different vendors are published, discovered by schema, compatibility-
// checked, and then installed into a running deployment — composition as a
// supply chain of state schemas rather than API contracts.
#include <cstdio>

#include "apps/retail_specs.h"
#include "core/marketplace.h"
#include "core/runtime.h"

using namespace knactor;
using common::Value;

int main() {
  core::Marketplace market;

  // Vendors publish their knactors (schemas are the product description).
  core::Package checkout;
  checkout.name = "knactor-checkout";
  checkout.version = "1.4.0";
  checkout.kind = core::Package::Kind::kKnactor;
  checkout.description = "order lifecycle for online retail";
  checkout.publisher = "retail-co";
  checkout.schema_yamls = {apps::kCheckoutSchema};
  (void)market.publish(checkout);

  core::Package shipping;
  shipping.name = "knactor-shipping";
  shipping.version = "2.0.1";
  shipping.kind = core::Package::Kind::kKnactor;
  shipping.description = "multi-carrier shipping adapter";
  shipping.publisher = "shipfast-inc";
  shipping.schema_yamls = {apps::kShippingSchema};
  (void)market.publish(shipping);

  core::Package payment;
  payment.name = "knactor-payment";
  payment.version = "3.2.0";
  payment.kind = core::Package::Kind::kKnactor;
  payment.description = "card + wallet charging";
  payment.publisher = "paymint-llc";
  payment.schema_yamls = {apps::kPaymentSchema};
  (void)market.publish(payment);

  // A fourth party publishes the *composition* as a product of its own.
  core::Package integrator;
  integrator.name = "retail-integrator";
  integrator.version = "1.0.0";
  integrator.kind = core::Package::Kind::kIntegrator;
  integrator.description =
      "composes checkout+shipping+payment (Fig. 6 exchange)";
  integrator.publisher = "glue-works";
  integrator.dxg_yaml =
      "Input:\n"
      "  C: OnlineRetail/v1/Checkout/Order\n"
      "  S: OnlineRetail/v1/Shipping/Shipment\n"
      "  P: OnlineRetail/v1/Payment/Charge\n"
      "DXG:\n"
      "  C.order:\n"
      "    shippingCost: currency_convert(S.quote.price, S.quote.currency, "
      "this.currency)\n"
      "    paymentID: P.id\n"
      "    trackingID: S.id\n"
      "  P:\n"
      "    amount: C.order.totalCost\n"
      "    currency: C.order.currency\n"
      "  S:\n"
      "    items: '[item.name for item in C.order.items]'\n"
      "    addr: C.order.address\n"
      "    method: '\"air\" if C.order.cost > 1000 else \"ground\"'\n";
  auto published = market.publish(integrator);
  if (!published.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 published.error().to_string().c_str());
    return 1;
  }

  std::printf("== marketplace catalog ==\n");
  for (const core::Package* p : market.search("")) {
    std::printf("  %-20s %-8s %-11s by %-12s %s\n", p->name.c_str(),
                p->version.c_str(),
                p->kind == core::Package::Kind::kKnactor ? "knactor"
                                                         : "integrator",
                p->publisher.c_str(), p->description.c_str());
  }

  std::printf("\n== composition shopping ==\n");
  std::printf("  who fills Checkout's shippingCost?\n");
  for (const core::Package* p :
       market.integrators_for("OnlineRetail/v1/Checkout/Order",
                              "shippingCost")) {
    std::printf("    -> %s@%s\n", p->name.c_str(), p->version.c_str());
  }
  std::printf("  who provides the Shipping schema?\n");
  for (const core::Package* p :
       market.providers_of("OnlineRetail/v1/Shipping/Shipment")) {
    std::printf("    -> %s@%s\n", p->name.c_str(), p->version.c_str());
  }

  std::printf("\n== compatibility check before install ==\n");
  auto missing = market.missing_requirements("retail-integrator");
  if (missing.empty()) {
    std::printf("  retail-integrator: all requirements satisfied\n");
  } else {
    for (const auto& m : missing) std::printf("  missing: %s\n", m.c_str());
  }

  // Install: instantiate the purchased DXG against a live deployment.
  std::printf("\n== install into a running deployment ==\n");
  core::Runtime runtime;
  de::ObjectDe& de = runtime.add_object_de("object",
                                           de::ObjectDeProfile::redis());
  de::ObjectStore& c = de.create_store("knactor-checkout");
  de::ObjectStore& s = de.create_store("knactor-shipping");
  de::ObjectStore& p = de.create_store("knactor-payment");
  const core::Package* pkg = market.find("retail-integrator");
  auto dxg = core::Dxg::parse(pkg->dxg_yaml);
  if (!dxg.ok()) return 1;
  core::CastIntegrator cast("installed", de, dxg.take(),
                            {{"C", &c}, {"S", &s}, {"P", &p}});
  if (!cast.start().ok()) return 1;

  // Drive one exchange to show the purchased composition working.
  Value order = Value::object();
  Value::Array items;
  Value line = Value::object();
  line.set("name", Value("keyboard"));
  line.set("qty", Value(1));
  items.push_back(std::move(line));
  order.set("items", Value(std::move(items)));
  order.set("address", Value("1 Market St"));
  order.set("cost", Value(1500.0));
  order.set("currency", Value("USD"));
  order.set("totalCost", Value(1500.0));
  (void)c.put_sync("knactor:checkout", "order", std::move(order));
  runtime.run_until_idle();

  const de::StateObject* shipment = s.peek("state");
  if (shipment != nullptr && shipment->data) {
    const Value* method = shipment->data->get("method");
    std::printf("  exchange ran: shipping method = %s (cost 1500 > 1000)\n",
                method != nullptr ? method->as_string().c_str() : "(none)");
  }
  return 0;
}
