#include "apps/retail_rpc.h"

#include <gtest/gtest.h>

namespace knactor::apps {
namespace {

RetailRpcOptions fast_options() {
  RetailRpcOptions options;
  options.shipment_processing = sim::LatencyModel::constant_ms(50.0);
  options.payment_processing = sim::LatencyModel::constant_ms(1.0);
  options.link = sim::LatencyModel::constant_ms(0.45);
  return options;
}

TEST(RetailRpc, PlaceOrderReturnsTracking) {
  sim::VirtualClock clock;
  RetailRpcApp app(clock, fast_options());
  auto tracking = app.place_order_sync(120.0, {"keyboard", "mouse"});
  ASSERT_TRUE(tracking.ok()) << tracking.error().to_string();
  EXPECT_EQ(tracking.value().substr(0, 6), "track-");
}

TEST(RetailRpc, TimingsRecorded) {
  sim::VirtualClock clock;
  RetailRpcApp app(clock, fast_options());
  ASSERT_TRUE(app.place_order_sync(120.0, {"keyboard"}).ok());
  const RpcOrderTimings& t = app.last_timings();
  // ShipOrder request -> response spans processing + 2 network hops.
  EXPECT_EQ(t.processing(), sim::from_ms(50.0));
  EXPECT_EQ(t.propagation(), sim::from_ms(0.9));
  EXPECT_EQ(t.total(), sim::from_ms(50.9));
}

TEST(RetailRpc, PropagationIndependentOfProcessing) {
  sim::VirtualClock clock;
  RetailRpcOptions options = fast_options();
  options.shipment_processing = sim::LatencyModel::constant_ms(400.0);
  RetailRpcApp app(clock, options);
  ASSERT_TRUE(app.place_order_sync(50.0, {"mouse"}).ok());
  EXPECT_EQ(app.last_timings().propagation(), sim::from_ms(0.9));
  EXPECT_EQ(app.last_timings().processing(), sim::from_ms(400.0));
}

TEST(RetailRpc, ScatteringMetricsMatchPaperScale) {
  sim::VirtualClock clock;
  RetailRpcApp app(clock, fast_options());
  // The paper reports 15 methods across 11 services for the API-centric app.
  EXPECT_EQ(app.service_count(), 11u);
  EXPECT_EQ(app.method_count(), 15u);
}

TEST(RetailRpc, SequentialOrders) {
  sim::VirtualClock clock;
  RetailRpcApp app(clock, fast_options());
  auto t1 = app.place_order_sync(120.0, {"keyboard"});
  auto t2 = app.place_order_sync(2000.0, {"laptop"});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_NE(t1.value(), t2.value());
}

TEST(RetailRpc, CompositionLogicLivesInCheckout) {
  // The checkout handler drives payment, quote, shipping, and side calls —
  // one order touches many services (the scattered-composition shape).
  sim::VirtualClock clock;
  RetailRpcApp app(clock, fast_options());
  ASSERT_TRUE(app.place_order_sync(120.0, {"keyboard"}).ok());
  // Payment + Quote + Ship + Email + Inventory + Recommendation + Ad
  // (+ the outer PlaceOrder) all flowed through the network.
  EXPECT_GE(app.network().stats().messages_delivered, 14u);
}

}  // namespace
}  // namespace knactor::apps
