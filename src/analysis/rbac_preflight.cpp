#include "analysis/rbac_preflight.h"

#include <optional>
#include <utility>

#include "yaml/yaml.h"

namespace knactor::analysis {

using common::Error;
using common::Result;
using common::Value;

namespace {

std::optional<de::Verb> parse_verb(const std::string& name) {
  if (name == "get") return de::Verb::kGet;
  if (name == "list") return de::Verb::kList;
  if (name == "watch") return de::Verb::kWatch;
  if (name == "create") return de::Verb::kCreate;
  if (name == "update") return de::Verb::kUpdate;
  if (name == "delete") return de::Verb::kDelete;
  if (name == "invoke-udf") return de::Verb::kInvokeUdf;
  if (name == "*") return std::nullopt;  // handled by caller (all verbs)
  return std::nullopt;
}

Result<std::vector<std::string>> string_list(const Value& v,
                                             const std::string& what) {
  std::vector<std::string> out;
  if (v.is_null()) return out;
  if (!v.is_array()) {
    return Error::parse("rbac: " + what + " must be a list");
  }
  for (const auto& item : v.as_array()) {
    if (!item.is_string()) {
      return Error::parse("rbac: " + what + " entries must be strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

Result<de::PolicyRule> parse_rule(const Value& v) {
  if (!v.is_object()) return Error::parse("rbac: rule must be a mapping");
  de::PolicyRule rule;
  if (const Value* store = v.get("store")) {
    if (!store->is_string()) return Error::parse("rbac: store must be a string");
    rule.store = store->as_string();
  } else {
    rule.store = "*";
  }
  if (const Value* prefix = v.get("key_prefix")) {
    if (!prefix->is_string()) {
      return Error::parse("rbac: key_prefix must be a string");
    }
    rule.key_prefix = prefix->as_string();
  }
  const Value* verbs = v.get("verbs");
  if (verbs == nullptr) {
    return Error::parse("rbac: rule needs a 'verbs' list");
  }
  KN_ASSIGN_OR_RETURN(std::vector<std::string> verb_names,
                      string_list(*verbs, "verbs"));
  for (const auto& name : verb_names) {
    if (name == "*") {
      for (auto verb :
           {de::Verb::kGet, de::Verb::kList, de::Verb::kWatch,
            de::Verb::kCreate, de::Verb::kUpdate, de::Verb::kDelete,
            de::Verb::kInvokeUdf}) {
        rule.verbs.insert(verb);
      }
      continue;
    }
    auto verb = parse_verb(name);
    if (!verb) return Error::parse("rbac: unknown verb '" + name + "'");
    rule.verbs.insert(*verb);
  }
  if (const Value* allowed = v.get("allowed")) {
    KN_ASSIGN_OR_RETURN(rule.fields.allowed,
                        string_list(*allowed, "allowed"));
  }
  if (const Value* denied = v.get("denied")) {
    KN_ASSIGN_OR_RETURN(rule.fields.denied, string_list(*denied, "denied"));
  }
  return rule;
}

}  // namespace

Result<RbacSpec> parse_rbac(std::string_view yaml_text) {
  KN_ASSIGN_OR_RETURN(Value doc, yaml::parse(yaml_text));
  if (!doc.is_object()) {
    return Error::parse("rbac: policy must be a mapping");
  }
  RbacSpec spec;
  spec.rbac.set_enabled(true);
  if (const Value* principal = doc.get("principal")) {
    if (!principal->is_string()) {
      return Error::parse("rbac: principal must be a string");
    }
    spec.default_principal = principal->as_string();
  }
  const Value* roles = doc.get("roles");
  if (roles == nullptr || !roles->is_array()) {
    return Error::parse("rbac: policy needs a 'roles' list");
  }
  for (const auto& role_value : roles->as_array()) {
    if (!role_value.is_object()) {
      return Error::parse("rbac: role must be a mapping");
    }
    de::Role role;
    const Value* name = role_value.get("name");
    if (name == nullptr || !name->is_string()) {
      return Error::parse("rbac: role needs a 'name'");
    }
    role.name = name->as_string();
    if (const Value* rules = role_value.get("rules")) {
      if (!rules->is_array()) {
        return Error::parse("rbac: role rules must be a list");
      }
      for (const auto& rule_value : rules->as_array()) {
        KN_ASSIGN_OR_RETURN(de::PolicyRule rule, parse_rule(rule_value));
        role.rules.push_back(std::move(rule));
      }
    }
    KN_TRY(spec.rbac.add_role(std::move(role)));
  }
  if (const Value* bindings = doc.get("bindings")) {
    if (!bindings->is_array()) {
      return Error::parse("rbac: bindings must be a list");
    }
    for (const auto& binding : bindings->as_array()) {
      if (!binding.is_object()) {
        return Error::parse("rbac: binding must be a mapping");
      }
      const Value* principal = binding.get("principal");
      const Value* role = binding.get("role");
      if (principal == nullptr || !principal->is_string() ||
          role == nullptr || !role->is_string()) {
        return Error::parse("rbac: binding needs 'principal' and 'role'");
      }
      KN_TRY(spec.rbac.bind(principal->as_string(), role->as_string()));
    }
  }
  return spec;
}

void rbac_preflight(const RbacSpec& spec, const std::string& principal,
                    const std::vector<Access>& accesses,
                    std::vector<Diagnostic>& out) {
  if (principal.empty()) {
    out.push_back(make_diag(
        "KN305", SourceLoc{},
        "rbac pre-flight: no principal to check (policy has no 'principal:' "
        "and none was passed via --as)",
        "add 'principal:' to the policy or pass --as <name>"));
    return;
  }
  if (!spec.rbac.bound(principal)) {
    out.push_back(make_diag(
        "KN305", SourceLoc{},
        "rbac pre-flight: principal '" + principal +
            "' has no role bindings; every access below would be denied",
        "add a binding for '" + principal + "' to the policy"));
    return;
  }
  for (const auto& access : accesses) {
    bool is_write = access.verb == de::Verb::kCreate ||
                    access.verb == de::Verb::kUpdate ||
                    access.verb == de::Verb::kDelete;
    // Pre-flight uses an empty key and time 0: key-prefix- or
    // time-window-scoped grants are data-dependent, so they conservatively
    // do not satisfy a static access.
    de::Decision decision =
        spec.rbac.check(principal, access.store, "", access.verb, 0);
    if (!decision.allowed) {
      out.push_back(make_diag(
          is_write ? "KN302" : "KN301", access.loc,
          access.subject + ": principal '" + principal + "' may not " +
              de::verb_name(access.verb) + " store " + access.store,
          "grant '" + std::string(de::verb_name(access.verb)) + "' on '" +
              access.store + "' to a role bound to '" + principal + "'"));
      continue;
    }
    if (!access.field.empty() && !decision.fields.permits(access.field)) {
      out.push_back(make_diag(
          is_write ? "KN303" : "KN304", access.loc,
          access.subject + ": field '" + access.field + "' of store " +
              access.store + " is not " +
              (is_write ? "writable" : "readable") + " by principal '" +
              principal + "'",
          "extend the role's allowed fields (or remove the deny) for '" +
              access.field + "'"));
    }
  }
}

}  // namespace knactor::analysis
