// Cellular EPC app — the §5 applicability example ("Knactor is
// particularly beneficial for applications with many microservices and
// complex compositions, such as cellular EPC"; cf. Magma). A simplified
// LTE attach procedure across five network functions:
//
//   Session (MME/AMF)  owns the attach state machine
//   Subscriber (HSS)   subscriber profiles (imsi -> key, plan, allowed)
//   Policy (PCRF)      QoS profile per plan
//   Bearer (SGW)       bearer allocation
//   Address (PGW)      IP address pool
//
// Knactor form: each function externalizes state; one Cast integrator
// expresses the attach exchange, including the authorization gate
// ("only provision a bearer for an authorized attach") as a conditional
// mapping — state that isn't ready (or not authorized) simply doesn't
// flow.
//
// RPC form: the MME handler chains HSS.Authenticate -> PCRF.GetPolicy ->
// SGW.CreateBearer -> PGW.AllocateIP, compiling the procedure into code.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "net/rpc.h"

namespace knactor::apps {

struct EpcOptions {
  de::ObjectDeProfile de_profile = de::ObjectDeProfile::redis();
  /// Per-function processing latencies.
  sim::LatencyModel hss_lookup = sim::LatencyModel::constant_ms(1.5);
  sim::LatencyModel bearer_setup = sim::LatencyModel::constant_ms(3.0);
  sim::LatencyModel ip_allocation = sim::LatencyModel::constant_ms(2.0);
  /// Key-space shards / worker parallelism for the runtime's DEs
  /// (deterministic; see docs/ARCHITECTURE.md).
  std::size_t shards = 1;
  int workers = 1;
};

/// The data-centric deployment.
struct EpcKnactorApp {
  core::Runtime* runtime = nullptr;
  de::ObjectDe* de = nullptr;
  core::CastIntegrator* integrator = nullptr;
  de::ObjectStore* session_store = nullptr;
  de::ObjectStore* subscriber_store = nullptr;
  de::ObjectStore* bearer_store = nullptr;
  de::ObjectStore* address_store = nullptr;

  /// Runs one attach for `imsi` to completion (state "active") or
  /// rejection (state "rejected"). Returns the final attach object.
  common::Result<common::Value> attach_sync(const std::string& imsi);
  /// Clears per-attach state for the next UE.
  void reset_attach_state();
};

EpcKnactorApp build_epc_knactor_app(core::Runtime& runtime,
                                    EpcOptions options = {});

/// The API-centric baseline.
class EpcRpcApp {
 public:
  EpcRpcApp(sim::VirtualClock& clock, EpcOptions options = {});

  /// Issues an Attach RPC; returns {imsi, bearer_id, ip, qos} or an error
  /// (e.g. unknown/blocked subscriber).
  common::Result<common::Value> attach_sync(const std::string& imsi);

  [[nodiscard]] net::SimNetwork& network() { return *network_; }

 private:
  sim::VirtualClock& clock_;
  EpcOptions options_;
  std::unique_ptr<net::SimNetwork> network_;
  net::SchemaPool pool_;
  net::RpcRegistry registry_;
  std::vector<std::unique_ptr<net::RpcServer>> servers_;
  std::vector<std::unique_ptr<net::RpcChannel>> channels_;
  std::vector<net::ServiceDescriptor> services_;
  sim::Rng sim_rng_{51};
  int bearer_seq_ = 0;
  int ip_seq_ = 0;
};

/// The subscribers both deployments are provisioned with:
///   001010000000001  plan=premium  allowed
///   001010000000002  plan=basic    allowed
///   001010000000666  plan=basic    blocked
std::vector<std::string> epc_known_imsis();

}  // namespace knactor::apps
