// JSON serialization and parsing for common::Value. Used by the wire codec
// (human-readable debug form), the Log DE's ingest path, and tests.
#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"

namespace knactor::common {

/// Serializes a Value to compact JSON. Ints render without a decimal point,
/// doubles with enough precision to round-trip.
std::string to_json(const Value& v);

/// Serializes a Value to indented JSON (2-space indent).
std::string to_json_pretty(const Value& v, int indent = 2);

/// Parses a JSON document into a Value. Accepts the standard JSON grammar;
/// numbers without '.', 'e', or 'E' parse as int64, others as double.
Result<Value> parse_json(std::string_view text);

}  // namespace knactor::common
