#include "de/retention.h"

#include <gtest/gtest.h>

namespace knactor::de {
namespace {

using common::Value;

class RetentionTest : public ::testing::Test {
 protected:
  RetentionTest() : de_(clock_, ObjectDeProfile::instant()), manager_(de_) {
    store_ = &de_.create_store("s");
  }

  void put(const std::string& key) {
    ASSERT_TRUE(store_->put_sync("me", key, Value::object({{"v", 1}})).ok());
  }

  sim::VirtualClock clock_;
  ObjectDe de_;
  RetentionManager manager_;
  ObjectStore* store_ = nullptr;
};

TEST_F(RetentionTest, RefCountPolicyCollectsProcessedUnreferenced) {
  manager_.set_policy("s", RetentionPolicy::ref_count());
  put("k");
  manager_.claim("s", "k", "reconciler");
  EXPECT_EQ(manager_.refcount("s", "k"), 1u);

  // Still referenced: survives sweeps.
  EXPECT_EQ(manager_.sweep("me"), 0u);
  EXPECT_NE(store_->peek("k"), nullptr);

  manager_.release("s", "k", "reconciler", /*done=*/true);
  EXPECT_EQ(manager_.refcount("s", "k"), 0u);
  EXPECT_EQ(manager_.sweep("me"), 1u);
  EXPECT_EQ(store_->peek("k"), nullptr);
}

TEST_F(RetentionTest, UnprocessedObjectsNotCollected) {
  manager_.set_policy("s", RetentionPolicy::ref_count());
  put("never-claimed");
  // Never claimed, never processed: the refcount policy keeps it.
  EXPECT_EQ(manager_.sweep("me"), 0u);
  EXPECT_NE(store_->peek("never-claimed"), nullptr);
}

TEST_F(RetentionTest, ReleaseWithoutDoneKeepsObject) {
  manager_.set_policy("s", RetentionPolicy::ref_count());
  put("k");
  manager_.claim("s", "k", "c");
  manager_.release("s", "k", "c", /*done=*/false);
  EXPECT_EQ(manager_.sweep("me"), 0u);
}

TEST_F(RetentionTest, MultipleClaimants) {
  manager_.set_policy("s", RetentionPolicy::ref_count());
  put("k");
  manager_.claim("s", "k", "a");
  manager_.claim("s", "k", "b");
  manager_.release("s", "k", "a", true);
  EXPECT_EQ(manager_.refcount("s", "k"), 1u);
  EXPECT_EQ(manager_.sweep("me"), 0u);
  manager_.release("s", "k", "b", true);
  EXPECT_EQ(manager_.sweep("me"), 1u);
}

TEST_F(RetentionTest, NestedClaimsBySameConsumer) {
  manager_.set_policy("s", RetentionPolicy::ref_count());
  put("k");
  manager_.claim("s", "k", "a");
  manager_.claim("s", "k", "a");
  EXPECT_EQ(manager_.refcount("s", "k"), 2u);
  manager_.release("s", "k", "a", true);
  EXPECT_EQ(manager_.refcount("s", "k"), 1u);
  manager_.release("s", "k", "a", true);
  EXPECT_EQ(manager_.refcount("s", "k"), 0u);
}

TEST_F(RetentionTest, TtlPolicyCollectsOldObjects) {
  manager_.set_policy("s", RetentionPolicy::ttl_policy(10 * sim::kSecond));
  put("old");
  clock_.advance(20 * sim::kSecond);
  put("fresh");
  EXPECT_EQ(manager_.sweep("me"), 1u);
  EXPECT_EQ(store_->peek("old"), nullptr);
  EXPECT_NE(store_->peek("fresh"), nullptr);
}

TEST_F(RetentionTest, TtlRespectsActiveReferences) {
  manager_.set_policy("s", RetentionPolicy::ttl_policy(10 * sim::kSecond));
  put("held");
  manager_.claim("s", "held", "c");
  clock_.advance(20 * sim::kSecond);
  EXPECT_EQ(manager_.sweep("me"), 0u);
}

TEST_F(RetentionTest, KeepForeverNeverCollects) {
  manager_.set_policy("s", RetentionPolicy::keep_forever());
  put("archive");
  manager_.claim("s", "archive", "c");
  manager_.release("s", "archive", "c", true);
  clock_.advance(3600 * sim::kSecond);
  EXPECT_EQ(manager_.sweep("me"), 0u);
}

TEST_F(RetentionTest, StoresWithoutPolicyUntouched) {
  put("k");
  manager_.claim("s", "k", "c");
  manager_.release("s", "k", "c", true);
  EXPECT_EQ(manager_.sweep("me"), 0u);
}

TEST_F(RetentionTest, CollectionFiresWatchEvents) {
  manager_.set_policy("s", RetentionPolicy::ref_count());
  put("k");
  bool deleted = false;
  store_->watch("me", "", [&](const WatchEvent& e) {
    if (e.type == WatchEventType::kDeleted) deleted = true;
  });
  manager_.claim("s", "k", "c");
  manager_.release("s", "k", "c", true);
  (void)manager_.sweep("me");
  clock_.run_all();
  EXPECT_TRUE(deleted);
}

TEST_F(RetentionTest, PeriodicSweepRuns) {
  manager_.set_policy("s", RetentionPolicy::ttl_policy(5 * sim::kSecond));
  put("k");
  manager_.start_periodic_sweep("me", 10 * sim::kSecond);
  clock_.run_until(clock_.now() + 30 * sim::kSecond);
  EXPECT_EQ(store_->peek("k"), nullptr);
  EXPECT_GE(manager_.stats().sweeps, 2u);
  manager_.stop_periodic_sweep();
}

TEST_F(RetentionTest, StatsTrack) {
  manager_.set_policy("s", RetentionPolicy::ref_count());
  put("k");
  manager_.claim("s", "k", "c");
  manager_.release("s", "k", "c", true);
  (void)manager_.sweep("me");
  EXPECT_EQ(manager_.stats().claims, 1u);
  EXPECT_EQ(manager_.stats().releases, 1u);
  EXPECT_EQ(manager_.stats().collected, 1u);
  EXPECT_EQ(manager_.stats().sweeps, 1u);
}

}  // namespace
}  // namespace knactor::de
