// Composition evolution, live: the Table 1 tasks (T1 compose, T2 add a
// policy, T3 adapt to a schema change) performed on a *running* deployment
// by reconfiguring the integrator — no service code changed, nothing
// rebuilt, nothing redeployed (P1: composition decoupled from
// development).
#include <cstdio>

#include "apps/retail_knactor.h"
#include "apps/retail_specs.h"
#include "common/json.h"

using namespace knactor;
using common::Value;

namespace {

void show_shipping(apps::RetailKnactorApp& app, const char* moment) {
  const de::StateObject* obj = app.shipping_store->peek("state");
  std::printf("  [%s] shipping store: %s\n", moment,
              obj != nullptr && obj->data ? common::to_json(*obj->data).c_str()
                                          : "(empty)");
}

}  // namespace

int main() {
  core::Runtime runtime;
  apps::RetailKnactorOptions options;
  options.shipment_processing = sim::LatencyModel::constant_ms(50.0);
  auto app = apps::build_retail_knactor_app(runtime, options);
  if (app.integrator == nullptr) return 1;

  // --- T0: tear composition down to "nothing composed". -------------------
  std::printf("== T0: no composition (integrator configured with an empty "
              "DXG) ==\n");
  if (auto s = app.integrator->reconfigure_yaml(apps::kRetailDxgBase); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().to_string().c_str());
    return 1;
  }
  (void)app.checkout_store->put_sync("knactor:checkout", "order",
                                     apps::expensive_order());
  runtime.run_until_idle();
  show_shipping(app, "order placed, no exchange configured");

  // --- T1: compose Payment and Shipping with Checkout. --------------------
  std::printf("\n== T1: compose Payment+Shipping with Checkout ==\n");
  std::printf("  change: ONE config reconfiguration (compare: 8 files, "
              "~109 SLOC,\n  rebuild + rolling redeploy in the API-centric "
              "app — run bench_table1)\n");
  std::string t1_dxg(apps::kRetailDxg);
  auto method_pos = t1_dxg.find("    method: >");
  t1_dxg.resize(method_pos);  // Fig. 6 without the T2 policy line
  if (auto s = app.integrator->reconfigure_yaml(t1_dxg); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().to_string().c_str());
    return 1;
  }
  runtime.run_until_idle();
  show_shipping(app, "after T1 (no method policy yet, shipment waits)");

  // --- T2: add the price-based shipment policy. ----------------------------
  std::printf("\n== T2: add shipment policy (cost > 1000 -> air) ==\n");
  std::printf("  change: ONE line in the DXG\n");
  if (auto s = app.integrator->reconfigure_yaml(apps::kRetailDxg); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().to_string().c_str());
    return 1;
  }
  runtime.run_until_idle();
  show_shipping(app, "after T2 (policy applied, shipment completed)");
  std::printf("  integrator reconfigurations so far: %llu; services "
              "rebuilt: 0\n",
              static_cast<unsigned long long>(
                  app.integrator->stats().reconfigurations));

  // --- T3: Shipping evolves its schema to v2. ------------------------------
  std::printf("\n== T3: Shipping publishes schema v2 "
              "(packages/address/insurance) ==\n");
  std::printf("  change: remap three fields in the DXG; Checkout untouched\n");
  const char* v2_dxg = R"(Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v2/Shipping/knactor-shipping
  P: OnlineRetail/v1/Payment/knactor-payment
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    paymentID: P.id
    trackingID: S.id
  P:
    amount: C.order.totalCost
    currency: C.order.currency
  S:
    packages: '[{"name": item.name, "qty": item.qty} for item in C.order.items]'
    address: C.order.address
    insurance: C.order.cost > 500
    method: '"air" if C.order.cost > 1000 else "ground"'
)";
  if (auto s = app.integrator->reconfigure_yaml(v2_dxg); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().to_string().c_str());
    return 1;
  }
  app.reset_order_state();
  (void)app.checkout_store->put_sync("knactor:checkout", "order",
                                     apps::sample_order(800.0));
  runtime.run_until_idle();
  show_shipping(app, "after T3 (v2 fields: packages/address/insurance)");

  // --- Static analysis guards bad evolutions. ------------------------------
  std::printf("\n== bonus: the DXG analyzer rejects a cyclic exchange ==\n");
  const char* cyclic = R"(Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
DXG:
  C.order:
    shippingCost: S.echo
  S:
    echo: C.order.shippingCost
)";
  auto parsed = core::Dxg::parse(cyclic);
  if (parsed.ok()) {
    auto issues = core::analyze(parsed.value(), nullptr);
    for (const auto& issue : issues) {
      std::printf("  %s: %s\n", core::issue_kind_name(issue.kind),
                  issue.detail.c_str());
    }
  }
  return 0;
}
