// Entry point of the unified static analyzer: lints one spec file —
// a DXG composition, a Sync route section, or a store schema — running
// every applicable pass and returning located diagnostics. `knctl lint`
// is a thin CLI wrapper over lint_spec().
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/rbac_preflight.h"
#include "core/dxg.h"
#include "de/schema.h"
#include "yaml/yaml.h"

namespace knactor::analysis {

struct LintOptions {
  /// Display name used in diagnostic locations (typically the file path
  /// as the user spelled it).
  std::string file;
  /// Registered store schemas; null disables schema-dependent checks
  /// (conformance, type inference against decls, KN007 warnings).
  const de::SchemaRegistry* schemas = nullptr;
  /// RBAC policy; null disables the pre-flight pass.
  const RbacSpec* rbac = nullptr;
  /// Principal to pre-flight as; overrides the policy's `principal:`.
  std::string principal;
};

/// Lints one spec. The spec kind is detected from its root keys:
///   * `schema:`          — store schema lint (decl validity, KN008)
///   * `Input:` + `DXG:`  — composition lint (graph checks KN001-KN007,
///                          type inference KN1xx, RBAC KN3xx)
///   * `Sync:`            — route lint (KN2xx, RBAC KN3xx); may coexist
///                          with a DXG in the same file
/// Unparseable or unrecognized input yields KN400. Diagnostics come back
/// in stable (file, line, col, code) order.
std::vector<Diagnostic> lint_spec(std::string_view text,
                                  const LintOptions& options);

/// True when any diagnostic is a KN400 — `knctl lint` exits 2 for these
/// (input unusable) vs 1 for ordinary findings.
bool has_parse_failure(const std::vector<Diagnostic>& diags);

/// Position of a DXG mapping's field key in its spec document (tries
/// "DXG/<label>/<field>", then the target label, then the DXG section).
/// Shared with the project-level composition graph, whose cross-spec
/// diagnostics cite mapping endpoints in *other* files.
SourceLoc locate_mapping(const yaml::Document& doc, const core::DxgMapping& m,
                         const std::string& file);

}  // namespace knactor::analysis
