// Role-based access control for data exchanges (§3.3 "State access
// control"). Principals (reconcilers, integrators) are bound to roles;
// roles grant verbs over (store, key-prefix) scopes, optionally restricted
// to specific fields (the paper's finer-grained state access control) and
// to time windows (the paper's "no lamp access during sleep hours"
// example).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "sim/clock.h"

namespace knactor::de {

enum class Verb { kGet, kList, kWatch, kCreate, kUpdate, kDelete, kInvokeUdf };

const char* verb_name(Verb v);

/// Field-level constraints. Empty allowed == all fields allowed (minus
/// denied). Applied on reads (filtering) and writes (rejection).
struct FieldRule {
  std::vector<std::string> allowed;
  std::vector<std::string> denied;

  [[nodiscard]] bool permits(const std::string& field) const;
  [[nodiscard]] bool unrestricted() const {
    return allowed.empty() && denied.empty();
  }
};

/// Optional time-of-day window (sim time modulo 24h). A rule with a window
/// only grants access inside it; from == to means always.
struct TimeWindow {
  sim::SimTime from = 0;  // offset within a 24h day, microseconds
  sim::SimTime to = 0;

  [[nodiscard]] bool contains(sim::SimTime now) const;
};

struct PolicyRule {
  std::string store;       // exact store name, or "*"
  std::string key_prefix;  // "" matches all keys
  std::set<Verb> verbs;
  FieldRule fields;
  std::optional<TimeWindow> window;

  [[nodiscard]] bool matches(const std::string& store_name,
                             const std::string& key, Verb verb,
                             sim::SimTime now) const;
};

struct Role {
  std::string name;
  std::vector<PolicyRule> rules;
};

/// Access decision: allowed plus the (merged) field constraints to apply.
struct Decision {
  bool allowed = false;
  FieldRule fields;
};

/// The RBAC policy engine. Disabled by default (everything allowed) so
/// logic-only tests don't need policy boilerplate; DEs call `check` on
/// every operation when enabled.
class Rbac {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  common::Status add_role(Role role);
  common::Status bind(const std::string& principal, const std::string& role);
  void unbind(const std::string& principal, const std::string& role);
  /// True when the principal has at least one role binding — the static
  /// analyzer's pre-flight uses this to distinguish "no policy applies"
  /// from "denied".
  [[nodiscard]] bool bound(const std::string& principal) const;

  [[nodiscard]] Decision check(const std::string& principal,
                               const std::string& store,
                               const std::string& key, Verb verb,
                               sim::SimTime now) const;

  /// Removes fields the rule denies from a read result (deep copy).
  static common::Value filter_fields(const common::Value& v,
                                     const FieldRule& rule);
  /// Verifies every top-level field of a write is permitted.
  static common::Status validate_write(const common::Value& v,
                                       const FieldRule& rule);

 private:
  bool enabled_ = false;
  std::vector<Role> roles_;
  std::vector<std::pair<std::string, std::string>> bindings_;
};

}  // namespace knactor::de
