#include "apps/epc.h"

#include "common/logging.h"

namespace knactor::apps {

using common::Error;
using common::Result;
using common::Value;
using core::Knactor;
using core::Reconciler;
using de::WatchEvent;

namespace {

constexpr const char* kEpcDxg = R"(Input:
  A: Epc/v1/Session/knactor-session
  H: Epc/v1/Subscriber/knactor-subscriber
  P: Epc/v1/Policy/knactor-policy
  B: Epc/v1/Bearer/knactor-bearer
  G: Epc/v1/Address/knactor-address
DXG:
  A.attach:
    authorized: 'get(get(H, concat("sub/", this.imsi)), "allowed", false)'
    qos: 'get(P.qos, get(get(H, concat("sub/", this.imsi)), "plan"))'
    bearerID: B.bearerID
    ipAddress: G.ip
  B:
    # The authorization gate is a data-centric policy: state only flows to
    # the bearer function for authorized attaches.
    imsi: 'A.attach.imsi if A.attach.authorized else null'
    qos: 'A.attach.qos if A.attach.authorized else null'
  G:
    imsi: A.attach.imsi
    bearerID: B.bearerID
)";

const Value* event_field(const WatchEvent& event, const char* name) {
  if (!event.object.data) return nullptr;
  const Value* v = event.object.data->get(name);
  return v != nullptr && !v->is_null() ? v : nullptr;
}

/// Session (MME/AMF): owns the attach state machine. Reacts only to its
/// own store.
class SessionReconciler : public Reconciler {
 public:
  void on_object_event(Knactor& kn, const WatchEvent& event) override {
    if (event.object.key != "attach" ||
        event.type == de::WatchEventType::kDeleted || !event.object.data) {
      return;
    }
    const Value* state = event.object.data->get("state");
    std::string current =
        state != nullptr && state->is_string() ? state->as_string() : "";
    std::string want = current.empty() ? "requested" : current;

    const Value* authorized = event.object.data->get("authorized");
    if (authorized != nullptr && authorized->is_bool()) {
      if (!authorized->as_bool()) {
        want = "rejected";
      } else if (event_field(event, "bearerID") != nullptr &&
                 event_field(event, "ipAddress") != nullptr) {
        want = "active";
      } else {
        want = current == "active" ? current : "authorizing";
      }
    }
    if (want != current) {
      Value patch = Value::object();
      patch.set("state", Value(want));
      (void)kn.patch_state("attach", std::move(patch));
    }
  }
};

/// Subscriber (HSS): seeds the subscriber database.
class SubscriberReconciler : public Reconciler {
 public:
  void start(Knactor& kn) override {
    struct Sub {
      const char* imsi;
      const char* plan;
      bool allowed;
    };
    for (Sub sub : {Sub{"001010000000001", "premium", true},
                    Sub{"001010000000002", "basic", true},
                    Sub{"001010000000666", "basic", false}}) {
      Value profile = Value::object();
      profile.set("imsi", Value(sub.imsi));
      profile.set("plan", Value(sub.plan));
      profile.set("allowed", Value(sub.allowed));
      (void)kn.put_state(std::string("sub/") + sub.imsi, std::move(profile));
    }
  }
};

/// Policy (PCRF): QoS class per plan.
class PolicyReconciler : public Reconciler {
 public:
  void start(Knactor& kn) override {
    Value qos = Value::object();
    qos.set("premium", Value("qci5"));
    qos.set("basic", Value("qci9"));
    Value state = Value::object();
    state.set("qos", std::move(qos));
    (void)kn.put_state("state", std::move(state));
  }
};

/// Bearer (SGW): allocates a bearer once an authorized attach's imsi+qos
/// land in its store.
class BearerReconciler : public Reconciler {
 public:
  BearerReconciler(sim::VirtualClock& clock, sim::LatencyModel setup)
      : clock_(clock), setup_(setup) {}

  void on_object_event(Knactor& kn, const WatchEvent& event) override {
    if (event.object.key != "state" ||
        event.type == de::WatchEventType::kDeleted) {
      return;
    }
    if (event_field(event, "imsi") == nullptr ||
        event_field(event, "qos") == nullptr ||
        event_field(event, "bearerID") != nullptr || busy_) {
      return;
    }
    busy_ = true;
    Knactor* knactor = &kn;
    clock_.schedule_after(setup_.sample(rng_), [this, knactor]() {
      Value patch = Value::object();
      patch.set("bearerID", Value("brr-" + std::to_string(++seq_)));
      (void)knactor->patch_state("state", std::move(patch));
      busy_ = false;
    });
  }

 private:
  sim::VirtualClock& clock_;
  sim::LatencyModel setup_;
  sim::Rng rng_{41};
  bool busy_ = false;
  int seq_ = 0;
};

/// Address (PGW): allocates an IP once a bearer exists.
class AddressReconciler : public Reconciler {
 public:
  AddressReconciler(sim::VirtualClock& clock, sim::LatencyModel allocation)
      : clock_(clock), allocation_(allocation) {}

  void on_object_event(Knactor& kn, const WatchEvent& event) override {
    if (event.object.key != "state" ||
        event.type == de::WatchEventType::kDeleted) {
      return;
    }
    if (event_field(event, "imsi") == nullptr ||
        event_field(event, "bearerID") == nullptr ||
        event_field(event, "ip") != nullptr || busy_) {
      return;
    }
    busy_ = true;
    Knactor* knactor = &kn;
    clock_.schedule_after(allocation_.sample(rng_), [this, knactor]() {
      Value patch = Value::object();
      patch.set("ip", Value("10.0.0." + std::to_string(++seq_)));
      (void)knactor->patch_state("state", std::move(patch));
      busy_ = false;
    });
  }

 private:
  sim::VirtualClock& clock_;
  sim::LatencyModel allocation_;
  sim::Rng rng_{42};
  bool busy_ = false;
  int seq_ = 0;
};

}  // namespace

std::vector<std::string> epc_known_imsis() {
  return {"001010000000001", "001010000000002", "001010000000666"};
}

EpcKnactorApp build_epc_knactor_app(core::Runtime& runtime,
                                    EpcOptions options) {
  EpcKnactorApp app;
  app.runtime = &runtime;
  runtime.set_shards(options.shards);
  runtime.set_workers(options.workers);
  de::ObjectDe& de = runtime.add_object_de("epc", options.de_profile);
  app.de = &de;

  struct Spec {
    const char* name;
    std::unique_ptr<Reconciler> reconciler;
  };
  sim::VirtualClock& clock = runtime.clock();
  std::vector<Spec> specs;
  specs.push_back({"session", std::make_unique<SessionReconciler>()});
  specs.push_back({"subscriber", std::make_unique<SubscriberReconciler>()});
  specs.push_back({"policy", std::make_unique<PolicyReconciler>()});
  specs.push_back({"bearer", std::make_unique<BearerReconciler>(
                                 clock, options.bearer_setup)});
  specs.push_back({"address", std::make_unique<AddressReconciler>(
                                  clock, options.ip_allocation)});
  for (auto& spec : specs) {
    de::ObjectStore& store =
        de.create_store(std::string("knactor-") + spec.name);
    auto knactor =
        std::make_unique<Knactor>(spec.name, std::move(spec.reconciler));
    knactor->bind_object_store("state", store);
    runtime.add_knactor(std::move(knactor));
  }
  app.session_store = de.store("knactor-session");
  app.subscriber_store = de.store("knactor-subscriber");
  app.bearer_store = de.store("knactor-bearer");
  app.address_store = de.store("knactor-address");

  auto dxg = core::Dxg::parse(kEpcDxg);
  if (!dxg.ok()) {
    KN_ERROR << "epc: DXG parse failed: " << dxg.error().to_string();
    return app;
  }
  auto integrator = std::make_unique<core::CastIntegrator>(
      "epc", de, dxg.take(),
      std::map<std::string, de::ObjectStore*>{
          {"A", de.store("knactor-session")},
          {"H", de.store("knactor-subscriber")},
          {"P", de.store("knactor-policy")},
          {"B", de.store("knactor-bearer")},
          {"G", de.store("knactor-address")}});
  app.integrator = integrator.get();
  runtime.add_integrator(std::move(integrator));

  auto started = runtime.start_all();
  if (!started.ok()) {
    KN_ERROR << "epc: start failed: " << started.error().to_string();
  }
  runtime.run_until_idle();
  return app;
}

Result<Value> EpcKnactorApp::attach_sync(const std::string& imsi) {
  if (session_store == nullptr) {
    return Error::failed_precondition("epc app not built");
  }
  Value attach = Value::object();
  attach.set("imsi", Value(imsi));
  attach.set("state", Value("requested"));
  KN_TRY(session_store->put_sync("knactor:session", "attach",
                                 std::move(attach)));
  auto done = [this]() {
    const de::StateObject* obj = session_store->peek("attach");
    if (obj == nullptr || !obj->data) return false;
    const Value* state = obj->data->get("state");
    if (state == nullptr || !state->is_string()) return false;
    return state->as_string() == "active" || state->as_string() == "rejected";
  };
  while (!done() && runtime->clock().step()) {
  }
  runtime->run_until_idle();
  const de::StateObject* obj = session_store->peek("attach");
  if (obj == nullptr || !obj->data) {
    return Error::internal("epc: attach object disappeared");
  }
  if (!done()) {
    return Error::internal("epc: attach did not settle (queue drained)");
  }
  return *obj->data;
}

void EpcKnactorApp::reset_attach_state() {
  if (de == nullptr) return;
  if (integrator != nullptr) integrator->stop();
  for (const char* store_name :
       {"knactor-session", "knactor-bearer", "knactor-address"}) {
    de::ObjectStore* store = de->store(store_name);
    if (store == nullptr) continue;
    for (const auto& key : store->keys()) {
      if (key == "attach" || key == "state") {
        (void)store->remove_sync("reset", key);
      }
    }
  }
  runtime->run_until_idle();
  if (integrator != nullptr) {
    (void)integrator->start();
    runtime->run_until_idle();
  }
}

// ---------------------------------------------------------------------------
// RPC baseline.
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kEpcNs = "Epc.v1.";
}  // namespace

EpcRpcApp::EpcRpcApp(sim::VirtualClock& clock, EpcOptions options)
    : clock_(clock), options_(options) {
  network_ = std::make_unique<net::SimNetwork>(clock_);
  network_->set_default_latency(sim::LatencyModel::normal_ms(0.45, 0.04));

  auto msg = [this](const char* name,
                    std::vector<net::FieldDescriptor> fields) {
    net::MessageDescriptor d;
    d.full_name = kEpcNs + std::string(name);
    d.fields = std::move(fields);
    auto added = pool_.add(std::move(d));
    if (!added.ok()) {
      KN_ERROR << "epc-rpc: " << added.error().to_string();
    }
  };
  using net::FieldType;
  msg("AuthenticateRequest", {{1, "imsi", FieldType::kString}});
  msg("AuthenticateResponse", {{1, "allowed", FieldType::kBool},
                               {2, "plan", FieldType::kString}});
  msg("GetPolicyRequest", {{1, "plan", FieldType::kString}});
  msg("GetPolicyResponse", {{1, "qos", FieldType::kString}});
  msg("CreateBearerRequest", {{1, "imsi", FieldType::kString},
                              {2, "qos", FieldType::kString}});
  msg("CreateBearerResponse", {{1, "bearer_id", FieldType::kString}});
  msg("AllocateIpRequest", {{1, "imsi", FieldType::kString},
                            {2, "bearer_id", FieldType::kString}});
  msg("AllocateIpResponse", {{1, "ip", FieldType::kString}});
  msg("AttachRequest", {{1, "imsi", FieldType::kString}});
  msg("AttachResponse", {{1, "imsi", FieldType::kString},
                         {2, "bearer_id", FieldType::kString},
                         {3, "ip", FieldType::kString},
                         {4, "qos", FieldType::kString}});

  auto method = [](const char* name, const std::string& req,
                   const std::string& resp) {
    return net::MethodDescriptor{name, kEpcNs + req, kEpcNs + resp};
  };
  struct Def {
    const char* service;
    const char* node;
    std::vector<net::MethodDescriptor> methods;
  };
  std::vector<Def> defs = {
      {"Hss", "pod-hss",
       {method("Authenticate", "AuthenticateRequest", "AuthenticateResponse")}},
      {"Pcrf", "pod-pcrf",
       {method("GetPolicy", "GetPolicyRequest", "GetPolicyResponse")}},
      {"Sgw", "pod-sgw",
       {method("CreateBearer", "CreateBearerRequest", "CreateBearerResponse")}},
      {"Pgw", "pod-pgw",
       {method("AllocateIp", "AllocateIpRequest", "AllocateIpResponse")}},
      {"Mme", "pod-mme",
       {method("Attach", "AttachRequest", "AttachResponse")}},
  };
  for (const auto& def : defs) {
    auto server = std::make_unique<net::RpcServer>(*network_, def.node, pool_);
    net::ServiceDescriptor sd;
    sd.name = kEpcNs + std::string(def.service);
    sd.methods = def.methods;
    (void)server->add_service(sd, registry_);
    services_.push_back(sd);
    servers_.push_back(std::move(server));
  }

  auto descriptor = [this](const char* service) -> const net::ServiceDescriptor& {
    for (const auto& s : services_) {
      if (s.name == kEpcNs + std::string(service)) return s;
    }
    std::abort();
  };

  (void)servers_[0]->add_handler(
      kEpcNs + std::string("Hss"), "Authenticate",
      [this](const Value& req, net::RpcServer::Respond respond) {
        std::string imsi = req.get("imsi")->as_string();
        clock_.schedule_after(
            options_.hss_lookup.sample(sim_rng_), [imsi, respond]() {
              Value resp = Value::object();
              if (imsi == "001010000000001") {
                resp.set("allowed", Value(true));
                resp.set("plan", Value("premium"));
              } else if (imsi == "001010000000002") {
                resp.set("allowed", Value(true));
                resp.set("plan", Value("basic"));
              } else {
                resp.set("allowed", Value(false));
                resp.set("plan", Value("basic"));
              }
              respond(std::move(resp));
            });
      });
  (void)servers_[1]->add_handler(
      kEpcNs + std::string("Pcrf"), "GetPolicy",
      [](const Value& req, net::RpcServer::Respond respond) {
        Value resp = Value::object();
        resp.set("qos", Value(req.get("plan")->as_string() == "premium"
                                  ? "qci5"
                                  : "qci9"));
        respond(std::move(resp));
      });
  (void)servers_[2]->add_handler(
      kEpcNs + std::string("Sgw"), "CreateBearer",
      [this](const Value&, net::RpcServer::Respond respond) {
        clock_.schedule_after(options_.bearer_setup.sample(sim_rng_),
                              [this, respond]() {
                                Value resp = Value::object();
                                resp.set("bearer_id",
                                         Value("brr-" +
                                               std::to_string(++bearer_seq_)));
                                respond(std::move(resp));
                              });
      });
  (void)servers_[3]->add_handler(
      kEpcNs + std::string("Pgw"), "AllocateIp",
      [this](const Value&, net::RpcServer::Respond respond) {
        clock_.schedule_after(options_.ip_allocation.sample(sim_rng_),
                              [this, respond]() {
                                Value resp = Value::object();
                                resp.set("ip", Value("10.0.0." +
                                                     std::to_string(++ip_seq_)));
                                respond(std::move(resp));
                              });
      });

  channels_.push_back(
      std::make_unique<net::RpcChannel>(*network_, "pod-mme", registry_, pool_));
  channels_.push_back(std::make_unique<net::RpcChannel>(*network_, "pod-enb",
                                                        registry_, pool_));
  (void)servers_[4]->add_handler(
      kEpcNs + std::string("Mme"), "Attach",
      [this, descriptor](const Value& req, net::RpcServer::Respond respond) {
        net::RpcChannel& ch = *channels_[0];
        std::string imsi = req.get("imsi")->as_string();
        Value auth_req = Value::object();
        auth_req.set("imsi", Value(imsi));
        ch.call(descriptor("Hss"), "Authenticate", std::move(auth_req),
                [this, descriptor, respond, imsi](Result<Value> auth) {
                  if (!auth.ok()) {
                    respond(auth.error());
                    return;
                  }
                  if (!auth.value().get("allowed")->as_bool()) {
                    respond(Error::permission_denied("attach rejected: " +
                                                     imsi));
                    return;
                  }
                  std::string plan = auth.value().get("plan")->as_string();
                  net::RpcChannel& ch = *channels_[0];
                  Value policy_req = Value::object();
                  policy_req.set("plan", Value(plan));
                  ch.call(
                      descriptor("Pcrf"), "GetPolicy", std::move(policy_req),
                      [this, descriptor, respond, imsi](Result<Value> policy) {
                        if (!policy.ok()) {
                          respond(policy.error());
                          return;
                        }
                        std::string qos = policy.value().get("qos")->as_string();
                        net::RpcChannel& ch = *channels_[0];
                        Value bearer_req = Value::object();
                        bearer_req.set("imsi", Value(imsi));
                        bearer_req.set("qos", Value(qos));
                        ch.call(
                            descriptor("Sgw"), "CreateBearer",
                            std::move(bearer_req),
                            [this, descriptor, respond, imsi,
                             qos](Result<Value> bearer) {
                              if (!bearer.ok()) {
                                respond(bearer.error());
                                return;
                              }
                              std::string bearer_id =
                                  bearer.value().get("bearer_id")->as_string();
                              net::RpcChannel& ch = *channels_[0];
                              Value ip_req = Value::object();
                              ip_req.set("imsi", Value(imsi));
                              ip_req.set("bearer_id", Value(bearer_id));
                              ch.call(descriptor("Pgw"), "AllocateIp",
                                      std::move(ip_req),
                                      [respond, imsi, qos,
                                       bearer_id](Result<Value> ip) {
                                        if (!ip.ok()) {
                                          respond(ip.error());
                                          return;
                                        }
                                        Value resp = Value::object();
                                        resp.set("imsi", Value(imsi));
                                        resp.set("bearer_id", Value(bearer_id));
                                        resp.set("ip",
                                                 Value(ip.value()
                                                           .get("ip")
                                                           ->as_string()));
                                        resp.set("qos", Value(qos));
                                        respond(std::move(resp));
                                      });
                            });
                      });
                });
      });
}

Result<Value> EpcRpcApp::attach_sync(const std::string& imsi) {
  Value req = Value::object();
  req.set("imsi", Value(imsi));
  const net::ServiceDescriptor* mme = nullptr;
  for (const auto& s : services_) {
    if (s.name == kEpcNs + std::string("Mme")) mme = &s;
  }
  return channels_[1]->call_sync(*mme, "Attach", std::move(req));
}

}  // namespace knactor::apps
