// Multi-order ("fleet") variant of the online retail app: orders live as
// `order/<id>` objects and the composition uses fan-out DXG nodes
// (`S.* / $for: C order/`), so any number of orders move through the
// pipeline concurrently — the production shape of the paper's singleton
// example. Reconcilers process per-key (no global in-flight flag).
#pragma once

#include <string>
#include <vector>

#include "core/runtime.h"

namespace knactor::apps {

struct RetailFleetOptions {
  de::ObjectDeProfile de_profile = de::ObjectDeProfile::redis();
  sim::LatencyModel shipment_processing =
      sim::LatencyModel::normal_ms(446.0, 4.0);
  sim::LatencyModel payment_processing = sim::LatencyModel::normal_ms(2.0, 0.2);
  /// Key-space shards / worker parallelism for the runtime's DEs
  /// (deterministic; see docs/ARCHITECTURE.md).
  std::size_t shards = 1;
  int workers = 1;
};

struct RetailFleetApp {
  core::Runtime* runtime = nullptr;
  de::ObjectDe* de = nullptr;
  core::CastIntegrator* integrator = nullptr;
  de::ObjectStore* checkout_store = nullptr;
  de::ObjectStore* shipping_store = nullptr;
  de::ObjectStore* payment_store = nullptr;

  /// Places `count` orders at once (alternating cheap/expensive) and runs
  /// the clock until every one is shipped. Returns the completed order
  /// objects in id order.
  common::Result<std::vector<common::Value>> place_orders_sync(int count);

  /// Number of orders currently shipped.
  [[nodiscard]] std::size_t shipped_count() const;
};

RetailFleetApp build_retail_fleet_app(core::Runtime& runtime,
                                      RetailFleetOptions options = {});

}  // namespace knactor::apps
