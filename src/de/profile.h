// Data-exchange performance/capability profiles. A profile captures what
// differs between the paper's Object DE deployments — Kubernetes apiserver
// (strongly consistent, durable, slow) vs Redis (in-memory, fast, with
// server-side functions) — as latency models charged to the virtual clock.
//
// Calibration: the defaults below reproduce the *stage shape* of Table 2
// (C-I / I / I-S columns); see bench/bench_table2.cpp and EXPERIMENTS.md.
#pragma once

#include <string>

#include "sim/latency.h"

namespace knactor::de {

struct ObjectDeProfile {
  std::string name;

  /// Client-observed round-trip for a single-object read.
  sim::LatencyModel read_rt;
  /// Client-observed round-trip for a write (includes commit cost:
  /// raft + fsync for apiserver, memory write for redis).
  sim::LatencyModel write_rt;
  /// Client-observed round-trip for a prefix list.
  sim::LatencyModel list_rt;
  /// Delay from commit to a watcher receiving the event.
  sim::LatencyModel watch_notify;
  /// Server-internal engine read/write (used inside UDFs — no round trip).
  sim::LatencyModel engine_read;
  sim::LatencyModel engine_write;
  /// Round-trip to invoke a server-side function (UDF).
  sim::LatencyModel udf_invoke;

  bool durable = false;
  bool strongly_consistent = false;
  bool supports_udf = false;

  /// Kubernetes-apiserver-like Object DE: strongly consistent, persisted
  /// (etcd: raft quorum + fsync per write), no server-side functions.
  static ObjectDeProfile apiserver();
  /// Redis-like Object DE: in-memory, fast, server-side functions.
  static ObjectDeProfile redis();
  /// Zero-latency profile for logic-only unit tests.
  static ObjectDeProfile instant();
};

// Calibration (Table 2): with the Cast integrator's stage decomposition
//   C-I  = source write_rt + watch_notify + list_rt (snapshot read)
//   I    = integrator compute
//   I-S  = target write_rt (client) or engine_write (+local notify) in
//          push-down mode
// the values below reproduce the paper's stage profile:
//   apiserver: C-I 12.5+4.3+3.8 = 20.6 ms, I-S 12.5 ms  (paper 20.6/12.5)
//   redis:     C-I  2.7+0.25+0.25 = 3.2 ms, I-S 2.7 ms  (paper 3.2/2.7)
//   redis-udf: C-I ~2.7 ms (write + trigger), I-S ~0.1 ms (paper 2.1/0.1)

inline ObjectDeProfile ObjectDeProfile::apiserver() {
  ObjectDeProfile p;
  p.name = "apiserver";
  p.read_rt = sim::LatencyModel::normal_ms(3.6, 0.3);
  p.write_rt = sim::LatencyModel::normal_ms(12.5, 0.5);  // raft + fsync
  p.list_rt = sim::LatencyModel::normal_ms(3.8, 0.3);
  p.watch_notify = sim::LatencyModel::normal_ms(4.3, 0.3);
  p.engine_read = sim::LatencyModel::constant_ms(0.08);
  p.engine_write = sim::LatencyModel::constant_ms(0.35);
  p.udf_invoke = sim::LatencyModel::constant_ms(0.0);  // unsupported
  p.durable = true;
  p.strongly_consistent = true;
  p.supports_udf = false;
  return p;
}

inline ObjectDeProfile ObjectDeProfile::redis() {
  ObjectDeProfile p;
  p.name = "redis";
  p.read_rt = sim::LatencyModel::normal_ms(0.30, 0.03);
  p.write_rt = sim::LatencyModel::normal_ms(2.7, 0.1);
  p.list_rt = sim::LatencyModel::normal_ms(0.25, 0.02);
  p.watch_notify = sim::LatencyModel::normal_ms(0.25, 0.02);
  p.engine_read = sim::LatencyModel::constant_ms(0.012);
  p.engine_write = sim::LatencyModel::constant_ms(0.08);
  p.udf_invoke = sim::LatencyModel::normal_ms(0.65, 0.05);
  p.durable = false;
  p.strongly_consistent = false;
  p.supports_udf = true;
  return p;
}

inline ObjectDeProfile ObjectDeProfile::instant() {
  ObjectDeProfile p;
  p.name = "instant";
  p.supports_udf = true;
  return p;
}

}  // namespace knactor::de
