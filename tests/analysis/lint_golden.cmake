# Golden test for `knctl lint`: the deliberately broken fixture must produce
# byte-identical diagnostics (stable codes, file:line:col, hints) and exit 1.
#
# Usage: cmake -DKNCTL=<path> -DFIXTURES=<dir> -DSPECS=<dir> -P lint_golden.cmake
cmake_minimum_required(VERSION 3.16)
foreach(var KNCTL FIXTURES SPECS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${KNCTL} lint broken_dxg.yaml
          --schema ${SPECS}/checkout_schema.yaml
          --schema ${SPECS}/shipping_schema.yaml
          --schema ${SPECS}/payment_schema.yaml
          --schema ${SPECS}/motion_schema.yaml
          --schema ${SPECS}/house_schema.yaml
          --rbac policy.yaml
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 1)
  message(FATAL_ERROR "expected exit 1 (findings), got ${rc}\n${actual}${err}")
endif()

file(READ ${FIXTURES}/broken_dxg.txt expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR "lint output drifted from golden broken_dxg.txt\n"
                      "--- expected ---\n${expected}\n--- actual ---\n${actual}")
endif()

# JSON mode must agree on the totals and stay machine-parseable.
execute_process(
  COMMAND ${KNCTL} lint broken_dxg.yaml
          --schema ${SPECS}/checkout_schema.yaml
          --schema ${SPECS}/shipping_schema.yaml
          --schema ${SPECS}/payment_schema.yaml
          --schema ${SPECS}/motion_schema.yaml
          --schema ${SPECS}/house_schema.yaml
          --rbac policy.yaml --format json
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE json_out
  RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 1)
  message(FATAL_ERROR "json mode: expected exit 1, got ${json_rc}")
endif()
if(NOT json_out MATCHES "\"errors\": 6" OR NOT json_out MATCHES "\"KN302\"")
  message(FATAL_ERROR "json mode lost findings:\n${json_out}")
endif()

message(STATUS "lint golden OK")
