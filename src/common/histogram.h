// Power-of-two size histogram for batch observability: watch-batch sizes
// on the Object DE and append/query batch sizes on the Log DE record how
// well the hot path amortizes per-event work. Counters-only (no floats),
// so it exports losslessly into core::Metrics.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace knactor::common {

/// Histogram over sizes with buckets le_1, le_2, le_4, ..., le_1024, inf,
/// plus count / sum / max. add() is O(buckets) worst case and allocation-
/// free, so it is safe on the data path.
class SizeHistogram {
 public:
  static constexpr std::size_t kBuckets = 12;  // le_1 .. le_1024, inf

  void add(std::size_t n) {
    ++count_;
    sum_ += n;
    if (n > max_) max_ = n;
    std::size_t bound = 1;
    for (std::size_t i = 0; i < kBuckets - 1; ++i, bound <<= 1) {
      if (n <= bound) {
        ++buckets_[i];
        return;
      }
    }
    ++buckets_[kBuckets - 1];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Upper bound of bucket `i` as a label ("le_1", ..., "le_1024", "inf").
  static std::string bucket_label(std::size_t i) {
    if (i >= kBuckets - 1) return "inf";
    return "le_" + std::to_string(std::size_t{1} << i);
  }

  /// Surfaces the histogram as monotonic counters ("<prefix>.count",
  /// "<prefix>.sum", "<prefix>.max", "<prefix>.le_8", ...). The emit
  /// callback decouples this header from core::Metrics (common must not
  /// depend on core); core::export_histogram adapts it.
  void export_counters(
      const std::string& prefix,
      const std::function<void(const std::string&, std::uint64_t)>& emit)
      const {
    emit(prefix + ".count", count_);
    emit(prefix + ".sum", sum_);
    emit(prefix + ".max", max_);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      emit(prefix + "." + bucket_label(i), buckets_[i]);
    }
  }

  void clear() { *this = SizeHistogram{}; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace knactor::common
