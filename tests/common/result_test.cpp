#include "common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace knactor::common {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(r.value_or(9), 5);
}

TEST(Result, HoldsError) {
  Result<int> r(Error::not_found("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(Result, TakeMoves) {
  Result<std::string> r(std::string("abc"));
  std::string s = r.take();
  EXPECT_EQ(s, "abc");
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(Status::success().ok());
}

TEST(Status, CarriesError) {
  Status s(Error::permission_denied("nope"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Error::Code::kPermissionDenied);
}

TEST(Error, ToStringIncludesCodeName) {
  EXPECT_EQ(Error::parse("bad").to_string(), "Parse: bad");
  EXPECT_EQ(Error::eval("x").to_string(), "Eval: x");
  EXPECT_EQ(Error::internal("y").to_string(), "Internal: y");
}

TEST(Error, AllFactoriesSetCodes) {
  EXPECT_EQ(Error::invalid_argument("").code, Error::Code::kInvalidArgument);
  EXPECT_EQ(Error::not_found("").code, Error::Code::kNotFound);
  EXPECT_EQ(Error::already_exists("").code, Error::Code::kAlreadyExists);
  EXPECT_EQ(Error::permission_denied("").code,
            Error::Code::kPermissionDenied);
  EXPECT_EQ(Error::failed_precondition("").code,
            Error::Code::kFailedPrecondition);
  EXPECT_EQ(Error::unavailable("").code, Error::Code::kUnavailable);
}

namespace helpers {

Result<int> parse_positive(int x) {
  if (x <= 0) return Error::invalid_argument("not positive");
  return x;
}

Result<int> doubled(int x) {
  KN_ASSIGN_OR_RETURN(int v, parse_positive(x));
  return v * 2;
}

Status check(int x) {
  KN_TRY(parse_positive(x));
  return Status::success();
}

}  // namespace helpers

TEST(Macros, AssignOrReturnPropagates) {
  EXPECT_EQ(helpers::doubled(4).value(), 8);
  EXPECT_FALSE(helpers::doubled(-1).ok());
  EXPECT_EQ(helpers::doubled(-1).error().code,
            Error::Code::kInvalidArgument);
}

TEST(Macros, TryPropagates) {
  EXPECT_TRUE(helpers::check(1).ok());
  EXPECT_FALSE(helpers::check(0).ok());
}

}  // namespace
}  // namespace knactor::common
