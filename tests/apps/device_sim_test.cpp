#include "apps/device_sim.h"

#include <gtest/gtest.h>

#include "apps/smart_home.h"
#include "de/query.h"

namespace knactor::apps {
namespace {

using common::Value;

constexpr sim::SimTime kHour = 3600 * sim::kSecond;

TEST(OccupancyPattern, Windows) {
  OccupancyPattern p = OccupancyPattern::weekday();
  EXPECT_FALSE(p.occupied_at(3 * kHour));   // 03:00
  EXPECT_TRUE(p.occupied_at(7 * kHour));    // 07:00 morning window
  EXPECT_FALSE(p.occupied_at(12 * kHour));  // noon
  EXPECT_TRUE(p.occupied_at(20 * kHour));   // evening window
  EXPECT_FALSE(p.occupied_at(23 * kHour + 30 * 60 * sim::kSecond));
  // Same time next day.
  EXPECT_TRUE(p.occupied_at(24 * kHour + 7 * kHour));
}

TEST(OccupancyPattern, EdgePatterns) {
  EXPECT_FALSE(OccupancyPattern::empty().occupied_at(12 * kHour));
  EXPECT_TRUE(OccupancyPattern::always().occupied_at(12 * kHour));
  EXPECT_TRUE(OccupancyPattern::always().occupied_at(0));
}

TEST(MotionSensorSim, ReportsTransitionsOnly) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& store = de.create_store("knactor-motion");
  OccupancyPattern pattern;
  pattern.windows.push_back({2 * kHour, 4 * kHour});

  MotionSensorSim::Options options;
  options.period = 10 * 60 * sim::kSecond;  // every 10 minutes
  MotionSensorSim sensor(clock, store, nullptr, pattern, options);
  sensor.start();
  clock.run_until(6 * kHour);
  sensor.stop();

  // 6h / 10min = 36 samples, but only 3 transitions: initial report
  // (false), 02:00 on, 04:00 off.
  EXPECT_GE(sensor.samples_taken(), 35u);
  EXPECT_EQ(sensor.transitions(), 3u);
  const de::StateObject* state = store.peek("state");
  ASSERT_NE(state, nullptr);
  EXPECT_FALSE(state->data->get("triggered")->as_bool());
}

TEST(MotionSensorSim, LogsEverySample) {
  sim::VirtualClock clock;
  de::ObjectDe ode(clock, de::ObjectDeProfile::instant());
  de::LogDe lde(clock, de::LogDeProfile::instant());
  de::ObjectStore& store = ode.create_store("knactor-motion");
  de::LogPool& pool = lde.create_pool("motion-telemetry");
  MotionSensorSim::Options options;
  options.period = 30 * 60 * sim::kSecond;
  MotionSensorSim sensor(clock, store, &pool, OccupancyPattern::weekday(),
                         options);
  sensor.start();
  clock.run_until(24 * kHour);
  sensor.stop();
  EXPECT_EQ(pool.size(), sensor.samples_taken());
  // Telemetry is queryable: count occupied samples (06:30-08:30 = 4,
  // 18:00-23:00 = 10).
  auto query = de::parse_query("where triggered == true | "
                               "summarize n=count(sensor)");
  ASSERT_TRUE(query.ok());
  auto rows = pool.query_sync("house", query.value());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0].get("n")->as_int(), 14);
}

TEST(MotionSensorSim, FlakySensorStillBounded) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& store = de.create_store("knactor-motion");
  MotionSensorSim::Options options;
  options.period = 60 * sim::kSecond;
  options.flake_rate = 0.1;
  MotionSensorSim sensor(clock, store, nullptr, OccupancyPattern::empty(),
                         options);
  sensor.start();
  clock.run_until(4 * kHour);
  sensor.stop();
  // Roughly 10% of 240 samples flip; transitions bounded by 2x flakes + 1.
  EXPECT_GT(sensor.transitions(), 5u);
  EXPECT_LT(sensor.transitions(), 100u);
}

TEST(MotionSensorSim, DrivesTheFullSmartHomeApp) {
  core::Runtime runtime;
  auto app = build_smart_home_knactor_app(runtime);
  OccupancyPattern pattern;
  pattern.windows.push_back({1 * kHour, 2 * kHour});
  MotionSensorSim::Options options;
  options.period = 5 * 60 * sim::kSecond;
  MotionSensorSim sensor(runtime.clock(), *app.motion_store, app.motion_log,
                         pattern, options);
  sensor.start();

  // The sensor reschedules forever, so drive the clock by bounded windows
  // (run_until processes every event inside the window, including the
  // watch-driven exchange passes).
  runtime.clock().run_until(90 * 60 * sim::kSecond);  // inside the window
  EXPECT_EQ(app.lamp_intensity(), 90);

  runtime.clock().run_until(3 * kHour);  // after the window
  EXPECT_EQ(app.lamp_intensity(), 10);
  sensor.stop();
}

}  // namespace
}  // namespace knactor::apps
