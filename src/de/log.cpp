#include "de/log.h"

#include <algorithm>

#include "common/json.h"
#include "expr/parser.h"

namespace knactor::de {

using common::Error;
using common::Result;
using common::Status;
using common::Value;

// ---------------------------------------------------------------------------
// LogOp constructors.
// ---------------------------------------------------------------------------

Result<LogOp> LogOp::filter(const std::string& expr_text) {
  LogOp op;
  op.kind = Kind::kFilter;
  op.expr_text = expr_text;
  KN_ASSIGN_OR_RETURN(expr::NodePtr node, expr::parse(expr_text));
  op.compiled = std::shared_ptr<const expr::Node>(std::move(node));
  return op;
}

LogOp LogOp::rename(std::map<std::string, std::string> renames) {
  LogOp op;
  op.kind = Kind::kRename;
  op.renames = std::move(renames);
  return op;
}

LogOp LogOp::project(std::vector<std::string> fields) {
  LogOp op;
  op.kind = Kind::kProject;
  op.fields = std::move(fields);
  return op;
}

LogOp LogOp::drop(std::vector<std::string> fields) {
  LogOp op;
  op.kind = Kind::kDrop;
  op.fields = std::move(fields);
  return op;
}

LogOp LogOp::sort(std::string field, bool descending) {
  LogOp op;
  op.kind = Kind::kSort;
  op.field = std::move(field);
  op.descending = descending;
  return op;
}

LogOp LogOp::head(std::size_t n) {
  LogOp op;
  op.kind = Kind::kHead;
  op.n = n;
  return op;
}

LogOp LogOp::tail(std::size_t n) {
  LogOp op;
  op.kind = Kind::kTail;
  op.n = n;
  return op;
}

LogOp LogOp::aggregate(
    std::vector<std::string> group_by,
    std::map<std::string, std::pair<std::string, std::string>> aggs) {
  LogOp op;
  op.kind = Kind::kAggregate;
  op.fields = std::move(group_by);
  op.aggs = std::move(aggs);
  return op;
}

Result<LogOp> LogOp::map(std::string target_field,
                         const std::string& expr_text) {
  LogOp op;
  op.kind = Kind::kMap;
  op.field = std::move(target_field);
  op.expr_text = expr_text;
  KN_ASSIGN_OR_RETURN(expr::NodePtr node, expr::parse(expr_text));
  op.compiled = std::shared_ptr<const expr::Node>(std::move(node));
  return op;
}

// ---------------------------------------------------------------------------
// Pipeline execution.
// ---------------------------------------------------------------------------

namespace {

/// Env exposing a record's fields as top-level names plus `this`. Fields a
/// record lacks resolve to null (not an error): heterogeneous pools are
/// normal — a filter like "energy > 0" must simply not match records
/// without the field.
class RecordEnv : public expr::Env {
 public:
  explicit RecordEnv(const Value& record) : record_(record) {}

  [[nodiscard]] const Value* resolve(const std::string& name) const override {
    if (name == "this") return &record_;
    if (record_.is_object()) {
      const Value* v = record_.get(name);
      return v != nullptr ? v : &null_;
    }
    return &null_;
  }

 private:
  static const Value null_;
  const Value& record_;
};

const Value RecordEnv::null_{};

Result<Value> aggregate_column(const std::string& fn,
                               const std::vector<Value>& column) {
  if (fn == "count") {
    return Value(static_cast<std::int64_t>(column.size()));
  }
  if (fn == "first") {
    return column.empty() ? Value(nullptr) : column.front();
  }
  if (fn == "last") {
    return column.empty() ? Value(nullptr) : column.back();
  }
  // Numeric reductions ignore null/missing values.
  std::vector<double> nums;
  bool all_int = true;
  for (const auto& v : column) {
    if (v.is_null()) continue;
    auto n = v.try_number();
    if (!n) {
      return Error::eval("aggregate " + fn + ": non-numeric value");
    }
    if (!v.is_int()) all_int = false;
    nums.push_back(*n);
  }
  if (nums.empty()) return Value(nullptr);
  double out = 0;
  if (fn == "sum") {
    for (double n : nums) out += n;
  } else if (fn == "min") {
    out = *std::min_element(nums.begin(), nums.end());
  } else if (fn == "max") {
    out = *std::max_element(nums.begin(), nums.end());
  } else if (fn == "avg") {
    for (double n : nums) out += n;
    out /= static_cast<double>(nums.size());
    return Value(out);
  } else {
    return Error::invalid_argument("unknown aggregate function '" + fn + "'");
  }
  if (all_int && fn != "avg") return Value(static_cast<std::int64_t>(out));
  return Value(out);
}

Result<std::vector<Value>> apply_op(const LogOp& op,
                                    std::vector<Value> records) {
  const auto& functions = expr::FunctionRegistry::builtins();
  switch (op.kind) {
    case LogOp::Kind::kFilter: {
      std::vector<Value> out;
      for (auto& r : records) {
        RecordEnv env(r);
        KN_ASSIGN_OR_RETURN(Value keep,
                            expr::evaluate(*op.compiled, env, functions));
        if (keep.truthy()) out.push_back(std::move(r));
      }
      return out;
    }
    case LogOp::Kind::kRename: {
      for (auto& r : records) {
        if (!r.is_object()) continue;
        Value out = Value::object();
        for (const auto& [k, v] : r.as_object()) {
          auto it = op.renames.find(k);
          out.set(it == op.renames.end() ? k : it->second, v);
        }
        r = std::move(out);
      }
      return records;
    }
    case LogOp::Kind::kProject: {
      for (auto& r : records) {
        if (!r.is_object()) continue;
        Value out = Value::object();
        for (const auto& f : op.fields) {
          const Value* v = r.get(f);
          if (v != nullptr) out.set(f, *v);
        }
        r = std::move(out);
      }
      return records;
    }
    case LogOp::Kind::kDrop: {
      for (auto& r : records) {
        if (!r.is_object()) continue;
        for (const auto& f : op.fields) {
          r.as_object().erase(f);
        }
      }
      return records;
    }
    case LogOp::Kind::kSort: {
      bool type_error = false;
      auto three_way = [&](const Value& a, const Value& b) -> int {
        const Value* fa = a.get(op.field);
        const Value* fb = b.get(op.field);
        if (fa == nullptr && fb == nullptr) return 0;
        // Missing values sort last regardless of direction.
        if (fa == nullptr) return op.descending ? -1 : 1;
        if (fb == nullptr) return op.descending ? 1 : -1;
        if (fa->is_number() && fb->is_number()) {
          if (fa->as_number() < fb->as_number()) return -1;
          if (fa->as_number() > fb->as_number()) return 1;
          return 0;
        }
        if (fa->is_string() && fb->is_string()) {
          return fa->as_string().compare(fb->as_string());
        }
        type_error = true;
        return 0;
      };
      std::stable_sort(records.begin(), records.end(),
                       [&](const Value& a, const Value& b) {
                         int c = three_way(a, b);
                         return op.descending ? c > 0 : c < 0;
                       });
      if (type_error) {
        return Error::eval("sort: unorderable values in field '" + op.field +
                           "'");
      }
      return records;
    }
    case LogOp::Kind::kHead: {
      if (records.size() > op.n) records.resize(op.n);
      return records;
    }
    case LogOp::Kind::kTail: {
      if (records.size() > op.n) {
        records.erase(records.begin(),
                      records.end() - static_cast<std::ptrdiff_t>(op.n));
      }
      return records;
    }
    case LogOp::Kind::kMap: {
      for (auto& r : records) {
        RecordEnv env(r);
        KN_ASSIGN_OR_RETURN(Value v,
                            expr::evaluate(*op.compiled, env, functions));
        if (!r.is_object()) r = Value::object();
        r.set(op.field, std::move(v));
      }
      return records;
    }
    case LogOp::Kind::kAggregate: {
      // Group rows by the group_by key tuple, preserving first-seen order.
      std::vector<std::pair<std::string, std::vector<Value>>> groups;
      std::map<std::string, std::size_t> index;
      for (auto& r : records) {
        std::string key;
        for (const auto& f : op.fields) {
          const Value* v = r.get(f);
          key += (v != nullptr ? common::to_json(*v) : "null") + "\x1f";
        }
        auto it = index.find(key);
        if (it == index.end()) {
          index[key] = groups.size();
          groups.push_back({key, {}});
          groups.back().second.push_back(std::move(r));
        } else {
          groups[it->second].second.push_back(std::move(r));
        }
      }
      std::vector<Value> out;
      for (auto& [key, rows] : groups) {
        Value row = Value::object();
        for (const auto& f : op.fields) {
          const Value* v = rows.front().get(f);
          row.set(f, v != nullptr ? *v : Value(nullptr));
        }
        for (const auto& [out_field, agg] : op.aggs) {
          const auto& [fn, in_field] = agg;
          std::vector<Value> column;
          for (const auto& r : rows) {
            const Value* v = r.get(in_field);
            column.push_back(v != nullptr ? *v : Value(nullptr));
          }
          KN_ASSIGN_OR_RETURN(Value agg_value, aggregate_column(fn, column));
          row.set(out_field, std::move(agg_value));
        }
        out.push_back(std::move(row));
      }
      return out;
    }
  }
  return Error::internal("unhandled log op");
}

}  // namespace

Result<std::vector<Value>> run_pipeline(const LogQuery& q,
                                        std::vector<Value> records) {
  for (const auto& op : q) {
    KN_ASSIGN_OR_RETURN(records, apply_op(op, std::move(records)));
  }
  return records;
}

// ---------------------------------------------------------------------------
// Profiles.
// ---------------------------------------------------------------------------

LogDeProfile LogDeProfile::zed() {
  LogDeProfile p;
  p.name = "zed";
  p.append_rt = sim::LatencyModel::normal_ms(1.2, 0.1);
  p.query_base_rt = sim::LatencyModel::normal_ms(2.5, 0.2);
  p.per_record = sim::LatencyModel::constant(2);  // 2us per record scanned
  return p;
}

LogDeProfile LogDeProfile::instant() {
  LogDeProfile p;
  p.name = "instant";
  return p;
}

// ---------------------------------------------------------------------------
// LogPool / LogDe.
// ---------------------------------------------------------------------------

void LogPool::append(const std::string& principal, Value record,
                     AppendCallback done) {
  sim::SimTime rt = de_.profile_.append_rt.sample(de_.rng_);
  de_.clock_.schedule_after(
      rt, [this, principal, record = std::move(record),
           done = std::move(done)]() mutable {
        ++de_.stats_.appends;
        Decision d = de_.rbac_.check(principal, name_, "", Verb::kCreate,
                                     de_.clock_.now());
        if (!d.allowed) {
          ++de_.stats_.permission_denials;
          done(Error::permission_denied("log: " + principal +
                                        " cannot append to " + name_));
          return;
        }
        LogRecord rec;
        rec.seq = de_.next_seq_++;
        rec.ingested_at = de_.clock_.now();
        rec.data = std::move(record);
        records_.push_back(std::move(rec));
        done(records_.back().seq);
      });
}

void LogPool::append_batch(const std::string& principal,
                           std::vector<Value> records, AppendCallback done) {
  sim::SimTime rt = de_.profile_.append_rt.sample(de_.rng_);
  rt += static_cast<sim::SimTime>(records.size()) *
        de_.profile_.per_record.sample(de_.rng_);
  de_.clock_.schedule_after(
      rt, [this, principal, records = std::move(records),
           done = std::move(done)]() mutable {
        Decision d = de_.rbac_.check(principal, name_, "", Verb::kCreate,
                                     de_.clock_.now());
        if (!d.allowed) {
          ++de_.stats_.permission_denials;
          done(Error::permission_denied("log: " + principal +
                                        " cannot append to " + name_));
          return;
        }
        std::uint64_t last = latest_seq();
        for (auto& record : records) {
          ++de_.stats_.appends;
          LogRecord rec;
          rec.seq = de_.next_seq_++;
          rec.ingested_at = de_.clock_.now();
          rec.data = std::move(record);
          last = rec.seq;
          records_.push_back(std::move(rec));
        }
        done(last);
      });
}

Result<std::uint64_t> LogPool::append_batch_sync(const std::string& principal,
                                                 std::vector<Value> records) {
  std::optional<Result<std::uint64_t>> result;
  append_batch(principal, std::move(records),
               [&](Result<std::uint64_t> r) { result = std::move(r); });
  de_.run_sync([&] { return result.has_value(); });
  return std::move(*result);
}

void LogPool::query(const std::string& principal, const LogQuery& q,
                    std::uint64_t after_seq, QueryCallback done) {
  // Collect matching records now; charge base + per-record latency.
  std::vector<Value> batch;
  for (const auto& rec : records_) {
    if (rec.seq > after_seq) batch.push_back(rec.data);
  }
  sim::SimTime rt = de_.profile_.query_base_rt.sample(de_.rng_);
  rt += static_cast<sim::SimTime>(batch.size()) *
        de_.profile_.per_record.sample(de_.rng_);
  de_.clock_.schedule_after(
      rt, [this, principal, q, batch = std::move(batch),
           done = std::move(done)]() mutable {
        ++de_.stats_.queries;
        de_.stats_.records_scanned += batch.size();
        Decision d = de_.rbac_.check(principal, name_, "", Verb::kList,
                                     de_.clock_.now());
        if (!d.allowed) {
          ++de_.stats_.permission_denials;
          done(Error::permission_denied("log: " + principal +
                                        " cannot query " + name_));
          return;
        }
        if (!d.fields.unrestricted()) {
          for (auto& r : batch) {
            r = Rbac::filter_fields(r, d.fields);
          }
        }
        done(run_pipeline(q, std::move(batch)));
      });
}

Result<std::uint64_t> LogPool::append_sync(const std::string& principal,
                                           Value record) {
  std::optional<Result<std::uint64_t>> result;
  append(principal, std::move(record),
         [&](Result<std::uint64_t> r) { result = std::move(r); });
  de_.run_sync([&] { return result.has_value(); });
  return std::move(*result);
}

Result<std::vector<Value>> LogPool::query_sync(const std::string& principal,
                                               const LogQuery& q,
                                               std::uint64_t after_seq) {
  std::optional<Result<std::vector<Value>>> result;
  query(principal, q, after_seq,
        [&](Result<std::vector<Value>> r) { result = std::move(r); });
  de_.run_sync([&] { return result.has_value(); });
  return std::move(*result);
}

std::size_t LogPool::compact(std::uint64_t up_to) {
  std::size_t dropped = 0;
  while (!records_.empty() && records_.front().seq <= up_to) {
    records_.pop_front();
    ++dropped;
  }
  return dropped;
}

LogDe::LogDe(sim::VirtualClock& clock, LogDeProfile profile, std::uint64_t seed)
    : clock_(clock), profile_(std::move(profile)), rng_(seed) {}

LogPool& LogDe::create_pool(const std::string& name) {
  auto it = pools_.find(name);
  if (it != pools_.end()) return *it->second;
  auto pool = std::unique_ptr<LogPool>(new LogPool(*this, name));
  LogPool& ref = *pool;
  pools_[name] = std::move(pool);
  return ref;
}

LogPool* LogDe::pool(const std::string& name) {
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : it->second.get();
}

void LogDe::run_sync(const std::function<bool()>& done) {
  while (!done() && clock_.step()) {
  }
}

}  // namespace knactor::de
