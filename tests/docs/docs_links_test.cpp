// Docs hygiene suite (`ctest -L docs`): every relative markdown link and
// every backticked repo path (`src/...`, `tests/...`, ...) in README.md
// and docs/ must resolve to a real file or directory in the source tree.
// Keeps the docs index and cross-references from rotting as files move.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

const fs::path kRoot = KNACTOR_SOURCE_DIR;

std::vector<fs::path> doc_files() {
  std::vector<fs::path> files;
  for (const char* top : {"README.md", "DESIGN.md", "ROADMAP.md",
                          "EXPERIMENTS.md", "CONTRIBUTING.md", "CHANGES.md"}) {
    if (fs::exists(kRoot / top)) files.push_back(kRoot / top);
  }
  for (const auto& entry : fs::directory_iterator(kRoot / "docs")) {
    if (entry.path().extension() == ".md") files.push_back(entry.path());
  }
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// True when `target`, resolved against the doc's directory, exists
// (trailing #fragment stripped; a path with a '*' checks its parent;
// an extensionless path may name a module/binary — its .cpp/.h source
// counts).
bool resolves(const fs::path& doc_dir, std::string target) {
  auto hash = target.find('#');
  if (hash != std::string::npos) target = target.substr(0, hash);
  if (target.empty()) return true;  // pure in-page anchor
  if (target.find('*') != std::string::npos) {
    return fs::exists(doc_dir / fs::path(target).parent_path());
  }
  return fs::exists(doc_dir / target) ||
         fs::exists(doc_dir / (target + ".cpp")) ||
         fs::exists(doc_dir / (target + ".h"));
}

TEST(DocsLinks, RelativeMarkdownLinksResolve) {
  const std::regex link(R"(\]\(([^)\s]+)\))");
  std::size_t checked = 0;
  for (const auto& doc : doc_files()) {
    const std::string text = slurp(doc);
    for (std::sregex_iterator it(text.begin(), text.end(), link), end;
         it != end; ++it) {
      std::string target = (*it)[1].str();
      if (target.rfind("http://", 0) == 0 ||
          target.rfind("https://", 0) == 0 ||
          target.rfind("mailto:", 0) == 0) {
        continue;
      }
      EXPECT_TRUE(resolves(doc.parent_path(), target))
          << doc.filename().string() << " links to missing \"" << target
          << "\"";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(DocsLinks, BacktickedRepoPathsResolve) {
  // `src/core/cast.h`, `tests/...`, `specs/...`, `tools/...`, `bench/...`,
  // `docs/...` — the path forms docs use to point into the tree. Paths are
  // repo-root-relative regardless of which doc mentions them.
  const std::regex path_ref(
      R"(`((?:src|tests|specs|tools|bench|docs)/[A-Za-z0-9_\-./*]+)`)");
  std::size_t checked = 0;
  for (const auto& doc : doc_files()) {
    const std::string text = slurp(doc);
    for (std::sregex_iterator it(text.begin(), text.end(), path_ref), end;
         it != end; ++it) {
      std::string target = (*it)[1].str();
      EXPECT_TRUE(resolves(kRoot, target))
          << doc.filename().string() << " references missing `" << target
          << "`";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

// The docs index must exist and list every file in docs/.
TEST(DocsLinks, IndexCoversEveryDoc) {
  const fs::path index = kRoot / "docs" / "README.md";
  ASSERT_TRUE(fs::exists(index));
  const std::string text = slurp(index);
  for (const auto& entry : fs::directory_iterator(kRoot / "docs")) {
    if (entry.path().extension() != ".md") continue;
    if (entry.path().filename() == "README.md") continue;
    EXPECT_NE(text.find(entry.path().filename().string()), std::string::npos)
        << "docs/README.md does not list " << entry.path().filename();
  }
}

}  // namespace
