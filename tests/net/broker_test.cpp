#include "net/broker.h"

#include <gtest/gtest.h>

namespace knactor::net {
namespace {

using common::Value;

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() : broker_(net_, "broker") {
    net_.set_default_latency(sim::LatencyModel::constant_ms(0.5));
    net_.add_node("pub");
  }

  sim::VirtualClock clock_;
  SimNetwork net_{clock_};
  Broker broker_;
};

TEST_F(BrokerTest, DeliversToSubscriber) {
  std::string got;
  broker_.subscribe("topic/a", "sub1",
                    [&](const std::string&, const Value& m) {
                      got = m.get("x")->as_string();
                    });
  ASSERT_TRUE(broker_.publish("pub", "topic/a",
                              Value::object({{"x", "hello"}}))
                  .ok());
  clock_.run_all();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(broker_.messages_routed(), 1u);
}

TEST_F(BrokerTest, TwoHopsOfLatency) {
  sim::SimTime delivered_at = -1;
  broker_.subscribe("t", "sub1", [&](const std::string&, const Value&) {
    delivered_at = clock_.now();
  });
  (void)broker_.publish("pub", "t", Value::object({}));
  clock_.run_all();
  // pub -> broker -> sub: 2 x 0.5 ms.
  EXPECT_EQ(delivered_at, sim::from_ms(1.0));
}

TEST_F(BrokerTest, FanOutToMultipleSubscribers) {
  int got = 0;
  broker_.subscribe("t", "sub1",
                    [&](const std::string&, const Value&) { ++got; });
  broker_.subscribe("t", "sub2",
                    [&](const std::string&, const Value&) { ++got; });
  (void)broker_.publish("pub", "t", Value::object({}));
  clock_.run_all();
  EXPECT_EQ(got, 2);
}

TEST_F(BrokerTest, TwoSubscriptionsOnOneNodeBothFire) {
  int a = 0;
  int b = 0;
  broker_.subscribe("t", "sub1",
                    [&](const std::string&, const Value&) { ++a; });
  broker_.subscribe("t", "sub1",
                    [&](const std::string&, const Value&) { ++b; });
  (void)broker_.publish("pub", "t", Value::object({}));
  clock_.run_all();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST_F(BrokerTest, NoSubscribersIsFine) {
  auto n = broker_.publish("pub", "lonely", Value::object({}));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
  clock_.run_all();
}

TEST_F(BrokerTest, TopicsAreIsolated) {
  int got_a = 0;
  int got_b = 0;
  broker_.subscribe("a", "sub1",
                    [&](const std::string&, const Value&) { ++got_a; });
  broker_.subscribe("b", "sub2",
                    [&](const std::string&, const Value&) { ++got_b; });
  (void)broker_.publish("pub", "a", Value::object({}));
  clock_.run_all();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 0);
}

TEST_F(BrokerTest, PrefixWildcard) {
  std::vector<std::string> topics;
  broker_.subscribe("home/#", "sub1",
                    [&](const std::string& topic, const Value&) {
                      topics.push_back(topic);
                    });
  (void)broker_.publish("pub", "home/motion", Value::object({}));
  (void)broker_.publish("pub", "home/lamp", Value::object({}));
  (void)broker_.publish("pub", "office/motion", Value::object({}));
  clock_.run_all();
  EXPECT_EQ(topics,
            (std::vector<std::string>{"home/motion", "home/lamp"}));
}

TEST_F(BrokerTest, Unsubscribe) {
  int got = 0;
  broker_.subscribe("t", "sub1",
                    [&](const std::string&, const Value&) { ++got; });
  (void)broker_.publish("pub", "t", Value::object({}));
  clock_.run_all();
  broker_.unsubscribe("t", "sub1");
  (void)broker_.publish("pub", "t", Value::object({}));
  clock_.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(BrokerTest, RetainedMessageReplayed) {
  broker_.set_retain(true);
  (void)broker_.publish("pub", "t", Value::object({{"v", 7}}));
  clock_.run_all();
  int got = -1;
  broker_.subscribe("t", "late-sub", [&](const std::string&, const Value& m) {
    got = static_cast<int>(m.get("v")->as_int());
  });
  clock_.run_all();
  EXPECT_EQ(got, 7);
}

TEST_F(BrokerTest, UnknownPublisherRejected) {
  EXPECT_FALSE(broker_.publish("ghost", "t", Value::object({})).ok());
}

TEST_F(BrokerTest, SubscriberChainReaction) {
  // Subscriber publishes in response (the smart-home H pattern).
  int lamp_cmds = 0;
  broker_.subscribe("motion", "house",
                    [&](const std::string&, const Value& m) {
                      if (m.get("triggered")->as_bool()) {
                        (void)broker_.publish("house", "lamp",
                                              Value::object({{"on", true}}));
                      }
                    });
  broker_.subscribe("lamp", "lamp-device",
                    [&](const std::string&, const Value&) { ++lamp_cmds; });
  (void)broker_.publish("pub", "motion",
                        Value::object({{"triggered", true}}));
  clock_.run_all();
  EXPECT_EQ(lamp_cmds, 1);
  (void)broker_.publish("pub", "motion",
                        Value::object({{"triggered", false}}));
  clock_.run_all();
  EXPECT_EQ(lamp_cmds, 1);
}

}  // namespace
}  // namespace knactor::net
