#include "core/bridge.h"

#include <gtest/gtest.h>

#include "core/cast.h"
#include "core/knactor.h"

namespace knactor::core {
namespace {

using common::Result;
using common::Value;

class BridgeTest : public ::testing::Test {
 protected:
  BridgeTest() : net_(clock_), de_(clock_, de::ObjectDeProfile::instant()) {
    net_.set_default_latency(sim::LatencyModel::constant_ms(0.5));
    store_ = &de_.create_store("knactor-echo");

    net::MessageDescriptor req;
    req.full_name = "t.EchoRequest";
    req.fields = {{1, "text", net::FieldType::kString}};
    EXPECT_TRUE(pool_.add(req).ok());
    net::MessageDescriptor resp;
    resp.full_name = "t.EchoResponse";
    resp.fields = {{1, "text", net::FieldType::kString}};
    EXPECT_TRUE(pool_.add(resp).ok());

    service_.name = "t.Echo";
    service_.methods = {{"Echo", "t.EchoRequest", "t.EchoResponse"}};
  }

  sim::VirtualClock clock_;
  net::SimNetwork net_;
  de::ObjectDe de_;
  de::ObjectStore* store_ = nullptr;
  net::SchemaPool pool_;
  net::RpcRegistry registry_;
  net::ServiceDescriptor service_;
};

/// A data-centric "service": watches its store for bridged requests and
/// answers by patching the response field — it has no RPC code at all.
void install_echo_reconciler(de::ObjectStore& store) {
  store.watch("knactor:echo", "rpc/", [&store](const de::WatchEvent& event) {
    if (event.type == de::WatchEventType::kDeleted || !event.object.data) {
      return;
    }
    if (event.object.data->get("response") != nullptr) return;
    const Value* text = event.object.data->get("text");
    if (text == nullptr) return;
    Value response = Value::object();
    response.set("text", Value("echo: " + text->as_string()));
    Value patch = Value::object();
    patch.set("response", std::move(response));
    store.patch("knactor:echo", event.object.key, std::move(patch),
                [](Result<std::uint64_t>) {});
  });
}

TEST_F(BridgeTest, IngressExposesStoreAsRpcService) {
  RpcIngressBridge bridge(net_, "bridge-node", pool_, *store_);
  ASSERT_TRUE(bridge.expose(service_, {{"Echo", {}}}, registry_).ok());
  install_echo_reconciler(*store_);

  net::RpcChannel client(net_, "legacy-client", registry_, pool_);
  auto resp = client.call_sync(service_, "Echo",
                               Value::object({{"text", "hello"}}));
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp.value().get("text")->as_string(), "echo: hello");
  EXPECT_EQ(bridge.calls_bridged(), 1u);
  // The request object was cleaned up after the reply.
  clock_.run_all();
  EXPECT_TRUE(store_->keys().empty());
}

TEST_F(BridgeTest, IngressConcurrentCallsIsolated) {
  RpcIngressBridge bridge(net_, "bridge-node", pool_, *store_);
  ASSERT_TRUE(bridge.expose(service_, {{"Echo", {}}}, registry_).ok());
  install_echo_reconciler(*store_);

  net::RpcChannel client(net_, "legacy-client", registry_, pool_);
  std::vector<std::string> got;
  for (int i = 0; i < 3; ++i) {
    client.call(service_, "Echo",
                Value::object({{"text", "m" + std::to_string(i)}}),
                [&got](Result<Value> r) {
                  ASSERT_TRUE(r.ok());
                  got.push_back(r.value().get("text")->as_string());
                });
  }
  clock_.run_all();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "echo: m0");
  EXPECT_EQ(got[2], "echo: m2");
}

TEST_F(BridgeTest, IngressTimesOutWhenServiceSilent) {
  RpcIngressBridge bridge(net_, "bridge-node", pool_, *store_);
  RpcIngressBridge::MethodBinding binding;
  binding.timeout = sim::from_ms(20.0);
  ASSERT_TRUE(bridge.expose(service_, {{"Echo", binding}}, registry_).ok());
  // No reconciler installed: nobody answers.
  net::RpcChannel client(net_, "legacy-client", registry_, pool_);
  auto resp = client.call_sync(service_, "Echo",
                               Value::object({{"text", "x"}}));
  ASSERT_FALSE(resp.ok());
  // The RPC layer surfaces remote handler errors as Internal with the
  // original error stringized into the message.
  EXPECT_NE(resp.error().message.find("did not respond"), std::string::npos);
}

TEST_F(BridgeTest, IngressRejectsUnboundMethods) {
  RpcIngressBridge bridge(net_, "bridge-node", pool_, *store_);
  EXPECT_FALSE(bridge.expose(service_, {}, registry_).ok());
}

TEST_F(BridgeTest, EgressIssuesRpcFromStateWrites) {
  // A legacy RPC server.
  net::RpcServer legacy(net_, "legacy-server", pool_);
  ASSERT_TRUE(legacy.add_service(service_, registry_).ok());
  ASSERT_TRUE(legacy
                  .add_handler("t.Echo", "Echo",
                               [](const Value& req,
                                  net::RpcServer::Respond respond) {
                                 Value resp = Value::object();
                                 resp.set("text",
                                          Value("legacy: " +
                                                req.get("text")->as_string()));
                                 respond(std::move(resp));
                               })
                  .ok());

  RpcEgressBridge::Options options;
  options.method = "Echo";
  RpcEgressBridge bridge(net_, "egress-node", registry_, pool_, *store_,
                         service_, options);
  ASSERT_TRUE(bridge.start().ok());

  // The data-centric side just writes a request object into its store.
  (void)store_->put_sync("knactor:echo", "egress/1",
                         Value::object({{"text", "from-state"}}));
  clock_.run_all();
  const de::StateObject* obj = store_->peek("egress/1");
  ASSERT_NE(obj, nullptr);
  const Value* response = obj->data->get("response");
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->get("text")->as_string(), "legacy: from-state");
  EXPECT_EQ(bridge.calls_issued(), 1u);
}

TEST_F(BridgeTest, EgressRecordsFailures) {
  // No legacy server registered: calls fail; the error lands in state.
  RpcEgressBridge::Options options;
  options.method = "Echo";
  RpcEgressBridge bridge(net_, "egress-node", registry_, pool_, *store_,
                         service_, options);
  ASSERT_TRUE(bridge.start().ok());
  (void)store_->put_sync("knactor:echo", "egress/1",
                         Value::object({{"text", "x"}}));
  clock_.run_all();
  const de::StateObject* obj = store_->peek("egress/1");
  ASSERT_NE(obj, nullptr);
  EXPECT_NE(obj->data->get("bridge_error"), nullptr);
  // The failure does not retrigger an infinite call loop.
  EXPECT_EQ(bridge.calls_issued(), 1u);
}

TEST_F(BridgeTest, EgressStopsCleanly) {
  RpcEgressBridge::Options options;
  options.method = "Echo";
  RpcEgressBridge bridge(net_, "egress-node", registry_, pool_, *store_,
                         service_, options);
  ASSERT_TRUE(bridge.start().ok());
  bridge.stop();
  (void)store_->put_sync("knactor:echo", "egress/1",
                         Value::object({{"text", "x"}}));
  clock_.run_all();
  EXPECT_EQ(bridge.calls_issued(), 0u);
}

TEST_F(BridgeTest, EndToEndMigrationPath) {
  // Legacy client -> ingress bridge -> store <- Cast integrator fills the
  // response from another store: a legacy API served entirely by
  // data-centric composition.
  de::ObjectStore& answers = de_.create_store("knactor-answers");
  (void)answers.put_sync("svc", "state",
                         Value::object({{"greeting", "bridged world"}}));

  RpcIngressBridge bridge(net_, "bridge-node", pool_, *store_);
  ASSERT_TRUE(bridge.expose(service_, {{"Echo", {}}}, registry_).ok());

  // The integrator (not a reconciler) answers: response = {"text": A.greeting}.
  auto dxg = core::Dxg::parse(
      "Input:\n  E: knactor-echo\n  A: knactor-answers\nDXG:\n"
      "  E.rpc/1:\n"
      "    response: '{\"text\": A.greeting}'\n");
  ASSERT_TRUE(dxg.ok()) << dxg.error().to_string();
  CastIntegrator cast("answerer", de_, dxg.take(),
                      {{"E", store_}, {"A", &answers}});
  ASSERT_TRUE(cast.start().ok());

  net::RpcChannel client(net_, "legacy-client", registry_, pool_);
  auto resp = client.call_sync(service_, "Echo",
                               Value::object({{"text", "anyone?"}}));
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp.value().get("text")->as_string(), "bridged world");
}

}  // namespace
}  // namespace knactor::core
