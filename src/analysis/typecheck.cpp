#include "analysis/typecheck.h"

#include <algorithm>
#include <utility>

#include "expr/eval.h"

namespace knactor::analysis {

namespace {

const char* kind_name(TypeKind k) {
  switch (k) {
    case TypeKind::kAny: return "any";
    case TypeKind::kNull: return "null";
    case TypeKind::kBool: return "bool";
    case TypeKind::kInt: return "int";
    case TypeKind::kNumber: return "number";
    case TypeKind::kString: return "string";
    case TypeKind::kList: return "list";
    case TypeKind::kObject: return "object";
  }
  return "?";
}

Type elem_of(const Type& list) {
  return list.elem != nullptr ? *list.elem : Type::any();
}

/// Joins two types to their least common description (for ternaries,
/// and/or chains, and mixed list literals).
Type join(const Type& a, const Type& b) {
  if (a.is_any() || b.is_any()) return Type::any();
  if (a.kind == TypeKind::kNull) return b;
  if (b.kind == TypeKind::kNull) return a;
  if (a.kind == b.kind) {
    if (a.kind == TypeKind::kList) {
      Type ae = elem_of(a);
      Type be = elem_of(b);
      if (ae.is_any() || be.is_any()) return Type::of(TypeKind::kList);
      return Type::list_of(join(ae, be));
    }
    return a;
  }
  if (a.is_numeric() && b.is_numeric()) return Type::of(TypeKind::kNumber);
  return Type::any();
}

}  // namespace

std::string type_to_string(const Type& t) {
  if (t.kind == TypeKind::kList && t.elem != nullptr &&
      !t.elem->is_any()) {
    return "list(" + type_to_string(*t.elem) + ")";
  }
  return kind_name(t.kind);
}

Type type_from_decl(std::string_view decl) {
  if (decl == "string") return Type::of(TypeKind::kString);
  if (decl == "number") return Type::of(TypeKind::kNumber);
  if (decl == "int") return Type::of(TypeKind::kInt);
  if (decl == "bool") return Type::of(TypeKind::kBool);
  if (decl == "object") return Type::of(TypeKind::kObject);
  if (decl == "list") return Type::of(TypeKind::kList);
  return Type::any();
}

bool assignable(const Type& expected, const Type& actual) {
  if (expected.is_any() || actual.is_any()) return true;
  if (actual.kind == TypeKind::kNull) return true;  // "not ready" marker
  switch (expected.kind) {
    case TypeKind::kList: {
      if (actual.kind != TypeKind::kList) return false;
      Type ee = elem_of(expected);
      Type ae = elem_of(actual);
      return ee.is_any() || ae.is_any() || assignable(ee, ae);
    }
    case TypeKind::kObject:
      // Runtime de::type_matches lets array values satisfy `object` decls.
      return actual.kind == TypeKind::kObject || actual.kind == TypeKind::kList;
    case TypeKind::kNumber:
      return actual.is_numeric();
    case TypeKind::kInt:
      return actual.kind == TypeKind::kInt;
    case TypeKind::kString:
      return actual.kind == TypeKind::kString;
    case TypeKind::kBool:
      return actual.kind == TypeKind::kBool;
    case TypeKind::kAny:
    case TypeKind::kNull:
      return true;
  }
  return true;
}

RefInfo resolve_schema_ref(const de::StoreSchema& schema,
                           const std::vector<std::string>& segments) {
  RefInfo info;
  info.store = schema.id;
  if (segments.empty()) {
    info.type = Type::of(TypeKind::kObject);
    return info;
  }
  // Descend from a field decl through any remaining path segments.
  auto descend = [&](const de::SchemaField& field,
                     std::size_t next) -> RefInfo {
    RefInfo out;
    out.store = schema.id;
    out.field = field.name;
    Type t = type_from_decl(field.type);
    for (std::size_t i = next; i < segments.size(); ++i) {
      if (t.is_any() || t.kind == TypeKind::kObject) {
        t = Type::any();  // shape unknown past a declared object/any
        continue;
      }
      out.error = "cannot access '." + segments[i] + "' of " +
                  type_to_string(t) + " field '" + field.name + "' in " +
                  schema.id;
      out.type = Type::any();
      return out;
    }
    out.type = t;
    return out;
  };
  if (const de::SchemaField* f = schema.field(segments[0])) {
    return descend(*f, 1);
  }
  if (segments.size() >= 2) {
    if (const de::SchemaField* f = schema.field(segments[1])) {
      // Object-key form: segments[0] is a runtime object key.
      return descend(*f, 2);
    }
    info.error = "field '" + segments[1] + "' not in schema " + schema.id;
    info.type = Type::any();
    return info;
  }
  // A single unknown segment reads a whole state object by key.
  info.type = Type::of(TypeKind::kObject);
  return info;
}

SchemaRefResolver::SchemaRefResolver(
    const std::map<std::string, std::string>& inputs,
    const de::SchemaRegistry* schemas, std::string target_alias)
    : inputs_(inputs), schemas_(schemas),
      target_alias_(std::move(target_alias)) {}

RefInfo SchemaRefResolver::resolve(
    const std::vector<std::string>& segments) const {
  RefInfo info;
  if (segments.empty()) return info;
  std::string root = segments[0];
  std::vector<std::string> rest(segments.begin() + 1, segments.end());
  if (root == "it") {
    // Fan-out key binding: always a string store key.
    info.type = Type::of(TypeKind::kString);
    return info;
  }
  if (root == "this") root = target_alias_;
  auto it = inputs_.find(root);
  if (it == inputs_.end()) {
    // Unresolved alias — the graph pass (KN001) already reports it.
    return info;
  }
  info.store = it->second;
  const de::StoreSchema* schema =
      schemas_ != nullptr ? schemas_->find(it->second) : nullptr;
  if (schema == nullptr) {
    // No schema registered: typed as any (KN007 warns elsewhere). Still
    // record the top-level field for the RBAC pre-flight.
    if (rest.size() >= 2) info.field = rest[1];
    return info;
  }
  if (segments[0] == "this" && !rest.empty()) {
    // `this.x` addresses the target object directly: x must be a field
    // (no object-key indirection, unlike alias-rooted refs).
    if (schema->field(rest[0]) != nullptr) {
      return resolve_schema_ref(*schema, rest);
    }
    RefInfo out;
    out.store = schema->id;
    out.error = "field '" + rest[0] + "' not in schema " + schema->id;
    out.type = Type::any();
    return out;
  }
  return resolve_schema_ref(*schema, rest);
}

RefInfo FieldMapResolver::resolve(
    const std::vector<std::string>& segments) const {
  RefInfo info;
  if (segments.empty()) return info;
  auto it = fields_.find(segments[0]);
  if (it == fields_.end()) {
    info.error = "field '" + segments[0] + "' is not in the record at this "
                 "pipeline stage";
    info.type = Type::any();
    return info;
  }
  info.field = segments[0];
  Type t = it->second;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (t.is_any() || t.kind == TypeKind::kObject) {
      t = Type::any();
      continue;
    }
    info.error = "cannot access '." + segments[i] + "' of " +
                 type_to_string(t) + " field '" + segments[0] + "'";
    info.type = Type::any();
    return info;
  }
  info.type = t;
  return info;
}

// ---------------------------------------------------------------------------
// Builtin function signatures (mirrors expr/builtins.cpp).

namespace {

enum class ArgClass { kAny, kNumber, kString, kList, kNumberList, kObject };

struct BuiltinSig {
  const char* name;
  int min_args;
  int max_args;  // -1 = variadic
  TypeKind result;
  /// Per-position argument classes (missing positions = kAny).
  std::vector<ArgClass> params;
  /// For list-returning functions whose element type follows the input's.
  bool elem_follows_arg0 = false;
};

const std::vector<BuiltinSig>& builtin_sigs() {
  static const std::vector<BuiltinSig> kSigs = {
      {"currency_convert", 3, 3, TypeKind::kNumber,
       {ArgClass::kNumber, ArgClass::kString, ArgClass::kString}},
      {"len", 1, 1, TypeKind::kInt, {ArgClass::kAny}},
      {"str", 1, 1, TypeKind::kString, {}},
      {"int", 1, 1, TypeKind::kInt, {}},
      {"float", 1, 1, TypeKind::kNumber, {}},
      {"round", 1, 2, TypeKind::kNumber, {ArgClass::kNumber}},
      {"abs", 1, 1, TypeKind::kNumber, {ArgClass::kNumber}},
      {"sum", 1, 1, TypeKind::kNumber, {ArgClass::kNumberList}},
      {"min", 1, 1, TypeKind::kNumber, {ArgClass::kNumberList}},
      {"max", 1, 1, TypeKind::kNumber, {ArgClass::kNumberList}},
      {"avg", 1, 1, TypeKind::kNumber, {ArgClass::kNumberList}},
      {"upper", 1, 1, TypeKind::kString, {ArgClass::kString}},
      {"lower", 1, 1, TypeKind::kString, {ArgClass::kString}},
      {"concat", 0, -1, TypeKind::kString, {}},
      {"contains", 2, 2, TypeKind::kBool, {}},
      {"keys", 1, 1, TypeKind::kList, {ArgClass::kObject}},
      {"values", 1, 1, TypeKind::kList, {ArgClass::kObject}},
      {"get", 2, 3, TypeKind::kAny, {ArgClass::kObject, ArgClass::kString}},
      {"unique", 1, 1, TypeKind::kList, {ArgClass::kList}, true},
      {"sorted", 1, 1, TypeKind::kList, {ArgClass::kList}, true},
      {"split", 2, 2, TypeKind::kList, {ArgClass::kString, ArgClass::kString}},
      {"join", 2, 2, TypeKind::kString, {ArgClass::kList, ArgClass::kString}},
      {"replace", 3, 3, TypeKind::kString,
       {ArgClass::kString, ArgClass::kString, ArgClass::kString}},
      {"trim", 1, 1, TypeKind::kString, {ArgClass::kString}},
      {"startswith", 2, 2, TypeKind::kBool,
       {ArgClass::kString, ArgClass::kString}},
      {"endswith", 2, 2, TypeKind::kBool,
       {ArgClass::kString, ArgClass::kString}},
  };
  return kSigs;
}

const BuiltinSig* find_sig(const std::string& name) {
  for (const auto& sig : builtin_sigs()) {
    if (name == sig.name) return &sig;
  }
  return nullptr;
}

bool arg_matches(ArgClass cls, const Type& t) {
  if (t.is_any() || t.kind == TypeKind::kNull) return true;
  switch (cls) {
    case ArgClass::kAny:
      return true;
    case ArgClass::kNumber:
      return t.is_numeric();
    case ArgClass::kString:
      return t.kind == TypeKind::kString;
    case ArgClass::kList:
      return t.kind == TypeKind::kList;
    case ArgClass::kNumberList:
      return t.kind == TypeKind::kList &&
             (t.elem == nullptr || t.elem->is_any() || t.elem->is_numeric());
    case ArgClass::kObject:
      return t.kind == TypeKind::kObject;
  }
  return true;
}

const char* arg_class_name(ArgClass cls) {
  switch (cls) {
    case ArgClass::kAny: return "any";
    case ArgClass::kNumber: return "number";
    case ArgClass::kString: return "string";
    case ArgClass::kList: return "list";
    case ArgClass::kNumberList: return "list of numbers";
    case ArgClass::kObject: return "object";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// ExprTypeChecker

ExprTypeChecker::ExprTypeChecker(const RefResolver& resolver, SourceLoc base,
                                 std::string context,
                                 std::vector<Diagnostic>& out,
                                 ExprCheckOptions options)
    : resolver_(resolver), base_(std::move(base)),
      context_(std::move(context)), out_(out), options_(std::move(options)) {}

SourceLoc ExprTypeChecker::loc_of(const expr::Node& node) const {
  SourceLoc loc = base_;
  if (loc.line > 0) {
    // Expression text is embedded at the anchor (its YAML key); positions
    // inside the expression offset line-wise from it. Columns on the first
    // expression line stay anchored at the key (the exact value start
    // within the line is not tracked through YAML scalar folding).
    loc.line += node.line - 1;
    if (node.line > 1) loc.col = node.col;
  }
  return loc;
}

void ExprTypeChecker::report(const std::string& code, const expr::Node& node,
                             const std::string& message,
                             const std::string& hint) {
  out_.push_back(
      make_diag(code, loc_of(node), context_ + ": " + message, hint));
}

Type ExprTypeChecker::member_type(const Type& base, const std::string& member,
                                  const expr::Node& node) {
  if (base.is_any() || base.kind == TypeKind::kObject ||
      base.kind == TypeKind::kNull) {
    return Type::any();
  }
  report(options_.code_operand, node,
         "cannot access '." + member + "' of " + type_to_string(base));
  return Type::any();
}

Type ExprTypeChecker::infer_name_or_path(const expr::Node& node) {
  // Flatten a Name / Attribute chain into root-first segments.
  std::vector<std::string> segments;
  const expr::Node* cur = &node;
  while (cur->kind == expr::NodeKind::kAttribute) {
    segments.push_back(cur->name);
    cur = cur->a.get();
  }
  if (cur->kind != expr::NodeKind::kName) {
    // Attribute access on a computed base: infer the base, then apply the
    // trailing members generically.
    Type t = infer(*cur);
    for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
      t = member_type(t, *it, node);
    }
    return t;
  }
  segments.push_back(cur->name);
  std::reverse(segments.begin(), segments.end());

  // Comprehension loop variables shadow data references.
  auto local = locals_.find(segments[0]);
  if (local != locals_.end()) {
    Type t = local->second;
    for (std::size_t i = 1; i < segments.size(); ++i) {
      t = member_type(t, segments[i], node);
    }
    return t;
  }

  RefInfo info = resolver_.resolve(segments);
  if (!info.error.empty()) {
    std::string path = segments[0];
    for (std::size_t i = 1; i < segments.size(); ++i) path += "." + segments[i];
    report(options_.code_unknown_ref, node,
           "reference '" + path + "': " + info.error);
  }
  return info.type;
}

Type ExprTypeChecker::infer_call(const expr::Node& node) {
  std::vector<Type> arg_types;
  arg_types.reserve(node.args.size());
  for (const auto& arg : node.args) arg_types.push_back(infer(*arg));

  const BuiltinSig* sig = find_sig(node.name);
  if (sig == nullptr) {
    // A builtin registered at runtime but missing from the signature table
    // is typed as any; a name unknown to both is a hard error.
    if (expr::FunctionRegistry::builtins().find(node.name) == nullptr) {
      report("KN103", node, "unknown function '" + node.name + "()'");
    }
    return Type::any();
  }
  auto n = static_cast<int>(node.args.size());
  if (n < sig->min_args || (sig->max_args >= 0 && n > sig->max_args)) {
    std::string want =
        sig->max_args < 0
            ? "at least " + std::to_string(sig->min_args)
            : sig->min_args == sig->max_args
                  ? std::to_string(sig->min_args)
                  : std::to_string(sig->min_args) + ".." +
                        std::to_string(sig->max_args);
    report("KN104", node,
           node.name + "() takes " + want + " argument(s), got " +
               std::to_string(n));
    return Type::of(sig->result);
  }
  for (std::size_t i = 0; i < arg_types.size() && i < sig->params.size();
       ++i) {
    if (!arg_matches(sig->params[i], arg_types[i])) {
      report(options_.code_operand, *node.args[i],
             node.name + "() argument " + std::to_string(i + 1) + " is " +
                 type_to_string(arg_types[i]) + ", needs " +
                 arg_class_name(sig->params[i]));
    }
  }
  Type result = Type::of(sig->result);
  if (sig->elem_follows_arg0 && !arg_types.empty() &&
      arg_types[0].kind == TypeKind::kList && arg_types[0].elem != nullptr) {
    result.elem = arg_types[0].elem;
  }
  if (node.name == "keys") return Type::list_of(Type::of(TypeKind::kString));
  return result;
}

Type ExprTypeChecker::infer_binary(const expr::Node& node) {
  const std::string& op = node.op;
  Type lhs = infer(*node.a);
  Type rhs = infer(*node.b);
  auto operand_error = [&](const expr::Node& operand, const Type& got,
                           const std::string& need) {
    report(options_.code_operand, operand,
           "operator '" + op + "': operand is " + type_to_string(got) +
               ", needs " + need);
  };

  if (op == "and" || op == "or") return join(lhs, rhs);
  if (op == "==" || op == "!=") return Type::of(TypeKind::kBool);
  if (op == "<" || op == "<=" || op == ">" || op == ">=") {
    bool ok = (lhs.is_any() || lhs.is_numeric() ||
               lhs.kind == TypeKind::kString || lhs.kind == TypeKind::kNull) &&
              (rhs.is_any() || rhs.is_numeric() ||
               rhs.kind == TypeKind::kString || rhs.kind == TypeKind::kNull);
    // Both sides must also agree (number vs string is unorderable).
    if (ok && !lhs.is_any() && !rhs.is_any() &&
        lhs.kind != TypeKind::kNull && rhs.kind != TypeKind::kNull &&
        (lhs.is_numeric() != rhs.is_numeric())) {
      ok = false;
    }
    if (!ok) {
      operand_error(*node.a, lhs, "two numbers or two strings");
    }
    return Type::of(TypeKind::kBool);
  }
  if (op == "in" || op == "not in") {
    if (!rhs.is_any() && rhs.kind != TypeKind::kList &&
        rhs.kind != TypeKind::kString && rhs.kind != TypeKind::kObject &&
        rhs.kind != TypeKind::kNull) {
      operand_error(*node.b, rhs, "a list, string, or object");
    } else if (rhs.kind == TypeKind::kList && rhs.elem != nullptr &&
               !rhs.elem->is_any() && !lhs.is_any() &&
               lhs.kind != TypeKind::kNull &&
               !assignable(*rhs.elem, lhs) && !assignable(lhs, *rhs.elem)) {
      report(options_.code_operand, *node.a,
             "operator '" + op + "': " + type_to_string(lhs) +
                 " can never be an element of " + type_to_string(rhs));
    }
    return Type::of(TypeKind::kBool);
  }
  if (op == "+") {
    if (lhs.is_any() || rhs.is_any() || lhs.kind == TypeKind::kNull ||
        rhs.kind == TypeKind::kNull) {
      return Type::any();
    }
    if (lhs.is_numeric() && rhs.is_numeric()) {
      return lhs.kind == TypeKind::kInt && rhs.kind == TypeKind::kInt
                 ? Type::of(TypeKind::kInt)
                 : Type::of(TypeKind::kNumber);
    }
    if (lhs.kind == TypeKind::kString && rhs.kind == TypeKind::kString) {
      return Type::of(TypeKind::kString);
    }
    if (lhs.kind == TypeKind::kList && rhs.kind == TypeKind::kList) {
      return join(lhs, rhs);
    }
    operand_error(*node.a, lhs,
                  "matching operands (number+number, string+string, "
                  "list+list)");
    return Type::any();
  }
  // Remaining arithmetic: - * % // **  and true division /.
  bool lhs_ok = lhs.is_any() || lhs.is_numeric() || lhs.kind == TypeKind::kNull;
  bool rhs_ok = rhs.is_any() || rhs.is_numeric() || rhs.kind == TypeKind::kNull;
  if (!lhs_ok) operand_error(*node.a, lhs, "a number");
  if (!rhs_ok) operand_error(*node.b, rhs, "a number");
  if (op == "/" || op == "**") return Type::of(TypeKind::kNumber);
  if (lhs.kind == TypeKind::kInt && rhs.kind == TypeKind::kInt) {
    return Type::of(TypeKind::kInt);
  }
  if (lhs.is_any() || rhs.is_any()) return Type::of(TypeKind::kNumber);
  return Type::of(TypeKind::kNumber);
}

Type ExprTypeChecker::infer(const expr::Node& node) {
  switch (node.kind) {
    case expr::NodeKind::kLiteral: {
      const common::Value& v = node.literal;
      if (v.is_null()) return Type::of(TypeKind::kNull);
      if (v.is_bool()) return Type::of(TypeKind::kBool);
      if (v.is_int()) return Type::of(TypeKind::kInt);
      if (v.is_double()) return Type::of(TypeKind::kNumber);
      if (v.is_string()) return Type::of(TypeKind::kString);
      return Type::any();
    }
    case expr::NodeKind::kName:
    case expr::NodeKind::kAttribute:
      return infer_name_or_path(node);
    case expr::NodeKind::kIndex: {
      Type base = infer(*node.a);
      Type sub = infer(*node.b);
      if (base.kind == TypeKind::kList) {
        if (!sub.is_any() && !sub.is_numeric() &&
            sub.kind != TypeKind::kNull) {
          report(options_.code_operand, *node.b,
                 "list index is " + type_to_string(sub) + ", needs int");
        }
        return elem_of(base);
      }
      if (base.kind == TypeKind::kObject || base.is_any() ||
          base.kind == TypeKind::kNull) {
        return Type::any();
      }
      if (base.kind == TypeKind::kString) return Type::of(TypeKind::kString);
      report(options_.code_operand, node,
             "cannot index into " + type_to_string(base));
      return Type::any();
    }
    case expr::NodeKind::kCall:
      return infer_call(node);
    case expr::NodeKind::kUnary: {
      Type operand = infer(*node.a);
      if (node.op == "not") return Type::of(TypeKind::kBool);
      if (!operand.is_any() && !operand.is_numeric() &&
          operand.kind != TypeKind::kNull) {
        report(options_.code_operand, *node.a,
               "unary '" + node.op + "' operand is " +
                   type_to_string(operand) + ", needs a number");
        return Type::of(TypeKind::kNumber);
      }
      return operand.is_numeric() ? operand : Type::of(TypeKind::kNumber);
    }
    case expr::NodeKind::kBinary:
      return infer_binary(node);
    case expr::NodeKind::kTernary: {
      infer(*node.a);  // condition: any truthy value allowed
      Type t = infer(*node.b);
      Type f = infer(*node.c);
      return join(t, f);
    }
    case expr::NodeKind::kList: {
      Type elem;
      bool first = true;
      for (const auto& e : node.args) {
        Type t = infer(*e);
        elem = first ? t : join(elem, t);
        first = false;
      }
      if (first || elem.is_any()) return Type::of(TypeKind::kList);
      return Type::list_of(elem);
    }
    case expr::NodeKind::kDict: {
      for (const auto& v : node.args) infer(*v);
      return Type::of(TypeKind::kObject);
    }
    case expr::NodeKind::kListComp: {
      Type iter = infer(*node.a);
      Type bound = Type::any();
      if (iter.kind == TypeKind::kList) {
        bound = elem_of(iter);
      } else if (!iter.is_any() && iter.kind != TypeKind::kObject &&
                 iter.kind != TypeKind::kNull) {
        report("KN107", *node.a,
               "comprehension iterates over " + type_to_string(iter) +
                   ", needs a list");
      }
      // Bind the loop variable (restoring any shadowed outer binding).
      auto prev = locals_.find(node.name);
      bool had_prev = prev != locals_.end();
      Type saved = had_prev ? prev->second : Type();
      locals_[node.name] = bound;
      if (node.c != nullptr) infer(*node.c);
      Type body = infer(*node.b);
      if (had_prev) {
        locals_[node.name] = saved;
      } else {
        locals_.erase(node.name);
      }
      return body.is_any() ? Type::of(TypeKind::kList) : Type::list_of(body);
    }
  }
  return Type::any();
}

void ExprTypeChecker::check_against(const expr::Node& node,
                                    const Type& expected,
                                    const std::string& target_desc) {
  if (expected.is_any()) {
    infer(node);
    return;
  }
  // Descend into ternary branches and list literals so the diagnostic
  // lands on the branch/element that actually conflicts.
  if (node.kind == expr::NodeKind::kTernary) {
    infer(*node.a);
    check_against(*node.b, expected, target_desc);
    check_against(*node.c, expected, target_desc);
    return;
  }
  if (node.kind == expr::NodeKind::kList &&
      expected.kind == TypeKind::kList && expected.elem != nullptr &&
      !expected.elem->is_any()) {
    for (const auto& e : node.args) {
      check_against(*e, *expected.elem, target_desc + " element");
    }
    return;
  }
  Type actual = infer(node);
  if (assignable(expected, actual)) return;
  bool exp_list = expected.kind == TypeKind::kList;
  bool act_list = actual.kind == TypeKind::kList;
  if (exp_list != act_list) {
    report("KN102", node,
           target_desc + " expects " + type_to_string(expected) +
               " but the expression yields " + type_to_string(actual),
           exp_list ? "wrap the value in a list, or map over a source list"
                    : "reduce the list (e.g. sum(), join(), or an index)");
    return;
  }
  report("KN101", node,
         target_desc + " expects " + type_to_string(expected) +
             " but the expression yields " + type_to_string(actual));
}

void typecheck_dxg(const core::Dxg& dxg, const de::SchemaRegistry& schemas,
                   const std::vector<SourceLoc>& mapping_locs,
                   std::vector<Diagnostic>& out) {
  const auto& mappings = dxg.mappings();
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    const core::DxgMapping& m = mappings[i];
    if (m.compiled == nullptr) continue;
    SourceLoc loc = i < mapping_locs.size() ? mapping_locs[i] : SourceLoc{};
    SchemaRefResolver resolver(dxg.inputs(), &schemas, m.target_alias);
    ExprTypeChecker checker(resolver, loc, "mapping " + m.target_path(), out);
    // Expected type: the declared type of the target field, when known.
    Type expected = Type::any();
    auto input = dxg.inputs().find(m.target_alias);
    if (input != dxg.inputs().end()) {
      if (const de::StoreSchema* schema = schemas.find(input->second)) {
        if (const de::SchemaField* field = schema->field(m.field)) {
          expected = type_from_decl(field->type);
        }
      }
    }
    checker.check_against(*m.compiled, expected,
                          "target field '" + m.field + "'");
  }
}

}  // namespace knactor::analysis
