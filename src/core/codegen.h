// Code generation (§4: the prototype ships "code generators" alongside the
// library and CLI). From a data-store schema (Fig. 5 YAML form) we emit:
//
//   * a C++ reconciler skeleton wired to the framework (the service
//     developer fills in business logic per field),
//   * a typed state-accessor header (get/set per schema field, so service
//     code touches state through named, type-checked helpers),
//   * a DXG stub listing the store's external fields for the integrator
//     author to map.
#pragma once

#include <string>

#include "common/result.h"
#include "de/schema.h"

namespace knactor::core {

struct CodegenOptions {
  /// C++ namespace for generated code.
  std::string cpp_namespace = "generated";
  /// Class-name base; derived from the schema id's last segment if empty.
  std::string class_name;
};

/// Emits a Reconciler subclass skeleton for the schema's knactor.
common::Result<std::string> generate_reconciler(const de::StoreSchema& schema,
                                                const CodegenOptions& options);

/// Emits a typed accessor struct wrapping a state object.
common::Result<std::string> generate_accessors(const de::StoreSchema& schema,
                                               const CodegenOptions& options);

/// Emits a DXG fragment with one placeholder mapping per external field.
common::Result<std::string> generate_dxg_stub(const de::StoreSchema& schema);

}  // namespace knactor::core
