// Cast: the built-in integrator for Object data exchanges (§3.2). Executes
// a data exchange graph (DXG) by watching the referenced stores, snapshot-
// reading source state, evaluating mapping expressions, and patching target
// objects' fields. Converges in passes: a mapping whose dependencies are
// not yet present evaluates to null and is skipped until a later pass.
//
// Modes:
//   * watch-driven (default): a pass runs after any referenced store
//     changes (client reads/writes pay DE round-trip latency);
//   * polling: a pass every `poll_interval`;
//   * push-down (§3.3): the DXG pass is compiled into a UDF registered on
//     the DE with write triggers on the source stores — reads/writes then
//     run at engine latency inside the DE (Table 2 "K-redis-udf").
//
// Run-time reconfiguration (§3.3): `reconfigure` atomically swaps the DXG.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/causality.h"
#include "core/dxg.h"
#include "core/integrator.h"
#include "core/trace.h"
#include "de/object.h"
#include "expr/eval.h"
#include "sim/latency.h"
#include "sim/retry.h"

namespace knactor::core {

struct CastStats {
  std::uint64_t passes = 0;
  std::uint64_t fields_written = 0;
  std::uint64_t fields_skipped_not_ready = 0;
  std::uint64_t eval_errors = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t failed_passes = 0;  // snapshot read or write failed
  std::uint64_t retries = 0;        // passes re-run by the retry policy
  std::uint64_t batches_consumed = 0;  // WatchBatch deliveries (batched mode)
  std::uint64_t batched_events = 0;    // events carried by those batches
};

class CastIntegrator : public Integrator {
 public:
  struct Options {
    /// Integrator-side compute cost per pass (the Table 2 "I" column for
    /// non-push-down modes).
    sim::LatencyModel compute = sim::LatencyModel::constant_ms(0.01);
    /// Re-run passes until no field changes, up to this many rounds per
    /// triggering event (dependency chains resolve across rounds).
    int max_rounds_per_event = 8;
    /// Validate DXG against schemas at (re)configuration; reject cycles
    /// and non-external target fields.
    bool strict = false;
    /// Polling instead of watches; 0 = watch-driven.
    sim::SimTime poll_interval = 0;
    /// Commit each pass's writes as one atomic transaction on the DE:
    /// observers never see a partially-applied exchange, and multi-store
    /// writes cost one round trip instead of one per store (§5
    /// transactions).
    bool atomic_writes = false;
    /// Coalesce bursts of watch events: instead of a pass per event, wait
    /// this long after the first event and run one pass for the burst
    /// (trades propagation latency for fewer snapshot/evaluate cycles —
    /// §3.3 "consolidate the state processing logic", applied in time).
    sim::SimTime debounce = 0;
    /// Server-side watch coalescing (tentpole of the hot-path batching
    /// work): when > 0, watches register via ObjectStore::watch_batch with
    /// this window — the DE buffers a burst of commits and delivers one
    /// WatchBatch, and the integrator runs one pass per batch. Unlike
    /// `debounce` (client-side: every event still crosses the wire), the
    /// coalescing happens inside the DE, so one notification is delivered
    /// per window regardless of burst size.
    sim::SimTime batch_window = 0;
    /// Commit each pass's writes through the DE's epoch pipeline
    /// (ObjectStore::put_epoch): the pass's patches are grouped per target
    /// store and committed as one epoch each — one write round trip per
    /// store instead of one per patch, with the commit work running
    /// shard-parallel behind a deterministic merge. Unlike atomic_writes
    /// (which takes precedence when both are set), an epoch is not
    /// all-or-nothing: each patch succeeds or fails individually, exactly
    /// like the per-patch path.
    bool epoch_commit = false;
    /// Exchange-pass retry: when a pass's snapshot read or patch write
    /// fails (e.g. the DE is crashed), re-run the whole pass after backoff.
    /// Passes are idempotent (desired-state patches), so replays are safe.
    /// Disabled by default.
    sim::RetryPolicy retry;
    /// Optional counters sink: failed passes and retries are recorded as
    /// "cast.<name>.failed_passes" / "cast.<name>.retries".
    Metrics* metrics = nullptr;
  };

  /// `stores` binds DXG input aliases to object stores. All stores must
  /// live on `de` (the paper hosts composed stores on a shared exchange).
  CastIntegrator(std::string name, de::ObjectDe& de, Dxg dxg,
                 std::map<std::string, de::ObjectStore*> stores,
                 Options options, const de::SchemaRegistry* schemas = nullptr,
                 Tracer* tracer = nullptr);
  /// Default options.
  CastIntegrator(std::string name, de::ObjectDe& de, Dxg dxg,
                 std::map<std::string, de::ObjectStore*> stores);

  [[nodiscard]] const std::string& name() const override { return name_; }

  common::Status start() override;
  void stop() override;
  [[nodiscard]] bool running() const override { return running_; }

  /// Accepts either a full DXG spec Value ({Input, DXG}) or a YAML string
  /// via reconfigure_yaml. Alias->store bindings are re-resolved from the
  /// current binding map; new aliases must be bound with bind_store first.
  common::Status reconfigure(const common::Value& config) override;
  common::Status reconfigure_yaml(std::string_view yaml_text);

  /// Adds/replaces an alias binding (needed before reconfiguring to a DXG
  /// that references a new store).
  void bind_store(const std::string& alias, de::ObjectStore& store);

  /// Compiles the current DXG into a server-side UDF with triggers on all
  /// read stores (push-down). Requires the DE profile to support UDFs.
  common::Status enable_pushdown();
  void disable_pushdown();
  [[nodiscard]] bool pushdown_enabled() const { return pushdown_; }

  /// Runs one full exchange pass immediately (synchronous; drives the
  /// clock). Returns the number of fields written.
  common::Result<std::size_t> run_pass_sync();

  [[nodiscard]] const CastStats& stats() const { return stats_; }
  [[nodiscard]] const Dxg& dxg() const { return dxg_; }

 private:
  /// Reads a snapshot of every aliased store (client round trips), then
  /// evaluates and writes. Invoked from watch events / polling.
  void run_pass_async(int rounds_left);
  /// Pure evaluation over a snapshot: returns per-target patches.
  /// Exposed to both the client-side pass and the compiled UDF.
  struct PatchSet {
    // (alias, object key) -> fields to patch
    std::vector<std::pair<std::pair<std::string, std::string>, common::Value>>
        patches;
    /// Parallel to `patches` when lineage is enabled (empty otherwise):
    /// the deduplicated set of snapshot records each patch was computed
    /// from, resolved from the contributing mappings' refs.
    std::vector<std::vector<LineageRef>> inputs;
    std::size_t not_ready = 0;
    std::size_t errors = 0;
  };
  /// Per-pass view of the aliased stores: expression environment values
  /// plus the raw object-key lists (fan-out iterates these) and, when
  /// lineage is enabled, the per-key versions the snapshot read.
  struct Snapshot {
    std::map<std::string, common::Value> values;
    std::map<std::string, std::vector<std::string>> keys;
    std::map<std::string, std::map<std::string, std::uint64_t>> versions;
    bool failed = false;  // at least one alias list errored
  };
  PatchSet evaluate(const Snapshot& snapshot);
  /// Resolves a mapping instance's refs against a snapshot into the
  /// (store, key, version, payload) records it read. Conservative: a ref
  /// whose key can't be pinned statically contributes every key of its
  /// alias (lineage completeness beats minimality — the differential test
  /// replays exactly this set).
  void resolve_inputs(const DxgMapping& mapping, const std::string* it_key,
                      const Snapshot& snapshot, std::vector<LineageRef>& out);
  /// Appends one (store, key) snapshot record to `out` (dedup by store+key;
  /// version and payload resolved from the snapshot).
  void add_input(const std::string& alias, const std::string& key,
                 const Snapshot& snapshot, std::vector<LineageRef>& out);
  /// Records one derived-write lineage entry on the DE's provenance ring.
  void record_lineage(const std::string& alias, const std::string& object,
                      std::uint64_t version, std::vector<LineageRef> inputs,
                      const TraceContext& ctx, std::uint64_t span_id);

  /// Builds the expression environment value for one alias from a list of
  /// that store's objects (objects keyed by name; default object's fields
  /// merged at top level).
  static common::Value build_alias_value(
      const std::vector<de::StateObject>& objects);

  void install_watches();
  void remove_watches();
  void schedule_poll();

  std::string name_;
  de::ObjectDe& de_;
  Dxg dxg_;
  std::map<std::string, de::ObjectStore*> stores_;
  Options options_;
  const de::SchemaRegistry* schemas_;
  Tracer* tracer_;
  bool running_ = false;
  bool pushdown_ = false;
  bool pass_in_flight_ = false;
  bool rerun_requested_ = false;
  bool debounce_pending_ = false;
  int pass_attempt_ = 0;  // consecutive failed passes (retry bookkeeping)
  sim::SimTime pass_first_attempt_ = 0;
  std::string udf_name_;
  /// Causal context of the watch event/batch that triggered the pending
  /// pass (Dapper-style propagation): pass spans parent under it and
  /// derived writes inherit its trace id. Zero for the initial pass.
  TraceContext trigger_ctx_;
  std::vector<std::pair<de::ObjectStore*, std::uint64_t>> watches_;
  sim::Rng rng_{0xCA57};
  CastStats stats_;
};

}  // namespace knactor::core
