// Span-based tracing for data exchanges (§5 "observability ... monitoring
// knactor SLOs through distributed tracing"). Because composition is
// explicit in Knactor, every exchange pass and store operation can be
// traced at the framework level without touching service code — this
// module is what the Table 2 bench uses to attribute time to the paper's
// C-I / I / I-S / S stages.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "sim/clock.h"

namespace knactor::core {

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  std::map<std::string, std::string> attributes;

  [[nodiscard]] sim::SimTime duration() const { return end - start; }
};

/// Collects spans. Every accessor is safe to call at any time, including
/// while shard workers are emitting spans: mutations are serialized by a
/// mutex, and `spans()` returns a *snapshot copy* taken under that mutex
/// — never a reference into the live vector. The snapshot is immutable
/// and self-contained; spans opened or finished after the call do not
/// appear in it. (Framework code that wants stable span ordering should
/// still read between barriers, but that is a determinism concern, not a
/// memory-safety one — see docs/OBSERVABILITY.md.)
class Tracer {
 public:
  explicit Tracer(sim::VirtualClock& clock) : clock_(clock) {}

  /// Opens a span; returns its id. Pass parent=0 for a root span.
  std::uint64_t begin(const std::string& name, std::uint64_t parent = 0);
  void annotate(std::uint64_t span_id, const std::string& key,
                const std::string& value);
  void end(std::uint64_t span_id);

  /// Snapshot of all spans recorded so far, in emission order.
  [[nodiscard]] std::vector<Span> spans() const {
    std::lock_guard lock(mutex_);
    return spans_;
  }
  /// All finished spans with the given name.
  [[nodiscard]] std::vector<Span> by_name(const std::string& name) const;
  /// All finished spans carrying attribute `key` == `value` (e.g.
  /// stage="I" for the paper's integrator-compute stage).
  [[nodiscard]] std::vector<Span> by_attribute(const std::string& key,
                                               const std::string& value) const;
  /// Sum of durations of finished spans with the given name.
  [[nodiscard]] sim::SimTime total_duration(const std::string& name) const;
  void clear() {
    std::lock_guard lock(mutex_);
    spans_.clear();
  }

  class SpanBuffer;
  /// Merges a worker-local span buffer: re-stamps every buffered span with
  /// globally sequential ids (preserving the buffer's parent links) and
  /// appends them in buffer order. Callers merge buffers in a
  /// deterministic order (e.g. shard index at an epoch boundary), which
  /// makes the resulting span log identical to a serial emission — same
  /// count, same names, same stage attributes. The buffer is drained.
  void merge(SpanBuffer& buffer);

  /// A worker-local span sink: begin/annotate/end with zero shared-state
  /// contention (no mutex, no shared id counter — ids are local until
  /// merge re-stamps them). Workers emitting spans on the epoch hot path
  /// fill one buffer each; the epoch merge folds them into the Tracer at
  /// the boundary.
  class SpanBuffer {
   public:
    std::uint64_t begin(const std::string& name, sim::SimTime now,
                        std::uint64_t parent = 0) {
      Span span;
      span.id = next_local_id_++;
      span.parent = parent;
      span.name = name;
      span.start = now;
      spans_.push_back(std::move(span));
      return spans_.back().id;
    }
    void annotate(std::uint64_t span_id, const std::string& key,
                  const std::string& value) {
      if (Span* s = find(span_id)) s->attributes[key] = value;
    }
    void end(std::uint64_t span_id, sim::SimTime now) {
      if (Span* s = find(span_id)) s->end = now;
    }
    [[nodiscard]] std::size_t size() const { return spans_.size(); }
    [[nodiscard]] bool empty() const { return spans_.empty(); }

   private:
    friend class Tracer;
    Span* find(std::uint64_t span_id) {
      for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
        if (it->id == span_id) return &*it;
      }
      return nullptr;
    }
    std::vector<Span> spans_;
    std::uint64_t next_local_id_ = 1;
  };

 private:
  sim::VirtualClock& clock_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::uint64_t next_id_ = 1;
};

inline void Tracer::merge(SpanBuffer& buffer) {
  std::lock_guard lock(mutex_);
  // Local id -> global id, so parent links survive the re-stamp.
  std::map<std::uint64_t, std::uint64_t> remap;
  for (Span& span : buffer.spans_) {
    const std::uint64_t global = next_id_++;
    remap[span.id] = global;
    span.id = global;
  }
  for (Span& span : buffer.spans_) {
    if (span.parent == 0) continue;
    // Parent links must reference spans in the same buffer (or 0): local
    // ids only have meaning within their buffer.
    auto it = remap.find(span.parent);
    if (it != remap.end()) span.parent = it->second;
  }
  spans_.insert(spans_.end(),
                std::make_move_iterator(buffer.spans_.begin()),
                std::make_move_iterator(buffer.spans_.end()));
  buffer.spans_.clear();
  buffer.next_local_id_ = 1;
}

/// RAII span: opens on construction, closes when the scope exits — so a
/// span around a multi-exit operation (e.g. persistence snapshot/recovery)
/// always closes, including on early error returns. Null-tracer tolerant:
/// with `tracer == nullptr` every call is a no-op, which lets optional
/// observability sinks stay optional at the call site.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const std::string& name,
             std::uint64_t parent = 0)
      : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->begin(name, parent);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void annotate(const std::string& key, const std::string& value) {
    if (tracer_ != nullptr) tracer_->annotate(id_, key, value);
  }
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Monotonic counters + gauges for framework internals. inc/get/clear are
/// mutex-serialized (safe from shard workers); `all()` returns the map by
/// reference and must only be read between barriers.
class Metrics {
 public:
  void inc(const std::string& name, std::uint64_t delta = 1) {
    std::lock_guard lock(mutex_);
    counters_[name] += delta;
  }
  [[nodiscard]] std::uint64_t get(const std::string& name) const {
    std::lock_guard lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }
  void clear() {
    std::lock_guard lock(mutex_);
    counters_.clear();
  }

  /// A worker-local counter sink: inc() touches no shared state (no mutex
  /// acquisition per bump). Workers on the epoch hot path fill one Delta
  /// each; merge() folds them into the shared counters at the epoch
  /// boundary under a single lock. Counter addition commutes, so any merge
  /// order yields the same totals as serial inc() calls.
  class Delta {
   public:
    void inc(const std::string& name, std::uint64_t delta = 1) {
      counters_[name] += delta;
    }
    [[nodiscard]] bool empty() const { return counters_.empty(); }

   private:
    friend class Metrics;
    std::map<std::string, std::uint64_t> counters_;
  };

  /// Folds a worker-local Delta into the shared counters (one lock for the
  /// whole batch) and drains it.
  void merge(Delta& delta) {
    if (delta.counters_.empty()) return;
    std::lock_guard lock(mutex_);
    for (const auto& [name, value] : delta.counters_) {
      counters_[name] += value;
    }
    delta.counters_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
};

/// Snapshots a batch-size histogram into Metrics counters
/// ("<prefix>.count", "<prefix>.sum", "<prefix>.max", "<prefix>.le_8",
/// ...). Overwrites rather than accumulates, so it is safe to call
/// repeatedly (e.g. per scrape) with a monotonically growing histogram.
inline void export_histogram(Metrics& metrics, const std::string& prefix,
                             const common::SizeHistogram& hist) {
  hist.export_counters(prefix,
                       [&](const std::string& name, std::uint64_t value) {
                         metrics.inc(name, value - metrics.get(name));
                       });
}

}  // namespace knactor::core
