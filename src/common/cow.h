// Copy-on-write value handle for zero-copy batch exchange (§3.3): a batch
// of records travels through the hot path (Log query -> Sync pipeline ->
// Log append, DE watch -> integrator) as shared immutable buffers; the
// buffer is cloned only at the first mutation point, so read-only stages
// (filter, sort, head/tail) and pass-through records move handles instead
// of deep copies.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/value.h"

namespace knactor::common {

/// A Value handle with copy-on-write semantics. Copying a CowValue shares
/// the underlying buffer; `mut()` clones it first if any other handle (or
/// an external SharedValue snapshot) still references it. A mutation after
/// sharing therefore never leaks into other consumers of the same buffer.
class CowValue {
 public:
  /// Null value.
  CowValue() = default;
  /// Borrows an immutable shared snapshot (e.g. a stored record's buffer).
  explicit CowValue(SharedValue v) : borrowed_(std::move(v)) {}
  /// Takes ownership of a freshly built value (no sharing yet).
  explicit CowValue(Value v) : owned_(std::make_shared<Value>(std::move(v))) {}

  /// Read-only view. Never copies.
  [[nodiscard]] const Value& operator*() const { return value(); }
  [[nodiscard]] const Value* operator->() const { return &value(); }
  [[nodiscard]] const Value& value() const {
    if (borrowed_) return *borrowed_;
    if (owned_) return *owned_;
    return null_;
  }

  /// Mutable view; clones the buffer iff it is shared (with another
  /// CowValue or an external SharedValue holder). This is the only
  /// mutation point on the zero-copy path.
  [[nodiscard]] Value& mut() {
    if (owned_ && owned_.use_count() == 1) return *owned_;
    owned_ = std::make_shared<Value>(value());
    borrowed_.reset();
    return *owned_;
  }

  /// Shares the current buffer as an immutable snapshot (zero-copy). A
  /// later mut() on this handle clones first, so the returned snapshot
  /// stays stable.
  [[nodiscard]] SharedValue share() const {
    if (borrowed_) return borrowed_;
    if (owned_) return owned_;
    return std::make_shared<const Value>();
  }

  /// Extracts the value, moving the buffer when this handle owns it
  /// exclusively and deep-copying otherwise.
  [[nodiscard]] Value take() {
    if (owned_ && owned_.use_count() == 1) return std::move(*owned_);
    return value();
  }

  /// True when mut() would have to clone (buffer visible elsewhere).
  [[nodiscard]] bool shared() const {
    if (borrowed_) return true;
    return owned_ && owned_.use_count() > 1;
  }

 private:
  static const Value null_;
  SharedValue borrowed_;          // immutable buffer owned elsewhere
  std::shared_ptr<Value> owned_;  // buffer this handle may mutate when unique
};

inline const Value CowValue::null_{};

}  // namespace knactor::common
