// Chaos differential tests (the Fig. 8 experiment, §3.3): run the retail
// composition under hundreds of seeded fault plans and assert that the
// data-centric pipeline always converges to the fault-free oracle state
// once faults heal — while the API-centric RPC baseline is allowed to
// degrade and needs explicit timeout/retry configuration to survive.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/fleet_telemetry.h"
#include "apps/retail_knactor.h"
#include "apps/retail_rpc.h"
#include "apps/ride_hailing.h"
#include "core/runtime.h"
#include "de/log.h"
#include "net/broker.h"
#include "sim/fault.h"

#include "chaos_harness.h"

namespace knactor {
namespace {

using common::Value;

// ---------------------------------------------------------------------------
// Retail knactor trial
// ---------------------------------------------------------------------------

// The knactor composition exchanges through the Object DE, not the wire, so
// its chaos surface is the crash windows: the DE itself (durable profile,
// WAL recovery) and the three pipeline knactors. The integrator retries
// failed passes; reconcilers are resynced at heal time (the Kubernetes
// re-list pattern) — no other recovery logic exists anywhere.
struct RetailTrialResult {
  bool completed = false;       // order shipped during the chaos run
  bool converged = false;       // post-heal state == oracle
  std::string fingerprint;
  std::string schedule;         // serialized crash/restart fault records
  std::string sub_log;          // filtered-subscription deliveries, in order
  std::uint64_t sub_filtered = 0;  // commits the predicate rejected
  std::uint64_t failed_passes = 0;
  std::uint64_t cast_retries = 0;
};

const std::vector<std::string> kCrashTargets = {"de", "checkout", "payment",
                                                "shipping"};

sim::FaultPlan retail_plan(std::uint64_t seed) {
  sim::FaultPlan::RandomOptions opts;
  opts.horizon = sim::kSecond;
  opts.crash_targets = kCrashTargets;
  opts.max_crashes = 3;
  opts.min_window = 20 * sim::kMillisecond;
  opts.max_window = 250 * sim::kMillisecond;
  return sim::FaultPlan::random(seed, opts);
}

RetailTrialResult run_retail_trial(std::uint64_t seed, bool inject,
                                   sim::SimTime batch_window = 0,
                                   std::size_t shards = 1, int workers = 1,
                                   bool epoch_commit = false,
                                   bool filtered_sub = false) {
  core::Runtime runtime;
  apps::RetailKnactorOptions options;
  options.de_profile = de::ObjectDeProfile::apiserver();  // durable: WAL
  options.shipment_processing = sim::LatencyModel::constant_ms(10.0);
  options.payment_processing = sim::LatencyModel::constant_ms(1.0);
  options.integrator_retry = sim::RetryPolicy::standard(5);
  options.batch_window = batch_window;  // coalesced watch delivery
  options.shards = shards;
  options.workers = workers;
  options.epoch_commit = epoch_commit;  // integrator writes via put_epoch
  auto app = apps::build_retail_knactor_app(runtime, options);

  // Optional filtered subscription riding through the fault corpus: a
  // coalescing content-filtered watch on the checkout store that only
  // matches the terminal "shipped" write. Crash windows roll pending
  // coalesce slots back with the epoch, so the delivery log is part of the
  // deterministic observable surface (compared serial vs sharded below).
  std::string sub_log;
  std::uint64_t sub_id = 0;
  if (filtered_sub) {
    de::SubscriptionSpec spec;
    spec.filter = "status == \"shipped\"";
    spec.qos.window = 10 * sim::kMillisecond;
    auto sub = app.checkout_store->subscribe_batch(
        "knactor:checkout", spec, [&sub_log](const de::WatchBatch& b) {
          sub_log += "[c" + std::to_string(b.commits) + "|";
          for (const auto& e : b.events) {
            sub_log +=
                e.object.key + ":" + std::to_string(e.object.version) + " ";
          }
          sub_log += "] ";
        });
    if (sub.ok()) sub_id = sub.value();
  }

  chaos::ChaosHooks hooks;
  hooks.add(
      "de", [&app]() { app.de->crash(); }, [&app]() { app.de->recover(); });
  for (const char* name : {"checkout", "payment", "shipping"}) {
    core::Knactor* kn = runtime.knactor(name);
    hooks.add(
        name, [kn]() { kn->stop(); }, [kn]() { kn->start(); });
  }
  chaos::CrashScheduler scheduler(runtime.clock(), hooks);
  if (inject) scheduler.arm(retail_plan(seed));

  auto shipped = [&app]() {
    const de::StateObject* obj = app.checkout_store->peek("order");
    if (obj == nullptr || !obj->data) return false;
    const Value* tracking = obj->data->get("trackingID");
    const Value* status = obj->data->get("status");
    return tracking != nullptr && !tracking->is_null() && status != nullptr &&
           status->is_string() && status->as_string() == "shipped";
  };

  chaos::ChaosTrial trial;
  trial.workload = [&runtime, &app, &shipped]() {
    // A real client retries a rejected write; the put lands as soon as the
    // DE is up, even if a crash window covers t=0.
    Value order = apps::sample_order();
    bool placed = false;
    for (int attempt = 0; attempt < 100 && !placed; ++attempt) {
      placed = app.checkout_store
                   ->put_sync("knactor:checkout", "order", order)
                   .ok();
      if (!placed) runtime.run_for(25 * sim::kMillisecond);
    }
    if (!placed) return false;
    runtime.run_until_idle();
    return shipped();
  };
  trial.heal = [&runtime, &app]() {
    // All windows closed (the scheduler's up events are ordinary clock
    // events, so run_until_idle fired them). Resync every reconciler and
    // run one exchange pass; repeat once for multi-hop cascades.
    runtime.run_until_idle();
    for (int round = 0; round < 2; ++round) {
      for (const char* name :
           {"frontend", "cart", "catalog", "currency", "checkout", "payment",
            "shipping", "email", "recommendation", "ad", "inventory"}) {
        core::Knactor* kn = runtime.knactor(name);
        if (kn == nullptr) continue;
        if (!kn->running()) kn->start();
        (void)kn->resync();
      }
      (void)app.integrator->run_pass_sync();
      runtime.run_until_idle();
    }
  };
  trial.fingerprint = [&app]() {
    return chaos::fingerprint_stores(
        {app.checkout_store, app.payment_store, app.shipping_store});
  };

  static const std::string oracle = [] {
    // Fault-free oracle: computed once; identical for every seed because
    // all latencies are constant and no fault plan is armed.
    RetailTrialResult nil;
    core::Runtime oracle_runtime;
    apps::RetailKnactorOptions oracle_options;
    oracle_options.de_profile = de::ObjectDeProfile::apiserver();
    oracle_options.shipment_processing = sim::LatencyModel::constant_ms(10.0);
    oracle_options.payment_processing = sim::LatencyModel::constant_ms(1.0);
    oracle_options.integrator_retry = sim::RetryPolicy::standard(5);
    auto oracle_app =
        apps::build_retail_knactor_app(oracle_runtime, oracle_options);
    auto put = oracle_app.checkout_store->put_sync("knactor:checkout", "order",
                                                   apps::sample_order());
    if (!put.ok()) return std::string("oracle-put-failed");
    oracle_runtime.run_until_idle();
    for (int round = 0; round < 2; ++round) {
      for (const char* name :
           {"frontend", "cart", "catalog", "currency", "checkout", "payment",
            "shipping", "email", "recommendation", "ad", "inventory"}) {
        core::Knactor* kn = oracle_runtime.knactor(name);
        if (kn != nullptr) (void)kn->resync();
      }
      (void)oracle_app.integrator->run_pass_sync();
      oracle_runtime.run_until_idle();
    }
    return chaos::fingerprint_stores({oracle_app.checkout_store,
                                      oracle_app.payment_store,
                                      oracle_app.shipping_store});
  }();

  auto outcome = trial.run(oracle);
  RetailTrialResult result;
  result.completed = outcome.workload_completed;
  result.converged = outcome.converged;
  result.fingerprint = outcome.fingerprint;
  result.schedule = chaos::serialize_schedule(scheduler.records());
  result.sub_log = sub_log;
  if (sub_id != 0) {
    const auto* info = app.de->kernel().find_subscription(sub_id);
    if (info != nullptr) result.sub_filtered = info->filtered;
  }
  result.failed_passes = runtime.metrics().get("cast.retail.failed_passes");
  result.cast_retries = runtime.metrics().get("cast.retail.retries");
  return result;
}

// ---------------------------------------------------------------------------
// Tentpole: >= 100 seeds, every one converges to the oracle
// ---------------------------------------------------------------------------

TEST(ChaosRetail, HundredSeedsAllConvergeToOracle) {
  const int kSeeds = 120;
  int completed_during_chaos = 0;
  std::uint64_t total_failed_passes = 0;
  std::uint64_t total_cast_retries = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto result = run_retail_trial(seed, /*inject=*/true);
    ASSERT_TRUE(result.converged)
        << "seed " << seed << " diverged from oracle.\nSchedule:\n"
        << result.schedule << "Plan: " << retail_plan(seed).describe();
    if (result.completed) ++completed_during_chaos;
    total_failed_passes += result.failed_passes;
    total_cast_retries += result.cast_retries;
  }
  // The suite must actually exercise chaos: most seeds still complete while
  // faults are active (that's the point of the data-centric design), and at
  // least some seeds must have forced failed passes and integrator retries.
  EXPECT_GT(completed_during_chaos, kSeeds / 2);
  EXPECT_GT(total_failed_passes, 0u);
  EXPECT_GT(total_cast_retries, 0u);
}

TEST(ChaosRetailBatched, HundredSeedsConvergeWithCoalescedWatch) {
  // Satellite to the watch-batching tentpole: the integrator now consumes a
  // coalesced WatchBatch per window instead of one pass per event. Batching
  // must not change what state the composition converges to — every seed of
  // the same 120-seed fault corpus still reaches the (unbatched) oracle.
  const int kSeeds = 120;
  int completed_during_chaos = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto result =
        run_retail_trial(seed, /*inject=*/true, 25 * sim::kMillisecond);
    ASSERT_TRUE(result.converged)
        << "batched seed " << seed << " diverged from oracle.\nSchedule:\n"
        << result.schedule << "Plan: " << retail_plan(seed).describe();
    if (result.completed) ++completed_during_chaos;
  }
  EXPECT_GT(completed_during_chaos, kSeeds / 2);
}

TEST(ChaosRetailBatched, FaultFreeBatchedTrialMatchesOracle) {
  auto result = run_retail_trial(0, /*inject=*/false, 25 * sim::kMillisecond);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.converged);
}

TEST(ChaosRetailSharded, ShardedRunsAreBitIdenticalToSerialUnderChaos) {
  // Shard-aware scheduler satellite: the same seeded fault corpus, run with
  // 8 shards on 4 workers, must produce byte-identical fault schedules and
  // converged fingerprints to the 1-shard serial trial — chaos recovery
  // (WAL replay, retries, resync) included.
  const int kSeeds = 40;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto serial = run_retail_trial(seed, /*inject=*/true,
                                   25 * sim::kMillisecond);
    auto sharded = run_retail_trial(seed, /*inject=*/true,
                                    25 * sim::kMillisecond, /*shards=*/8,
                                    /*workers=*/4);
    ASSERT_TRUE(sharded.converged)
        << "sharded seed " << seed << " diverged from oracle.\nSchedule:\n"
        << sharded.schedule;
    EXPECT_EQ(sharded.schedule, serial.schedule) << "seed " << seed;
    EXPECT_EQ(sharded.fingerprint, serial.fingerprint) << "seed " << seed;
    EXPECT_EQ(sharded.completed, serial.completed) << "seed " << seed;
    EXPECT_EQ(sharded.failed_passes, serial.failed_passes) << "seed " << seed;
    EXPECT_EQ(sharded.cast_retries, serial.cast_retries) << "seed " << seed;
  }
}

TEST(ChaosRetailFiltered, HundredSeedsConvergeWithFilteredSubscription) {
  // Unified-subscription satellite: the same 120-seed fault corpus with a
  // content-filtered coalescing subscription attached to the checkout
  // store. The filter must not perturb convergence, and across the corpus
  // it must both deliver (the shipped write) and reject (every earlier
  // commit) — i.e. the chaos runs genuinely exercise the filter path.
  const int kSeeds = 120;
  int seeds_with_delivery = 0;
  std::uint64_t total_filtered = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto result = run_retail_trial(seed, /*inject=*/true,
                                   25 * sim::kMillisecond, /*shards=*/1,
                                   /*workers=*/1, /*epoch_commit=*/false,
                                   /*filtered_sub=*/true);
    ASSERT_TRUE(result.converged)
        << "filtered seed " << seed << " diverged from oracle.\nSchedule:\n"
        << result.schedule << "Plan: " << retail_plan(seed).describe();
    if (!result.sub_log.empty()) ++seeds_with_delivery;
    total_filtered += result.sub_filtered;
  }
  EXPECT_GT(seeds_with_delivery, kSeeds / 2);
  EXPECT_GT(total_filtered, 0u);
}

TEST(ChaosRetailFiltered, FilteredDeliveryLogBitIdenticalSerialVsSharded) {
  // Determinism contract for filtered subscriptions under chaos: for the
  // same seed, the 8-shard/4-worker run must produce a byte-identical
  // filtered delivery log (and reject count) to the serial run — crash
  // rollback of filtered coalesce slots included.
  const int kSeeds = 40;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto serial = run_retail_trial(seed, /*inject=*/true,
                                   25 * sim::kMillisecond, /*shards=*/1,
                                   /*workers=*/1, /*epoch_commit=*/false,
                                   /*filtered_sub=*/true);
    auto sharded = run_retail_trial(seed, /*inject=*/true,
                                    25 * sim::kMillisecond, /*shards=*/8,
                                    /*workers=*/4, /*epoch_commit=*/false,
                                    /*filtered_sub=*/true);
    ASSERT_TRUE(sharded.converged)
        << "filtered sharded seed " << seed << " diverged.\nSchedule:\n"
        << sharded.schedule;
    EXPECT_EQ(sharded.sub_log, serial.sub_log) << "seed " << seed;
    EXPECT_EQ(sharded.sub_filtered, serial.sub_filtered) << "seed " << seed;
    EXPECT_EQ(sharded.fingerprint, serial.fingerprint) << "seed " << seed;
  }
}

TEST(ChaosRetailEpoch, FortySeedsConvergeWithParallelCommitPipeline) {
  // Parallel-commit-pipeline satellite: the integrator now writes each pass
  // through put_epoch (grouped per store, committed shard-parallel behind
  // the deterministic epoch merge) while the same seeded fault corpus
  // crashes the DE and the pipeline knactors mid-run — including mid-epoch:
  // an epoch that lands in a crash window fails whole (every op
  // Unavailable) and the integrator's retry replays the pass. Every seed
  // must still converge to the fault-free *per-patch* oracle: the epoch
  // path changes how writes commit, never what state they converge to.
  const int kSeeds = 40;
  int completed_during_chaos = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto result = run_retail_trial(seed, /*inject=*/true,
                                   25 * sim::kMillisecond, /*shards=*/8,
                                   /*workers=*/4, /*epoch_commit=*/true);
    ASSERT_TRUE(result.converged)
        << "epoch seed " << seed << " diverged from oracle.\nSchedule:\n"
        << result.schedule << "Plan: " << retail_plan(seed).describe();
    if (result.completed) ++completed_during_chaos;
  }
  EXPECT_GT(completed_during_chaos, kSeeds / 2);
}

TEST(ChaosRetailEpoch, EpochTrialsAreBitIdenticalToSerialUnderChaos) {
  // And the epoch pipeline keeps the shard-determinism contract under
  // chaos: 8 shards / 4 workers replay the 1-shard serial epoch trial
  // byte-for-byte (schedule, fingerprint, retry counts).
  const int kSeeds = 12;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto serial = run_retail_trial(seed, /*inject=*/true,
                                   25 * sim::kMillisecond, /*shards=*/1,
                                   /*workers=*/1, /*epoch_commit=*/true);
    auto sharded = run_retail_trial(seed, /*inject=*/true,
                                    25 * sim::kMillisecond, /*shards=*/8,
                                    /*workers=*/4, /*epoch_commit=*/true);
    EXPECT_EQ(sharded.schedule, serial.schedule) << "seed " << seed;
    EXPECT_EQ(sharded.fingerprint, serial.fingerprint) << "seed " << seed;
    EXPECT_EQ(sharded.completed, serial.completed) << "seed " << seed;
    EXPECT_EQ(sharded.failed_passes, serial.failed_passes) << "seed " << seed;
    EXPECT_EQ(sharded.cast_retries, serial.cast_retries) << "seed " << seed;
  }
}

TEST(ChaosRetailEpoch, FaultFreeEpochTrialMatchesOracle) {
  auto result = run_retail_trial(0, /*inject=*/false, 25 * sim::kMillisecond,
                                 /*shards=*/8, /*workers=*/4,
                                 /*epoch_commit=*/true);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.converged);
}

// ---------------------------------------------------------------------------
// Mid-epoch crash atomicity: a worker dying between the parallel commit and
// the serial merge must not leak a half-merged epoch anywhere — state, WAL,
// audit, lineage, watches, or triggers.
// ---------------------------------------------------------------------------

TEST(ChaosEpochAtomicity, MidEpochCrashLeaksNothing) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::apiserver());  // durable: WAL
  de.enable_audit(1024);
  de.kernel().enable_provenance(1024);
  de.set_shards(8);
  de::ObjectStore& store = de.create_store("orders");

  int watch_events = 0;
  (void)store.watch("observer", "",
                    [&](const de::WatchEvent&) { ++watch_events; });
  std::vector<de::WatchBatch> batches;
  (void)store.watch_batch("observer", "", 200 * sim::kMillisecond,
                          [&](const de::WatchBatch& b) { batches.push_back(b); });

  // Baseline state committed through a healthy epoch.
  ASSERT_TRUE(store.put_sync("writer", "a", Value::object({{"v", 1}})).ok());
  ASSERT_TRUE(store.put_sync("writer", "b", Value::object({{"v", 2}})).ok());
  ASSERT_TRUE(store.put_sync("writer", "c", Value::object({{"v", 3}})).ok());
  while (clock.step()) {
  }

  // Leave one event pending in the batched watcher's buffer: commit a put
  // but stop the clock before its flush window expires. The crashing epoch
  // below coalesces into this event's slot, so rollback must restore the
  // slot's pre-epoch payload — not just truncate the epoch's appends.
  bool staged = false;
  store.put("writer", "a", Value::object({{"v", 5}}),
            [&](common::Result<std::uint64_t> r) { staged = r.ok(); });
  clock.run_until(clock.now() + 50 * sim::kMillisecond);
  ASSERT_TRUE(staged);

  const std::string before = chaos::fingerprint_stores({&store});
  const int events_before = watch_events;
  const std::size_t batches_before = batches.size();
  const std::size_t audit_before = de.audit_log().size();
  const std::size_t lineage_before = de.kernel().provenance().records().size();

  // Arm a one-shot mid-epoch crash: the hook fires after the parallel phase
  // has mutated shard state but before the serial merge publishes anything.
  bool crash_next = true;
  de.set_epoch_fault_hook([&crash_next] {
    bool fire = crash_next;
    crash_next = false;
    return fire;
  });

  std::vector<de::EpochWrite> writes;
  de::EpochWrite w1;
  w1.key = "a";
  w1.data = Value::object({{"v", 10}});
  de::EpochWrite w2;
  w2.key = "b";
  w2.remove = true;
  de::EpochWrite w3;
  w3.key = "d";
  w3.data = Value::object({{"v", 4}});
  writes.push_back(std::move(w1));
  writes.push_back(std::move(w2));
  writes.push_back(std::move(w3));
  auto results = store.put_epoch_sync("writer", std::move(writes));

  // Every op failed Unavailable; nothing about the epoch is observable.
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, common::Error::Code::kUnavailable);
  }
  EXPECT_FALSE(de.available());
  EXPECT_EQ(chaos::fingerprint_stores({&store}), before);
  EXPECT_EQ(watch_events, events_before);
  EXPECT_EQ(batches.size(), batches_before);
  EXPECT_EQ(de.audit_log().size(), audit_before);
  EXPECT_EQ(de.kernel().provenance().records().size(), lineage_before);

  // Recovery replays the WAL — which never saw the half-merged epoch, so
  // the replayed state is exactly the pre-epoch state.
  de.recover();
  while (clock.step()) {
  }
  EXPECT_EQ(chaos::fingerprint_stores({&store}), before);

  // The pending watch buffer flushed after recovery with exactly its
  // pre-epoch content: one event for "a" carrying the pre-crash payload.
  // The crashed epoch's coalesce into that slot and its appended events
  // ("b" delete, "d" add) were all rolled back.
  ASSERT_EQ(batches.size(), batches_before + 1);
  const de::WatchBatch& flushed = batches.back();
  ASSERT_EQ(flushed.events.size(), 1u);
  const de::WatchEvent& pending = flushed.events[0];
  EXPECT_EQ(pending.object.key, "a");
  EXPECT_EQ(pending.type, de::WatchEventType::kModified);
  ASSERT_TRUE(pending.object.data);
  ASSERT_NE(pending.object.data->get("v"), nullptr);
  EXPECT_EQ(pending.object.data->get("v")->as_int(), 5);

  // And the pipeline is healthy again: the retried epoch commits whole.
  de::EpochWrite retry;
  retry.key = "a";
  retry.data = Value::object({{"v", 10}});
  std::vector<de::EpochWrite> retry_writes;
  retry_writes.push_back(std::move(retry));
  auto retried = store.put_epoch_sync("writer", std::move(retry_writes));
  ASSERT_EQ(retried.size(), 1u);
  EXPECT_TRUE(retried[0].ok());
  EXPECT_NE(chaos::fingerprint_stores({&store}), before);
}

TEST(ChaosRetail, FaultFreeTrialMatchesOracleExactly) {
  auto result = run_retail_trial(0, /*inject=*/false);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.schedule.empty());
}

TEST(ChaosRetail, SameSeedIsBitIdentical) {
  // A random plan may legitimately draw zero crash windows; pick the first
  // seed whose schedule is non-trivial so the comparison means something.
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate <= 32; ++candidate) {
    if (!retail_plan(candidate).crashes.empty()) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed in 1..32 drew a crash window";
  auto a = run_retail_trial(seed, /*inject=*/true);
  auto b = run_retail_trial(seed, /*inject=*/true);
  EXPECT_FALSE(a.schedule.empty());
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.completed, b.completed);
  // And the plan derivation itself is a pure function of the seed.
  EXPECT_EQ(retail_plan(seed).describe(), retail_plan(seed).describe());
}

TEST(ChaosRetail, DifferentSeedsProduceDifferentSchedules) {
  // Not every pair differs (a plan can draw zero crash windows), so look
  // for at least one differing pair across a small sample.
  std::vector<std::string> schedules;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    schedules.push_back(run_retail_trial(seed, true).schedule);
  }
  bool any_differ = false;
  for (std::size_t i = 1; i < schedules.size(); ++i) {
    if (schedules[i] != schedules[0]) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

// ---------------------------------------------------------------------------
// Ride-hailing trial (docs/WORKLOADS.md): the Cast-heavy hot-key
// composition under the same crash-window regime. The convergence surface
// is rides + dispatch decisions; the zone demand counters and driver
// lastRide stamps are deliberately excluded — a retried submit legitimately
// double-bumps a counter, and that benign divergence is exactly why the
// workload stays far below the surge threshold (surge pins at 1.0, so
// every quoted fare is still byte-deterministic).
// ---------------------------------------------------------------------------

struct RideTrialResult {
  bool completed = false;
  bool converged = false;
  std::string fingerprint;
  std::string schedule;
  std::uint64_t failed_passes = 0;
  std::uint64_t cast_retries = 0;
};

sim::FaultPlan ride_plan(std::uint64_t seed) {
  sim::FaultPlan::RandomOptions opts;
  opts.horizon = sim::kSecond;
  opts.crash_targets = {"de", "ride-zones", "ride-dispatch", "ride-match"};
  opts.max_crashes = 3;
  opts.min_window = 20 * sim::kMillisecond;
  opts.max_window = 250 * sim::kMillisecond;
  return sim::FaultPlan::random(seed, opts);
}

constexpr std::uint64_t kChaosRides = 12;  // <= 5 rides/hot zone: surge 1.0

// Mirrors RideHailingApp::submit_ride's payload; the trial needs its own
// copy because a chaos client must *retry* the put until the DE is back,
// and only bump the zone counter once the ride actually landed.
Value chaos_ride_payload(const apps::RideHailingApp& app, std::uint64_t id) {
  const std::string zone = app.zone_for(id);
  Value ride = Value::object();
  ride.set("rider", Value("rider-" + std::to_string(id)));
  ride.set("zone", Value(zone));
  ride.set("zoneKey", Value("zone/" + zone));
  ride.set("fare", Value(5.0 + static_cast<double>(id % 20)));
  ride.set("status", Value("requested"));
  return ride;
}

RideTrialResult run_ride_trial(std::uint64_t seed, bool inject,
                               std::size_t shards = 1, int workers = 1) {
  core::Runtime runtime;
  apps::RideHailingOptions options;
  options.de_profile = de::ObjectDeProfile::apiserver();  // durable: WAL
  options.batch_window = 5 * sim::kMillisecond;
  options.integrator_retry = sim::RetryPolicy::standard(5);
  options.shards = shards;
  options.workers = workers;
  auto app = apps::build_ride_hailing_app(runtime, options);

  chaos::ChaosHooks hooks;
  hooks.add(
      "de", [&app]() { app.de->crash(); }, [&app]() { app.de->recover(); });
  for (const char* name : {"ride-zones", "ride-dispatch"}) {
    core::Knactor* kn = runtime.knactor(name);
    hooks.add(
        name, [kn]() { kn->stop(); }, [kn]() { (void)kn->start(); });
  }
  hooks.add(
      "ride-match", [&app]() { app.cast->stop(); },
      [&app]() { (void)app.cast->start(); });
  chaos::CrashScheduler scheduler(runtime.clock(), hooks);
  if (inject) scheduler.arm(ride_plan(seed));

  auto run_workload = [](core::Runtime& rt, apps::RideHailingApp& a) {
    for (std::uint64_t i = 0; i < kChaosRides; ++i) {
      const std::string key = "ride/" + std::to_string(i);
      bool placed = false;
      for (int attempt = 0; attempt < 100 && !placed; ++attempt) {
        placed = a.rides->put_sync("rider", key,
                                   chaos_ride_payload(a, i)).ok();
        if (!placed) rt.run_for(25 * sim::kMillisecond);
      }
      if (!placed) return false;
      // Best-effort demand bump (lost if a window opens here — the
      // counters are outside the convergence surface for that reason).
      std::int64_t demand = 0;
      const std::string zone_key = "zone/" + a.zone_for(i);
      const de::StateObject* obj = a.zones->peek(zone_key);
      if (obj != nullptr && obj->data) {
        const Value* d = obj->data->get("demand");
        if (d != nullptr && d->is_number()) {
          demand = static_cast<std::int64_t>(d->as_number());
        }
      }
      Value patch = Value::object();
      patch.set("demand", Value(demand + 1));
      a.zones->patch("rider", zone_key, std::move(patch),
                     [](common::Result<std::uint64_t>) {});
    }
    rt.run_until_idle();
    return a.assigned_count() == kChaosRides;
  };

  chaos::ChaosTrial trial;
  trial.workload = [&runtime, &app, &run_workload]() {
    return run_workload(runtime, app);
  };
  trial.heal = [&runtime, &app]() {
    runtime.run_until_idle();
    for (int round = 0; round < 2; ++round) {
      for (const char* name : {"ride-zones", "ride-dispatch"}) {
        core::Knactor* kn = runtime.knactor(name);
        if (kn == nullptr) continue;
        if (!kn->running()) (void)kn->start();
        (void)kn->resync();
      }
      if (!app.cast->running()) (void)app.cast->start();
      (void)app.cast->run_pass_sync();
      runtime.run_until_idle();
    }
  };
  trial.fingerprint = [&app]() {
    return chaos::fingerprint_stores({app.rides, app.dispatch});
  };

  static const std::string oracle = [&run_workload] {
    core::Runtime oracle_rt;
    apps::RideHailingOptions oracle_options;
    oracle_options.de_profile = de::ObjectDeProfile::apiserver();
    oracle_options.batch_window = 5 * sim::kMillisecond;
    oracle_options.integrator_retry = sim::RetryPolicy::standard(5);
    auto oracle_app = apps::build_ride_hailing_app(oracle_rt, oracle_options);
    if (!run_workload(oracle_rt, oracle_app)) {
      return std::string("oracle-workload-failed");
    }
    (void)oracle_app.cast->run_pass_sync();
    oracle_rt.run_until_idle();
    return chaos::fingerprint_stores({oracle_app.rides, oracle_app.dispatch});
  }();

  auto outcome = trial.run(oracle);
  RideTrialResult result;
  result.completed = outcome.workload_completed;
  result.converged = outcome.converged;
  result.fingerprint = outcome.fingerprint;
  result.schedule = chaos::serialize_schedule(scheduler.records());
  result.failed_passes = app.cast->stats().failed_passes;
  result.cast_retries = app.cast->stats().retries;
  return result;
}

TEST(ChaosRideHailing, HundredSeedsAllConvergeToOracle) {
  const int kSeeds = 120;
  int completed_during_chaos = 0;
  std::uint64_t total_failed_passes = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto result = run_ride_trial(seed, /*inject=*/true);
    ASSERT_TRUE(result.converged)
        << "ride seed " << seed << " diverged from oracle.\nSchedule:\n"
        << result.schedule << "Plan: " << ride_plan(seed).describe();
    if (result.completed) ++completed_during_chaos;
    total_failed_passes += result.failed_passes;
  }
  EXPECT_GT(completed_during_chaos, kSeeds / 2);
  EXPECT_GT(total_failed_passes, 0u);
}

TEST(ChaosRideHailing, ShardedTrialsAreBitIdenticalToSerial) {
  const int kSeeds = 24;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto serial = run_ride_trial(seed, /*inject=*/true);
    auto sharded = run_ride_trial(seed, /*inject=*/true, /*shards=*/8,
                                  /*workers=*/4);
    ASSERT_TRUE(sharded.converged)
        << "sharded ride seed " << seed << " diverged.\nSchedule:\n"
        << sharded.schedule;
    EXPECT_EQ(sharded.schedule, serial.schedule) << "seed " << seed;
    EXPECT_EQ(sharded.fingerprint, serial.fingerprint) << "seed " << seed;
    EXPECT_EQ(sharded.completed, serial.completed) << "seed " << seed;
  }
}

TEST(ChaosRideHailing, FaultFreeTrialMatchesOracleExactly) {
  auto result = run_ride_trial(0, /*inject=*/false);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.schedule.empty());
}

// ---------------------------------------------------------------------------
// Fleet-telemetry trial: Sync-integrator crash windows only. The Log DE
// stays up (its recover() is a cold start that wipes records — crashing it
// would change the workload, not test convergence), so the chaos surface
// is the integrator's availability. Cursor-based rounds make the alert
// route exactly-once: the converged alerts pool is byte-identical to the
// oracle no matter where the windows fell. The rollup pool is excluded —
// its summarize barrier aggregates per round, so its contents legitimately
// depend on where round boundaries landed.
// ---------------------------------------------------------------------------

std::string fingerprint_pools(const std::vector<const de::LogPool*>& pools) {
  std::string out;
  for (const de::LogPool* pool : pools) {
    if (pool == nullptr) continue;
    out += pool->name();
    out += '{';
    for (const auto& rec : pool->records_after(0)) {
      if (!rec.data) continue;
      out += chaos::canonical_fingerprint(*rec.data);
      out += ';';
    }
    out += '}';
  }
  return out;
}

struct FleetTrialResult {
  bool completed = false;
  bool converged = false;
  std::string fingerprint;
  std::string schedule;
};

sim::FaultPlan fleet_plan(std::uint64_t seed) {
  sim::FaultPlan::RandomOptions opts;
  opts.horizon = sim::kSecond;
  opts.crash_targets = {"sync"};
  opts.max_crashes = 3;
  opts.min_window = 20 * sim::kMillisecond;
  opts.max_window = 250 * sim::kMillisecond;
  return sim::FaultPlan::random(seed, opts);
}

constexpr std::uint64_t kFleetReadings = 120;

FleetTrialResult run_fleet_trial(std::uint64_t seed, bool inject) {
  core::Runtime runtime;
  apps::FleetTelemetryOptions options;
  options.push = true;  // appends schedule rounds; downtime loses the wakeup
  options.sync_retry = sim::RetryPolicy::standard(5);
  auto app = apps::build_fleet_telemetry_app(runtime, options);

  chaos::ChaosHooks hooks;
  hooks.add(
      "sync", [&app]() { app.sync->stop(); },
      [&app]() { (void)app.sync->start(); });
  chaos::CrashScheduler scheduler(runtime.clock(), hooks);
  if (inject) scheduler.arm(fleet_plan(seed));

  // The fault-free alert count, replayed from the deterministic generator.
  std::size_t expected_alerts = 0;
  for (std::uint64_t i = 0; i < kFleetReadings; ++i) {
    if (app.reading_for(i).get("temp")->as_number() > 90) ++expected_alerts;
  }

  chaos::ChaosTrial trial;
  trial.workload = [&runtime, &app, expected_alerts]() {
    // Spread the appends across the fault horizon so crash windows land
    // between pushes, not after the workload finished.
    for (std::uint64_t i = 0; i < kFleetReadings; ++i) {
      runtime.clock().schedule_at(
          static_cast<sim::SimTime>(i) * 4 * sim::kMillisecond,
          [&app, i]() { app.emit_reading(i); });
    }
    runtime.run_until_idle();
    return app.alert_count() == expected_alerts;
  };
  trial.heal = [&runtime, &app]() {
    runtime.run_until_idle();
    if (!app.sync->running()) (void)app.sync->start();
    (void)app.run_rollup_round();  // the cursor drains the missed suffix
    runtime.run_until_idle();
  };
  trial.fingerprint = [&app]() {
    return fingerprint_pools({app.readings, app.alerts});
  };

  static const std::string oracle = [] {
    core::Runtime oracle_rt;
    apps::FleetTelemetryOptions oracle_options;
    oracle_options.push = true;
    oracle_options.sync_retry = sim::RetryPolicy::standard(5);
    auto oracle_app = apps::build_fleet_telemetry_app(oracle_rt,
                                                      oracle_options);
    for (std::uint64_t i = 0; i < kFleetReadings; ++i) {
      oracle_rt.clock().schedule_at(
          static_cast<sim::SimTime>(i) * 4 * sim::kMillisecond,
          [&oracle_app, i]() { oracle_app.emit_reading(i); });
    }
    oracle_rt.run_until_idle();
    (void)oracle_app.run_rollup_round();
    oracle_rt.run_until_idle();
    return fingerprint_pools({oracle_app.readings, oracle_app.alerts});
  }();

  auto outcome = trial.run(oracle);
  FleetTrialResult result;
  result.completed = outcome.workload_completed;
  result.converged = outcome.converged;
  result.fingerprint = outcome.fingerprint;
  result.schedule = chaos::serialize_schedule(scheduler.records());
  return result;
}

TEST(ChaosFleetTelemetry, HundredSeedsAllConvergeToOracle) {
  const int kSeeds = 120;
  int completed_during_chaos = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto result = run_fleet_trial(seed, /*inject=*/true);
    ASSERT_TRUE(result.converged)
        << "fleet seed " << seed << " diverged from oracle.\nSchedule:\n"
        << result.schedule << "Plan: " << fleet_plan(seed).describe();
    if (result.completed) ++completed_during_chaos;
  }
  EXPECT_GT(completed_during_chaos, kSeeds / 2);
}

TEST(ChaosFleetTelemetry, SameSeedIsBitIdentical) {
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate <= 32; ++candidate) {
    if (!fleet_plan(candidate).crashes.empty()) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed in 1..32 drew a crash window";
  auto a = run_fleet_trial(seed, /*inject=*/true);
  auto b = run_fleet_trial(seed, /*inject=*/true);
  EXPECT_FALSE(a.schedule.empty());
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(ChaosFleetTelemetry, FaultFreeTrialMatchesOracleExactly) {
  auto result = run_fleet_trial(0, /*inject=*/false);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.schedule.empty());
}

// ---------------------------------------------------------------------------
// RPC baseline: degrades without retry, survives with it
// ---------------------------------------------------------------------------

sim::FaultPlan lossy_wire_plan(std::uint64_t seed) {
  sim::FaultPlan plan;
  plan.with_seed(seed).with_loss(0.15).with_duplication(0.05);
  return plan;
}

TEST(ChaosRpcBaseline, LossyNetworkNeedsRetryPolicy) {
  auto place_order = [](std::uint64_t seed, sim::RetryPolicy retry,
                        net::RpcChannel::Stats* stats_out,
                        std::uint64_t* dropped_out) {
    sim::VirtualClock clock;
    apps::RetailRpcOptions options;
    options.shipment_processing = sim::LatencyModel::constant_ms(10.0);
    options.payment_processing = sim::LatencyModel::constant_ms(1.0);
    apps::RetailRpcApp app(clock, options);
    app.network().set_fault_plan(lossy_wire_plan(seed));
    app.configure_channels(50 * sim::kMillisecond, retry);
    auto tracking = app.place_order_sync(120.0, {"keyboard"});
    if (stats_out != nullptr) *stats_out = app.channel_stats();
    if (dropped_out != nullptr) {
      *dropped_out = app.network().stats().dropped_fault;
    }
    return tracking.ok();
  };

  // Some seeds get lucky and lose no message on the critical call chain;
  // find one that doesn't (deterministic — the scan result never changes).
  std::uint64_t seed = 0;
  net::RpcChannel::Stats fragile;
  std::uint64_t dropped = 0;
  for (std::uint64_t candidate = 1; candidate <= 32; ++candidate) {
    if (!place_order(candidate, sim::RetryPolicy::none(), &fragile,
                     &dropped)) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed in 1..32 failed the fragile baseline";
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(fragile.timeouts + fragile.failures, 0u);

  // The same chaos survived once the channels retry with backoff.
  net::RpcChannel::Stats resilient;
  EXPECT_TRUE(place_order(seed, sim::RetryPolicy::standard(6), &resilient,
                          nullptr));
  EXPECT_GT(resilient.retries, 0u);
  EXPECT_EQ(resilient.failures, 0u);
}

TEST(ChaosRpcBaseline, SameSeedSameWireSchedule) {
  auto run = [](std::uint64_t seed) {
    sim::VirtualClock clock;
    apps::RetailRpcOptions options;
    options.shipment_processing = sim::LatencyModel::constant_ms(10.0);
    options.payment_processing = sim::LatencyModel::constant_ms(1.0);
    apps::RetailRpcApp app(clock, options);
    app.network().set_fault_plan(lossy_wire_plan(seed));
    app.configure_channels(50 * sim::kMillisecond,
                           sim::RetryPolicy::standard(6));
    (void)app.place_order_sync(120.0, {"keyboard"});
    return chaos::serialize_schedule(app.network().fault_records());
  };
  std::string first = run(11);
  std::string second = run(11);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(run(12), first);
}

// ---------------------------------------------------------------------------
// Pub/Sub under chaos: at-least-once delivery + dedup = exactly-once effect
// ---------------------------------------------------------------------------

TEST(ChaosBroker, FlapHealsWithRetryExactlyOnce) {
  sim::VirtualClock clock;
  net::SimNetwork net(clock);
  net.set_default_latency(sim::LatencyModel::constant_ms(0.5));
  net.add_node("pub");
  net::Broker broker(net, "broker");
  broker.set_retry_policy(sim::RetryPolicy::standard(8));
  broker.set_delivery_timeout(5 * sim::kMillisecond);

  sim::FaultPlan plan;
  plan.with_seed(21).add_flap("broker", "sub1", 2 * sim::kMillisecond,
                              40 * sim::kMillisecond);
  net.set_fault_plan(plan);

  std::vector<std::string> got;
  broker.subscribe("orders", "sub1", [&](const std::string&, const Value& m) {
    got.push_back(m.get("n")->as_string());
  });
  const int kMessages = 10;
  for (int i = 0; i < kMessages; ++i) {
    clock.schedule_at(i * 6 * sim::kMillisecond, [&broker, i]() {
      (void)broker.publish("pub", "orders",
                           Value::object({{"n", std::to_string(i)}}));
    });
  }
  clock.run_all();
  // Every message arrives exactly once despite the 40 ms outage: deliveries
  // in the window are re-sent after it heals, duplicates are suppressed.
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  EXPECT_GT(broker.redeliveries(), 0u);
  EXPECT_EQ(broker.delivery_failures(), 0u);
}

TEST(ChaosBroker, FlapDropsMessagesWithoutRetry) {
  sim::VirtualClock clock;
  net::SimNetwork net(clock);
  net.set_default_latency(sim::LatencyModel::constant_ms(0.5));
  net.add_node("pub");
  net::Broker broker(net, "broker");  // fire-and-forget: no policy

  sim::FaultPlan plan;
  plan.with_seed(21).add_flap("broker", "sub1", 2 * sim::kMillisecond,
                              40 * sim::kMillisecond);
  net.set_fault_plan(plan);

  int got = 0;
  broker.subscribe("orders", "sub1",
                   [&](const std::string&, const Value&) { ++got; });
  const int kMessages = 10;
  for (int i = 0; i < kMessages; ++i) {
    clock.schedule_at(i * 6 * sim::kMillisecond, [&broker, i]() {
      (void)broker.publish("pub", "orders",
                           Value::object({{"n", std::to_string(i)}}));
    });
  }
  clock.run_all();
  EXPECT_LT(got, kMessages);  // the window's deliveries are simply gone
}

// ---------------------------------------------------------------------------
// Observability: every injected fault is a Metrics counter + Tracer span
// ---------------------------------------------------------------------------

TEST(ChaosObservability, RuntimeNetworkEmitsCountersAndSpans) {
  core::Runtime runtime;
  net::SimNetwork& net = runtime.network();  // auto-attaches the observer
  net.set_default_latency(sim::LatencyModel::constant_ms(0.5));
  net.add_node("a");
  net.add_node("b");
  net.set_handler("b", "ping", [](const net::Message&) {});

  sim::FaultPlan plan;
  plan.with_seed(5).with_loss(1.0);
  net.set_fault_plan(plan);
  for (int i = 0; i < 4; ++i) {
    net::Message m;
    m.src = "a";
    m.dst = "b";
    m.type = "ping";
    (void)net.send(std::move(m));
  }
  runtime.run_until_idle();

  EXPECT_EQ(runtime.metrics().get("chaos.fault"), 4u);
  EXPECT_EQ(runtime.metrics().get("chaos.fault.loss"), 4u);
  auto spans = runtime.tracer().by_name("chaos.fault");
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].attributes.at("kind"), "loss");
  EXPECT_EQ(spans[0].attributes.at("link"), "a->b");
}

}  // namespace
}  // namespace knactor
