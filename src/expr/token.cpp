#include "expr/token.h"

#include <cctype>
#include <charconv>
#include <set>

namespace knactor::expr {

using common::Error;
using common::Result;

namespace {

const std::set<std::string, std::less<>> kKeywords = {
    "if", "else", "for", "in",   "and",   "or",
    "not", "True", "False", "None", "true", "false", "null"};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t start = i;
      bool is_float = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              text[i] == '.' || text[i] == 'e' || text[i] == 'E' ||
              ((text[i] == '+' || text[i] == '-') && i > start &&
               (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        if (text[i] == '.' || text[i] == 'e' || text[i] == 'E') {
          is_float = true;
        }
        ++i;
      }
      std::string_view num = text.substr(start, i - start);
      tok.type = TokenType::kNumber;
      tok.text = std::string(num);
      if (!is_float) {
        std::int64_t v = 0;
        auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
        if (ec == std::errc{} && p == num.data() + num.size()) {
          tok.is_int = true;
          tok.int_value = v;
          tok.number = static_cast<double>(v);
          out.push_back(std::move(tok));
          continue;
        }
      }
      double d = 0;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
      if (ec != std::errc{} || p != num.data() + num.size()) {
        return Error::parse("bad number '" + std::string(num) + "' at offset " +
                            std::to_string(start));
      }
      tok.number = d;
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string s;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size()) {
          char esc = text[i + 1];
          switch (esc) {
            case 'n': s.push_back('\n'); break;
            case 't': s.push_back('\t'); break;
            case '\\': s.push_back('\\'); break;
            case '\'': s.push_back('\''); break;
            case '"': s.push_back('"'); break;
            default: s.push_back(esc);
          }
          i += 2;
          continue;
        }
        if (text[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        s.push_back(text[i]);
        ++i;
      }
      if (!closed) {
        return Error::parse("unterminated string at offset " +
                            std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      out.push_back(std::move(tok));
      continue;
    }
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < text.size() && ident_char(text[i])) ++i;
      tok.text = std::string(text.substr(start, i - start));
      tok.type = kKeywords.count(tok.text) != 0 ? TokenType::kKeyword
                                                : TokenType::kIdent;
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    static const char* kTwoChar[] = {"==", "!=", "<=", ">=", "//", "**"};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (text.substr(i, 2) == op) {
        tok.type = TokenType::kOp;
        tok.text = op;
        i += 2;
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingle = "+-*/%()[]{},.:<>";
    if (kSingle.find(c) != std::string::npos) {
      tok.type = TokenType::kOp;
      tok.text = std::string(1, c);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }
    return Error::parse("unexpected character '" + std::string(1, c) +
                        "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = text.size();
  out.push_back(std::move(end));
  // Stamp 1-based line/col in one incremental pass (tokens are already in
  // offset order).
  {
    int line = 1;
    int col = 1;
    std::size_t i = 0;
    for (Token& tok : out) {
      while (i < tok.offset && i < text.size()) {
        if (text[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
        ++i;
      }
      tok.line = line;
      tok.col = col;
    }
  }
  return out;
}

std::pair<int, int> line_col_at(std::string_view text, std::size_t offset) {
  int line = 1;
  int col = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return {line, col};
}

}  // namespace knactor::expr
