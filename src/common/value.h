// Dynamic value type used throughout Knactor as the universal data-plane
// representation: data-store objects, log records, RPC payloads, DXG
// expression results, and parsed YAML/JSON all share this type.
//
// A Value is one of: null, bool, int64, double, string, array, object.
// Objects preserve insertion order (like YAML maps and protobuf fields),
// which matters for deterministic serialization and SLOC-stable artifacts.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace knactor::common {

class Value;

/// Ordered key/value map: preserves insertion order, O(log n) lookup via a
/// side index. Small and simple; the data plane is dominated by small objects.
class OrderedMap {
 public:
  using Entry = std::pair<std::string, Value>;

  OrderedMap() = default;
  OrderedMap(std::initializer_list<Entry> entries);

  /// Inserts or overwrites `key`. Overwrite keeps the original position.
  void set(std::string key, Value value);
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] Value* find(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;
  bool erase(std::string_view key);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }
  [[nodiscard]] auto begin() { return entries_.begin(); }
  [[nodiscard]] auto end() { return entries_.end(); }

  bool operator==(const OrderedMap& other) const;

 private:
  std::vector<Entry> entries_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

/// JSON-like dynamic value. Value semantics; copies are deep except that
/// arrays/objects may be shared via `Value::shared` handles in zero-copy
/// paths (see de/zero_copy.h).
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = OrderedMap;

  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : data_(std::monostate{}) {}
  Value(std::nullptr_t) : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::size_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  /// Builds an object value: Value::object({{"a", 1}, {"b", "x"}}).
  static Value object(std::initializer_list<OrderedMap::Entry> entries = {});
  /// Builds an array value: Value::array({1, 2, 3}).
  static Value array(std::initializer_list<Value> items = {});

  [[nodiscard]] Type type() const;
  [[nodiscard]] const char* type_name() const;
  static const char* type_name(Type t);

  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_int() const { return type() == Type::kInt; }
  [[nodiscard]] bool is_double() const { return type() == Type::kDouble; }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  // Checked accessors: abort via assert in debug; callers should check type
  // first or use the as_* optional variants.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(data_);
  }
  [[nodiscard]] double as_double() const { return std::get<double>(data_); }
  /// Numeric value widened to double (int or double).
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(data_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(data_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(data_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(data_);
  }
  [[nodiscard]] Object& as_object() { return std::get<Object>(data_); }

  // Optional-returning accessors (no throw on type mismatch).
  [[nodiscard]] std::optional<bool> try_bool() const;
  [[nodiscard]] std::optional<std::int64_t> try_int() const;
  [[nodiscard]] std::optional<double> try_number() const;
  [[nodiscard]] std::optional<std::string> try_string() const;

  /// Object field access; returns nullptr when not an object or key missing.
  [[nodiscard]] const Value* get(std::string_view key) const;
  [[nodiscard]] Value* get(std::string_view key);
  /// Sets a field, converting this value to an object if it is null.
  void set(std::string key, Value v);

  /// Dotted-path access, e.g. at_path("order.items"). Array indices are
  /// numeric segments, e.g. "items.0.name". Returns nullptr when missing.
  [[nodiscard]] const Value* at_path(std::string_view dotted_path) const;
  /// Sets a dotted path, creating intermediate objects as needed.
  /// Returns false if a non-object intermediate blocks the path.
  bool set_path(std::string_view dotted_path, Value v);

  /// Python-style truthiness: null/false/0/""/empty containers are falsy.
  [[nodiscard]] bool truthy() const;

  /// Deep structural equality (int 1 != double 1.0 by type, but numeric
  /// comparison helpers in expr:: treat them as equal).
  bool operator==(const Value& other) const;

  /// Approximate in-memory footprint in bytes, used by the zero-copy
  /// ablation bench to report bytes moved.
  [[nodiscard]] std::size_t deep_size_bytes() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Shared immutable value handle used on zero-copy exchange paths: the DE
/// and integrator pass ownership of one buffer instead of deep-copying.
using SharedValue = std::shared_ptr<const Value>;

}  // namespace knactor::common
