#include "de/kernel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/worker_pool.h"

namespace knactor::de {
namespace {

// --- shard_of: the partition must be platform-stable ------------------------

TEST(ShardOf, GoldenValuesAreStable) {
  // FNV-1a 64 golden values: if these move, N-shard runs stop replaying
  // recorded serial orders across platforms/toolchains.
  EXPECT_EQ(shard_of("order-1", 8), 6060019966333146987ull % 8);
  EXPECT_EQ(shard_of("order-2", 8), 6060021065844775198ull % 8);
  EXPECT_EQ(shard_of("alpha", 8), 6542418319912364133ull % 8);
}

TEST(ShardOf, SingleShardIsAlwaysZero) {
  EXPECT_EQ(shard_of("anything", 1), 0u);
  EXPECT_EQ(shard_of("anything", 0), 0u);
}

TEST(ShardOf, CoversMultipleShards) {
  std::vector<bool> hit(8, false);
  for (int i = 0; i < 64; ++i) {
    hit[shard_of("key-" + std::to_string(i), 8)] = true;
  }
  int used = 0;
  for (bool b : hit) used += b ? 1 : 0;
  EXPECT_GT(used, 4);  // a hash that lumps everything together is broken
}

// --- ShardedMap -------------------------------------------------------------

TEST(ShardedMap, FindInsertEraseAcrossShardCounts) {
  ShardedMap<int> map(4);
  map["a"] = 1;
  map["b"] = 2;
  ASSERT_NE(map.find("a"), nullptr);
  EXPECT_EQ(*map.find("a"), 1);
  EXPECT_EQ(map.find("missing"), nullptr);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.erase("a"));
  EXPECT_FALSE(map.erase("a"));
  EXPECT_EQ(map.size(), 1u);
}

TEST(ShardedMap, RepartitionPreservesEntries) {
  ShardedMap<int> map(1);
  for (int i = 0; i < 20; ++i) map["k" + std::to_string(i)] = i;
  map.set_shard_count(8);
  EXPECT_EQ(map.shard_count(), 8u);
  EXPECT_EQ(map.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    auto* v = map.find("k" + std::to_string(i));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
}

TEST(ShardedMap, SortedKeysMatchSingleShardOrder) {
  ShardedMap<int> one(1);
  ShardedMap<int> many(8);
  for (const char* k : {"zeta", "alpha", "mid", "beta", "omega"}) {
    one[k] = 0;
    many[k] = 0;
  }
  EXPECT_EQ(one.sorted_keys(), many.sorted_keys());
}

// --- Kernel sequence domains ------------------------------------------------

TEST(Kernel, RevisionAndCommitSeqAreSeparateDomains) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  // Revisions start at 1 (object versions / log seqs).
  EXPECT_EQ(kernel.next_revision(), 1u);
  EXPECT_EQ(kernel.next_revision(), 2u);
  // Commit seqs start at 2 (pre-increment; preserves legacy notify stamps).
  EXPECT_EQ(kernel.next_commit_seq(), 2u);
  EXPECT_EQ(kernel.next_commit_seq(), 3u);
  // Allocating one never advances the other.
  EXPECT_EQ(kernel.next_revision(), 3u);
}

TEST(Kernel, WatchIdsStartAtOne) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  EXPECT_EQ(kernel.allocate_watch_id(), 1u);
  EXPECT_EQ(kernel.allocate_watch_id(), 2u);
}

// --- availability -----------------------------------------------------------

TEST(Kernel, GuardCountsRejectionsThroughHook) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  std::uint64_t rejections = 0;
  kernel.set_hooks(Kernel::Hooks{&rejections});
  EXPECT_TRUE(kernel.guard_available());
  EXPECT_EQ(rejections, 0u);
  kernel.crash();
  EXPECT_FALSE(kernel.guard_available());
  EXPECT_FALSE(kernel.guard_available());
  EXPECT_EQ(rejections, 2u);
}

TEST(Kernel, RecoverRunsRestartHookThenMarksUp) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  std::vector<std::string> order;
  kernel.set_restart_hook([&] {
    order.push_back(kernel.available() ? "up" : "down");
  });
  kernel.crash();
  kernel.recover();
  // The restart hook runs while the kernel is still marked down (WAL
  // replay must not accept client traffic mid-recovery).
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "down");
  EXPECT_TRUE(kernel.available());
}

// --- RBAC + audit -----------------------------------------------------------

TEST(Kernel, CheckAccessRecordsBoundedAudit) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  kernel.enable_audit(3);
  for (int i = 0; i < 5; ++i) {
    (void)kernel.check_access("user", "store", "k" + std::to_string(i),
                              Verb::kGet);
  }
  ASSERT_EQ(kernel.audit_log().size(), 3u);  // ring bounded
  EXPECT_EQ(kernel.audit_log().front().key, "k2");
  EXPECT_EQ(kernel.audit_log().back().key, "k4");
  EXPECT_TRUE(kernel.audit_log().back().allowed);  // rbac off => allow
}

TEST(Kernel, DisabledAuditRecordsNothing) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  (void)kernel.check_access("user", "store", "k", Verb::kGet);
  EXPECT_TRUE(kernel.audit_log().empty());
}

// --- GC hooks ---------------------------------------------------------------

TEST(Kernel, GcHooksRunInRegistrationOrderAndSum) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  std::vector<int> order;
  kernel.add_gc_hook([&] {
    order.push_back(1);
    return std::size_t{3};
  });
  kernel.add_gc_hook([&] {
    order.push_back(2);
    return std::size_t{4};
  });
  EXPECT_EQ(kernel.run_gc(), 7u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- shard-task execution ---------------------------------------------------

TEST(Kernel, RunShardTasksInlineWithoutPool) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  kernel.run_shard_tasks(tasks);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));  // index order inline
}

TEST(Kernel, RunShardTasksOnPoolCompletesAll) {
  sim::VirtualClock clock;
  Kernel kernel(clock, 7);
  common::WorkerPool pool(4);
  kernel.set_worker_pool(&pool);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  kernel.run_shard_tasks(tasks);  // barrier: returns only when all done
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace knactor::de

namespace knactor::common {
namespace {

TEST(WorkerPool, InlineWhenSingleWorker) {
  WorkerPool pool(1);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 3; ++i) tasks.push_back([&order, i] { order.push_back(i); });
  pool.run(tasks);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pool.stats().inline_runs, 1u);
  EXPECT_EQ(pool.stats().barriers, 0u);
  EXPECT_EQ(pool.stats().tasks, 3u);
}

TEST(WorkerPool, BarrierRunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> counts(100);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counts, i] { counts[i].fetch_add(1); });
  }
  for (int round = 0; round < 10; ++round) pool.run(tasks);
  for (auto& c : counts) EXPECT_EQ(c.load(), 10);
  EXPECT_EQ(pool.stats().tasks, 1000u);
}

TEST(WorkerPool, ResizeKeepsWorking) {
  WorkerPool pool(1);
  pool.set_workers(4);
  EXPECT_EQ(pool.workers(), 4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) tasks.push_back([&ran] { ++ran; });
  pool.run(tasks);
  EXPECT_EQ(ran.load(), 16);
  pool.set_workers(1);
  pool.run(tasks);
  EXPECT_EQ(ran.load(), 32);
}

TEST(WorkerPool, EmptyBatchIsANoop) {
  WorkerPool pool(4);
  pool.run({});
  EXPECT_EQ(pool.stats().tasks, 0u);
}

}  // namespace
}  // namespace knactor::common
