#include "apps/artifacts.h"

#include <algorithm>

#include "common/strings.h"

namespace knactor::apps {

namespace {

// ---------------------------------------------------------------------------
// API-centric artifact tree. The service sources below are condensed but
// structurally faithful renditions of the gRPC online-retail demo the
// paper studies: protos define the API contract, generated stubs are
// vendored into each caller, and composition logic lives inside service
// handlers.
// ---------------------------------------------------------------------------

const char* kCheckoutServiceBase = R"(import grpc
from concurrent import futures
from stubs import checkout_pb2
from stubs import checkout_grpc

class CheckoutService(checkout_grpc.CheckoutServicer):
    def __init__(self, config):
        self.config = config
        self.orders = {}

    def HandlePlaceOrder(self, request, context):
        order_id = self.new_order_id()
        order = {
            "items": list(request.items),
            "address": request.address,
            "cost": request.cost,
            "currency": request.currency,
            "email": request.email,
            "status": "pending",
        }
        self.orders[order_id] = order
        return checkout_pb2.PlaceOrderResponse(order_id=order_id)

    def new_order_id(self):
        return "order-%d" % (len(self.orders) + 1)

def serve(config):
    server = grpc.server(futures.ThreadPoolExecutor(max_workers=8))
    checkout_grpc.add_CheckoutServicer_to_server(CheckoutService(config), server)
    server.add_insecure_port("[::]:7000")
    server.start()
    server.wait_for_termination()
)";

// T1 adds the Payment + Shipping composition: stub imports, call sequence,
// retry/error handling — the +35 SLOC the task charges to service.py.
const char* kCheckoutServiceT1 = R"(import grpc
from concurrent import futures
from stubs import checkout_pb2
from stubs import checkout_grpc
from stubs import payment_pb2
from stubs import payment_grpc
from stubs import shipping_pb2
from stubs import shipping_grpc

class CheckoutService(checkout_grpc.CheckoutServicer):
    def __init__(self, config):
        self.config = config
        self.orders = {}
        payment_channel = grpc.insecure_channel(config.payment_endpoint)
        self.payment = payment_grpc.PaymentStub(payment_channel)
        shipping_channel = grpc.insecure_channel(config.shipping_endpoint)
        self.shipping = shipping_grpc.ShippingStub(shipping_channel)

    def HandlePlaceOrder(self, request, context):
        order_id = self.new_order_id()
        order = {
            "items": list(request.items),
            "address": request.address,
            "cost": request.cost,
            "currency": request.currency,
            "email": request.email,
            "status": "pending",
        }
        self.orders[order_id] = order
        charge = payment_pb2.ChargeRequest(
            amount=request.cost, currency=request.currency)
        try:
            charged = self.payment.Charge(charge, timeout=2.0)
        except grpc.RpcError as err:
            context.abort(grpc.StatusCode.UNAVAILABLE,
                          "payment failed: %s" % err)
        order["payment_id"] = charged.id
        order["status"] = "paid"
        quote_req = shipping_pb2.GetQuoteRequest(
            items=[i.name for i in request.items], addr=request.address)
        try:
            quote = self.shipping.GetQuote(quote_req, timeout=2.0)
        except grpc.RpcError as err:
            context.abort(grpc.StatusCode.UNAVAILABLE,
                          "quote failed: %s" % err)
        order["shipping_cost"] = self.to_order_currency(quote, order)
        ship_req = shipping_pb2.ShipOrderRequest(
            items=[i.name for i in request.items], addr=request.address)
        try:
            shipped = self.shipping.ShipOrder(ship_req, timeout=30.0)
        except grpc.RpcError as err:
            context.abort(grpc.StatusCode.UNAVAILABLE,
                          "shipping failed: %s" % err)
        order["tracking_id"] = shipped.tracking_id
        order["status"] = "shipped"
        return checkout_pb2.PlaceOrderResponse(order_id=order_id)

    def to_order_currency(self, quote, order):
        rate = self.config.rates.get(quote.currency, 1.0)
        return quote.price / rate * self.config.rates[order["currency"]]

    def new_order_id(self):
        return "order-%d" % (len(self.orders) + 1)

def serve(config):
    server = grpc.server(futures.ThreadPoolExecutor(max_workers=8))
    checkout_grpc.add_CheckoutServicer_to_server(CheckoutService(config), server)
    server.add_insecure_port("[::]:7000")
    server.start()
    server.wait_for_termination()
)";

// T2 adds the price-based shipment-method policy inside checkout.
const char* kCheckoutServiceT2Block = R"(
    DEFAULT_AIR_SHIPPING_THRESHOLD_USD = 1000.0

    def air_shipping_threshold(self):
        configured = self.config.get("AIR_SHIPPING_THRESHOLD_USD")
        if configured is not None:
            return float(configured)
        return self.DEFAULT_AIR_SHIPPING_THRESHOLD_USD

    def pick_shipping_method(self, order):
        cost_usd = order["cost"] / self.config.rates[order["currency"]]
        if cost_usd > self.air_shipping_threshold():
            return "air"
        return "ground"
)";

const char* kShippingProtoBase = R"(syntax = "proto3";
package onlineretail.v1;

service Shipping {
  rpc ShipOrder(ShipOrderRequest) returns (ShipOrderResponse);
  rpc GetQuote(GetQuoteRequest) returns (GetQuoteResponse);
}

message ShipOrderRequest {
  repeated string items = 1;
  string addr = 2;
  string method = 3;
}

message ShipOrderResponse {
  string tracking_id = 1;
}

message GetQuoteRequest {
  repeated string items = 1;
  string addr = 2;
}

message GetQuoteResponse {
  double price = 1;
  string currency = 2;
}
)";

// T3: the Shipping team evolves its schema — packages replace the flat
// item list, addr becomes a structured address, insurance is added.
const char* kShippingProtoT3 = R"(syntax = "proto3";
package onlineretail.v2;

service Shipping {
  rpc ShipOrder(ShipOrderRequest) returns (ShipOrderResponse);
  rpc GetQuote(GetQuoteRequest) returns (GetQuoteResponse);
}

message Package {
  string name = 1;
  int32 qty = 2;
  double weight_kg = 3;
}

message Address {
  string street = 1;
  string city = 2;
  string zip = 3;
}

message ShipOrderRequest {
  repeated Package packages = 1;
  Address address = 2;
  string method = 3;
  bool insurance = 4;
}

message ShipOrderResponse {
  string tracking_id = 1;
}

message GetQuoteRequest {
  repeated Package packages = 1;
  Address address = 2;
}

message GetQuoteResponse {
  double price = 1;
  string currency = 2;
}
)";

std::string service_file(const std::string& name,
                         std::vector<std::string> handlers) {
  std::string out = "import grpc\nfrom concurrent import futures\n";
  out += "from stubs import " + name + "_pb2\n";
  out += "from stubs import " + name + "_grpc\n\n";
  out += "class " + name + "Service(" + name + "_grpc.Servicer):\n";
  out += "    def __init__(self, config):\n        self.config = config\n\n";
  for (const auto& h : handlers) {
    out += "    def Handle" + h + "(self, request, context):\n";
    out += "        # business logic for " + h + "\n";
    out += "        return " + name + "_pb2." + h + "Response()\n\n";
  }
  out += "def serve(config):\n";
  out += "    server = grpc.server(futures.ThreadPoolExecutor())\n";
  out += "    server.add_insecure_port(\"[::]:7000\")\n";
  out += "    server.start()\n";
  return out;
}

std::string stub_file(const std::string& message_set, int fields) {
  // Generated code embeds the message-set identity in every accessor, so a
  // regeneration after a schema change rewrites the whole file (as protoc
  // output does in practice).
  std::string out = "# Generated by the protocol compiler. DO NOT EDIT!\n";
  out += "import struct\n\nclass " + message_set + "Messages:\n";
  out += "    MESSAGE_SET = \"" + message_set + "\"\n";
  for (int i = 0; i < fields; ++i) {
    const std::string n = std::to_string(i + 1);
    out += "    " + message_set + "_FIELD_" + n + "_TAG = " + n + "\n";
    out += "    def set_" + message_set + "_field_" + n + "(self, value):\n";
    out += "        self._fields[\"" + message_set + "." + n +
           "\"] = value\n";
    out += "    def get_" + message_set + "_field_" + n + "(self):\n";
    out += "        return self._fields.get(\"" + message_set + "." + n +
           "\")\n";
  }
  out += "    def serialize_" + message_set +
         "(self):\n        return struct.pack('>I', 0)\n";
  return out;
}

std::string deploy_yaml(const std::string& name) {
  return "apiVersion: apps/v1\n"
         "kind: Deployment\n"
         "metadata:\n"
         "  name: " + name + "\n"
         "spec:\n"
         "  replicas: 2\n"
         "  template:\n"
         "    spec:\n"
         "      containers:\n"
         "        - name: " + name + "\n"
         "          image: registry.local/" + name + ":v1\n";
}

}  // namespace

const char* task_name(Task task) {
  switch (task) {
    case Task::kT1ComposeServices: return "T1 compose Payment+Shipping with Checkout";
    case Task::kT2AddShipmentPolicy: return "T2 add price-based shipment policy";
    case Task::kT3UpdateSchema: return "T3 update Shipping schema";
  }
  return "?";
}

ArtifactTree retail_api_base() {
  ArtifactTree tree;
  tree["protos/checkout.proto"] =
      "syntax = \"proto3\";\npackage onlineretail.v1;\n"
      "service Checkout {\n  rpc PlaceOrder(PlaceOrderRequest) returns "
      "(PlaceOrderResponse);\n}\n";
  tree["protos/shipping.proto"] = kShippingProtoBase;
  tree["protos/payment.proto"] =
      "syntax = \"proto3\";\npackage onlineretail.v1;\n"
      "service Payment {\n  rpc Charge(ChargeRequest) returns "
      "(ChargeResponse);\n}\n"
      "message ChargeRequest {\n  double amount = 1;\n  string currency = "
      "2;\n}\n"
      "message ChargeResponse {\n  string id = 1;\n}\n";

  tree["services/checkout/service.py"] = kCheckoutServiceBase;
  tree["services/checkout/stubs/checkout_pb2.py"] = stub_file("Checkout", 5);
  tree["services/checkout/stubs/checkout_grpc.py"] =
      "# Generated gRPC bindings. DO NOT EDIT!\nclass CheckoutServicer:\n"
      "    pass\ndef add_CheckoutServicer_to_server(servicer, server):\n"
      "    server.register(servicer)\n";
  tree["services/checkout/requirements.txt"] = "grpcio==1.62\nprotobuf==4.25\n";
  tree["services/checkout/Dockerfile"] =
      "FROM python:3.11-slim\nCOPY service.py /app/\nCOPY stubs /app/stubs\n"
      "CMD [\"python\", \"/app/service.py\"]\n";

  tree["services/shipping/service.py"] =
      service_file("shipping", {"ShipOrder", "GetQuote"});
  tree["services/payment/service.py"] = service_file("payment", {"Charge"});
  tree["services/email/service.py"] =
      service_file("email", {"SendConfirmation"});
  tree["services/inventory/service.py"] =
      service_file("inventory", {"Reserve"});
  tree["services/currency/service.py"] =
      service_file("currency", {"Convert", "GetSupportedCurrencies"});
  tree["services/catalog/service.py"] =
      service_file("catalog", {"GetProduct", "ListProducts"});
  tree["services/cart/service.py"] =
      service_file("cart", {"GetCart", "AddItem"});
  tree["services/recommendation/service.py"] =
      service_file("recommendation", {"ListRecommendations"});
  tree["services/ad/service.py"] = service_file("ad", {"GetAds"});
  tree["services/frontend/service.py"] =
      service_file("frontend", {"RenderPage"});

  for (const char* name :
       {"checkout", "shipping", "payment", "email", "inventory", "currency",
        "catalog", "cart", "recommendation", "ad", "frontend"}) {
    tree[std::string("deploy/") + name + ".yaml"] = deploy_yaml(name);
  }
  return tree;
}

ArtifactTree retail_api_after(Task task) {
  ArtifactTree tree = retail_api_base();
  switch (task) {
    case Task::kT1ComposeServices: {
      tree["services/checkout/service.py"] = kCheckoutServiceT1;
      tree["services/checkout/stubs/payment_pb2.py"] = stub_file("Payment", 3);
      tree["services/checkout/stubs/payment_grpc.py"] =
          "# Generated gRPC bindings. DO NOT EDIT!\n"
          "class PaymentStub:\n"
          "    def __init__(self, channel):\n"
          "        self.channel = channel\n"
          "    def Charge(self, request, timeout=None):\n"
          "        return self.channel.unary_unary(\"/Payment/Charge\")("
          "request, timeout)\n";
      tree["services/checkout/stubs/shipping_pb2.py"] =
          stub_file("Shipping", 5);
      tree["services/checkout/stubs/shipping_grpc.py"] =
          "# Generated gRPC bindings. DO NOT EDIT!\n"
          "class ShippingStub:\n"
          "    def __init__(self, channel):\n"
          "        self.channel = channel\n"
          "    def ShipOrder(self, request, timeout=None):\n"
          "        return self.channel.unary_unary(\"/Shipping/ShipOrder\")("
          "request, timeout)\n"
          "    def GetQuote(self, request, timeout=None):\n"
          "        return self.channel.unary_unary(\"/Shipping/GetQuote\")("
          "request, timeout)\n";
      tree["services/checkout/requirements.txt"] =
          "grpcio==1.62\nprotobuf==4.25\nonlineretail-payment-stubs==1.0\n"
          "onlineretail-shipping-stubs==1.0\n";
      tree["deploy/checkout.yaml"] =
          deploy_yaml("checkout") +
          "          env:\n"
          "            - name: PAYMENT_ENDPOINT\n"
          "              value: payment:7000\n"
          "            - name: SHIPPING_ENDPOINT\n"
          "              value: shipping:7000\n";
      tree["services/checkout/Dockerfile"] =
          "FROM python:3.11-slim\nCOPY service.py /app/\nCOPY stubs /app/stubs\n"
          "RUN pip install -r requirements.txt\n"
          "COPY requirements.txt /app/\n"
          "CMD [\"python\", \"/app/service.py\"]\n";
      break;
    }
    case Task::kT2AddShipmentPolicy: {
      // Applied on top of T1 (the composed app).
      tree = retail_api_after(Task::kT1ComposeServices);
      std::string service = tree["services/checkout/service.py"];
      // Insert the policy block before new_order_id and use it in the
      // ship request.
      std::string anchor = "        ship_req = shipping_pb2.ShipOrderRequest(\n"
                           "            items=[i.name for i in request.items],"
                           " addr=request.address)";
      std::string replacement =
          "        method = self.pick_shipping_method(order)\n"
          "        ship_req = shipping_pb2.ShipOrderRequest(\n"
          "            items=[i.name for i in request.items],"
          " addr=request.address,\n"
          "            method=method)";
      auto pos = service.find(anchor);
      if (pos != std::string::npos) {
        service.replace(pos, anchor.size(), replacement);
      }
      std::string tail_anchor = "    def new_order_id(self):";
      pos = service.find(tail_anchor);
      if (pos != std::string::npos) {
        service.insert(pos, std::string(kCheckoutServiceT2Block) + "\n");
      }
      tree["services/checkout/service.py"] = std::move(service);
      tree["deploy/checkout.yaml"] +=
          "            - name: AIR_SHIPPING_THRESHOLD_USD\n"
          "              value: \"1000\"\n";
      break;
    }
    case Task::kT3UpdateSchema: {
      // Applied on top of T1: the Shipping team ships proto v2; Checkout
      // must regenerate stubs and adapt its call sites.
      tree = retail_api_after(Task::kT1ComposeServices);
      tree["protos/shipping.proto"] = kShippingProtoT3;
      tree["services/checkout/stubs/shipping_pb2.py"] =
          stub_file("ShippingV2", 9);
      tree["services/checkout/stubs/shipping_grpc.py"] =
          "# Generated gRPC bindings (v2). DO NOT EDIT!\n"
          "class ShippingStub:\n"
          "    API_VERSION = \"onlineretail.v2\"\n"
          "    def __init__(self, channel):\n"
          "        self.channel = channel\n"
          "    def ShipOrder(self, request, timeout=None):\n"
          "        return self.channel.unary_unary(\"/v2/Shipping/ShipOrder\")("
          "request, timeout)\n"
          "    def GetQuote(self, request, timeout=None):\n"
          "        return self.channel.unary_unary(\"/v2/Shipping/GetQuote\")("
          "request, timeout)\n";
      std::string service = tree["services/checkout/service.py"];
      std::string quote_anchor =
          "        quote_req = shipping_pb2.GetQuoteRequest(\n"
          "            items=[i.name for i in request.items],"
          " addr=request.address)";
      std::string quote_new =
          "        packages = [shipping_pb2.Package(name=i.name, qty=i.qty,\n"
          "                                         weight_kg=self.weight(i))\n"
          "                    for i in request.items]\n"
          "        address = shipping_pb2.Address(\n"
          "            street=self.street(request.address),\n"
          "            city=self.city(request.address),\n"
          "            zip=self.zip_code(request.address))\n"
          "        quote_req = shipping_pb2.GetQuoteRequest(\n"
          "            packages=packages, address=address)";
      auto pos = service.find(quote_anchor);
      if (pos != std::string::npos) {
        service.replace(pos, quote_anchor.size(), quote_new);
      }
      std::string ship_anchor =
          "        ship_req = shipping_pb2.ShipOrderRequest(\n"
          "            items=[i.name for i in request.items],"
          " addr=request.address)";
      std::string ship_new =
          "        ship_req = shipping_pb2.ShipOrderRequest(\n"
          "            packages=packages, address=address,\n"
          "            insurance=order[\"cost\"] > 500.0)";
      pos = service.find(ship_anchor);
      if (pos != std::string::npos) {
        service.replace(pos, ship_anchor.size(), ship_new);
      }
      std::string helpers =
          "    def weight(self, item):\n"
          "        return self.config.weights.get(item.name, 0.5) * item.qty\n\n"
          "    def street(self, address):\n"
          "        return address.split(\",\")[0].strip()\n\n"
          "    def city(self, address):\n"
          "        parts = address.split(\",\")\n"
          "        return parts[1].strip() if len(parts) > 1 else \"\"\n\n"
          "    def zip_code(self, address):\n"
          "        parts = address.split(\",\")\n"
          "        return parts[-1].strip() if len(parts) > 2 else \"\"\n\n";
      std::string tail_anchor = "    def new_order_id(self):";
      pos = service.find(tail_anchor);
      if (pos != std::string::npos) {
        service.insert(pos, helpers);
      }
      tree["services/checkout/service.py"] = std::move(service);
      // Rolling out the new proto needs image bumps on both sides.
      {
        std::string& shipping_yaml = tree["deploy/shipping.yaml"];
        auto img = shipping_yaml.find("registry.local/shipping:v1");
        if (img != std::string::npos) {
          shipping_yaml.replace(img, 26, "registry.local/shipping:v2");
        }
        std::string& checkout_yaml = tree["deploy/checkout.yaml"];
        img = checkout_yaml.find("registry.local/checkout:v1");
        if (img != std::string::npos) {
          checkout_yaml.replace(img, 26, "registry.local/checkout:v2");
        }
      }
      break;
    }
  }
  return tree;
}

ArtifactTree social_network_api_base() {
  // Service/method inventory modeled on DeathStarBench socialNetwork
  // (14 services, 36 RPC-handling methods), the paper's second scattering
  // datapoint.
  ArtifactTree tree;
  struct Def {
    const char* name;
    std::vector<std::string> handlers;
  };
  const Def defs[] = {
      {"user",
       {"RegisterUser", "Login", "Follow", "Unfollow", "GetUser",
        "UpdateUser"}},
      {"social-graph",
       {"GetFollowers", "GetFollowees", "InsertUser", "FollowWithUsername",
        "UnfollowWithUsername", "RemoveUser"}},
      {"post-storage", {"StorePost", "ReadPost", "ReadPosts"}},
      {"user-timeline",
       {"WriteUserTimeline", "ReadUserTimeline", "RemovePosts"}},
      {"home-timeline", {"ReadHomeTimeline", "WriteHomeTimeline"}},
      {"compose-post", {"ComposePost", "ComposeCreator"}},
      {"text", {"UploadText", "ProcessText"}},
      {"media", {"UploadMedia", "GetMedia"}},
      {"url-shorten", {"UploadUrls", "GetUrls"}},
      {"user-mention", {"UploadUserMentions"}},
      {"unique-id", {"UploadUniqueId"}},
      {"frontend", {"RenderTimeline", "RenderProfile"}},
      {"search", {"Search", "IndexPost"}},
      {"notification", {"Notify", "ListNotifications"}},
  };
  for (const auto& def : defs) {
    tree[std::string("services/") + def.name + "/service.py"] =
        service_file(def.name, def.handlers);
    tree[std::string("deploy/") + def.name + ".yaml"] = deploy_yaml(def.name);
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Knactor artifact trees: only the integrator configuration changes.
// ---------------------------------------------------------------------------

ArtifactTree retail_knactor_base() {
  ArtifactTree tree;
  tree["integrator/retail-dxg.yaml"] =
      "Input:\n"
      "  C: OnlineRetail/v1/Checkout/knactor-checkout\n"
      "DXG:\n";
  tree["schemas/checkout.yaml"] =
      "schema: OnlineRetail/v1/Checkout/Order\n"
      "items: object\n"
      "address: string\n"
      "cost: number\n"
      "shippingCost: number # +kr: external\n"
      "totalCost: number\n"
      "currency: string\n"
      "paymentID: string # +kr: external\n"
      "trackingID: string # +kr: external\n";
  tree["schemas/shipping.yaml"] =
      "schema: OnlineRetail/v1/Shipping/Shipment\n"
      "items: list # +kr: external\n"
      "addr: string # +kr: external\n"
      "method: string # +kr: external\n"
      "quote: object\n"
      "id: string\n";
  tree["schemas/payment.yaml"] =
      "schema: OnlineRetail/v1/Payment/Charge\n"
      "amount: number # +kr: external\n"
      "currency: string # +kr: external\n"
      "id: string\n";
  return tree;
}

ArtifactTree retail_knactor_after(Task task) {
  ArtifactTree tree = retail_knactor_base();
  const std::string t1_dxg =
      "Input:\n"
      "  C: OnlineRetail/v1/Checkout/knactor-checkout\n"
      "  S: OnlineRetail/v1/Shipping/knactor-shipping\n"
      "  P: OnlineRetail/v1/Payment/knactor-payment\n"
      "DXG:\n"
      "  C.order:\n"
      "    shippingCost: currency_convert(S.quote.price, S.quote.currency, "
      "this.currency)\n"
      "    paymentID: P.id\n"
      "    trackingID: S.id\n"
      "  P:\n"
      "    amount: C.order.totalCost\n"
      "    currency: C.order.currency\n"
      "  S:\n"
      "    items: '[item.name for item in C.order.items]'\n"
      "    addr: C.order.address\n";
  switch (task) {
    case Task::kT1ComposeServices:
      tree["integrator/retail-dxg.yaml"] = t1_dxg;
      break;
    case Task::kT2AddShipmentPolicy:
      tree["integrator/retail-dxg.yaml"] =
          t1_dxg +
          "    method: '\"air\" if C.order.cost > 1000 else \"ground\"'\n";
      break;
    case Task::kT3UpdateSchema: {
      // Shipping v2: packages/address/insurance replace items/addr. Only
      // the exchange spec changes; Checkout is untouched.
      std::string dxg = t1_dxg;
      auto replace = [&dxg](const std::string& from, const std::string& to) {
        auto pos = dxg.find(from);
        if (pos != std::string::npos) dxg.replace(pos, from.size(), to);
      };
      replace("  S: OnlineRetail/v1/Shipping/knactor-shipping\n",
              "  S: OnlineRetail/v2/Shipping/knactor-shipping\n");
      replace("    items: '[item.name for item in C.order.items]'\n",
              "    packages: '[{\"name\": item.name, \"qty\": item.qty} for "
              "item in C.order.items]'\n");
      replace("    addr: C.order.address\n",
              "    address: C.order.address\n"
              "    insurance: C.order.cost > 500\n");
      tree["integrator/retail-dxg.yaml"] = std::move(dxg);
      break;
    }
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Diffing.
// ---------------------------------------------------------------------------

namespace {

bool is_code_path(const std::string& path) {
  using common::ends_with;
  if (ends_with(path, ".py") || ends_with(path, ".proto") ||
      ends_with(path, ".go") || ends_with(path, ".cpp") ||
      ends_with(path, ".h")) {
    return true;
  }
  return path.find("Dockerfile") != std::string::npos;
}

bool is_config_path(const std::string& path) {
  using common::ends_with;
  return ends_with(path, ".yaml") || ends_with(path, ".yml") ||
         ends_with(path, ".txt") || ends_with(path, ".cfg");
}

/// SLOC lines of `text` as a multiset (blank/comment lines excluded, per
/// the SLOC convention used in the paper's Table 1).
std::vector<std::string> sloc_lines(const std::string& text) {
  std::vector<std::string> out;
  for (const auto& line : common::split(text, '\n')) {
    std::string_view t = common::trim(line);
    if (t.empty() || t[0] == '#') continue;
    out.emplace_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Symmetric multiset difference size (lines added + lines removed).
std::size_t line_delta(const std::string& before, const std::string& after) {
  std::vector<std::string> a = sloc_lines(before);
  std::vector<std::string> b = sloc_lines(after);
  std::vector<std::string> only_a;
  std::vector<std::string> only_b;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(only_a));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(only_b));
  // A modified line counts once (it appears on both sides); pure adds and
  // removes count once each.
  std::size_t modified = std::min(only_a.size(), only_b.size());
  std::size_t adds_removes =
      std::max(only_a.size(), only_b.size()) - modified;
  return modified + adds_removes;
}

}  // namespace

std::string CompositionCost::operations() const {
  std::string out;
  auto append = [&out](const char* op) {
    if (!out.empty()) out += " / ";
    out += op;
  };
  if (code_changes) append("c");
  if (config_changes) append("f");
  if (rebuild) append("b");
  if (redeploy) append("d");
  return out.empty() ? "-" : out;
}

CompositionCost diff_trees(const ArtifactTree& before,
                           const ArtifactTree& after) {
  CompositionCost cost;
  std::vector<std::string> paths;
  for (const auto& [path, content] : before) paths.push_back(path);
  for (const auto& [path, content] : after) {
    if (before.find(path) == before.end()) paths.push_back(path);
  }
  for (const auto& path : paths) {
    auto b = before.find(path);
    auto a = after.find(path);
    const std::string empty;
    const std::string& bc = b == before.end() ? empty : b->second;
    const std::string& ac = a == after.end() ? empty : a->second;
    if (bc == ac) continue;
    ++cost.files;
    cost.sloc += line_delta(bc, ac);
    if (is_code_path(path)) {
      cost.code_changes = true;
    } else if (is_config_path(path)) {
      cost.config_changes = true;
    } else {
      cost.config_changes = true;
    }
  }
  if (cost.code_changes) {
    cost.rebuild = true;
    cost.redeploy = true;
  }
  return cost;
}

ScatterReport analyze_scatter(const ArtifactTree& tree) {
  ScatterReport report;
  for (const auto& [path, content] : tree) {
    if (path.find("services/") != 0 || !common::ends_with(path, "service.py")) {
      continue;
    }
    ++report.services;
    std::size_t handlers =
        common::count_lines_containing(content, "def Handle");
    report.handler_methods += handlers;
    // services/<name>/service.py
    auto first = path.find('/');
    auto second = path.find('/', first + 1);
    report.per_service[path.substr(first + 1, second - first - 1)] = handlers;
  }
  return report;
}

}  // namespace knactor::apps
