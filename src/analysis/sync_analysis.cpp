#include "analysis/sync_analysis.h"

#include <utility>

#include "de/log.h"
#include "de/query.h"

namespace knactor::analysis {

using FieldMap = std::map<std::string, Type>;

std::map<std::string, Type> schema_field_types(const de::StoreSchema& schema) {
  FieldMap out;
  for (const auto& field : schema.fields) {
    out[field.name] = type_from_decl(field.type);
  }
  return out;
}

namespace {

bool numeric_ok(const Type& t) {
  return t.is_any() || t.is_numeric() || t.kind == TypeKind::kNull;
}

/// Checks a stage expression (filter predicate or put value) against the
/// current record shape; KN106/KN105 are re-coded into the pipeline space
/// (KN201 unknown field, KN203 invalid predicate).
Type check_stage_expr(const expr::Node& node, const FieldMap& fields,
                      const SourceLoc& loc, const std::string& context,
                      std::vector<Diagnostic>& out) {
  FieldMapResolver resolver(fields);
  ExprCheckOptions options;
  options.code_unknown_ref = "KN201";
  options.code_operand = "KN203";
  ExprTypeChecker checker(resolver, loc, context, out, options);
  return checker.infer(node);
}

/// Produced field (by first path segment) the predicate reads, if any —
/// the related endpoint for a cross-spec KN501/KN502.
const ProducedField* produced_witness(const expr::Node& pred,
                                      const ProducedFieldMap& produced) {
  for (const std::string& ref : expr::collect_refs(pred)) {
    std::string root = ref.substr(0, ref.find('.'));
    auto it = produced.find(root);
    if (it != produced.end()) return &it->second;
  }
  return nullptr;
}

/// KN501/KN502: the filter's predicate is provably never / always true.
/// The type-level env (field decls only) is checked first; the produced
/// env (what this composition's mappings actually write) catches the
/// cross-spec cases and names the producing endpoint.
void check_filter_semantics(const expr::Node& pred, const FieldMap& fields,
                            const SourceLoc& loc, const std::string& context,
                            const ProducedFieldMap* produced,
                            bool shape_untouched,
                            std::vector<Diagnostic>& out) {
  std::string text = expr::to_string(pred);
  AbsEnv type_env = abs_env_from_fields(fields);
  if (!satisfiable(pred, type_env)) {
    out.push_back(make_diag(
        "KN501", loc,
        context + " (where): filter '" + text +
            "' can never be true — no record ever passes",
        "fix the predicate, or delete the stage"));
    return;
  }
  if (!abs_eval(pred, type_env).may_falsy) {
    out.push_back(make_diag(
        "KN502", loc,
        context + " (where): filter '" + text +
            "' is always true — it never drops a record",
        "drop the redundant where stage"));
    return;
  }
  // The produced env only describes the record as it leaves the source
  // store; once a stage reshapes it, field values are no longer the
  // producers' values.
  if (produced == nullptr || produced->empty() || !shape_untouched) return;
  AbsEnv env = abs_env_from_fields(fields);
  for (const auto& [name, pf] : *produced) {
    if (fields.count(name) != 0) env.bind(name, pf.value);
  }
  const ProducedField* witness = produced_witness(pred, *produced);
  if (!satisfiable(pred, env)) {
    Diagnostic d = make_diag(
        "KN501", loc,
        context + " (where): filter '" + text +
            "' can never match a record this composition produces",
        "the producing mapping constrains the field's values");
    if (witness != nullptr) {
      d.related = witness->loc;
      d.related_note = witness->desc;
    }
    out.push_back(std::move(d));
    return;
  }
  if (!abs_eval(pred, env).may_falsy) {
    Diagnostic d = make_diag(
        "KN502", loc,
        context + " (where): filter '" + text +
            "' is always true for every record this composition produces",
        "drop the redundant where stage");
    if (witness != nullptr) {
      d.related = witness->loc;
      d.related_note = witness->desc;
    }
    out.push_back(std::move(d));
  }
}

void missing_field(const std::string& field, const FieldMap& fields,
                   const SourceLoc& loc, const std::string& context,
                   std::vector<Diagnostic>& out) {
  std::string have;
  for (const auto& entry : fields) {
    if (!have.empty()) have += ", ";
    have += entry.first;
  }
  out.push_back(make_diag(
      "KN201", loc,
      context + ": field '" + field + "' is not in the record at this stage",
      have.empty() ? std::string()
                   : "fields available here: " + have));
}

}  // namespace

FieldMap analyze_pipeline(const std::string& pipeline_text, FieldMap fields,
                          const SourceLoc& loc, const std::string& route_name,
                          std::vector<Diagnostic>& out,
                          const ProducedFieldMap* produced) {
  if (pipeline_text.empty()) return fields;  // identity route
  auto parsed = de::parse_query(pipeline_text);
  if (!parsed.ok()) {
    out.push_back(make_diag("KN208", loc,
                            "route '" + route_name + "': pipeline does not "
                            "parse: " + parsed.error().message));
    return fields;
  }
  const de::LogQuery& query = parsed.value();
  int stage = 0;
  bool shape_untouched = true;  // no stage has rewritten field values yet
  for (const auto& op : query) {
    ++stage;
    std::string context =
        "route '" + route_name + "' stage " + std::to_string(stage);
    switch (op.kind) {
      case de::LogOp::Kind::kFilter: {
        if (op.compiled != nullptr) {
          check_stage_expr(*op.compiled, fields, loc,
                           context + " (where)", out);
          check_filter_semantics(*op.compiled, fields, loc, context, produced,
                                 shape_untouched, out);
        }
        break;
      }
      case de::LogOp::Kind::kRename: {
        shape_untouched = false;  // names move; produced values would alias
        // renames: old -> new. All renames apply to the incoming shape
        // simultaneously, but a new name colliding with a surviving field
        // silently overwrites it at runtime — flag it.
        FieldMap next = fields;
        for (const auto& [old_name, new_name] : op.renames) {
          auto it = fields.find(old_name);
          if (it == fields.end()) {
            missing_field(old_name, fields, loc, context + " (rename)", out);
            continue;
          }
          if (new_name != old_name && fields.count(new_name) != 0 &&
              op.renames.count(new_name) == 0) {
            out.push_back(make_diag(
                "KN202", loc,
                context + " (rename): renaming '" + old_name + "' to '" +
                    new_name + "' collides with an existing field",
                "drop or rename the other '" + new_name + "' first"));
          }
          next.erase(old_name);
          next[new_name] = it->second;
        }
        fields = std::move(next);
        break;
      }
      case de::LogOp::Kind::kProject: {
        FieldMap next;
        for (const auto& field : op.fields) {
          auto it = fields.find(field);
          if (it == fields.end()) {
            missing_field(field, fields, loc, context + " (cut)", out);
            continue;
          }
          next[field] = it->second;
        }
        fields = std::move(next);
        break;
      }
      case de::LogOp::Kind::kDrop: {
        for (const auto& field : op.fields) {
          if (fields.erase(field) == 0) {
            missing_field(field, fields, loc, context + " (drop)", out);
          }
        }
        break;
      }
      case de::LogOp::Kind::kSort: {
        auto it = fields.find(op.field);
        if (it == fields.end()) {
          missing_field(op.field, fields, loc, context + " (sort)", out);
        } else if (it->second.kind == TypeKind::kList ||
                   it->second.kind == TypeKind::kObject) {
          out.push_back(make_diag(
              "KN204", loc,
              context + " (sort): field '" + op.field + "' is " +
                  type_to_string(it->second) + ", which has no ordering"));
        }
        break;
      }
      case de::LogOp::Kind::kHead:
      case de::LogOp::Kind::kTail:
        break;  // shape-preserving
      case de::LogOp::Kind::kMap: {
        shape_untouched = false;  // put may overwrite a produced field
        Type t = Type::any();
        if (op.compiled != nullptr) {
          t = check_stage_expr(*op.compiled, fields, loc,
                               context + " (put " + op.field + ")", out);
        }
        fields[op.field] = t;
        break;
      }
      case de::LogOp::Kind::kWindow: {
        shape_untouched = false;  // the bucket field may shadow a produced one
        auto it = fields.find(op.source_field);
        if (it == fields.end()) {
          missing_field(op.source_field, fields, loc, context + " (window)",
                        out);
          fields[op.field] = Type::any();
        } else {
          if (!numeric_ok(it->second)) {
            out.push_back(make_diag(
                "KN209", loc,
                context + " (window): field '" + op.source_field + "' is " +
                    type_to_string(it->second) +
                    ", but window buckets a number",
                "bucket a numeric field (e.g. a timestamp)"));
          }
          fields[op.field] = it->second;
        }
        break;
      }
      case de::LogOp::Kind::kAggregate: {
        shape_untouched = false;  // grouped output is a new record shape
        FieldMap next;
        for (const auto& field : op.fields) {  // group_by keys
          auto it = fields.find(field);
          if (it == fields.end()) {
            missing_field(field, fields, loc, context + " (summarize by)",
                          out);
            next[field] = Type::any();
          } else {
            next[field] = it->second;
          }
        }
        for (const auto& [out_name, agg] : op.aggs) {
          const auto& [fn, in_name] = agg;
          Type in_type = Type::any();
          if (!in_name.empty()) {
            auto it = fields.find(in_name);
            if (it == fields.end()) {
              missing_field(in_name, fields, loc,
                            context + " (summarize " + fn + ")", out);
            } else {
              in_type = it->second;
            }
          }
          if ((fn == "sum" || fn == "min" || fn == "max" || fn == "avg") &&
              !numeric_ok(in_type)) {
            out.push_back(make_diag(
                "KN205", loc,
                context + " (summarize): " + fn + "(" + in_name + ") "
                "aggregates a " + type_to_string(in_type) + " field"));
          }
          if (fn == "count") {
            next[out_name] = Type::of(TypeKind::kInt);
          } else if (fn == "avg") {
            next[out_name] = Type::of(TypeKind::kNumber);
          } else {
            // sum/min/max/first/last follow the input field's type.
            next[out_name] = in_type;
          }
        }
        fields = std::move(next);
        break;
      }
    }
  }
  return fields;
}

FieldMap analyze_sync_route(const SyncRouteSpec& route,
                            const de::SchemaRegistry& schemas,
                            std::vector<Diagnostic>& out,
                            const ProducedFieldMap* produced) {
  const de::StoreSchema* source = schemas.find(route.source_schema);
  if (source == nullptr) {
    out.push_back(make_diag(
        "KN207", route.loc,
        "route '" + route.name + "': source schema '" + route.source_schema +
            "' is not registered; pipeline fields cannot be checked",
        "pass its schema file via --schema"));
    return {};
  }
  FieldMap flow = analyze_pipeline(route.pipeline_text,
                                   schema_field_types(*source), route.loc,
                                   route.name, out, produced);
  const de::StoreSchema* target = schemas.find(route.target_schema);
  if (target == nullptr) {
    if (!route.target_schema.empty()) {
      out.push_back(make_diag(
          "KN207", route.loc,
          "route '" + route.name + "': target schema '" +
              route.target_schema + "' is not registered; output conformance "
              "cannot be checked",
          "pass its schema file via --schema"));
    }
    return flow;
  }
  for (const auto& [name, type] : flow) {
    const de::SchemaField* field = target->field(name);
    if (field == nullptr) {
      out.push_back(make_diag(
          "KN206", route.loc,
          "route '" + route.name + "': output field '" + name +
              "' is not in target schema " + target->id,
          "cut it before the route's end, or add it to the schema"));
      continue;
    }
    Type expected = type_from_decl(field->type);
    if (!assignable(expected, type)) {
      out.push_back(make_diag(
          "KN206", route.loc,
          "route '" + route.name + "': output field '" + name + "' is " +
              type_to_string(type) + " but target schema " + target->id +
              " declares " + type_to_string(expected)));
    }
  }
  return flow;
}

std::vector<SyncRouteSpec> collect_sync_routes(const yaml::Document& doc,
                                               const std::string& file) {
  std::vector<SyncRouteSpec> routes;
  if (!doc.root.is_object()) return routes;
  const common::Value* sync = doc.root.get("Sync");
  if (sync == nullptr || !sync->is_object()) return routes;
  auto loc_at = [&](const std::string& path) {
    SourceLoc loc;
    loc.file = file;
    auto it = doc.positions.find(path);
    if (it != doc.positions.end()) {
      loc.line = it->second.line;
      loc.col = it->second.col;
    }
    return loc;
  };
  for (const auto& [name, route_value] : sync->as_object()) {
    if (!route_value.is_object()) continue;  // lint_spec reports KN208
    const common::Value* source = route_value.get("source");
    if (source == nullptr || !source->is_string()) continue;
    SyncRouteSpec route;
    route.name = name;
    route.loc = loc_at("Sync/" + name);
    route.source_schema = source->as_string();
    if (const common::Value* target = route_value.get("target")) {
      if (target->is_string()) route.target_schema = target->as_string();
    }
    if (const common::Value* pipeline = route_value.get("pipeline")) {
      if (pipeline->is_string()) {
        route.pipeline_text = pipeline->as_string();
        SourceLoc ploc = loc_at("Sync/" + name + "/pipeline");
        if (ploc.line > 0) route.loc = ploc;
      }
    }
    routes.push_back(std::move(route));
  }
  return routes;
}

}  // namespace knactor::analysis
