// Ride-hailing match/dispatch composition (apps/ride_hailing.h,
// docs/WORKLOADS.md): assignment convergence through the Cast fan-out,
// hot-zone surge pricing, the Watch-filter noise suppression, and lineage
// from the assigned ride back to the dispatch decision.
#include "apps/ride_hailing.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/causality.h"
#include "core/dxg.h"
#include "core/runtime.h"
#include "core/trace_export.h"

namespace knactor {
namespace {

using common::Value;

TEST(RideHailing, EveryRideConvergesToAnAssignment) {
  core::Runtime rt;
  auto app = apps::build_ride_hailing_app(rt);
  ASSERT_NE(app.cast, nullptr);
  // Ride ids spread across the 1M key space, hot and cold zones mixed.
  for (std::uint64_t i = 0; i < 40; ++i) {
    app.submit_ride((i * 999983ULL) % 1000000ULL);
  }
  app.settle();
  EXPECT_EQ(app.assigned_count(), 40u);
  // The dispatch decision exists for each ride and carries the surge quote.
  const de::StateObject* decision =
      app.dispatch->peek("ride/" + std::to_string(999983ULL % 1000000ULL));
  ASSERT_NE(decision, nullptr);
  ASSERT_TRUE(decision->data);
  const Value* quoted = decision->data->get("quoted");
  ASSERT_NE(quoted, nullptr);
  EXPECT_TRUE(quoted->is_number());
}

TEST(RideHailing, AssignmentIsDeterministicAcrossRuns) {
  auto run = [] {
    core::Runtime rt;
    auto app = apps::build_ride_hailing_app(rt);
    for (std::uint64_t i = 0; i < 25; ++i) app.submit_ride(i * 40000 + 7);
    app.settle();
    std::string out;
    for (std::uint64_t i = 0; i < 25; ++i) {
      out += app.driver_of(i * 40000 + 7) + ";";
    }
    return out;
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find(";;"), std::string::npos);  // every ride got a driver
}

TEST(RideHailing, HotZonesAbsorbMostTrafficAndSurge) {
  core::Runtime rt;
  apps::RideHailingOptions options;
  auto app = apps::build_ride_hailing_app(rt, options);
  // Sequential ids 0..119 all land in zones z0..z2 by construction
  // (id % 1000 < hot_per_mille). Demand bumps within a settle group
  // coalesce — peek() reads the committed counter — so the counters track
  // settle rounds with traffic, not exact ride counts.
  for (std::uint64_t i = 0; i < 120; ++i) {
    app.submit_ride(i);
    if (i % 10 == 9) app.settle();
  }
  app.settle();
  EXPECT_EQ(app.assigned_count(), 120u);

  auto demand_of = [&app](const std::string& zone) -> std::int64_t {
    const de::StateObject* obj = app.zones->peek("zone/" + zone);
    if (obj == nullptr || !obj->data) return 0;
    const Value* d = obj->data->get("demand");
    return d != nullptr && d->is_number()
               ? static_cast<std::int64_t>(d->as_number())
               : 0;
  };
  auto surge_of = [&app](const std::string& zone) -> double {
    const de::StateObject* obj = app.zones->peek("zone/" + zone);
    if (obj == nullptr || !obj->data) return 0;
    const Value* s = obj->data->get("surge");
    return s != nullptr && s->is_number() ? s->as_number() : 0;
  };
  const std::int64_t hot = demand_of("z0") + demand_of("z1") + demand_of("z2");
  std::int64_t cold = 0;
  for (int z = 3; z < options.zones; ++z) {
    cold += demand_of("z" + std::to_string(z));
  }
  EXPECT_GT(hot, 2 * cold);  // every ride here hit a busy zone
  // Coalesced bumps keep organic demand below the surge threshold at this
  // settle cadence, so simulate the rush directly: demand is an input
  // signal and the zone reconciler prices whatever it reads. 55 rides of
  // standing demand steps z0 to 1.25x.
  Value rush = Value::object();
  rush.set("demand", Value(std::int64_t{55}));
  app.zones->patch("city", "zone/z0", std::move(rush),
                   [](common::Result<std::uint64_t>) {});
  app.settle();
  EXPECT_GT(surge_of("z0"), 1.0);
  // Quotes on busy-zone rides reflect the surge: quoted == fare * surge of
  // the ride's zone at convergence.
  const de::StateObject* ride = app.rides->peek("ride/0");
  ASSERT_NE(ride, nullptr);
  const de::StateObject* decision = app.dispatch->peek("ride/0");
  ASSERT_NE(decision, nullptr);
  ASSERT_TRUE(ride->data && decision->data);
  const Value* fare = ride->data->get("fare");
  const Value* quoted = decision->data->get("quoted");
  ASSERT_NE(fare, nullptr);
  ASSERT_NE(quoted, nullptr);
  EXPECT_DOUBLE_EQ(quoted->as_number(),
                   fare->as_number() * surge_of(app.zone_for(0)));
}

TEST(RideHailing, WatchFiltersRejectConvergedTraffic) {
  core::Runtime rt;
  auto app = apps::build_ride_hailing_app(rt);
  for (std::uint64_t i = 0; i < 30; ++i) app.submit_ride(i);
  app.settle();
  // The integrator's subscriptions carry content filters
  // (status == "requested" on rides, surge > 1 on zones): once rides are
  // assigned and while zones idle at surge 1.0, their commits are rejected
  // pre-enqueue instead of waking the integrator.
  EXPECT_GT(app.de->stats().watch_events_filtered, 0u);
}

TEST(RideHailing, DxgParsesWithWatchClausesAndFanout) {
  auto dxg = core::Dxg::parse(apps::ride_hailing_dxg());
  ASSERT_TRUE(dxg.ok()) << dxg.error().to_string();
  const core::Dxg& d = dxg.value();
  ASSERT_NE(d.watch_for("R"), nullptr);
  EXPECT_EQ(d.watch_for("R")->spec.filter, "status == \"requested\"");
  ASSERT_NE(d.watch_for("Z"), nullptr);
  EXPECT_EQ(d.watch_for("Z")->spec.filter, "surge > 1");
  EXPECT_EQ(d.watch_for("X"), nullptr);  // dispatch watched unfiltered
}

// Lineage: the assigned ride's derivation chain walks back through the
// dispatch decision, and `explain` renders it with the integrator op.
TEST(RideHailing, AssignedRideExplainsThroughDispatch) {
  core::Runtime rt;
  rt.enable_lineage();
  auto app = apps::build_ride_hailing_app(rt);
  app.submit_ride(7);
  app.settle();
  ASSERT_EQ(app.driver_of(7), app.driver_of(7));
  ASSERT_FALSE(app.driver_of(7).empty());

  const auto& ring = app.de->kernel().provenance();
  bool reaches_dispatch = false;
  for (const auto& node :
       core::lineage_dag(ring, "ride-requests", "ride/7")) {
    if (node.ref.store == "ride-dispatch") reaches_dispatch = true;
  }
  EXPECT_TRUE(reaches_dispatch);

  std::string out = core::explain(ring, rt.tracer().spans(),
                                  "ride-requests", "ride/7");
  EXPECT_NE(out.find("derivation of ride-requests/ride/7"),
            std::string::npos);
  EXPECT_NE(out.find("cast:ride-match"), std::string::npos);
}

}  // namespace
}  // namespace knactor
