// Crash/recover differential suite (`ctest -L durable`): a seeded corpus
// of scripted workloads runs against a persisted ObjectDe while
// CrashPointPlan crashes the durability engine mid-journal-append,
// mid-snapshot, mid-truncation (GC), mid-epoch, and with plain process
// kills. Every crashed operation is retried after recovery, exactly as a
// real client would. The invariant is byte-identity with the fault-free
// oracle — state, object versions, and the kernel's revision/commit-seq
// counters, with nothing masked: recovery must land the durable history on
// the exact sequence point a crash-free run would have reached.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "apps/retail_knactor.h"
#include "common/json.h"
#include "core/runtime.h"
#include "de/object.h"
#include "de/persist/engine.h"
#include "sim/fault.h"
#include "sim/random.h"

#include "../integration/chaos_harness.h"

namespace knactor {
namespace {

using common::Value;
using de::ObjectDe;
using de::ObjectDeProfile;
using de::ObjectStore;
using de::persist::CrashPoint;
using de::persist::Engine;
using de::persist::EngineOptions;

std::string fresh_dir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "kn_precover_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Version- and counter-inclusive state digest. The chaos suite's
// fingerprint deliberately masks versions (integrator retries consume
// extra sequence numbers); this suite's whole point is the opposite claim:
// a crashed-and-retried run lands on *identical* versions and counters,
// because a write is either durable (acked, survives recovery) or rolled
// back wholesale (retry re-assigns the same version the oracle did).
std::string durable_fingerprint(ObjectDe& de,
                                const std::vector<std::string>& stores) {
  std::string out = "rev=" +
                    std::to_string(de.kernel().peek_next_revision()) +
                    ";seq=" + std::to_string(de.kernel().commit_seq()) + ";";
  for (const std::string& name : stores) {
    ObjectStore* store = de.store(name);
    out += name + "{";
    if (store != nullptr) {
      std::vector<std::string> keys = store->keys();
      std::sort(keys.begin(), keys.end());
      for (const auto& key : keys) {
        const de::StateObject* obj = store->peek(key);
        if (obj == nullptr) continue;
        out += key + ":v" + std::to_string(obj->version) + ":t" +
               std::to_string(obj->created_at) + "/" +
               std::to_string(obj->updated_at) + ":" +
               (obj->data ? common::to_json(*obj->data) : "null") + ";";
      }
    }
    out += "}";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scripted workload: a pure function of the seed, shared verbatim by the
// faulted run and its oracle.
// ---------------------------------------------------------------------------

const std::vector<std::string> kStores = {"alpha", "beta"};

struct OpSpec {
  enum Kind { kPut, kDelete, kTxn, kEpoch, kGc } kind = kPut;
  std::string store;
  // (key, value) pairs; one entry for kPut/kDelete, several for kTxn/kEpoch.
  std::vector<std::pair<std::string, int>> writes;
};

std::vector<OpSpec> make_script(std::uint64_t seed, int ops) {
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  std::vector<OpSpec> script;
  script.reserve(static_cast<std::size_t>(ops));
  auto key = [&rng]() { return "k" + std::to_string(rng.next_below(8)); };
  for (int i = 0; i < ops; ++i) {
    OpSpec op;
    op.store = kStores[rng.next_below(2)];
    const std::uint32_t roll = rng.next_below(10);
    if (roll < 5) {
      op.kind = OpSpec::kPut;
      op.writes.emplace_back(key(), static_cast<int>(rng.next_below(1000)));
    } else if (roll < 6) {
      op.kind = OpSpec::kDelete;
      op.writes.emplace_back(key(), 0);
    } else if (roll < 8) {
      op.kind = OpSpec::kTxn;
      for (int j = 0; j < 3; ++j) {
        op.writes.emplace_back(key(),
                               static_cast<int>(rng.next_below(1000)));
      }
    } else if (roll < 9) {
      op.kind = OpSpec::kEpoch;
      // Distinct keys within one epoch (an epoch is a set, not a sequence).
      for (int j = 0; j < 4; ++j) {
        op.writes.emplace_back("k" + std::to_string(j * 2 +
                                                    rng.next_below(2)),
                               static_cast<int>(rng.next_below(1000)));
      }
    } else {
      op.kind = OpSpec::kGc;
    }
    script.push_back(std::move(op));
  }
  return script;
}

// Executes one op with crash-recovery retries: an Unavailable result means
// the op never became durable (torn frame / pre-append crash / crashed
// kernel), so recover and re-issue — it must then land exactly where the
// oracle's single attempt landed. Any other error (e.g. deleting a missing
// key) is a deterministic outcome shared with the oracle and is not
// retried.
void run_op(ObjectDe& de, const OpSpec& op) {
  for (int attempt = 0; attempt < 12; ++attempt) {
    if (!de.available()) de.recover();
    bool unavailable = false;
    switch (op.kind) {
      case OpSpec::kPut: {
        auto r = de.store(op.store)->put_sync(
            "suite", op.writes[0].first,
            Value::object({{"v", op.writes[0].second}}));
        unavailable =
            !r.ok() && r.error().code == common::Error::Code::kUnavailable;
        break;
      }
      case OpSpec::kDelete: {
        auto st = de.store(op.store)->remove_sync("suite",
                                                  op.writes[0].first);
        unavailable =
            !st.ok() && st.error().code == common::Error::Code::kUnavailable;
        break;
      }
      case OpSpec::kTxn: {
        std::vector<ObjectDe::TxnOp> txn;
        for (const auto& [k, v] : op.writes) {
          ObjectDe::TxnOp t;
          t.store = op.store;
          t.key = k;
          t.data = Value::object({{"v", v}});
          t.merge = false;
          txn.push_back(std::move(t));
        }
        auto r = de.transact_sync("suite", std::move(txn));
        unavailable =
            !r.ok() && r.error().code == common::Error::Code::kUnavailable;
        break;
      }
      case OpSpec::kEpoch: {
        std::vector<de::EpochWrite> writes;
        for (const auto& [k, v] : op.writes) {
          de::EpochWrite w;
          w.key = k;
          w.data = Value::object({{"v", v}});
          writes.push_back(std::move(w));
        }
        auto results =
            de.store(op.store)->put_epoch_sync("suite", std::move(writes));
        for (const auto& r : results) {
          if (!r.ok() &&
              r.error().code == common::Error::Code::kUnavailable) {
            unavailable = true;
          }
        }
        break;
      }
      case OpSpec::kGc:
        (void)de.kernel().run_gc();
        break;
    }
    if (!unavailable) return;
  }
  FAIL() << "op never survived 12 crash-recovery attempts";
}

// Per-mechanism crash counts observed across a run (to prove the corpus
// actually exercised every crash point, not just the happy path).
struct CrashTally {
  std::uint64_t journal_append = 0;
  std::uint64_t snapshot_write = 0;
  std::uint64_t truncate = 0;
  std::uint64_t epoch = 0;
  std::uint64_t hard_kill = 0;

  [[nodiscard]] std::uint64_t total() const {
    return journal_append + snapshot_write + truncate + epoch + hard_kill;
  }
  CrashTally& operator+=(const CrashTally& o) {
    journal_append += o.journal_append;
    snapshot_write += o.snapshot_write;
    truncate += o.truncate;
    epoch += o.epoch;
    hard_kill += o.hard_kill;
    return *this;
  }
};

std::string run_seed(std::uint64_t seed, bool inject, const std::string& dir,
                     CrashTally* tally) {
  sim::VirtualClock clock;
  ObjectDeProfile profile = ObjectDeProfile::instant();
  profile.durable = true;
  ObjectDe de(clock, profile);
  Engine engine(EngineOptions{dir, /*snapshot_every=*/6});
  EXPECT_TRUE(de.enable_persistence(&engine).ok());
  for (const auto& name : kStores) de.create_store(name);

  // The crash schedule draws from CrashPointPlan, never from the script's
  // Rng — the faulted run and the oracle execute the *identical* op list.
  sim::CrashPointPlan plan(seed, 0.0);
  sim::CrashPointPlan io_plan(seed, 0.10);
  sim::CrashPointPlan kill_plan(seed ^ 0xdeadbeef, 0.04);
  sim::CrashPointPlan epoch_plan(seed ^ 0xfeedface, 0.20);
  (void)plan;
  if (inject) {
    engine.set_fault_hook([&io_plan, tally](CrashPoint point) {
      const bool fire = io_plan.next(crash_point_name(point));
      if (fire && tally != nullptr) {
        switch (point) {
          case CrashPoint::kJournalAppend:
            ++tally->journal_append;
            break;
          case CrashPoint::kSnapshotWrite:
            ++tally->snapshot_write;
            break;
          case CrashPoint::kTruncate:
            ++tally->truncate;
            break;
        }
      }
      return fire;
    });
    de.set_epoch_fault_hook([&epoch_plan, tally]() {
      const bool fire = epoch_plan.next("epoch_commit");
      if (fire && tally != nullptr) ++tally->epoch;
      return fire;
    });
  }

  const std::vector<OpSpec> script = make_script(seed, 48);
  for (const OpSpec& op : script) {
    if (inject && kill_plan.next("hard_kill")) {
      // A plain process kill between ops: everything acked is on disk.
      de.crash();
      if (tally != nullptr) ++tally->hard_kill;
    }
    run_op(de, op);
  }
  // Disarm chaos, settle, and take the live fingerprint.
  engine.set_fault_hook(nullptr);
  de.set_epoch_fault_hook(nullptr);
  if (!de.available()) de.recover();
  const std::string live = durable_fingerprint(de, kStores);

  // One final kill + recovery: the disk image alone must reproduce the
  // live state bit-for-bit, counters included.
  de.crash();
  de.recover();
  EXPECT_EQ(durable_fingerprint(de, kStores), live)
      << "seed " << seed << ": post-recovery state diverged from live state";
  return live;
}

// ---------------------------------------------------------------------------
// Tentpole: 120 seeds, every faulted run is byte-identical to its oracle
// ---------------------------------------------------------------------------

TEST(PersistRecoveryDifferential, HundredTwentySeedsMatchOracleExactly) {
  const std::uint64_t kSeeds = 120;
  CrashTally tally;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    CrashTally seed_tally;
    const std::string faulted =
        run_seed(seed, /*inject=*/true,
                 fresh_dir("faulted_" + std::to_string(seed)), &seed_tally);
    const std::string oracle =
        run_seed(seed, /*inject=*/false,
                 fresh_dir("oracle_" + std::to_string(seed)), nullptr);
    ASSERT_EQ(faulted, oracle)
        << "seed " << seed << " diverged after " << seed_tally.total()
        << " crashes (journal=" << seed_tally.journal_append
        << " snapshot=" << seed_tally.snapshot_write
        << " truncate=" << seed_tally.truncate
        << " epoch=" << seed_tally.epoch
        << " kill=" << seed_tally.hard_kill << ")";
    tally += seed_tally;
  }
  // The corpus must have exercised every crash mechanism; a suite that
  // never crashed proves nothing.
  EXPECT_GT(tally.journal_append, 0u);
  EXPECT_GT(tally.snapshot_write, 0u);
  EXPECT_GT(tally.truncate, 0u);
  EXPECT_GT(tally.epoch, 0u);
  EXPECT_GT(tally.hard_kill, 0u);
}

TEST(PersistRecoveryDifferential, SameSeedIsBitIdentical) {
  CrashTally a_tally;
  CrashTally b_tally;
  const std::string a =
      run_seed(7, /*inject=*/true, fresh_dir("repeat_a"), &a_tally);
  const std::string b =
      run_seed(7, /*inject=*/true, fresh_dir("repeat_b"), &b_tally);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a_tally.total(), b_tally.total());
}

TEST(PersistRecoveryDifferential, RecoveryIsBoundedBySnapshots) {
  // After a long faulted run the recovery replay is O(delta since the last
  // snapshot), not O(history): far fewer frames than acked commits.
  const std::string dir = fresh_dir("bounded");
  sim::VirtualClock clock;
  ObjectDeProfile profile = ObjectDeProfile::instant();
  profile.durable = true;
  ObjectDe de(clock, profile);
  Engine engine(EngineOptions{dir, /*snapshot_every=*/6});
  ASSERT_TRUE(de.enable_persistence(&engine).ok());
  for (const auto& name : kStores) de.create_store(name);
  for (const OpSpec& op : make_script(99, 120)) run_op(de, op);

  de.crash();
  de.recover();
  EXPECT_GT(engine.stats().snapshots, 0u);
  EXPECT_LT(engine.stats().frames_replayed, 12u)
      << "recovery replayed the whole history instead of the delta";
}

// ---------------------------------------------------------------------------
// Satellite: the retail composition converges after mid-run crashes and a
// full recovery — the durable tier plugs into the paper's composition
// without any knactor noticing.
// ---------------------------------------------------------------------------

std::string retail_oracle_fingerprint() {
  core::Runtime runtime;
  apps::RetailKnactorOptions options;
  options.de_profile = ObjectDeProfile::apiserver();
  options.shipment_processing = sim::LatencyModel::constant_ms(10.0);
  options.payment_processing = sim::LatencyModel::constant_ms(1.0);
  options.integrator_retry = sim::RetryPolicy::standard(5);
  auto app = apps::build_retail_knactor_app(runtime, options);
  auto put = app.checkout_store->put_sync("knactor:checkout", "order",
                                          apps::sample_order());
  if (!put.ok()) return "oracle-put-failed";
  runtime.run_until_idle();
  for (int round = 0; round < 2; ++round) {
    for (const char* name :
         {"frontend", "cart", "catalog", "currency", "checkout", "payment",
          "shipping", "email", "recommendation", "ad", "inventory"}) {
      core::Knactor* kn = runtime.knactor(name);
      if (kn != nullptr) (void)kn->resync();
    }
    (void)app.integrator->run_pass_sync();
    runtime.run_until_idle();
  }
  return chaos::fingerprint_stores(
      {app.checkout_store, app.payment_store, app.shipping_store});
}

TEST(PersistRecoveryRetail, CompositionConvergesAfterCrashRecover) {
  const std::string oracle = retail_oracle_fingerprint();
  ASSERT_NE(oracle, "oracle-put-failed");

  std::uint64_t total_crashes = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    core::Runtime runtime;
    apps::RetailKnactorOptions options;
    options.de_profile = ObjectDeProfile::apiserver();
    options.shipment_processing = sim::LatencyModel::constant_ms(10.0);
    options.payment_processing = sim::LatencyModel::constant_ms(1.0);
    options.integrator_retry = sim::RetryPolicy::standard(5);
    auto app = apps::build_retail_knactor_app(runtime, options);

    Engine engine(EngineOptions{
        fresh_dir("retail_" + std::to_string(seed)), /*snapshot_every=*/32});
    ASSERT_TRUE(app.de->enable_persistence(&engine).ok());
    sim::CrashPointPlan plan(seed, 0.02);
    engine.set_fault_hook([&plan, &total_crashes](CrashPoint point) {
      const bool fire = plan.next(crash_point_name(point));
      if (fire) ++total_crashes;
      return fire;
    });

    // Place the order like a retrying client; the engine may crash the DE
    // out from under any write along the pipeline.
    Value order = apps::sample_order();
    bool placed = false;
    for (int attempt = 0; attempt < 100 && !placed; ++attempt) {
      if (!app.de->available()) app.de->recover();
      placed = app.checkout_store
                   ->put_sync("knactor:checkout", "order", order)
                   .ok();
      if (!placed) runtime.run_for(25 * sim::kMillisecond);
    }
    ASSERT_TRUE(placed) << "seed " << seed;
    runtime.run_until_idle();

    // Heal: recover the DE if it is down, resync every reconciler, run an
    // exchange pass; repeat until the composition settles.
    for (int round = 0; round < 6; ++round) {
      if (!app.de->available()) app.de->recover();
      for (const char* name :
           {"frontend", "cart", "catalog", "currency", "checkout", "payment",
            "shipping", "email", "recommendation", "ad", "inventory"}) {
        core::Knactor* kn = runtime.knactor(name);
        if (kn == nullptr) continue;
        if (!kn->running()) kn->start();
        (void)kn->resync();
      }
      (void)app.integrator->run_pass_sync();
      runtime.run_until_idle();
    }
    engine.set_fault_hook(nullptr);
    if (!app.de->available()) app.de->recover();

    const std::string converged = chaos::fingerprint_stores(
        {app.checkout_store, app.payment_store, app.shipping_store});
    EXPECT_EQ(converged, oracle) << "seed " << seed;

    // Kill and recover once more: the converged composition state must be
    // fully reconstructible from disk.
    app.de->crash();
    app.de->recover();
    EXPECT_EQ(chaos::fingerprint_stores({app.checkout_store,
                                         app.payment_store,
                                         app.shipping_store}),
              converged)
        << "seed " << seed << ": recovery lost converged retail state";
  }
  EXPECT_GT(total_crashes, 0u)
      << "the retail corpus never crashed — raise the crash probability";
}

}  // namespace
}  // namespace knactor
