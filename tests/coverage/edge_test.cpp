// Edge-case coverage batch: corner behaviours across modules that the
// main suites don't pin down.
#include <gtest/gtest.h>

#include <cmath>

#include "common/json.h"
#include "core/cast.h"
#include "core/sync.h"
#include "de/log.h"
#include "de/object.h"
#include "expr/eval.h"
#include "expr/parser.h"
#include "net/broker.h"
#include "net/rpc.h"
#include "yaml/yaml.h"

namespace knactor {
namespace {

using common::Value;

// ---------------------------------------------------------------------------
// YAML corners.
// ---------------------------------------------------------------------------

TEST(YamlEdge, QuotedKeys) {
  auto v = yaml::parse("'weird: key': 1\n\"other:key\": 2\n").value();
  EXPECT_EQ(v.get("weird: key")->as_int(), 1);
  EXPECT_EQ(v.get("other:key")->as_int(), 2);
}

TEST(YamlEdge, NestedSequences) {
  auto v = yaml::parse("m:\n  - - 1\n    - 2\n  - - 3\n").value();
  const Value* m = v.get("m");
  ASSERT_TRUE(m->is_array());
  ASSERT_EQ(m->as_array().size(), 2u);
  EXPECT_EQ(m->as_array()[0].as_array()[1].as_int(), 2);
  EXPECT_EQ(m->as_array()[1].as_array()[0].as_int(), 3);
}

TEST(YamlEdge, WindowsLineEndings) {
  auto v = yaml::parse("a: 1\r\nb: two\r\n").value();
  EXPECT_EQ(v.get("a")->as_int(), 1);
  EXPECT_EQ(v.get("b")->as_string(), "two");
}

TEST(YamlEdge, DeepNesting) {
  std::string text;
  for (int i = 0; i < 30; ++i) {
    text += std::string(static_cast<std::size_t>(i) * 2, ' ') + "k" +
            std::to_string(i) + ":\n";
  }
  text += std::string(60, ' ') + "leaf: 1\n";
  auto v = yaml::parse(text);
  ASSERT_TRUE(v.ok());
}

TEST(YamlEdge, TabIndentationInContentTolerated) {
  // A value containing tabs is fine (only leading spaces are structure).
  auto v = yaml::parse("a: has\ttab\n").value();
  EXPECT_EQ(v.get("a")->as_string(), "has\ttab");
}

TEST(YamlEdge, NumericLookingKeysStayStrings) {
  auto v = yaml::parse("2024: year\n").value();
  EXPECT_NE(v.get("2024"), nullptr);
}

// ---------------------------------------------------------------------------
// Expression corners.
// ---------------------------------------------------------------------------

TEST(ExprEdge, UnaryMinusWithPower) {
  expr::MapEnv env;
  // Python: -x**2 == -(x**2).
  env.bind("x", Value(3));
  auto r = expr::evaluate("-x ** 2", env, expr::FunctionRegistry::builtins());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().as_int(), -9);
}

TEST(ExprEdge, ChainedComparisonsAreLeftFolds) {
  // We implement (a < b) < c, not Python chaining; pin it down so the
  // behaviour is documented.
  expr::MapEnv env;
  auto r = expr::evaluate("1 < 2 == true", env,
                          expr::FunctionRegistry::builtins());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().as_bool());
}

TEST(ExprEdge, KeywordsAsAttributeNames) {
  expr::MapEnv env;
  env.bind("m", Value::object({{"in", 5}}));
  auto r = expr::evaluate("m.in", env, expr::FunctionRegistry::builtins());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().as_int(), 5);
}

TEST(ExprEdge, EmptyListLiteralAndComprehensionOverEmpty) {
  expr::MapEnv env;
  env.bind("xs", Value::array({}));
  auto empty = expr::evaluate("[]", env, expr::FunctionRegistry::builtins());
  EXPECT_TRUE(empty.value().as_array().empty());
  auto comp = expr::evaluate("[x * 2 for x in xs]", env,
                             expr::FunctionRegistry::builtins());
  EXPECT_TRUE(comp.value().as_array().empty());
}

TEST(ExprEdge, NestedComprehensions) {
  expr::MapEnv env;
  env.bind("xss", Value::array({Value::array({1, 2}), Value::array({3})}));
  auto r = expr::evaluate("[[y * 10 for y in xs] for xs in xss]", env,
                          expr::FunctionRegistry::builtins());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().as_array()[0].as_array()[1].as_int(), 20);
  EXPECT_EQ(r.value().as_array()[1].as_array()[0].as_int(), 30);
}

TEST(ExprEdge, IntOverflowFallsBackToDoublePower) {
  expr::MapEnv env;
  auto r =
      expr::evaluate("10 ** 20", env, expr::FunctionRegistry::builtins());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_double());
  EXPECT_NEAR(r.value().as_double(), 1e20, 1e6);
}

// ---------------------------------------------------------------------------
// Object DE corners.
// ---------------------------------------------------------------------------

TEST(ObjectEdge, WatchSurvivesDeRestart) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::apiserver());
  de::ObjectStore& store = de.create_store("s");
  int events = 0;
  store.watch("w", "", [&](const de::WatchEvent&) { ++events; });
  (void)store.put_sync("w", "k", Value::object({{"n", 1}}));
  clock.run_all();
  EXPECT_EQ(events, 1);
  de.restart();  // recovery replays the WAL silently
  clock.run_all();
  EXPECT_EQ(events, 1);
  // New writes after recovery notify as usual.
  (void)store.put_sync("w", "k", Value::object({{"n", 2}}));
  clock.run_all();
  EXPECT_EQ(events, 2);
}

TEST(ObjectEdge, TriggersSurviveDeRestart) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::redis());
  de::ObjectStore& store = de.create_store("s");
  int fired = 0;
  (void)de.register_udf("o", "count",
                        [&fired](de::UdfContext&, const Value&)
                            -> common::Result<Value> {
                          ++fired;
                          return Value(nullptr);
                        });
  (void)de.add_trigger("s", "", "count");
  de.restart();
  (void)store.put_sync("w", "k", Value::object({}));
  clock.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(ObjectEdge, PatchNonObjectReplacesIt) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& store = de.create_store("s");
  (void)store.put_sync("w", "k", Value(42));  // scalar state object
  (void)store.patch_sync("w", "k", Value::object({{"a", 1}}));
  EXPECT_TRUE(store.peek("k")->data->is_object());
}

TEST(ObjectEdge, EmptyKeyAndUnicodeKeys) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& store = de.create_store("s");
  EXPECT_TRUE(store.put_sync("w", "", Value::object({})).ok());
  EXPECT_TRUE(store.put_sync("w", "ключ/键", Value::object({})).ok());
  EXPECT_TRUE(store.get_sync("w", "ключ/键").ok());
}

TEST(ObjectEdge, ListSeesConsistentSnapshotUnderInterleavedWrites) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::redis());
  de::ObjectStore& store = de.create_store("s");
  for (int i = 0; i < 5; ++i) {
    (void)store.put_sync("w", "k" + std::to_string(i),
                         Value::object({{"i", i}}));
  }
  // Issue a list and a write concurrently; the list returns a coherent
  // set (all five or six objects, never a torn view).
  std::optional<std::size_t> listed;
  store.list("w", "", [&](common::Result<std::vector<de::StateObject>> r) {
    ASSERT_TRUE(r.ok());
    listed = r.value().size();
  });
  store.put("w", "k5", Value::object({{"i", 5}}),
            [](common::Result<std::uint64_t>) {});
  clock.run_all();
  ASSERT_TRUE(listed.has_value());
  EXPECT_TRUE(*listed == 5u || *listed == 6u);
}

// ---------------------------------------------------------------------------
// Broker corners.
// ---------------------------------------------------------------------------

TEST(BrokerEdge, RetainedMessageUpdatedBySubsequentPublish) {
  sim::VirtualClock clock;
  net::SimNetwork net(clock);
  net::Broker broker(net, "broker");
  broker.set_retain(true);
  net.add_node("pub");
  (void)broker.publish("pub", "t", Value::object({{"v", 1}}));
  clock.run_all();
  (void)broker.publish("pub", "t", Value::object({{"v", 2}}));
  clock.run_all();
  int got = 0;
  broker.subscribe("t", "late", [&](const std::string&, const Value& m) {
    got = static_cast<int>(m.get("v")->as_int());
  });
  clock.run_all();
  EXPECT_EQ(got, 2);
}

TEST(BrokerEdge, UnsubscribeWildcard) {
  sim::VirtualClock clock;
  net::SimNetwork net(clock);
  net::Broker broker(net, "broker");
  net.add_node("pub");
  int got = 0;
  broker.subscribe("home/#", "sub",
                   [&](const std::string&, const Value&) { ++got; });
  (void)broker.publish("pub", "home/x", Value::object({}));
  clock.run_all();
  broker.unsubscribe("home/#", "sub");
  (void)broker.publish("pub", "home/y", Value::object({}));
  clock.run_all();
  EXPECT_EQ(got, 1);
}

// ---------------------------------------------------------------------------
// Cast corners.
// ---------------------------------------------------------------------------

TEST(CastEdge, EmptyDxgIsAHarmlessNoop) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& a = de.create_store("a");
  auto dxg = core::Dxg::parse("Input:\n  A: a\nDXG:\n");
  core::CastIntegrator cast("noop", de, dxg.take(), {{"A", &a}});
  ASSERT_TRUE(cast.start().ok());
  (void)a.put_sync("w", "k", Value::object({{"x", 1}}));
  clock.run_all();
  EXPECT_EQ(cast.stats().fields_written, 0u);
}

TEST(CastEdge, TwoIntegratorsOnDisjointFieldsCoexist) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& src = de.create_store("src");
  de::ObjectStore& dst = de.create_store("dst");
  auto dxg1 = core::Dxg::parse("Input:\n  A: src\n  B: dst\nDXG:\n"
                               "  B:\n    one: A.x\n");
  auto dxg2 = core::Dxg::parse("Input:\n  A: src\n  B: dst\nDXG:\n"
                               "  B:\n    two: A.x * 2\n");
  core::CastIntegrator cast1("i1", de, dxg1.take(), {{"A", &src}, {"B", &dst}});
  core::CastIntegrator cast2("i2", de, dxg2.take(), {{"A", &src}, {"B", &dst}});
  ASSERT_TRUE(cast1.start().ok());
  ASSERT_TRUE(cast2.start().ok());
  (void)src.put_sync("w", "state", Value::object({{"x", 21}}));
  clock.run_all();
  EXPECT_EQ(dst.peek("state")->data->get("one")->as_int(), 21);
  EXPECT_EQ(dst.peek("state")->data->get("two")->as_int(), 42);
  cast1.stop();
  cast2.stop();
}

TEST(CastEdge, DeletedSourceObjectStopsFutureWritesButKeepsTarget) {
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& src = de.create_store("src");
  de::ObjectStore& dst = de.create_store("dst");
  auto dxg = core::Dxg::parse("Input:\n  A: src\n  B: dst\nDXG:\n"
                              "  B:\n    copied: A.value\n");
  core::CastIntegrator cast("i", de, dxg.take(), {{"A", &src}, {"B", &dst}});
  ASSERT_TRUE(cast.start().ok());
  (void)src.put_sync("w", "state", Value::object({{"value", 1}}));
  clock.run_all();
  EXPECT_EQ(dst.peek("state")->data->get("copied")->as_int(), 1);
  (void)src.remove_sync("w", "state");
  clock.run_all();
  // Source gone -> expression is "not ready": the last exchanged value
  // remains (state is retained, per §3.3, until retention GC says
  // otherwise).
  EXPECT_EQ(dst.peek("state")->data->get("copied")->as_int(), 1);
}

// ---------------------------------------------------------------------------
// Sync corners.
// ---------------------------------------------------------------------------

TEST(SyncEdge, RoundOverEmptySourceIsCheap) {
  sim::VirtualClock clock;
  de::LogDe de(clock, de::LogDeProfile::instant());
  de::LogPool& src = de.create_pool("src");
  de::LogPool& dst = de.create_pool("dst");
  core::SyncIntegrator sync("s", de);
  core::SyncRoute route;
  route.name = "r";
  route.source = &src;
  route.target = &dst;
  ASSERT_TRUE(sync.add_route(std::move(route)).ok());
  auto moved = sync.run_round_sync();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 0u);
  EXPECT_EQ(dst.size(), 0u);
}

TEST(SyncEdge, SelfRouteIsRejectedByDesign) {
  // A route from a pool to itself would duplicate records forever; the
  // cursor makes a single round safe, but each round re-appends. Pin the
  // (documented) behaviour: one round moves the pre-existing records once.
  sim::VirtualClock clock;
  de::LogDe de(clock, de::LogDeProfile::instant());
  de::LogPool& pool = de.create_pool("p");
  (void)pool.append_sync("w", Value::object({{"n", 1}}));
  core::SyncIntegrator sync("s", de);
  core::SyncRoute route;
  route.name = "self";
  route.source = &pool;
  route.target = &pool;
  ASSERT_TRUE(sync.add_route(std::move(route)).ok());
  ASSERT_TRUE(sync.run_round_sync().ok());
  EXPECT_EQ(pool.size(), 2u);
  // The cursor advanced past its own append: the next round moves only
  // the one new record, not everything again.
  ASSERT_TRUE(sync.run_round_sync().ok());
  EXPECT_EQ(pool.size(), 3u);
}

// ---------------------------------------------------------------------------
// JSON corners.
// ---------------------------------------------------------------------------

TEST(JsonEdge, SpecialDoublesSerialize) {
  EXPECT_EQ(common::to_json(Value(std::nan(""))), "null");
  std::string inf = common::to_json(Value(1.0 / 0.0 * 1e308));
  EXPECT_FALSE(inf.empty());
}

TEST(JsonEdge, ControlCharactersEscaped) {
  Value v(std::string{'a', '\x01', 'b'});
  std::string json = common::to_json(v);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  auto back = common::parse_json(json);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().as_string(), (std::string{'a', '\x01', 'b'}));
}

}  // namespace
}  // namespace knactor
