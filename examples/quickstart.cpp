// Quickstart: the Knactor pattern in ~100 lines.
//
// Two services — a Greeter that wants a name, and a Directory that knows
// one — are composed without either knowing the other exists. Each
// externalizes state to its own data store (the "Externalize" step),
// annotates what an integrator may fill ("Express"), and a Cast integrator
// declaratively wires them ("Exchange").
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/runtime.h"

using namespace knactor;
using common::Value;

/// The Greeter service: greets whoever shows up in its own data store. It
/// never calls another service.
class GreeterReconciler : public core::Reconciler {
 public:
  void on_object_event(core::Knactor& kn,
                       const de::WatchEvent& event) override {
    if (event.type == de::WatchEventType::kDeleted || !event.object.data) {
      return;
    }
    const Value* name = event.object.data->get("name");
    const Value* greeting = event.object.data->get("greeting");
    if (name == nullptr || name->is_null()) return;  // nothing to greet yet
    std::string want = "Hello, " + name->as_string() + "!";
    if (greeting != nullptr && greeting->is_string() &&
        greeting->as_string() == want) {
      return;  // already greeted
    }
    Value patch = Value::object();
    patch.set("greeting", Value(want));
    (void)kn.patch_state("state", std::move(patch));
  }
};

/// The Directory service: publishes who is present.
class DirectoryReconciler : public core::Reconciler {
 public:
  void start(core::Knactor& kn) override {
    Value state = Value::object();
    state.set("visitor", Value("Ada"));
    (void)kn.put_state("state", std::move(state));
  }
};

int main() {
  core::Runtime runtime;

  // 1. A data exchange hosts both services' stores.
  de::ObjectDe& de = runtime.add_object_de("object",
                                           de::ObjectDeProfile::redis());
  de::ObjectStore& greeter_store = de.create_store("knactor-greeter");
  de::ObjectStore& directory_store = de.create_store("knactor-directory");

  // 2. Externalize + Express: register schemas; `name` is integrator-filled.
  (void)runtime.schemas().add_yaml(
      "schema: Quickstart/v1/Greeter\n"
      "name: string # +kr: external\n"
      "greeting: string\n");
  (void)runtime.schemas().add_yaml(
      "schema: Quickstart/v1/Directory\n"
      "visitor: string\n");

  // 3. The knactors: reconciler + own store, nothing else.
  auto greeter = std::make_unique<core::Knactor>(
      "greeter", std::make_unique<GreeterReconciler>());
  greeter->bind_object_store("state", greeter_store);
  runtime.add_knactor(std::move(greeter));

  auto directory = std::make_unique<core::Knactor>(
      "directory", std::make_unique<DirectoryReconciler>());
  directory->bind_object_store("state", directory_store);
  runtime.add_knactor(std::move(directory));

  // 4. Exchange: the integrator is the only place that knows both stores.
  auto dxg = core::Dxg::parse(
      "Input:\n"
      "  G: Quickstart/v1/Greeter\n"
      "  D: Quickstart/v1/Directory\n"
      "DXG:\n"
      "  G:\n"
      "    name: D.visitor\n");
  if (!dxg.ok()) {
    std::fprintf(stderr, "DXG: %s\n", dxg.error().to_string().c_str());
    return 1;
  }
  runtime.add_integrator(std::make_unique<core::CastIntegrator>(
      "quickstart", de, dxg.take(),
      std::map<std::string, de::ObjectStore*>{{"G", &greeter_store},
                                              {"D", &directory_store}}));

  if (auto status = runtime.start_all(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.error().to_string().c_str());
    return 1;
  }
  runtime.run_until_idle();

  const de::StateObject* state = greeter_store.peek("state");
  if (state != nullptr && state->data) {
    const Value* greeting = state->data->get("greeting");
    std::printf("greeter store now holds: %s\n",
                greeting != nullptr ? greeting->as_string().c_str() : "(none)");
  }

  // Swap the visitor; the exchange keeps everything in sync.
  (void)directory_store.patch_sync("knactor:directory", "state",
                                   Value::object({{"visitor", "Grace"}}));
  runtime.run_until_idle();
  state = greeter_store.peek("state");
  std::printf("after directory update:  %s\n",
              state->data->get("greeting")->as_string().c_str());

  std::printf("\nNeither service imported the other: the integrator holds\n"
              "the only cross-service knowledge, and can be reconfigured at\n"
              "run-time (see examples/composition_evolution).\n");
  return 0;
}
