// RPC framework over SimNetwork — the gRPC analog used as the paper's
// API-centric baseline. Requests and responses are encoded with the wire
// codec against schemas held by each endpoint: a client "stub" is the
// (service, method, request/response schema) triple compiled into the
// caller, exactly the development-time coupling the paper critiques.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include <deque>
#include <set>
#include <utility>

#include "common/result.h"
#include "common/value.h"
#include "net/network.h"
#include "net/wire.h"
#include "sim/latency.h"
#include "sim/retry.h"

namespace knactor::net {

struct MethodDescriptor {
  std::string name;           // e.g. "ShipOrder"
  std::string request_type;   // message full name in the SchemaPool
  std::string response_type;
};

struct ServiceDescriptor {
  std::string name;  // e.g. "OnlineRetail.v1.Shipping"
  std::vector<MethodDescriptor> methods;

  [[nodiscard]] const MethodDescriptor* method(std::string_view name) const {
    for (const auto& m : methods) {
      if (m.name == name) return &m;
    }
    return nullptr;
  }
};

/// Maps service names to the network node hosting them (a DNS/service-mesh
/// registry stand-in).
class RpcRegistry {
 public:
  void register_service(const std::string& service, const std::string& node) {
    nodes_[service] = node;
  }
  [[nodiscard]] common::Result<std::string> lookup(
      const std::string& service) const {
    auto it = nodes_.find(service);
    if (it == nodes_.end()) {
      return common::Error::not_found("rpc: no node for service '" + service +
                                      "'");
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> nodes_;
};

/// Server side: hosts services on a network node, decodes requests against
/// its own schema pool, dispatches to handlers, encodes responses.
class RpcServer {
 public:
  /// A handler receives the decoded request and a respond callback; it may
  /// respond immediately or schedule work on the clock first (to model
  /// processing latency).
  using Respond = std::function<void(common::Result<common::Value>)>;
  using Handler = std::function<void(const common::Value&, Respond)>;

  RpcServer(SimNetwork& network, std::string node, const SchemaPool& pool);

  /// Registers a service; `registry` learns this node hosts it.
  common::Status add_service(const ServiceDescriptor& service,
                             RpcRegistry& registry);
  /// Installs the handler for service/method.
  common::Status add_handler(const std::string& service,
                             const std::string& method, Handler handler);

  /// Fixed processing overhead charged before each handler runs
  /// (deserialization, dispatch). Default zero.
  void set_dispatch_overhead(sim::LatencyModel model) { overhead_ = model; }

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  /// Retransmitted requests absorbed by the idempotency cache — each one
  /// was answered from the cached response (or swallowed while the original
  /// was still executing) instead of re-running the handler.
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }

 private:
  // (channel uid, call id) identifies one logical call across retries.
  using CallKey = std::pair<std::uint64_t, std::uint64_t>;

  void on_message(const Message& msg);
  void remember_response(const CallKey& key, const common::Value& payload,
                         std::size_t bytes);

  SimNetwork& network_;
  std::string node_;
  const SchemaPool& pool_;
  std::map<std::string, ServiceDescriptor> services_;
  std::map<std::string, Handler> handlers_;  // "service/method"
  sim::LatencyModel overhead_;
  sim::Rng rng_{0x52504355};
  std::uint64_t served_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  // Exactly-once execution under at-least-once delivery: calls currently
  // executing plus a bounded cache of completed responses for replay.
  std::set<CallKey> in_flight_;
  std::map<CallKey, std::pair<common::Value, std::size_t>> completed_;
  std::deque<CallKey> completed_order_;
  static constexpr std::size_t kCompletedCacheCap = 1024;
};

/// Client side: a channel bound to a node; `call` encodes against the
/// *client's* schema pool (its compiled-in stub view), which may legally
/// drift from the server's — that drift is what the schema-evolution tests
/// and Table 1 T3 exercise.
class RpcChannel {
 public:
  using Callback = std::function<void(common::Result<common::Value>)>;

  RpcChannel(SimNetwork& network, std::string node, const RpcRegistry& registry,
             const SchemaPool& pool);

  /// Default per-call timeout in sim time (0 disables).
  void set_timeout(sim::SimTime timeout) { timeout_ = timeout; }

  /// Enables client-side retries: a timed-out attempt is re-sent with the
  /// same call id after exponential backoff (the server's idempotency cache
  /// makes the retransmission safe). Requires a non-zero timeout to have
  /// any effect — the timeout is what detects a lost attempt.
  void set_retry_policy(sim::RetryPolicy policy) { retry_ = policy; }

  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t retries = 0;        // re-sent attempts
    std::uint64_t timeouts = 0;       // calls that exhausted all attempts
    std::uint64_t failures = 0;       // calls completed with an error
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Issues an asynchronous call; `done` fires on response or timeout.
  /// `stub` describes the method per the client's compiled stubs.
  void call(const ServiceDescriptor& stub, const std::string& method,
            common::Value request, Callback done);

  /// Convenience: issues the call and drives the clock until completion.
  common::Result<common::Value> call_sync(const ServiceDescriptor& stub,
                                          const std::string& method,
                                          common::Value request);

  [[nodiscard]] std::uint64_t calls_issued() const { return next_call_id_ - 1; }

 private:
  struct Pending {
    Callback done;
    std::string response_type;
    Message request;            // kept for retransmission
    int attempts = 1;           // attempts sent so far
    int epoch = 0;              // invalidates stale timeout/resend events
    sim::SimTime first_sent = 0;
  };

  void on_message(const Message& msg);
  void send_attempt(std::uint64_t id);
  void arm_timeout(std::uint64_t id, int epoch);
  void fail(std::uint64_t id, common::Error error);

  SimNetwork& network_;
  std::string node_;
  const RpcRegistry& registry_;
  const SchemaPool& pool_;
  sim::SimTime timeout_ = 0;
  sim::RetryPolicy retry_;
  sim::Rng retry_rng_{0x52435253};
  std::uint64_t next_call_id_ = 1;
  std::uint64_t channel_uid_ = 0;  // disambiguates channels sharing a node
  Stats stats_;
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace knactor::net
