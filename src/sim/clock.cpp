#include "sim/clock.h"

#include <algorithm>

namespace knactor::sim {

void VirtualClock::advance(SimTime delta) {
  if (delta > 0) now_ += delta;
}

void VirtualClock::schedule_after(SimTime delay, Callback cb) {
  schedule_at(now_ + std::max<SimTime>(delay, 0), std::move(cb));
}

void VirtualClock::schedule_at(SimTime when, Callback cb) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(cb)});
}

std::size_t VirtualClock::run_all() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t VirtualClock::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
    ++executed;
  }
  now_ = std::max(now_, deadline);
  return executed;
}

bool VirtualClock::step() {
  if (queue_.empty()) return false;
  // Move the event out before running: the callback may schedule new events.
  // top() only exposes a const ref; moving through it is safe because pop()
  // removes the moved-from element immediately and the heap comparator only
  // reads the (untouched) when/seq fields. Copying here would deep-copy the
  // callback closure — including any captured payload — on every dispatch.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = std::max(now_, ev.when);
  ev.cb();
  return true;
}

}  // namespace knactor::sim
