// Bidirectional type inference for the DXG expression language, run
// against registered store schemas (§5: catching composition errors at
// development time instead of at reconciliation time).
//
// The type lattice mirrors the schema decl vocabulary (de/schema.h):
// string, number, int, bool, object, list, any — plus null for literal
// None. `any` is the top element: it unifies with everything, so fields
// declared `any` (or reads through `object` values, whose shape is
// unknown statically) never produce false positives. The checker is
// deliberately optimistic: it only reports mismatches it can prove from
// declarations, mirroring the runtime's de::type_matches semantics
// (int ⊑ number; arrays satisfy both `list` and `object` decls).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/dxg.h"
#include "de/schema.h"
#include "expr/ast.h"

namespace knactor::analysis {

enum class TypeKind {
  kAny,
  kNull,
  kBool,
  kInt,
  kNumber,  // int or float; int ⊑ number
  kString,
  kList,
  kObject,
};

/// A (possibly element-typed) static type.
struct Type {
  TypeKind kind = TypeKind::kAny;
  /// Element type for kList; null element means list(any).
  std::shared_ptr<const Type> elem;

  static Type any() { return {}; }
  static Type of(TypeKind k) {
    Type t;
    t.kind = k;
    return t;
  }
  static Type list_of(Type element) {
    Type t;
    t.kind = TypeKind::kList;
    t.elem = std::make_shared<const Type>(std::move(element));
    return t;
  }

  [[nodiscard]] bool is_any() const { return kind == TypeKind::kAny; }
  [[nodiscard]] bool is_numeric() const {
    return kind == TypeKind::kInt || kind == TypeKind::kNumber;
  }
};

/// "string", "list(number)", ...
std::string type_to_string(const Type& t);

/// Maps a schema type decl ("string", "number", "int", "bool", "object",
/// "list", "any") to a Type; unknown decls map to any (schema linting
/// reports them separately as KN008).
Type type_from_decl(std::string_view decl);

/// Result of resolving a dotted data reference.
struct RefInfo {
  Type type;
  std::string store;  // store id the reference reads (when known)
  std::string field;  // top-level schema field accessed ("" = whole object)
  std::string error;  // non-empty: unresolvable, with the reason
};

/// Resolves dotted reference paths (root-first segments) to types.
class RefResolver {
 public:
  virtual ~RefResolver() = default;
  [[nodiscard]] virtual RefInfo resolve(
      const std::vector<std::string>& segments) const = 0;
};

/// Resolves a path within one store schema: the first segment is tried as
/// a schema field; failing that, as an object key whose next segment is
/// the field (the DXG's "objects first, fields second" addressing,
/// flattened statically since object keys are runtime data). A single
/// non-field segment is a whole-object read.
RefInfo resolve_schema_ref(const de::StoreSchema& schema,
                           const std::vector<std::string>& segments);

/// Resolver for DXG mapping expressions: roots are Input aliases, `this`
/// (the mapping's target), or `it` (the fan-out key, a string). Aliases
/// without a registered schema resolve to `any` — KN007 warns about them
/// once elsewhere.
class SchemaRefResolver : public RefResolver {
 public:
  SchemaRefResolver(const std::map<std::string, std::string>& inputs,
                    const de::SchemaRegistry* schemas,
                    std::string target_alias);

  [[nodiscard]] RefInfo resolve(
      const std::vector<std::string>& segments) const override;

 private:
  const std::map<std::string, std::string>& inputs_;
  const de::SchemaRegistry* schemas_;
  std::string target_alias_;
};

/// Resolver for pipeline expressions: roots are record fields from a flat
/// field→type map; anything else is an error.
class FieldMapResolver : public RefResolver {
 public:
  // Takes the field map by value: callers routinely pass temporaries, and a
  // stored reference would dangle as soon as the full expression ends.
  explicit FieldMapResolver(std::map<std::string, Type> fields)
      : fields_(std::move(fields)) {}

  [[nodiscard]] RefInfo resolve(
      const std::vector<std::string>& segments) const override;

 private:
  std::map<std::string, Type> fields_;
};

/// Per-context knobs: pipeline analysis re-codes reference and operand
/// errors into the KN2xx space.
struct ExprCheckOptions {
  std::string code_unknown_ref = "KN106";
  std::string code_operand = "KN105";
};

/// Walks one expression AST, reporting diagnostics into `out`. `base` is
/// the spec-file position of the expression's anchor (its YAML key);
/// node-level line/col (threaded by the lexer) offset from there.
class ExprTypeChecker {
 public:
  ExprTypeChecker(const RefResolver& resolver, SourceLoc base,
                  std::string context, std::vector<Diagnostic>& out,
                  ExprCheckOptions options = {});

  /// Infers the expression's type, reporting any internal errors
  /// (unknown refs/functions, operand type conflicts) along the way.
  Type infer(const expr::Node& node);

  /// Checks the expression against an expected (assignment target) type,
  /// descending into ternary branches and list literals so the report
  /// points at the offending subexpression. KN101 for type mismatches,
  /// KN102 for scalar/list cardinality mismatches.
  void check_against(const expr::Node& node, const Type& expected,
                     const std::string& target_desc);

 private:
  [[nodiscard]] SourceLoc loc_of(const expr::Node& node) const;
  void report(const std::string& code, const expr::Node& node,
              const std::string& message, const std::string& hint = {});
  Type infer_name_or_path(const expr::Node& node);
  Type infer_call(const expr::Node& node);
  Type infer_binary(const expr::Node& node);
  Type member_type(const Type& base, const std::string& member,
                   const expr::Node& node);

  const RefResolver& resolver_;
  SourceLoc base_;
  std::string context_;
  std::vector<Diagnostic>& out_;
  ExprCheckOptions options_;
  std::map<std::string, Type> locals_;  // comprehension loop variables
};

/// True when a value of type `actual` may be assigned where `expected` is
/// declared, under the runtime's de::type_matches semantics.
bool assignable(const Type& expected, const Type& actual);

/// Type-checks every mapping of a DXG against the target store schemas:
/// infers each expression (reporting KN10x internally) and checks it
/// against the declared type of the target field. `locate` maps a mapping
/// index to its spec-file position.
void typecheck_dxg(const core::Dxg& dxg, const de::SchemaRegistry& schemas,
                   const std::vector<SourceLoc>& mapping_locs,
                   std::vector<Diagnostic>& out);

}  // namespace knactor::analysis
