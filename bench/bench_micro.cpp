// Microbenchmarks (wall-clock, google-benchmark): the CPU cost of the
// framework's hot paths — value manipulation, JSON/YAML/expression
// parsing, expression evaluation, DXG passes, wire encode/decode, store
// operations, and log pipelines. These complement the virtual-time benches
// (bench_table2, bench_ablation) that reproduce the paper's latency
// shapes.
#include <benchmark/benchmark.h>

#include <atomic>

#include "apps/retail_specs.h"
#include "de/kernel.h"
#include "common/json.h"
#include "common/value.h"
#include "core/cast.h"
#include "core/dxg.h"
#include "core/marketplace.h"
#include "de/query.h"
#include "de/log.h"
#include "de/object.h"
#include "expr/eval.h"
#include "expr/parser.h"
#include "net/wire.h"
#include "yaml/yaml.h"

namespace {

using knactor::common::Value;

Value sample_order(int items) {
  Value::Array lines;
  for (int i = 0; i < items; ++i) {
    Value line = Value::object();
    line.set("name", Value("item-" + std::to_string(i)));
    line.set("qty", Value(i + 1));
    lines.push_back(std::move(line));
  }
  Value order = Value::object();
  order.set("items", Value(std::move(lines)));
  order.set("address", Value("1 Market St, San Francisco, CA"));
  order.set("cost", Value(120.0));
  order.set("currency", Value("USD"));
  return order;
}

void BM_ValueDeepCopy(benchmark::State& state) {
  Value order = sample_order(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Value copy = order;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ValueDeepCopy)->Arg(2)->Arg(16)->Arg(128);

void BM_ValueSharedHandle(benchmark::State& state) {
  auto order = std::make_shared<const Value>(
      sample_order(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    knactor::common::SharedValue handle = order;
    benchmark::DoNotOptimize(handle);
  }
}
BENCHMARK(BM_ValueSharedHandle)->Arg(2)->Arg(16)->Arg(128);

void BM_ValuePathAccess(benchmark::State& state) {
  Value order = sample_order(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(order.at_path("items.3.name"));
  }
}
BENCHMARK(BM_ValuePathAccess);

void BM_JsonSerialize(benchmark::State& state) {
  Value order = sample_order(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(knactor::common::to_json(order));
  }
}
BENCHMARK(BM_JsonSerialize)->Arg(2)->Arg(64);

void BM_JsonParse(benchmark::State& state) {
  std::string text =
      knactor::common::to_json(sample_order(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto v = knactor::common::parse_json(text);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_JsonParse)->Arg(2)->Arg(64);

void BM_YamlParseFig6(benchmark::State& state) {
  for (auto _ : state) {
    auto v = knactor::yaml::parse(knactor::apps::kRetailDxg);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_YamlParseFig6);

void BM_ExprParse(benchmark::State& state) {
  const char* text =
      "currency_convert(S.quote.price, S.quote.currency, this.currency)";
  for (auto _ : state) {
    auto node = knactor::expr::parse(text);
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_ExprParse);

void BM_ExprEvalCompiled(benchmark::State& state) {
  using namespace knactor::expr;
  auto node = parse("\"air\" if C.order.cost > 1000 else \"ground\"").take();
  MapEnv env;
  env.bind("C", Value::object(
                    {{"order", Value::object({{"cost", 1500.0}})}}));
  const auto& fns = FunctionRegistry::builtins();
  for (auto _ : state) {
    auto v = evaluate(*node, env, fns);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExprEvalCompiled);

void BM_ExprListComprehension(benchmark::State& state) {
  using namespace knactor::expr;
  auto node = parse("[item.name for item in C.order.items]").take();
  MapEnv env;
  env.bind("C", Value::object(
                    {{"order", sample_order(static_cast<int>(state.range(0)))}}));
  const auto& fns = FunctionRegistry::builtins();
  for (auto _ : state) {
    auto v = evaluate(*node, env, fns);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExprListComprehension)->Arg(4)->Arg(64);

void BM_DxgParseAndAnalyze(benchmark::State& state) {
  for (auto _ : state) {
    auto dxg = knactor::core::Dxg::parse(knactor::apps::kRetailDxgFull);
    auto issues = knactor::core::analyze(dxg.value(), nullptr);
    benchmark::DoNotOptimize(issues);
  }
}
BENCHMARK(BM_DxgParseAndAnalyze);

void BM_CastPass(benchmark::State& state) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& c = de.create_store("knactor-checkout");
  de::ObjectStore& s = de.create_store("knactor-shipping");
  de::ObjectStore& p = de.create_store("knactor-payment");
  (void)c.put_sync("b", "order", sample_order(4));
  auto dxg = core::Dxg::parse(apps::kRetailDxg);
  core::CastIntegrator cast("bench", de, dxg.take(),
                            {{"C", &c}, {"S", &s}, {"P", &p}});
  for (auto _ : state) {
    auto written = cast.run_pass_sync();
    benchmark::DoNotOptimize(written);
  }
}
BENCHMARK(BM_CastPass);

void BM_WireEncodeDecode(benchmark::State& state) {
  using namespace knactor::net;
  SchemaPool pool;
  MessageDescriptor item;
  item.full_name = "b.Item";
  item.fields = {{1, "name", FieldType::kString},
                 {2, "qty", FieldType::kInt}};
  (void)pool.add(item);
  MessageDescriptor order;
  order.full_name = "b.Order";
  order.fields = {{1, "items", FieldType::kMessage, true, "b.Item"},
                  {2, "address", FieldType::kString},
                  {3, "cost", FieldType::kDouble}};
  (void)pool.add(order);
  Value v = sample_order(static_cast<int>(state.range(0)));
  v.as_object().erase("currency");
  const MessageDescriptor* desc = pool.find("b.Order");
  for (auto _ : state) {
    auto bytes = encode(pool, *desc, v);
    auto decoded = decode(pool, *desc, bytes.value());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WireEncodeDecode)->Arg(2)->Arg(32);

void BM_ObjectStorePut(benchmark::State& state) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& store = de.create_store("s");
  Value v = sample_order(4);
  int i = 0;
  for (auto _ : state) {
    auto version = store.put_sync("b", "k" + std::to_string(i++ % 64), v);
    benchmark::DoNotOptimize(version);
  }
}
BENCHMARK(BM_ObjectStorePut);

void BM_ObjectStoreWatchDispatch(benchmark::State& state) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& store = de.create_store("s");
  std::size_t events = 0;
  for (int w = 0; w < state.range(0); ++w) {
    store.watch("b", "", [&events](const de::WatchEvent&) { ++events; });
  }
  Value v = sample_order(2);
  for (auto _ : state) {
    (void)store.put_sync("b", "k", v);
    clock.run_all();
  }
  benchmark::DoNotOptimize(events);
}
BENCHMARK(BM_ObjectStoreWatchDispatch)->Arg(1)->Arg(16);

void BM_LogPipeline(benchmark::State& state) {
  using namespace knactor;
  std::vector<Value> records;
  for (int i = 0; i < state.range(0); ++i) {
    Value v = Value::object();
    v.set("device", Value(i % 2 == 0 ? "lamp" : "heater"));
    v.set("kwh", Value(0.01 * i));
    records.push_back(std::move(v));
  }
  de::LogQuery q;
  q.push_back(de::LogOp::filter("kwh > 0.5").value());
  q.push_back(de::LogOp::rename({{"kwh", "energy"}}));
  q.push_back(de::LogOp::aggregate({"device"}, {{"total", {"sum", "energy"}}}));
  for (auto _ : state) {
    auto out = de::run_pipeline(q, records);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogPipeline)->Arg(100)->Arg(10000);

void BM_UdfInvocation(benchmark::State& state) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& store = de.create_store("s");
  (void)store.put_sync("b", "k", sample_order(2));
  (void)de.register_udf(
      "b", "touch",
      [](de::UdfContext& ctx, const Value&) -> knactor::common::Result<Value> {
        KN_ASSIGN_OR_RETURN(de::StateObject obj, ctx.get("s", "k"));
        return Value(static_cast<std::int64_t>(obj.version));
      });
  for (auto _ : state) {
    auto r = de.call_udf_sync("b", "touch", Value::object({}));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_UdfInvocation);

void BM_QueryParse(benchmark::State& state) {
  const char* text =
      "where kwh > 0.5 | rename energy=kwh | put e2 := energy * 2 | "
      "sort e2 desc | head 10 | summarize total=sum(e2) by device";
  for (auto _ : state) {
    auto q = knactor::de::parse_query(text);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QueryParse);

void BM_Transact(benchmark::State& state) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  for (int i = 0; i < 4; ++i) {
    de.create_store("s" + std::to_string(i));
  }
  Value v = sample_order(2);
  for (auto _ : state) {
    std::vector<de::ObjectDe::TxnOp> ops;
    for (int i = 0; i < 4; ++i) {
      ops.push_back({"s" + std::to_string(i), "k", v, true, std::nullopt});
    }
    auto r = de.transact_sync("b", std::move(ops));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Transact);

void BM_OptimisticUpdate(benchmark::State& state) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& store = de.create_store("s");
  (void)store.put_sync("b", "k", Value::object({{"n", 0}}));
  for (auto _ : state) {
    auto r = store.update_sync("b", "k", [](const Value& current) {
      Value next = current;
      next.set("n", Value(next.get("n")->as_int() + 1));
      return next;
    });
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimisticUpdate);

// Commit-seq allocation: the serial path bumps one DE-wide counter per
// commit (a shared atomic under a real multi-core kernel); the epoch
// pipeline reserves a whole block once per epoch and stamps ops
// shard-locally from the base. Arg = epoch size; per-op cost of the
// reserved variant should amortize toward zero as the epoch grows.
void BM_CommitSeqGlobalCounter(benchmark::State& state) {
  const std::size_t epoch = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> commit_seq{0};
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < epoch; ++i) {
      sink ^= commit_seq.fetch_add(1, std::memory_order_seq_cst);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * epoch);
}
BENCHMARK(BM_CommitSeqGlobalCounter)->Arg(1)->Arg(64)->Arg(512);

void BM_CommitSeqShardReserved(benchmark::State& state) {
  const std::size_t epoch = static_cast<std::size_t>(state.range(0));
  const std::size_t shards = 8;
  std::atomic<std::uint64_t> commit_seq{0};
  std::uint64_t sink = 0;
  for (auto _ : state) {
    // One contended bump per epoch; each shard then stamps its slice from
    // the reserved base with plain arithmetic (kernel::reserve_commit_seqs).
    const std::uint64_t base = commit_seq.fetch_add(
        static_cast<std::uint64_t>(epoch), std::memory_order_seq_cst);
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t i = s; i < epoch; i += shards) {
        sink ^= base + i;
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * epoch);
}
BENCHMARK(BM_CommitSeqShardReserved)->Arg(1)->Arg(64)->Arg(512);

// The same comparison through the real kernel APIs (virtual-clock kernel,
// single-threaded): next_commit_seq() per op vs one reserve_commit_seqs(n)
// per epoch.
void BM_CommitSeqKernelReserve(benchmark::State& state) {
  using namespace knactor;
  const std::uint64_t epoch = static_cast<std::uint64_t>(state.range(0));
  sim::VirtualClock clock;
  de::Kernel kernel(clock, 42);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const std::uint64_t base = kernel.reserve_commit_seqs(epoch);
    for (std::uint64_t i = 0; i < epoch; ++i) sink ^= base + i;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * epoch);
}
BENCHMARK(BM_CommitSeqKernelReserve)->Arg(64)->Arg(512);

void BM_MarketplaceShopping(benchmark::State& state) {
  using namespace knactor;
  core::Marketplace market;
  for (int i = 0; i < state.range(0); ++i) {
    core::Package p;
    p.name = "kn-" + std::to_string(i);
    p.version = "1.0";
    p.kind = core::Package::Kind::kKnactor;
    p.schema_yamls = {"schema: T/v1/S" + std::to_string(i) + "\nx: int\n"};
    (void)market.publish(std::move(p));
  }
  core::Package integ;
  integ.name = "integ";
  integ.version = "1.0";
  integ.kind = core::Package::Kind::kIntegrator;
  integ.dxg_yaml = "Input:\n  A: T/v1/S0\nDXG:\n  A:\n    x: 1 + 1\n";
  (void)market.publish(std::move(integ));
  for (auto _ : state) {
    auto hits = market.integrators_for("T/v1/S0");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MarketplaceShopping)->Arg(10)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
