#include <gtest/gtest.h>

#include "core/cast.h"
#include "de/object.h"

namespace knactor::de {
namespace {

using common::Value;

class TransactTest : public ::testing::Test {
 protected:
  TransactTest() : de_(clock_, ObjectDeProfile::instant()) {
    a_ = &de_.create_store("a");
    b_ = &de_.create_store("b");
  }

  sim::VirtualClock clock_;
  ObjectDe de_;
  ObjectStore* a_ = nullptr;
  ObjectStore* b_ = nullptr;
};

TEST_F(TransactTest, AppliesAllWrites) {
  std::vector<ObjectDe::TxnOp> ops;
  ops.push_back({"a", "k1", Value::object({{"x", 1}}), true, std::nullopt});
  ops.push_back({"b", "k2", Value::object({{"y", 2}}), true, std::nullopt});
  auto r = de_.transact_sync("me", std::move(ops));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(a_->peek("k1")->data->get("x")->as_int(), 1);
  EXPECT_EQ(b_->peek("k2")->data->get("y")->as_int(), 2);
}

TEST_F(TransactTest, UnknownStoreAbortsEverything) {
  std::vector<ObjectDe::TxnOp> ops;
  ops.push_back({"a", "k1", Value::object({{"x", 1}}), true, std::nullopt});
  ops.push_back({"ghost", "k2", Value::object({}), true, std::nullopt});
  auto r = de_.transact_sync("me", std::move(ops));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(a_->peek("k1"), nullptr);  // nothing applied
}

TEST_F(TransactTest, VersionConflictAbortsEverything) {
  (void)a_->put_sync("me", "k1", Value::object({{"x", 0}}));
  std::vector<ObjectDe::TxnOp> ops;
  ops.push_back({"b", "k2", Value::object({{"y", 2}}), true, std::nullopt});
  ObjectDe::TxnOp guarded{"a", "k1", Value::object({{"x", 1}}), true,
                          std::uint64_t{9999}};
  ops.push_back(std::move(guarded));
  auto r = de_.transact_sync("me", std::move(ops));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, common::Error::Code::kFailedPrecondition);
  EXPECT_EQ(b_->peek("k2"), nullptr);
  EXPECT_EQ(a_->peek("k1")->data->get("x")->as_int(), 0);
}

TEST_F(TransactTest, RbacDenialAbortsEverything) {
  Rbac& rbac = de_.rbac();
  Role only_a;
  only_a.name = "only-a";
  PolicyRule rule;
  rule.store = "a";
  rule.verbs = {Verb::kUpdate};
  only_a.rules.push_back(rule);
  ASSERT_TRUE(rbac.add_role(only_a).ok());
  ASSERT_TRUE(rbac.bind("limited", "only-a").ok());
  rbac.set_enabled(true);

  std::vector<ObjectDe::TxnOp> ops;
  ops.push_back({"a", "k1", Value::object({{"x", 1}}), true, std::nullopt});
  ops.push_back({"b", "k2", Value::object({{"y", 2}}), true, std::nullopt});
  auto r = de_.transact_sync("limited", std::move(ops));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, common::Error::Code::kPermissionDenied);
  EXPECT_EQ(a_->peek("k1"), nullptr);
}

TEST_F(TransactTest, WatchesFireAfterFullCommit) {
  // An observer of store `a` must already see store `b`'s write when its
  // event for `a` arrives (atomicity from the observer's perspective).
  bool b_was_visible = false;
  a_->watch("me", "", [&](const WatchEvent&) {
    b_was_visible = b_->peek("k2") != nullptr;
  });
  std::vector<ObjectDe::TxnOp> ops;
  ops.push_back({"a", "k1", Value::object({{"x", 1}}), true, std::nullopt});
  ops.push_back({"b", "k2", Value::object({{"y", 2}}), true, std::nullopt});
  ASSERT_TRUE(de_.transact_sync("me", std::move(ops)).ok());
  clock_.run_all();
  EXPECT_TRUE(b_was_visible);
}

TEST_F(TransactTest, TriggersFireOncePerWrite) {
  int fired = 0;
  ASSERT_TRUE(de_.register_udf("me", "count",
                               [&fired](UdfContext&, const Value&)
                                   -> common::Result<Value> {
                                 ++fired;
                                 return Value(nullptr);
                               })
                  .ok());
  ASSERT_TRUE(de_.add_trigger("a", "", "count").ok());
  std::vector<ObjectDe::TxnOp> ops;
  ops.push_back({"a", "k1", Value::object({{"x", 1}}), true, std::nullopt});
  ops.push_back({"a", "k2", Value::object({{"x", 2}}), true, std::nullopt});
  ASSERT_TRUE(de_.transact_sync("me", std::move(ops)).ok());
  clock_.run_all();
  EXPECT_EQ(fired, 2);
}

TEST_F(TransactTest, MergeAndReplaceSemantics) {
  (void)a_->put_sync("me", "k", Value::object({{"keep", 1}, {"old", 2}}));
  std::vector<ObjectDe::TxnOp> merge_ops;
  merge_ops.push_back({"a", "k", Value::object({{"new", 3}}), true,
                       std::nullopt});
  ASSERT_TRUE(de_.transact_sync("me", std::move(merge_ops)).ok());
  EXPECT_NE(a_->peek("k")->data->get("keep"), nullptr);
  EXPECT_NE(a_->peek("k")->data->get("new"), nullptr);

  std::vector<ObjectDe::TxnOp> replace_ops;
  replace_ops.push_back({"a", "k", Value::object({{"only", 4}}), false,
                         std::nullopt});
  ASSERT_TRUE(de_.transact_sync("me", std::move(replace_ops)).ok());
  EXPECT_EQ(a_->peek("k")->data->get("keep"), nullptr);
  EXPECT_NE(a_->peek("k")->data->get("only"), nullptr);
}

TEST_F(TransactTest, ChargesOneWriteRoundTrip) {
  ObjectDe timed(clock_, ObjectDeProfile::redis());
  timed.create_store("a");
  timed.create_store("b");
  timed.create_store("c");
  sim::SimTime t0 = clock_.now();
  std::vector<ObjectDe::TxnOp> ops;
  for (const char* s : {"a", "b", "c"}) {
    ops.push_back({s, "k", Value::object({{"x", 1}}), true, std::nullopt});
  }
  ASSERT_TRUE(timed.transact_sync("me", std::move(ops)).ok());
  sim::SimTime txn_time = clock_.now() - t0;
  // One round trip (~2.7 ms), not three.
  EXPECT_LT(txn_time, sim::from_ms(4.0));
  EXPECT_GT(txn_time, sim::from_ms(1.5));
}

TEST_F(TransactTest, UpdateSyncReadModifyWrite) {
  (void)a_->put_sync("me", "counter", Value::object({{"n", 0}}));
  for (int i = 0; i < 5; ++i) {
    auto r = a_->update_sync("me", "counter", [](const Value& current) {
      Value next = current.is_object() ? current : Value::object();
      std::int64_t n = 0;
      if (const Value* v = next.get("n"); v != nullptr && v->is_int()) {
        n = v->as_int();
      }
      next.set("n", Value(n + 1));
      return next;
    });
    ASSERT_TRUE(r.ok()) << r.error().to_string();
  }
  EXPECT_EQ(a_->peek("counter")->data->get("n")->as_int(), 5);
}

TEST_F(TransactTest, UpdateSyncCreatesMissingObject) {
  auto r = a_->update_sync("me", "fresh", [](const Value&) {
    return Value::object({{"born", true}});
  });
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(a_->peek("fresh")->data->get("born")->as_bool());
}

TEST_F(TransactTest, UpdateSyncRetriesThroughInterferingWriter) {
  (void)a_->put_sync("me", "k", Value::object({{"n", 0}}));
  // An interfering writer bumps the version between our read and write by
  // hooking the store's watch (fires on our first failed attempt's read —
  // we emulate interference by mutating on a schedule).
  bool interfered = false;
  int calls = 0;
  auto r = a_->update_sync("me", "k", [&](const Value& current) {
    ++calls;
    if (!interfered) {
      interfered = true;
      // Direct conflicting write while our optimistic txn is in flight.
      (void)a_->put_sync("me", "k", Value::object({{"n", 100}}));
    }
    Value next = current;
    std::int64_t n = next.get("n") != nullptr ? next.get("n")->as_int() : 0;
    next.set("n", Value(n + 1));
    return next;
  });
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  // First attempt read n=0 but conflicted; retry read n=100 and wrote 101.
  EXPECT_GE(calls, 2);
  EXPECT_EQ(a_->peek("k")->data->get("n")->as_int(), 101);
}

TEST_F(TransactTest, CastAtomicWritesProduceSameState) {
  // The retail-style multi-store pass with atomic_writes on: same result,
  // all-at-once visibility.
  core::CastIntegrator::Options options;
  options.atomic_writes = true;
  auto dxg = core::Dxg::parse(
      "Input:\n  A: a\n  B: b\nDXG:\n"
      "  B:\n    copied: A.value\n    doubled: A.value * 2\n");
  core::CastIntegrator cast("atomic", de_, dxg.take(),
                            {{"A", a_}, {"B", b_}}, options);
  ASSERT_TRUE(cast.start().ok());
  (void)a_->put_sync("svc", "state", Value::object({{"value", 21}}));
  clock_.run_all();
  ASSERT_NE(b_->peek("state"), nullptr);
  EXPECT_EQ(b_->peek("state")->data->get("copied")->as_int(), 21);
  EXPECT_EQ(b_->peek("state")->data->get("doubled")->as_int(), 42);
  EXPECT_EQ(cast.stats().fields_written, 2u);
}

}  // namespace
}  // namespace knactor::de
