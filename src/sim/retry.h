// Retry policy shared by the resilience layer: exponential backoff with
// jitter and an optional wall-clock budget. Used by net::RpcChannel (client
// re-sends), net::Broker (ack-based redelivery), and the Cast/Sync
// integrators (exchange-pass retry). A default-constructed policy is
// disabled — callers that never opt in keep their original behavior.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/clock.h"
#include "sim/random.h"

namespace knactor::sim {

struct RetryPolicy {
  int max_attempts = 1;  // total attempts, including the first; 1 = no retry
  SimTime initial_backoff = kMillisecond;
  double multiplier = 2.0;
  SimTime max_backoff = kSecond;
  double jitter = 0.1;  // +/- fraction of the computed backoff
  SimTime budget = 0;   // max elapsed since first attempt; 0 = unlimited

  [[nodiscard]] static RetryPolicy none() { return {}; }
  [[nodiscard]] static RetryPolicy standard(int attempts = 5) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }

  /// `failed_attempts` is how many attempts have failed so far (>= 1),
  /// `elapsed` the sim time since the first attempt started.
  [[nodiscard]] bool should_retry(int failed_attempts, SimTime elapsed) const {
    if (failed_attempts >= max_attempts) return false;
    if (budget > 0 && elapsed >= budget) return false;
    return true;
  }

  /// Backoff before attempt `failed_attempts + 1`. Deterministic given the
  /// caller's Rng state.
  [[nodiscard]] SimTime backoff(int failed_attempts, Rng& rng) const {
    double base = static_cast<double>(initial_backoff) *
                  std::pow(multiplier, failed_attempts - 1);
    base = std::min(base, static_cast<double>(max_backoff));
    if (jitter > 0.0) {
      base *= 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
    }
    return std::max<SimTime>(1, static_cast<SimTime>(base));
  }
};

}  // namespace knactor::sim
