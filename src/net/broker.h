// Topic-based Pub/Sub broker over SimNetwork — the Kafka/EMQX analog, the
// paper's second API-centric baseline (used by the smart-home app). The
// broker runs on its own node; publishes hop publisher -> broker -> each
// subscriber, paying link latency twice. Messages on a topic are opaque
// bytes (schema agreed out of band by publisher and subscribers — the same
// implicit coupling as RPC, expressed through topics + schemas).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "net/network.h"
#include "sim/retry.h"

namespace knactor::net {

class Broker {
 public:
  using Handler = std::function<void(const std::string& topic,
                                     const common::Value& message)>;

  Broker(SimNetwork& network, std::string node);

  /// Subscribes `subscriber_node` to a topic. The handler runs on delivery
  /// at the subscriber. Wildcard '#' suffix matches a topic prefix
  /// (MQTT-style, e.g. "home/+" is not supported, "home/#" is).
  void subscribe(const std::string& topic, const std::string& subscriber_node,
                 Handler handler);
  void unsubscribe(const std::string& topic,
                   const std::string& subscriber_node);

  /// Publishes from `publisher_node`. Returns the number of subscribers the
  /// broker will fan out to (0 is fine — fire and forget).
  common::Result<std::size_t> publish(const std::string& publisher_node,
                                      const std::string& topic,
                                      common::Value message);

  /// Retains the last message per topic and replays it to new subscribers
  /// (MQTT retained-message semantics), when enabled.
  void set_retain(bool retain) { retain_ = retain; }

  /// Opt-in at-least-once delivery (QoS 1 analog): every broker→subscriber
  /// delivery carries a delivery id the subscriber acks; unacked deliveries
  /// are re-sent with backoff per the policy, and subscriber-side dedup
  /// keeps the handler at exactly-once per delivery id. Disabled by default
  /// — fire-and-forget, no acks on the wire, no behavior change.
  void set_retry_policy(sim::RetryPolicy policy) { retry_ = policy; }
  /// How long to wait for an ack before re-sending (only with a policy).
  void set_delivery_timeout(sim::SimTime timeout) {
    delivery_timeout_ = timeout;
  }

  [[nodiscard]] std::uint64_t messages_routed() const { return routed_; }
  [[nodiscard]] std::uint64_t redeliveries() const { return redeliveries_; }
  [[nodiscard]] std::uint64_t delivery_failures() const {
    return delivery_failures_;
  }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }

 private:
  struct Subscription {
    std::string node;
    Handler handler;
  };

  struct PendingDelivery {
    std::string topic;
    common::Value message;
    std::string node;
    int attempts = 1;
    int epoch = 0;  // invalidates stale timeout/resend events
    sim::SimTime first_sent = 0;
  };

  void on_message(const Message& msg);
  void on_ack(const Message& msg);
  void on_deliver(const std::string& subscriber_node, const Message& msg);
  [[nodiscard]] std::vector<const Subscription*> match(
      const std::string& topic) const;
  void deliver(const std::string& topic, const common::Value& message,
               const std::string& subscriber_node);
  void send_delivery(std::uint64_t delivery_id);
  void arm_delivery_timeout(std::uint64_t delivery_id, int epoch);
  void mark_seen(const std::string& subscriber_node, std::uint64_t delivery_id);

  SimNetwork& network_;
  std::string node_;
  std::map<std::string, std::vector<Subscription>> subs_;  // exact topic
  std::map<std::string, std::vector<Subscription>> prefix_subs_;  // "a/#"
  std::map<std::string, common::Value> retained_;
  bool retain_ = false;
  std::uint64_t routed_ = 0;
  sim::RetryPolicy retry_;
  sim::SimTime delivery_timeout_ = 20 * sim::kMillisecond;
  sim::Rng retry_rng_{0x42524b52};
  std::uint64_t next_delivery_id_ = 1;
  std::uint64_t redeliveries_ = 0;
  std::uint64_t delivery_failures_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::map<std::uint64_t, PendingDelivery> pending_;
  // Per-subscriber-node dedup of delivery ids (bounded FIFO).
  std::map<std::string, std::set<std::uint64_t>> seen_;
  std::map<std::string, std::deque<std::uint64_t>> seen_order_;
  static constexpr std::size_t kSeenCap = 4096;
};

}  // namespace knactor::net
