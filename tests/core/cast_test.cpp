#include "core/cast.h"

#include <gtest/gtest.h>

namespace knactor::core {
namespace {

using common::Value;

class CastTest : public ::testing::Test {
 protected:
  CastTest() : de_(clock_, de::ObjectDeProfile::instant()) {
    src_ = &de_.create_store("src-store");
    dst_ = &de_.create_store("dst-store");
  }

  static CastIntegrator::Options default_options() {
    CastIntegrator::Options options;
    options.compute = sim::LatencyModel();  // zero-cost passes for tests
    return options;
  }

  std::unique_ptr<CastIntegrator> make_cast(
      const std::string& spec,
      CastIntegrator::Options options = default_options()) {
    auto dxg = Dxg::parse(spec);
    EXPECT_TRUE(dxg.ok()) << (dxg.ok() ? "" : dxg.error().to_string());
    return std::make_unique<CastIntegrator>(
        "test", de_, dxg.take(),
        std::map<std::string, de::ObjectStore*>{{"A", src_}, {"B", dst_}},
        options, nullptr, nullptr);
  }

  sim::VirtualClock clock_;
  de::ObjectDe de_;
  de::ObjectStore* src_ = nullptr;
  de::ObjectStore* dst_ = nullptr;
};

constexpr const char* kSimpleSpec =
    "Input:\n  A: src\n  B: dst\nDXG:\n  B:\n    copied: A.value\n";

TEST_F(CastTest, CopiesFieldAcrossStores) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 42}}));
  clock_.run_all();
  const de::StateObject* out = dst_->peek("state");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->data->get("copied")->as_int(), 42);
  EXPECT_GE(cast->stats().passes, 1u);
  EXPECT_EQ(cast->stats().fields_written, 1u);
}

TEST_F(CastTest, PicksUpPreexistingState) {
  (void)src_->put_sync("svc", "state", Value::object({{"value", 7}}));
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->start().ok());
  clock_.run_all();
  ASSERT_NE(dst_->peek("state"), nullptr);
  EXPECT_EQ(dst_->peek("state")->data->get("copied")->as_int(), 7);
}

TEST_F(CastTest, ConvergesWithoutOscillation) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 1}}));
  clock_.run_all();
  std::uint64_t passes = cast->stats().passes;
  std::uint64_t written = cast->stats().fields_written;
  // No further activity once in sync.
  clock_.run_all();
  EXPECT_EQ(cast->stats().fields_written, written);
  EXPECT_LE(cast->stats().passes, passes + 2);
}

TEST_F(CastTest, NotReadyMappingsSkipped) {
  auto cast = make_cast(
      "Input:\n  A: src\n  B: dst\nDXG:\n  B:\n    sum: A.x + A.y\n");
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "state", Value::object({{"x", 1}}));
  clock_.run_all();
  EXPECT_EQ(dst_->peek("state"), nullptr);  // y missing -> no write
  EXPECT_GE(cast->stats().fields_skipped_not_ready, 1u);
  (void)src_->patch_sync("svc", "state", Value::object({{"y", 2}}));
  clock_.run_all();
  ASSERT_NE(dst_->peek("state"), nullptr);
  EXPECT_EQ(dst_->peek("state")->data->get("sum")->as_int(), 3);
}

TEST_F(CastTest, DependencyChainsResolveAcrossRounds) {
  // B.second depends on B.first which depends on A.seed: two rounds.
  auto cast = make_cast(
      "Input:\n  A: src\n  B: dst\nDXG:\n"
      "  B:\n    first: A.seed * 2\n    second: B.first + 1\n");
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "state", Value::object({{"seed", 10}}));
  clock_.run_all();
  const de::StateObject* out = dst_->peek("state");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->data->get("first")->as_int(), 20);
  EXPECT_EQ(out->data->get("second")->as_int(), 21);
}

TEST_F(CastTest, ThisRefersToTargetObject) {
  auto cast = make_cast(
      "Input:\n  A: src\n  B: dst\nDXG:\n"
      "  B:\n    doubled: this.base * 2\n");
  ASSERT_TRUE(cast->start().ok());
  (void)dst_->put_sync("svc", "state", Value::object({{"base", 6}}));
  clock_.run_all();
  EXPECT_EQ(dst_->peek("state")->data->get("doubled")->as_int(), 12);
}

TEST_F(CastTest, NamedTargetObject) {
  auto cast = make_cast(
      "Input:\n  A: src\n  B: dst\nDXG:\n  B.report:\n    total: A.value\n");
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 5}}));
  clock_.run_all();
  ASSERT_NE(dst_->peek("report"), nullptr);
  EXPECT_EQ(dst_->peek("report")->data->get("total")->as_int(), 5);
}

TEST_F(CastTest, ReadsNamedObjectsOfSourceStore) {
  auto cast = make_cast(
      "Input:\n  A: src\n  B: dst\nDXG:\n  B:\n    got: A.order.total\n");
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "order", Value::object({{"total", 99}}));
  clock_.run_all();
  EXPECT_EQ(dst_->peek("state")->data->get("got")->as_int(), 99);
}

TEST_F(CastTest, PatchPreservesServiceOwnedFields) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->start().ok());
  (void)dst_->put_sync("svc", "state", Value::object({{"own", "mine"}}));
  (void)src_->put_sync("svc", "state", Value::object({{"value", 1}}));
  clock_.run_all();
  const de::StateObject* out = dst_->peek("state");
  EXPECT_EQ(out->data->get("own")->as_string(), "mine");
  EXPECT_EQ(out->data->get("copied")->as_int(), 1);
}

TEST_F(CastTest, StartFailsWhenAliasUnbound) {
  auto dxg = Dxg::parse("Input:\n  A: src\n  Z: zap\nDXG:\n  A:\n    x: Z.v\n");
  CastIntegrator cast("test", de_, dxg.take(),
                      {{"A", src_}});
  auto status = cast.start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Error::Code::kFailedPrecondition);
}

TEST_F(CastTest, StrictModeRejectsCycles) {
  CastIntegrator::Options options;
  options.strict = true;
  auto dxg = Dxg::parse(
      "Input:\n  A: src\n  B: dst\nDXG:\n"
      "  A:\n    x: B.y\n  B:\n    y: A.x\n");
  CastIntegrator cast("test", de_, dxg.take(),
                      {{"A", src_}, {"B", dst_}}, options);
  EXPECT_FALSE(cast.start().ok());
}

TEST_F(CastTest, RuntimeReconfigurationSwapsLogic) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 5}}));
  clock_.run_all();
  EXPECT_EQ(dst_->peek("state")->data->get("copied")->as_int(), 5);

  // Reconfigure: now also compute a derived field (the T2-style change).
  ASSERT_TRUE(cast->reconfigure_yaml(
                       "Input:\n  A: src\n  B: dst\nDXG:\n"
                       "  B:\n    copied: A.value\n"
                       "    flag: '\"big\" if A.value > 3 else \"small\"'\n")
                  .ok());
  clock_.run_all();
  EXPECT_EQ(dst_->peek("state")->data->get("flag")->as_string(), "big");
  EXPECT_EQ(cast->stats().reconfigurations, 1u);
}

TEST_F(CastTest, ReconfigureRejectsUnboundAlias) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->start().ok());
  auto status = cast->reconfigure_yaml(
      "Input:\n  A: src\n  New: other\nDXG:\n  A:\n    x: New.y\n");
  EXPECT_FALSE(status.ok());
  // After binding the store, the same reconfiguration succeeds.
  de::ObjectStore& other = de_.create_store("other-store");
  cast->bind_store("New", other);
  EXPECT_TRUE(cast->reconfigure_yaml(
                      "Input:\n  A: src\n  New: other\nDXG:\n  A:\n    x: New.y\n")
                  .ok());
}

TEST_F(CastTest, StopHaltsProcessing) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->start().ok());
  clock_.run_all();
  cast->stop();
  (void)src_->put_sync("svc", "state", Value::object({{"value", 9}}));
  clock_.run_all();
  EXPECT_EQ(dst_->peek("state"), nullptr);
}

TEST_F(CastTest, PollingModeRunsOnInterval) {
  CastIntegrator::Options options;
  options.poll_interval = sim::from_ms(100);
  auto cast = make_cast(kSimpleSpec, options);
  ASSERT_TRUE(cast->start().ok());
  // Polling reschedules forever, so drive the clock by bounded windows.
  clock_.run_until(clock_.now() + sim::from_ms(50));  // initial pass only
  (void)src_->put_sync("svc", "state", Value::object({{"value", 3}}));
  clock_.run_until(clock_.now() + sim::from_ms(500));
  ASSERT_NE(dst_->peek("state"), nullptr);
  EXPECT_EQ(dst_->peek("state")->data->get("copied")->as_int(), 3);
  cast->stop();
}

TEST_F(CastTest, DebounceCoalescesBursts) {
  // Without debounce, a burst of N writes triggers ~N passes; with it, the
  // burst collapses into one (plus the initial pass at start).
  auto run_burst = [this](sim::SimTime debounce) -> std::uint64_t {
    sim::VirtualClock clock;
    de::ObjectDe de(clock, de::ObjectDeProfile::redis());
    de::ObjectStore& src = de.create_store("src-store");
    de::ObjectStore& dst = de.create_store("dst-store");
    auto dxg = Dxg::parse(kSimpleSpec);
    CastIntegrator::Options options;
    options.debounce = debounce;
    CastIntegrator cast("db", de, dxg.take(), {{"A", &src}, {"B", &dst}},
                        options);
    EXPECT_TRUE(cast.start().ok());
    clock.run_all();
    std::uint64_t before = cast.stats().passes;
    // Burst: 10 writes spaced 2 ms apart (each would trigger its own pass
    // without debouncing; a 50 ms window swallows the whole burst).
    for (int i = 0; i < 10; ++i) {
      clock.schedule_after(sim::from_ms(2.0 * i), [&src, i]() {
        src.put("svc", "state", Value::object({{"value", i}}),
                [](common::Result<std::uint64_t>) {});
      });
    }
    clock.run_all();
    std::uint64_t passes = cast.stats().passes - before;
    // Either way the last write propagates.
    EXPECT_EQ(dst.peek("state")->data->get("copied")->as_int(),
              src.peek("state")->data->get("value")->as_int());
    cast.stop();
    return passes;
  };
  std::uint64_t without = run_burst(0);
  std::uint64_t with = run_burst(sim::from_ms(50.0));
  EXPECT_GT(without, 3u);
  EXPECT_LE(with, 3u);
  EXPECT_LT(with, without);
}

TEST_F(CastTest, DebouncedEventsStillPropagate) {
  CastIntegrator::Options options;
  options.debounce = sim::from_ms(10.0);
  auto cast = make_cast(kSimpleSpec, options);
  ASSERT_TRUE(cast->start().ok());
  clock_.run_all();
  (void)src_->put_sync("svc", "state", Value::object({{"value", 7}}));
  clock_.run_all();
  ASSERT_NE(dst_->peek("state"), nullptr);
  EXPECT_EQ(dst_->peek("state")->data->get("copied")->as_int(), 7);
}

TEST_F(CastTest, ComputeLatencyCharged) {
  CastIntegrator::Options options;
  options.compute = sim::LatencyModel::constant_ms(5.0);
  auto cast = make_cast(kSimpleSpec, options);
  ASSERT_TRUE(cast->start().ok());
  sim::SimTime start = clock_.now();
  (void)src_->put_sync("svc", "state", Value::object({{"value", 1}}));
  clock_.run_all();
  EXPECT_GE(clock_.now() - start, sim::from_ms(5.0));
}

TEST_F(CastTest, EvalErrorsCountedNotFatal) {
  auto cast = make_cast(
      "Input:\n  A: src\n  B: dst\nDXG:\n"
      "  B:\n    bad: A.value + \"str\"\n    good: A.value\n");
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 2}}));
  clock_.run_all();
  EXPECT_GE(cast->stats().eval_errors, 1u);
  ASSERT_NE(dst_->peek("state"), nullptr);
  EXPECT_EQ(dst_->peek("state")->data->get("good")->as_int(), 2);
}

// ---------------------------------------------------------------------------
// Push-down.
// ---------------------------------------------------------------------------

TEST_F(CastTest, PushdownProducesSameResult) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->enable_pushdown().ok());
  ASSERT_TRUE(cast->start().ok());
  EXPECT_TRUE(cast->pushdown_enabled());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 11}}));
  clock_.run_all();
  ASSERT_NE(dst_->peek("state"), nullptr);
  EXPECT_EQ(dst_->peek("state")->data->get("copied")->as_int(), 11);
}

TEST_F(CastTest, PushdownRequiresUdfSupport) {
  de::ObjectDe apiserver(clock_, de::ObjectDeProfile::apiserver());
  de::ObjectStore& a = apiserver.create_store("src-store");
  de::ObjectStore& b = apiserver.create_store("dst-store");
  auto dxg = Dxg::parse(kSimpleSpec);
  CastIntegrator cast("test", apiserver, dxg.take(), {{"A", &a}, {"B", &b}});
  auto status = cast.enable_pushdown();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, common::Error::Code::kFailedPrecondition);
}

TEST_F(CastTest, PushdownUsesEngineOpsNotClientOps) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->enable_pushdown().ok());
  ASSERT_TRUE(cast->start().ok());
  std::uint64_t client_reads_before = de_.stats().reads;
  std::uint64_t lists_before = de_.stats().lists;
  (void)src_->put_sync("svc", "state", Value::object({{"value", 1}}));
  clock_.run_all();
  EXPECT_EQ(de_.stats().reads, client_reads_before);
  EXPECT_EQ(de_.stats().lists, lists_before);
  EXPECT_GT(de_.stats().engine_ops, 0u);
}

TEST_F(CastTest, PushdownIsFasterOnRedisProfile) {
  de::ObjectDe redis(clock_, de::ObjectDeProfile::redis());
  de::ObjectStore& a = redis.create_store("src-store");
  de::ObjectStore& b = redis.create_store("dst-store");

  auto run_exchange = [&](bool pushdown) -> sim::SimTime {
    auto dxg = Dxg::parse(kSimpleSpec);
    CastIntegrator cast("test", redis, dxg.take(), {{"A", &a}, {"B", &b}});
    if (pushdown) {
      EXPECT_TRUE(cast.enable_pushdown().ok());
    }
    EXPECT_TRUE(cast.start().ok());
    clock_.run_all();
    sim::SimTime start = clock_.now();
    (void)a.put_sync("svc", "state",
                     Value::object({{"value", pushdown ? 1 : 2}}));
    clock_.run_all();
    sim::SimTime elapsed = clock_.now() - start;
    cast.stop();
    cast.disable_pushdown();
    (void)a.remove_sync("svc", "state");
    (void)b.remove_sync("svc", "state");
    clock_.run_all();
    return elapsed;
  };

  sim::SimTime watch_driven = run_exchange(false);
  sim::SimTime pushdown = run_exchange(true);
  EXPECT_LT(pushdown, watch_driven);
}

TEST_F(CastTest, DisablePushdownRestoresWatches) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->start().ok());
  clock_.run_all();
  ASSERT_TRUE(cast->enable_pushdown().ok());
  cast->disable_pushdown();
  EXPECT_FALSE(cast->pushdown_enabled());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 4}}));
  clock_.run_all();
  EXPECT_EQ(dst_->peek("state")->data->get("copied")->as_int(), 4);
}

TEST_F(CastTest, PushdownReconfigurationTakesEffect) {
  auto cast = make_cast(kSimpleSpec);
  ASSERT_TRUE(cast->enable_pushdown().ok());
  ASSERT_TRUE(cast->start().ok());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 2}}));
  clock_.run_all();
  ASSERT_TRUE(cast->reconfigure_yaml(
                      "Input:\n  A: src\n  B: dst\nDXG:\n"
                      "  B:\n    copied: A.value * 100\n")
                  .ok());
  EXPECT_TRUE(cast->pushdown_enabled());
  (void)src_->put_sync("svc", "state", Value::object({{"value", 3}}));
  clock_.run_all();
  EXPECT_EQ(dst_->peek("state")->data->get("copied")->as_int(), 300);
}

TEST_F(CastTest, RunPassSyncManualDrive) {
  auto cast = make_cast(kSimpleSpec);
  // Never started: manual passes still work.
  (void)src_->put_sync("svc", "state", Value::object({{"value", 6}}));
  auto written = cast->run_pass_sync();
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value(), 1u);
  EXPECT_EQ(dst_->peek("state")->data->get("copied")->as_int(), 6);
}

}  // namespace
}  // namespace knactor::core
