// Reproduces Table 2: latency of completing a shipment request in the
// online retail app, broken down by stage, for RPC and three Knactor
// configurations (K-apiserver, K-redis, K-redis-udf).
//
//   Setup        C-I     I    I-S      S   Prop.   Total   (ms)
//
// Stage definitions (matching §4):
//   C-I : Checkout's state write committed and read by the integrator
//   I   : integrator processing (or the DE-side function in -udf)
//   I-S : integrator's write into Shipping's data store
//   S   : shipment processing (external provider call + pickup/post)
//   Prop: C-I + I + I-S
//
// Absolute values come from calibrated latency models on a virtual clock
// (see de/profile.h and DESIGN.md); the *shape* — who wins, by what
// factor, where the bottleneck is — is the reproduction target.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/retail_rpc.h"
#include "core/cast.h"
#include "core/runtime.h"
#include "core/trace.h"
#include "de/object.h"
#include "de/profile.h"

namespace {

using knactor::common::Value;
using knactor::sim::SimTime;
using knactor::sim::to_ms;

struct StageSample {
  double ci = 0;
  double i = 0;
  double is = 0;
  double s = 0;
  [[nodiscard]] double prop() const { return ci + i + is; }
  [[nodiscard]] double total() const { return prop() + s; }
};

struct StageStats {
  std::vector<StageSample> samples;

  [[nodiscard]] StageSample mean() const {
    StageSample m;
    for (const auto& s : samples) {
      m.ci += s.ci;
      m.i += s.i;
      m.is += s.is;
      m.s += s.s;
    }
    auto n = static_cast<double>(samples.size());
    if (n > 0) {
      m.ci /= n;
      m.i /= n;
      m.is /= n;
      m.s /= n;
    }
    return m;
  }

  /// Standard deviation of the Total column.
  [[nodiscard]] double total_stddev() const {
    if (samples.size() < 2) return 0;
    double mean_total = 0;
    for (const auto& s : samples) mean_total += s.total();
    mean_total /= static_cast<double>(samples.size());
    double sq = 0;
    for (const auto& s : samples) {
      double d = s.total() - mean_total;
      sq += d * d;
    }
    return std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
};

constexpr const char* kBenchDxg = R"(Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
DXG:
  S:
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
)";

Value bench_order() {
  Value::Array items;
  Value line = Value::object();
  line.set("name", Value("keyboard"));
  line.set("qty", Value(1));
  items.push_back(std::move(line));
  Value order = Value::object();
  order.set("items", Value(std::move(items)));
  order.set("address", Value("1 Market St, San Francisco, CA"));
  order.set("cost", Value(120.0));
  order.set("currency", Value("USD"));
  return order;
}

/// One measured Checkout -> integrator -> Shipping exchange on a fresh
/// deployment (the paper benchmarks this single hop of the Cast).
StageSample run_knactor_exchange(const knactor::de::ObjectDeProfile& profile,
                                 double integrator_compute_ms, bool pushdown,
                                 std::uint64_t seed) {
  using namespace knactor;

  sim::VirtualClock clock;
  de::ObjectDe de(clock, profile, seed);
  core::Tracer tracer(clock);
  de::ObjectStore& checkout = de.create_store("knactor-checkout");
  de::ObjectStore& shipping = de.create_store("knactor-shipping");

  auto dxg = core::Dxg::parse(kBenchDxg);
  if (!dxg.ok()) {
    std::fprintf(stderr, "dxg parse failed: %s\n",
                 dxg.error().to_string().c_str());
    return {};
  }
  core::CastIntegrator::Options options;
  options.compute = sim::LatencyModel::constant_ms(integrator_compute_ms);
  core::CastIntegrator cast("bench", de, dxg.take(),
                            {{"C", &checkout}, {"S", &shipping}}, options,
                            nullptr, &tracer);
  if (pushdown) {
    auto status = cast.enable_pushdown();
    if (!status.ok()) {
      std::fprintf(stderr, "pushdown failed: %s\n",
                   status.error().to_string().c_str());
      return {};
    }
  }
  if (auto status = cast.start(); !status.ok()) {
    std::fprintf(stderr, "cast start failed: %s\n",
                 status.error().to_string().c_str());
    return {};
  }
  clock.run_all();  // initial pass settles (writes nothing: no order yet)
  tracer.clear();

  // Shipping reconciler stand-in: quote/post like apps::ShippingReconciler
  // but with the fixed 446 ms external call the paper observes.
  sim::Rng ship_rng(seed * 31 + 7);
  sim::LatencyModel processing = sim::LatencyModel::normal_ms(446.0, 2.5);
  bool shipping_in_flight = false;
  shipping.watch("knactor:shipping", "", [&](const de::WatchEvent& event) {
    if (event.type == de::WatchEventType::kDeleted || !event.object.data) {
      return;
    }
    const Value* items = event.object.data->get("items");
    const Value* addr = event.object.data->get("addr");
    const Value* method = event.object.data->get("method");
    const Value* id = event.object.data->get("id");
    if (items == nullptr || addr == nullptr || method == nullptr) return;
    if (id != nullptr || shipping_in_flight) return;
    shipping_in_flight = true;
    clock.schedule_after(processing.sample(ship_rng), [&]() {
      Value patch = Value::object();
      patch.set("id", Value("track-1"));
      shipping.patch("knactor:shipping", "state", std::move(patch),
                     [](knactor::common::Result<std::uint64_t>) {});
    });
  });

  SimTime t0 = clock.now();
  checkout.put("knactor:checkout", "order", bench_order(),
               [](knactor::common::Result<std::uint64_t>) {});
  // Run until the tracking id lands.
  while (clock.step()) {
    const de::StateObject* state = shipping.peek("state");
    if (state != nullptr && state->data && state->data->get("id") != nullptr &&
        clock.idle()) {
      break;
    }
  }

  const de::StateObject* state = shipping.peek("state");
  if (state == nullptr || !state->data || state->data->get("id") == nullptr) {
    std::fprintf(stderr, "exchange did not complete\n");
    return {};
  }
  SimTime t_done = state->updated_at;

  // The first pass with a write span is the measured exchange.
  auto snapshots = tracer.by_name("cast.snapshot.bench");
  auto computes = tracer.by_name("cast.compute.bench");
  auto writes = tracer.by_name("cast.write.bench");
  if (snapshots.empty() || computes.empty() || writes.empty()) {
    std::fprintf(stderr, "missing trace spans\n");
    return {};
  }
  const auto& write = writes.front();
  // Pick the snapshot/compute spans of the same pass (same parent).
  const knactor::core::Span* snapshot = &snapshots.front();
  const knactor::core::Span* compute = &computes.front();
  for (const auto& span : snapshots) {
    if (span.parent == write.parent) snapshot = &span;
  }
  for (const auto& span : computes) {
    if (span.parent == write.parent) compute = &span;
  }

  StageSample sample;
  sample.ci = to_ms(snapshot->end - t0);
  sample.i = to_ms(compute->duration());
  sample.is = to_ms(write.duration());
  sample.s = to_ms(t_done - write.end);
  return sample;
}

StageStats run_knactor_setup(const knactor::de::ObjectDeProfile& profile,
                             double compute_ms, bool pushdown, int runs) {
  StageStats stats;
  for (int i = 0; i < runs; ++i) {
    stats.samples.push_back(run_knactor_exchange(
        profile, compute_ms, pushdown, 1000 + static_cast<std::uint64_t>(i)));
  }
  return stats;
}

StageStats run_rpc_setup(int runs) {
  using namespace knactor;
  StageStats stats;
  for (int i = 0; i < runs; ++i) {
    sim::VirtualClock clock;
    apps::RetailRpcApp app(clock);
    auto tracking = app.place_order_sync(120.0, {"keyboard"});
    if (!tracking.ok()) {
      std::fprintf(stderr, "rpc order failed: %s\n",
                   tracking.error().to_string().c_str());
      continue;
    }
    StageSample sample;
    sample.s = to_ms(app.last_timings().processing());
    // RPC has no data-store stages; the request/response propagation maps
    // onto the Prop column.
    sample.ci = to_ms(app.last_timings().propagation());
    stats.samples.push_back(sample);
  }
  return stats;
}

void print_row(const char* name, const StageStats& stats, bool knactor_row) {
  StageSample mean = stats.mean();
  if (knactor_row) {
    std::printf("%-14s %7.1f %6.2f %7.1f %8.0f %8.1f %9.1f %8.1f\n", name,
                mean.ci, mean.i, mean.is, mean.s, mean.prop(), mean.total(),
                stats.total_stddev());
  } else {
    std::printf("%-14s %7s %6s %7s %8.0f %8.1f %9.1f %8.1f\n", name, "-", "-",
                "-", mean.s, mean.prop(), mean.total(),
                stats.total_stddev());
  }
}

}  // namespace

int main() {
  const int kRuns = 10;
  std::printf(
      "Table 2: Latency in the online retail app completing a shipment\n"
      "request, with breakdown by stage (means over %d runs, ms).\n"
      "C-I: Checkout and integrator. I: Integrator. I-S: Integrator and\n"
      "Shipping. S: Shipment processing. Prop = C-I + I + I-S.\n\n",
      kRuns);
  std::printf("%-14s %7s %6s %7s %8s %8s %9s %8s\n", "Setup", "C-I", "I",
              "I-S", "S", "Prop.", "Total", "+/-sd");

  StageStats rpc = run_rpc_setup(kRuns);
  print_row("RPC", rpc, /*knactor_row=*/false);

  StageStats apiserver = run_knactor_setup(
      knactor::de::ObjectDeProfile::apiserver(), 0.01, false, kRuns);
  print_row("K-apiserver", apiserver, true);

  StageStats redis = run_knactor_setup(knactor::de::ObjectDeProfile::redis(),
                                       0.06, false, kRuns);
  print_row("K-redis", redis, true);

  StageStats redis_udf = run_knactor_setup(
      knactor::de::ObjectDeProfile::redis(), 0.7, true, kRuns);
  print_row("K-redis-udf", redis_udf, true);

  std::printf(
      "\nPaper (Table 2):\n"
      "RPC            -      -       -      446      1.8     447.8\n"
      "K-apiserver   20.6   0.01   12.5     453     33.1     486.1\n"
      "K-redis        3.2   0.06    2.7     444      5.8     449.8\n"
      "K-redis-udf    2.1   0.7     0.1     450      2.9     452.9\n");
  return 0;
}
