// Hot-path wall-clock bench: batched vs. unbatched watch delivery (Cast)
// and consolidated vs. naive pipeline execution (Sync), at 1x/10x/100x
// object counts. Unlike the virtual-clock benches (bench_table*,
// bench_ablation), this one measures REAL elapsed time — it exists to
// gate the batching/consolidation hot path against perf regressions.
//
//   bench_hotpath [--smoke] [--out PATH] [--check PATH] [--section NAME]
//
//   --smoke   1x scales only (the ctest `bench`-label invocation)
//   --out     where to write the JSON report (default BENCH_hotpath.json)
//   --check   validate an existing report: well-formed JSON with the
//             expected sections; exits non-zero otherwise
//   --section run one section standalone (retail | shards | home | stages |
//             scaling | commit_seq) and skip the JSON report unless --out
//             is given explicitly; gates attached to the section still
//             apply (e.g. `--section scaling` enforces the 8-shard
//             speedup)
//
// Retail workload: a fan-out DXG (orders -> shipments) on a redis-profile
// Object DE. Orders arrive spread over virtual time, so in unbatched mode
// every commit delivers its own watch event and triggers its own
// integrator pass (each pass snapshot-lists every object: O(n) work per
// event, O(n^2) total). With a batch window, the DE coalesces a window of
// commits into one WatchBatch and one pass consumes the burst.
//
// Smart-home workload: a Sync route (motion -> house) over a zed-profile
// Log DE running the Fig. 4-style pipeline. Naive mode materializes deep
// copies and runs one pass per operator; consolidated mode pulls shared
// handles (copy-on-write) and runs the fused plan.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <thread>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/fleet_telemetry.h"
#include "apps/ride_hailing.h"
#include "common/json.h"
#include "common/percentile.h"
#include "common/worker_pool.h"
#include "core/cast.h"
#include "core/runtime.h"
#include "core/sync.h"
#include "core/trace.h"
#include "core/trace_export.h"
#include "de/log.h"
#include "de/object.h"
#include "de/persist/engine.h"
#include "de/plan.h"
#include "sim/clock.h"
#include "sim/openloop.h"

namespace {

using knactor::common::Value;
using knactor::sim::SimTime;

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

// ---------------------------------------------------------------------------
// Retail: Cast watch batching.
// ---------------------------------------------------------------------------

constexpr const char* kRetailSpec = R"(Input:
  C: orders
  S: shipments
DXG:
  S.*:
    $for: C order/
    item: get(C, it).item
    cost: get(C, it).cost
    method: '"air" if get(C, it).cost > 1000 else "ground"'
)";

struct RetailRun {
  double wall_ms = 0;
  std::uint64_t passes = 0;
  std::uint64_t batches = 0;
  double orders_per_s = 0;
  bool converged = false;
};

RetailRun run_retail(std::size_t orders, SimTime batch_window,
                     std::size_t shards = 1, int workers = 1) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::redis());
  common::WorkerPool pool(workers);
  de.set_shards(shards);
  de.set_worker_pool(&pool);
  de::ObjectStore& order_store = de.create_store("orders");
  de::ObjectStore& ship_store = de.create_store("shipments");

  auto dxg = core::Dxg::parse(kRetailSpec);
  core::CastIntegrator::Options copts;
  copts.batch_window = batch_window;
  core::CastIntegrator cast("retail-hotpath", de, dxg.take(),
                            {{"C", &order_store}, {"S", &ship_store}}, copts);
  if (!cast.start().ok()) return {};

  // Orders arrive spread over virtual time (one every 4ms — wider than a
  // pass), so unbatched mode genuinely runs one pass per commit.
  constexpr SimTime kSpacing = 4 * sim::kMillisecond;
  for (std::size_t i = 0; i < orders; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "order/%05zu", i);
    Value order = Value::object();
    order.set("item", Value("item-" + std::to_string(i)));
    order.set("cost", Value(static_cast<std::int64_t>((i * 37) % 2000)));
    clock.schedule_at(static_cast<SimTime>(i) * kSpacing,
                      [&order_store, k = std::string(key),
                       order = std::move(order)]() mutable {
                        order_store.put("svc", k, std::move(order),
                                        [](common::Result<std::uint64_t>) {});
                      });
  }

  auto t0 = std::chrono::steady_clock::now();
  clock.run_all();
  RetailRun out;
  out.wall_ms = wall_ms_since(t0);
  out.passes = cast.stats().passes;
  out.batches = cast.stats().batches_consumed;
  out.converged = ship_store.size() == orders;
  out.orders_per_s =
      out.wall_ms > 0 ? static_cast<double>(orders) / (out.wall_ms / 1000.0)
                      : 0;
  cast.stop();
  return out;
}

// Best-of-N wrapper: the shard-scaling gate compares absolute wall times,
// so dampen scheduler noise by keeping the fastest repeat.
RetailRun run_retail_best(std::size_t orders, SimTime batch_window,
                          std::size_t shards, int workers, int repeats) {
  RetailRun best = run_retail(orders, batch_window, shards, workers);
  for (int i = 1; i < repeats; ++i) {
    RetailRun r = run_retail(orders, batch_window, shards, workers);
    if (r.wall_ms < best.wall_ms) best = r;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Fan-out: content-filtered subscriptions vs. broadcast watches.
// ---------------------------------------------------------------------------

// The retail order stream delivered to a large subscriber population.
// Broadcast mode registers plain watches — every commit reaches every
// subscriber, delivered volume = commits x subscribers. Filtered mode
// gives each subscriber a content filter matching ~1% of orders (its
// region bucket); the predicate runs pre-enqueue inside the commit
// pipeline, so a rejected commit never costs a delivery. The gate is on
// delivered-record volume, not wall time — the volume ratio is exact and
// machine-independent.
struct FanoutRun {
  double wall_ms = 0;
  std::uint64_t delivered = 0;  // watch events that reached a callback
  std::uint64_t filtered = 0;   // commits rejected pre-enqueue
};

FanoutRun run_fanout(std::size_t subscribers, std::size_t commits,
                     bool filtered) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  de::ObjectStore& orders = de.create_store("orders");

  std::uint64_t delivered = 0;
  auto count = [&delivered](const de::WatchEvent&) { ++delivered; };
  for (std::size_t i = 0; i < subscribers; ++i) {
    if (filtered) {
      // 100 region buckets; each subscriber cares about exactly one, so
      // with orders spread uniformly its selectivity is 1%.
      de::SubscriptionSpec spec;
      spec.filter = "bucket == " + std::to_string(i % 100);
      (void)orders.subscribe("svc", std::move(spec), count);
    } else {
      (void)orders.watch("svc", "", count);
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < commits; ++c) {
    Value order = Value::object();
    order.set("bucket", Value(static_cast<std::int64_t>(c % 100)));
    order.set("cost", Value(static_cast<std::int64_t>((c * 37) % 2000)));
    orders.put("svc", "order/" + std::to_string(c), std::move(order),
               [](knactor::common::Result<std::uint64_t>) {});
    // Drain between commits so delivery work interleaves with commits the
    // way a live composition's would, instead of piling up one huge queue.
    clock.run_all();
  }
  FanoutRun out;
  out.wall_ms = wall_ms_since(t0);
  out.delivered = delivered;
  out.filtered = de.stats().watch_events_filtered;
  return out;
}

// ---------------------------------------------------------------------------
// Smart home: Sync operator consolidation + zero-copy exchange.
// ---------------------------------------------------------------------------

struct SyncRun {
  double wall_ms = 0;
  std::uint64_t records_processed = 0;
  std::size_t moved = 0;
  double records_per_s = 0;
};

SyncRun run_smart_home(std::size_t records, bool consolidate) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::LogDe log(clock, de::LogDeProfile::zed());
  de::LogPool& motion = log.create_pool("motion");
  de::LogPool& house = log.create_pool("house");

  std::vector<Value> batch;
  batch.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    Value rec = Value::object();
    rec.set("room", Value("room-" + std::to_string(i % 8)));
    rec.set("triggered", Value(i % 3 != 0));
    rec.set("brightness", Value(static_cast<std::int64_t>(i % 100)));
    batch.push_back(std::move(rec));
  }
  if (!motion.append_batch_sync("svc", std::move(batch)).ok()) return {};

  // Fig. 4-style pipeline: record-local ops that fuse into one pass, then
  // a sort barrier.
  de::LogQuery pipeline;
  pipeline.push_back(de::LogOp::filter("triggered == true").value());
  pipeline.push_back(de::LogOp::rename({{"triggered", "motion"}}));
  pipeline.push_back(de::LogOp::map("lux", "brightness * 10").value());
  pipeline.push_back(de::LogOp::project({"room", "motion", "lux"}));
  pipeline.push_back(de::LogOp::sort("lux", true));

  core::SyncIntegrator::Options sopts;
  sopts.consolidate = consolidate;
  core::SyncIntegrator sync("home-hotpath", log, sopts);
  core::SyncRoute route;
  route.name = "motion-to-house";
  route.source = &motion;
  route.target = &house;
  route.pipeline = std::move(pipeline);
  if (!sync.add_route(std::move(route)).ok()) return {};
  if (!sync.start().ok()) return {};

  auto t0 = std::chrono::steady_clock::now();
  auto moved = sync.run_round_sync();
  SyncRun out;
  out.wall_ms = wall_ms_since(t0);
  out.records_processed = sync.stats().records_processed;
  out.moved = moved.ok() ? moved.value() : 0;
  out.records_per_s =
      out.wall_ms > 0 ? static_cast<double>(records) / (out.wall_ms / 1000.0)
                      : 0;
  sync.stop();
  return out;
}

// ---------------------------------------------------------------------------
// Commit scaling: the parallel commit pipeline vs the per-op path.
// ---------------------------------------------------------------------------

// CPU-bound open-loop commit workload. Latencies are virtual (the redis
// profile's sampled commit times cost zero wall time), so every measured
// microsecond is framework CPU: scheduler traffic, per-op closures,
// RBAC/watch matching, WAL and buffer staging, map commits. The whole
// workload is admitted up front and then drained to convergence — the
// load a service sees when writes arrive faster than they commit. Under
// that load the per-op path keeps one scheduled commit (with its
// completion closure and sampled deadline) per in-flight write — `ops`
// scheduler entries sifting through the event heap — while the epoch
// pipeline keeps one per in-flight epoch (`ops / epoch_size` entries,
// stamps pre-assigned, shards committed via the phase-B/phase-C
// pipeline). Both modes run the same batched watcher and durable WAL and
// must converge to the identical store and delivery outcome. Inputs
// (keys, payloads, epoch batches) are pre-built outside the timed region
// so the interval isolates commit machinery, not Value construction.
struct ScalingRun {
  double wall_ms = 0;
  double kops_per_s = 0;
  bool converged = false;
};

ScalingRun run_commit_scaling(std::size_t ops, std::size_t epoch_size,
                              std::size_t shards, int workers,
                              bool use_epoch) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDeProfile profile = de::ObjectDeProfile::redis();
  profile.durable = true;  // WAL staging is part of the measured commit
  de::ObjectDe de(clock, profile);
  common::WorkerPool pool(workers);
  de.set_shards(shards);
  de.set_worker_pool(&pool);
  de::ObjectStore& store = de.create_store("events");
  std::uint64_t batches = 0;
  (void)store.watch_batch("observer", "", 5 * sim::kMillisecond,
                          [&batches](const de::WatchBatch&) { ++batches; });

  // Load-generator exclusion: all keys and payloads (and, for the epoch
  // mode, the assembled write batches) are built before the timed region
  // starts; both modes receive identical ready-made inputs.
  std::vector<std::string> keys(ops);
  std::vector<Value> payloads(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    char key[24];
    std::snprintf(key, sizeof(key), "e-%04zu", i % 1024);
    keys[i] = key;
    Value v = Value::object();
    v.set("seq", Value(static_cast<std::int64_t>(i)));
    v.set("source", Value("svc-" + std::to_string(i % 7)));
    v.set("level", Value(static_cast<std::int64_t>(i % 5)));
    payloads[i] = std::move(v);
  }
  std::size_t committed = 0;
  double wall_ms = 0;
  if (use_epoch) {
    std::vector<std::vector<de::EpochWrite>> epochs;
    epochs.reserve((ops + epoch_size - 1) / epoch_size);
    for (std::size_t base = 0; base < ops; base += epoch_size) {
      const std::size_t end = std::min(ops, base + epoch_size);
      std::vector<de::EpochWrite> writes;
      writes.reserve(end - base);
      for (std::size_t i = base; i < end; ++i) {
        de::EpochWrite w;
        w.key = std::move(keys[i]);
        w.data = std::move(payloads[i]);
        writes.push_back(std::move(w));
      }
      epochs.push_back(std::move(writes));
    }
    auto t0 = std::chrono::steady_clock::now();
    for (auto& writes : epochs) {
      store.put_epoch(
          "svc", std::move(writes),
          [&committed](std::vector<common::Result<std::uint64_t>> results) {
            for (const auto& r : results) {
              if (r.ok()) ++committed;
            }
          });
    }
    clock.run_all();
    wall_ms = wall_ms_since(t0);
  } else {
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      store.put("svc", keys[i], std::move(payloads[i]),
                [&committed](common::Result<std::uint64_t> r) {
                  if (r.ok()) ++committed;
                });
    }
    clock.run_all();
    wall_ms = wall_ms_since(t0);
  }
  ScalingRun out;
  out.wall_ms = wall_ms;
  out.converged = committed == ops && batches > 0 &&
                  store.size() == std::min<std::size_t>(ops, 1024);
  out.kops_per_s = out.wall_ms > 0
                       ? static_cast<double>(ops) / out.wall_ms
                       : 0;
  return out;
}

ScalingRun run_commit_scaling_best(std::size_t ops, std::size_t epoch_size,
                                   std::size_t shards, int workers,
                                   bool use_epoch, int repeats) {
  ScalingRun best = run_commit_scaling(ops, epoch_size, shards, workers,
                                       use_epoch);
  for (int i = 1; i < repeats; ++i) {
    ScalingRun r = run_commit_scaling(ops, epoch_size, shards, workers,
                                      use_epoch);
    if (r.wall_ms < best.wall_ms) best = r;
  }
  return best;
}

Value scaling_run_value(const ScalingRun& r) {
  Value v = Value::object();
  v.set("wall_ms", Value(r.wall_ms));
  v.set("kops_per_s", Value(r.kops_per_s));
  v.set("converged", Value(r.converged));
  return v;
}

// Commit-seq allocation: the old design bumped the kernel-global counter
// once per op from wherever the op committed; the epoch pipeline reserves
// a whole per-epoch domain in one serial bump and hands each op its seq as
// base + index. Measures both allocation disciplines (same totals, so the
// counters land in the same place).
Value commit_seq_section(bool smoke) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, de::ObjectDeProfile::instant());
  const std::size_t total = smoke ? 1'000'000 : 20'000'000;
  const std::size_t domain = 256;

  // Both loops fold their stamps into a volatile-published sink so the
  // allocation work itself stays observable to the optimizer.
  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < total; ++i) {
    sink += de.kernel().reserve_commit_seqs(1);  // per-op global bump
  }
  const double per_op_ms = wall_ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  for (std::size_t base = 0; base < total; base += domain) {
    const std::uint64_t seq_base = de.kernel().reserve_commit_seqs(domain);
    for (std::size_t i = 0; i < domain; ++i) sink += seq_base + i;
  }
  const double reserved_ms = wall_ms_since(t0);

  Value v = Value::object();
  v.set("allocations", Value(static_cast<std::int64_t>(total)));
  v.set("domain", Value(static_cast<std::int64_t>(domain)));
  v.set("per_op_ms", Value(per_op_ms));
  v.set("reserved_ms", Value(reserved_ms));
  v.set("per_op_mops_per_s",
        Value(per_op_ms > 0 ? total / per_op_ms / 1000.0 : 0));
  v.set("reserved_mops_per_s",
        Value(reserved_ms > 0 ? total / reserved_ms / 1000.0 : 0));
  v.set("sink", Value(static_cast<std::int64_t>(sink % 97)));  // keep the loop
  std::printf(
      "commit_seq %zu allocs: per-op %8.1fms  domain-reserved %8.1fms\n",
      total, per_op_ms, reserved_ms);
  return v;
}

// ---------------------------------------------------------------------------
// Recovery: snapshot+delta vs full-WAL replay (de/persist).
// ---------------------------------------------------------------------------

// Durable-recovery cost at a deep history. The same op stream is journaled
// through the persistence tier twice: once with snapshots disabled, so
// recovery must replay the entire WAL, and once with the periodic snapshot
// cadence, so recovery loads the newest snapshot and replays only the
// journal suffix. Keys wrap (1024 live objects), which is the regime the
// snapshot design targets: live state stays small while the WAL grows
// without bound. The gate asserts the design's point — at a 100k-op
// history, snapshot+delta recovery is >=5x faster than full replay — and
// both recoveries must land on the bit-identical image.
struct RecoverTiming {
  bool ok = false;
  double wall_ms = 0;
  std::uint64_t frames = 0;
  std::string image_bytes;  // canonical serialization of the result
};

double build_recovery_history(const std::string& dir, std::size_t ops,
                              std::uint64_t snapshot_every,
                              std::uint64_t* snapshots_out) {
  using namespace knactor;
  std::filesystem::remove_all(dir);
  sim::VirtualClock clock;
  de::ObjectDeProfile profile = de::ObjectDeProfile::instant();
  profile.durable = true;
  de::ObjectDe de(clock, profile);
  de::persist::Engine engine(de::persist::EngineOptions{dir, snapshot_every});
  if (!de.enable_persistence(&engine).ok()) return -1;
  de::ObjectStore& store = de.create_store("events");
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    char key[24];
    std::snprintf(key, sizeof(key), "e-%05zu", i % 1024);
    Value v = Value::object();
    v.set("seq", Value(static_cast<std::int64_t>(i)));
    v.set("level", Value(static_cast<std::int64_t>(i % 5)));
    if (!store.put_sync("svc", key, std::move(v)).ok()) return -1;
  }
  *snapshots_out = engine.stats().snapshots;
  return wall_ms_since(t0);
}

RecoverTiming time_recovery(const std::string& dir, int repeats) {
  using namespace knactor::de::persist;
  RecoverTiming out;
  for (int i = 0; i < repeats; ++i) {
    Engine engine(EngineOptions{dir, 0});
    auto t0 = std::chrono::steady_clock::now();
    auto image = engine.recover();
    const double ms = wall_ms_since(t0);
    if (!image.ok()) return out;
    if (i == 0) {
      out.wall_ms = ms;
      out.frames = engine.stats().frames_replayed;
      out.image_bytes = encode_snapshot(image.value(), 0);
    } else if (ms < out.wall_ms) {
      out.wall_ms = ms;
    }
  }
  out.ok = true;
  return out;
}

Value recovery_section(bool smoke, double* speedup_out,
                       bool* converged_out) {
  const std::size_t ops = smoke ? 3000 : 100000;
  // Deliberately does not divide the op count: the history must end
  // mid-generation so the timed recovery includes a real journal-suffix
  // replay, not just the snapshot load.
  const std::uint64_t cadence = smoke ? 128 : 4096;
  const int repeats = smoke ? 1 : 3;
  const std::string base =
      std::filesystem::temp_directory_path().string() + "/kn_bench_recovery";
  const std::string full_dir = base + "_full";
  const std::string delta_dir = base + "_delta";

  std::uint64_t full_snaps = 0;
  std::uint64_t delta_snaps = 0;
  const double full_build_ms =
      build_recovery_history(full_dir, ops, /*snapshot_every=*/0,
                             &full_snaps);
  const double delta_build_ms =
      build_recovery_history(delta_dir, ops, cadence, &delta_snaps);
  Value v = Value::object();
  if (full_build_ms < 0 || delta_build_ms < 0) {
    *converged_out = false;
    return v;
  }
  const RecoverTiming full = time_recovery(full_dir, repeats);
  const RecoverTiming delta = time_recovery(delta_dir, repeats);
  std::filesystem::remove_all(full_dir);
  std::filesystem::remove_all(delta_dir);
  const double speedup = full.ok && delta.ok && full.wall_ms > 0 &&
                                 delta.wall_ms > 0
                             ? full.wall_ms / delta.wall_ms
                             : 0;
  const bool converged = full.ok && delta.ok &&
                         !full.image_bytes.empty() &&
                         full.image_bytes == delta.image_bytes;
  *speedup_out = speedup;
  *converged_out = converged;

  v.set("ops", Value(static_cast<std::int64_t>(ops)));
  v.set("snapshot_cadence", Value(static_cast<std::int64_t>(cadence)));
  Value full_v = Value::object();
  full_v.set("build_ms", Value(full_build_ms));
  full_v.set("recover_ms", Value(full.wall_ms));
  full_v.set("frames_replayed", Value(static_cast<std::int64_t>(full.frames)));
  v.set("full_replay", std::move(full_v));
  Value delta_v = Value::object();
  delta_v.set("build_ms", Value(delta_build_ms));
  delta_v.set("recover_ms", Value(delta.wall_ms));
  delta_v.set("frames_replayed",
              Value(static_cast<std::int64_t>(delta.frames)));
  delta_v.set("snapshots", Value(static_cast<std::int64_t>(delta_snaps)));
  v.set("snapshot_delta", std::move(delta_v));
  v.set("speedup", Value(speedup));
  v.set("converged", Value(converged));
  std::printf(
      "recovery %6zu ops: full-replay %8.1fms (%6llu frames)  "
      "snapshot+delta %8.1fms (%5llu frames, %llu snapshots)  "
      "speedup %.2fx%s\n",
      ops, full.wall_ms, static_cast<unsigned long long>(full.frames),
      delta.wall_ms, static_cast<unsigned long long>(delta.frames),
      static_cast<unsigned long long>(delta_snaps), speedup,
      converged ? "" : "  DIVERGED");
  return v;
}

// Separate traced run for per-stage attribution (C-I / I / I-S, virtual-
// clock µs). Tracing is kept out of the timed runs above so the gate
// measures the untraced hot path; this run only feeds the
// "stage_attribution" report section (and docs/OBSERVABILITY.md).
Value stage_attribution_value(std::size_t orders, SimTime batch_window) {
  using namespace knactor;
  sim::VirtualClock clock;
  core::Tracer tracer(clock);
  de::ObjectDe de(clock, de::ObjectDeProfile::redis());
  de::ObjectStore& order_store = de.create_store("orders");
  de::ObjectStore& ship_store = de.create_store("shipments");
  auto dxg = core::Dxg::parse(kRetailSpec);
  core::CastIntegrator::Options copts;
  copts.batch_window = batch_window;
  core::CastIntegrator cast("retail-hotpath", de, dxg.take(),
                            {{"C", &order_store}, {"S", &ship_store}}, copts,
                            nullptr, &tracer);
  Value rows = Value::array();
  if (!cast.start().ok()) return rows;
  constexpr SimTime kSpacing = 4 * sim::kMillisecond;
  for (std::size_t i = 0; i < orders; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "order/%05zu", i);
    Value order = Value::object();
    order.set("item", Value("item-" + std::to_string(i)));
    order.set("cost", Value(static_cast<std::int64_t>((i * 37) % 2000)));
    clock.schedule_at(static_cast<SimTime>(i) * kSpacing,
                      [&order_store, k = std::string(key),
                       order = std::move(order)]() mutable {
                        order_store.put("svc", k, std::move(order),
                                        [](common::Result<std::uint64_t>) {});
                      });
  }
  clock.run_all();
  cast.stop();
  for (const auto& [stage, stat] : core::stage_breakdown(tracer.spans())) {
    if (stage == "-") continue;  // unattributed helper spans
    Value row = Value::object();
    row.set("stage", Value(stage));
    row.set("count", Value(static_cast<std::int64_t>(stat.count)));
    row.set("total_us", Value(static_cast<std::int64_t>(stat.total)));
    row.set("mean_us", Value(stat.mean()));
    rows.as_array().push_back(std::move(row));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Open-loop traffic: saturation knees for the composition workloads.
// ---------------------------------------------------------------------------

// Open-loop runs of the two full compositions (docs/WORKLOADS.md): the
// ride-hailing match/dispatch app (Object DE, Cast fan-out, hot zone keys)
// and the IoT fleet-telemetry rollup (Log DE, push-mode Sync with the
// windowed-aggregation pipeline). The generator (sim/openloop.h) fires
// arrivals on the virtual clock per an arrival schedule and bounds
// concurrency with an admission gate, so past capacity the arrival queue
// grows and tail latency climbs — the saturation knee.
//
// Everything reported here is virtual time (SimTime microseconds) or a
// deterministic count; no wall-clock values are allowed in this section.
// Two runs of the same build must serialize it byte-identically — the
// openloop determinism regression test diffs the JSON.

using OpenLoopResult = knactor::sim::OpenLoopRunner::RunResult;
using OpenLoopFn = std::function<OpenLoopResult(
    const knactor::sim::ArrivalSchedule&, std::uint64_t, std::uint64_t)>;

void set_percentiles(Value& v, const knactor::common::LatencyRecorder& rec) {
  v.set("p50_ms", Value(static_cast<double>(rec.p50()) / 1000.0));
  v.set("p99_ms", Value(static_cast<double>(rec.p99()) / 1000.0));
  v.set("p999_ms", Value(static_cast<double>(rec.p999()) / 1000.0));
}

// One open-loop run against a fresh ride-hailing composition. A request is
// "complete" when the dispatch assignment has flowed back into the ride
// object — observed through a content-filtered subscription, the same
// mechanism the composition itself uses.
OpenLoopResult run_ride_openloop(const knactor::sim::ArrivalSchedule& schedule,
                                 std::uint64_t requests,
                                 std::uint64_t max_in_flight) {
  using namespace knactor;
  core::Runtime runtime;
  apps::RideHailingOptions opts;
  opts.batch_window = 5 * sim::kMillisecond;
  apps::RideHailingApp app = apps::build_ride_hailing_app(runtime, opts);
  if (app.cast == nullptr || app.rides == nullptr) return {};

  std::unordered_map<std::string, std::function<void()>> waiting;
  de::SubscriptionSpec spec;
  spec.prefix = "ride/";
  spec.filter = "status == \"assigned\"";
  (void)app.rides->subscribe(
      "bench", std::move(spec), [&waiting](const de::WatchEvent& event) {
        auto it = waiting.find(event.object.key);
        if (it == waiting.end()) return;
        auto done = std::move(it->second);
        waiting.erase(it);
        done();
      });

  sim::OpenLoopRunner::Options lopts;
  lopts.schedule = schedule;
  lopts.total_requests = requests;
  lopts.max_in_flight = max_in_flight;
  return sim::OpenLoopRunner::run(
      runtime.clock(), lopts,
      [&app, &waiting](std::uint64_t index, std::function<void()> done) {
        // 999983 is prime (coprime to the 1M key space), so distinct
        // request indexes land on distinct ride ids spread over the space.
        const std::uint64_t ride_id = (index * 999983ULL) % 1000000ULL;
        waiting.emplace("ride/" + std::to_string(ride_id), std::move(done));
        app.submit_ride(ride_id);
      });
}

// One open-loop run against a fresh fleet-telemetry composition. The
// request is a reading ingest (append commit == completion); rollup and
// alert rounds ride behind the appends in push mode, inside the same
// drained virtual-time run.
OpenLoopResult run_fleet_openloop(
    const knactor::sim::ArrivalSchedule& schedule, std::uint64_t requests,
    std::uint64_t max_in_flight) {
  using namespace knactor;
  core::Runtime runtime;
  apps::FleetTelemetryOptions opts;
  opts.push = true;
  apps::FleetTelemetryApp app = apps::build_fleet_telemetry_app(runtime, opts);
  if (app.readings == nullptr) return {};

  sim::OpenLoopRunner::Options lopts;
  lopts.schedule = schedule;
  lopts.total_requests = requests;
  lopts.max_in_flight = max_in_flight;
  return sim::OpenLoopRunner::run(
      runtime.clock(), lopts,
      [&app](std::uint64_t index, std::function<void()> done) {
        app.readings->append(
            "vehicle", app.reading_for(index),
            [done = std::move(done)](common::Result<std::uint64_t>) {
              done();
            });
      });
}

struct OpenLoopScenario {
  Value report;
  bool ok = true;
  std::string why;  // first gate failure, for the FAIL message
  double knee_rps = 0;
};

// Calibrates the scenario's capacity, sweeps constant offered loads across
// the knee, then runs one ramp and one step schedule. Gates (deterministic,
// so they apply in smoke mode too): every run completes, percentiles are
// well-formed (0 < p50 <= p99 <= p999), the lowest offered load is served
// at its offered rate, the highest is not (the knee exists), and tail
// latency past the knee exceeds tail latency below it.
OpenLoopScenario openloop_scenario(const char* label, const OpenLoopFn& run,
                                   std::uint64_t requests,
                                   std::uint64_t max_in_flight) {
  using knactor::sim::ArrivalSchedule;
  OpenLoopScenario out;
  auto fail = [&out](const std::string& why) {
    if (out.ok) out.why = why;
    out.ok = false;
  };

  // Calibration trickle: arrivals 100ms apart dwarf any service time, so
  // measured latency is pure service time and capacity follows from
  // Little's law on the admission gate's slots.
  const std::uint64_t calib_n = std::max<std::uint64_t>(16, requests / 8);
  OpenLoopResult calib =
      run(ArrivalSchedule::constant(10.0), calib_n, max_in_flight);
  if (calib.completed != calib_n || calib.service_latency.empty()) {
    fail("calibration run did not complete");
  }
  const double mean_service_us = calib.service_latency.mean();
  const double capacity_rps =
      mean_service_us > 0
          ? static_cast<double>(max_in_flight) * 1e6 / mean_service_us
          : 0;
  if (capacity_rps <= 0) fail("zero capacity estimate");
  std::printf(
      "openloop %-16s capacity %8.1f rps (mean service %6.2fms, "
      "%llu slots)\n",
      label, capacity_rps, mean_service_us / 1000.0,
      static_cast<unsigned long long>(max_in_flight));

  Value v = Value::object();
  v.set("requests", Value(static_cast<std::int64_t>(requests)));
  v.set("max_in_flight", Value(static_cast<std::int64_t>(max_in_flight)));
  Value base = Value::object();
  base.set("mean_ms", Value(mean_service_us / 1000.0));
  set_percentiles(base, calib.service_latency);
  v.set("base_service", std::move(base));
  v.set("capacity_rps", Value(capacity_rps));

  // Require well-formed percentiles on every run this scenario makes.
  auto check_percentiles = [&](const char* what,
                               const knactor::common::LatencyRecorder& rec) {
    const auto p50 = rec.p50();
    const auto p99 = rec.p99();
    const auto p999 = rec.p999();
    if (p50 <= 0 || p99 < p50 || p999 < p99) {
      fail(std::string(what) + ": malformed percentiles");
    }
  };
  check_percentiles("calibration", calib.service_latency);

  // Knee sweep: constant offered loads at fractions/multiples of the
  // estimated capacity.
  const double multipliers[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  Value sweep = Value::array();
  double knee_x = 0;
  double first_ratio = 0;
  double last_ratio = 0;
  double first_p99 = 0;
  double last_p99 = 0;
  for (double x : multipliers) {
    OpenLoopResult r =
        run(ArrivalSchedule::constant(capacity_rps * x), requests,
            max_in_flight);
    if (r.completed != requests) {
      fail("sweep " + std::to_string(x) + "x lost requests");
    }
    check_percentiles("sweep", r.latency);
    const double ratio =
        r.offered_rps > 0 ? r.achieved_rps / r.offered_rps : 0;
    if (knee_x == 0 && ratio < 0.9) knee_x = x;
    if (x == multipliers[0]) {
      first_ratio = ratio;
      first_p99 = static_cast<double>(r.latency.p99());
    }
    last_ratio = ratio;
    last_p99 = static_cast<double>(r.latency.p99());
    Value row = Value::object();
    row.set("offered_x", Value(x));
    row.set("offered_rps", Value(r.offered_rps));
    row.set("achieved_rps", Value(r.achieved_rps));
    row.set("completed", Value(static_cast<std::int64_t>(r.completed)));
    row.set("max_queue_depth",
            Value(static_cast<std::int64_t>(r.max_queue_depth)));
    set_percentiles(row, r.latency);
    std::printf(
        "openloop %-16s %4.2fx %8.1f rps -> %8.1f rps  p50 %8.2fms  "
        "p99 %8.2fms  p999 %8.2fms  queue %llu\n",
        label, x, r.offered_rps, r.achieved_rps,
        static_cast<double>(r.latency.p50()) / 1000.0,
        static_cast<double>(r.latency.p99()) / 1000.0,
        static_cast<double>(r.latency.p999()) / 1000.0,
        static_cast<unsigned long long>(r.max_queue_depth));
    sweep.as_array().push_back(std::move(row));
  }
  v.set("sweep", std::move(sweep));
  v.set("knee_offered_x", Value(knee_x));
  out.knee_rps = knee_x * capacity_rps;
  v.set("knee_rps", Value(out.knee_rps));
  if (first_ratio < 0.9) {
    fail("unsaturated point not served at offered rate");
  }
  if (last_ratio > 0.75) fail("no saturation at 4x capacity (no knee)");
  if (knee_x <= 0) fail("knee not found in sweep");
  if (last_p99 <= first_p99) fail("tail latency flat across the knee");

  // Shaped schedules: a ramp sweeping through the knee in one run and a
  // mid-run traffic spike. Recorded for the report; gated only on
  // completion and percentile shape (their aggregate latency mixes the
  // pre- and post-knee regimes).
  auto shaped = [&](const ArrivalSchedule& s) {
    OpenLoopResult r = run(s, requests, max_in_flight);
    if (r.completed != requests) {
      fail(std::string(s.kind_name()) + " run lost requests");
    }
    check_percentiles(s.kind_name(), r.latency);
    Value sv = Value::object();
    sv.set("schedule", Value(s.kind_name()));
    sv.set("start_rps", Value(s.start_rps));
    sv.set("end_rps", Value(s.end_rps));
    sv.set("offered_rps", Value(r.offered_rps));
    sv.set("achieved_rps", Value(r.achieved_rps));
    sv.set("completed", Value(static_cast<std::int64_t>(r.completed)));
    sv.set("max_queue_depth",
           Value(static_cast<std::int64_t>(r.max_queue_depth)));
    set_percentiles(sv, r.latency);
    std::printf(
        "openloop %-16s %-5s %8.1f..%8.1f rps -> %8.1f rps  "
        "p99 %8.2fms  queue %llu\n",
        label, s.kind_name(), s.start_rps, s.end_rps, r.achieved_rps,
        static_cast<double>(r.latency.p99()) / 1000.0,
        static_cast<unsigned long long>(r.max_queue_depth));
    return sv;
  };
  v.set("ramp",
        shaped(ArrivalSchedule::ramp(0.25 * capacity_rps,
                                     4.0 * capacity_rps)));
  Value step = shaped(
      ArrivalSchedule::step(0.5 * capacity_rps, 3.0 * capacity_rps, 0.5));
  const Value* step_queue = step.get("max_queue_depth");
  if (step_queue == nullptr || step_queue->as_int() < 1) {
    fail("step spike built no backlog");
  }
  v.set("step", std::move(step));

  out.report = std::move(v);
  return out;
}

// ---------------------------------------------------------------------------
// Report assembly / validation.
// ---------------------------------------------------------------------------

Value retail_run_value(const RetailRun& r) {
  Value v = Value::object();
  v.set("wall_ms", Value(r.wall_ms));
  v.set("passes", Value(static_cast<std::int64_t>(r.passes)));
  v.set("batches", Value(static_cast<std::int64_t>(r.batches)));
  v.set("orders_per_s", Value(r.orders_per_s));
  v.set("converged", Value(r.converged));
  return v;
}

Value sync_run_value(const SyncRun& r) {
  Value v = Value::object();
  v.set("wall_ms", Value(r.wall_ms));
  v.set("records_processed",
        Value(static_cast<std::int64_t>(r.records_processed)));
  v.set("moved", Value(static_cast<std::int64_t>(r.moved)));
  v.set("records_per_s", Value(r.records_per_s));
  return v;
}

int check_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_hotpath: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = knactor::common::parse_json(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_hotpath: %s is not valid JSON: %s\n",
                 path.c_str(), parsed.error().to_string().c_str());
    return 1;
  }
  const Value& report = parsed.value();
  for (const char* key :
       {"retail", "retail_shards", "smart_home", "stage_attribution",
        "scaling", "fanout"}) {
    const Value* section = report.get(key);
    if (section == nullptr || !section->is_array() ||
        section->as_array().empty()) {
      std::fprintf(stderr,
                   "bench_hotpath: %s: missing/empty section '%s'\n",
                   path.c_str(), key);
      return 1;
    }
  }
  for (const char* key : {"commit_seq", "recovery", "openloop"}) {
    const Value* section = report.get(key);
    if (section == nullptr || !section->is_object()) {
      std::fprintf(stderr, "bench_hotpath: %s: missing section '%s'\n",
                   path.c_str(), key);
      return 1;
    }
  }
  // The openloop section carries the latency-percentile contract: both
  // scenario subsections must be present, each with a non-empty knee sweep
  // whose rows all carry numeric offered/achieved rates and p50/p99/p999.
  const Value* openloop = report.get("openloop");
  for (const char* scenario : {"ride_hailing", "fleet_telemetry"}) {
    const Value* scen = openloop->get(scenario);
    if (scen == nullptr || !scen->is_object()) {
      std::fprintf(stderr,
                   "bench_hotpath: %s: openloop missing scenario '%s'\n",
                   path.c_str(), scenario);
      return 1;
    }
    const Value* sweep = scen->get("sweep");
    if (sweep == nullptr || !sweep->is_array() || sweep->as_array().empty()) {
      std::fprintf(stderr,
                   "bench_hotpath: %s: openloop.%s: missing/empty sweep\n",
                   path.c_str(), scenario);
      return 1;
    }
    for (const Value& row : sweep->as_array()) {
      for (const char* field : {"offered_rps", "achieved_rps", "p50_ms",
                                "p99_ms", "p999_ms"}) {
        const Value* cell = row.get(field);
        if (cell == nullptr || !cell->is_number()) {
          std::fprintf(
              stderr,
              "bench_hotpath: %s: openloop.%s: sweep row missing numeric "
              "'%s'\n",
              path.c_str(), scenario, field);
          return 1;
        }
      }
    }
  }
  std::printf("bench_hotpath: %s OK\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool out_explicit = false;
  std::string out_path = "BENCH_hotpath.json";
  std::string section;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
      out_explicit = true;
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      return check_report(argv[++i]);
    } else if (std::strcmp(argv[i], "--section") == 0 && i + 1 < argc) {
      section = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--smoke] [--out PATH] "
                   "[--check PATH] [--section retail|shards|home|stages|"
                   "scaling|commit_seq|recovery|fanout|openloop]\n");
      return 2;
    }
  }
  const bool all_sections = section.empty();
  auto want = [&](const char* name) {
    return all_sections || section == name;
  };
  if (!all_sections && !want("retail") && !want("shards") && !want("home") &&
      !want("stages") && !want("scaling") && !want("commit_seq") &&
      !want("recovery") && !want("fanout") && !want("openloop")) {
    std::fprintf(stderr, "bench_hotpath: unknown section '%s'\n",
                 section.c_str());
    return 2;
  }

  // A batch window of 40ms over 4ms-spaced commits coalesces ~10 events
  // per delivery.
  constexpr SimTime kWindow = 40 * knactor::sim::kMillisecond;
  const std::vector<std::pair<std::string, std::size_t>> retail_scales =
      smoke ? std::vector<std::pair<std::string, std::size_t>>{{"1x", 4}}
            : std::vector<std::pair<std::string, std::size_t>>{
                  {"1x", 4}, {"10x", 40}, {"100x", 400}};
  const std::vector<std::pair<std::string, std::size_t>> home_scales =
      smoke ? std::vector<std::pair<std::string, std::size_t>>{{"1x", 500}}
            : std::vector<std::pair<std::string, std::size_t>>{
                  {"1x", 500}, {"10x", 5000}, {"100x", 50000}};

  Value report = Value::object();
  Value retail = Value::array();
  double retail_100x_speedup = 0;
  if (want("retail")) for (const auto& [label, orders] : retail_scales) {
    RetailRun unbatched = run_retail(orders, 0);
    RetailRun batched = run_retail(orders, kWindow);
    double speedup = unbatched.wall_ms > 0 && batched.wall_ms > 0
                         ? unbatched.wall_ms / batched.wall_ms
                         : 0;
    if (label == "100x") retail_100x_speedup = speedup;
    Value row = Value::object();
    row.set("scale", Value(label));
    row.set("orders", Value(static_cast<std::int64_t>(orders)));
    row.set("unbatched", retail_run_value(unbatched));
    row.set("batched", retail_run_value(batched));
    row.set("speedup", Value(speedup));
    std::printf(
        "retail %-4s %5zu orders: unbatched %8.1fms (%5llu passes)  "
        "batched %8.1fms (%5llu passes, %llu batches)  speedup %.2fx\n",
        label.c_str(), orders, unbatched.wall_ms,
        static_cast<unsigned long long>(unbatched.passes), batched.wall_ms,
        static_cast<unsigned long long>(batched.passes),
        static_cast<unsigned long long>(batched.batches), speedup);
    retail.as_array().push_back(std::move(row));
  }
  report.set("retail", std::move(retail));

  // Shard scaling on the batched 100x retail fan-out. Sharding exists for
  // determinism-preserving parallelism, so the gate is "no regression vs
  // the 1-shard serial run" (lenient: the CI box may have a single core,
  // where extra workers can only add overhead), plus hard byte-equality of
  // the observable outcome (passes/batches/convergence must not move).
  const std::size_t shard_orders = smoke ? 4 : 400;
  const int shard_repeats = smoke ? 1 : 3;
  struct ShardPoint {
    const char* label;
    std::size_t shards;
    int workers;
  };
  const ShardPoint shard_points[] = {
      {"1s/1w", 1, 1}, {"2s/4w", 2, 4}, {"8s/4w", 8, 4}};
  Value retail_shards = Value::array();
  RetailRun shard_serial;
  double shard_worst_ratio = 0;
  bool shard_deterministic = true;
  if (want("shards")) for (const ShardPoint& p : shard_points) {
    RetailRun r = run_retail_best(shard_orders, kWindow, p.shards, p.workers,
                                  shard_repeats);
    if (p.shards == 1) shard_serial = r;
    bool same_outcome = r.converged && r.passes == shard_serial.passes &&
                        r.batches == shard_serial.batches;
    shard_deterministic = shard_deterministic && same_outcome;
    double ratio = shard_serial.wall_ms > 0 && r.wall_ms > 0
                       ? r.wall_ms / shard_serial.wall_ms
                       : 0;
    if (ratio > shard_worst_ratio) shard_worst_ratio = ratio;
    Value row = Value::object();
    row.set("config", Value(p.label));
    row.set("shards", Value(static_cast<std::int64_t>(p.shards)));
    row.set("workers", Value(static_cast<std::int64_t>(p.workers)));
    row.set("orders", Value(static_cast<std::int64_t>(shard_orders)));
    row.set("run", retail_run_value(r));
    row.set("wall_vs_serial", Value(ratio));
    row.set("same_outcome", Value(same_outcome));
    std::printf(
        "shards %-5s %5zu orders: batched %8.1fms (%5llu passes, "
        "%llu batches)  vs serial %.2fx  outcome %s\n",
        p.label, shard_orders, r.wall_ms,
        static_cast<unsigned long long>(r.passes),
        static_cast<unsigned long long>(r.batches), ratio,
        same_outcome ? "identical" : "DIVERGED");
    retail_shards.as_array().push_back(std::move(row));
  }
  report.set("retail_shards", std::move(retail_shards));

  Value home = Value::array();
  if (want("home")) for (const auto& [label, records] : home_scales) {
    SyncRun naive = run_smart_home(records, false);
    SyncRun fused = run_smart_home(records, true);
    double speedup = naive.wall_ms > 0 && fused.wall_ms > 0
                         ? naive.wall_ms / fused.wall_ms
                         : 0;
    Value row = Value::object();
    row.set("scale", Value(label));
    row.set("records", Value(static_cast<std::int64_t>(records)));
    row.set("naive", sync_run_value(naive));
    row.set("consolidated", sync_run_value(fused));
    row.set("speedup", Value(speedup));
    std::printf(
        "home   %-4s %5zu records: naive %8.1fms (%7llu processed)  "
        "consolidated %8.1fms (%7llu processed)  speedup %.2fx\n",
        label.c_str(), records, naive.wall_ms,
        static_cast<unsigned long long>(naive.records_processed),
        fused.wall_ms, static_cast<unsigned long long>(fused.records_processed),
        speedup);
    home.as_array().push_back(std::move(row));
  }
  report.set("smart_home", std::move(home));

  if (want("stages")) {
    Value stages = stage_attribution_value(smoke ? 4 : 400, kWindow);
    for (const Value& row : stages.as_array()) {
      std::printf("stage  %-4s %6lld spans  total %8lld us  mean %8.1f us\n",
                  row.get("stage")->as_string().c_str(),
                  static_cast<long long>(row.get("count")->as_int()),
                  static_cast<long long>(row.get("total_us")->as_int()),
                  row.get("mean_us")->as_double());
    }
    report.set("stage_attribution", std::move(stages));
  }

  // CPU-bound commit scaling: the epoch pipeline at {1,2,8} shards against
  // the legacy per-op path, both under open-loop load (the full workload
  // in flight at once). The gate is on the 8-shard point: the pipeline
  // restructure (one scheduler entry + one stamp reservation per epoch
  // instead of per op) must at least double commit throughput — on a
  // multi-core box phase-B shard parallelism stacks on top.
  double scaling_8s_speedup = 0;
  bool scaling_converged = true;
  if (want("scaling")) {
    const std::size_t scaling_ops = smoke ? 2000 : 20000;
    const std::size_t epoch_size = 250;
    // Single-core CI boxes show ±25% run-to-run wall noise; best-of-5
    // keeps the gate comparing steady-state machinery, not scheduler luck.
    const int repeats = smoke ? 1 : 5;
    const int scaling_workers = static_cast<int>(std::min<unsigned>(
        4, std::max(1u, std::thread::hardware_concurrency())));
    ScalingRun legacy = run_commit_scaling_best(
        scaling_ops, epoch_size, 1, 1, /*use_epoch=*/false, repeats);
    scaling_converged = scaling_converged && legacy.converged;
    std::printf(
        "scaling legacy 1s/1w %6zu ops: %8.1fms (%7.1f kops/s)%s\n",
        scaling_ops, legacy.wall_ms, legacy.kops_per_s,
        legacy.converged ? "" : "  DIVERGED");
    Value scaling = Value::array();
    for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
      const int workers = shards == 1 ? 1 : scaling_workers;
      ScalingRun r = run_commit_scaling_best(scaling_ops, epoch_size, shards,
                                             workers, /*use_epoch=*/true,
                                             repeats);
      scaling_converged = scaling_converged && r.converged;
      const double speedup = legacy.wall_ms > 0 && r.wall_ms > 0
                                 ? legacy.wall_ms / r.wall_ms
                                 : 0;
      if (shards == 8) scaling_8s_speedup = speedup;
      Value row = Value::object();
      row.set("shards", Value(static_cast<std::int64_t>(shards)));
      row.set("workers", Value(static_cast<std::int64_t>(workers)));
      row.set("ops", Value(static_cast<std::int64_t>(scaling_ops)));
      row.set("epoch_size", Value(static_cast<std::int64_t>(epoch_size)));
      row.set("legacy", scaling_run_value(legacy));
      row.set("epoch", scaling_run_value(r));
      row.set("speedup_vs_legacy", Value(speedup));
      std::printf(
          "scaling epoch %zus/%dw %6zu ops: %8.1fms (%7.1f kops/s)  "
          "vs legacy %.2fx%s\n",
          shards, workers, scaling_ops, r.wall_ms, r.kops_per_s, speedup,
          r.converged ? "" : "  DIVERGED");
      scaling.as_array().push_back(std::move(row));
    }
    report.set("scaling", std::move(scaling));
  }

  // Subscriber fan-out: 10k subscribers at 1% selectivity over the retail
  // order stream. The content filter must cut delivered-record volume by
  // at least 10x vs broadcast; the count is deterministic, so the gate
  // applies in smoke mode too.
  double fanout_volume_ratio = 0;
  if (want("fanout")) {
    const std::size_t fan_subscribers = smoke ? 1000 : 10000;
    const std::size_t fan_commits = smoke ? 20 : 100;
    FanoutRun broadcast = run_fanout(fan_subscribers, fan_commits, false);
    FanoutRun selective = run_fanout(fan_subscribers, fan_commits, true);
    fanout_volume_ratio =
        selective.delivered > 0
            ? static_cast<double>(broadcast.delivered) /
                  static_cast<double>(selective.delivered)
            : 0;
    Value fanout = Value::array();
    Value row = Value::object();
    row.set("subscribers", Value(static_cast<std::int64_t>(fan_subscribers)));
    row.set("commits", Value(static_cast<std::int64_t>(fan_commits)));
    Value b = Value::object();
    b.set("wall_ms", Value(broadcast.wall_ms));
    b.set("delivered", Value(static_cast<std::int64_t>(broadcast.delivered)));
    row.set("broadcast", std::move(b));
    Value f = Value::object();
    f.set("wall_ms", Value(selective.wall_ms));
    f.set("delivered", Value(static_cast<std::int64_t>(selective.delivered)));
    f.set("rejected_pre_enqueue",
          Value(static_cast<std::int64_t>(selective.filtered)));
    row.set("filtered", std::move(f));
    row.set("volume_ratio", Value(fanout_volume_ratio));
    std::printf(
        "fanout %5zu subs %4zu commits: broadcast %8llu delivered "
        "(%8.1fms)  filtered %8llu delivered (%8.1fms)  volume %.1fx\n",
        fan_subscribers, fan_commits,
        static_cast<unsigned long long>(broadcast.delivered),
        broadcast.wall_ms,
        static_cast<unsigned long long>(selective.delivered),
        selective.wall_ms, fanout_volume_ratio);
    fanout.as_array().push_back(std::move(row));
    report.set("fanout", std::move(fanout));
  }

  // Open-loop saturation knees for the two composition workloads. Scale
  // here is requests per run, not key-space size — the compositions draw
  // ids from their ~1M spaces either way. All metrics are virtual-time, so
  // the gate applies in smoke mode too (it is deterministic, like fanout).
  bool openloop_ok = true;
  std::string openloop_why;
  double openloop_ride_knee = 0;
  double openloop_fleet_knee = 0;
  if (want("openloop")) {
    const std::uint64_t ol_requests = smoke ? 48 : 240;
    const std::uint64_t ol_in_flight = 4;
    OpenLoopScenario ride = openloop_scenario(
        "ride_hailing", run_ride_openloop, ol_requests, ol_in_flight);
    OpenLoopScenario fleet = openloop_scenario(
        "fleet_telemetry", run_fleet_openloop, ol_requests, ol_in_flight);
    openloop_ok = ride.ok && fleet.ok;
    if (!ride.ok) {
      openloop_why = "ride_hailing: " + ride.why;
    } else if (!fleet.ok) {
      openloop_why = "fleet_telemetry: " + fleet.why;
    }
    openloop_ride_knee = ride.knee_rps;
    openloop_fleet_knee = fleet.knee_rps;
    Value openloop = Value::object();
    openloop.set("ride_hailing", std::move(ride.report));
    openloop.set("fleet_telemetry", std::move(fleet.report));
    report.set("openloop", std::move(openloop));
  }

  if (want("commit_seq")) {
    report.set("commit_seq", commit_seq_section(smoke));
  }

  // Durable-recovery gate: snapshot+delta must beat full-WAL replay by 5x
  // at the deep-history scale (smoke runs exercise the path but skip the
  // wall-clock gate; convergence — bit-identical recovered images — is
  // enforced everywhere).
  double recovery_speedup = 0;
  bool recovery_converged = true;
  if (want("recovery")) {
    report.set("recovery",
               recovery_section(smoke, &recovery_speedup,
                                &recovery_converged));
  }

  // Lenient ceiling: on a single-core CI box sharded runs can only lose a
  // little to pool overhead; a blowup past this means a real regression.
  constexpr double kMaxShardRatio = 2.0;
  constexpr double kRequiredScalingSpeedup = 2.0;
  constexpr double kRequiredRecoverySpeedup = 5.0;
  constexpr double kRequiredFanoutRatio = 10.0;
  bool fanout_gate_ok =
      !want("fanout") || fanout_volume_ratio >= kRequiredFanoutRatio;
  bool shard_gate_ok =
      shard_deterministic && (smoke || shard_worst_ratio <= kMaxShardRatio);
  bool scaling_gate_ok =
      scaling_converged &&
      (smoke || !want("scaling") ||
       scaling_8s_speedup >= kRequiredScalingSpeedup);
  bool recovery_gate_ok =
      recovery_converged &&
      (smoke || !want("recovery") ||
       recovery_speedup >= kRequiredRecoverySpeedup);
  if (all_sections) {
    Value gate = Value::object();
    gate.set("retail_100x_speedup", Value(retail_100x_speedup));
    gate.set("required_speedup", Value(2.0));
    gate.set("retail_shards_worst_ratio", Value(shard_worst_ratio));
    gate.set("retail_shards_max_ratio", Value(kMaxShardRatio));
    gate.set("retail_shards_deterministic", Value(shard_deterministic));
    gate.set("scaling_8s_speedup", Value(scaling_8s_speedup));
    gate.set("required_scaling_speedup", Value(kRequiredScalingSpeedup));
    gate.set("scaling_converged", Value(scaling_converged));
    gate.set("recovery_speedup", Value(recovery_speedup));
    gate.set("required_recovery_speedup", Value(kRequiredRecoverySpeedup));
    gate.set("recovery_converged", Value(recovery_converged));
    gate.set("fanout_volume_ratio", Value(fanout_volume_ratio));
    gate.set("required_fanout_ratio", Value(kRequiredFanoutRatio));
    gate.set("openloop_ride_knee_rps", Value(openloop_ride_knee));
    gate.set("openloop_fleet_knee_rps", Value(openloop_fleet_knee));
    gate.set("openloop_ok", Value(openloop_ok));
    gate.set("pass", Value((smoke || retail_100x_speedup >= 2.0) &&
                           shard_gate_ok && scaling_gate_ok &&
                           recovery_gate_ok && fanout_gate_ok &&
                           openloop_ok));
    report.set("gate", std::move(gate));
  }

  if (all_sections || out_explicit) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "bench_hotpath: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    out << knactor::common::to_json_pretty(report) << "\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (want("retail") && !smoke && retail_100x_speedup < 2.0) {
    std::fprintf(stderr,
                 "bench_hotpath: FAIL: retail 100x speedup %.2fx < 2.0x\n",
                 retail_100x_speedup);
    return 1;
  }
  if (want("shards") && !shard_gate_ok) {
    std::fprintf(stderr,
                 "bench_hotpath: FAIL: shard scaling %s (worst ratio %.2fx, "
                 "limit %.2fx)\n",
                 shard_deterministic ? "regressed vs serial"
                                     : "diverged from serial outcome",
                 shard_worst_ratio, kMaxShardRatio);
    return 1;
  }
  if (want("scaling") && !scaling_gate_ok) {
    std::fprintf(stderr,
                 "bench_hotpath: FAIL: commit scaling %s (8-shard speedup "
                 "%.2fx, required %.2fx)\n",
                 scaling_converged ? "below the gate" : "diverged",
                 scaling_8s_speedup, kRequiredScalingSpeedup);
    return 1;
  }
  if (want("recovery") && !recovery_gate_ok) {
    std::fprintf(stderr,
                 "bench_hotpath: FAIL: durable recovery %s (snapshot+delta "
                 "speedup %.2fx, required %.2fx)\n",
                 recovery_converged ? "below the gate"
                                    : "diverged from full replay",
                 recovery_speedup, kRequiredRecoverySpeedup);
    return 1;
  }
  if (!fanout_gate_ok) {
    std::fprintf(stderr,
                 "bench_hotpath: FAIL: fanout volume ratio %.1fx < %.1fx "
                 "(filtered subscriptions vs broadcast)\n",
                 fanout_volume_ratio, kRequiredFanoutRatio);
    return 1;
  }
  if (want("openloop") && !openloop_ok) {
    std::fprintf(stderr, "bench_hotpath: FAIL: openloop %s\n",
                 openloop_why.c_str());
    return 1;
  }
  return 0;
}
