// Schema-driven binary wire codec — the Protobuf analog used by the RPC
// baseline. A message schema assigns numbered, typed fields; encoding and
// decoding require the *same* schema on both sides. This is precisely the
// development-time coupling the paper's Problem 1 describes: when a service
// changes its schema, every client must regenerate stubs and rebuild
// (exercised by the Table 1 T3 task and the schema-evolution tests).
//
// Wire format (protobuf-like):
//   field   := key payload
//   key     := varint(tag << 3 | wire_type)
//   wire_type 0: varint (bool, int64 zigzag)
//   wire_type 1: fixed 64-bit little-endian (double)
//   wire_type 2: length-delimited (string, nested message, packed repeated)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace knactor::net {

enum class FieldType { kBool, kInt, kDouble, kString, kMessage };

struct FieldDescriptor {
  FieldDescriptor() = default;
  FieldDescriptor(std::uint32_t tag_in, std::string name_in, FieldType type_in,
                  bool repeated_in = false, std::string message_type_in = "",
                  bool required_in = false)
      : tag(tag_in),
        name(std::move(name_in)),
        type(type_in),
        repeated(repeated_in),
        message_type(std::move(message_type_in)),
        required(required_in) {}

  std::uint32_t tag = 0;  // 1-based, unique within the message
  std::string name;
  FieldType type = FieldType::kString;
  bool repeated = false;
  /// For kMessage fields: the nested message's full name in the pool.
  std::string message_type;
  bool required = false;
};

struct MessageDescriptor {
  /// e.g. "OnlineRetail.v1.ShipOrderRequest"
  std::string full_name;
  std::vector<FieldDescriptor> fields;

  [[nodiscard]] const FieldDescriptor* field_by_name(
      std::string_view name) const;
  [[nodiscard]] const FieldDescriptor* field_by_tag(std::uint32_t tag) const;
};

/// Registry of message descriptors; nested message fields resolve here.
class SchemaPool {
 public:
  common::Status add(MessageDescriptor desc);
  [[nodiscard]] const MessageDescriptor* find(std::string_view full_name) const;
  [[nodiscard]] std::size_t size() const { return messages_.size(); }

 private:
  std::map<std::string, MessageDescriptor, std::less<>> messages_;
};

/// Encodes an object Value against a schema. Fields present in the value
/// but absent from the schema are rejected (schema is the contract);
/// missing `required` fields are rejected.
common::Result<std::vector<std::uint8_t>> encode(const SchemaPool& pool,
                                                 const MessageDescriptor& desc,
                                                 const common::Value& value);

/// Decodes bytes against a schema. Unknown tags are rejected — a schema
/// mismatch between endpoints surfaces as a decode error, like a stub/
/// server version skew would in gRPC.
common::Result<common::Value> decode(const SchemaPool& pool,
                                     const MessageDescriptor& desc,
                                     const std::vector<std::uint8_t>& bytes);

}  // namespace knactor::net
