// API-centric online retail app: the gRPC-style baseline (§2, Fig. 3a).
// Eleven services composed by direct RPC: Checkout's PlaceOrder handler
// calls Payment.Charge, Shipping.GetQuote, Shipping.ShipOrder, Email.Send,
// Inventory.Reserve, ... — composition logic compiled into each caller,
// with client stubs (schemas) shared at development time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/broker.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/clock.h"
#include "sim/latency.h"

namespace knactor::apps {

struct RetailRpcOptions {
  /// One-way link latency between any two service pods (the paper's
  /// Kubernetes cluster network). Default tuned so the ShipOrder
  /// request+response propagation is ~1.8 ms (Table 2 row "RPC").
  sim::LatencyModel link = sim::LatencyModel::normal_ms(0.9, 0.05);
  sim::LatencyModel shipment_processing =
      sim::LatencyModel::normal_ms(446.0, 4.0);
  sim::LatencyModel payment_processing = sim::LatencyModel::normal_ms(2.0, 0.2);
};

/// Stage timings recorded for the last order (sim time).
struct RpcOrderTimings {
  sim::SimTime ship_request_sent = 0;   // checkout issued ShipOrder
  sim::SimTime ship_handler_start = 0;  // shipping began processing
  sim::SimTime ship_handler_end = 0;    // shipping finished processing
  sim::SimTime ship_response_recv = 0;  // checkout received the response

  [[nodiscard]] sim::SimTime processing() const {
    return ship_handler_end - ship_handler_start;
  }
  [[nodiscard]] sim::SimTime propagation() const {
    return (ship_response_recv - ship_request_sent) - processing();
  }
  [[nodiscard]] sim::SimTime total() const {
    return ship_response_recv - ship_request_sent;
  }
};

class RetailRpcApp {
 public:
  RetailRpcApp(sim::VirtualClock& clock, RetailRpcOptions options = {});

  /// Runs a full checkout (charge + quote + ship + side calls) and drives
  /// the clock to completion. Returns the tracking id.
  common::Result<std::string> place_order_sync(double cost,
                                               std::vector<std::string> items);

  [[nodiscard]] const RpcOrderTimings& last_timings() const {
    return timings_;
  }
  [[nodiscard]] net::SimNetwork& network() { return *network_; }
  [[nodiscard]] const net::SchemaPool& schemas() const { return pool_; }

  /// Applies a per-call timeout and retry policy to every client channel.
  /// Without a timeout the baseline hangs forever on a lost message (the
  /// fragile configuration the chaos tests contrast against).
  void configure_channels(sim::SimTime timeout,
                          sim::RetryPolicy retry = sim::RetryPolicy::none());
  /// Aggregated client-channel stats (calls/retries/timeouts/failures).
  [[nodiscard]] net::RpcChannel::Stats channel_stats() const;

  /// Number of RPC methods exposed across all services (the scattering
  /// metric input).
  [[nodiscard]] std::size_t method_count() const;
  [[nodiscard]] std::size_t service_count() const;

 private:
  void define_schemas();
  void start_services();

  sim::VirtualClock& clock_;
  RetailRpcOptions options_;
  std::unique_ptr<net::SimNetwork> network_;
  net::SchemaPool pool_;
  net::RpcRegistry registry_;
  std::vector<std::unique_ptr<net::RpcServer>> servers_;
  std::vector<std::unique_ptr<net::RpcChannel>> channels_;
  std::vector<net::ServiceDescriptor> services_;
  sim::Rng rng_{31};
  RpcOrderTimings timings_;
  int tracking_seq_ = 0;
  int payment_seq_ = 0;
};

}  // namespace knactor::apps
