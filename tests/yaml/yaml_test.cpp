#include "yaml/yaml.h"

#include <gtest/gtest.h>

namespace knactor::yaml {
namespace {

using common::Value;

TEST(Yaml, SimpleMapping) {
  auto r = parse("a: 1\nb: text\nc: true\n");
  ASSERT_TRUE(r.ok());
  const Value& v = r.value();
  EXPECT_EQ(v.get("a")->as_int(), 1);
  EXPECT_EQ(v.get("b")->as_string(), "text");
  EXPECT_EQ(v.get("c")->as_bool(), true);
}

TEST(Yaml, ScalarTyping) {
  auto v = parse("i: -3\nf: 2.5\ne: 1e3\nt: True\nn: null\ntilde: ~\ns: 1x\n")
               .value();
  EXPECT_TRUE(v.get("i")->is_int());
  EXPECT_TRUE(v.get("f")->is_double());
  EXPECT_TRUE(v.get("e")->is_double());
  EXPECT_TRUE(v.get("t")->is_bool());
  EXPECT_TRUE(v.get("n")->is_null());
  EXPECT_TRUE(v.get("tilde")->is_null());
  EXPECT_TRUE(v.get("s")->is_string());
}

TEST(Yaml, NestedMapping) {
  auto v = parse("outer:\n  inner:\n    leaf: 5\n").value();
  EXPECT_EQ(v.at_path("outer.inner.leaf")->as_int(), 5);
}

TEST(Yaml, EmptyValueIsNull) {
  auto v = parse("a:\nb: 1\n").value();
  EXPECT_TRUE(v.get("a")->is_null());
  EXPECT_EQ(v.get("b")->as_int(), 1);
}

TEST(Yaml, Sequence) {
  auto v = parse("items:\n  - one\n  - two\n  - 3\n").value();
  const Value* items = v.get("items");
  ASSERT_TRUE(items->is_array());
  EXPECT_EQ(items->as_array()[0].as_string(), "one");
  EXPECT_EQ(items->as_array()[2].as_int(), 3);
}

TEST(Yaml, SequenceAtSameIndentAsKey) {
  auto v = parse("items:\n- a\n- b\n").value();
  ASSERT_TRUE(v.get("items")->is_array());
  EXPECT_EQ(v.get("items")->as_array().size(), 2u);
}

TEST(Yaml, CompactSequenceOfMappings) {
  auto v = parse("ops:\n  - kind: filter\n    expr: x > 1\n  - kind: sort\n")
               .value();
  const Value* ops = v.get("ops");
  ASSERT_TRUE(ops->is_array());
  ASSERT_EQ(ops->as_array().size(), 2u);
  EXPECT_EQ(ops->as_array()[0].get("kind")->as_string(), "filter");
  EXPECT_EQ(ops->as_array()[0].get("expr")->as_string(), "x > 1");
  EXPECT_EQ(ops->as_array()[1].get("kind")->as_string(), "sort");
}

TEST(Yaml, QuotedScalars) {
  auto v = parse("a: 'single'\nb: \"double\"\nc: '[not, flow]'\n").value();
  EXPECT_EQ(v.get("a")->as_string(), "single");
  EXPECT_EQ(v.get("b")->as_string(), "double");
  EXPECT_EQ(v.get("c")->as_string(), "[not, flow]");
}

TEST(Yaml, SingleQuoteEscaping) {
  auto v = parse("a: 'it''s'\n").value();
  EXPECT_EQ(v.get("a")->as_string(), "it's");
}

TEST(Yaml, CommentsStripped) {
  auto v = parse("# header\na: 1 # trailing\n# middle\nb: 2\n").value();
  EXPECT_EQ(v.get("a")->as_int(), 1);
  EXPECT_EQ(v.get("b")->as_int(), 2);
}

TEST(Yaml, HashInsideQuotesKept) {
  auto v = parse("a: 'has # inside'\n").value();
  EXPECT_EQ(v.get("a")->as_string(), "has # inside");
}

TEST(Yaml, TrailingCommentsCaptured) {
  auto r = parse_document("shippingCost: number # +kr: external\nplain: int\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().comments.at("shippingCost"), "+kr: external");
  EXPECT_EQ(r.value().comments.count("plain"), 0u);
}

TEST(Yaml, FoldedBlockScalar) {
  auto v = parse("expr: >\n  line one\n  line two\n").value();
  EXPECT_EQ(v.get("expr")->as_string(), "line one line two");
}

TEST(Yaml, LiteralBlockScalar) {
  auto v = parse("text: |\n  line one\n  line two\n").value();
  EXPECT_EQ(v.get("text")->as_string(), "line one\nline two\n");
}

TEST(Yaml, LiteralBlockScalarChomped) {
  auto v = parse("text: |-\n  only line\n").value();
  EXPECT_EQ(v.get("text")->as_string(), "only line");
}

TEST(Yaml, FoldedScalarKeepsExpressionHash) {
  // '#' inside a folded expression is not a comment.
  auto v = parse("e: >\n  a # b\n").value();
  EXPECT_EQ(v.get("e")->as_string(), "a # b");
}

TEST(Yaml, FlowSequence) {
  auto v = parse("xs: [1, 2.5, 'three', true]\n").value();
  const Value* xs = v.get("xs");
  ASSERT_TRUE(xs->is_array());
  EXPECT_EQ(xs->as_array()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(xs->as_array()[1].as_double(), 2.5);
  EXPECT_EQ(xs->as_array()[2].as_string(), "three");
  EXPECT_EQ(xs->as_array()[3].as_bool(), true);
}

TEST(Yaml, FlowMapping) {
  auto v = parse("m: {a: 1, b: two}\n").value();
  EXPECT_EQ(v.at_path("m.a")->as_int(), 1);
  EXPECT_EQ(v.at_path("m.b")->as_string(), "two");
}

TEST(Yaml, NestedFlow) {
  auto v = parse("m: {xs: [1, [2, 3]], e: {}}\n").value();
  EXPECT_EQ(v.at_path("m.xs.1.0")->as_int(), 2);
  EXPECT_TRUE(v.at_path("m.e")->is_object());
}

TEST(Yaml, KeysWithDotsAndSlashes) {
  auto v = parse("C.order:\n  shippingCost: 1\nC: OnlineRetail/v1/Checkout\n")
               .value();
  EXPECT_NE(v.get("C.order"), nullptr);
  EXPECT_EQ(v.get("C")->as_string(), "OnlineRetail/v1/Checkout");
}

TEST(Yaml, Fig5SchemaParses) {
  const char* schema =
      "schema: OnlineRetail/v1/Checkout/Order\n"
      "items: object\n"
      "address: string\n"
      "cost: number\n"
      "shippingCost: number # +kr: external\n"
      "totalCost: number\n"
      "currency: string\n"
      "paymentID: string # +kr: external\n"
      "trackingID: string # +kr: external\n";
  auto r = parse_document(schema);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().root.get("schema")->as_string(),
            "OnlineRetail/v1/Checkout/Order");
  EXPECT_EQ(r.value().comments.size(), 3u);
}

TEST(Yaml, Fig6DxgParses) {
  const char* dxg =
      "Input:\n"
      "  C: OnlineRetail/v1/Checkout/knactor-checkout\n"
      "  S: OnlineRetail/v1/Shipping/knactor-shipping\n"
      "  P: OnlineRetail/v1/Payment/knactor-payment\n"
      "DXG:\n"
      "  C.order:\n"
      "    shippingCost: >\n"
      "      currency_convert(S.quote.price,\n"
      "      S.quote.currency, this.currency)\n"
      "    paymentID: P.id\n"
      "    trackingID: S.id\n"
      "  P:\n"
      "    # other fields in the data store: id\n"
      "    amount: C.order.totalCost\n"
      "    currency: C.order.currency\n"
      "  S:\n"
      "    # other fields in the data store: id, quote\n"
      "    items: '[item.name for item in C.order.items]'\n"
      "    addr: C.order.address\n"
      "    method: >\n"
      "      \"air\" if C.order.cost > 1000 else \"ground\"\n";
  auto r = parse(dxg);
  ASSERT_TRUE(r.ok());
  const Value& v = r.value();
  EXPECT_EQ(v.at_path("Input.C")->as_string(),
            "OnlineRetail/v1/Checkout/knactor-checkout");
  EXPECT_EQ(
      v.get("DXG")->get("C.order")->get("shippingCost")->as_string(),
      "currency_convert(S.quote.price, S.quote.currency, this.currency)");
  EXPECT_EQ(v.get("DXG")->get("S")->get("method")->as_string(),
            "\"air\" if C.order.cost > 1000 else \"ground\"");
}

TEST(Yaml, EmptyDocumentIsNull) {
  EXPECT_TRUE(parse("").value().is_null());
  EXPECT_TRUE(parse("\n# only comments\n").value().is_null());
}

TEST(Yaml, BadIndentationErrors) {
  auto r = parse("a: 1\n   b: 2\n");
  EXPECT_FALSE(r.ok());
}

TEST(Yaml, TopLevelSequence) {
  auto v = parse("- 1\n- 2\n").value();
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.as_array().size(), 2u);
}

TEST(Yaml, DumpRoundTrip) {
  auto v = parse("a: 1\nb:\n  c: text\n  d: [1, 2]\ne: true\n").value();
  auto again = parse(dump(v));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(v == again.value());
}

TEST(Yaml, DumpQuotesAmbiguousStrings) {
  Value v = Value::object({{"a", "123"}, {"b", "true"}, {"c", "x: y"}});
  auto again = parse(dump(v));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().get("a")->is_string());
  EXPECT_TRUE(again.value().get("b")->is_string());
  EXPECT_EQ(again.value().get("c")->as_string(), "x: y");
}

}  // namespace
}  // namespace knactor::yaml
