#include "de/rbac.h"

#include <gtest/gtest.h>

#include "de/object.h"

namespace knactor::de {
namespace {

using common::Value;

Role make_role(const std::string& name, const std::string& store,
               std::set<Verb> verbs) {
  Role role;
  role.name = name;
  PolicyRule rule;
  rule.store = store;
  rule.verbs = std::move(verbs);
  role.rules.push_back(rule);
  return role;
}

TEST(Rbac, DisabledAllowsEverything) {
  Rbac rbac;
  EXPECT_TRUE(rbac.check("anyone", "any", "key", Verb::kDelete, 0).allowed);
}

TEST(Rbac, EnabledDeniesByDefault) {
  Rbac rbac;
  rbac.set_enabled(true);
  EXPECT_FALSE(rbac.check("anyone", "s", "k", Verb::kGet, 0).allowed);
}

TEST(Rbac, RoleGrantsVerbsOnStore) {
  Rbac rbac;
  rbac.set_enabled(true);
  ASSERT_TRUE(rbac.add_role(make_role("reader", "s", {Verb::kGet})).ok());
  ASSERT_TRUE(rbac.bind("alice", "reader").ok());
  EXPECT_TRUE(rbac.check("alice", "s", "k", Verb::kGet, 0).allowed);
  EXPECT_FALSE(rbac.check("alice", "s", "k", Verb::kUpdate, 0).allowed);
  EXPECT_FALSE(rbac.check("alice", "other", "k", Verb::kGet, 0).allowed);
  EXPECT_FALSE(rbac.check("bob", "s", "k", Verb::kGet, 0).allowed);
}

TEST(Rbac, WildcardStore) {
  Rbac rbac;
  rbac.set_enabled(true);
  ASSERT_TRUE(rbac.add_role(make_role("admin", "*",
                                      {Verb::kGet, Verb::kUpdate}))
                  .ok());
  ASSERT_TRUE(rbac.bind("root", "admin").ok());
  EXPECT_TRUE(rbac.check("root", "anything", "k", Verb::kUpdate, 0).allowed);
}

TEST(Rbac, KeyPrefixScoping) {
  Rbac rbac;
  rbac.set_enabled(true);
  Role role = make_role("orders-only", "s", {Verb::kGet});
  role.rules[0].key_prefix = "order/";
  ASSERT_TRUE(rbac.add_role(role).ok());
  ASSERT_TRUE(rbac.bind("alice", "orders-only").ok());
  EXPECT_TRUE(rbac.check("alice", "s", "order/1", Verb::kGet, 0).allowed);
  EXPECT_FALSE(rbac.check("alice", "s", "cart/1", Verb::kGet, 0).allowed);
}

TEST(Rbac, DuplicateRoleRejected) {
  Rbac rbac;
  ASSERT_TRUE(rbac.add_role(make_role("r", "s", {Verb::kGet})).ok());
  EXPECT_FALSE(rbac.add_role(make_role("r", "s", {Verb::kGet})).ok());
}

TEST(Rbac, BindUnknownRoleRejected) {
  Rbac rbac;
  EXPECT_FALSE(rbac.bind("alice", "ghost").ok());
}

TEST(Rbac, UnbindRevokes) {
  Rbac rbac;
  rbac.set_enabled(true);
  ASSERT_TRUE(rbac.add_role(make_role("r", "s", {Verb::kGet})).ok());
  ASSERT_TRUE(rbac.bind("alice", "r").ok());
  EXPECT_TRUE(rbac.check("alice", "s", "k", Verb::kGet, 0).allowed);
  rbac.unbind("alice", "r");
  EXPECT_FALSE(rbac.check("alice", "s", "k", Verb::kGet, 0).allowed);
}

TEST(Rbac, MultipleRolesUnion) {
  Rbac rbac;
  rbac.set_enabled(true);
  ASSERT_TRUE(rbac.add_role(make_role("reader", "s", {Verb::kGet})).ok());
  ASSERT_TRUE(rbac.add_role(make_role("writer", "s", {Verb::kUpdate})).ok());
  ASSERT_TRUE(rbac.bind("alice", "reader").ok());
  ASSERT_TRUE(rbac.bind("alice", "writer").ok());
  EXPECT_TRUE(rbac.check("alice", "s", "k", Verb::kGet, 0).allowed);
  EXPECT_TRUE(rbac.check("alice", "s", "k", Verb::kUpdate, 0).allowed);
}

TEST(Rbac, FieldLevelGrant) {
  Rbac rbac;
  rbac.set_enabled(true);
  Role role = make_role("external-only", "s", {Verb::kUpdate});
  role.rules[0].fields.allowed = {"shippingCost", "paymentID"};
  ASSERT_TRUE(rbac.add_role(role).ok());
  ASSERT_TRUE(rbac.bind("integrator", "external-only").ok());

  Decision d = rbac.check("integrator", "s", "order", Verb::kUpdate, 0);
  ASSERT_TRUE(d.allowed);
  EXPECT_FALSE(d.fields.unrestricted());
  Value ok_write = Value::object({{"shippingCost", 5.0}});
  EXPECT_TRUE(Rbac::validate_write(ok_write, d.fields).ok());
  Value bad_write = Value::object({{"cost", 1.0}});
  EXPECT_FALSE(Rbac::validate_write(bad_write, d.fields).ok());
}

TEST(Rbac, FieldLevelDeny) {
  FieldRule rule;
  rule.denied = {"secret"};
  EXPECT_TRUE(rule.permits("open"));
  EXPECT_FALSE(rule.permits("secret"));
  Value v = Value::object({{"open", 1}, {"secret", 2}});
  Value filtered = Rbac::filter_fields(v, rule);
  EXPECT_NE(filtered.get("open"), nullptr);
  EXPECT_EQ(filtered.get("secret"), nullptr);
}

TEST(Rbac, UnrestrictedGrantWinsOverRestricted) {
  Rbac rbac;
  rbac.set_enabled(true);
  Role narrow = make_role("narrow", "s", {Verb::kGet});
  narrow.rules[0].fields.allowed = {"a"};
  ASSERT_TRUE(rbac.add_role(narrow).ok());
  ASSERT_TRUE(rbac.add_role(make_role("wide", "s", {Verb::kGet})).ok());
  ASSERT_TRUE(rbac.bind("alice", "narrow").ok());
  ASSERT_TRUE(rbac.bind("alice", "wide").ok());
  Decision d = rbac.check("alice", "s", "k", Verb::kGet, 0);
  EXPECT_TRUE(d.allowed);
  EXPECT_TRUE(d.fields.unrestricted());
}

TEST(Rbac, TimeWindowWithinDay) {
  TimeWindow w{8LL * 3600 * sim::kSecond, 20LL * 3600 * sim::kSecond};
  EXPECT_TRUE(w.contains(12LL * 3600 * sim::kSecond));
  EXPECT_FALSE(w.contains(6LL * 3600 * sim::kSecond));
  EXPECT_FALSE(w.contains(22LL * 3600 * sim::kSecond));
  // Next day, same hours.
  EXPECT_TRUE(w.contains((24 + 12LL) * 3600 * sim::kSecond));
}

TEST(Rbac, TimeWindowWrapping) {
  TimeWindow w{22LL * 3600 * sim::kSecond, 6LL * 3600 * sim::kSecond};
  EXPECT_TRUE(w.contains(23LL * 3600 * sim::kSecond));
  EXPECT_TRUE(w.contains(2LL * 3600 * sim::kSecond));
  EXPECT_FALSE(w.contains(12LL * 3600 * sim::kSecond));
}

TEST(Rbac, TimeWindowedRule) {
  Rbac rbac;
  rbac.set_enabled(true);
  Role role = make_role("day-shift", "s", {Verb::kUpdate});
  role.rules[0].window =
      TimeWindow{8LL * 3600 * sim::kSecond, 20LL * 3600 * sim::kSecond};
  ASSERT_TRUE(rbac.add_role(role).ok());
  ASSERT_TRUE(rbac.bind("worker", "day-shift").ok());
  EXPECT_TRUE(rbac.check("worker", "s", "k", Verb::kUpdate,
                         12LL * 3600 * sim::kSecond)
                  .allowed);
  EXPECT_FALSE(rbac.check("worker", "s", "k", Verb::kUpdate,
                          23LL * 3600 * sim::kSecond)
                   .allowed);
}

// Enforcement through the Object DE.
TEST(RbacEnforcement, ObjectStoreOperations) {
  sim::VirtualClock clock;
  ObjectDe de(clock, ObjectDeProfile::instant());
  ObjectStore& store = de.create_store("s");
  Rbac& rbac = de.rbac();
  Role reader = make_role("reader", "s", {Verb::kGet, Verb::kList});
  ASSERT_TRUE(rbac.add_role(reader).ok());
  Role writer = make_role("writer", "s",
                          {Verb::kGet, Verb::kUpdate, Verb::kDelete});
  ASSERT_TRUE(rbac.add_role(writer).ok());
  ASSERT_TRUE(rbac.bind("r", "reader").ok());
  ASSERT_TRUE(rbac.bind("w", "writer").ok());
  rbac.set_enabled(true);

  EXPECT_FALSE(store.put_sync("r", "k", Value::object({})).ok());
  EXPECT_TRUE(store.put_sync("w", "k", Value::object({{"a", 1}})).ok());
  EXPECT_TRUE(store.get_sync("r", "k").ok());
  EXPECT_TRUE(store.list_sync("r", "").ok());
  EXPECT_FALSE(store.list_sync("w", "").ok());  // writer lacks list
  EXPECT_FALSE(store.remove_sync("r", "k").ok());
  EXPECT_TRUE(store.remove_sync("w", "k").ok());
  EXPECT_GE(de.stats().permission_denials, 3u);
}

TEST(RbacEnforcement, WatchDeniedReturnsZero) {
  sim::VirtualClock clock;
  ObjectDe de(clock, ObjectDeProfile::instant());
  ObjectStore& store = de.create_store("s");
  de.rbac().set_enabled(true);
  EXPECT_EQ(store.watch("nobody", "", [](const WatchEvent&) {}), 0u);
}

TEST(RbacEnforcement, ReadFilteringAppliesFieldRules) {
  sim::VirtualClock clock;
  ObjectDe de(clock, ObjectDeProfile::instant());
  ObjectStore& store = de.create_store("s");
  Rbac& rbac = de.rbac();
  Role partial = make_role("partial", "s", {Verb::kGet, Verb::kUpdate});
  partial.rules[0].fields.allowed = {"public"};
  ASSERT_TRUE(rbac.add_role(partial).ok());
  Role full = make_role("full", "s",
                        {Verb::kGet, Verb::kUpdate, Verb::kList});
  ASSERT_TRUE(rbac.add_role(full).ok());
  ASSERT_TRUE(rbac.bind("limited", "partial").ok());
  ASSERT_TRUE(rbac.bind("owner", "full").ok());
  rbac.set_enabled(true);

  ASSERT_TRUE(store
                  .put_sync("owner", "k",
                            Value::object({{"public", 1}, {"private", 2}}))
                  .ok());
  auto got = store.get_sync("limited", "k");
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got.value().data->get("public"), nullptr);
  EXPECT_EQ(got.value().data->get("private"), nullptr);

  // Field-limited write rejected when touching other fields.
  EXPECT_FALSE(
      store.put_sync("limited", "k", Value::object({{"private", 9}})).ok());
  EXPECT_TRUE(
      store.patch_sync("limited", "k", Value::object({{"public", 9}})).ok());
}

TEST(RbacEnforcement, UdfRunsAsOwnerPrincipal) {
  sim::VirtualClock clock;
  ObjectDe de(clock, ObjectDeProfile::instant());
  de.create_store("s");
  Rbac& rbac = de.rbac();
  Role udf_role = make_role("udf-writer", "s", {Verb::kUpdate});
  ASSERT_TRUE(rbac.add_role(udf_role).ok());
  Role invoker = make_role("invoker", "*", {Verb::kInvokeUdf});
  ASSERT_TRUE(rbac.add_role(invoker).ok());
  ASSERT_TRUE(rbac.bind("owner", "udf-writer").ok());
  ASSERT_TRUE(rbac.bind("owner", "invoker").ok());
  ASSERT_TRUE(rbac.bind("caller", "invoker").ok());
  rbac.set_enabled(true);

  ASSERT_TRUE(de.register_udf("owner", "write",
                              [](UdfContext& ctx, const Value&)
                                  -> common::Result<Value> {
                                Value v = Value::object();
                                v.set("x", Value(1));
                                KN_TRY(ctx.put("s", "k", v));
                                return Value(true);
                              })
                  .ok());
  // Caller may invoke; the UDF's writes are authorized as "owner".
  EXPECT_TRUE(de.call_udf_sync("caller", "write", Value::object({})).ok());
  // Unbound principal cannot invoke.
  EXPECT_FALSE(de.call_udf_sync("stranger", "write", Value::object({})).ok());
}

}  // namespace
}  // namespace knactor::de
