# Golden + contract tests for whole-composition lint:
#   * `knctl lint --project project_broken` reproduces project_broken.txt
#     byte-for-byte (KN5xx/KN6xx findings with two-endpoint locations), exit 1
#   * JSON mode keeps the findings, the related endpoints, and the totals
#   * multi-arg `knctl lint a.yaml b.yaml ...` shares the aggregation path:
#     duplicate inputs dedupe to the same report, one summary, one exit code
#   * `knctl lint --project specs/` is clean (exit 0)
#   * `knctl analyze --cost` renders the per-round cost model (exit 0)
#
# Usage: cmake -DKNCTL=<path> -DFIXTURES=<dir> -DSPECS=<dir> -P project_lint.cmake
cmake_minimum_required(VERSION 3.16)
foreach(var KNCTL FIXTURES SPECS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${KNCTL} lint --project project_broken
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "expected exit 1 (findings), got ${rc}\n${actual}${err}")
endif()
file(READ ${FIXTURES}/project_broken.txt expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR "project lint drifted from golden project_broken.txt\n"
                      "--- expected ---\n${expected}\n--- actual ---\n${actual}")
endif()

# JSON mode: same findings, machine-parseable, related endpoints preserved.
execute_process(
  COMMAND ${KNCTL} lint --project project_broken --format json
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE json_out
  RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 1)
  message(FATAL_ERROR "json mode: expected exit 1, got ${json_rc}")
endif()
foreach(needle "\"errors\": 4" "\"KN501\"" "\"KN601\"" "\"KN602\"" "\"KN603\""
               "\"related\"")
  if(NOT json_out MATCHES "${needle}")
    message(FATAL_ERROR "json mode lost ${needle}:\n${json_out}")
  endif()
endforeach()

# Multi-arg aggregation: listing the files by hand goes through the same
# path as --project; repeating an input must not change the report.
set(project_files
  project_broken/a_restock.yaml project_broken/b_billing.yaml
  project_broken/c_telemetry.yaml project_broken/alert_schema.yaml
  project_broken/billing_schema.yaml project_broken/inventory_schema.yaml
  project_broken/labels_schema.yaml project_broken/restock_schema.yaml
  project_broken/telemetry_schema.yaml)
execute_process(
  COMMAND ${KNCTL} lint ${project_files}
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE multi_out
  RESULT_VARIABLE multi_rc)
execute_process(
  COMMAND ${KNCTL} lint ${project_files} project_broken/a_restock.yaml
          project_broken/c_telemetry.yaml
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE dup_out
  RESULT_VARIABLE dup_rc)
if(NOT multi_rc EQUAL 1 OR NOT dup_rc EQUAL 1)
  message(FATAL_ERROR "multi-arg lint: expected exit 1/1, got "
                      "${multi_rc}/${dup_rc}\n${multi_out}\n${dup_out}")
endif()
if(NOT multi_out STREQUAL dup_out)
  message(FATAL_ERROR "duplicate inputs changed the aggregated report\n"
                      "--- unique ---\n${multi_out}--- duplicated ---\n${dup_out}")
endif()
string(REGEX MATCHALL "error\\(s\\)" summaries "${multi_out}")
list(LENGTH summaries summary_count)
if(NOT summary_count EQUAL 1)
  message(FATAL_ERROR "expected exactly one summary line, got "
                      "${summary_count}:\n${multi_out}")
endif()

# The repo's own specs must stay clean under the cross-spec passes.
execute_process(
  COMMAND ${KNCTL} lint --project ${SPECS}
  OUTPUT_VARIABLE clean_out
  RESULT_VARIABLE clean_rc)
if(NOT clean_rc EQUAL 0 OR NOT clean_out MATCHES ": clean")
  message(FATAL_ERROR "specs/ not clean under --project (rc ${clean_rc}):\n"
                      "${clean_out}")
endif()

# Cost model smoke: mapping eval counts + planner per-stage record counts.
execute_process(
  COMMAND ${KNCTL} analyze --cost project_broken --records 20
  WORKING_DIRECTORY ${FIXTURES}
  OUTPUT_VARIABLE cost_out
  RESULT_VARIABLE cost_rc)
if(NOT cost_rc EQUAL 0)
  message(FATAL_ERROR "analyze --cost failed (rc ${cost_rc}):\n${cost_out}")
endif()
foreach(needle "composition cost at 20 records/store" "records/stage"
               "eval\\(s\\)")
  if(NOT cost_out MATCHES "${needle}")
    message(FATAL_ERROR "cost report missing ${needle}:\n${cost_out}")
  endif()
endforeach()

message(STATUS "project lint OK")
