// Runtime: owns the virtual clock and hosts data exchanges, knactors, and
// integrators for one simulated deployment. This is the top-level entry
// point of the public API — see examples/quickstart.cpp.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cast.h"
#include "core/integrator.h"
#include "core/knactor.h"
#include "core/sync.h"
#include "core/trace.h"
#include "de/log.h"
#include "de/object.h"
#include "de/retention.h"
#include "de/schema.h"
#include "net/network.h"
#include "sim/clock.h"

namespace knactor::core {

/// Bridges a network's chaos fault stream into span/counter telemetry:
/// every injected fault becomes a `chaos.fault` Tracer span and bumps the
/// `chaos.fault` / `chaos.fault.<kind>` Metrics counters. Runtime wires this
/// automatically for its own network; standalone networks (e.g. the RPC
/// baseline apps) can attach it explicitly.
void attach_fault_observer(net::SimNetwork& network, Tracer* tracer,
                           Metrics* metrics);

class Runtime {
 public:
  Runtime() : tracer_(clock_) {}

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] sim::VirtualClock& clock() { return clock_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }

  /// Creates a named Object DE with the given profile.
  de::ObjectDe& add_object_de(const std::string& name,
                              de::ObjectDeProfile profile);
  [[nodiscard]] de::ObjectDe* object_de(const std::string& name);

  de::LogDe& add_log_de(const std::string& name, de::LogDeProfile profile);
  [[nodiscard]] de::LogDe* log_de(const std::string& name);

  /// Simulated network for API-centric baselines hosted side by side.
  [[nodiscard]] net::SimNetwork& network();

  /// Registers a knactor. The runtime owns it.
  Knactor& add_knactor(std::unique_ptr<Knactor> knactor);
  [[nodiscard]] Knactor* knactor(const std::string& name);

  /// Registers an integrator. The runtime owns it.
  Integrator& add_integrator(std::unique_ptr<Integrator> integrator);
  [[nodiscard]] Integrator* integrator(const std::string& name);
  [[nodiscard]] CastIntegrator* cast(const std::string& name);
  [[nodiscard]] SyncIntegrator* sync(const std::string& name);

  /// Global schema registry (the Externalize step registers here).
  [[nodiscard]] de::SchemaRegistry& schemas() { return schemas_; }

  /// Starts every knactor and integrator.
  common::Status start_all();
  void stop_all();

  /// Drives the clock until no events remain (or max_events safety cap).
  std::size_t run_until_idle(std::size_t max_events = 1'000'000);
  /// Drives the clock for a fixed sim duration.
  void run_for(sim::SimTime duration);

 private:
  sim::VirtualClock clock_;
  Tracer tracer_;
  Metrics metrics_;
  de::SchemaRegistry schemas_;
  std::map<std::string, std::unique_ptr<de::ObjectDe>> object_des_;
  std::map<std::string, std::unique_ptr<de::LogDe>> log_des_;
  std::unique_ptr<net::SimNetwork> network_;
  std::vector<std::unique_ptr<Knactor>> knactors_;
  std::vector<std::unique_ptr<Integrator>> integrators_;
};

}  // namespace knactor::core
