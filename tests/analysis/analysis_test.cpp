// Unit tests for the unified static analyzer (src/analysis): diagnostic
// catalog and rendering, expression type inference, Sync pipeline schema
// flow, the RBAC pre-flight, and end-to-end lint_spec() behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint.h"
#include "analysis/rbac_preflight.h"
#include "analysis/sync_analysis.h"
#include "analysis/typecheck.h"
#include "apps/retail_specs.h"
#include "common/json.h"
#include "core/dxg.h"
#include "de/schema.h"

namespace knactor::analysis {
namespace {

// ---------------------------------------------------------------------------
// Helpers

de::SchemaRegistry retail_schemas() {
  de::SchemaRegistry schemas;
  EXPECT_TRUE(schemas.add_yaml(apps::kCheckoutSchema).ok());
  EXPECT_TRUE(schemas.add_yaml(apps::kShippingSchema).ok());
  EXPECT_TRUE(schemas.add_yaml(apps::kPaymentSchema).ok());
  return schemas;
}

de::SchemaRegistry smart_home_schemas() {
  de::SchemaRegistry schemas;
  EXPECT_TRUE(schemas
                  .add_yaml("schema: SmartHome/v1/Motion/Event\n"
                            "triggered: bool\nroom: string\nts: number\n")
                  .ok());
  EXPECT_TRUE(schemas
                  .add_yaml("schema: SmartHome/v1/House/Event\n"
                            "motion: bool\nroom: string\n")
                  .ok());
  return schemas;
}

bool has_code(const std::vector<Diagnostic>& diags, std::string_view code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

int count_code(const std::vector<Diagnostic>& diags, std::string_view code) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

std::string codes_of(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    if (!out.empty()) out += " ";
    out += d.code;
  }
  return out;
}

/// Lints a DXG spec against the retail schemas.
std::vector<Diagnostic> lint_retail(const std::string& text) {
  de::SchemaRegistry schemas = retail_schemas();
  LintOptions options;
  options.file = "test.yaml";
  options.schemas = &schemas;
  return lint_spec(text, options);
}

constexpr const char* kRetailInputs =
    "Input:\n"
    "  C: OnlineRetail/v1/Checkout/Order\n"
    "  S: OnlineRetail/v1/Shipping/Shipment\n"
    "  P: OnlineRetail/v1/Payment/Charge\n";

// ---------------------------------------------------------------------------
// Diagnostic catalog

TEST(DiagnosticCatalog, CodesAreUniqueAndSorted) {
  const auto& catalog = diagnostic_catalog();
  ASSERT_FALSE(catalog.empty());
  std::set<std::string> seen;
  std::string prev;
  for (const auto& info : catalog) {
    EXPECT_TRUE(seen.insert(info.code).second) << "duplicate " << info.code;
    EXPECT_LT(prev, info.code) << "catalog not sorted at " << info.code;
    prev = info.code;
  }
}

TEST(DiagnosticCatalog, LegacyIssueKindsAliasOntoCatalog) {
  using Kind = core::DxgIssue::Kind;
  for (auto kind : {Kind::kUnresolvedAlias, Kind::kCycle, Kind::kUnusedInput,
                    Kind::kNotExternal, Kind::kUnknownField,
                    Kind::kSelfDependency}) {
    const char* code = core::issue_kind_code(kind);
    const DiagnosticInfo* info = find_diagnostic_info(code);
    ASSERT_NE(info, nullptr) << code;
    EXPECT_STREQ(info->title, core::issue_kind_name(kind));
  }
}

TEST(DiagnosticCatalog, MakeDiagFillsSeverityFromCatalog) {
  EXPECT_EQ(make_diag("KN003", {}, "x").severity, Severity::kWarning);
  EXPECT_EQ(make_diag("KN101", {}, "x").severity, Severity::kError);
  EXPECT_EQ(make_diag("KN999", {}, "x").severity, Severity::kError);
}

TEST(Diagnostic, TextRenderingIncludesLocationAndCode) {
  Diagnostic d = make_diag("KN101", {"a.yaml", 7, 3}, "boom", "fix it");
  EXPECT_EQ(d.to_text(), "a.yaml:7:3: error: boom [KN101]\n  hint: fix it");
  Diagnostic no_loc = make_diag("KN400", {"b.yaml", 0, 0}, "bad");
  EXPECT_EQ(no_loc.to_text(), "b.yaml: error: bad [KN400]");
}

TEST(Diagnostic, JsonRenderingRoundTrips) {
  std::vector<Diagnostic> diags = {
      make_diag("KN102", {"a.yaml", 2, 1}, "m1"),
      make_diag("KN003", {"a.yaml", 1, 1}, "m2"),
  };
  auto parsed = common::parse_json(render_json(diags));
  ASSERT_TRUE(parsed.ok());
  const common::Value& v = parsed.value();
  EXPECT_EQ(v.get("errors")->as_int(), 1);
  EXPECT_EQ(v.get("warnings")->as_int(), 1);
  ASSERT_EQ(v.get("diagnostics")->as_array().size(), 2u);
  const common::Value& first = v.get("diagnostics")->as_array()[0];
  EXPECT_EQ(first.get("code")->as_string(), "KN102");
  EXPECT_EQ(first.get("line")->as_int(), 2);
}

TEST(Diagnostic, SortIsByFileLineColCode) {
  std::vector<Diagnostic> diags = {
      make_diag("KN102", {"b.yaml", 1, 1}, "x"),
      make_diag("KN101", {"a.yaml", 9, 1}, "x"),
      make_diag("KN105", {"a.yaml", 2, 5}, "x"),
      make_diag("KN103", {"a.yaml", 2, 5}, "x"),
  };
  sort_diagnostics(diags);
  EXPECT_EQ(codes_of(diags), "KN103 KN105 KN101 KN102");
}

// ---------------------------------------------------------------------------
// Type machinery

TEST(Types, DeclMappingAndPrinting) {
  EXPECT_EQ(type_to_string(type_from_decl("string")), "string");
  EXPECT_EQ(type_to_string(type_from_decl("list")), "list");
  EXPECT_EQ(type_to_string(Type::list_of(Type::of(TypeKind::kString))),
            "list(string)");
  EXPECT_TRUE(type_from_decl("whatever").is_any());
}

TEST(Types, AssignabilityMirrorsRuntimeTypeMatches) {
  Type number = Type::of(TypeKind::kNumber);
  Type integer = Type::of(TypeKind::kInt);
  Type list = Type::of(TypeKind::kList);
  Type object = Type::of(TypeKind::kObject);
  Type str = Type::of(TypeKind::kString);
  EXPECT_TRUE(assignable(number, integer));   // int ⊑ number
  EXPECT_FALSE(assignable(integer, number));  // number ⋢ int
  EXPECT_TRUE(assignable(object, list));      // arrays satisfy object decls
  EXPECT_FALSE(assignable(list, object));
  EXPECT_FALSE(assignable(list, str));
  EXPECT_TRUE(assignable(Type::any(), list));
  EXPECT_TRUE(assignable(str, Type::any()));
  EXPECT_FALSE(assignable(Type::list_of(number), Type::list_of(str)));
  EXPECT_TRUE(assignable(Type::list_of(number), Type::list_of(integer)));
}

// ---------------------------------------------------------------------------
// Expression type inference (through lint_spec on small DXGs)

TEST(Typecheck, ScalarOntoListFieldIsCardinalityMismatch) {
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    items: C.order.address\n");
  EXPECT_TRUE(has_code(diags, "KN102")) << codes_of(diags);
}

TEST(Typecheck, ListOntoScalarFieldIsCardinalityMismatch) {
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    addr: '[1, 2]'\n");
  EXPECT_TRUE(has_code(diags, "KN102")) << codes_of(diags);
}

TEST(Typecheck, NumberOntoStringFieldIsTypeMismatch) {
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    addr: C.order.cost\n");
  EXPECT_TRUE(has_code(diags, "KN101")) << codes_of(diags);
}

TEST(Typecheck, TernaryBranchesCheckedIndependently) {
  // One branch fits, the other does not: the bad branch is still caught.
  auto diags = lint_retail(
      std::string(kRetailInputs) +
      "DXG:\n  S:\n    addr: 'C.order.address if C.order.cost > 10 else 5'\n");
  EXPECT_TRUE(has_code(diags, "KN101")) << codes_of(diags);
}

TEST(Typecheck, UnknownFunctionAndArity) {
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    method: no_such_fn(1)\n");
  EXPECT_TRUE(has_code(diags, "KN103")) << codes_of(diags);
  diags = lint_retail(std::string(kRetailInputs) +
                      "DXG:\n  S:\n    method: upper('a', 'b')\n");
  EXPECT_TRUE(has_code(diags, "KN104")) << codes_of(diags);
}

TEST(Typecheck, OperandTypeErrors) {
  // string - number
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    method: C.order.address - 5\n");
  EXPECT_TRUE(has_code(diags, "KN105")) << codes_of(diags);
  // sum over a list of strings (comprehension element type is tracked)
  diags = lint_retail(
      std::string(kRetailInputs) +
      "DXG:\n  P:\n    amount: 'sum([item.addr for item in [S.addr]])'\n");
  EXPECT_TRUE(has_code(diags, "KN105")) << codes_of(diags);
}

TEST(Typecheck, UnknownRefFieldInsideExpression) {
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    method: C.order.nope\n");
  EXPECT_TRUE(has_code(diags, "KN106")) << codes_of(diags);
}

TEST(Typecheck, ComprehensionOverScalarIsNotIterable) {
  auto diags = lint_retail(
      std::string(kRetailInputs) +
      "DXG:\n  S:\n    items: '[x for x in C.order.cost]'\n");
  EXPECT_TRUE(has_code(diags, "KN107")) << codes_of(diags);
}

TEST(Typecheck, CleanRetailCompositionHasNoFindings) {
  de::SchemaRegistry schemas = retail_schemas();
  // The bundled Fig. 6 spec maps aliases to runtime store names; re-point
  // them at the schema ids so conformance checks engage.
  std::string text = apps::kRetailDxg;
  for (auto [from, to] :
       {std::pair<const char*, const char*>{"knactor-checkout", "Order"},
        {"knactor-shipping", "Shipment"},
        {"knactor-payment", "Charge"}}) {
    text.replace(text.find(from), std::string(from).size(), to);
  }
  auto parsed = core::Dxg::parse(text);
  ASSERT_TRUE(parsed.ok());
  std::vector<Diagnostic> out;
  typecheck_dxg(parsed.value(), schemas, {}, out);
  EXPECT_TRUE(out.empty()) << codes_of(out);
}

TEST(Typecheck, ThisRefsResolveAgainstTargetSchema) {
  // S and P are unused (warnings); the point is no type errors for this.cost.
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  C.order:\n    shippingCost: this.cost\n");
  EXPECT_FALSE(has_errors(diags)) << codes_of(diags);
  diags = lint_retail(std::string(kRetailInputs) +
                      "DXG:\n  C.order:\n    shippingCost: this.missing\n");
  EXPECT_TRUE(has_code(diags, "KN106")) << codes_of(diags);
}

TEST(Typecheck, DiagnosticsCarryMappingPositions) {
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    items: C.order.address\n");
  ASSERT_TRUE(has_code(diags, "KN102"));
  for (const auto& d : diags) {
    if (d.code != "KN102") continue;
    EXPECT_EQ(d.loc.file, "test.yaml");
    EXPECT_EQ(d.loc.line, 7);  // "    items: ..." — line 7 of the spec
    EXPECT_EQ(d.loc.col, 5);
  }
}

// ---------------------------------------------------------------------------
// Sync pipeline schema flow

std::vector<Diagnostic> lint_sync_route(const std::string& pipeline) {
  de::SchemaRegistry schemas = smart_home_schemas();
  LintOptions options;
  options.file = "sync.yaml";
  options.schemas = &schemas;
  std::string text =
      "Sync:\n  r:\n"
      "    source: SmartHome/v1/Motion/Event\n"
      "    target: SmartHome/v1/House/Event\n"
      "    pipeline: " + pipeline + "\n";
  return lint_spec(text, options);
}

TEST(SyncAnalysis, CleanRenameProjectFlow) {
  auto diags = lint_sync_route("rename motion=triggered | cut motion, room");
  EXPECT_TRUE(diags.empty()) << codes_of(diags);
}

TEST(SyncAnalysis, DroppedFieldRefIsReported) {
  auto diags = lint_sync_route("cut room | sort ts");
  EXPECT_TRUE(has_code(diags, "KN201")) << codes_of(diags);
}

TEST(SyncAnalysis, RenamedAwayFieldRefIsReported) {
  auto diags = lint_sync_route("rename motion=triggered | where triggered");
  EXPECT_TRUE(has_code(diags, "KN201")) << codes_of(diags);
}

TEST(SyncAnalysis, RenameCollision) {
  auto diags = lint_sync_route("rename room=triggered");
  EXPECT_TRUE(has_code(diags, "KN202")) << codes_of(diags);
}

TEST(SyncAnalysis, TypeInvalidPredicate) {
  auto diags = lint_sync_route("where room - 3 > 0 | cut room");
  EXPECT_TRUE(has_code(diags, "KN203")) << codes_of(diags);
}

TEST(SyncAnalysis, SortOnObjectIsUnorderable) {
  de::SchemaRegistry schemas;
  ASSERT_TRUE(schemas
                  .add_yaml("schema: T/v1/A/B\nblob: object\nname: string\n")
                  .ok());
  LintOptions options;
  options.file = "sync.yaml";
  options.schemas = &schemas;
  auto diags = lint_spec(
      "Sync:\n  r:\n    source: T/v1/A/B\n    pipeline: sort blob\n",
      options);
  EXPECT_TRUE(has_code(diags, "KN204")) << codes_of(diags);
}

TEST(SyncAnalysis, NonNumericAggregate) {
  auto diags = lint_sync_route("summarize total=sum(room) by triggered");
  EXPECT_TRUE(has_code(diags, "KN205")) << codes_of(diags);
}

TEST(SyncAnalysis, OutputFieldMissingFromTargetSchema) {
  // `ts` flows through untouched but the house schema has no `ts`.
  auto diags = lint_sync_route("rename motion=triggered");
  EXPECT_TRUE(has_code(diags, "KN206")) << codes_of(diags);
}

TEST(SyncAnalysis, OutputFieldTypeMismatchAgainstTargetSchema) {
  // count() yields int; declare room as the out name to force bool<-int.
  auto diags =
      lint_sync_route("summarize motion=count(ts) by room");
  EXPECT_TRUE(has_code(diags, "KN206")) << codes_of(diags);
}

TEST(SyncAnalysis, UnknownSourceSchemaWarnsAndStops) {
  LintOptions options;
  options.file = "sync.yaml";
  de::SchemaRegistry empty;
  options.schemas = &empty;
  auto diags = lint_spec(
      "Sync:\n  r:\n    source: No/Such/Schema\n    pipeline: cut x\n",
      options);
  EXPECT_TRUE(has_code(diags, "KN207")) << codes_of(diags);
  EXPECT_FALSE(has_code(diags, "KN201")) << codes_of(diags);
  EXPECT_FALSE(has_errors(diags));
}

TEST(SyncAnalysis, UnparseablePipeline) {
  auto diags = lint_sync_route("sort | | nonsense ~~");
  EXPECT_TRUE(has_code(diags, "KN208")) << codes_of(diags);
}

TEST(SyncAnalysis, NonNumericWindowSourceIsReported) {
  // KN209: `window` buckets a number; a string source is a spec bug.
  auto diags = lint_sync_route("window w := room every 60 | cut room");
  EXPECT_TRUE(has_code(diags, "KN209")) << codes_of(diags);
}

TEST(SyncAnalysis, NumericWindowSourceFlowsClean) {
  de::SchemaRegistry schemas = smart_home_schemas();
  auto fields = schema_field_types(
      *schemas.find("SmartHome/v1/Motion/Event"));
  std::vector<Diagnostic> out;
  auto flow = analyze_pipeline(
      "window w := ts every 60 | summarize n=count(ts) by w",
      fields, {}, "r", out);
  EXPECT_TRUE(out.empty()) << codes_of(out);
  // The bucket field inherits the source's numeric type and flows on as a
  // grouping key.
  EXPECT_EQ(flow.at("w").kind, TypeKind::kNumber);
  EXPECT_EQ(flow.at("n").kind, TypeKind::kInt);
}

TEST(SyncAnalysis, WindowOnMissingFieldIsReported) {
  auto diags = lint_sync_route("window w := uptime every 60 | cut room");
  EXPECT_TRUE(has_code(diags, "KN201")) << codes_of(diags);
}

TEST(SyncAnalysis, AggregateOutputShapeFlowsOn) {
  de::SchemaRegistry schemas = smart_home_schemas();
  auto fields = schema_field_types(
      *schemas.find("SmartHome/v1/Motion/Event"));
  std::vector<Diagnostic> out;
  auto flow = analyze_pipeline("summarize n=count(ts), worst=max(ts) by room",
                               fields, {}, "r", out);
  EXPECT_TRUE(out.empty()) << codes_of(out);
  ASSERT_EQ(flow.size(), 3u);
  EXPECT_EQ(flow.at("n").kind, TypeKind::kInt);
  EXPECT_EQ(flow.at("worst").kind, TypeKind::kNumber);
  EXPECT_EQ(flow.at("room").kind, TypeKind::kString);
}

// ---------------------------------------------------------------------------
// RBAC pre-flight

constexpr const char* kPolicy =
    "principal: integrator\n"
    "roles:\n"
    "  - name: r\n"
    "    rules:\n"
    "      - store: OnlineRetail/v1/Checkout/Order\n"
    "        verbs: [get]\n"
    "        denied: [email]\n"
    "      - store: OnlineRetail/v1/Shipping/Shipment\n"
    "        verbs: [get, update]\n"
    "        allowed: [items, addr, method]\n"
    "bindings:\n"
    "  - principal: integrator\n"
    "    role: r\n";

std::vector<Diagnostic> lint_with_rbac(const std::string& text,
                                       const std::string& principal = "") {
  de::SchemaRegistry schemas = retail_schemas();
  auto rbac = parse_rbac(kPolicy);
  EXPECT_TRUE(rbac.ok());
  LintOptions options;
  options.file = "test.yaml";
  options.schemas = &schemas;
  options.rbac = &rbac.value();
  options.principal = principal;
  return lint_spec(text, options);
}

TEST(RbacPreflight, PermittedCompositionIsClean) {
  auto diags = lint_with_rbac(std::string(kRetailInputs) +
                              "DXG:\n  S:\n    addr: C.order.address\n");
  // P is unused (KN003 warning) but no KN3xx findings.
  EXPECT_EQ(count_code(diags, "KN003"), 1) << codes_of(diags);
  EXPECT_FALSE(has_errors(diags)) << codes_of(diags);
}

TEST(RbacPreflight, ForbiddenWriteIsReported) {
  auto diags = lint_with_rbac(std::string(kRetailInputs) +
                              "DXG:\n  P:\n    amount: C.order.cost\n");
  EXPECT_TRUE(has_code(diags, "KN302")) << codes_of(diags);
}

TEST(RbacPreflight, ForbiddenReadIsReported) {
  // No rule grants reads on Payment.
  auto diags = lint_with_rbac(std::string(kRetailInputs) +
                              "DXG:\n  S:\n    addr: P.id\n");
  EXPECT_TRUE(has_code(diags, "KN301")) << codes_of(diags);
}

TEST(RbacPreflight, DeniedFieldReadIsReported) {
  auto diags = lint_with_rbac(std::string(kRetailInputs) +
                              "DXG:\n  S:\n    addr: C.order.email\n");
  EXPECT_TRUE(has_code(diags, "KN304")) << codes_of(diags);
}

TEST(RbacPreflight, FieldOutsideAllowListIsWriteDenied) {
  // `id` is writable per schema? No — but RBAC runs regardless: the rule
  // only allows items/addr/method.
  auto diags = lint_with_rbac(std::string(kRetailInputs) +
                              "DXG:\n  S:\n    id: C.order.address\n");
  EXPECT_TRUE(has_code(diags, "KN303")) << codes_of(diags);
}

TEST(RbacPreflight, UnboundPrincipalWarnsOnce) {
  auto diags = lint_with_rbac(std::string(kRetailInputs) +
                                  "DXG:\n  S:\n    addr: C.order.address\n",
                              "nobody");
  EXPECT_EQ(count_code(diags, "KN305"), 1) << codes_of(diags);
  EXPECT_FALSE(has_code(diags, "KN301"));
  EXPECT_FALSE(has_code(diags, "KN302"));
}

TEST(RbacPreflight, ParseRejectsUnknownVerb) {
  auto rbac = parse_rbac(
      "roles:\n  - name: r\n    rules:\n"
      "      - store: \"*\"\n        verbs: [frobnicate]\n");
  EXPECT_FALSE(rbac.ok());
}

TEST(RbacPreflight, WildcardVerbExpandsToAll) {
  auto rbac = parse_rbac(
      "principal: p\n"
      "roles:\n  - name: r\n    rules:\n"
      "      - store: \"*\"\n        verbs: [\"*\"]\n"
      "bindings:\n  - principal: p\n    role: r\n");
  ASSERT_TRUE(rbac.ok());
  std::vector<Access> accesses = {
      {"AnyStore", "f", de::Verb::kDelete, {}, "x"}};
  std::vector<Diagnostic> out;
  rbac_preflight(rbac.value(), "p", accesses, out);
  EXPECT_TRUE(out.empty()) << codes_of(out);
}

// ---------------------------------------------------------------------------
// lint_spec dispatch + schema linting

TEST(Lint, SchemaFileWithBadDeclIsKN008WithLocation) {
  LintOptions options;
  options.file = "s.yaml";
  auto diags = lint_spec(
      "schema: T/v1/A/B\nname: string\ncount: integer\n", options);
  ASSERT_EQ(count_code(diags, "KN008"), 1) << codes_of(diags);
  EXPECT_EQ(diags[0].loc.line, 3);
  EXPECT_EQ(diags[0].loc.col, 1);
}

TEST(Lint, ValidSchemaFileIsClean) {
  LintOptions options;
  options.file = "s.yaml";
  auto diags = lint_spec(
      "schema: T/v1/A/B\nname: string\nn: int\nok: bool\n", options);
  EXPECT_TRUE(diags.empty()) << codes_of(diags);
}

TEST(Lint, GarbageIsKN400) {
  LintOptions options;
  options.file = "g.yaml";
  auto diags = lint_spec("just a scalar", options);
  EXPECT_TRUE(has_code(diags, "KN400")) << codes_of(diags);
  EXPECT_TRUE(has_parse_failure(diags));
}

TEST(Lint, UnknownSchemaInputWarnsKN007) {
  auto diags = lint_retail(
      "Input:\n  X: No/Such/Store\nDXG:\n  X:\n    a: 1\n");
  EXPECT_TRUE(has_code(diags, "KN007")) << codes_of(diags);
}

TEST(Lint, LegacyGraphIssuesComeThroughWithCodesAndLocations) {
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    addr: Z.something\n");
  ASSERT_TRUE(has_code(diags, "KN001")) << codes_of(diags);
  for (const auto& d : diags) {
    if (d.code != "KN001") continue;
    EXPECT_EQ(d.loc.line, 7);  // the mapping's key line
    EXPECT_GT(d.loc.col, 0);
  }
  // Unused inputs point at their Input entry.
  EXPECT_TRUE(has_code(diags, "KN003"));
  for (const auto& d : diags) {
    if (d.code != "KN003") continue;
    EXPECT_GE(d.loc.line, 2);
    EXPECT_LE(d.loc.line, 4);
  }
}

TEST(Lint, SelfDependencyAndCycleStillReported) {
  auto diags = lint_retail(std::string(kRetailInputs) +
                           "DXG:\n  S:\n    addr: S.addr + 'x'\n");
  EXPECT_TRUE(has_code(diags, "KN006")) << codes_of(diags);
  diags = lint_retail(std::string(kRetailInputs) +
                      "DXG:\n  S:\n    addr: S.method\n    method: S.addr\n");
  EXPECT_TRUE(has_code(diags, "KN002")) << codes_of(diags);
}

TEST(Lint, DiagnosticsAreStableAcrossRuns) {
  std::string text = std::string(kRetailInputs) +
                     "DXG:\n  S:\n    items: C.order.address\n"
                     "    addr: Z.x\n    method: no_fn()\n";
  auto first = lint_retail(text);
  auto second = lint_retail(text);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].code, second[i].code);
    EXPECT_EQ(first[i].message, second[i].message);
    EXPECT_EQ(first[i].loc.line, second[i].loc.line);
  }
}

}  // namespace
}  // namespace knactor::analysis
