// Differential equivalence suite for operator consolidation: the fused
// planner (de/plan.h) must produce bit-identical results to the naive
// one-pass-per-operator executor, over
//   (a) 100+ seeded random logs x random pipelines,
//   (b) the same pipelines executed through LogPool::query (which adds
//       head/tail scan push-down and early-stop), and
//   (c) every Sync pipeline declared in specs/, with records shaped by
//       the schemas' field types (sync_analysis schema flow).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/sync_analysis.h"
#include "common/json.h"
#include "de/log.h"
#include "de/plan.h"
#include "de/query.h"
#include "de/schema.h"
#include "sim/clock.h"

namespace knactor::de {
namespace {

using common::Value;

// ---------------------------------------------------------------------------
// Random log + pipeline generation. Expressions are drawn from a total
// pool (they evaluate without error on every generated record), because
// head push-down may legitimately skip records whose evaluation would
// error — equivalence is only promised for total pipelines.
// ---------------------------------------------------------------------------

Value random_record(std::mt19937& rng) {
  std::uniform_int_distribution<int> coin(0, 9);
  if (coin(rng) == 0) {
    // Non-object records exercise the skip semantics of rename/project/...
    return coin(rng) < 5 ? Value(static_cast<std::int64_t>(coin(rng)))
                         : Value("scalar");
  }
  Value v = Value::object();
  std::uniform_int_distribution<std::int64_t> num(0, 20);
  if (coin(rng) < 8) v.set("a", Value(num(rng)));
  if (coin(rng) < 8) v.set("b", Value(num(rng)));
  if (coin(rng) < 7) {
    static const char* kStrings[] = {"x", "y", "z", "w"};
    v.set("s", Value(kStrings[coin(rng) % 4]));
  }
  if (coin(rng) < 5) v.set("flag", Value(coin(rng) % 2 == 0));
  if (coin(rng) < 4) v.set("c", Value(static_cast<double>(num(rng)) / 3.0));
  return v;
}

LogOp random_op(std::mt19937& rng) {
  std::uniform_int_distribution<int> pick(0, 8);
  std::uniform_int_distribution<std::size_t> n(0, 10);
  switch (pick(rng)) {
    case 0: {
      static const char* kFilters[] = {"a != null", "b == 1", "flag == true",
                                       "s == \"x\"", "a != b"};
      return LogOp::filter(kFilters[n(rng) % 5]).value();
    }
    case 1:
      return n(rng) % 2 == 0 ? LogOp::rename({{"a", "x"}})
                             : LogOp::rename({{"b", "y"}, {"s", "t"}});
    case 2:
      return n(rng) % 2 == 0 ? LogOp::project({"a", "b", "s"})
                             : LogOp::project({"x", "b", "flag"});
    case 3:
      return n(rng) % 2 == 0 ? LogOp::drop({"c"}) : LogOp::drop({"a", "flag"});
    case 4:
      return LogOp::sort(n(rng) % 2 == 0 ? "b" : "s", n(rng) % 2 == 0);
    case 5:
      return LogOp::head(n(rng));
    case 6:
      return LogOp::tail(n(rng));
    case 7:
      return LogOp::aggregate({"s"}, {{"cnt", {"count", ""}},
                                      {"mx", {"max", "b"}}});
    default: {
      static const char* kMaps[] = {"b", "1 + 1", "s"};
      return LogOp::map("m", kMaps[n(rng) % 3]).value();
    }
  }
}

LogQuery random_pipeline(std::mt19937& rng) {
  std::uniform_int_distribution<int> len(0, 6);
  LogQuery q;
  int ops = len(rng);
  for (int i = 0; i < ops; ++i) q.push_back(random_op(rng));
  return q;
}

void expect_equivalent(const LogQuery& q, const std::vector<Value>& records,
                       const char* what, std::uint64_t seed) {
  auto naive = run_pipeline(q, records);
  auto fused = run_plan(plan_query(q), records);
  ASSERT_EQ(naive.ok(), fused.ok())
      << what << " seed " << seed << ": one executor errored ("
      << (naive.ok() ? fused.error().to_string() : naive.error().to_string())
      << ")";
  if (!naive.ok()) return;
  ASSERT_EQ(naive.value().size(), fused.value().size())
      << what << " seed " << seed;
  for (std::size_t i = 0; i < naive.value().size(); ++i) {
    ASSERT_EQ(naive.value()[i], fused.value()[i])
        << what << " seed " << seed << " record " << i << ": naive="
        << common::to_json(naive.value()[i])
        << " fused=" << common::to_json(fused.value()[i]);
  }
}

TEST(ConsolidationEquivalence, RandomLogsInMemory) {
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed * 2654435761u + 17));
    std::uniform_int_distribution<std::size_t> count(0, 60);
    std::vector<Value> records;
    std::size_t n = count(rng);
    for (std::size_t i = 0; i < n; ++i) records.push_back(random_record(rng));
    LogQuery q = random_pipeline(rng);
    expect_equivalent(q, records, "in-memory", seed);
    if (HasFatalFailure()) return;
  }
}

TEST(ConsolidationEquivalence, RandomLogsThroughPoolQuery) {
  // The pool's query path adds scan push-down (head/tail bounds the scan,
  // early-stop ends it once enough records survive the fused head stage) —
  // results must still match the naive executor over the full log.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed * 40503u + 5));
    sim::VirtualClock clock;
    LogDe de(clock, LogDeProfile::instant());
    LogPool& pool = de.create_pool("p");
    std::uniform_int_distribution<std::size_t> count(0, 60);
    std::vector<Value> records;
    std::size_t n = count(rng);
    for (std::size_t i = 0; i < n; ++i) records.push_back(random_record(rng));
    ASSERT_TRUE(pool.append_batch_sync("svc", records).ok());
    for (int trial = 0; trial < 4; ++trial) {
      LogQuery q = random_pipeline(rng);
      auto naive = run_pipeline(q, records);
      auto via_pool = pool.query_sync("svc", q);
      ASSERT_EQ(naive.ok(), via_pool.ok()) << "pool seed " << seed;
      if (!naive.ok()) continue;
      ASSERT_EQ(naive.value().size(), via_pool.value().size())
          << "pool seed " << seed;
      for (std::size_t i = 0; i < naive.value().size(); ++i) {
        ASSERT_EQ(naive.value()[i], via_pool.value()[i])
            << "pool seed " << seed << " record " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Spec-driven: every pipeline declared in specs/, over records shaped by
// the registered schemas (schema_field_types / analyze_pipeline from
// analysis/sync_analysis supply the shapes the static checker reasons
// about — the differential suite confirms the executors agree on them).
// ---------------------------------------------------------------------------

Value value_for_type(const analysis::Type& t, std::mt19937& rng) {
  std::uniform_int_distribution<std::int64_t> num(0, 50);
  switch (t.kind) {
    case analysis::TypeKind::kBool:
      return Value(num(rng) % 2 == 0);
    case analysis::TypeKind::kInt:
      return Value(num(rng));
    case analysis::TypeKind::kNumber:
      return num(rng) % 2 == 0
                 ? Value(num(rng))
                 : Value(static_cast<double>(num(rng)) / 4.0);
    case analysis::TypeKind::kString: {
      static const char* kRooms[] = {"kitchen", "hall", "garage", "attic"};
      return Value(kRooms[num(rng) % 4]);
    }
    case analysis::TypeKind::kList:
      return Value::array({Value(num(rng))});
    case analysis::TypeKind::kObject: {
      Value o = Value::object();
      o.set("k", Value(num(rng)));
      return o;
    }
    default:
      return Value(num(rng));
  }
}

TEST(ConsolidationEquivalence, EverySpecPipeline) {
  namespace fs = std::filesystem;
  const fs::path specs_dir{KNACTOR_SPECS_DIR};
  ASSERT_TRUE(fs::exists(specs_dir)) << specs_dir;

  // Gather schema field types (the record shape pool) and pipelines.
  std::map<std::string, analysis::Type> shape;
  std::vector<std::pair<std::string, std::string>> pipelines;  // (file, text)
  std::size_t spec_files = 0;
  for (const auto& entry : fs::directory_iterator(specs_dir)) {
    if (entry.path().extension() != ".yaml") continue;
    ++spec_files;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    if (text.find("schema:") != std::string::npos) {
      auto schema = parse_schema(text);
      if (schema.ok()) {
        for (auto& [field, type] :
             analysis::schema_field_types(schema.value())) {
          shape.emplace(field, type);
        }
      }
    }
    // Extract `pipeline: <text>` lines (Sync route declarations).
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      auto pos = line.find("pipeline:");
      if (pos == std::string::npos) continue;
      if (line.find('#') != std::string::npos &&
          line.find('#') < pos) {
        continue;  // commented-out example
      }
      std::string pipeline = line.substr(pos + 9);
      pipeline.erase(0, pipeline.find_first_not_of(" \t"));
      if (!pipeline.empty()) {
        pipelines.emplace_back(entry.path().filename().string(), pipeline);
      }
    }
  }
  ASSERT_GT(spec_files, 0u);
  ASSERT_FALSE(pipelines.empty()) << "no Sync pipelines found in specs/";
  ASSERT_FALSE(shape.empty());

  for (const auto& [file, text] : pipelines) {
    auto parsed = parse_query(text);
    ASSERT_TRUE(parsed.ok()) << file << ": " << parsed.error().to_string();
    const LogQuery& q = parsed.value();

    // The static schema flow for this pipeline: fused output fields must
    // stay within what the checker derives.
    std::vector<analysis::Diagnostic> diags;
    auto outgoing = analysis::analyze_pipeline(text, shape, {file, 0, 0},
                                               "equivalence", diags);

    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      std::mt19937 rng(static_cast<unsigned>(seed * 7919u + 3));
      std::uniform_int_distribution<int> coin(0, 9);
      std::vector<Value> records;
      for (int i = 0; i < 50; ++i) {
        Value rec = Value::object();
        for (const auto& [field, type] : shape) {
          if (coin(rng) < 8) rec.set(field, value_for_type(type, rng));
        }
        records.push_back(std::move(rec));
      }
      expect_equivalent(q, records, file.c_str(), seed);
      if (HasFatalFailure()) return;

      auto fused = run_plan(plan_query(q), records);
      ASSERT_TRUE(fused.ok());
      if (!outgoing.empty()) {
        for (const auto& out_rec : fused.value()) {
          if (!out_rec.is_object()) continue;
          for (const auto& [field, value] : out_rec.as_object()) {
            EXPECT_TRUE(outgoing.count(field) > 0)
                << file << ": output field '" << field
                << "' outside the schema flow";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace knactor::de
