// knctl — the operator CLI the paper's prototype ships ("a CLI for
// operating knactors", §4). Works on spec files:
//
//   knctl analyze <dxg.yaml>            static analysis (cycles, unused
//                                       inputs, unresolved aliases, schema
//                                       conformance with --schema files)
//   knctl schema  <schema.yaml>         inspect a data-store schema
//   knctl gen (reconciler|accessors|dxg) <schema.yaml>
//                                       code generation to stdout
//   knctl fmt <file.yaml>               parse + re-emit normalized YAML
//   knctl query '<pipeline>' <records.jsonl>
//                                       run a Log-DE query over JSONL
//                                       records (one JSON object per line)
//   knctl demo                          run all of the above on the
//                                       paper's Fig. 5 / Fig. 6 specs
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/retail_specs.h"
#include "common/json.h"
#include "common/strings.h"
#include "core/codegen.h"
#include "core/dxg.h"
#include "de/query.h"
#include "de/schema.h"
#include "yaml/yaml.h"

namespace {

using knactor::common::Result;

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return knactor::common::Error::not_found("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int cmd_analyze(const std::string& text,
                const std::vector<std::string>& schema_texts) {
  knactor::de::SchemaRegistry schemas;
  for (const auto& schema_text : schema_texts) {
    auto added = schemas.add_yaml(schema_text);
    if (!added.ok()) {
      std::fprintf(stderr, "schema: %s\n", added.error().to_string().c_str());
      return 2;
    }
  }
  auto dxg = knactor::core::Dxg::parse(text);
  if (!dxg.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 dxg.error().to_string().c_str());
    return 2;
  }
  std::printf("inputs:   %zu\nmappings: %zu\n", dxg.value().inputs().size(),
              dxg.value().size());
  auto issues = knactor::core::analyze(
      dxg.value(), schema_texts.empty() ? nullptr : &schemas);
  if (issues.empty()) {
    std::printf("analysis: clean\n");
    return 0;
  }
  for (const auto& issue : issues) {
    std::printf("%-18s %s\n", knactor::core::issue_kind_name(issue.kind),
                issue.detail.c_str());
  }
  return 1;
}

int cmd_schema(const std::string& text) {
  auto schema = knactor::de::parse_schema(text);
  if (!schema.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 schema.error().to_string().c_str());
    return 2;
  }
  std::printf("schema: %s\n", schema.value().id.c_str());
  for (const auto& field : schema.value().fields) {
    std::printf("  %-16s %-8s%s%s\n", field.name.c_str(), field.type.c_str(),
                field.external ? " external" : "",
                field.required ? " required" : "");
  }
  auto external = schema.value().external_fields();
  std::printf("external fields (integrator-filled): %zu\n", external.size());
  return 0;
}

int cmd_gen(const std::string& kind, const std::string& text) {
  auto schema = knactor::de::parse_schema(text);
  if (!schema.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 schema.error().to_string().c_str());
    return 2;
  }
  knactor::core::CodegenOptions options;
  Result<std::string> generated =
      kind == "reconciler"
          ? knactor::core::generate_reconciler(schema.value(), options)
          : kind == "accessors"
                ? knactor::core::generate_accessors(schema.value(), options)
                : knactor::core::generate_dxg_stub(schema.value());
  if (!generated.ok()) {
    std::fprintf(stderr, "codegen: %s\n",
                 generated.error().to_string().c_str());
    return 2;
  }
  std::fputs(generated.value().c_str(), stdout);
  return 0;
}

int cmd_fmt(const std::string& text) {
  auto parsed = knactor::yaml::parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.error().to_string().c_str());
    return 2;
  }
  std::fputs(knactor::yaml::dump(parsed.value()).c_str(), stdout);
  return 0;
}

int cmd_query(const std::string& pipeline_text, const std::string& jsonl) {
  auto query = knactor::de::parse_query(pipeline_text);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.error().to_string().c_str());
    return 2;
  }
  std::vector<knactor::common::Value> records;
  for (const auto& line : knactor::common::split(jsonl, '\n')) {
    if (knactor::common::trim(line).empty()) continue;
    auto record = knactor::common::parse_json(line);
    if (!record.ok()) {
      std::fprintf(stderr, "bad record: %s\n",
                   record.error().to_string().c_str());
      return 2;
    }
    records.push_back(record.take());
  }
  auto result = knactor::de::run_pipeline(query.value(), std::move(records));
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n",
                 result.error().to_string().c_str());
    return 2;
  }
  for (const auto& record : result.value()) {
    std::printf("%s\n", knactor::common::to_json(record).c_str());
  }
  return 0;
}

int cmd_demo() {
  std::printf("== knctl schema (Fig. 5, Checkout) ==\n");
  (void)cmd_schema(knactor::apps::kCheckoutSchema);
  std::printf("\n== knctl analyze (Fig. 6 DXG) ==\n");
  int rc = cmd_analyze(knactor::apps::kRetailDxg, {});
  std::printf("\n== knctl gen dxg (from the Shipping schema) ==\n");
  (void)cmd_gen("dxg", knactor::apps::kShippingSchema);
  return rc;
}

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  knctl analyze <dxg.yaml> [--schema <schema.yaml>]...\n"
      "  knctl schema <schema.yaml>\n"
      "  knctl gen (reconciler|accessors|dxg) <schema.yaml>\n"
      "  knctl fmt <file.yaml>\n"
      "  knctl query '<pipeline>' <records.jsonl>\n"
      "  knctl demo\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    // Bare invocation (e.g. from a bench/CI sweep) runs the demo.
    return cmd_demo();
  }
  const std::string& command = args[0];
  if (command == "demo") return cmd_demo();
  if (command == "analyze" && args.size() >= 2) {
    auto text = read_file(args[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 2;
    }
    std::vector<std::string> schema_texts;
    for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
      if (args[i] != "--schema") {
        usage();
        return 2;
      }
      auto schema_text = read_file(args[i + 1]);
      if (!schema_text.ok()) {
        std::fprintf(stderr, "%s\n", schema_text.error().to_string().c_str());
        return 2;
      }
      schema_texts.push_back(schema_text.take());
    }
    return cmd_analyze(text.value(), schema_texts);
  }
  if (command == "schema" && args.size() == 2) {
    auto text = read_file(args[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 2;
    }
    return cmd_schema(text.value());
  }
  if (command == "gen" && args.size() == 3 &&
      (args[1] == "reconciler" || args[1] == "accessors" || args[1] == "dxg")) {
    auto text = read_file(args[2]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 2;
    }
    return cmd_gen(args[1], text.value());
  }
  if (command == "fmt" && args.size() == 2) {
    auto text = read_file(args[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 2;
    }
    return cmd_fmt(text.value());
  }
  if (command == "query" && args.size() == 3) {
    auto jsonl = read_file(args[2]);
    if (!jsonl.ok()) {
      std::fprintf(stderr, "%s\n", jsonl.error().to_string().c_str());
      return 2;
    }
    return cmd_query(args[1], jsonl.value());
  }
  usage();
  return 2;
}
