# Lints every spec shipped under specs/ and requires a clean bill of health.
# Schema files are linted standalone; composition specs are linted with every
# *_schema.yaml supplied, so cross-schema checks fully engage.
#
# Usage: cmake -DKNCTL=<path> -DSPECS=<dir> -P lint_clean_specs.cmake
cmake_minimum_required(VERSION 3.16)
foreach(var KNCTL SPECS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(GLOB schema_files ${SPECS}/*_schema.yaml)
set(schema_args)
foreach(s ${schema_files})
  list(APPEND schema_args --schema ${s})
endforeach()

file(GLOB all_specs ${SPECS}/*.yaml)
if(all_specs STREQUAL "")
  message(FATAL_ERROR "no specs found under ${SPECS}")
endif()

foreach(spec ${all_specs})
  if(spec IN_LIST schema_files)
    execute_process(COMMAND ${KNCTL} lint ${spec}
                    OUTPUT_VARIABLE out ERROR_VARIABLE out
                    RESULT_VARIABLE rc)
  else()
    execute_process(COMMAND ${KNCTL} lint ${spec} ${schema_args}
                    OUTPUT_VARIABLE out ERROR_VARIABLE out
                    RESULT_VARIABLE rc)
  endif()
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "expected ${spec} to lint clean, exit ${rc}:\n${out}")
  endif()
  message(STATUS "clean: ${spec}")
endforeach()
