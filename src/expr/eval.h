// Evaluator for the DXG expression language.
//
// Evaluation resolves root names (C, S, P, this, loop variables) against an
// Env, and function calls against a FunctionRegistry. Semantics follow
// Python where the grammar does: truthiness, short-circuit and/or returning
// operands, '+' concatenating strings and lists, 'in' membership, '=='
// comparing numbers across int/double.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "expr/ast.h"

namespace knactor::expr {

/// Name-resolution environment. The Cast integrator implements this over
/// data-store snapshots; tests use MapEnv.
class Env {
 public:
  virtual ~Env() = default;
  /// Resolves a root name to a value, or nullptr when unknown.
  [[nodiscard]] virtual const common::Value* resolve(
      const std::string& name) const = 0;
};

/// Env over an in-memory map, with optional chaining to a parent (used for
/// comprehension loop scopes).
class MapEnv : public Env {
 public:
  MapEnv() = default;
  explicit MapEnv(const Env* parent) : parent_(parent) {}

  void bind(std::string name, common::Value v) {
    vars_[std::move(name)] = std::move(v);
  }

  [[nodiscard]] const common::Value* resolve(
      const std::string& name) const override {
    auto it = vars_.find(name);
    if (it != vars_.end()) return &it->second;
    return parent_ != nullptr ? parent_->resolve(name) : nullptr;
  }

 private:
  std::map<std::string, common::Value> vars_;
  const Env* parent_ = nullptr;
};

/// A builtin or user-registered function.
using Function =
    std::function<common::Result<common::Value>(const std::vector<common::Value>&)>;

/// Registry of callable functions. The default registry carries the
/// builtins the paper's DXG uses (currency_convert) plus a standard
/// library (len, sum, min, max, str, int, float, round, abs, upper, lower,
/// concat, keys, values, get, contains, unique, sorted, avg).
class FunctionRegistry {
 public:
  /// Registry preloaded with the builtins.
  static const FunctionRegistry& builtins();
  /// Empty registry (for sandboxed evaluation tests).
  FunctionRegistry() = default;

  void register_function(std::string name, Function fn);
  [[nodiscard]] const Function* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Replaces the conversion-rate table used by currency_convert.
  /// Rates map currency code -> units per USD.
  static void set_currency_rates(std::map<std::string, double> rates);

 private:
  std::map<std::string, Function> functions_;
};

/// Evaluates an AST against an environment and function registry.
common::Result<common::Value> evaluate(const Node& node, const Env& env,
                                       const FunctionRegistry& functions);

/// Convenience: parse + evaluate in one call.
common::Result<common::Value> evaluate(std::string_view text, const Env& env,
                                       const FunctionRegistry& functions);

}  // namespace knactor::expr
