// Causal trace context + record-level lineage (§5 "monitoring knactor
// SLOs through distributed tracing"). Because integration is explicit in
// Knactor, causality can be threaded at the framework level: every DE
// commit stamps a TraceContext onto the watch events it fires, batched
// delivery carries the context through the per-shard flush/merge, and an
// integrator pass opens child spans whose derived writes inherit the
// trace. Alongside the span tree, the Kernel keeps a bounded provenance
// ring that maps each derived write to the exact (store, key/seq) inputs
// it was computed from — the data-lineage half of observability
// (Zed-style provenance over the paper's Dapper-style propagation).
//
// The types here are intentionally inline and dependency-light (common +
// sim only) so `de/` can embed contexts and the ring without linking
// kn_core; the DAG walk below is implemented in causality.cpp (kn_core),
// and exporters live in core/trace_export.h.
//
// Determinism contract: trace ids are derived from DE commit sequence
// numbers and spans are only emitted from the main event loop, so the
// full trace — ids, ordering, timing — is byte-identical across
// shard/worker configurations (verified by tests/property/lineage_test.cpp
// and the shard suite).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "sim/clock.h"

namespace knactor::core {

/// Causal context carried by a DE commit and every watch event it fires.
/// A zero trace_id means "no trace yet": the commit that fires with a
/// zero id becomes a trace root and adopts its own commit-seq as the
/// trace id (deterministic — commit seqs are allocated in commit order on
/// the main loop). parent_span points at the span that caused the write
/// (an integrator's write stage, a bridge hop), 0 for service writes.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t commit_seq = 0;  // stamped by the DE at fire time

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

/// One endpoint of a lineage edge: a versioned record in a store (object
/// stores use `version`, log pools use the record seq in the same field).
/// `data` snapshots the record's payload at that version (zero-copy
/// shared buffer) so a lineage chain can be replayed without the store —
/// the differential test rebuilds the derived record from exactly these
/// inputs.
struct LineageRef {
  std::string store;
  std::string key;            // object key, or decimal seq for log records
  std::uint64_t version = 0;  // object version / log seq
  common::SharedValue data;   // payload snapshot at that version
};

/// One derived write: output record, the complete input set it was
/// computed from, and the operator that produced it. `span_id` links into
/// the span tree (the integrator pass span), letting `knctl explain`
/// print per-stage latencies next to the derivation chain.
struct LineageRecord {
  LineageRef output;
  std::vector<LineageRef> inputs;
  std::string op;     // "cast:<name>", "sync:<route>", "bridge:<node>"
  std::string stage;  // paper stage of the producing hop (usually "I-S")
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  // integrator pass span; 0 = untraced
  sim::SimTime time = 0;      // commit time of the derived write
};

/// Bounded ring of lineage records (mirrors the Kernel's audit ring):
/// capacity 0 disables recording entirely — the hot path then skips input
/// snapshotting. Lookups scan from the newest record backwards, which is
/// fine for tooling (`knctl explain`, tests); the ring is not a hot-path
/// index.
class ProvenanceRing {
 public:
  /// Sets the maximum number of retained records; 0 disables the ring.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    trim();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  void record(LineageRecord rec) {
    if (capacity_ == 0) return;
    records_.push_back(std::move(rec));
    trim();
  }

  [[nodiscard]] const std::deque<LineageRecord>& records() const {
    return records_;
  }

  /// Newest record whose output matches store/key (any version).
  [[nodiscard]] const LineageRecord* latest_for(const std::string& store,
                                                const std::string& key) const {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      if (it->output.store == store && it->output.key == key) return &*it;
    }
    return nullptr;
  }

  /// Newest record whose output matches store/key at an exact version.
  [[nodiscard]] const LineageRecord* find(const std::string& store,
                                          const std::string& key,
                                          std::uint64_t version) const {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      if (it->output.store == store && it->output.key == key &&
          it->output.version == version) {
        return &*it;
      }
    }
    return nullptr;
  }

  void clear() { records_.clear(); }

 private:
  void trim() {
    while (records_.size() > capacity_) records_.pop_front();
  }

  std::size_t capacity_ = 0;
  std::deque<LineageRecord> records_;
};

/// One node of a flattened lineage DAG: a record reference, the lineage
/// record that produced it (nullptr = source record with no recorded
/// producer — a service write or an input that aged out of the ring), and
/// its depth in the derivation-chain walk (0 = the queried output).
struct LineageDagNode {
  LineageRef ref;
  const LineageRecord* producer = nullptr;
  std::size_t depth = 0;
};

/// Walks the derivation chain of (store, key) backwards through the ring:
/// depth-first from the newest record for the key, recursing into each
/// input that itself has a recorded producer (matched by exact version;
/// version-0 inputs match the newest record for that key). Deterministic
/// order
/// (inputs in recorded order), cycle-safe. Pointers are into `ring`;
/// don't mutate it while holding the result.
std::vector<LineageDagNode> lineage_dag(const ProvenanceRing& ring,
                                        const std::string& store,
                                        const std::string& key);

/// Renders a lineage DAG as an indented text tree (one line per node:
/// store/key@version, producing operator and stage, trace id).
std::string format_lineage(const std::vector<LineageDagNode>& dag);

}  // namespace knactor::core
