// Composition-cost artifacts (Table 1). Both composition styles exist as
// concrete file trees — the API-centric app's protos, generated stubs,
// service code, and deployment configs vs. the Knactor app's integrator
// DXG config — in before/after versions for each task:
//
//   T1: compose Payment and Shipping with Checkout
//   T2: add a shipment policy based on the order price
//   T3: update the Shipping schema (rename addr -> address, split street/zip)
//
// The bench diffs the trees and reports the paper's metrics: required
// operations (c: code change, f: config change, b: rebuild, d: redeploy),
// files touched, and SLOC changed.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace knactor::apps {

/// A file tree: path -> content.
using ArtifactTree = std::map<std::string, std::string>;

/// Task ids for Table 1.
enum class Task { kT1ComposeServices, kT2AddShipmentPolicy, kT3UpdateSchema };

const char* task_name(Task task);

/// API-centric artifact trees.
ArtifactTree retail_api_base();
ArtifactTree retail_api_after(Task task);

/// Knactor artifact trees (integrator configuration only; service code
/// never changes across tasks).
ArtifactTree retail_knactor_base();
ArtifactTree retail_knactor_after(Task task);

/// Diff metrics between two trees (the Table 1 row for one task).
struct CompositionCost {
  bool code_changes = false;    // c
  bool config_changes = false;  // f
  bool rebuild = false;         // b (implied by code changes)
  bool redeploy = false;        // d (implied by code changes)
  std::size_t files = 0;        // files added/modified/removed
  std::size_t sloc = 0;         // source lines changed (added+removed+edits)

  [[nodiscard]] std::string operations() const;
};

/// Computes the composition cost of moving `before` to `after`. A path
/// counts as code when it ends in .py/.proto/.go/.cpp (rebuild+redeploy
/// required); as config when it ends in .yaml/.yml/.txt/.cfg.
CompositionCost diff_trees(const ArtifactTree& before,
                           const ArtifactTree& after);

/// The social-network app (DeathStarBench-style), the paper's second
/// scattering datapoint: "36 across 14 services in another well-studied
/// social networking app".
ArtifactTree social_network_api_base();

/// Scattering analysis (§4: "15 methods on handling API invocations
/// scattered across 11 services"): counts RPC-handler methods per service
/// file in the API-centric tree.
struct ScatterReport {
  std::size_t services = 0;
  std::size_t handler_methods = 0;
  std::map<std::string, std::size_t> per_service;
};
ScatterReport analyze_scatter(const ArtifactTree& tree);

}  // namespace knactor::apps
