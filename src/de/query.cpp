#include "de/query.h"

#include <cctype>

#include "common/strings.h"

namespace knactor::de {

using common::Error;
using common::Result;

namespace {

/// Splits on '|' outside quotes/brackets.
std::vector<std::string> split_stages(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  bool in_single = false;
  bool in_double = false;
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_single) {
      if (c == '\'') in_single = false;
    } else if (in_double) {
      if (c == '\\') {
        current.push_back(c);
        ++i;
        if (i < text.size()) current.push_back(text[i]);
        continue;
      }
      if (c == '"') in_double = false;
    } else if (c == '\'') {
      in_single = true;
    } else if (c == '"') {
      in_double = true;
    } else if (c == '[' || c == '(' || c == '{') {
      ++depth;
    } else if (c == ']' || c == ')' || c == '}') {
      --depth;
    } else if (c == '|' && depth == 0) {
      out.emplace_back(common::trim(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  out.emplace_back(common::trim(current));
  return out;
}

/// First word of a stage and the remainder.
std::pair<std::string, std::string> keyword_of(const std::string& stage) {
  std::size_t i = 0;
  while (i < stage.size() &&
         (std::isalnum(static_cast<unsigned char>(stage[i])) ||
          stage[i] == '_')) {
    ++i;
  }
  // Keyword must be followed by whitespace or end (so "heading > 1" is an
  // expression, not a head stage).
  if (i < stage.size() && stage[i] != ' ' && stage[i] != '\t') {
    return {"", stage};
  }
  return {stage.substr(0, i), std::string(common::trim(
                                  std::string_view(stage).substr(i)))};
}

std::vector<std::string> comma_list(const std::string& text) {
  std::vector<std::string> out;
  for (const auto& part : common::split(text, ',')) {
    std::string trimmed(common::trim(part));
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

Result<LogOp> parse_summarize(const std::string& rest) {
  // out=fn(field), ... [by f1, f2]
  std::string aggs_part = rest;
  std::vector<std::string> group_by;
  // Find a top-level " by " (not inside parens).
  int depth = 0;
  std::size_t by_pos = std::string::npos;
  for (std::size_t i = 0; i + 3 <= aggs_part.size(); ++i) {
    char c = aggs_part[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth == 0 && i + 4 <= aggs_part.size() &&
        (i == 0 || aggs_part[i - 1] == ' ' || aggs_part[i - 1] == ',') &&
        aggs_part.compare(i, 3, "by ") == 0) {
      by_pos = i;
      break;
    }
  }
  if (by_pos != std::string::npos) {
    group_by = comma_list(aggs_part.substr(by_pos + 3));
    aggs_part = std::string(common::trim(aggs_part.substr(0, by_pos)));
  }
  std::map<std::string, std::pair<std::string, std::string>> aggs;
  for (const auto& item : comma_list(aggs_part)) {
    auto eq = item.find('=');
    if (eq == std::string::npos) {
      return Error::parse("query: summarize expects out=fn(field), got '" +
                          item + "'");
    }
    std::string out_field(common::trim(item.substr(0, eq)));
    std::string call(common::trim(item.substr(eq + 1)));
    auto open = call.find('(');
    auto close = call.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return Error::parse("query: summarize expects out=fn(field), got '" +
                          item + "'");
    }
    std::string fn(common::trim(call.substr(0, open)));
    std::string in_field(
        common::trim(call.substr(open + 1, close - open - 1)));
    aggs[out_field] = {fn, in_field};
  }
  if (aggs.empty()) {
    return Error::parse("query: summarize needs at least one aggregation");
  }
  return LogOp::aggregate(std::move(group_by), std::move(aggs));
}

Result<LogOp> parse_stage(const std::string& stage) {
  auto [keyword, rest] = keyword_of(stage);
  if (keyword == "where") {
    return LogOp::filter(rest);
  }
  if (keyword == "rename") {
    std::map<std::string, std::string> renames;
    for (const auto& item : comma_list(rest)) {
      auto eq = item.find('=');
      if (eq == std::string::npos) {
        return Error::parse("query: rename expects new=old, got '" + item +
                            "'");
      }
      std::string new_name(common::trim(item.substr(0, eq)));
      std::string old_name(common::trim(item.substr(eq + 1)));
      renames[old_name] = new_name;
    }
    if (renames.empty()) return Error::parse("query: empty rename");
    return LogOp::rename(std::move(renames));
  }
  if (keyword == "cut" || keyword == "project") {
    auto fields = comma_list(rest);
    if (fields.empty()) return Error::parse("query: empty " + keyword);
    return LogOp::project(std::move(fields));
  }
  if (keyword == "drop") {
    auto fields = comma_list(rest);
    if (fields.empty()) return Error::parse("query: empty drop");
    return LogOp::drop(std::move(fields));
  }
  if (keyword == "sort") {
    auto parts = comma_list(rest);
    if (parts.size() == 1) {
      // "field" or "field desc"
      auto words = common::split(parts[0], ' ');
      std::vector<std::string> clean;
      for (auto& w : words) {
        std::string t(common::trim(w));
        if (!t.empty()) clean.push_back(std::move(t));
      }
      if (clean.size() == 1) return LogOp::sort(clean[0]);
      if (clean.size() == 2 && (clean[1] == "desc" || clean[1] == "asc")) {
        return LogOp::sort(clean[0], clean[1] == "desc");
      }
    }
    return Error::parse("query: sort expects FIELD [desc], got '" + rest +
                        "'");
  }
  if (keyword == "head" || keyword == "tail") {
    try {
      long n = std::stol(rest);
      if (n < 0) throw std::out_of_range("negative");
      return keyword == "head" ? LogOp::head(static_cast<std::size_t>(n))
                               : LogOp::tail(static_cast<std::size_t>(n));
    } catch (...) {
      return Error::parse("query: " + keyword + " expects a count, got '" +
                          rest + "'");
    }
  }
  if (keyword == "put") {
    auto assign = rest.find(":=");
    if (assign == std::string::npos) {
      return Error::parse("query: put expects NAME := EXPR");
    }
    std::string name(common::trim(rest.substr(0, assign)));
    std::string expr_text(common::trim(rest.substr(assign + 2)));
    if (name.empty() || expr_text.empty()) {
      return Error::parse("query: put expects NAME := EXPR");
    }
    return LogOp::map(std::move(name), expr_text);
  }
  if (keyword == "window") {
    // window NAME := FIELD every WIDTH
    auto assign = rest.find(":=");
    if (assign == std::string::npos) {
      return Error::parse("query: window expects NAME := FIELD every WIDTH");
    }
    std::string name(common::trim(rest.substr(0, assign)));
    std::string spec(common::trim(rest.substr(assign + 2)));
    auto every = spec.find(" every ");
    if (name.empty() || every == std::string::npos) {
      return Error::parse("query: window expects NAME := FIELD every WIDTH");
    }
    std::string field(common::trim(spec.substr(0, every)));
    std::string width_text(common::trim(spec.substr(every + 7)));
    double width = 0;
    try {
      std::size_t used = 0;
      width = std::stod(width_text, &used);
      if (used != width_text.size()) throw std::invalid_argument(width_text);
    } catch (...) {
      return Error::parse("query: window width must be a number, got '" +
                          width_text + "'");
    }
    if (!(width > 0)) {
      return Error::parse("query: window width must be > 0, got '" +
                          width_text + "'");
    }
    return LogOp::window(std::move(name), std::move(field), width);
  }
  if (keyword == "summarize") {
    return parse_summarize(rest);
  }
  // Bare expression = filter.
  return LogOp::filter(stage);
}

}  // namespace

Result<LogQuery> parse_query(std::string_view text) {
  LogQuery query;
  if (common::trim(text).empty()) return query;  // pass-through
  for (const auto& stage : split_stages(text)) {
    if (stage.empty()) {
      return Error::parse("query: empty stage (stray '|')");
    }
    KN_ASSIGN_OR_RETURN(LogOp op, parse_stage(stage));
    query.push_back(std::move(op));
  }
  return query;
}

std::string query_to_string(const LogQuery& query) {
  std::vector<std::string> stages;
  for (const auto& op : query) {
    switch (op.kind) {
      case LogOp::Kind::kFilter:
        stages.push_back("where " + op.expr_text);
        break;
      case LogOp::Kind::kRename: {
        std::string s = "rename ";
        bool first = true;
        for (const auto& [old_name, new_name] : op.renames) {
          if (!first) s += ", ";
          first = false;
          s += new_name + "=" + old_name;
        }
        stages.push_back(std::move(s));
        break;
      }
      case LogOp::Kind::kProject:
        stages.push_back("cut " + common::join(op.fields, ", "));
        break;
      case LogOp::Kind::kDrop:
        stages.push_back("drop " + common::join(op.fields, ", "));
        break;
      case LogOp::Kind::kSort:
        stages.push_back("sort " + op.field +
                         (op.descending ? " desc" : ""));
        break;
      case LogOp::Kind::kHead:
        stages.push_back("head " + std::to_string(op.n));
        break;
      case LogOp::Kind::kTail:
        stages.push_back("tail " + std::to_string(op.n));
        break;
      case LogOp::Kind::kMap:
        stages.push_back("put " + op.field + " := " + op.expr_text);
        break;
      case LogOp::Kind::kWindow: {
        // Integral widths render without a trailing ".000000".
        std::string w;
        if (op.width == static_cast<double>(
                            static_cast<std::int64_t>(op.width))) {
          w = std::to_string(static_cast<std::int64_t>(op.width));
        } else {
          w = std::to_string(op.width);
        }
        stages.push_back("window " + op.field + " := " + op.source_field +
                         " every " + w);
        break;
      }
      case LogOp::Kind::kAggregate: {
        std::string s = "summarize ";
        bool first = true;
        for (const auto& [out_field, agg] : op.aggs) {
          if (!first) s += ", ";
          first = false;
          s += out_field + "=" + agg.first + "(" + agg.second + ")";
        }
        if (!op.fields.empty()) {
          s += " by " + common::join(op.fields, ", ");
        }
        stages.push_back(std::move(s));
        break;
      }
    }
  }
  return common::join(stages, " | ");
}

}  // namespace knactor::de
