// Data-store schema registry. Knactor developers register their data
// store's schema at development time (the "Externalize" step of the
// workflow, §3.2) and annotate which fields an integrator may fill
// externally ("Express", Fig. 5's "# +kr: external" comments).
//
// Schemas are written in the paper's YAML form:
//
//   schema: OnlineRetail/v1/Checkout/Order
//   items: object
//   address: string
//   shippingCost: number   # +kr: external
//
// and validated against state objects on demand.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace knactor::de {

struct SchemaField {
  std::string name;
  /// One of: string, number, int, bool, object, list, any.
  std::string type;
  /// True when annotated "+kr: external" — filled by an integrator, not
  /// the owning service.
  bool external = false;
  /// True when annotated "+kr: required".
  bool required = false;
};

struct StoreSchema {
  /// e.g. "OnlineRetail/v1/Checkout/Order"
  std::string id;
  std::vector<SchemaField> fields;

  [[nodiscard]] const SchemaField* field(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> external_fields() const;

  /// Checks a state object against this schema. Unknown fields and
  /// type mismatches are errors; missing non-required fields are not.
  [[nodiscard]] common::Status validate(const common::Value& object) const;
};

/// Parses the paper's YAML schema format (Fig. 5), reading "+kr:"
/// annotations from trailing comments.
common::Result<StoreSchema> parse_schema(std::string_view yaml_text);

/// Registry of data-store schemas hosted by a data exchange. Per §3.3,
/// developers composing services can read schemas (not live states), so
/// the registry is the integrator author's source of truth.
class SchemaRegistry {
 public:
  common::Status add(StoreSchema schema);
  common::Status add_yaml(std::string_view yaml_text);
  [[nodiscard]] const StoreSchema* find(std::string_view id) const;
  [[nodiscard]] std::vector<std::string> ids() const;

 private:
  std::map<std::string, StoreSchema, std::less<>> schemas_;
};

}  // namespace knactor::de
