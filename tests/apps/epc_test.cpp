#include "apps/epc.h"

#include <gtest/gtest.h>

namespace knactor::apps {
namespace {

using common::Value;

TEST(EpcKnactor, PremiumSubscriberAttaches) {
  core::Runtime runtime;
  auto app = build_epc_knactor_app(runtime);
  auto attach = app.attach_sync("001010000000001");
  ASSERT_TRUE(attach.ok()) << attach.error().to_string();
  const Value& a = attach.value();
  EXPECT_EQ(a.get("state")->as_string(), "active");
  EXPECT_TRUE(a.get("authorized")->as_bool());
  EXPECT_EQ(a.get("qos")->as_string(), "qci5");  // premium plan
  EXPECT_NE(a.get("bearerID"), nullptr);
  EXPECT_NE(a.get("ipAddress"), nullptr);
}

TEST(EpcKnactor, BasicSubscriberGetsBasicQos) {
  core::Runtime runtime;
  auto app = build_epc_knactor_app(runtime);
  auto attach = app.attach_sync("001010000000002");
  ASSERT_TRUE(attach.ok());
  EXPECT_EQ(attach.value().get("qos")->as_string(), "qci9");
  EXPECT_EQ(attach.value().get("state")->as_string(), "active");
}

TEST(EpcKnactor, BlockedSubscriberRejected) {
  core::Runtime runtime;
  auto app = build_epc_knactor_app(runtime);
  auto attach = app.attach_sync("001010000000666");
  ASSERT_TRUE(attach.ok());
  EXPECT_EQ(attach.value().get("state")->as_string(), "rejected");
  EXPECT_FALSE(attach.value().get("authorized")->as_bool());
  // The authorization gate kept state out of the bearer function.
  const de::StateObject* bearer = app.bearer_store->peek("state");
  if (bearer != nullptr && bearer->data) {
    EXPECT_EQ(bearer->data->get("imsi"), nullptr);
    EXPECT_EQ(bearer->data->get("bearerID"), nullptr);
  }
}

TEST(EpcKnactor, UnknownSubscriberRejected) {
  core::Runtime runtime;
  auto app = build_epc_knactor_app(runtime);
  auto attach = app.attach_sync("999999999999999");
  ASSERT_TRUE(attach.ok());
  EXPECT_EQ(attach.value().get("state")->as_string(), "rejected");
}

TEST(EpcKnactor, SequentialAttachesWithReset) {
  core::Runtime runtime;
  auto app = build_epc_knactor_app(runtime);
  ASSERT_TRUE(app.attach_sync("001010000000001").ok());
  app.reset_attach_state();
  EXPECT_EQ(app.session_store->peek("attach"), nullptr);
  auto second = app.attach_sync("001010000000002");
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  EXPECT_EQ(second.value().get("state")->as_string(), "active");
  // Fresh bearer for the second UE.
  EXPECT_NE(second.value().get("bearerID")->as_string(),
            std::string("brr-1"));
}

TEST(EpcKnactor, BearerOnlyAfterAuthorization) {
  // Watch the bearer store: it must never see an unauthorized imsi.
  core::Runtime runtime;
  auto app = build_epc_knactor_app(runtime);
  std::vector<std::string> seen_imsis;
  app.bearer_store->watch("observer", "", [&](const de::WatchEvent& e) {
    if (!e.object.data) return;
    const Value* imsi = e.object.data->get("imsi");
    if (imsi != nullptr && imsi->is_string()) {
      seen_imsis.push_back(imsi->as_string());
    }
  });
  (void)app.attach_sync("001010000000666");  // blocked
  EXPECT_TRUE(seen_imsis.empty());
  app.reset_attach_state();
  (void)app.attach_sync("001010000000001");  // allowed
  ASSERT_FALSE(seen_imsis.empty());
  EXPECT_EQ(seen_imsis.back(), "001010000000001");
}

TEST(EpcRpc, AttachChainsAcrossFunctions) {
  sim::VirtualClock clock;
  EpcRpcApp app(clock);
  auto attach = app.attach_sync("001010000000001");
  ASSERT_TRUE(attach.ok()) << attach.error().to_string();
  EXPECT_EQ(attach.value().get("qos")->as_string(), "qci5");
  EXPECT_EQ(attach.value().get("bearer_id")->as_string(), "brr-1");
  EXPECT_EQ(attach.value().get("ip")->as_string(), "10.0.0.1");
}

TEST(EpcRpc, BlockedSubscriberRejected) {
  sim::VirtualClock clock;
  EpcRpcApp app(clock);
  auto attach = app.attach_sync("001010000000666");
  ASSERT_FALSE(attach.ok());
  EXPECT_NE(attach.error().message.find("rejected"), std::string::npos);
}

TEST(Epc, BothFormsAgreeOnOutcomes) {
  for (const std::string& imsi : epc_known_imsis()) {
    core::Runtime runtime;
    auto kn = build_epc_knactor_app(runtime);
    auto kn_attach = kn.attach_sync(imsi);
    ASSERT_TRUE(kn_attach.ok());
    bool kn_ok = kn_attach.value().get("state")->as_string() == "active";

    sim::VirtualClock clock;
    EpcRpcApp rpc(clock);
    bool rpc_ok = rpc.attach_sync(imsi).ok();
    EXPECT_EQ(kn_ok, rpc_ok) << imsi;
    if (kn_ok) {
      EXPECT_EQ(kn_attach.value().get("qos")->as_string(),
                imsi == "001010000000001" ? "qci5" : "qci9");
    }
  }
}

TEST(Epc, KnactorAttachWorksOnApiserverProfile) {
  core::Runtime runtime;
  EpcOptions options;
  options.de_profile = de::ObjectDeProfile::apiserver();
  auto app = build_epc_knactor_app(runtime, options);
  auto attach = app.attach_sync("001010000000002");
  ASSERT_TRUE(attach.ok());
  EXPECT_EQ(attach.value().get("state")->as_string(), "active");
}

}  // namespace
}  // namespace knactor::apps
