// Static schema-flow analysis for Sync routes: a declared source schema's
// field set is propagated through a Log-style pipeline (de/query.h) stage
// by stage, so field references that were dropped, renamed, or never
// existed are caught before the route ever moves a record (§5's vision of
// development-time composition checking, applied to the data-ingestion
// path).
//
// Routes are declared in a spec's `Sync:` section:
//
//   Sync:
//     motion-to-house:
//       source: SmartHome/v1/Motion/Event
//       target: SmartHome/v1/House/Event
//       pipeline: rename motion=triggered | cut motion, room
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/diagnostic.h"
#include "analysis/typecheck.h"
#include "de/schema.h"
#include "yaml/yaml.h"

namespace knactor::analysis {

/// One declared Sync route.
struct SyncRouteSpec {
  std::string name;
  std::string source_schema;  // store schema id records are read from
  std::string target_schema;  // store schema id records are written to
  std::string pipeline_text;  // de/query.h pipeline ("" = identity)
  SourceLoc loc;              // position of the route's key in the spec
};

/// Extracts every well-formed route of a spec's `Sync:` section (for the
/// project-wide composition graph); malformed routes are skipped here —
/// lint_spec reports them.
std::vector<SyncRouteSpec> collect_sync_routes(const yaml::Document& doc,
                                               const std::string& file);

/// What the composition is known to write into a source-record field: the
/// join of every producing mapping's abstract value (plus null, since a
/// mapping that evaluates to null writes nothing). Keyed by field name;
/// `loc`/`desc` name one producing endpoint for cross-spec diagnostics.
struct ProducedField {
  AbsValue value;
  SourceLoc loc;
  std::string desc;
};
using ProducedFieldMap = std::map<std::string, ProducedField>;

/// The source schema's fields as a flat field→type map (the record shape
/// entering a pipeline).
std::map<std::string, Type> schema_field_types(const de::StoreSchema& schema);

/// Propagates `fields` through the parsed pipeline, reporting KN2xx
/// diagnostics against `loc`/`route_name`; returns the outgoing shape.
/// Unknown stages never abort the flow — each stage degrades to its best
/// approximation so later stages still get checked. Filter stages also run
/// the KN501/KN502 satisfiability pass; `produced`, when given, refines
/// source-field values with what the composition's mappings actually write
/// (cross-spec findings then carry the producing endpoint).
std::map<std::string, Type> analyze_pipeline(
    const std::string& pipeline_text, std::map<std::string, Type> fields,
    const SourceLoc& loc, const std::string& route_name,
    std::vector<Diagnostic>& out, const ProducedFieldMap* produced = nullptr);

/// Analyzes one route end to end: source lookup (KN207 when unknown),
/// pipeline flow (KN201-KN205, KN208, KN501/KN502), and output-vs-target-
/// schema conformance (KN206). Returns the route's outgoing record shape
/// (empty when the source schema is unknown) — the RBAC pre-flight checks
/// write permission for exactly these fields.
std::map<std::string, Type> analyze_sync_route(
    const SyncRouteSpec& route, const de::SchemaRegistry& schemas,
    std::vector<Diagnostic>& out, const ProducedFieldMap* produced = nullptr);

}  // namespace knactor::analysis
