#include "core/slo.h"

#include <algorithm>
#include <cmath>
#include <string_view>

namespace knactor::core {

sim::SimTime SloMonitor::percentile(std::vector<sim::SimTime> durations,
                                    double pct) {
  if (durations.empty()) return 0;
  std::sort(durations.begin(), durations.end());
  double rank = pct / 100.0 * static_cast<double>(durations.size());
  auto index = static_cast<std::size_t>(std::ceil(rank));
  if (index == 0) index = 1;
  if (index > durations.size()) index = durations.size();
  return durations[index - 1];
}

SloReport SloMonitor::evaluate(const Slo& slo) const {
  SloReport report;
  report.span_name = slo.span_name;
  report.target = slo.target;
  report.percentile = slo.percentile;

  constexpr std::string_view kStagePrefix = "stage:";
  std::vector<Span> population;
  if (slo.span_name.rfind(kStagePrefix, 0) == 0) {
    population = tracer_.by_attribute(
        "stage", slo.span_name.substr(kStagePrefix.size()));
  } else {
    population = tracer_.by_name(slo.span_name);
  }
  std::vector<sim::SimTime> durations;
  for (const auto& span : population) {
    durations.push_back(span.duration());
    if (span.duration() > slo.target) ++report.violations;
  }
  report.samples = durations.size();
  if (durations.empty()) {
    report.met = true;  // vacuously
    return report;
  }
  report.p50 = percentile(durations, 50.0);
  report.p99 = percentile(durations, 99.0);
  report.max = *std::max_element(durations.begin(), durations.end());
  report.attained = percentile(durations, slo.percentile);
  report.met = report.attained <= slo.target;
  return report;
}

std::vector<SloReport> SloMonitor::evaluate_all() const {
  std::vector<SloReport> out;
  out.reserve(slos_.size());
  for (const auto& slo : slos_) {
    out.push_back(evaluate(slo));
  }
  return out;
}

std::string SloMonitor::to_text(const std::vector<SloReport>& reports) {
  std::string out;
  out += "# TYPE knactor_slo_latency_ms summary\n";
  for (const auto& r : reports) {
    std::string labels = "{span=\"" + r.span_name + "\"}";
    auto line = [&](const std::string& name, double value) {
      out += "knactor_" + name + labels + " " + std::to_string(value) + "\n";
    };
    line("slo_latency_ms_p50", sim::to_ms(r.p50));
    line("slo_latency_ms_p99", sim::to_ms(r.p99));
    line("slo_latency_ms_max", sim::to_ms(r.max));
    line("slo_samples", static_cast<double>(r.samples));
    line("slo_violations", static_cast<double>(r.violations));
    line("slo_met", r.met ? 1.0 : 0.0);
  }
  return out;
}

}  // namespace knactor::core
