// Virtual time. All latency-bearing components (network links, DE backends,
// external-API simulations) charge time to a VirtualClock instead of
// sleeping, so benches reproduce the paper's millisecond-scale latency
// shapes deterministically and instantly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace knactor::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

inline double to_ms(SimTime t) { return static_cast<double>(t) / 1000.0; }
inline SimTime from_ms(double ms) {
  return static_cast<SimTime>(ms * 1000.0);
}

/// Discrete-event virtual clock. Events are callbacks scheduled at absolute
/// sim times; run_until/run_all advance time by executing them in order.
/// Ties break by scheduling order (FIFO), which keeps runs deterministic.
class VirtualClock {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Advances the clock without running events (used by synchronous
  /// latency charging, e.g. a blocking store lookup).
  void advance(SimTime delta);

  /// Schedules `cb` to run at now() + delay.
  void schedule_after(SimTime delay, Callback cb);
  /// Schedules `cb` at an absolute time (clamped to now()).
  void schedule_at(SimTime when, Callback cb);

  /// Runs events until the queue is empty. Returns events executed.
  std::size_t run_all();
  /// Runs events with timestamps <= deadline; clock ends at
  /// max(now, deadline) if the queue drained, else at the last event time.
  std::size_t run_until(SimTime deadline);
  /// Runs at most one event. Returns false if the queue is empty.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace knactor::sim
