#include "expr/ast.h"

#include <map>
#include <set>

#include "common/json.h"

namespace knactor::expr {

namespace {

void to_string_impl(const Node& node, std::string& out) {
  switch (node.kind) {
    case NodeKind::kLiteral:
      out += common::to_json(node.literal);
      break;
    case NodeKind::kName:
      out += node.name;
      break;
    case NodeKind::kAttribute:
      to_string_impl(*node.a, out);
      out += "." + node.name;
      break;
    case NodeKind::kIndex:
      to_string_impl(*node.a, out);
      out += "[";
      to_string_impl(*node.b, out);
      out += "]";
      break;
    case NodeKind::kCall: {
      out += node.name + "(";
      for (std::size_t i = 0; i < node.args.size(); ++i) {
        if (i > 0) out += ", ";
        to_string_impl(*node.args[i], out);
      }
      out += ")";
      break;
    }
    case NodeKind::kUnary:
      out += "(" + node.op + (node.op == "not" ? " " : "");
      to_string_impl(*node.a, out);
      out += ")";
      break;
    case NodeKind::kBinary:
      out += "(";
      to_string_impl(*node.a, out);
      out += " " + node.op + " ";
      to_string_impl(*node.b, out);
      out += ")";
      break;
    case NodeKind::kTernary:
      out += "(";
      to_string_impl(*node.b, out);
      out += " if ";
      to_string_impl(*node.a, out);
      out += " else ";
      to_string_impl(*node.c, out);
      out += ")";
      break;
    case NodeKind::kList: {
      out += "[";
      for (std::size_t i = 0; i < node.args.size(); ++i) {
        if (i > 0) out += ", ";
        to_string_impl(*node.args[i], out);
      }
      out += "]";
      break;
    }
    case NodeKind::kDict: {
      out += "{";
      for (std::size_t i = 0; i < node.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + node.dict_keys[i] + "\": ";
        to_string_impl(*node.args[i], out);
      }
      out += "}";
      break;
    }
    case NodeKind::kListComp: {
      out += "[";
      to_string_impl(*node.b, out);
      out += " for " + node.name + " in ";
      to_string_impl(*node.a, out);
      if (node.c) {
        out += " if ";
        to_string_impl(*node.c, out);
      }
      out += "]";
      break;
    }
  }
}

/// Returns the dotted path of a pure Name/Attribute chain, or empty.
std::string dotted_path(const Node& node) {
  if (node.kind == NodeKind::kName) return node.name;
  if (node.kind == NodeKind::kAttribute) {
    std::string base = dotted_path(*node.a);
    if (base.empty()) return "";
    return base + "." + node.name;
  }
  return "";
}

void collect_impl(const Node& node, std::set<std::string>& out,
                  std::map<std::string, std::string>& loop_vars) {
  switch (node.kind) {
    case NodeKind::kLiteral:
      break;
    case NodeKind::kName:
    case NodeKind::kAttribute: {
      std::string path = dotted_path(node);
      if (path.empty()) {
        // Attribute of a non-path base (e.g. f(x).y): recurse into base.
        if (node.a) collect_impl(*node.a, out, loop_vars);
        break;
      }
      // Substitute comprehension loop variables with their iterable path.
      std::size_t dot = path.find('.');
      std::string root = dot == std::string::npos ? path : path.substr(0, dot);
      auto it = loop_vars.find(root);
      if (it != loop_vars.end()) {
        if (!it->second.empty()) out.insert(it->second);
      } else {
        out.insert(path);
      }
      break;
    }
    case NodeKind::kIndex:
      collect_impl(*node.a, out, loop_vars);
      collect_impl(*node.b, out, loop_vars);
      break;
    case NodeKind::kCall:
      for (const auto& arg : node.args) collect_impl(*arg, out, loop_vars);
      break;
    case NodeKind::kUnary:
      collect_impl(*node.a, out, loop_vars);
      break;
    case NodeKind::kBinary:
      collect_impl(*node.a, out, loop_vars);
      collect_impl(*node.b, out, loop_vars);
      break;
    case NodeKind::kTernary:
      collect_impl(*node.a, out, loop_vars);
      collect_impl(*node.b, out, loop_vars);
      collect_impl(*node.c, out, loop_vars);
      break;
    case NodeKind::kList:
    case NodeKind::kDict:
      for (const auto& arg : node.args) collect_impl(*arg, out, loop_vars);
      break;
    case NodeKind::kListComp: {
      collect_impl(*node.a, out, loop_vars);
      std::string iter_path = dotted_path(*node.a);
      auto saved = loop_vars;
      loop_vars[node.name] = iter_path;  // item.* maps to the iterable
      collect_impl(*node.b, out, loop_vars);
      if (node.c) collect_impl(*node.c, out, loop_vars);
      loop_vars = std::move(saved);
      break;
    }
  }
}

}  // namespace

std::string to_string(const Node& node) {
  std::string out;
  to_string_impl(node, out);
  return out;
}

std::vector<std::string> collect_refs(const Node& node) {
  std::set<std::string> refs;
  std::map<std::string, std::string> loop_vars;
  collect_impl(node, refs, loop_vars);
  return {refs.begin(), refs.end()};
}

}  // namespace knactor::expr
