// Text query language for the Log DE — the Zed-like pipeline syntax the
// paper's Log exchange exposes ("data ingestion and analytics APIs").
// A query is a '|'-separated pipeline of stages:
//
//   kwh > 0.5 | rename kwh=energy | sort energy desc | head 5
//   where device == "lamp" | put wh := kwh * 1000 | cut device, wh
//   summarize total=sum(kwh), n=count(kwh) by device
//
// Stages:
//   where EXPR            filter (a bare leading EXPR is also a filter)
//   rename new=old, ...   rename fields
//   cut f1, f2 / project  keep only the named fields
//   drop f1, f2           remove fields
//   sort FIELD [desc]     order records
//   head N / tail N       truncate
//   put NAME := EXPR      computed field
//   window NAME := FIELD every WIDTH
//                         time-bucket: NAME = floor(FIELD/WIDTH)*WIDTH
//   summarize out=fn(field), ... [by f1, f2]
//                         aggregate (fn: count,sum,min,max,avg,first,last)
#pragma once

#include <string_view>

#include "common/result.h"
#include "de/log.h"

namespace knactor::de {

/// Parses the pipeline text into an executable LogQuery.
common::Result<LogQuery> parse_query(std::string_view text);

/// Renders a LogQuery back to pipeline text (normalized).
std::string query_to_string(const LogQuery& query);

}  // namespace knactor::de
