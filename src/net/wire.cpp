#include "net/wire.h"

#include <cstring>

namespace knactor::net {

using common::Error;
using common::Result;
using common::Status;
using common::Value;

namespace {

constexpr std::uint32_t kWireVarint = 0;
constexpr std::uint32_t kWireFixed64 = 1;
constexpr std::uint32_t kWireLengthDelimited = 2;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= bytes.size(); }

  Result<std::uint64_t> varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (pos < bytes.size()) {
      std::uint8_t b = bytes[pos++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift >= 64) break;
    }
    return Error::parse("wire: truncated varint");
  }

  Result<double> fixed64() {
    if (pos + 8 > bytes.size()) return Error::parse("wire: truncated fixed64");
    double d = 0;
    std::memcpy(&d, bytes.data() + pos, 8);
    pos += 8;
    return d;
  }

  Result<std::vector<std::uint8_t>> length_delimited() {
    KN_ASSIGN_OR_RETURN(std::uint64_t len, varint());
    if (pos + len > bytes.size()) {
      return Error::parse("wire: truncated length-delimited field");
    }
    std::vector<std::uint8_t> out(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return out;
  }
};

std::uint32_t wire_type_for(FieldType t) {
  switch (t) {
    case FieldType::kBool:
    case FieldType::kInt:
      return kWireVarint;
    case FieldType::kDouble:
      return kWireFixed64;
    case FieldType::kString:
    case FieldType::kMessage:
      return kWireLengthDelimited;
  }
  return kWireVarint;
}

Status encode_scalar(const SchemaPool& pool, const FieldDescriptor& field,
                     const Value& v, std::vector<std::uint8_t>& out) {
  put_varint(out, (static_cast<std::uint64_t>(field.tag) << 3) |
                      wire_type_for(field.type));
  switch (field.type) {
    case FieldType::kBool: {
      auto b = v.try_bool();
      if (!b) {
        return Error::invalid_argument("wire: field '" + field.name +
                                       "' expects bool, got " + v.type_name());
      }
      put_varint(out, *b ? 1 : 0);
      return Status::success();
    }
    case FieldType::kInt: {
      auto i = v.try_int();
      if (!i) {
        return Error::invalid_argument("wire: field '" + field.name +
                                       "' expects int, got " + v.type_name());
      }
      put_varint(out, zigzag(*i));
      return Status::success();
    }
    case FieldType::kDouble: {
      auto d = v.try_number();
      if (!d) {
        return Error::invalid_argument("wire: field '" + field.name +
                                       "' expects double, got " +
                                       v.type_name());
      }
      double val = *d;
      std::uint8_t buf[8];
      std::memcpy(buf, &val, 8);
      out.insert(out.end(), buf, buf + 8);
      return Status::success();
    }
    case FieldType::kString: {
      auto s = v.try_string();
      if (!s) {
        return Error::invalid_argument("wire: field '" + field.name +
                                       "' expects string, got " +
                                       v.type_name());
      }
      put_varint(out, s->size());
      out.insert(out.end(), s->begin(), s->end());
      return Status::success();
    }
    case FieldType::kMessage: {
      const MessageDescriptor* nested = pool.find(field.message_type);
      if (nested == nullptr) {
        return Error::not_found("wire: unknown message type '" +
                                field.message_type + "'");
      }
      KN_ASSIGN_OR_RETURN(std::vector<std::uint8_t> inner,
                          encode(pool, *nested, v));
      put_varint(out, inner.size());
      out.insert(out.end(), inner.begin(), inner.end());
      return Status::success();
    }
  }
  return Error::internal("wire: unhandled field type");
}

}  // namespace

const FieldDescriptor* MessageDescriptor::field_by_name(
    std::string_view name) const {
  for (const auto& f : fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const FieldDescriptor* MessageDescriptor::field_by_tag(
    std::uint32_t tag) const {
  for (const auto& f : fields) {
    if (f.tag == tag) return &f;
  }
  return nullptr;
}

Status SchemaPool::add(MessageDescriptor desc) {
  // Validate tag uniqueness up front — a malformed schema should fail at
  // registration, not at the first encode.
  for (std::size_t i = 0; i < desc.fields.size(); ++i) {
    for (std::size_t j = i + 1; j < desc.fields.size(); ++j) {
      if (desc.fields[i].tag == desc.fields[j].tag) {
        return Error::invalid_argument("wire: duplicate tag " +
                                       std::to_string(desc.fields[i].tag) +
                                       " in " + desc.full_name);
      }
      if (desc.fields[i].name == desc.fields[j].name) {
        return Error::invalid_argument("wire: duplicate field name '" +
                                       desc.fields[i].name + "' in " +
                                       desc.full_name);
      }
    }
  }
  messages_[desc.full_name] = std::move(desc);
  return Status::success();
}

const MessageDescriptor* SchemaPool::find(std::string_view full_name) const {
  auto it = messages_.find(full_name);
  return it == messages_.end() ? nullptr : &it->second;
}

Result<std::vector<std::uint8_t>> encode(const SchemaPool& pool,
                                         const MessageDescriptor& desc,
                                         const Value& value) {
  if (!value.is_object()) {
    return Error::invalid_argument("wire: can only encode objects, got " +
                                   std::string(value.type_name()));
  }
  std::vector<std::uint8_t> out;
  for (const auto& [key, v] : value.as_object()) {
    const FieldDescriptor* field = desc.field_by_name(key);
    if (field == nullptr) {
      return Error::invalid_argument("wire: field '" + key +
                                     "' not in schema " + desc.full_name);
    }
    if (v.is_null()) continue;  // unset optional field
    if (field->repeated) {
      if (!v.is_array()) {
        return Error::invalid_argument("wire: repeated field '" + key +
                                       "' expects array");
      }
      for (const auto& item : v.as_array()) {
        KN_TRY(encode_scalar(pool, *field, item, out));
      }
    } else {
      KN_TRY(encode_scalar(pool, *field, v, out));
    }
  }
  for (const auto& field : desc.fields) {
    if (!field.required) continue;
    const Value* v = value.get(field.name);
    if (v == nullptr || v->is_null()) {
      return Error::invalid_argument("wire: required field '" + field.name +
                                     "' missing in " + desc.full_name);
    }
  }
  return out;
}

Result<Value> decode(const SchemaPool& pool, const MessageDescriptor& desc,
                     const std::vector<std::uint8_t>& bytes) {
  Reader reader{bytes};
  Value out = Value::object();
  while (!reader.done()) {
    KN_ASSIGN_OR_RETURN(std::uint64_t key, reader.varint());
    auto tag = static_cast<std::uint32_t>(key >> 3);
    auto wire_type = static_cast<std::uint32_t>(key & 0x7);
    const FieldDescriptor* field = desc.field_by_tag(tag);
    if (field == nullptr) {
      return Error::parse("wire: unknown tag " + std::to_string(tag) +
                          " for " + desc.full_name +
                          " (schema version mismatch?)");
    }
    if (wire_type != wire_type_for(field->type)) {
      return Error::parse("wire: wire-type mismatch on field '" + field->name +
                          "' (schema version mismatch?)");
    }
    Value v;
    switch (field->type) {
      case FieldType::kBool: {
        KN_ASSIGN_OR_RETURN(std::uint64_t raw, reader.varint());
        v = Value(raw != 0);
        break;
      }
      case FieldType::kInt: {
        KN_ASSIGN_OR_RETURN(std::uint64_t raw, reader.varint());
        v = Value(unzigzag(raw));
        break;
      }
      case FieldType::kDouble: {
        KN_ASSIGN_OR_RETURN(double d, reader.fixed64());
        v = Value(d);
        break;
      }
      case FieldType::kString: {
        KN_ASSIGN_OR_RETURN(std::vector<std::uint8_t> raw,
                            reader.length_delimited());
        v = Value(std::string(raw.begin(), raw.end()));
        break;
      }
      case FieldType::kMessage: {
        const MessageDescriptor* nested = pool.find(field->message_type);
        if (nested == nullptr) {
          return Error::not_found("wire: unknown message type '" +
                                  field->message_type + "'");
        }
        KN_ASSIGN_OR_RETURN(std::vector<std::uint8_t> raw,
                            reader.length_delimited());
        KN_ASSIGN_OR_RETURN(v, decode(pool, *nested, raw));
        break;
      }
    }
    if (field->repeated) {
      Value* existing = out.get(field->name);
      if (existing == nullptr) {
        out.set(field->name, Value::array({}));
        existing = out.get(field->name);
      }
      existing->as_array().push_back(std::move(v));
    } else {
      out.set(field->name, std::move(v));
    }
  }
  for (const auto& field : desc.fields) {
    if (field.required && out.get(field.name) == nullptr) {
      return Error::parse("wire: required field '" + field.name +
                          "' missing in decoded " + desc.full_name);
    }
  }
  return out;
}

}  // namespace knactor::net
