#include "core/sync.h"

#include <algorithm>

#include "common/logging.h"
#include "de/plan.h"

namespace knactor::core {

using common::Error;
using common::Result;
using common::Status;
using common::Value;

SyncIntegrator::SyncIntegrator(std::string name, de::LogDe& de,
                               Options options, Tracer* tracer)
    : name_(std::move(name)), de_(de), options_(options), tracer_(tracer) {}

SyncIntegrator::SyncIntegrator(std::string name, de::LogDe& de)
    : SyncIntegrator(std::move(name), de, Options{}) {}

Status SyncIntegrator::add_route(SyncRoute route) {
  if (route.source == nullptr || route.target == nullptr) {
    return Error::invalid_argument("sync " + name_ +
                                   ": route needs source and target pools");
  }
  for (const auto& r : routes_) {
    if (r.name == route.name) {
      return Error::already_exists("sync " + name_ + ": route '" + route.name +
                                   "' exists");
    }
  }
  routes_.push_back(std::move(route));
  return Status::success();
}

Status SyncIntegrator::remove_route(const std::string& route_name) {
  auto before = routes_.size();
  std::erase_if(routes_,
                [&](const SyncRoute& r) { return r.name == route_name; });
  if (routes_.size() == before) {
    return Error::not_found("sync " + name_ + ": no route '" + route_name +
                            "'");
  }
  return Status::success();
}

Status SyncIntegrator::set_pipeline(const std::string& route_name,
                                    de::LogQuery pipeline) {
  for (auto& r : routes_) {
    if (r.name == route_name) {
      r.pipeline = std::move(pipeline);
      ++stats_.reconfigurations;
      return Status::success();
    }
  }
  return Error::not_found("sync " + name_ + ": no route '" + route_name + "'");
}

Status SyncIntegrator::start() {
  if (running_) return Status::success();
  running_ = true;
  if (options_.interval > 0) schedule_tick();
  return Status::success();
}

void SyncIntegrator::stop() { running_ = false; }

Status SyncIntegrator::reconfigure(const Value& config) {
  const Value* consolidate = config.get("consolidate");
  if (consolidate != nullptr && consolidate->is_bool()) {
    options_.consolidate = consolidate->as_bool();
    ++stats_.reconfigurations;
    return Status::success();
  }
  return Error::invalid_argument(
      "sync " + name_ +
      ": use add_route/set_pipeline for route reconfiguration");
}

void SyncIntegrator::schedule_tick() {
  de_.clock().schedule_after(options_.interval, [this]() {
    if (!running_) return;
    auto moved = run_round_sync();
    if (!moved.ok()) {
      KN_WARN << "sync " << name_
              << ": round failed: " << moved.error().to_string();
    }
    schedule_tick();
  });
}

std::size_t SyncIntegrator::count_passes(const de::LogQuery& pipeline,
                                         bool consolidated) {
  if (pipeline.empty()) return 0;
  if (!consolidated) return pipeline.size();
  // The planner is the single source of truth for what fuses: one pass per
  // plan stage (fused record-local segment or barrier).
  return de::plan_query(pipeline).passes();
}

Result<std::size_t> SyncIntegrator::run_route(SyncRoute& route) {
  std::uint64_t span = 0;
  if (tracer_ != nullptr) {
    span = tracer_->begin("sync.route." + route.name);
  }
  // Pull raw records after the cursor; the source query itself charges the
  // DE's scan cost once.
  std::uint64_t latest = route.source->latest_seq();
  sim::SimTime per_record = de_.profile().per_record.mean();
  std::size_t moved = 0;
  if (options_.consolidate) {
    // Consolidated round (§3.3): records move as copy-on-write handles
    // (no deep copy until a pipeline stage mutates one), the fused plan
    // runs record-local segments as single passes, and execution cost is
    // charged on the records each stage actually processed.
    KN_ASSIGN_OR_RETURN(
        std::vector<common::CowValue> batch,
        route.source->query_shared_sync(principal(), {}, route.cursor));
    de::QueryPlan plan = de::plan_query(route.pipeline);
    de::PlanRunStats prs;
    KN_ASSIGN_OR_RETURN(std::vector<common::CowValue> transformed,
                        de::run_plan(plan, std::move(batch), &prs));
    stats_.records_processed += prs.total_processed();
    de_.clock().advance(
        static_cast<sim::SimTime>(prs.total_processed()) * per_record);
    moved = transformed.size();
    if (!transformed.empty()) {
      auto appended = route.target->append_batch_shared_sync(
          principal(), std::move(transformed));
      if (!appended.ok()) {
        ++stats_.pipeline_errors;
        if (tracer_ != nullptr && span != 0) tracer_->end(span);
        return appended.error();
      }
    }
  } else {
    KN_ASSIGN_OR_RETURN(
        std::vector<Value> batch,
        route.source->query_sync(principal(), {}, route.cursor));

    // Charge pipeline execution: one per-record scan per operator (this is
    // the operator-consolidation ablation surface).
    std::size_t passes = count_passes(route.pipeline, /*consolidated=*/false);
    stats_.records_processed += passes * batch.size();
    de_.clock().advance(static_cast<sim::SimTime>(passes * batch.size()) *
                        per_record);

    KN_ASSIGN_OR_RETURN(std::vector<Value> transformed,
                        de::run_pipeline(route.pipeline, std::move(batch)));

    moved = transformed.size();
    if (!transformed.empty()) {
      auto appended =
          route.target->append_batch_sync(principal(), std::move(transformed));
      if (!appended.ok()) {
        ++stats_.pipeline_errors;
        if (tracer_ != nullptr && span != 0) tracer_->end(span);
        return appended.error();
      }
    }
  }
  route.cursor = latest;
  stats_.records_moved += moved;
  if (tracer_ != nullptr && span != 0) tracer_->end(span);
  return moved;
}

Result<std::size_t> SyncIntegrator::run_round_sync() {
  ++stats_.rounds;
  std::size_t total = 0;
  std::optional<common::Error> first_error;
  for (auto& route : routes_) {
    auto moved = run_route(route);
    if (!moved.ok()) {
      // The failed route's cursor is unchanged; keep syncing the others and
      // let the retry (or the next round) re-pull the unsynced suffix.
      ++stats_.route_failures;
      if (options_.metrics != nullptr) {
        options_.metrics->inc("sync." + name_ + ".route_failures");
      }
      if (!first_error.has_value()) first_error = moved.error();
      continue;
    }
    total += moved.value();
  }
  if (first_error.has_value()) {
    maybe_schedule_retry();
    return *first_error;
  }
  round_attempt_ = 0;
  return total;
}

void SyncIntegrator::maybe_schedule_retry() {
  if (!options_.retry.enabled()) return;
  if (round_attempt_ == 0) round_first_attempt_ = de_.clock().now();
  ++round_attempt_;
  const sim::SimTime elapsed = de_.clock().now() - round_first_attempt_;
  if (!options_.retry.should_retry(round_attempt_, elapsed)) {
    round_attempt_ = 0;  // budget exhausted; the next tick starts fresh
    return;
  }
  ++stats_.retries;
  if (options_.metrics != nullptr) {
    options_.metrics->inc("sync." + name_ + ".retries");
  }
  de_.clock().schedule_after(
      options_.retry.backoff(round_attempt_, retry_rng_), [this]() {
        if (!running_) return;
        auto moved = run_round_sync();
        if (!moved.ok()) {
          KN_DEBUG << "sync " << name_
                   << ": retry round failed: " << moved.error().to_string();
        }
      });
}

}  // namespace knactor::core
