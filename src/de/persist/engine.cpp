#include "de/persist/engine.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <system_error>

namespace knactor::de::persist {

namespace fs = std::filesystem;

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

/// Parses "<prefix><number><suffix>"; nullopt for anything else.
std::optional<std::uint64_t> parse_generation(const std::string& name,
                                              std::string_view prefix,
                                              std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Mutable replay image: stores/objects as maps while folding records, then
/// rebuilt into the sorted Image layout at the end.
using ReplayState = std::map<std::string, std::map<std::string, ObjectImage>>;

ReplayState to_replay_state(const Image& image) {
  ReplayState state;
  for (const auto& store : image.stores) {
    auto& objects = state[store.name];
    for (const auto& obj : store.objects) objects[obj.key] = obj;
  }
  return state;
}

Image to_image(const ReplayState& state, std::uint64_t next_revision,
               std::uint64_t commit_seq) {
  Image image;
  image.next_revision = next_revision;
  image.commit_seq = commit_seq;
  for (const auto& [name, objects] : state) {
    StoreImage store;
    store.name = name;
    store.objects.reserve(objects.size());
    for (const auto& [key, obj] : objects) store.objects.push_back(obj);
    image.stores.push_back(std::move(store));
  }
  return image;
}

/// Filename-only view of one generation: which artifacts exist, with no
/// file contents read. recover() and gc() work from this listing and only
/// open the files they actually need (snapshots newest-first until one
/// validates, journals from the base up), so their cost scales with the
/// delta since the last snapshot — not with the total history on disk.
/// The exhaustive content scan lives in Engine::inspect() for tooling.
struct GenerationFiles {
  std::uint64_t generation = 0;
  bool has_journal = false;
  bool has_snapshot = false;
};

std::vector<GenerationFiles> list_generation_files(const std::string& dir) {
  std::map<std::uint64_t, GenerationFiles> by_gen;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (auto g = parse_generation(name, "journal-", ".kjnl")) {
      by_gen[*g].generation = *g;
      by_gen[*g].has_journal = true;
    } else if (auto s = parse_generation(name, "snapshot-", ".ksnp")) {
      by_gen[*s].generation = *s;
      by_gen[*s].has_snapshot = true;
    }
  }
  std::vector<GenerationFiles> out;
  out.reserve(by_gen.size());
  for (const auto& [g, info] : by_gen) out.push_back(info);
  return out;
}

void apply_record(ReplayState& state, const Record& rec) {
  if (rec.op == Record::Op::kDelete) {
    auto it = state.find(rec.store);
    if (it != state.end()) {
      it->second.erase(rec.key);
      // A store that exists (even empty) is part of the image: the DE
      // creates stores explicitly, so keep the entry.
    }
    return;
  }
  ObjectImage obj;
  obj.key = rec.key;
  obj.version = rec.version;
  obj.created_at = rec.created_at;
  obj.updated_at = rec.updated_at;
  obj.data = rec.data;
  state[rec.store][rec.key] = std::move(obj);
}

}  // namespace

const char* crash_point_name(CrashPoint point) {
  switch (point) {
    case CrashPoint::kJournalAppend: return "journal_append";
    case CrashPoint::kSnapshotWrite: return "snapshot_write";
    case CrashPoint::kTruncate: return "truncate";
  }
  return "unknown";
}

std::string Engine::journal_path(std::uint64_t generation) const {
  return options_.dir + "/journal-" + std::to_string(generation) + ".kjnl";
}

std::string Engine::snapshot_path(std::uint64_t generation) const {
  return options_.dir + "/snapshot-" + std::to_string(generation) + ".ksnp";
}

common::Status Engine::open() {
  if (options_.dir.empty()) {
    return common::Error::invalid_argument("persist: empty directory");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return common::Error::unavailable("persist: cannot create " +
                                      options_.dir + ": " + ec.message());
  }
  generation_ = 0;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (auto g = parse_generation(name, "journal-", ".kjnl")) {
      generation_ = std::max(generation_, *g);
    } else if (auto s = parse_generation(name, "snapshot-", ".ksnp")) {
      generation_ = std::max(generation_, *s);
    }
  }
  if (ec) {
    return common::Error::unavailable("persist: cannot scan " + options_.dir +
                                      ": " + ec.message());
  }
  opened_ = true;
  return common::Status::success();
}

common::Status Engine::ensure_journal_open() {
  if (!opened_) {
    return common::Error::failed_precondition("persist: engine not opened");
  }
  if (journal_out_.is_open()) return common::Status::success();
  const std::string path = journal_path(generation_);
  std::error_code ec;
  const bool fresh = !fs::exists(path, ec) || fs::file_size(path, ec) == 0;
  journal_out_.open(path, std::ios::binary | std::ios::app);
  if (!journal_out_.is_open()) {
    return common::Error::unavailable("persist: cannot open " + path);
  }
  if (fresh) {
    return write_journal_bytes(build_journal_header(generation_));
  }
  return common::Status::success();
}

common::Status Engine::write_journal_bytes(const std::string& bytes) {
  journal_out_.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
  journal_out_.flush();
  if (!journal_out_.good()) {
    return common::Error::unavailable("persist: journal write failed");
  }
  return common::Status::success();
}

common::Status Engine::append_batch(
    const std::vector<std::string_view>& records, std::uint32_t record_count,
    std::uint64_t next_revision, std::uint64_t commit_seq) {
  if (failed_) {
    return common::Error::unavailable("persist: engine crashed");
  }
  KN_TRY(ensure_journal_open());
  const std::string frame =
      build_frame(records, record_count, next_revision, commit_seq);
  if (fault_fires(CrashPoint::kJournalAppend)) {
    // Simulated crash mid-append: a torn prefix of the frame reaches disk.
    (void)write_journal_bytes(frame.substr(0, frame.size() / 2));
    failed_ = true;
    return common::Error::unavailable("persist: crashed during append");
  }
  KN_TRY(write_journal_bytes(frame));
  stats_.appends += 1;
  stats_.records_appended += record_count;
  records_since_snapshot_ += record_count;
  return common::Status::success();
}

common::Status Engine::snapshot(const Image& image) {
  if (failed_) {
    return common::Error::unavailable("persist: engine crashed");
  }
  if (!opened_) {
    return common::Error::failed_precondition("persist: engine not opened");
  }
  const std::uint64_t next_gen = generation_ + 1;
  const std::string bytes = encode_snapshot(image, next_gen);
  const std::string path = snapshot_path(next_gen);
  const bool torn = fault_fires(CrashPoint::kSnapshotWrite);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return common::Error::unavailable("persist: cannot write " + path);
    }
    // Simulated crash mid-snapshot: half the file reaches disk; the journal
    // of the current generation is untouched, so recovery falls back to the
    // previous snapshot plus the full journal chain.
    const std::string_view view =
        torn ? std::string_view(bytes).substr(0, bytes.size() / 2)
             : std::string_view(bytes);
    out.write(view.data(), static_cast<std::streamsize>(view.size()));
    out.flush();
    if (!torn && !out.good()) {
      return common::Error::unavailable("persist: snapshot write failed");
    }
  }
  if (torn) {
    failed_ = true;
    return common::Error::unavailable("persist: crashed during snapshot");
  }
  // Snapshot is durable — rotate the journal. The old generation stays on
  // disk until gc() so an in-flight recovery can still use it.
  if (journal_out_.is_open()) journal_out_.close();
  generation_ = next_gen;
  records_since_snapshot_ = 0;
  stats_.snapshots += 1;
  return ensure_journal_open();
}

common::Result<Image> Engine::recover() {
  if (!opened_) {
    KN_TRY(open());
  }
  if (journal_out_.is_open()) journal_out_.close();
  stats_.recoveries += 1;
  stats_.frames_replayed = 0;
  stats_.records_replayed = 0;

  const std::vector<GenerationFiles> gens =
      list_generation_files(options_.dir);

  // Base: the newest checksum-valid snapshot; otherwise the empty image at
  // the oldest generation still on disk (generation 0 on a fresh dir).
  // Snapshots are decoded newest-first and the walk stops at the first
  // valid one, so old generations awaiting gc cost recovery nothing.
  Image base;
  std::uint64_t base_gen = gens.empty() ? 0 : gens.front().generation;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (!it->has_snapshot) continue;
    const auto bytes = read_file(snapshot_path(it->generation));
    if (!bytes) {
      stats_.snapshots_skipped += 1;
      continue;
    }
    auto image = decode_snapshot(*bytes);
    if (!image) {
      stats_.snapshots_skipped += 1;
      continue;
    }
    base = std::move(*image);
    base_gen = it->generation;
    break;
  }

  ReplayState state = to_replay_state(base);
  std::uint64_t next_revision = base.next_revision;
  std::uint64_t commit_seq = base.commit_seq;

  // Chain-replay journals from the base generation up. Each journal
  // contributes its longest checksum-valid frame prefix; the chain stops at
  // the first torn or missing journal (anything after it predates the torn
  // write and can only exist if the torn journal was mid-rotation, which
  // the generation protocol makes impossible — so stopping is exact).
  std::uint64_t current_gen = base_gen;
  std::uint64_t last_journal_gen = base_gen;
  std::size_t last_valid_bytes = kJournalHeaderBytes;
  bool last_torn = false;
  for (std::uint64_t g = base_gen;; ++g) {
    const std::string path = journal_path(g);
    const auto bytes = read_file(path);
    if (!bytes) {
      // No journal for this generation: crash happened after the snapshot
      // was written but before the journal rotation completed. Appends
      // resume here with a fresh journal.
      current_gen = g;
      last_journal_gen = g;
      last_valid_bytes = 0;
      last_torn = false;
      break;
    }
    const JournalScan scan = scan_journal(*bytes);
    if (scan.header_valid) {
      for (const auto& frame : scan.frames) {
        for (const auto& rec : frame.records) apply_record(state, rec);
        next_revision = frame.next_revision;
        commit_seq = frame.commit_seq;
        stats_.frames_replayed += 1;
        stats_.records_replayed += frame.records.size();
      }
    }
    current_gen = g;
    last_journal_gen = g;
    last_valid_bytes = scan.header_valid ? scan.valid_bytes : 0;
    last_torn = scan.torn || !scan.header_valid;
    if (last_torn) break;
    // A clean journal ends the chain unless the next generation exists.
    std::error_code ec;
    if (!fs::exists(journal_path(g + 1), ec) &&
        !fs::exists(snapshot_path(g + 1), ec)) {
      break;
    }
  }

  // Truncate the torn tail (or recreate a missing/corrupt-header journal)
  // so subsequent appends continue from the exact durable prefix.
  {
    const std::string path = journal_path(last_journal_gen);
    if (last_valid_bytes < kJournalHeaderBytes) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out.is_open()) {
        return common::Error::unavailable("persist: cannot reset " + path);
      }
      const std::string header = build_journal_header(last_journal_gen);
      out.write(header.data(), static_cast<std::streamsize>(header.size()));
      if (!out.good()) {
        return common::Error::unavailable("persist: cannot reset " + path);
      }
    } else if (last_torn) {
      std::error_code ec;
      fs::resize_file(path, last_valid_bytes, ec);
      if (ec) {
        return common::Error::unavailable("persist: cannot truncate " + path +
                                          ": " + ec.message());
      }
      stats_.torn_frames_dropped += 1;
    }
  }

  generation_ = current_gen;
  // Everything replayed postdates the snapshot base, so it all counts
  // toward the next auto-snapshot.
  records_since_snapshot_ = stats_.records_replayed;
  failed_ = false;
  KN_TRY(ensure_journal_open());
  return to_image(state, next_revision, commit_seq);
}

std::size_t Engine::gc() {
  if (!opened_ || failed_) return 0;
  const std::vector<GenerationFiles> gens =
      list_generation_files(options_.dir);
  // The reclamation floor is the newest checksum-valid snapshot — the same
  // base recover() would load. Decoded newest-first, stopping at the first
  // valid one, so gc (like recovery) never pays for the history it is
  // about to reclaim.
  std::optional<std::uint64_t> base;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (!it->has_snapshot) continue;
    const auto bytes = read_file(snapshot_path(it->generation));
    if (bytes && decode_snapshot(*bytes)) {
      base = it->generation;
      break;
    }
  }
  if (!base) return 0;
  std::size_t reclaimed = 0;
  for (const auto& gen : gens) {
    if (gen.generation >= *base) continue;
    if (fault_fires(CrashPoint::kTruncate)) {
      // Simulated crash mid-reclamation: the snapshot went away but the
      // journal survived. Recovery must still work off generation *base.
      std::error_code ec;
      fs::remove(snapshot_path(gen.generation), ec);
      failed_ = true;
      return reclaimed;
    }
    std::error_code ec;
    const bool removed_snapshot = fs::remove(snapshot_path(gen.generation), ec);
    const bool removed_journal = fs::remove(journal_path(gen.generation), ec);
    if (removed_snapshot || removed_journal) {
      reclaimed += 1;
      stats_.generations_reclaimed += 1;
    }
  }
  return reclaimed;
}

std::vector<GenerationInfo> Engine::inspect(const std::string& dir) {
  std::map<std::uint64_t, GenerationInfo> by_gen;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (auto g = parse_generation(name, "journal-", ".kjnl")) {
      auto& info = by_gen[*g];
      info.generation = *g;
      info.has_journal = true;
      if (const auto bytes = read_file(entry.path().string())) {
        info.journal_bytes = bytes->size();
        const JournalScan scan = scan_journal(*bytes);
        info.journal_valid_bytes = scan.header_valid ? scan.valid_bytes : 0;
        info.journal_frames = scan.frames.size();
        for (const auto& frame : scan.frames) {
          info.journal_records += frame.records.size();
        }
        info.journal_torn = scan.torn || !scan.header_valid;
      } else {
        info.journal_torn = true;
      }
    } else if (auto s = parse_generation(name, "snapshot-", ".ksnp")) {
      auto& info = by_gen[*s];
      info.generation = *s;
      info.has_snapshot = true;
      if (const auto bytes = read_file(entry.path().string())) {
        info.snapshot_bytes = bytes->size();
        if (const auto image = decode_snapshot(*bytes)) {
          info.snapshot_valid = true;
          info.snapshot_objects = image->object_count();
        }
      }
    }
  }
  std::vector<GenerationInfo> out;
  out.reserve(by_gen.size());
  for (auto& [g, info] : by_gen) out.push_back(std::move(info));
  return out;
}

std::optional<std::uint64_t> Engine::recovery_base(
    const std::vector<GenerationInfo>& generations) {
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    if (it->has_snapshot && it->snapshot_valid) return it->generation;
  }
  return std::nullopt;
}

}  // namespace knactor::de::persist
