#include "apps/smart_home.h"

#include <gtest/gtest.h>

namespace knactor::apps {
namespace {

using common::Value;

TEST(SmartHomeKnactor, MotionBrightensLamp) {
  core::Runtime runtime;
  auto app = build_smart_home_knactor_app(runtime);
  EXPECT_EQ(app.lamp_intensity(), 10);  // no motion -> dim

  app.trigger_motion(true);
  app.settle();
  EXPECT_EQ(app.lamp_intensity(), 90);

  app.trigger_motion(false);
  app.settle();
  EXPECT_EQ(app.lamp_intensity(), 10);
}

TEST(SmartHomeKnactor, TelemetrySyncRenamesTriggeredToMotion) {
  core::Runtime runtime;
  auto app = build_smart_home_knactor_app(runtime);
  app.trigger_motion(true);
  app.settle();
  auto records = app.house_log->query_sync("test", {});
  ASSERT_TRUE(records.ok());
  bool found = false;
  for (const auto& r : records.value()) {
    if (r.get("motion") != nullptr) {
      found = true;
      EXPECT_EQ(r.get("triggered"), nullptr);  // renamed away
    }
  }
  EXPECT_TRUE(found);
}

TEST(SmartHomeKnactor, LampEnergyFlowsToHouseLog) {
  core::Runtime runtime;
  auto app = build_smart_home_knactor_app(runtime);
  app.trigger_motion(true);
  app.settle();
  app.settle();  // second round moves the lamp's new energy record
  auto records = app.house_log->query_sync("test", {});
  ASSERT_TRUE(records.ok());
  bool energy_seen = false;
  for (const auto& r : records.value()) {
    if (r.get("energy") != nullptr) {
      energy_seen = true;
      EXPECT_GT(r.get("energy")->as_number(), 0.0);
    }
  }
  EXPECT_TRUE(energy_seen);
}

TEST(SmartHomeKnactor, HouseAggregatesEnergyWithLogQuery) {
  core::Runtime runtime;
  auto app = build_smart_home_knactor_app(runtime);
  for (bool motion : {true, false, true}) {
    app.trigger_motion(motion);
    app.settle();
    app.settle();
  }
  de::LogQuery q;
  q.push_back(de::LogOp::filter("energy > 0").value());
  q.push_back(de::LogOp::aggregate({}, {{"total", {"sum", "energy"}},
                                        {"n", {"count", "energy"}}}));
  auto result = app.house_log->query_sync("house", q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_GT(result.value()[0].get("total")->as_number(), 0.0);
  EXPECT_GE(result.value()[0].get("n")->as_int(), 2);
}

TEST(SmartHomeKnactor, MotionSensorHasConfigStore) {
  core::Runtime runtime;
  auto app = build_smart_home_knactor_app(runtime);
  const de::StateObject* config = app.motion_store->peek("state");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->data->get("sensitivity")->as_int(), 5);
}

TEST(SmartHomeKnactor, SleepHoursBlockLampWrites) {
  core::Runtime runtime;
  SmartHomeOptions options;
  // Sleep from 22:00 to 06:00; the sim starts at 00:00 (inside sleep).
  options.sleep_from = 22LL * 3600 * sim::kSecond;
  options.sleep_to = 6LL * 3600 * sim::kSecond;
  auto app = build_smart_home_knactor_app(runtime, options);

  app.trigger_motion(true);
  app.settle();
  // House saw the motion and raised desired brightness...
  const de::StateObject* house = app.house_store->peek("state");
  ASSERT_NE(house, nullptr);
  EXPECT_EQ(house->data->get("brightness")->as_int(), 90);
  // ...but the integrator may not touch the lamp during sleep hours.
  EXPECT_NE(app.lamp_intensity(), 90);

  // After 06:00 the window opens and the exchange goes through.
  runtime.clock().run_until(7LL * 3600 * sim::kSecond);
  app.trigger_motion(true);
  app.settle();
  EXPECT_EQ(app.lamp_intensity(), 90);
}

TEST(SmartHomePubSub, MotionDrivesLampViaBroker) {
  sim::VirtualClock clock;
  SmartHomePubSubApp app(clock);
  EXPECT_EQ(app.lamp_intensity(), -1);
  app.trigger_motion(true);
  EXPECT_EQ(app.lamp_intensity(), 90);
  app.trigger_motion(false);
  EXPECT_EQ(app.lamp_intensity(), 10);
}

TEST(SmartHomePubSub, EnergyReportsAccumulateAtHouse) {
  sim::VirtualClock clock;
  SmartHomePubSubApp app(clock);
  app.trigger_motion(true);
  double after_on = app.house_kwh();
  EXPECT_GT(after_on, 0.0);
  app.trigger_motion(false);
  EXPECT_GT(app.house_kwh(), after_on);
}

TEST(SmartHome, BothImplementationsAgreeOnPolicy) {
  // The same motion stimulus produces the same lamp level through the
  // data-centric and the pub/sub composition.
  core::Runtime runtime;
  auto kn = build_smart_home_knactor_app(runtime);
  sim::VirtualClock clock;
  SmartHomePubSubApp ps(clock);

  for (bool motion : {true, false, true, true, false}) {
    kn.trigger_motion(motion);
    kn.settle();
    ps.trigger_motion(motion);
    EXPECT_EQ(kn.lamp_intensity(), ps.lamp_intensity());
  }
}

}  // namespace
}  // namespace knactor::apps
