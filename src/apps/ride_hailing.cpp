#include "apps/ride_hailing.h"

#include <set>

#include "common/logging.h"

namespace knactor::apps {

using common::Result;
using common::Value;
using core::Knactor;
using core::Reconciler;
using de::WatchEvent;

namespace {

/// The composition program. Aliases carry schema ids
/// (specs/ride_hailing_dxg.yaml is the lintable twin of this string; the
/// store binding happens in build_ride_hailing_app). Fan-out: one dispatch
/// decision per `ride/<id>` object; the assignment flows back into the
/// ride. `Watch:` filters keep the integrator asleep for events that
/// cannot change the exchange: rides already assigned and zones without
/// surge pricing.
constexpr const char* kRideHailingDxg = R"(Input:
  R: RideHail/v1/Ride/ride-requests
  Z: RideHail/v1/Zone/ride-zones
  X: RideHail/v1/Dispatch/ride-dispatch
DXG:
  X.*:
    $for: R ride/
    zone: get(R, it).zone
    rider: get(R, it).rider
    surge: 'get(Z, get(R, it).zoneKey).surge'
    quoted: 'get(R, it).fare * get(Z, get(R, it).zoneKey).surge'
  R.*:
    $for: R ride/
    driver: get(X, it).driver
    status: get(X, it).status
Watch:
  R:
    prefix: ride/
    filter: status == "requested"
    qos:
      window: 5
      stage: ride-watch
  Z:
    prefix: zone/
    filter: surge > 1
)";

/// Deterministic FNV-1a over the ride key — the dispatch policy must not
/// depend on std::hash (platform-defined) or iteration order.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Zone pricing: demand on the zone's counter sets a stepped surge factor.
/// Writes only on change, so the reconciler converges instead of looping.
class ZoneReconciler : public Reconciler {
 public:
  void on_object_event(Knactor& kn, const WatchEvent& event) override {
    if (event.type == de::WatchEventType::kDeleted || !event.object.data) {
      return;
    }
    if (event.object.key.rfind("zone/", 0) != 0) return;
    const Value* demand = event.object.data->get("demand");
    if (demand == nullptr || !demand->is_number()) return;
    const auto d = static_cast<std::int64_t>(demand->as_number());
    double want = d >= 40 ? 1.0 + 0.25 * static_cast<double>(d / 40) : 1.0;
    const Value* surge = event.object.data->get("surge");
    if (surge != nullptr && surge->is_number() &&
        surge->as_number() == want) {
      return;
    }
    Value patch = Value::object();
    patch.set("surge", Value(want));
    de::ObjectStore* store = kn.object_store("state");
    store->patch(kn.principal(), event.object.key, std::move(patch),
                 [](Result<std::uint64_t>) {});
  }
};

/// Match policy: every dispatch request with a zone but no driver gets one,
/// chosen deterministically from the fleet by key hash. The decision also
/// stamps the driver's own object (last assignment), so the drivers store
/// sees write traffic too.
class DispatchReconciler : public Reconciler {
 public:
  explicit DispatchReconciler(int fleet) : fleet_(fleet) {}

  void on_object_event(Knactor& kn, const WatchEvent& event) override {
    if (event.type == de::WatchEventType::kDeleted || !event.object.data) {
      return;
    }
    const std::string& key = event.object.key;
    if (key.rfind("ride/", 0) != 0) return;
    const Value& data = *event.object.data;
    const Value* zone = data.get("zone");
    const Value* driver = data.get("driver");
    if (zone == nullptr || zone->is_null()) return;
    if (driver != nullptr && !driver->is_null()) return;
    if (!in_flight_.insert(key).second) return;
    std::string assigned =
        "driver-" + std::to_string(fnv1a(key) %
                                   static_cast<std::uint64_t>(fleet_));
    Value patch = Value::object();
    patch.set("driver", Value(assigned));
    patch.set("status", Value("assigned"));
    de::ObjectStore* store = kn.object_store("state");
    std::string principal = kn.principal();
    store->patch(principal, key, std::move(patch),
                 [this, key](Result<std::uint64_t>) { in_flight_.erase(key); });
    de::ObjectStore* fleet_store = kn.object_store("drivers");
    if (fleet_store != nullptr) {
      Value note = Value::object();
      note.set("lastRide", Value(key));
      fleet_store->patch(principal, "driver/" + assigned, std::move(note),
                         [](Result<std::uint64_t>) {});
    }
  }

 private:
  int fleet_;
  std::set<std::string> in_flight_;
};

}  // namespace

const char* ride_hailing_dxg() { return kRideHailingDxg; }

RideHailingApp build_ride_hailing_app(core::Runtime& runtime,
                                      RideHailingOptions options) {
  RideHailingApp app;
  app.runtime = &runtime;
  app.options = options;

  runtime.set_shards(options.shards);
  runtime.set_workers(options.workers);
  de::ObjectDe& de = runtime.add_object_de("ride", options.de_profile);
  app.de = &de;

  de::ObjectStore& rides = de.create_store("ride-requests");
  de::ObjectStore& zones = de.create_store("ride-zones");
  de::ObjectStore& dispatch = de.create_store("ride-dispatch");
  de::ObjectStore& drivers = de.create_store("ride-drivers");
  app.rides = &rides;
  app.zones = &zones;
  app.dispatch = &dispatch;
  app.drivers = &drivers;

  auto zone_kn = std::make_unique<Knactor>("ride-zones",
                                           std::make_unique<ZoneReconciler>());
  zone_kn->bind_object_store("state", zones);
  runtime.add_knactor(std::move(zone_kn));

  auto dispatch_kn = std::make_unique<Knactor>(
      "ride-dispatch", std::make_unique<DispatchReconciler>(options.drivers));
  dispatch_kn->bind_object_store("state", dispatch);
  dispatch_kn->bind_object_store("drivers", drivers);
  runtime.add_knactor(std::move(dispatch_kn));

  auto dxg = core::Dxg::parse(kRideHailingDxg);
  if (!dxg.ok()) {
    KN_ERROR << "ride-hailing: DXG parse failed: " << dxg.error().to_string();
    return app;
  }
  core::CastIntegrator::Options copts;
  copts.compute = sim::LatencyModel::constant_ms(0.02);
  copts.batch_window = options.batch_window;
  copts.epoch_commit = options.epoch_commit;
  copts.retry = options.integrator_retry;
  auto cast = std::make_unique<core::CastIntegrator>(
      "ride-match", de, dxg.take(),
      std::map<std::string, de::ObjectStore*>{
          {"R", &rides}, {"Z", &zones}, {"X", &dispatch}},
      copts, nullptr, &runtime.tracer());
  app.cast = cast.get();
  runtime.add_integrator(std::move(cast));

  // Every zone object exists before traffic starts (DXG expressions read
  // the zone unconditionally).
  for (int z = 0; z < options.zones; ++z) {
    Value state = Value::object();
    state.set("demand", Value(std::int64_t{0}));
    state.set("surge", Value(1.0));
    zones.put("city", "zone/z" + std::to_string(z), std::move(state),
              [](Result<std::uint64_t>) {});
  }

  auto started = runtime.start_all();
  if (!started.ok()) {
    KN_ERROR << "ride-hailing: start failed: " << started.error().to_string();
  }
  runtime.run_until_idle();
  return app;
}

std::string RideHailingApp::zone_for(std::uint64_t ride_id) const {
  const auto mille = ride_id % 1000;
  if (mille < static_cast<std::uint64_t>(options.hot_per_mille)) {
    return "z" + std::to_string(ride_id % 3);  // the busy zones
  }
  const auto cold = options.zones > 3 ? options.zones - 3 : 1;
  return "z" + std::to_string(3 + ride_id % static_cast<std::uint64_t>(cold));
}

void RideHailingApp::submit_ride(std::uint64_t ride_id) {
  if (rides == nullptr || zones == nullptr) return;
  const std::string zone = zone_for(ride_id);
  const std::string zone_key = "zone/" + zone;

  Value ride = Value::object();
  ride.set("rider", Value("rider-" + std::to_string(ride_id)));
  ride.set("zone", Value(zone));
  ride.set("zoneKey", Value(zone_key));
  ride.set("fare", Value(5.0 + static_cast<double>(ride_id % 20)));
  ride.set("status", Value("requested"));
  rides->put("rider", "ride/" + std::to_string(ride_id), std::move(ride),
             [](Result<std::uint64_t>) {});

  // The hot-key write: every submit bumps its zone's demand counter, and
  // most submits hit the same three zones. peek() reads the committed
  // counter at submit time (concurrent in-flight submits may coalesce a
  // step — the counter tracks demand, it is not an exact admission count).
  std::int64_t demand = 0;
  const de::StateObject* obj = zones->peek(zone_key);
  if (obj != nullptr && obj->data) {
    const Value* d = obj->data->get("demand");
    if (d != nullptr && d->is_number()) {
      demand = static_cast<std::int64_t>(d->as_number());
    }
  }
  Value patch = Value::object();
  patch.set("demand", Value(demand + 1));
  zones->patch("rider", zone_key, std::move(patch),
               [](Result<std::uint64_t>) {});
}

std::size_t RideHailingApp::assigned_count() const {
  if (rides == nullptr) return 0;
  std::size_t n = 0;
  for (const auto& key : rides->keys()) {
    const de::StateObject* obj = rides->peek(key);
    if (obj == nullptr || !obj->data) continue;
    const Value* driver = obj->data->get("driver");
    if (driver != nullptr && driver->is_string()) ++n;
  }
  return n;
}

std::string RideHailingApp::driver_of(std::uint64_t ride_id) const {
  if (rides == nullptr) return "";
  const de::StateObject* obj = rides->peek("ride/" + std::to_string(ride_id));
  if (obj == nullptr || !obj->data) return "";
  const Value* driver = obj->data->get("driver");
  return driver != nullptr && driver->is_string() ? driver->as_string() : "";
}

void RideHailingApp::settle() {
  if (runtime != nullptr) runtime->run_until_idle();
}

}  // namespace knactor::apps
