#include "core/scheduler.h"

namespace knactor::core {

Scheduler::Scheduler(int workers, std::size_t shards)
    : pool_(workers), shards_(shards == 0 ? 1 : shards) {}

void Scheduler::set_workers(int workers) { pool_.set_workers(workers); }

void Scheduler::set_shards(std::size_t shards) {
  shards_ = shards == 0 ? 1 : shards;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  s.shards = shards_;
  s.workers = pool_.workers();
  s.barriers = pool_.stats().barriers;
  s.inline_runs = pool_.stats().inline_runs;
  s.tasks = pool_.stats().tasks;
  s.epochs = pool_.stats().epochs;
  s.epoch_tasks = pool_.stats().epoch_tasks;
  return s;
}

}  // namespace knactor::core
