// Lexer for the DXG expression language — a small Python-like expression
// grammar (Fig. 6 of the paper uses exactly this style):
//
//   currency_convert(S.quote.price, S.quote.currency, this.currency)
//   [item.name for item in C.order.items]
//   "air" if C.order.cost > 1000 else "ground"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace knactor::expr {

enum class TokenType {
  kNumber,      // 1000, 3.14
  kString,      // "air", 'ground'
  kIdent,       // C, order, currency_convert, this, item
  kKeyword,     // if else for in and or not True False None
  kOp,          // + - * / % == != < <= > >= ( ) [ ] { } , . : //
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        // identifier/keyword/operator spelling
  double number = 0;       // for kNumber
  bool is_int = false;     // number had no '.'/'e'
  std::int64_t int_value = 0;
  std::size_t offset = 0;  // for error messages
  int line = 1;            // 1-based position within the expression text,
  int col = 1;             // threaded into AST nodes for located diagnostics

  [[nodiscard]] bool is(TokenType t, std::string_view s) const {
    return type == t && text == s;
  }
  [[nodiscard]] bool is_op(std::string_view s) const {
    return is(TokenType::kOp, s);
  }
  [[nodiscard]] bool is_keyword(std::string_view s) const {
    return is(TokenType::kKeyword, s);
  }
};

/// Tokenizes an expression. Keywords: if, else, for, in, and, or, not,
/// True, False, None (plus lowercase true/false/null aliases).
common::Result<std::vector<Token>> tokenize(std::string_view text);

/// Converts a byte offset within `text` to a 1-based (line, col) pair —
/// the inverse bookkeeping tokenize() performs, exposed for callers that
/// only have an offset (e.g. parse-error messages over folded YAML
/// scalars).
std::pair<int, int> line_col_at(std::string_view text, std::size_t offset);

}  // namespace knactor::expr
