#include "de/query.h"

#include <gtest/gtest.h>

namespace knactor::de {
namespace {

using common::Value;

std::vector<Value> sample_records() {
  std::vector<Value> out;
  struct Row {
    const char* device;
    double kwh;
    int seq;
  };
  for (Row row : {Row{"lamp", 0.05, 1}, Row{"heater", 2.4, 2},
                  Row{"lamp", 0.09, 3}, Row{"fridge", 1.1, 4},
                  Row{"heater", 2.0, 5}}) {
    Value v = Value::object();
    v.set("device", Value(row.device));
    v.set("kwh", Value(row.kwh));
    v.set("seq", Value(row.seq));
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<Value> run(const std::string& text) {
  auto query = parse_query(text);
  EXPECT_TRUE(query.ok()) << text << ": "
                          << (query.ok() ? "" : query.error().to_string());
  if (!query.ok()) return {};
  auto result = run_pipeline(query.value(), sample_records());
  EXPECT_TRUE(result.ok()) << text;
  return result.ok() ? result.take() : std::vector<Value>{};
}

TEST(Query, EmptyIsPassThrough) {
  EXPECT_EQ(run("").size(), 5u);
  EXPECT_EQ(run("   ").size(), 5u);
}

TEST(Query, BareExpressionIsFilter) {
  auto rows = run("kwh > 1");
  ASSERT_EQ(rows.size(), 3u);
}

TEST(Query, WhereKeyword) {
  auto rows = run("where device == \"lamp\"");
  ASSERT_EQ(rows.size(), 2u);
}

TEST(Query, RenameStage) {
  auto rows = run("rename energy=kwh");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].get("kwh"), nullptr);
  EXPECT_NE(rows[0].get("energy"), nullptr);
}

TEST(Query, CutAndProjectAndDrop) {
  auto cut = run("cut device");
  EXPECT_EQ(cut[0].as_object().size(), 1u);
  auto project = run("project device, kwh");
  EXPECT_EQ(project[0].as_object().size(), 2u);
  auto drop = run("drop seq");
  EXPECT_EQ(drop[0].get("seq"), nullptr);
  EXPECT_NE(drop[0].get("kwh"), nullptr);
}

TEST(Query, SortAscDesc) {
  auto asc = run("sort kwh");
  EXPECT_EQ(asc.front().get("device")->as_string(), "lamp");
  auto desc = run("sort kwh desc");
  EXPECT_EQ(desc.front().get("device")->as_string(), "heater");
  auto explicit_asc = run("sort kwh asc");
  EXPECT_EQ(explicit_asc.front().get("device")->as_string(), "lamp");
}

TEST(Query, HeadAndTail) {
  EXPECT_EQ(run("head 2").size(), 2u);
  auto tail = run("tail 2");
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[1].get("seq")->as_int(), 5);
}

TEST(Query, PutComputedField) {
  auto rows = run("put wh := kwh * 1000");
  EXPECT_DOUBLE_EQ(rows[0].get("wh")->as_double(), 50.0);
}

TEST(Query, Summarize) {
  auto rows = run("summarize total=sum(kwh), n=count(kwh) by device");
  ASSERT_EQ(rows.size(), 3u);
  // First-seen order: lamp first.
  EXPECT_EQ(rows[0].get("device")->as_string(), "lamp");
  EXPECT_NEAR(rows[0].get("total")->as_double(), 0.14, 1e-9);
  EXPECT_EQ(rows[0].get("n")->as_int(), 2);
}

TEST(Query, SummarizeWithoutGroupBy) {
  auto rows = run("summarize hi=max(kwh)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].get("hi")->as_double(), 2.4);
}

TEST(Query, FullPipeline) {
  auto rows = run(
      "where kwh > 0.5 | put wh := kwh * 1000 | sort wh desc | head 2 | "
      "cut device, wh");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].get("device")->as_string(), "heater");
  EXPECT_DOUBLE_EQ(rows[0].get("wh")->as_double(), 2400.0);
  EXPECT_EQ(rows[0].as_object().size(), 2u);
}

TEST(Query, PipeInsideStringLiteralNotASeparator) {
  std::vector<Value> records;
  Value v = Value::object();
  v.set("name", Value("a|b"));
  records.push_back(std::move(v));
  auto query = parse_query("where name == \"a|b\"");
  ASSERT_TRUE(query.ok());
  auto result = run_pipeline(query.value(), std::move(records));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

TEST(Query, IdentifierStartingWithKeywordIsExpression) {
  std::vector<Value> records;
  Value v = Value::object();
  v.set("heading", Value(5));
  records.push_back(std::move(v));
  auto query = parse_query("heading > 1");
  ASSERT_TRUE(query.ok());
  auto result = run_pipeline(query.value(), std::move(records));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

TEST(Query, ParseErrors) {
  EXPECT_FALSE(parse_query("where kwh >").ok());
  EXPECT_FALSE(parse_query("rename kwh").ok());
  EXPECT_FALSE(parse_query("head lots").ok());
  EXPECT_FALSE(parse_query("head -3").ok());
  EXPECT_FALSE(parse_query("sort").ok());
  EXPECT_FALSE(parse_query("put x = 1").ok());
  EXPECT_FALSE(parse_query("summarize kwh").ok());
  EXPECT_FALSE(parse_query("kwh > 1 | | head 2").ok());
  EXPECT_FALSE(parse_query("cut").ok());
}

TEST(Query, RoundTripThroughToString) {
  const char* text =
      "where kwh > 0.5 | rename energy=kwh | put e2 := energy * 2 | "
      "sort e2 desc | head 3 | cut device, e2 | "
      "summarize total=sum(e2) by device";
  auto query = parse_query(text);
  ASSERT_TRUE(query.ok());
  std::string rendered = query_to_string(query.value());
  auto reparsed = parse_query(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  // Same results either way.
  auto a = run_pipeline(query.value(), sample_records());
  auto b = run_pipeline(reparsed.value(), sample_records());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_TRUE(a.value()[i] == b.value()[i]);
  }
}

TEST(Query, UsableThroughLogPool) {
  sim::VirtualClock clock;
  LogDe de(clock, LogDeProfile::instant());
  LogPool& pool = de.create_pool("p");
  for (auto& record : sample_records()) {
    (void)pool.append_sync("w", std::move(record));
  }
  auto query = parse_query("where device == \"heater\" | summarize s=sum(kwh)");
  ASSERT_TRUE(query.ok());
  auto rows = pool.query_sync("r", query.value());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_NEAR(rows.value()[0].get("s")->as_double(), 4.4, 1e-9);
}

}  // namespace
}  // namespace knactor::de
