// Fuzz tests for the expression front end: tokenize/parse/evaluate must
// return errors — never crash, hang, or corrupt memory — on arbitrary
// input, and the static type checker must hold to the same bar. Four
// generators: raw random bytes, token soup (valid lexemes in random
// order), mutations of known-good expressions, and random schemas driving
// the type checker. Seeded, so any failure is a one-line repro.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/typecheck.h"
#include "expr/eval.h"
#include "expr/parser.h"
#include "expr/token.h"
#include "sim/random.h"

namespace knactor::expr {
namespace {

using common::Value;

/// Type-checks a parsed expression against a field map mirroring the eval
/// env below, plus a check_against pass for each cardinality class. The
/// checker may emit any diagnostics it likes; it may not crash or hang.
void typecheck_sweep(const Node& root) {
  using analysis::Type;
  using analysis::TypeKind;
  analysis::FieldMapResolver resolver({
      {"C", Type::of(TypeKind::kObject)},
      {"S", Type::of(TypeKind::kObject)},
      {"this", Type::of(TypeKind::kObject)},
      {"cost", Type::of(TypeKind::kNumber)},
      {"item", Type::of(TypeKind::kString)},
      {"items", Type::list_of(Type::of(TypeKind::kString))},
  });
  std::vector<analysis::Diagnostic> out;
  analysis::ExprTypeChecker checker(resolver, {}, "fuzz", out);
  (void)checker.infer(root);
  checker.check_against(root, Type::of(TypeKind::kString), "scalar field");
  checker.check_against(root, Type::list_of(Type::of(TypeKind::kNumber)),
                        "list field");
}

/// Full front-end sweep over one input: tokenize, parse, and (when the
/// parse succeeds) type-check and evaluate against a small env. Every
/// stage may fail; no stage may crash.
void sweep(const std::string& input) {
  (void)tokenize(input);
  auto parsed = parse(input);
  if (!parsed.ok()) return;
  typecheck_sweep(*parsed.value());
  MapEnv env;
  env.bind("C", Value::object({{"cost", 120.0}, {"item", "keyboard"}}));
  env.bind("S", Value::object({{"id", "track-1"}}));
  env.bind("this", Value::object({{"status", "placed"}}));
  (void)evaluate(*parsed.value(), env, FunctionRegistry::builtins());
}

class ExprFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExprFuzz, RandomBytesNeverCrash) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6271);
  for (int i = 0; i < 200; ++i) {
    std::size_t len = rng.next_below(64);
    std::string input;
    for (std::size_t b = 0; b < len; ++b) {
      input.push_back(static_cast<char>(rng.next_below(256)));
    }
    sweep(input);
  }
}

TEST_P(ExprFuzz, TokenSoupNeverCrashes) {
  static const char* kLexemes[] = {
      "C",  "S",     "this", "it",    "1",    "2.5",  "1e3", "'x'", "\"y\"",
      "+",  "-",     "*",    "/",     "%",    "(",    ")",   "[",   "]",
      ",",  ".",     "==",   "!=",    "<",    ">",    "<=",  ">=",  "and",
      "or", "not",   "if",   "else",  "for",  "in",   "len", "get", "keys",
      "{",  "}",     ":",    "null",  "true", "false"};
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 9241);
  for (int i = 0; i < 200; ++i) {
    std::size_t n = 1 + rng.next_below(16);
    std::string input;
    for (std::size_t t = 0; t < n; ++t) {
      input += kLexemes[rng.next_below(
          static_cast<std::uint32_t>(std::size(kLexemes)))];
      input += ' ';
    }
    sweep(input);
  }
}

TEST_P(ExprFuzz, MutatedValidExpressionsNeverCrash) {
  static const char* kValid[] = {
      "C.cost + 10",
      "\"air\" if C.cost > 500 else \"ground\"",
      "len(keys(C))",
      "get(C, it).status",
      "[x * 2 for x in C.items]",
      "C.cost * 0.2 + S.base",
      "this.item != null and C.cost >= 100",
      "currency_convert(C.cost, \"USD\", \"EUR\")",
  };
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 33511);
  for (int i = 0; i < 200; ++i) {
    std::string input = kValid[rng.next_below(
        static_cast<std::uint32_t>(std::size(kValid)))];
    std::size_t mutations = 1 + rng.next_below(4);
    for (std::size_t m = 0; m < mutations && !input.empty(); ++m) {
      std::size_t pos = rng.next_below(
          static_cast<std::uint32_t>(input.size()));
      switch (rng.next_below(3)) {
        case 0:  // flip a byte
          input[pos] = static_cast<char>(rng.next_below(256));
          break;
        case 1:  // delete a byte
          input.erase(pos, 1);
          break;
        default:  // duplicate a chunk
          input.insert(pos, input.substr(pos, 1 + rng.next_below(8)));
          break;
      }
    }
    sweep(input);
  }
}

TEST_P(ExprFuzz, RandomSchemasNeverCrashTypeChecker) {
  using analysis::Type;
  using analysis::TypeKind;
  static const char* kFieldNames[] = {"C", "S", "this", "it",   "cost",
                                      "items", "addr", "x",    "y",
                                      "name",  "qty",  "deep.odd", ""};
  static const TypeKind kKinds[] = {
      TypeKind::kAny,    TypeKind::kNull,   TypeKind::kBool,
      TypeKind::kInt,    TypeKind::kNumber, TypeKind::kString,
      TypeKind::kList,   TypeKind::kObject};
  static const char* kExprs[] = {
      "C.cost + 10",      "x.y.name",          "sum(items)",
      "[n for n in items]", "this.addr if x else y", "qty * cost",
      "get(C, name)",     "len(deep)",          "items[0].name",
      "x in items",       "upper(addr) + str(qty)",
  };
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 52021);
  for (int i = 0; i < 200; ++i) {
    // A random schema: 0–8 fields with arbitrary names and types.
    std::map<std::string, Type> fields;
    std::size_t n = rng.next_below(9);
    for (std::size_t f = 0; f < n; ++f) {
      std::string name = kFieldNames[rng.next_below(
          static_cast<std::uint32_t>(std::size(kFieldNames)))];
      Type t = Type::of(kKinds[rng.next_below(
          static_cast<std::uint32_t>(std::size(kKinds)))]);
      if (t.kind == TypeKind::kList && rng.next_below(2) == 0) {
        t = Type::list_of(Type::of(kKinds[rng.next_below(
            static_cast<std::uint32_t>(std::size(kKinds)))]));
      }
      fields[name] = t;
    }
    std::string input = kExprs[rng.next_below(
        static_cast<std::uint32_t>(std::size(kExprs)))];
    if (rng.next_below(2) == 0 && !input.empty()) {  // light mutation
      input[rng.next_below(static_cast<std::uint32_t>(input.size()))] =
          static_cast<char>(rng.next_below(256));
    }
    auto parsed = parse(input);
    if (!parsed.ok()) continue;
    analysis::FieldMapResolver resolver(std::move(fields));
    std::vector<analysis::Diagnostic> out;
    analysis::ExprTypeChecker checker(resolver, {}, "fuzz", out);
    (void)checker.infer(*parsed.value());
    Type expected = Type::of(kKinds[rng.next_below(
        static_cast<std::uint32_t>(std::size(kKinds)))]);
    checker.check_against(*parsed.value(), expected, "field");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz, ::testing::Range(1, 11));

}  // namespace
}  // namespace knactor::expr
