// Topic-based Pub/Sub broker over SimNetwork — the Kafka/EMQX analog, the
// paper's second API-centric baseline (used by the smart-home app). The
// broker runs on its own node; publishes hop publisher -> broker -> each
// subscriber, paying link latency twice. Messages on a topic are opaque
// bytes (schema agreed out of band by publisher and subscribers — the same
// implicit coupling as RPC, expressed through topics + schemas).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "net/network.h"

namespace knactor::net {

class Broker {
 public:
  using Handler = std::function<void(const std::string& topic,
                                     const common::Value& message)>;

  Broker(SimNetwork& network, std::string node);

  /// Subscribes `subscriber_node` to a topic. The handler runs on delivery
  /// at the subscriber. Wildcard '#' suffix matches a topic prefix
  /// (MQTT-style, e.g. "home/+" is not supported, "home/#" is).
  void subscribe(const std::string& topic, const std::string& subscriber_node,
                 Handler handler);
  void unsubscribe(const std::string& topic,
                   const std::string& subscriber_node);

  /// Publishes from `publisher_node`. Returns the number of subscribers the
  /// broker will fan out to (0 is fine — fire and forget).
  common::Result<std::size_t> publish(const std::string& publisher_node,
                                      const std::string& topic,
                                      common::Value message);

  /// Retains the last message per topic and replays it to new subscribers
  /// (MQTT retained-message semantics), when enabled.
  void set_retain(bool retain) { retain_ = retain; }

  [[nodiscard]] std::uint64_t messages_routed() const { return routed_; }

 private:
  struct Subscription {
    std::string node;
    Handler handler;
  };

  void on_message(const Message& msg);
  [[nodiscard]] std::vector<const Subscription*> match(
      const std::string& topic) const;
  void deliver(const std::string& topic, const common::Value& message,
               const std::string& subscriber_node);

  SimNetwork& network_;
  std::string node_;
  std::map<std::string, std::vector<Subscription>> subs_;  // exact topic
  std::map<std::string, std::vector<Subscription>> prefix_subs_;  // "a/#"
  std::map<std::string, common::Value> retained_;
  bool retain_ = false;
  std::uint64_t routed_ = 0;
};

}  // namespace knactor::net
