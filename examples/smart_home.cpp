// The smart-home app (§2 example 2, Fig. 4): House, Motion, and Lamp
// knactors, each with an Object store (configuration) and a Log pool
// (telemetry), composed by a Cast integrator (brightness -> intensity) and
// a Sync integrator (motion/energy telemetry with field renames).
//
// Simulates a day of occupancy, prints the lamp's reaction and the
// house's energy analytics, and demonstrates the sleep-hours access-
// control policy from §3.3.
#include <cstdio>

#include "apps/device_sim.h"
#include "apps/smart_home.h"
#include "common/json.h"

using namespace knactor;
using common::Value;

int main() {
  {
    core::Runtime runtime;
    apps::SmartHomeKnactorApp app = apps::build_smart_home_knactor_app(runtime);
    std::printf("== occupancy simulation ==\n");
    std::printf("%-10s %-8s %-14s\n", "t (s)", "motion", "lamp intensity");
    bool pattern[] = {true, true, false, false, true, false};
    for (bool motion : pattern) {
      app.trigger_motion(motion);
      app.settle();
      runtime.clock().run_until(runtime.clock().now() + 2 * sim::kSecond);
      std::printf("%-10.0f %-8s %-14d\n", sim::to_ms(runtime.clock().now()) / 1000.0,
                  motion ? "yes" : "no", app.lamp_intensity());
    }

    // One more sync round carries the last energy reading across.
    app.settle();
    de::LogQuery energy;
    energy.push_back(de::LogOp::filter("energy > 0").value());
    energy.push_back(de::LogOp::aggregate({}, {{"total_kwh", {"sum", "energy"}},
                                               {"samples", {"count", "energy"}},
                                               {"peak", {"max", "energy"}}}));
    auto report = app.house_log->query_sync("house", energy);
    if (report.ok() && !report.value().empty()) {
      std::printf("\n== house energy analytics (from the Log DE) ==\n  %s\n",
                  common::to_json(report.value()[0]).c_str());
    }
    de::LogQuery motion_q;
    motion_q.push_back(de::LogOp::filter("motion == true").value());
    auto motions = app.house_log->query_sync("house", motion_q);
    if (motions.ok()) {
      std::printf("  motion events ingested by House: %zu "
                  "(field renamed triggered -> motion by Sync)\n",
                  motions.value().size());
    }
  }

  {
    // A whole simulated day driven by the Digibox-style device simulator:
    // the sensor samples a weekday occupancy pattern; the exchange keeps
    // the lamp tracking it; telemetry flows into the House's log pool.
    std::printf("\n== a simulated weekday (device simulator) ==\n");
    core::Runtime runtime;
    apps::SmartHomeKnactorApp app = apps::build_smart_home_knactor_app(runtime);
    apps::MotionSensorSim::Options options;
    options.period = 10 * 60 * sim::kSecond;  // sample every 10 minutes
    apps::MotionSensorSim sensor(runtime.clock(), *app.motion_store,
                                 app.motion_log,
                                 apps::OccupancyPattern::weekday(), options);
    sensor.start();
    std::printf("%-8s %-10s %-14s\n", "hour", "occupied", "lamp intensity");
    for (int hour : {3, 7, 12, 19, 23}) {
      // Land a few minutes past the hour so the sample taken at the hour
      // boundary has propagated through the exchange.
      runtime.clock().run_until(hour * 3600LL * sim::kSecond +
                                5 * 60 * sim::kSecond);
      // One telemetry sync round. (Not settle()/run_until_idle: the sensor
      // reschedules forever, so the queue never drains.)
      (void)app.sync->run_round_sync();
      std::printf("%02d:00    %-10s %-14d\n", hour,
                  apps::OccupancyPattern::weekday().occupied_at(
                      runtime.clock().now())
                      ? "yes"
                      : "no",
                  app.lamp_intensity());
    }
    sensor.stop();
    std::printf("  sensor samples: %zu, state transitions reported: %zu\n",
                sensor.samples_taken(), sensor.transitions());
    de::LogQuery q;
    q.push_back(de::LogOp::filter("motion == true").value());
    auto rows = app.house_log->query_sync("house", q);
    if (rows.ok()) {
      std::printf("  occupied samples ingested by House's log: %zu\n",
                  rows.value().size());
    }
  }

  {
    std::printf("\n== sleep-hours policy (22:00-06:00): integrator denied ==\n");
    core::Runtime runtime;
    apps::SmartHomeOptions options;
    options.sleep_from = 22LL * 3600 * sim::kSecond;
    options.sleep_to = 6LL * 3600 * sim::kSecond;
    auto app = apps::build_smart_home_knactor_app(runtime, options);

    // It is midnight in the simulation: motion should NOT reach the lamp.
    app.trigger_motion(true);
    app.settle();
    std::printf("  00:00, motion detected -> lamp intensity: %d "
                "(policy held the write back)\n",
                app.lamp_intensity());

    runtime.clock().run_until(8LL * 3600 * sim::kSecond);
    app.trigger_motion(true);
    app.settle();
    std::printf("  08:00, motion detected -> lamp intensity: %d\n",
                app.lamp_intensity());
    std::printf("  RBAC denials recorded by the DE: %llu\n",
                static_cast<unsigned long long>(
                    app.object_de->stats().permission_denials));
  }
  return 0;
}
