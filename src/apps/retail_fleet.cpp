#include "apps/retail_fleet.h"

#include <set>

#include "apps/retail_knactor.h"
#include "common/logging.h"

namespace knactor::apps {

using common::Error;
using common::Result;
using common::Value;
using core::Knactor;
using core::Reconciler;
using de::WatchEvent;

namespace {

constexpr const char* kFleetDxg = R"(Input:
  C: OnlineRetail/v1/Checkout/fleet-checkout
  S: OnlineRetail/v1/Shipping/fleet-shipping
  P: OnlineRetail/v1/Payment/fleet-payment
DXG:
  S.*:
    $for: C order/
    items: '[item.name for item in get(C, it).items]'
    addr: get(C, it).address
    method: '"air" if get(C, it).cost > 1000 else "ground"'
  P.*:
    $for: C order/
    amount: get(C, it).totalCost
    currency: get(C, it).currency
  C.*:
    $for: C order/
    shippingCost: >
      currency_convert(get(S, it).quote.price,
      get(S, it).quote.currency, get(C, it).currency)
    paymentID: get(P, it).id
    trackingID: get(S, it).id
)";

bool has_field(const WatchEvent& event, const char* name) {
  if (!event.object.data) return false;
  const Value* v = event.object.data->get(name);
  return v != nullptr && !v->is_null();
}

bool is_order_event(const WatchEvent& event) {
  return event.type != de::WatchEventType::kDeleted && event.object.data &&
         event.object.key.rfind("order/", 0) == 0;
}

/// Checkout fleet: per-order totalCost + status machine.
class CheckoutFleetReconciler : public Reconciler {
 public:
  void on_object_event(Knactor& kn, const WatchEvent& event) override {
    if (!is_order_event(event)) return;
    const Value& data = *event.object.data;
    Value patches = Value::object();
    const Value* cost = data.get("cost");
    const Value* shipping_cost = data.get("shippingCost");
    const Value* total = data.get("totalCost");
    if (cost != nullptr && cost->is_number()) {
      double want = cost->as_number() +
                    (shipping_cost != nullptr && shipping_cost->is_number()
                         ? shipping_cost->as_number()
                         : 0.0);
      if (total == nullptr || !total->is_number() ||
          total->as_number() != want) {
        patches.set("totalCost", Value(want));
      }
    }
    const Value* status = data.get("status");
    std::string current =
        status != nullptr && status->is_string() ? status->as_string() : "";
    std::string want_status = current.empty() ? "pending" : current;
    if (has_field(event, "paymentID")) want_status = "paid";
    if (has_field(event, "trackingID")) want_status = "shipped";
    if (want_status != current) {
      patches.set("status", Value(want_status));
    }
    if (!patches.as_object().empty()) {
      de::ObjectStore* store = kn.object_store("state");
      store->patch(kn.principal(), event.object.key, std::move(patches),
                   [](Result<std::uint64_t>) {});
    }
  }
};

/// Payment fleet: charges every order object independently.
class PaymentFleetReconciler : public Reconciler {
 public:
  PaymentFleetReconciler(sim::VirtualClock& clock, sim::LatencyModel model)
      : clock_(clock), model_(model) {}

  void on_object_event(Knactor& kn, const WatchEvent& event) override {
    if (!is_order_event(event)) return;
    if (!has_field(event, "amount") || !has_field(event, "currency")) return;
    if (has_field(event, "id")) return;
    if (!in_flight_.insert(event.object.key).second) return;
    std::string key = event.object.key;
    de::ObjectStore* store = kn.object_store("state");
    std::string principal = kn.principal();
    clock_.schedule_after(model_.sample(rng_), [this, store, principal, key]() {
      Value patch = Value::object();
      patch.set("id", Value("pay-" + std::to_string(++seq_)));
      store->patch(principal, key, std::move(patch),
                   [](Result<std::uint64_t>) {});
      in_flight_.erase(key);
    });
  }

 private:
  sim::VirtualClock& clock_;
  sim::LatencyModel model_;
  sim::Rng rng_{61};
  std::set<std::string> in_flight_;
  int seq_ = 0;
};

/// Shipping fleet: quotes immediately; ships (the long external call) each
/// order independently — many shipments can be in flight at once.
class ShippingFleetReconciler : public Reconciler {
 public:
  ShippingFleetReconciler(sim::VirtualClock& clock, sim::LatencyModel model)
      : clock_(clock), model_(model) {}

  void on_object_event(Knactor& kn, const WatchEvent& event) override {
    if (!is_order_event(event)) return;
    const std::string& key = event.object.key;
    de::ObjectStore* store = kn.object_store("state");
    std::string principal = kn.principal();

    if (has_field(event, "items") && has_field(event, "addr") &&
        !has_field(event, "quote")) {
      const Value* items = event.object.data->get("items");
      double price =
          5.0 + 10.0 * static_cast<double>(
                           items->is_array() ? items->as_array().size() : 1);
      Value quote = Value::object();
      quote.set("price", Value(price));
      quote.set("currency", Value("USD"));
      Value patch = Value::object();
      patch.set("quote", std::move(quote));
      store->patch(principal, key, std::move(patch),
                   [](Result<std::uint64_t>) {});
      return;
    }
    if (has_field(event, "items") && has_field(event, "addr") &&
        has_field(event, "method") && !has_field(event, "id")) {
      if (!in_flight_.insert(key).second) return;
      clock_.schedule_after(
          model_.sample(rng_), [this, store, principal, key]() {
            Value patch = Value::object();
            patch.set("id", Value("track-" + std::to_string(++seq_)));
            store->patch(principal, key, std::move(patch),
                         [](Result<std::uint64_t>) {});
            in_flight_.erase(key);
          });
    }
  }

 private:
  sim::VirtualClock& clock_;
  sim::LatencyModel model_;
  sim::Rng rng_{62};
  std::set<std::string> in_flight_;
  int seq_ = 0;
};

}  // namespace

RetailFleetApp build_retail_fleet_app(core::Runtime& runtime,
                                      RetailFleetOptions options) {
  RetailFleetApp app;
  app.runtime = &runtime;
  runtime.set_shards(options.shards);
  runtime.set_workers(options.workers);
  de::ObjectDe& de = runtime.add_object_de("fleet", options.de_profile);
  app.de = &de;

  de::ObjectStore& checkout = de.create_store("fleet-checkout");
  de::ObjectStore& shipping = de.create_store("fleet-shipping");
  de::ObjectStore& payment = de.create_store("fleet-payment");
  app.checkout_store = &checkout;
  app.shipping_store = &shipping;
  app.payment_store = &payment;

  auto checkout_kn = std::make_unique<Knactor>(
      "fleet-checkout", std::make_unique<CheckoutFleetReconciler>());
  checkout_kn->bind_object_store("state", checkout);
  runtime.add_knactor(std::move(checkout_kn));

  auto payment_kn = std::make_unique<Knactor>(
      "fleet-payment", std::make_unique<PaymentFleetReconciler>(
                           runtime.clock(), options.payment_processing));
  payment_kn->bind_object_store("state", payment);
  runtime.add_knactor(std::move(payment_kn));

  auto shipping_kn = std::make_unique<Knactor>(
      "fleet-shipping", std::make_unique<ShippingFleetReconciler>(
                            runtime.clock(), options.shipment_processing));
  shipping_kn->bind_object_store("state", shipping);
  runtime.add_knactor(std::move(shipping_kn));

  auto dxg = core::Dxg::parse(kFleetDxg);
  if (!dxg.ok()) {
    KN_ERROR << "fleet: DXG parse failed: " << dxg.error().to_string();
    return app;
  }
  auto integrator = std::make_unique<core::CastIntegrator>(
      "fleet", de, dxg.take(),
      std::map<std::string, de::ObjectStore*>{
          {"C", &checkout}, {"S", &shipping}, {"P", &payment}});
  app.integrator = integrator.get();
  runtime.add_integrator(std::move(integrator));

  auto started = runtime.start_all();
  if (!started.ok()) {
    KN_ERROR << "fleet: start failed: " << started.error().to_string();
  }
  runtime.run_until_idle();
  return app;
}

Result<std::vector<Value>> RetailFleetApp::place_orders_sync(int count) {
  if (checkout_store == nullptr) {
    return Error::failed_precondition("fleet app not built");
  }
  for (int i = 1; i <= count; ++i) {
    Value order = i % 2 == 0 ? expensive_order() : sample_order();
    checkout_store->put("customer", "order/" + std::to_string(i),
                        std::move(order), [](Result<std::uint64_t>) {});
  }
  auto all_shipped = [this, count]() {
    return shipped_count() == static_cast<std::size_t>(count);
  };
  while (!all_shipped() && runtime->clock().step()) {
  }
  runtime->run_until_idle();
  if (!all_shipped()) {
    return Error::internal("fleet: orders did not all complete (queue "
                           "drained at " +
                           std::to_string(shipped_count()) + "/" +
                           std::to_string(count) + ")");
  }
  std::vector<Value> out;
  for (int i = 1; i <= count; ++i) {
    const de::StateObject* obj =
        checkout_store->peek("order/" + std::to_string(i));
    if (obj != nullptr && obj->data) out.push_back(*obj->data);
  }
  return out;
}

std::size_t RetailFleetApp::shipped_count() const {
  if (checkout_store == nullptr) return 0;
  std::size_t shipped = 0;
  for (const auto& key : checkout_store->keys()) {
    const de::StateObject* obj = checkout_store->peek(key);
    if (obj == nullptr || !obj->data) continue;
    const Value* status = obj->data->get("status");
    if (status != nullptr && status->is_string() &&
        status->as_string() == "shipped") {
      ++shipped;
    }
  }
  return shipped;
}

}  // namespace knactor::apps
