// Trace exporters (§5 observability): turn a Tracer's span snapshot into
// artifacts a human or an external tool can consume —
//
//   * export_chrome_trace: Chrome trace-event JSON (load in
//     chrome://tracing or Perfetto; complete "X" events, ts/dur in µs);
//   * export_text_summary: flamegraph-style aggregation by span name,
//     per-stage totals over the paper's C-I / I / I-S attribution, and
//     the critical path through the deepest trace;
//   * explain: the derivation chain of one record (lineage DAG from the
//     provenance ring) annotated with the producing pass's per-stage
//     span latencies — what `knctl explain <store>/<key>` prints.
//
// All output is deterministic given the same spans/ring (no wall-clock,
// no pointers), which is what lets the lineage differential test require
// byte-identical traces across shard/worker configurations.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/causality.h"
#include "core/trace.h"

namespace knactor::core {

/// Aggregate of finished spans carrying the same "stage" attribute.
struct StageStat {
  std::uint64_t count = 0;
  sim::SimTime total = 0;  // summed span durations, µs

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(total) / count;
  }
};

/// Groups finished spans by their "stage" attribute (C-I / I / I-S / S).
/// Spans with no stage attribute are aggregated under "-".
std::map<std::string, StageStat> stage_breakdown(
    const std::vector<Span>& spans);

/// Chrome trace-event JSON for the given spans (finished spans become
/// complete "X" events; still-open spans become begin "B" events). Spans
/// are emitted in id order; attributes ride in "args".
std::string export_chrome_trace(const std::vector<Span>& spans);

/// Human-readable summary: span-name flame table (count, total, mean),
/// per-stage breakdown, and the critical path (the chain of nested spans
/// with the largest summed duration, starting from a root span).
std::string export_text_summary(const std::vector<Span>& spans);

/// Renders the derivation chain of (store, key): the lineage DAG from
/// `ring`, then for each producing hop the per-stage latencies of its
/// pass span (the span's children grouped by their "stage" attribute).
/// Returns a "no lineage recorded" message when the ring has no entry.
std::string explain(const ProvenanceRing& ring, const std::vector<Span>& spans,
                    const std::string& store, const std::string& key);

}  // namespace knactor::core
