// Fuzz tests for the YAML-subset loader: parse/parse_document/dump must
// return errors — never crash or hang — on arbitrary input. Same three
// generators as the expr fuzzer: random bytes, structural soup, and
// mutations of known-good documents. Seeded for one-line repros.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/random.h"
#include "yaml/yaml.h"

namespace knactor::yaml {
namespace {

/// parse + parse_document over one input; on success, dump the result and
/// re-parse the dump (the dumper must emit loadable YAML for anything the
/// loader accepted).
void sweep(const std::string& input) {
  (void)parse_document(input);
  auto parsed = parse(input);
  if (!parsed.ok()) return;
  std::string dumped = dump(parsed.value());
  (void)parse(dumped);
}

class YamlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(YamlFuzz, RandomBytesNeverCrash) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7873);
  for (int i = 0; i < 200; ++i) {
    std::size_t len = rng.next_below(128);
    std::string input;
    for (std::size_t b = 0; b < len; ++b) {
      input.push_back(static_cast<char>(rng.next_below(256)));
    }
    sweep(input);
  }
}

TEST_P(YamlFuzz, StructuralSoupNeverCrashes) {
  static const char* kPieces[] = {
      "key:",     " value",  "\n",      "  ",  "- ",    "- item",
      "n: 1",     "f: 2.5",  "b: true", "~",   "null",  "'quoted'",
      "\"dq\"",   "#cmt",    ":",       "{",   "}",     "[",
      "]",        ",",       "a: {x: 1, y: 2}", "l: [1, 2]",
      "deep:\n  deeper:\n    deepest: 1",      "|",     ">",
      "&anchor",  "*ref",    "---",     "...", "\t"};
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 50021);
  for (int i = 0; i < 200; ++i) {
    std::size_t n = 1 + rng.next_below(12);
    std::string input;
    for (std::size_t p = 0; p < n; ++p) {
      input += kPieces[rng.next_below(
          static_cast<std::uint32_t>(std::size(kPieces)))];
    }
    sweep(input);
  }
}

TEST_P(YamlFuzz, MutatedValidDocumentsNeverCrash) {
  static const char* kValid[] = {
      "name: checkout\nreplicas: 3\nlabels:\n  app: retail\n",
      "order:\n  items:\n    - keyboard\n    - mouse\n  cost: 120.5\n",
      "schema: OnlineRetail/v1/Checkout/Order\nfields:\n  id: string\n",
      "a: {x: 1, y: [2, 3]}\nb: 'quoted string'\nc: null\n",
      "routes:\n  - name: r1\n    source: src\n  - name: r2\n    source: s2\n",
  };
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 99991);
  for (int i = 0; i < 200; ++i) {
    std::string input = kValid[rng.next_below(
        static_cast<std::uint32_t>(std::size(kValid)))];
    std::size_t mutations = 1 + rng.next_below(5);
    for (std::size_t m = 0; m < mutations && !input.empty(); ++m) {
      std::size_t pos = rng.next_below(
          static_cast<std::uint32_t>(input.size()));
      switch (rng.next_below(4)) {
        case 0:
          input[pos] = static_cast<char>(rng.next_below(256));
          break;
        case 1:
          input.erase(pos, 1 + rng.next_below(4));
          break;
        case 2:  // indentation damage — the classic YAML breaker
          input.insert(pos, std::string(1 + rng.next_below(6), ' '));
          break;
        default:
          input.insert(pos, input.substr(pos, 1 + rng.next_below(12)));
          break;
      }
    }
    sweep(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YamlFuzz, ::testing::Range(1, 11));

}  // namespace
}  // namespace knactor::yaml
