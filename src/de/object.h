// Object Data Exchange: hosts named data stores of versioned state objects
// (attribute-value documents) and exposes CRUD + list + watch, optional
// server-side functions (UDFs) with write triggers, RBAC enforcement, and
// durability simulation (write-ahead log + recovery) for the apiserver
// profile.
//
// One ObjectDe instance models one deployed exchange (the paper's
// K-apiserver or K-redis). Stores are namespaces within it; a UDF executes
// inside the DE and touches stores at engine latency — that collapse of
// client round-trips into engine-local operations *is* the paper's
// integrator push-down optimization (§3.3, Table 2 K-redis-udf row).
//
// ObjectDe is a typed facade over de::Kernel (commit sequencing, RBAC
// enforcement + audit, availability, GC hooks, shard execution). The key
// space of every store is hash-partitioned into N shards (set_shards);
// shard-local work — batched-watch flush preparation, list scans — runs on
// the runtime's worker pool between deterministic commit-seq merge
// barriers, so an N-shard/N-worker run is observably identical to the
// 1-shard serial run (see docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "common/value.h"
#include "core/trace.h"
#include "de/kernel.h"
#include "de/profile.h"
#include "de/rbac.h"
#include "de/subscription.h"
#include "sim/clock.h"
#include "sim/random.h"

namespace knactor::de::persist {
class Engine;
}  // namespace knactor::de::persist

namespace knactor::de {

/// A versioned state object. `version` is the store's resource version at
/// last write (optimistic-concurrency token, like Kubernetes
/// resourceVersion).
struct StateObject {
  std::string key;
  common::SharedValue data;  // immutable snapshot, shareable zero-copy
  std::uint64_t version = 0;
  sim::SimTime created_at = 0;
  sim::SimTime updated_at = 0;

  /// Deep copy of the payload (the non-zero-copy path).
  [[nodiscard]] common::Value data_copy() const {
    return data ? *data : common::Value(nullptr);
  }
};

enum class WatchEventType { kAdded, kModified, kDeleted };

struct WatchEvent {
  WatchEventType type = WatchEventType::kAdded;
  std::string store;
  StateObject object;
  /// Causal context of the commit that fired this event: trace id (the
  /// commit's own seq if the write was a trace root), the span that
  /// caused the write, and the DE-wide commit seq. Integrators propagate
  /// it into the spans and derived writes of the passes they trigger.
  core::TraceContext ctx;
};

/// A coalesced window of watch events (see ObjectStore::watch_batch).
/// Events are in commit order; successive updates to the same key within
/// the window are coalesced into the key's latest event. Payloads are
/// shared snapshots (StateObject::data), so a batch moves zero-copy.
struct WatchBatch {
  std::string store;
  std::vector<WatchEvent> events;
  /// Commits folded into this batch (>= events.size(); the difference is
  /// how many per-key updates the window coalesced away).
  std::uint64_t commits = 0;
};

struct ObjectDeStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t deletes = 0;
  std::uint64_t lists = 0;
  std::uint64_t watch_events = 0;
  std::uint64_t udf_calls = 0;
  std::uint64_t engine_ops = 0;       // ops executed inside UDFs
  std::uint64_t permission_denials = 0;
  std::uint64_t version_conflicts = 0;
  std::uint64_t unavailable_rejections = 0;  // ops failed while crashed
  std::uint64_t watch_batches = 0;           // coalesced deliveries
  std::uint64_t watch_events_coalesced = 0;  // commits folded into a slot
  /// Commits a subscription's content filter rejected pre-enqueue (the
  /// record never cost a queue slot or a delivery).
  std::uint64_t watch_events_filtered = 0;
  /// Buffered events discarded deterministically: QoS history-depth
  /// evictions at flush plus pending slots dropped by unsubscribe.
  std::uint64_t watch_events_dropped = 0;
  /// Events per delivered WatchBatch (batching effectiveness on the hot
  /// path; export via SizeHistogram::export_counters).
  common::SizeHistogram watch_batch_sizes;
};

class ObjectDe;

/// One operation inside an epoch commit (ObjectStore::put_epoch): an
/// upsert (merge=false), a patch (merge=true), or a delete (remove=true;
/// `data` ignored). `expected_version` adds the optimistic-concurrency
/// check of put_versioned.
struct EpochWrite {
  std::string key;
  common::Value data;
  bool merge = false;
  bool remove = false;
  std::optional<std::uint64_t> expected_version;
};

/// A named data store (namespace) on an Object DE. All operations are
/// asynchronous — completion callbacks fire after the profile's latency on
/// the DE's clock — with `_sync` convenience wrappers that drive the clock.
class ObjectStore {
 public:
  using GetCallback = std::function<void(common::Result<StateObject>)>;
  using PutCallback = std::function<void(common::Result<std::uint64_t>)>;
  using DelCallback = std::function<void(common::Status)>;
  using ListCallback =
      std::function<void(common::Result<std::vector<StateObject>>)>;
  using WatchCallback = std::function<void(const WatchEvent&)>;
  using WatchBatchCallback = std::function<void(const WatchBatch&)>;
  /// One Result per EpochWrite, in submission order. A delete completes
  /// with value 0; everything else with the committed version.
  using EpochCallback =
      std::function<void(std::vector<common::Result<std::uint64_t>>)>;

  [[nodiscard]] const std::string& name() const { return name_; }

  void get(const std::string& principal, const std::string& key,
           GetCallback done);
  /// Zero-copy read: the callback receives a shared handle to the stored
  /// value instead of a deep copy (§3.3 zero-copy data exchange).
  void get_shared(const std::string& principal, const std::string& key,
                  std::function<void(common::Result<common::SharedValue>)> done);
  /// Upsert. Returns the new version.
  void put(const std::string& principal, const std::string& key,
           common::Value data, PutCallback done);
  /// Compare-and-swap on version; fails with FailedPrecondition on skew.
  void put_versioned(const std::string& principal, const std::string& key,
                     common::Value data, std::uint64_t expected_version,
                     PutCallback done);
  /// Merges top-level fields into the existing object (creates it if
  /// absent). Integrators use this to fill `external` fields without
  /// clobbering service-owned state.
  void patch(const std::string& principal, const std::string& key,
             common::Value fields, PutCallback done);
  void remove(const std::string& principal, const std::string& key,
              DelCallback done);
  void list(const std::string& principal, const std::string& prefix,
            ListCallback done);

  /// Epoch commit: applies a whole batch of independent writes in one
  /// client round trip through the parallel commit pipeline. The batch is
  /// partitioned by key shard, stamps (version + commit seq) are
  /// pre-assigned serially so every op's identity is a pure function of
  /// its position in the epoch, shards commit concurrently on the bound
  /// worker pool, and a serial epoch merge replays audit entries, lineage,
  /// WAL appends, and watch/trigger notifications in exact submission
  /// order. Observable behavior is byte-identical for every shard/worker
  /// configuration, and — on failure-free epochs — identical to issuing
  /// the same ops through put/patch/remove one by one (failed ops leave
  /// holes in the version/commit-seq domains that the per-op path would
  /// not). See docs/ARCHITECTURE.md "Epoch commit pipeline".
  void put_epoch(const std::string& principal, std::vector<EpochWrite> writes,
                 EpochCallback done);
  std::vector<common::Result<std::uint64_t>> put_epoch_sync(
      const std::string& principal, std::vector<EpochWrite> writes);

  /// Registers a subscription: prefix + optional content filter +
  /// projection (compiled once through the fused query planner) + QoS,
  /// delivering one event per matching commit. This is the unified watch
  /// surface — `watch` and `watch_batch` are thin wrappers over it — and
  /// every subscription is registered with the kernel's subscription
  /// registry (id, contract, match/filter/delivery accounting). Fails on
  /// permission denial or an unparsable filter. The filter runs *before*
  /// enqueue — per shard inside the epoch pipeline's parallel phase — so a
  /// rejected commit never costs a queue slot; the projection rewrites the
  /// delivered payload (RBAC field filtering still applies afterwards).
  common::Result<std::uint64_t> subscribe(const std::string& principal,
                                          SubscriptionSpec spec,
                                          WatchCallback callback);
  /// Batched subscription: events coalesce for qos.window (virtual time)
  /// after the first matching commit and arrive as one WatchBatch. QoS
  /// history_depth caps each delivered batch to the newest N slots
  /// (deterministic drops, counted in watch_events_dropped).
  common::Result<std::uint64_t> subscribe_batch(const std::string& principal,
                                                SubscriptionSpec spec,
                                                WatchBatchCallback callback);
  /// Removes a subscription. A pending coalescing buffer is resolved
  /// deterministically: drain=true delivers it to the callback immediately
  /// (one final batch, same order a flush would have produced), drain=false
  /// drops it and counts the slots in watch_events_dropped. Either way no
  /// dangling coalesce slot survives the unsubscribe.
  void unsubscribe(std::uint64_t watch_id, bool drain);

  /// Registers a watch on a key prefix (an unfiltered subscription).
  /// Events are delivered after the profile's watch-notify latency.
  /// Returns a watch id (0 on permission denial). RBAC field filtering
  /// applies to delivered objects.
  std::uint64_t watch(const std::string& principal, const std::string& prefix,
                      WatchCallback callback);
  /// Coalesced watch: instead of one delivery per commit, events buffer
  /// for `window` (virtual time) after the first commit and arrive as a
  /// single WatchBatch. Within a window, successive updates to the same
  /// key coalesce into that key's slot (modify-after-add stays added;
  /// delete always survives), and the flush emits slots ordered by each
  /// key's *latest* commit — a delete that followed a modify is never
  /// reordered before it or dropped. window == 0 degenerates to one
  /// single-event batch per commit.
  std::uint64_t watch_batch(const std::string& principal,
                            const std::string& prefix, sim::SimTime window,
                            WatchBatchCallback callback);
  /// Equivalent to unsubscribe(watch_id, /*drain=*/false).
  void unwatch(std::uint64_t watch_id);

  // Synchronous wrappers (drive the clock until the callback fires).
  common::Result<StateObject> get_sync(const std::string& principal,
                                       const std::string& key);
  common::Result<std::uint64_t> put_sync(const std::string& principal,
                                         const std::string& key,
                                         common::Value data);
  common::Result<std::uint64_t> patch_sync(const std::string& principal,
                                           const std::string& key,
                                           common::Value fields);
  common::Status remove_sync(const std::string& principal,
                             const std::string& key);
  common::Result<std::vector<StateObject>> list_sync(
      const std::string& principal, const std::string& prefix);

  /// Optimistic read-modify-write: reads the object (a missing object
  /// presents as null), applies `mutate`, and writes back guarded by the
  /// read version; retries on conflict up to `max_attempts`. This is the
  /// safe pattern for concurrent writers sharing a store.
  common::Result<std::uint64_t> update_sync(
      const std::string& principal, const std::string& key,
      const std::function<common::Value(const common::Value&)>& mutate,
      int max_attempts = 8);

  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  /// Latency-free, ACL-free inspection for tooling, tests, and benches —
  /// not part of the data path.
  [[nodiscard]] const StateObject* peek(const std::string& key) const {
    return objects_.find(key);
  }
  /// The exchange this store lives on (e.g. to reach its kernel's trace
  /// context and provenance ring).
  [[nodiscard]] ObjectDe& exchange() { return de_; }
  /// All keys, sorted (identical across shard configurations).
  [[nodiscard]] std::vector<std::string> keys() const {
    return objects_.sorted_keys();
  }

 private:
  friend class ObjectDe;
  friend class UdfContext;

  ObjectStore(ObjectDe& de, std::string name, std::size_t shards)
      : de_(de), name_(std::move(name)), objects_(shards) {}

  ObjectDe& de_;
  std::string name_;
  ShardedMap<StateObject> objects_;
};

/// Engine-level view handed to UDFs: operations run inside the DE at
/// engine latency (no client round trips) and bypass the network but NOT
/// access control — the UDF runs as the principal that registered it.
class UdfContext {
 public:
  common::Result<StateObject> get(const std::string& store,
                                  const std::string& key);
  common::Result<std::uint64_t> put(const std::string& store,
                                    const std::string& key,
                                    common::Value data);
  common::Result<std::uint64_t> patch(const std::string& store,
                                      const std::string& key,
                                      common::Value fields);
  common::Result<std::vector<StateObject>> list(const std::string& store,
                                                const std::string& prefix);
  [[nodiscard]] sim::SimTime now() const;
  /// Charges additional engine compute time (e.g. the UDF body's own
  /// processing cost).
  void charge(sim::SimTime duration);

 private:
  friend class ObjectDe;
  UdfContext(ObjectDe& de, std::string principal)
      : de_(de), principal_(std::move(principal)) {}
  ObjectDe& de_;
  std::string principal_;
};

/// One deployed Object data exchange.
class ObjectDe {
 public:
  using Udf =
      std::function<common::Result<common::Value>(UdfContext&, const common::Value&)>;
  using UdfCallback = std::function<void(common::Result<common::Value>)>;
  using AuditEntry = de::AuditEntry;

  ObjectDe(sim::VirtualClock& clock, ObjectDeProfile profile,
           std::uint64_t seed = 7);

  ObjectDe(const ObjectDe&) = delete;
  ObjectDe& operator=(const ObjectDe&) = delete;

  /// Creates (or returns the existing) named store.
  ObjectStore& create_store(const std::string& name);
  [[nodiscard]] ObjectStore* store(const std::string& name);

  /// Hash-partitions every store's key space into `n` shards. Shard-local
  /// work (batched-watch flush preparation, list scans) then runs on the
  /// bound worker pool between commit-seq merge barriers. Observable
  /// behavior is identical for every n (the determinism contract).
  void set_shards(std::size_t n);
  [[nodiscard]] std::size_t shards() const { return shards_; }
  /// Binds the runtime's worker pool (nullptr = inline serial execution).
  void set_worker_pool(common::WorkerPool* pool) {
    kernel_.set_worker_pool(pool);
  }

  /// The shared DE substrate this facade runs on.
  [[nodiscard]] Kernel& kernel() { return kernel_; }

  /// Registers a server-side function owned by `principal`. Rejected when
  /// the profile does not support UDFs (e.g. apiserver).
  common::Status register_udf(const std::string& principal,
                              const std::string& name, Udf udf);
  /// Invokes a UDF from a client (one udf_invoke round trip; internal ops
  /// at engine latency).
  void call_udf(const std::string& principal, const std::string& name,
                common::Value args, UdfCallback done);
  common::Result<common::Value> call_udf_sync(const std::string& principal,
                                              const std::string& name,
                                              common::Value args);

  /// Installs a write trigger: after a commit to store/prefix, the UDF is
  /// invoked server-side with {store, key, event} args (Redis keyspace-
  /// notification + function analog; Cast push-down compiles to this).
  common::Status add_trigger(const std::string& store,
                             const std::string& key_prefix,
                             const std::string& udf_name);
  void remove_trigger(const std::string& store, const std::string& udf_name);

  /// One write in a transaction.
  struct TxnOp {
    std::string store;
    std::string key;
    common::Value data;
    bool merge = true;  // patch semantics; false = replace
    /// Optional optimistic-concurrency check.
    std::optional<std::uint64_t> expected_version;
  };

  /// Atomically applies writes across stores of this DE (§5 "run-time
  /// primitives such as transactions"): one client round trip,
  /// all-or-nothing with respect to access control, field rules, and
  /// version checks. Watch events and triggers fire only after the whole
  /// transaction commits (so observers never see partial exchanges).
  /// The callback receives the version of the last write.
  void transact(const std::string& principal, std::vector<TxnOp> ops,
                UdfCallback done);
  common::Result<common::Value> transact_sync(const std::string& principal,
                                              std::vector<TxnOp> ops);

  /// Durability simulation: a durable DE (apiserver profile) replays its
  /// write-ahead log on restart(); a non-durable one (redis) loses all
  /// state. Watches and UDFs survive (they are client/config state).
  /// With a persistence engine attached (enable_persistence) the in-memory
  /// WAL is replaced by the on-disk journal: restart recovers from the
  /// newest valid snapshot plus the journal suffix.
  void restart();

  /// Attaches a file-backed persistence engine (owned by the caller, must
  /// outlive the DE): every commit batch is journaled before its
  /// notifications fire, restart() recovers from disk, and the engine's
  /// generation GC joins the kernel's GC hooks (so RetentionManager-driven
  /// `run_gc()` reclaims old snapshot/journal generations too). Any state
  /// already on disk is recovered immediately — attach before serving
  /// traffic. See docs/PERSISTENCE.md.
  common::Status enable_persistence(persist::Engine* engine);
  /// Snapshots the full store state at the current commit-seq boundary and
  /// rotates the journal. Automatic snapshots honor the engine's
  /// `snapshot_every` cadence; this forces one now. A failed snapshot
  /// crashes the DE (already-acked commits stay acked — they are in the
  /// journal) but never corrupts the previous generation.
  common::Status snapshot_now();
  [[nodiscard]] persist::Engine* persistence() { return persist_; }

  /// Availability simulation for chaos testing. While unavailable, every
  /// client operation fails with Unavailable at its scheduled execution
  /// time (in-flight operations fail too, like a real process dying).
  /// `crash()` marks the DE down; `recover()` restarts it (WAL replay for
  /// durable profiles, wipe for non-durable) and marks it up again.
  void set_available(bool available) { kernel_.set_available(available); }
  [[nodiscard]] bool available() const { return kernel_.available(); }
  void crash() { kernel_.crash(); }
  void recover() { kernel_.recover(); }

  /// Chaos hook for the epoch pipeline: invoked after every epoch's
  /// parallel phase, before the serial merge. Returning true simulates the
  /// process dying mid-epoch — the whole epoch rolls back (state restored,
  /// no WAL entries, no notifications, every op fails Unavailable) and the
  /// DE is marked crashed, so recovery replays a WAL that never saw a
  /// half-merged epoch.
  void set_epoch_fault_hook(std::function<bool()> hook) {
    epoch_fault_hook_ = std::move(hook);
  }

  /// Optional epoch-pipeline observability. When set, each Phase-B shard
  /// worker emits one "de.epoch.op" span per op (stage "S") into a
  /// worker-local Tracer::SpanBuffer and bumps worker-local Metrics::Delta
  /// counters ("de.epoch.committed" / "de.epoch.failed") — zero shared
  /// state on the parallel path. The serial merge folds the buffers in
  /// shard-index order at the epoch boundary, so span *counts* and stage
  /// attribution are identical for every shard/worker configuration (span
  /// order groups by shard; see docs/OBSERVABILITY.md). A mid-epoch crash
  /// drops the buffers: no span or counter from a rolled-back epoch leaks.
  void set_observability(core::Tracer* tracer, core::Metrics* metrics) {
    tracer_ = tracer;
    epoch_metrics_ = metrics;
  }

  /// RBAC policy engine for this DE (disabled by default).
  [[nodiscard]] Rbac& rbac() { return kernel_.rbac(); }

  /// Access auditing: when enabled, every access decision (allowed or
  /// denied) is recorded in a bounded ring — the security-observability
  /// counterpart of §3.3's access control. Off by default.
  void enable_audit(std::size_t capacity = 1024) {
    kernel_.enable_audit(capacity);
  }
  void disable_audit() { kernel_.disable_audit(); }
  [[nodiscard]] const std::deque<AuditEntry>& audit_log() const {
    return kernel_.audit_log();
  }

  [[nodiscard]] const ObjectDeProfile& profile() const { return profile_; }
  [[nodiscard]] const ObjectDeStats& stats() const { return stats_; }
  [[nodiscard]] sim::VirtualClock& clock() { return kernel_.clock(); }

 private:
  friend class ObjectStore;
  friend class UdfContext;

  struct Watch {
    std::uint64_t id = 0;
    std::string store;
    std::string prefix;
    std::string principal;
    ObjectStore::WatchCallback callback;  // per-event mode
    // Batched mode (watch_batch): callback is empty, batch_callback set.
    ObjectStore::WatchBatchCallback batch_callback;
    sim::SimTime window = 0;
    bool batched = false;
    /// The subscription contract (always set; pass-through when the spec
    /// had no filter/projection). Immutable and thread-safe: Phase-B shard
    /// tasks call sub->apply() concurrently.
    std::shared_ptr<const CompiledSubscription> sub;
  };

  /// Per-watch coalescing buffer for batched watches, partitioned into
  /// per-shard commit queues. `seq` on each slot is the DE-wide commit
  /// sequence of the *latest* commit folded in. At flush (the revision-
  /// window barrier) each shard sorts and RBAC-filters its queue on the
  /// worker pool, then a cross-shard stable merge by `seq` reproduces the
  /// exact single-shard event order.
  struct BufferedEvent {
    WatchEvent event;
    std::uint64_t seq = 0;
    FieldRule fields;  // RBAC filter to apply at flush (shard-local)
  };
  struct ShardQueue {
    std::map<std::string, std::size_t> slots;  // key -> index in events
    std::vector<BufferedEvent> events;
  };
  /// Rollback bookkeeping for epoch shard tasks that stage batched watch
  /// events straight into a buffer's shard queue: everything past
  /// `base_events` is this epoch's, and `saved` holds the pre-epoch value
  /// of every slot the epoch coalesced into, so a mid-epoch crash can
  /// restore the queue exactly.
  struct BatchStageUndo {
    std::size_t base_events = 0;
    std::vector<std::pair<std::size_t, BufferedEvent>> saved;
  };
  struct WatchBuffer {
    std::vector<ShardQueue> shards;
    std::uint64_t commits = 0;
    bool flush_scheduled = false;
    /// Open `sub.deliver` span for the pending window (active
    /// subscriptions only): begun when the flush is scheduled, ended at
    /// flush — its duration is the coalescing window + notify latency the
    /// QoS deadline budgets for. 0 = none.
    std::uint64_t span_id = 0;
  };

  struct Trigger {
    std::string store;
    std::string prefix;
    std::string udf_name;
  };

  struct WalEntry {
    std::string store;
    std::string key;
    // Shared snapshot of the committed payload (null => delete). Committed
    // values are immutable behind shared_ptr<const Value>, so the WAL can
    // reference them zero-copy instead of serializing per commit; replay
    // copies the value back through commit_put.
    std::shared_ptr<const common::Value> data;
  };

  /// Commits a write at engine level (no latency charging) and fires
  /// watches/triggers. Returns the new version. When the provenance ring
  /// is enabled, every commit also records a version-chain lineage entry
  /// (op "write:<principal>", input = the key's previous version) so
  /// lineage walks continue through service writes; integrator records
  /// for the same version are recorded later and win reverse lookups.
  common::Result<std::uint64_t> commit_put(
      ObjectStore& store, const std::string& key, common::Value data,
      bool merge, std::optional<std::uint64_t> expected,
      const std::string& principal = "service");
  common::Status commit_delete(ObjectStore& store, const std::string& key);

  /// Per-op scratch the epoch pipeline's parallel phase fills and the
  /// serial merge phase drains. Everything here is owned by exactly one
  /// shard task during the parallel phase (ops are partitioned by key
  /// shard), so no synchronization is needed.
  struct EpochOp {
    bool committed = false;
    StateObject obj;           // committed object (pre-delete copy on remove)
    WatchEventType type = WatchEventType::kAdded;
    core::TraceContext ctx;    // stamped with the pre-assigned commit seq
    std::vector<AuditEntry> audit;  // buffered access decisions, op order
    bool has_lineage = false;
    core::LineageRecord lineage;
    bool has_wal = false;
    WalEntry wal;              // staged; spliced at merge (all-or-nothing)
    /// Serialized journal record, encoded in Phase B straight from the
    /// committed object's shared payload handle (zero-copy read); Phase C
    /// concatenates them in global op order into one atomic frame.
    std::string persist_rec;
    bool undo_existed = false; // rollback state for mid-epoch crashes
    StateObject undo_obj;
    struct WatchHit {
      std::size_t watch_index = 0;
      bool batched = false;
      FieldRule fields;        // batched: RBAC filter applied at flush
      WatchEvent event;        // per-event mode: RBAC-filtered, ready to ship
      /// Batched fallback path: the (possibly projected) payload to
      /// enqueue at merge time.
      common::SharedValue payload;
    };
    std::vector<WatchHit> hits;
    /// Subscription-filter accounting, staged shard-locally and folded in
    /// the serial merge (watch indices whose predicate evaluated /
    /// rejected this commit) — counters stay byte-identical across
    /// shard/worker configurations.
    std::vector<std::uint32_t> sub_matched;
    std::vector<std::uint32_t> sub_filtered;
    enum class Fail { kNone, kDenied, kInvalid, kConflict, kNotFound };
    Fail fail = Fail::kNone;
    common::Error error;
  };

  /// The three-phase epoch pipeline behind ObjectStore::put_epoch.
  std::vector<common::Result<std::uint64_t>> commit_epoch(
      ObjectStore& store, const std::string& principal,
      const core::TraceContext& client_ctx, std::vector<EpochWrite> writes);

  /// Installs one subscription (the single watch-registration path behind
  /// subscribe/subscribe_batch and the legacy wrappers): allocates the id,
  /// registers the contract with the kernel's subscription registry, and
  /// appends the Watch. Exactly one of the callbacks is set.
  std::uint64_t add_subscription(
      ObjectStore& store, const std::string& principal,
      std::shared_ptr<const CompiledSubscription> sub,
      ObjectStore::WatchCallback callback,
      ObjectStore::WatchBatchCallback batch_callback);
  /// Emits one `sub.filter` span for a commit a subscription's predicate
  /// rejected. Serial-phase only (per-op path, epoch Phase-C fold).
  void note_filtered(const Watch& w, const std::string& key);
  /// Opens the pending window's `sub.deliver` span when a batched
  /// subscription's flush gets scheduled (active subscriptions only).
  void begin_batch_span(const Watch& w, WatchBuffer& buf);
  /// Delivery-side subscription bookkeeping shared by the per-event and
  /// batched paths: registry delivered count, span close with id +
  /// selectivity, and a lineage record naming the subscription.
  void finish_subscription_delivery(const Watch& w, std::uint64_t span_id,
                                    std::uint64_t events,
                                    const WatchEvent* sample);

  void fire_watches(const std::string& store_name, WatchEventType type,
                    const StateObject& obj);
  void enqueue_batched(Watch& w, WatchEventType type, const StateObject& obj,
                       const Decision& d, std::uint64_t seq,
                       const core::TraceContext& ctx);
  /// The one coalescing rule set for batched watches, shared by the per-op
  /// path (enqueue_batched) and the epoch pipeline's shard tasks so the
  /// two cannot drift. Inserts or coalesces one event into a shard queue;
  /// returns true when it coalesced into an existing slot. With `undo`,
  /// the first overwrite of any pre-epoch slot saves the previous entry
  /// for mid-epoch rollback.
  static bool coalesce_into(ShardQueue& queue, WatchEvent&& event,
                            std::uint64_t seq, const FieldRule& fields,
                            BatchStageUndo* undo);
  /// Samples the notify latency and schedules one per-event delivery (with
  /// the cancellation liveness check). Shared by the per-op and epoch
  /// paths so delivery semantics cannot drift.
  void schedule_event_delivery(const Watch& w, WatchEvent event);
  void flush_watch_batch(std::uint64_t watch_id);
  void fire_triggers(const std::string& store_name, WatchEventType type,
                     const StateObject& obj);
  /// Trigger fan-out with an explicit causal context (the epoch merge
  /// stamps pre-assigned seqs; the per-op path derives the context from
  /// the kernel's current seq in fire_triggers).
  void fire_triggers_with(const std::string& store_name, WatchEventType type,
                          const StateObject& obj,
                          const core::TraceContext& ctx);

  /// Engine-level reads used by UDFContext (charges engine latency
  /// synchronously on the clock).
  common::Result<StateObject> engine_get(const std::string& store,
                                         const std::string& key,
                                         const std::string& principal);

  /// RBAC check + audit-trail recording. All access paths route through
  /// the kernel's enforcement point.
  Decision check_access(const std::string& principal, const std::string& store,
                        const std::string& key, Verb verb) {
    return kernel_.check_access(principal, store, key, verb);
  }

  void run_sync(const std::function<bool()>& done) { kernel_.run_sync(done); }

  /// Wipes in-memory store state and reloads it from the persistence
  /// engine (newest valid snapshot + journal suffix), restoring the
  /// kernel's sequence domains to the recovered durable point.
  common::Status recover_from_disk();
  /// Snapshots when the journal delta reached the engine's cadence. Runs
  /// after a commit is fully acked: a snapshot failure crashes the DE but
  /// never fails the commit that triggered it.
  void maybe_auto_snapshot();

  Kernel kernel_;
  ObjectDeProfile profile_;
  std::size_t shards_ = 1;
  std::map<std::string, std::unique_ptr<ObjectStore>> stores_;
  std::map<std::string, std::pair<std::string, Udf>> udfs_;  // name -> (owner, fn)
  std::vector<Watch> watches_;
  std::map<std::uint64_t, WatchBuffer> watch_buffers_;  // batched watches
  std::vector<Trigger> triggers_;
  std::vector<WalEntry> wal_;
  persist::Engine* persist_ = nullptr;  // not owned; see enable_persistence
  /// Journal records staged by commits inside a transaction; flushed as
  /// one atomic frame before the transaction's notifications drain.
  std::vector<std::string> txn_records_;
  core::Tracer* tracer_ = nullptr;          // epoch-pipeline span sink
  core::Metrics* epoch_metrics_ = nullptr;  // epoch-pipeline counter sink
  bool recovering_ = false;
  /// When set, watch/trigger notifications queue instead of firing
  /// (transactions drain the queue after the full commit).
  bool defer_notifications_ = false;
  struct PendingNotification {
    std::string store;
    WatchEventType type;
    StateObject object;
    core::TraceContext ctx;  // ambient context captured at commit time
  };
  std::vector<PendingNotification> pending_notifications_;
  /// Causal context of the commit currently executing (captured from the
  /// kernel's ambient context at the client call, installed around
  /// commit_put/commit_delete so fire_watches can stamp it onto events).
  core::TraceContext commit_ctx_;
  std::function<bool()> epoch_fault_hook_;
  ObjectDeStats stats_;
};

}  // namespace knactor::de
