#include "de/schema.h"

#include <gtest/gtest.h>

namespace knactor::de {
namespace {

using common::Value;

const char* kFig5 =
    "schema: OnlineRetail/v1/Checkout/Order\n"
    "items: object\n"
    "address: string\n"
    "cost: number\n"
    "shippingCost: number # +kr: external\n"
    "totalCost: number\n"
    "currency: string\n"
    "paymentID: string # +kr: external\n"
    "trackingID: string # +kr: external\n";

TEST(Schema, ParsesFig5) {
  auto r = parse_schema(kFig5);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const StoreSchema& s = r.value();
  EXPECT_EQ(s.id, "OnlineRetail/v1/Checkout/Order");
  EXPECT_EQ(s.fields.size(), 8u);
  EXPECT_EQ(s.field("cost")->type, "number");
  EXPECT_FALSE(s.field("cost")->external);
  EXPECT_TRUE(s.field("shippingCost")->external);
  EXPECT_TRUE(s.field("paymentID")->external);
  EXPECT_TRUE(s.field("trackingID")->external);
  EXPECT_EQ(s.field("missing"), nullptr);
}

TEST(Schema, ExternalFieldsList) {
  auto s = parse_schema(kFig5).value();
  auto ext = s.external_fields();
  EXPECT_EQ(ext, (std::vector<std::string>{"shippingCost", "paymentID",
                                           "trackingID"}));
}

TEST(Schema, RequiredAnnotation) {
  auto s = parse_schema("schema: T/v1/X\nname: string # +kr: required\n")
               .value();
  EXPECT_TRUE(s.field("name")->required);
  EXPECT_FALSE(s.field("name")->external);
}

TEST(Schema, CombinedAnnotations) {
  auto s = parse_schema(
               "schema: T/v1/X\nid: string # +kr: external required\n")
               .value();
  EXPECT_TRUE(s.field("id")->required);
  EXPECT_TRUE(s.field("id")->external);
}

TEST(Schema, PlainCommentIsNotAnnotation) {
  auto s = parse_schema("schema: T/v1/X\nname: string # just a note\n")
               .value();
  EXPECT_FALSE(s.field("name")->external);
  EXPECT_FALSE(s.field("name")->required);
}

TEST(Schema, MissingIdRejected) {
  EXPECT_FALSE(parse_schema("name: string\n").ok());
}

TEST(Schema, BadTypeRejected) {
  EXPECT_FALSE(parse_schema("schema: T/v1/X\nname: kumquat\n").ok());
  EXPECT_FALSE(parse_schema("schema: T/v1/X\nname: 42\n").ok());
}

TEST(Schema, ValidateAcceptsConformingObject) {
  auto s = parse_schema(kFig5).value();
  Value order = Value::object({{"items", Value::object({})},
                               {"address", "1 Market St"},
                               {"cost", 12.5},
                               {"currency", "USD"}});
  EXPECT_TRUE(s.validate(order).ok());
}

TEST(Schema, ValidateRejectsUnknownField) {
  auto s = parse_schema(kFig5).value();
  Value order = Value::object({{"color", "red"}});
  auto status = s.validate(order);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("unknown field"), std::string::npos);
}

TEST(Schema, ValidateRejectsTypeMismatch) {
  auto s = parse_schema(kFig5).value();
  EXPECT_FALSE(s.validate(Value::object({{"cost", "pricey"}})).ok());
  EXPECT_FALSE(s.validate(Value::object({{"address", 5}})).ok());
}

TEST(Schema, IntAcceptedForNumber) {
  auto s = parse_schema(kFig5).value();
  EXPECT_TRUE(s.validate(Value::object({{"cost", 12}})).ok());
}

TEST(Schema, NullAcceptedAsUnset) {
  auto s = parse_schema(kFig5).value();
  EXPECT_TRUE(s.validate(Value::object({{"cost", Value(nullptr)}})).ok());
}

TEST(Schema, RequiredFieldMissingRejected) {
  auto s =
      parse_schema("schema: T/v1/X\nname: string # +kr: required\nage: int\n")
          .value();
  EXPECT_FALSE(s.validate(Value::object({{"age", 3}})).ok());
  EXPECT_FALSE(
      s.validate(Value::object({{"name", Value(nullptr)}})).ok());
  EXPECT_TRUE(s.validate(Value::object({{"name", "x"}})).ok());
}

TEST(Schema, ValidateNonObjectRejected) {
  auto s = parse_schema(kFig5).value();
  EXPECT_FALSE(s.validate(Value(5)).ok());
}

TEST(SchemaRegistry, AddAndFind) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.add_yaml(kFig5).ok());
  const StoreSchema* s = registry.find("OnlineRetail/v1/Checkout/Order");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->fields.size(), 8u);
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_EQ(registry.ids().size(), 1u);
}

TEST(SchemaRegistry, DuplicateRejected) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.add_yaml(kFig5).ok());
  EXPECT_FALSE(registry.add_yaml(kFig5).ok());
}

TEST(SchemaRegistry, MalformedYamlRejected) {
  SchemaRegistry registry;
  EXPECT_FALSE(registry.add_yaml("schema: T\n  bad indent: x\n").ok());
}

TEST(Schema, AllTypeKeywords) {
  auto s = parse_schema(
               "schema: T/v1/All\n"
               "s: string\nn: number\ni: int\nb: bool\no: object\nl: list\n"
               "a: any\n")
               .value();
  Value v = Value::object({{"s", "x"},
                           {"n", 1.5},
                           {"i", 3},
                           {"b", true},
                           {"o", Value::object({})},
                           {"l", Value::array({1})},
                           {"a", Value::array({})}});
  EXPECT_TRUE(s.validate(v).ok());
  EXPECT_FALSE(s.validate(Value::object({{"i", 1.5}})).ok());
  EXPECT_FALSE(s.validate(Value::object({{"b", 1}})).ok());
  EXPECT_TRUE(s.validate(Value::object({{"a", 42}})).ok());
}

TEST(SchemaRegistry, RejectedDuplicateLeavesOriginalIntact) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.add_yaml(kFig5).ok());
  // Same id, different shape: the add must fail and the original survive.
  EXPECT_FALSE(
      registry.add_yaml("schema: OnlineRetail/v1/Checkout/Order\nx: int\n")
          .ok());
  const StoreSchema* s = registry.find("OnlineRetail/v1/Checkout/Order");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->fields.size(), 8u);
  EXPECT_EQ(registry.ids().size(), 1u);
}

TEST(SchemaRegistry, UnknownTypeDeclRejectsWholeDocument) {
  SchemaRegistry registry;
  // One good field, one unknown decl: nothing may be registered.
  EXPECT_FALSE(
      registry.add_yaml("schema: T/v1/A/B\nname: string\nage: years\n").ok());
  EXPECT_TRUE(registry.ids().empty());
}

TEST(Schema, ValidateNestedStructures) {
  auto s = parse_schema("schema: T/v1/Nested/Doc\nitems: list\nmeta: object\n")
               .value();
  // Nested values inside list/object fields are opaque to validation.
  Value deep = Value::object(
      {{"items", Value::array({Value::object({{"name", "kb"}, {"qty", 2}}),
                               Value::object({{"name", "mouse"}})})},
       {"meta", Value::object({{"tags", Value::array({"a", "b"})}})}});
  EXPECT_TRUE(s.validate(deep).ok());
  // Runtime tolerance: an array satisfies an `object` decl (and vice versa
  // is not symmetric — a scalar satisfies neither).
  EXPECT_TRUE(s.validate(Value::object({{"meta", Value::array({})}})).ok());
  EXPECT_FALSE(s.validate(Value::object({{"items", "many"}})).ok());
  EXPECT_FALSE(s.validate(Value::object({{"meta", 7}})).ok());
}

}  // namespace
}  // namespace knactor::de
