// knctl — the operator CLI the paper's prototype ships ("a CLI for
// operating knactors", §4). Works on spec files:
//
//   knctl lint <spec.yaml>...           unified static analyzer: graph
//                                       checks, expression type inference,
//                                       expression semantics (KN5xx), Sync
//                                       pipeline schema flow, RBAC
//                                       pre-flight — located diagnostics
//                                       with stable KN### codes; several
//                                       specs aggregate into one deduped,
//                                       sorted report with one exit code
//   knctl lint --project <dir>          whole-composition lint: loads every
//                                       spec in the directory, auto-
//                                       registers its schemas, and adds the
//                                       cross-spec KN6xx passes (dead
//                                       exchange, shadowed write, cross-
//                                       file cycle, fan-out amplification)
//   knctl analyze <dxg.yaml>            static analysis (cycles, unused
//                                       inputs, unresolved aliases, schema
//                                       conformance with --schema files)
//   knctl analyze --cost <dir>          per-round cost model for a project:
//                                       mapping evaluation counts and the
//                                       planner's per-stage record counts
//                                       for every Sync route
//   knctl schema  <schema.yaml>         inspect a data-store schema
//   knctl gen (reconciler|accessors|dxg) <schema.yaml>
//                                       code generation to stdout
//   knctl fmt <file.yaml>               parse + re-emit normalized YAML
//   knctl query '<pipeline>' <records.jsonl>
//                                       run a Log-DE query over JSONL
//                                       records (one JSON object per line)
//   knctl trace (retail|<dxg.yaml>)     run a composition with causal
//                                       tracing on and export the trace
//                                       (--format chrome loads into
//                                       chrome://tracing / Perfetto)
//   knctl explain <store>/<key>         print a derived record's lineage
//                                       DAG with per-stage latencies
//   knctl recover --inspect <dir>       offline scan of a persistence
//                                       directory (de/persist): per-
//                                       generation snapshot/journal health,
//                                       the recovery base recover() would
//                                       load, and the replay delta — exit 1
//                                       flags torn artifacts needing
//                                       operator attention
//   knctl demo                          run all of the above on the
//                                       paper's Fig. 5 / Fig. 6 specs
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/compose_graph.h"
#include "analysis/lint.h"
#include "analysis/rbac_preflight.h"
#include "apps/retail_knactor.h"
#include "apps/retail_specs.h"
#include "common/json.h"
#include "common/strings.h"
#include "core/cast.h"
#include "core/codegen.h"
#include "core/dxg.h"
#include "core/runtime.h"
#include "core/trace_export.h"
#include "de/persist/engine.h"
#include "de/query.h"
#include "de/schema.h"
#include "yaml/yaml.h"

namespace {

using knactor::common::Result;

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return knactor::common::Error::not_found("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Flags shared by `lint` and `analyze`.
struct SpecFlags {
  std::vector<std::string> schema_texts;
  std::string rbac_text;
  std::string principal;
  std::string format = "text";
};

/// Exit codes shared by `analyze` and `lint`: 0 clean (warnings only),
/// 1 findings, 2 unusable input — so CI can distinguish "fix your spec"
/// from "fix your invocation".
int cmd_analyze(const std::string& text,
                const std::vector<std::string>& schema_texts,
                const std::string& format) {
  bool json = format == "json";
  knactor::de::SchemaRegistry schemas;
  for (const auto& schema_text : schema_texts) {
    auto added = schemas.add_yaml(schema_text);
    if (!added.ok()) {
      std::fprintf(stderr, "schema: %s\n", added.error().to_string().c_str());
      return 2;
    }
  }
  auto dxg = knactor::core::Dxg::parse(text);
  if (!dxg.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 dxg.error().to_string().c_str());
    return 2;
  }
  auto issues = knactor::core::analyze(
      dxg.value(), schema_texts.empty() ? nullptr : &schemas);
  if (json) {
    knactor::common::Value::Array list;
    for (const auto& issue : issues) {
      knactor::common::Value::Object obj;
      obj.set("kind",
              knactor::common::Value(std::string(
                  knactor::core::issue_kind_name(issue.kind))));
      obj.set("code",
              knactor::common::Value(std::string(
                  knactor::core::issue_kind_code(issue.kind))));
      obj.set("detail", knactor::common::Value(issue.detail));
      list.push_back(knactor::common::Value(std::move(obj)));
    }
    knactor::common::Value::Object root;
    root.set("inputs", knactor::common::Value(static_cast<std::int64_t>(
                           dxg.value().inputs().size())));
    root.set("mappings", knactor::common::Value(
                             static_cast<std::int64_t>(dxg.value().size())));
    root.set("issues", knactor::common::Value(std::move(list)));
    std::printf("%s\n", knactor::common::to_json_pretty(
                            knactor::common::Value(std::move(root)))
                            .c_str());
    return issues.empty() ? 0 : 1;
  }
  std::printf("inputs:   %zu\nmappings: %zu\n", dxg.value().inputs().size(),
              dxg.value().size());
  if (issues.empty()) {
    std::printf("analysis: clean\n");
    return 0;
  }
  for (const auto& issue : issues) {
    std::printf("%-18s [%s] %s\n", knactor::core::issue_kind_name(issue.kind),
                knactor::core::issue_kind_code(issue.kind),
                issue.detail.c_str());
  }
  return 1;
}

/// Shared lint finish path (single file, multi-arg, --project): dedupe +
/// stable sort, render once, one summary line, one exit code.
int finish_lint(const std::string& label,
                std::vector<knactor::analysis::Diagnostic> diags,
                const std::string& format) {
  namespace analysis = knactor::analysis;
  analysis::dedupe_diagnostics(diags);
  if (format == "json") {
    std::fputs(analysis::render_json(diags).c_str(), stdout);
  } else if (diags.empty()) {
    std::printf("%s: clean\n", label.c_str());
  } else {
    std::fputs(analysis::render_text(diags).c_str(), stdout);
  }
  if (analysis::has_parse_failure(diags)) return 2;
  return analysis::has_errors(diags) ? 1 : 0;
}

int cmd_lint(const std::string& file, const std::string& text,
             const std::vector<std::string>& schema_texts,
             const std::string& rbac_text, const std::string& principal,
             const std::string& format) {
  namespace analysis = knactor::analysis;
  knactor::de::SchemaRegistry schemas;
  for (const auto& schema_text : schema_texts) {
    auto added = schemas.add_yaml(schema_text);
    if (!added.ok()) {
      std::fprintf(stderr, "schema: %s\n", added.error().to_string().c_str());
      return 2;
    }
  }
  analysis::RbacSpec rbac;
  analysis::LintOptions options;
  options.file = file;
  options.schemas = schema_texts.empty() ? nullptr : &schemas;
  options.principal = principal;
  if (!rbac_text.empty()) {
    auto parsed = analysis::parse_rbac(rbac_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "rbac: %s\n", parsed.error().to_string().c_str());
      return 2;
    }
    rbac = parsed.take();
    options.rbac = &rbac;
  }
  return finish_lint(file, analysis::lint_spec(text, options), format);
}

/// Whole-composition lint over an already-loaded project; `label` names
/// the input in the clean message (the directory, or the spec list).
int cmd_lint_project(knactor::analysis::Project& project,
                     const std::string& label, const SpecFlags& flags) {
  namespace analysis = knactor::analysis;
  for (const auto& schema_text : flags.schema_texts) {
    auto added = project.schemas.add_yaml(schema_text);
    if (!added.ok()) {
      std::fprintf(stderr, "schema: %s\n", added.error().to_string().c_str());
      return 2;
    }
  }
  analysis::RbacSpec rbac;
  analysis::ProjectLintOptions options;
  options.principal = flags.principal;
  if (!flags.rbac_text.empty()) {
    auto parsed = analysis::parse_rbac(flags.rbac_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "rbac: %s\n", parsed.error().to_string().c_str());
      return 2;
    }
    rbac = parsed.take();
    options.rbac = &rbac;
  }
  return finish_lint(label, analysis::lint_project(project, options),
                     flags.format);
}

/// `knctl analyze --cost <dir>` — per-round cost model for the project.
int cmd_analyze_cost(const std::string& dir, std::size_t records,
                     const std::string& format) {
  namespace analysis = knactor::analysis;
  auto project = analysis::Project::load_dir(dir);
  if (!project.load_diags.empty()) {
    std::fputs(analysis::render_text(project.load_diags).c_str(), stderr);
    return 2;
  }
  auto report = analysis::estimate_project_cost(project, records);
  if (format == "json") {
    std::printf("%s\n",
                knactor::common::to_json_pretty(report.to_value()).c_str());
  } else {
    std::fputs(report.to_text().c_str(), stdout);
  }
  return 0;
}

int cmd_schema(const std::string& text) {
  auto schema = knactor::de::parse_schema(text);
  if (!schema.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 schema.error().to_string().c_str());
    return 2;
  }
  std::printf("schema: %s\n", schema.value().id.c_str());
  for (const auto& field : schema.value().fields) {
    std::printf("  %-16s %-8s%s%s\n", field.name.c_str(), field.type.c_str(),
                field.external ? " external" : "",
                field.required ? " required" : "");
  }
  auto external = schema.value().external_fields();
  std::printf("external fields (integrator-filled): %zu\n", external.size());
  return 0;
}

int cmd_gen(const std::string& kind, const std::string& text) {
  auto schema = knactor::de::parse_schema(text);
  if (!schema.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 schema.error().to_string().c_str());
    return 2;
  }
  knactor::core::CodegenOptions options;
  Result<std::string> generated =
      kind == "reconciler"
          ? knactor::core::generate_reconciler(schema.value(), options)
          : kind == "accessors"
                ? knactor::core::generate_accessors(schema.value(), options)
                : knactor::core::generate_dxg_stub(schema.value());
  if (!generated.ok()) {
    std::fprintf(stderr, "codegen: %s\n",
                 generated.error().to_string().c_str());
    return 2;
  }
  std::fputs(generated.value().c_str(), stdout);
  return 0;
}

int cmd_fmt(const std::string& text) {
  auto parsed = knactor::yaml::parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.error().to_string().c_str());
    return 2;
  }
  std::fputs(knactor::yaml::dump(parsed.value()).c_str(), stdout);
  return 0;
}

int cmd_query(const std::string& pipeline_text, const std::string& jsonl) {
  auto query = knactor::de::parse_query(pipeline_text);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.error().to_string().c_str());
    return 2;
  }
  std::vector<knactor::common::Value> records;
  for (const auto& line : knactor::common::split(jsonl, '\n')) {
    if (knactor::common::trim(line).empty()) continue;
    auto record = knactor::common::parse_json(line);
    if (!record.ok()) {
      std::fprintf(stderr, "bad record: %s\n",
                   record.error().to_string().c_str());
      return 2;
    }
    records.push_back(record.take());
  }
  auto result = knactor::de::run_pipeline(query.value(), std::move(records));
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n",
                 result.error().to_string().c_str());
    return 2;
  }
  for (const auto& record : result.value()) {
    std::printf("%s\n", knactor::common::to_json(record).c_str());
  }
  return 0;
}

/// Runs a composition with causal tracing + lineage enabled. `spec` is
/// either the built-in "retail" app (one sample order through the Fig. 6
/// DXG) or a DXG YAML file; for the file form, `data_text` optionally
/// seeds stores before the pass: a JSON/YAML object of shape
/// {alias: {key: object, ...}, ...}. On success fills `de_out` with the
/// DE hosting the composed stores (its kernel holds the provenance ring).
int run_traced_composition(const std::string& spec,
                           const std::string& data_text,
                           knactor::core::Runtime& rt,
                           knactor::de::ObjectDe** de_out) {
  namespace core = knactor::core;
  namespace de = knactor::de;
  rt.enable_lineage();
  if (spec == "retail") {
    auto app = knactor::apps::build_retail_knactor_app(rt);
    *de_out = app.de;
    auto started = rt.start_all();
    if (!started.ok()) {
      std::fprintf(stderr, "start: %s\n", started.error().to_string().c_str());
      return 2;
    }
    auto order = app.place_order_sync(knactor::apps::sample_order());
    if (!order.ok()) {
      std::fprintf(stderr, "order: %s\n", order.error().to_string().c_str());
      return 2;
    }
    return 0;
  }
  auto text = read_file(spec);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
    return 2;
  }
  auto dxg = core::Dxg::parse(text.value());
  if (!dxg.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 dxg.error().to_string().c_str());
    return 2;
  }
  de::ObjectDe& dex = rt.add_object_de("object", de::ObjectDeProfile::redis());
  // Route DE-side spans (epoch pipeline, `sub.filter`/`sub.deliver`) into
  // the same tracer as the integrator passes, so `trace` and `explain`
  // can report per-subscription delivery latency and selectivity.
  dex.set_observability(&rt.tracer(), nullptr);
  *de_out = &dex;
  std::map<std::string, de::ObjectStore*> bindings;
  for (const auto& [alias, store_id] : dxg.value().inputs()) {
    // Store ids are paths ("OnlineRetail/v1/Checkout/knactor-checkout");
    // the store name is the last segment.
    auto slash = store_id.rfind('/');
    std::string store_name =
        slash == std::string::npos ? store_id : store_id.substr(slash + 1);
    bindings[alias] = &dex.create_store(store_name);
  }
  rt.add_integrator(std::make_unique<core::CastIntegrator>(
      "trace", dex, dxg.take(), bindings, core::CastIntegrator::Options{},
      nullptr, &rt.tracer()));
  auto started = rt.start_all();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.error().to_string().c_str());
    return 2;
  }
  if (!data_text.empty()) {
    auto seed = knactor::common::parse_json(data_text);
    if (!seed.ok()) {
      auto yaml_seed = knactor::yaml::parse(data_text);
      if (!yaml_seed.ok()) {
        std::fprintf(stderr, "data: %s\n",
                     seed.error().to_string().c_str());
        return 2;
      }
      seed = yaml_seed.take();
    }
    if (!seed.value().is_object()) {
      std::fprintf(stderr, "data: expected {alias: {key: object}}\n");
      return 2;
    }
    for (const auto& [alias, objects] : seed.value().as_object()) {
      auto it = bindings.find(alias);
      de::ObjectStore* store =
          it != bindings.end() ? it->second : dex.store(alias);
      if (store == nullptr || !objects.is_object()) {
        std::fprintf(stderr, "data: unknown alias '%s'\n", alias.c_str());
        return 2;
      }
      for (const auto& [key, object] : objects.as_object()) {
        store->put("knctl", key, object,
                   [](knactor::common::Result<std::uint64_t>) {});
      }
    }
  }
  rt.run_until_idle();
  return 0;
}

int cmd_trace(const std::string& spec, const std::string& format,
              const std::string& data_text) {
  knactor::core::Runtime rt;
  knactor::de::ObjectDe* dex = nullptr;
  int rc = run_traced_composition(spec, data_text, rt, &dex);
  if (rc != 0) return rc;
  auto spans = rt.tracer().spans();
  if (format == "chrome") {
    std::fputs(knactor::core::export_chrome_trace(spans).c_str(), stdout);
    std::fputs("\n", stdout);
  } else {
    std::fputs(knactor::core::export_text_summary(spans).c_str(), stdout);
  }
  return 0;
}

int cmd_explain(const std::string& target, const std::string& spec,
                const std::string& data_text) {
  auto slash = target.find('/');
  if (slash == std::string::npos) {
    std::fprintf(stderr, "explain: target must be <store>/<key>\n");
    return 2;
  }
  const std::string store = target.substr(0, slash);
  const std::string key = target.substr(slash + 1);
  knactor::core::Runtime rt;
  knactor::de::ObjectDe* dex = nullptr;
  int rc = run_traced_composition(spec, data_text, rt, &dex);
  if (rc != 0) return rc;
  std::string out = knactor::core::explain(
      dex->kernel().provenance(), rt.tracer().spans(), store, key);
  std::fputs(out.c_str(), stdout);
  // "no lineage" is a findings-style outcome (exit 1), like lint.
  return out.rfind("no lineage", 0) == 0 ? 1 : 0;
}

/// `knctl recover --inspect <dir>` — offline health scan of a persistence
/// directory. Uses the same recovery-base rule as Engine::recover(), so
/// what it prints is what a restart would actually do. Exit codes follow
/// the lint convention: 0 healthy, 1 torn artifacts found (recovery still
/// works — the torn suffix is simply dropped), 2 unusable directory.
int cmd_recover_inspect(const std::string& dir, const std::string& format) {
  namespace persist = knactor::de::persist;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    std::fprintf(stderr, "recover: '%s' is not a directory\n", dir.c_str());
    return 2;
  }
  const std::vector<persist::GenerationInfo> gens = persist::Engine::inspect(dir);
  const auto base = persist::Engine::recovery_base(gens);
  std::uint64_t replay_frames = 0;
  std::uint64_t replay_records = 0;
  bool torn = false;
  for (const auto& gen : gens) {
    torn = torn || gen.journal_torn || (gen.has_snapshot && !gen.snapshot_valid);
    if (!base || gen.generation >= *base) {
      replay_frames += gen.journal_frames;
      replay_records += gen.journal_records;
    }
  }
  if (format == "json") {
    knactor::common::Value::Array rows;
    for (const auto& gen : gens) {
      knactor::common::Value::Object row;
      row.set("generation", knactor::common::Value(
                                static_cast<std::int64_t>(gen.generation)));
      row.set("has_snapshot", knactor::common::Value(gen.has_snapshot));
      row.set("snapshot_valid", knactor::common::Value(gen.snapshot_valid));
      row.set("snapshot_bytes", knactor::common::Value(
                                    static_cast<std::int64_t>(gen.snapshot_bytes)));
      row.set("snapshot_objects",
              knactor::common::Value(
                  static_cast<std::int64_t>(gen.snapshot_objects)));
      row.set("has_journal", knactor::common::Value(gen.has_journal));
      row.set("journal_bytes", knactor::common::Value(
                                   static_cast<std::int64_t>(gen.journal_bytes)));
      row.set("journal_valid_bytes",
              knactor::common::Value(
                  static_cast<std::int64_t>(gen.journal_valid_bytes)));
      row.set("journal_frames", knactor::common::Value(
                                    static_cast<std::int64_t>(gen.journal_frames)));
      row.set("journal_records",
              knactor::common::Value(
                  static_cast<std::int64_t>(gen.journal_records)));
      row.set("journal_torn", knactor::common::Value(gen.journal_torn));
      rows.push_back(knactor::common::Value(std::move(row)));
    }
    knactor::common::Value::Object root;
    root.set("dir", knactor::common::Value(dir));
    root.set("generations", knactor::common::Value(std::move(rows)));
    root.set("recovery_base",
             base ? knactor::common::Value(static_cast<std::int64_t>(*base))
                  : knactor::common::Value());
    root.set("replay_frames",
             knactor::common::Value(static_cast<std::int64_t>(replay_frames)));
    root.set("replay_records",
             knactor::common::Value(static_cast<std::int64_t>(replay_records)));
    root.set("torn_artifacts", knactor::common::Value(torn));
    std::printf("%s\n", knactor::common::to_json_pretty(
                            knactor::common::Value(std::move(root)))
                            .c_str());
    return torn ? 1 : 0;
  }
  if (gens.empty()) {
    std::printf("%s: no persistence generations (recovery starts empty)\n",
                dir.c_str());
    return 0;
  }
  for (const auto& gen : gens) {
    std::printf("generation %llu:",
                static_cast<unsigned long long>(gen.generation));
    if (gen.has_snapshot) {
      std::printf("  snapshot %s (%llu objects, %llu bytes)",
                  gen.snapshot_valid ? "valid" : "TORN",
                  static_cast<unsigned long long>(gen.snapshot_objects),
                  static_cast<unsigned long long>(gen.snapshot_bytes));
    } else {
      std::printf("  snapshot none");
    }
    if (gen.has_journal) {
      std::printf("  journal %s (%llu frames, %llu records, %llu/%llu bytes "
                  "valid)\n",
                  gen.journal_torn ? "TORN" : "clean",
                  static_cast<unsigned long long>(gen.journal_frames),
                  static_cast<unsigned long long>(gen.journal_records),
                  static_cast<unsigned long long>(gen.journal_valid_bytes),
                  static_cast<unsigned long long>(gen.journal_bytes));
    } else {
      std::printf("  journal none\n");
    }
  }
  if (base) {
    std::printf("recovery base: generation %llu (replay %llu frames / %llu "
                "records)\n",
                static_cast<unsigned long long>(*base),
                static_cast<unsigned long long>(replay_frames),
                static_cast<unsigned long long>(replay_records));
  } else {
    std::printf("recovery base: none — full replay of %llu frames / %llu "
                "records from the empty image\n",
                static_cast<unsigned long long>(replay_frames),
                static_cast<unsigned long long>(replay_records));
  }
  if (torn) std::printf("torn artifacts present: recovery will drop them\n");
  return torn ? 1 : 0;
}

int cmd_demo() {
  std::printf("== knctl schema (Fig. 5, Checkout) ==\n");
  (void)cmd_schema(knactor::apps::kCheckoutSchema);
  std::printf("\n== knctl analyze (Fig. 6 DXG) ==\n");
  int rc = cmd_analyze(knactor::apps::kRetailDxg, {}, "text");
  std::printf("\n== knctl gen dxg (from the Shipping schema) ==\n");
  (void)cmd_gen("dxg", knactor::apps::kShippingSchema);
  return rc;
}

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  knctl lint <spec.yaml>... [--schema <schema.yaml>]... "
      "[--rbac <policy.yaml>]\n"
      "             [--as <principal>] [--format text|json]\n"
      "  knctl lint --project <dir> [--schema <schema.yaml>]... "
      "[--rbac <policy.yaml>]\n"
      "             [--as <principal>] [--format text|json]\n"
      "  knctl analyze <dxg.yaml> [--schema <schema.yaml>]... "
      "[--format text|json]\n"
      "  knctl analyze --cost <dir> [--records <n>] [--format text|json]\n"
      "  knctl schema <schema.yaml>\n"
      "  knctl gen (reconciler|accessors|dxg) <schema.yaml>\n"
      "  knctl fmt <file.yaml>\n"
      "  knctl query '<pipeline>' <records.jsonl>\n"
      "  knctl trace (retail|<dxg.yaml>) [--format text|chrome] "
      "[--data <seed.json|yaml>]\n"
      "  knctl explain <store>/<key> [--spec retail|<dxg.yaml>] "
      "[--data <seed.json|yaml>]\n"
      "  knctl recover --inspect <dir> [--format text|json]\n"
      "  knctl demo\n"
      "exit codes for lint/analyze/recover: 0 clean, 1 findings, "
      "2 unusable input\n");
}

/// Parses [--schema f]... [--rbac f] [--as p] [--format text|json] from
/// args[start..]; returns false (after printing usage) on bad flags.
bool parse_spec_flags(const std::vector<std::string>& args, std::size_t start,
                      bool allow_rbac, SpecFlags& flags) {
  for (std::size_t i = start; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) {
      usage();
      return false;
    }
    const std::string& flag = args[i];
    const std::string& value = args[i + 1];
    if (flag == "--schema") {
      auto text = read_file(value);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
        return false;
      }
      flags.schema_texts.push_back(text.take());
    } else if (flag == "--rbac" && allow_rbac) {
      auto text = read_file(value);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
        return false;
      }
      flags.rbac_text = text.take();
    } else if (flag == "--as" && allow_rbac) {
      flags.principal = value;
    } else if (flag == "--format" && (value == "text" || value == "json")) {
      flags.format = value;
    } else {
      usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    // Bare invocation (e.g. from a bench/CI sweep) runs the demo.
    return cmd_demo();
  }
  const std::string& command = args[0];
  if (command == "demo") return cmd_demo();
  if (command == "analyze" && args.size() >= 3 && args[1] == "--cost") {
    std::size_t records = 100;
    std::string format = "text";
    for (std::size_t i = 3; i < args.size(); i += 2) {
      if (i + 1 >= args.size()) {
        usage();
        return 2;
      }
      const std::string& flag = args[i];
      const std::string& value = args[i + 1];
      if (flag == "--records" && !value.empty()) {
        char* end = nullptr;
        unsigned long long n = std::strtoull(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          usage();
          return 2;
        }
        records = static_cast<std::size_t>(n);
      } else if (flag == "--format" && (value == "text" || value == "json")) {
        format = value;
      } else {
        usage();
        return 2;
      }
    }
    return cmd_analyze_cost(args[2], records, format);
  }
  if (command == "analyze" && args.size() >= 2) {
    auto text = read_file(args[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 2;
    }
    SpecFlags flags;
    if (!parse_spec_flags(args, 2, /*allow_rbac=*/false, flags)) return 2;
    return cmd_analyze(text.value(), flags.schema_texts, flags.format);
  }
  if (command == "lint" && args.size() >= 2) {
    if (args[1] == "--project") {
      if (args.size() < 3) {
        usage();
        return 2;
      }
      SpecFlags flags;
      if (!parse_spec_flags(args, 3, /*allow_rbac=*/true, flags)) return 2;
      auto project = knactor::analysis::Project::load_dir(args[2]);
      return cmd_lint_project(project, args[2], flags);
    }
    // Leading positionals are spec files; the first `--` flag ends them.
    std::vector<std::string> files;
    std::size_t next = 1;
    while (next < args.size() && args[next].rfind("--", 0) != 0) {
      files.push_back(args[next++]);
    }
    if (files.empty()) {
      usage();
      return 2;
    }
    SpecFlags flags;
    if (!parse_spec_flags(args, next, /*allow_rbac=*/true, flags)) return 2;
    if (files.size() == 1) {
      auto text = read_file(files[0]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
        return 2;
      }
      return cmd_lint(files[0], text.value(), flags.schema_texts,
                      flags.rbac_text, flags.principal, flags.format);
    }
    // Several specs aggregate through the project path: duplicates are
    // linted once, findings dedupe + sort, one summary, one exit code.
    std::vector<std::string> unique_files;
    for (const auto& file : files) {
      if (std::find(unique_files.begin(), unique_files.end(), file) ==
          unique_files.end()) {
        unique_files.push_back(file);
      }
    }
    std::vector<std::pair<std::string, std::string>> named;
    std::vector<knactor::analysis::Diagnostic> io_diags;
    std::string label;
    for (const auto& file : unique_files) {
      if (!label.empty()) label += ", ";
      label += file;
      auto text = read_file(file);
      if (text.ok()) {
        named.emplace_back(file, text.take());
      } else {
        io_diags.push_back(knactor::analysis::make_diag(
            "KN400", {file, 0, 0},
            "cannot read file: " + text.error().to_string()));
      }
    }
    auto project = knactor::analysis::Project::from_files(named);
    project.load_diags.insert(project.load_diags.end(), io_diags.begin(),
                              io_diags.end());
    return cmd_lint_project(project, label, flags);
  }
  if (command == "schema" && args.size() == 2) {
    auto text = read_file(args[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 2;
    }
    return cmd_schema(text.value());
  }
  if (command == "gen" && args.size() == 3 &&
      (args[1] == "reconciler" || args[1] == "accessors" || args[1] == "dxg")) {
    auto text = read_file(args[2]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 2;
    }
    return cmd_gen(args[1], text.value());
  }
  if (command == "fmt" && args.size() == 2) {
    auto text = read_file(args[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
      return 2;
    }
    return cmd_fmt(text.value());
  }
  if ((command == "trace" || command == "explain") && args.size() >= 2) {
    std::string format = "text";
    std::string spec = command == "trace" ? args[1] : "retail";
    std::string data_text;
    for (std::size_t i = 2; i < args.size(); i += 2) {
      if (i + 1 >= args.size()) {
        usage();
        return 2;
      }
      const std::string& flag = args[i];
      const std::string& value = args[i + 1];
      if (flag == "--format" && (value == "text" || value == "chrome")) {
        format = value;
      } else if (flag == "--data") {
        auto text = read_file(value);
        if (!text.ok()) {
          std::fprintf(stderr, "%s\n", text.error().to_string().c_str());
          return 2;
        }
        data_text = text.take();
      } else if (flag == "--spec" && command == "explain") {
        spec = value;
      } else {
        usage();
        return 2;
      }
    }
    return command == "trace" ? cmd_trace(spec, format, data_text)
                              : cmd_explain(args[1], spec, data_text);
  }
  if (command == "recover" && args.size() >= 3 && args[1] == "--inspect") {
    std::string format = "text";
    for (std::size_t i = 3; i < args.size(); i += 2) {
      if (i + 1 >= args.size()) {
        usage();
        return 2;
      }
      if (args[i] == "--format" &&
          (args[i + 1] == "text" || args[i + 1] == "json")) {
        format = args[i + 1];
      } else {
        usage();
        return 2;
      }
    }
    return cmd_recover_inspect(args[2], format);
  }
  if (command == "query" && args.size() == 3) {
    auto jsonl = read_file(args[2]);
    if (!jsonl.ok()) {
      std::fprintf(stderr, "%s\n", jsonl.error().to_string().c_str());
      return 2;
    }
    return cmd_query(args[1], jsonl.value());
  }
  usage();
  return 2;
}
