// Compatibility bridges (§5 "we expect the use of Knactor with existing
// systems can be facilitated through the use of proxies or porting
// mechanisms"): adapters between the API-centric world (RPC) and the
// data-centric world (stores + integrators), enabling incremental
// migration in both directions.
//
//   RpcIngressBridge: exposes a knactor's data store AS an RPC service.
//     A legacy client's call becomes a request object in the store; the
//     knactor's reconciler (or an integrator) fills the response field;
//     the bridge replies to the caller.
//
//   RpcEgressBridge: lets the data-centric side consume a legacy RPC
//     service THROUGH state. Writing a request object into a store issues
//     the RPC; the response is patched back into the object, where
//     integrators and reconcilers see it like any other state.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "core/causality.h"
#include "core/trace.h"
#include "de/object.h"
#include "net/rpc.h"

namespace knactor::core {

/// Ingress: RPC -> store. One bridge per (service, store).
class RpcIngressBridge {
 public:
  struct MethodBinding {
    /// Request objects are written under "<key_prefix><call-id>".
    std::string key_prefix = "rpc/";
    /// The call completes when this field appears on the request object.
    std::string response_field = "response";
    /// Give up after this much sim time (0 = never).
    sim::SimTime timeout = 0;
  };

  RpcIngressBridge(net::SimNetwork& network, std::string node,
                   const net::SchemaPool& pool, de::ObjectStore& store);
  ~RpcIngressBridge();

  RpcIngressBridge(const RpcIngressBridge&) = delete;
  RpcIngressBridge& operator=(const RpcIngressBridge&) = delete;

  /// Exposes `service`; every method must have a binding. Registers the
  /// hosting node with `registry` like a normal RPC server.
  common::Status expose(const net::ServiceDescriptor& service,
                        std::map<std::string, MethodBinding> bindings,
                        net::RpcRegistry& registry);

  /// The principal the bridge acts as against the store.
  [[nodiscard]] std::string principal() const { return "bridge:" + node_; }

  [[nodiscard]] std::uint64_t calls_bridged() const { return bridged_; }

 private:
  net::SimNetwork& network_;
  std::string node_;
  std::unique_ptr<net::RpcServer> server_;
  de::ObjectStore& store_;
  std::uint64_t next_call_ = 1;
  std::uint64_t bridged_ = 0;
};

/// Egress: store -> RPC. Watches a key prefix; objects without the
/// response field trigger a call to the legacy service; the decoded
/// response is patched into the object under `response_field`.
class RpcEgressBridge {
 public:
  struct Options {
    std::string key_prefix = "egress/";
    std::string response_field = "response";
    /// Field of the request object naming the method (absent => `method`).
    std::string method = "";
    /// When > 0, subscribe with this coalescing window: a burst of request
    /// writes arrives as one coalesced WatchBatch (one notification) and
    /// the bridge issues the RPCs from the batch. Equivalent to setting
    /// `qos.window`.
    sim::SimTime batch_window = 0;
    /// Content filter over request objects (`expr::` predicate; "" = all).
    /// Compiled into the unified subscription layer, so a request write
    /// the predicate rejects never reaches the bridge — no RPC, no queue
    /// slot, no callback.
    std::string filter;
    /// Per-subscriber delivery contract (window/deadline/history/stage).
    /// The deadline feeds `stage:` SLO selectors via `sub.deliver` spans.
    de::SubscriptionQos qos;
    /// Optional: each bridged call gets a span parented under the request
    /// write's causal context, and the response patch inherits its trace.
    Tracer* tracer = nullptr;
  };

  RpcEgressBridge(net::SimNetwork& network, std::string node,
                  const net::RpcRegistry& registry,
                  const net::SchemaPool& pool, de::ObjectStore& store,
                  net::ServiceDescriptor stub, Options options);

  RpcEgressBridge(const RpcEgressBridge&) = delete;
  RpcEgressBridge& operator=(const RpcEgressBridge&) = delete;

  common::Status start();
  void stop();

  [[nodiscard]] std::string principal() const { return "bridge:" + node_; }
  [[nodiscard]] std::uint64_t calls_issued() const { return issued_; }
  [[nodiscard]] std::uint64_t batches_consumed() const { return batches_; }

 private:
  void on_event(const de::WatchEvent& event);

  de::ObjectStore& store_;
  net::ServiceDescriptor stub_;
  Options options_;
  std::string node_;
  std::unique_ptr<net::RpcChannel> channel_;
  std::uint64_t watch_id_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace knactor::core
