// IoT fleet telemetry rollup (apps/fleet_telemetry.h, docs/WORKLOADS.md):
// exact windowed aggregation through the fused planner, the overheat alert
// route, push-mode sync rounds, and sync lineage replay.
#include "apps/fleet_telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "core/runtime.h"
#include "core/sync.h"
#include "de/plan.h"
#include "de/query.h"

namespace knactor {
namespace {

using common::Value;

// Expected per-(device, window) aggregates, replayed from the app's own
// deterministic reading generator.
struct Expected {
  std::int64_t n = 0;
  double speed_sum = 0;
  double max_temp = 0;
};

TEST(FleetTelemetry, RollupAggregatesExactlyPerDevicePerWindow) {
  core::Runtime rt;
  apps::FleetTelemetryOptions options;
  options.device_space = 4;  // force real grouping: 4 devices x 3 windows
  auto app = apps::build_fleet_telemetry_app(rt, options);
  ASSERT_NE(app.sync, nullptr);

  const std::uint64_t kReadings = 180;  // ts 0..179 -> windows 0, 60, 120
  std::map<std::pair<std::string, std::int64_t>, Expected> expected;
  for (std::uint64_t i = 0; i < kReadings; ++i) {
    app.emit_reading(i);
    Value r = app.reading_for(i);
    const std::int64_t ts =
        static_cast<std::int64_t>(r.get("ts")->as_number());
    auto& cell = expected[{r.get("device")->as_string(), (ts / 60) * 60}];
    ++cell.n;
    cell.speed_sum += r.get("speed")->as_number();
    cell.max_temp = std::max(cell.max_temp, r.get("temp")->as_number());
  }
  app.settle();
  auto moved = app.run_rollup_round();
  ASSERT_TRUE(moved.ok()) << moved.error().to_string();
  app.settle();

  ASSERT_EQ(app.rollup_count(), expected.size());
  for (const auto& rec : app.rollup->records_after(0)) {
    ASSERT_TRUE(rec.data);
    const Value& row = *rec.data;
    const std::string device = row.get("device")->as_string();
    const auto wstart =
        static_cast<std::int64_t>(row.get("wstart")->as_number());
    auto it = expected.find({device, wstart});
    ASSERT_NE(it, expected.end()) << device << " @ " << wstart;
    const Expected& want = it->second;
    EXPECT_EQ(static_cast<std::int64_t>(row.get("n")->as_number()), want.n)
        << device << " @ " << wstart;
    EXPECT_DOUBLE_EQ(row.get("avg_speed")->as_number(),
                     want.speed_sum / static_cast<double>(want.n))
        << device << " @ " << wstart;
    EXPECT_DOUBLE_EQ(row.get("max_temp")->as_number(), want.max_temp)
        << device << " @ " << wstart;
  }
}

TEST(FleetTelemetry, OverheatAlertsCarrySeverity) {
  core::Runtime rt;
  auto app = apps::build_fleet_telemetry_app(rt);
  const std::uint64_t kReadings = 120;
  std::size_t want_alerts = 0;
  std::size_t want_critical = 0;
  for (std::uint64_t i = 0; i < kReadings; ++i) {
    app.emit_reading(i);
    const double temp = app.reading_for(i).get("temp")->as_number();
    if (temp > 90) ++want_alerts;
    if (temp > 110) ++want_critical;
  }
  app.settle();
  ASSERT_TRUE(app.run_rollup_round().ok());
  app.settle();

  ASSERT_GT(want_critical, 0u);
  EXPECT_EQ(app.alert_count(), want_alerts);
  std::size_t critical = 0;
  for (const auto& rec : app.alerts->records_after(0)) {
    ASSERT_TRUE(rec.data);
    const Value& row = *rec.data;
    // `cut device, ts, temp, severity` — exactly the projected shape.
    ASSERT_NE(row.get("severity"), nullptr);
    ASSERT_NE(row.get("device"), nullptr);
    EXPECT_EQ(row.get("speed"), nullptr);
    const double temp = row.get("temp")->as_number();
    EXPECT_GT(temp, 90.0);
    const std::string severity = row.get("severity")->as_string();
    if (temp > 110) {
      EXPECT_EQ(severity, "critical");
      ++critical;
    } else {
      EXPECT_EQ(severity, "warning");
    }
  }
  EXPECT_EQ(critical, want_critical);
}

TEST(FleetTelemetry, WindowStageFusesIntoTheScan) {
  // The rollup pipeline is [window | summarize]: consolidated, the
  // record-local window op fuses into the scan, so only the summarize
  // barrier costs its own pass.
  auto pipeline = de::parse_query(apps::fleet_rollup_pipeline(60));
  ASSERT_TRUE(pipeline.ok()) << pipeline.error().to_string();
  EXPECT_EQ(core::SyncIntegrator::count_passes(pipeline.value(),
                                               /*consolidated=*/false),
            2u);
  EXPECT_EQ(core::SyncIntegrator::count_passes(pipeline.value(),
                                               /*consolidated=*/true),
            2u);  // fused scan+window = 1, summarize barrier = 1
}

TEST(FleetTelemetry, PushModeRunsRoundsBehindAppends) {
  core::Runtime rt;
  apps::FleetTelemetryOptions options;
  options.push = true;
  auto app = apps::build_fleet_telemetry_app(rt, options);
  for (std::uint64_t i = 0; i < 95; ++i) app.emit_reading(i);
  app.settle();
  // No manual round: the subscription-driven rounds already moved data.
  EXPECT_GT(app.rollup_count(), 0u);
  EXPECT_GT(app.alert_count(), 0u);
}

// Sync lineage: every alert record replays byte-for-byte from its single
// attributed source reading through the route's own pipeline — the
// record-local window/filter/put/cut chain keeps 1:1 attribution.
TEST(FleetTelemetry, AlertRecordsReplayFromAttributedReading) {
  core::Runtime rt;
  rt.enable_lineage();
  auto app = apps::build_fleet_telemetry_app(rt);
  for (std::uint64_t i = 0; i < 60; ++i) app.emit_reading(i);
  app.settle();
  ASSERT_TRUE(app.run_rollup_round().ok());
  app.settle();

  const auto& ring = app.log_de->kernel().provenance();
  const core::SyncRoute* alert_route = nullptr;
  for (const auto& r : app.sync->routes()) {
    if (r.name == "overheat-alerts") alert_route = &r;
  }
  ASSERT_NE(alert_route, nullptr);
  std::size_t replayed = 0;
  for (const auto& rec : ring.records()) {
    if (rec.op != "sync:fleet-rollup/overheat-alerts") continue;
    ASSERT_NE(rec.output.data, nullptr);
    std::vector<Value> inputs;
    for (const auto& ref : rec.inputs) {
      ASSERT_NE(ref.data, nullptr);
      EXPECT_EQ(ref.store, "fleet-readings");
      inputs.push_back(Value(*ref.data));
    }
    auto out = de::run_pipeline(alert_route->pipeline, std::move(inputs));
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out.value().size(), 1u);  // record-local: 1:1 attribution
    EXPECT_EQ(common::to_json(out.value()[0]),
              common::to_json(*rec.output.data));
    ++replayed;
  }
  EXPECT_GT(replayed, 0u);
}

}  // namespace
}  // namespace knactor
