// The knactor service abstraction (§3.2): a service is represented as a
// knactor owning one or more data stores (on Object and/or Log DEs) and a
// reconciler that reacts to state updates in those stores — never to other
// services' APIs. Composition happens outside, in integrators.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "de/log.h"
#include "de/object.h"
#include "de/schema.h"

namespace knactor::core {

class Knactor;

/// Base class for reconcilers: code that watches the knactor's own data
/// store(s) and initiates actions (possibly writing back). Service
/// developers subclass this; the framework wires watches.
class Reconciler {
 public:
  virtual ~Reconciler() = default;

  /// Called once when the knactor starts (initialize state, seed objects).
  virtual void start(Knactor& knactor) { (void)knactor; }
  /// Called for every event on a watched object store of this knactor.
  virtual void on_object_event(Knactor& knactor, const de::WatchEvent& event) {
    (void)knactor;
    (void)event;
  }
};

/// A deployed knactor: name, principal identity, bound stores, reconciler.
class Knactor {
 public:
  Knactor(std::string name, std::unique_ptr<Reconciler> reconciler)
      : name_(std::move(name)), reconciler_(std::move(reconciler)) {}

  Knactor(const Knactor&) = delete;
  Knactor& operator=(const Knactor&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// The RBAC principal this knactor's reconciler acts as.
  [[nodiscard]] std::string principal() const { return "knactor:" + name_; }

  /// Binds an object store (created on some Object DE) under a local
  /// label ("state" store by convention; knactors may have several, like
  /// the Fig. 4 knactors with one Object and one Log store each).
  void bind_object_store(const std::string& label, de::ObjectStore& store,
                         const de::StoreSchema* schema = nullptr);
  void bind_log_pool(const std::string& label, de::LogPool& pool);

  [[nodiscard]] de::ObjectStore* object_store(const std::string& label) const;
  [[nodiscard]] de::LogPool* log_pool(const std::string& label) const;
  [[nodiscard]] const de::StoreSchema* store_schema(
      const std::string& label) const;

  /// Starts the reconciler and installs watches on all bound object
  /// stores. Events are delivered with the DE's watch latency.
  void start();
  void stop();
  /// Informer-style resync (the Kubernetes re-list pattern): lists every
  /// bound store and replays each object to the reconciler as a synthetic
  /// kAdded event. Use after a DE restart or when joining late — watches
  /// only deliver *changes*, so pre-existing state needs a resync.
  /// Returns the number of objects replayed.
  common::Result<std::size_t> resync();
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] Reconciler* reconciler() { return reconciler_.get(); }

  // Convenience state access for reconcilers (uses the default "state"
  // store and this knactor's principal).
  common::Result<de::StateObject> get_state(const std::string& key);
  common::Result<std::uint64_t> put_state(const std::string& key,
                                          common::Value data);
  common::Result<std::uint64_t> patch_state(const std::string& key,
                                            common::Value fields);

 private:
  std::string name_;
  std::unique_ptr<Reconciler> reconciler_;
  struct BoundStore {
    de::ObjectStore* store = nullptr;
    const de::StoreSchema* schema = nullptr;
    std::uint64_t watch_id = 0;
  };
  std::map<std::string, BoundStore> object_stores_;
  std::map<std::string, de::LogPool*> log_pools_;
  bool running_ = false;
};

}  // namespace knactor::core
