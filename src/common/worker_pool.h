// A small barrier-style worker pool: run a batch of independent tasks to
// completion, possibly on several OS threads, and return only when every
// task has finished. This is the mechanism underneath the shard-aware
// scheduler (core::Scheduler): shard-local work runs concurrently between
// deterministic merge barriers, so the pool never needs futures, queues
// that outlive a call, or task priorities.
//
// Determinism contract: callers must only submit batches whose tasks are
// mutually independent (each task touches only its own shard's state).
// Under that contract the observable result of run() is identical for any
// worker count, including the inline single-worker path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace knactor::common {

struct WorkerPoolStats {
  std::uint64_t barriers = 0;  // run() calls that dispatched to threads
  std::uint64_t inline_runs = 0;  // run() calls executed inline
  std::uint64_t tasks = 0;        // total tasks executed
  std::uint64_t epochs = 0;       // run_epoch() calls
  std::uint64_t epoch_tasks = 0;  // tasks executed inside epochs
};

class WorkerPool {
 public:
  /// `workers` is the total parallelism of a barrier (the calling thread
  /// participates, so N workers spawn N-1 threads). Clamped to >= 1.
  explicit WorkerPool(int workers = 1);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int workers() const { return workers_; }
  /// Re-sizes the pool (joins and re-spawns threads). Must not be called
  /// from inside a running task.
  void set_workers(int workers);

  /// Runs every task to completion (a barrier). With one worker — or one
  /// task — tasks run inline on the calling thread in index order.
  void run(const std::vector<std::function<void()>>& tasks);

  /// Runs one epoch of per-shard queues: queue `i` holds shard i's tasks in
  /// commit order, a worker claims a whole queue and drains it in-order, and
  /// the call returns once every queue is empty. Unlike per-task run(), an
  /// epoch pays exactly one wakeup + one join for the whole batch, so the
  /// per-commit synchronization cost amortizes across the epoch. Ordering
  /// guarantee: within a queue, tasks run sequentially in index order on a
  /// single worker; across queues there is no ordering (callers merge
  /// deterministically afterwards).
  void run_epoch(const std::vector<std::vector<std::function<void()>>>& queues);

  [[nodiscard]] const WorkerPoolStats& stats() const { return stats_; }

 private:
  void spawn();
  void join_all();
  void worker_loop();
  /// Claims and runs tasks from `batch` until it is exhausted.
  void drain_batch(const std::vector<std::function<void()>>* batch);
  /// The threaded barrier core shared by run() and run_epoch(): publishes
  /// `tasks`, participates in the drain, and waits for full completion.
  void dispatch(const std::vector<std::function<void()>>& tasks);

  int workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::vector<std::function<void()>>* batch_ = nullptr;
  std::atomic<std::size_t> next_task_{0};
  std::atomic<std::size_t> remaining_{0};
  int draining_ = 0;  // workers currently holding the batch pointer
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  WorkerPoolStats stats_;
};

}  // namespace knactor::common
