#!/bin/sh
# Formatting gate for src/analysis/ — the first directory held to
# .clang-format. Checks only; never rewrites. Exits 0 with a notice when
# clang-format is not installed (the CI image may not ship it).
#
# Usage: tools/check_format.sh [clang-format-binary]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
clang_format=${1:-clang-format}

if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "check_format: $clang_format not installed; skipping (format gate is advisory here)"
  exit 0
fi

fail=0
for f in "$repo_root"/src/analysis/*.h "$repo_root"/src/analysis/*.cpp; do
  if ! "$clang_format" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "check_format: $f needs clang-format" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "check_format: OK"
fi
exit "$fail"
