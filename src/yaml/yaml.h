// YAML-subset parser producing common::Value. Covers the subset used by
// Knactor artifacts (Fig. 5 schemas, Fig. 6 DXG specs, app configs):
//
//   * block mappings and sequences with indentation
//   * nested structures, compact "- key: value" sequence entries
//   * plain / single-quoted / double-quoted scalars
//   * folded (>) and literal (|) block scalars
//   * flow sequences [a, b] and flow mappings {a: 1}
//   * comments, including trailing comments captured per-node (the schema
//     registry reads "+kr:" annotations from these)
//   * scalar typing: null, bool, int, float, string
//
// Not covered (not needed by the artifacts): anchors/aliases, tags, multi-
// document streams, complex keys.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"

namespace knactor::yaml {

/// 1-based source position of a node in the parsed text.
struct Pos {
  int line = 0;  // 0 = unknown
  int col = 0;
};

/// A parsed document: the root value plus trailing comments keyed by
/// node path ("/"-joined keys; sequence elements use their index).
struct Document {
  common::Value root;
  /// e.g. {"shippingCost": "+kr: external"} for Fig. 5-style schemas.
  std::map<std::string, std::string> comments;
  /// Source position of each node, keyed like `comments` (mapping entries
  /// point at their key, sequence entries at the '-'). The static analyzer
  /// (src/analysis) uses these to locate diagnostics in spec files.
  std::map<std::string, Pos> positions;
};

/// Parses a YAML document. Returns a parse error with line number on
/// malformed input.
common::Result<common::Value> parse(std::string_view text);

/// Parses and also captures trailing comments per node path.
common::Result<Document> parse_document(std::string_view text);

/// Serializes a Value to block-style YAML (used by artifact generation and
/// round-trip tests).
std::string dump(const common::Value& v);

}  // namespace knactor::yaml
