#include "core/bridge.h"

#include "common/logging.h"
#include "common/strings.h"

namespace knactor::core {

using common::Error;
using common::Result;
using common::Status;
using common::Value;

// ---------------------------------------------------------------------------
// Ingress.
// ---------------------------------------------------------------------------

RpcIngressBridge::RpcIngressBridge(net::SimNetwork& network, std::string node,
                                   const net::SchemaPool& pool,
                                   de::ObjectStore& store)
    : network_(network), node_(std::move(node)), store_(store) {
  server_ = std::make_unique<net::RpcServer>(network_, node_, pool);
}

RpcIngressBridge::~RpcIngressBridge() = default;

Status RpcIngressBridge::expose(const net::ServiceDescriptor& service,
                                std::map<std::string, MethodBinding> bindings,
                                net::RpcRegistry& registry) {
  for (const auto& method : service.methods) {
    if (bindings.find(method.name) == bindings.end()) {
      return Error::invalid_argument("ingress-bridge: no binding for method '" +
                                     method.name + "'");
    }
  }
  KN_TRY(server_->add_service(service, registry));

  for (const auto& method : service.methods) {
    MethodBinding binding = bindings[method.name];
    std::string method_name = method.name;
    KN_TRY(server_->add_handler(
        service.name, method_name,
        [this, binding, method_name](const Value& request,
                                     net::RpcServer::Respond respond) {
          // Materialize the call as a state object the knactor can see.
          std::string key =
              binding.key_prefix + std::to_string(next_call_++);
          Value object = request;
          object.set("method", Value(method_name));

          // Reply once the response field shows up.
          auto watch_id = std::make_shared<std::uint64_t>(0);
          auto done = std::make_shared<bool>(false);
          *watch_id = store_.watch(
              principal(), key,
              [this, key, binding, respond, watch_id,
               done](const de::WatchEvent& event) {
                if (*done || event.object.key != key ||
                    event.type == de::WatchEventType::kDeleted ||
                    !event.object.data) {
                  return;
                }
                const Value* response =
                    event.object.data->get(binding.response_field);
                if (response == nullptr || response->is_null()) return;
                *done = true;
                ++bridged_;
                store_.unwatch(*watch_id);
                Value reply = *response;
                // Clean the request object up (fire and forget).
                store_.remove(principal(), key, [](Status) {});
                respond(std::move(reply));
              });
          if (*watch_id == 0) {
            respond(Error::permission_denied(
                "ingress-bridge: watch denied on store"));
            return;
          }
          if (binding.timeout > 0) {
            network_.clock().schedule_after(
                binding.timeout, [this, respond, watch_id, done]() {
                  if (*done) return;
                  *done = true;
                  store_.unwatch(*watch_id);
                  respond(Error::unavailable(
                      "ingress-bridge: service did not respond"));
                });
          }
          store_.put(principal(), key, std::move(object),
                     [respond, done](Result<std::uint64_t> r) {
                       if (!r.ok() && !*done) {
                         respond(r.error());
                       }
                     });
        }));
  }
  return Status::success();
}

// ---------------------------------------------------------------------------
// Egress.
// ---------------------------------------------------------------------------

RpcEgressBridge::RpcEgressBridge(net::SimNetwork& network, std::string node,
                                 const net::RpcRegistry& registry,
                                 const net::SchemaPool& pool,
                                 de::ObjectStore& store,
                                 net::ServiceDescriptor stub, Options options)
    : store_(store),
      stub_(std::move(stub)),
      options_(std::move(options)),
      node_(std::move(node)) {
  channel_ = std::make_unique<net::RpcChannel>(network, node_, registry, pool);
}

Status RpcEgressBridge::start() {
  if (watch_id_ != 0) return Status::success();
  de::SubscriptionSpec spec;
  spec.prefix = options_.key_prefix;
  spec.filter = options_.filter;
  spec.qos = options_.qos;
  if (spec.qos.window == 0) spec.qos.window = options_.batch_window;
  if (spec.qos.window > 0) {
    auto sub = store_.subscribe_batch(principal(), std::move(spec),
                                      [this](const de::WatchBatch& batch) {
                                        ++batches_;
                                        for (const auto& event :
                                             batch.events) {
                                          on_event(event);
                                        }
                                      });
    KN_ASSIGN_OR_RETURN(watch_id_, std::move(sub));
  } else {
    auto sub = store_.subscribe(principal(), std::move(spec),
                                [this](const de::WatchEvent& event) {
                                  on_event(event);
                                });
    KN_ASSIGN_OR_RETURN(watch_id_, std::move(sub));
  }
  return Status::success();
}

void RpcEgressBridge::stop() {
  if (watch_id_ != 0) {
    // Drain: a window still buffering when the bridge stops is delivered
    // synchronously (the pending requests get their RPCs issued) rather
    // than silently dropped.
    store_.unsubscribe(watch_id_, /*drain=*/true);
    watch_id_ = 0;
  }
}

void RpcEgressBridge::on_event(const de::WatchEvent& event) {
  if (event.type == de::WatchEventType::kDeleted || !event.object.data) {
    return;
  }
  const Value& data = *event.object.data;
  if (data.get(options_.response_field) != nullptr) return;  // answered
  if (data.get("bridge_error") != nullptr) return;           // failed before

  // Determine the method.
  std::string method = options_.method;
  if (method.empty()) {
    const Value* m = data.get("method");
    if (m == nullptr || !m->is_string()) {
      KN_WARN << "egress-bridge: request object " << event.object.key
              << " has no method";
      return;
    }
    method = m->as_string();
  }
  const net::MethodDescriptor* mdesc = stub_.method(method);
  if (mdesc == nullptr) {
    KN_WARN << "egress-bridge: method '" << method << "' not in stub";
    return;
  }

  // The request payload is the object minus bridge bookkeeping fields.
  Value request = Value::object();
  for (const auto& [k, v] : data.as_object()) {
    if (k == "method" || k == options_.response_field || k == "bridge_error") {
      continue;
    }
    request.set(k, v);
  }
  ++issued_;
  std::string key = event.object.key;
  // Causal propagation: the response patch inherits the request write's
  // trace, and (when tracing) the whole RPC round trip is one span.
  const TraceContext req_ctx = event.ctx;
  const std::uint64_t req_version = event.object.version;
  common::SharedValue req_data = event.object.data;
  std::uint64_t span = 0;
  if (options_.tracer != nullptr) {
    span = options_.tracer->begin("bridge.call." + method,
                                  req_ctx.parent_span);
    options_.tracer->annotate(span, "stage", "I-S");
    if (req_ctx.active()) {
      options_.tracer->annotate(span, "trace",
                                std::to_string(req_ctx.trace_id));
    }
  }
  channel_->call(
      stub_, method, std::move(request),
      [this, key, req_ctx, req_version, req_data,
       span](Result<Value> response) {
        Value patch = Value::object();
        if (response.ok()) {
          patch.set(options_.response_field, response.take());
        } else {
          patch.set("bridge_error", Value(response.error().to_string()));
        }
        auto& kernel = store_.exchange().kernel();
        TraceContext write_ctx;
        write_ctx.trace_id = req_ctx.trace_id;
        write_ctx.parent_span = span != 0 ? span : req_ctx.parent_span;
        kernel.set_trace_context(write_ctx);
        store_.patch(
            principal(), key, std::move(patch),
            [this, key, req_version, req_data, write_ctx,
             span](Result<std::uint64_t> r) {
              if (!r.ok()) {
                KN_WARN << "egress-bridge: patch failed: "
                        << r.error().to_string();
              } else {
                auto& ring = store_.exchange().kernel().provenance();
                if (ring.enabled()) {
                  LineageRecord rec;
                  rec.output.store = store_.name();
                  rec.output.key = key;
                  rec.output.version = r.value();
                  // Byte-exact payload at the committed version (the live
                  // object may already have moved on).
                  if (const LineageRecord* committed =
                          ring.find(store_.name(), key, r.value());
                      committed != nullptr) {
                    rec.output.data = committed->output.data;
                  } else if (const de::StateObject* obj = store_.peek(key);
                             obj != nullptr) {
                    rec.output.data = obj->data;
                  }
                  rec.inputs.push_back(
                      {store_.name(), key, req_version, req_data});
                  rec.op = "bridge:" + node_;
                  rec.stage = "I-S";
                  rec.trace_id = write_ctx.trace_id;
                  rec.span_id = span;
                  rec.time = store_.exchange().clock().now();
                  ring.record(std::move(rec));
                }
              }
              if (options_.tracer != nullptr && span != 0) {
                options_.tracer->end(span);
              }
            });
        kernel.clear_trace_context();
      });
}

}  // namespace knactor::core
