#include "apps/retail_rpc.h"

#include "common/logging.h"

namespace knactor::apps {

using common::Error;
using common::Result;
using common::Value;
using net::FieldDescriptor;
using net::FieldType;
using net::MessageDescriptor;
using net::MethodDescriptor;
using net::RpcChannel;
using net::RpcServer;
using net::ServiceDescriptor;

namespace {

constexpr const char* kNs = "OnlineRetail.v1.";

MessageDescriptor msg(const std::string& name,
                      std::vector<FieldDescriptor> fields) {
  MessageDescriptor d;
  d.full_name = kNs + name;
  d.fields = std::move(fields);
  return d;
}

}  // namespace

RetailRpcApp::RetailRpcApp(sim::VirtualClock& clock, RetailRpcOptions options)
    : clock_(clock), options_(options) {
  network_ = std::make_unique<net::SimNetwork>(clock_);
  network_->set_default_latency(options_.link);
  define_schemas();
  start_services();
}

void RetailRpcApp::define_schemas() {
  // The message schemas every caller compiles in (the coupling surface).
  auto add = [this](MessageDescriptor d) {
    auto status = pool_.add(std::move(d));
    if (!status.ok()) {
      KN_ERROR << "retail-rpc: schema: " << status.error().to_string();
    }
  };
  add(msg("CartItem", {{1, "name", FieldType::kString, false, "", true},
                       {2, "qty", FieldType::kInt}}));
  add(msg("ShipOrderRequest",
          {{1, "items", FieldType::kString, true},
           {2, "addr", FieldType::kString, false, "", true},
           {3, "method", FieldType::kString}}));
  add(msg("ShipOrderResponse", {{1, "tracking_id", FieldType::kString}}));
  add(msg("GetQuoteRequest", {{1, "items", FieldType::kString, true},
                              {2, "addr", FieldType::kString}}));
  add(msg("GetQuoteResponse", {{1, "price", FieldType::kDouble},
                               {2, "currency", FieldType::kString}}));
  add(msg("ChargeRequest", {{1, "amount", FieldType::kDouble, false, "", true},
                            {2, "currency", FieldType::kString}}));
  add(msg("ChargeResponse", {{1, "id", FieldType::kString}}));
  add(msg("PlaceOrderRequest",
          {{1, "items", FieldType::kMessage, true, kNs + std::string("CartItem")},
           {2, "address", FieldType::kString},
           {3, "cost", FieldType::kDouble},
           {4, "currency", FieldType::kString},
           {5, "email", FieldType::kString}}));
  add(msg("PlaceOrderResponse", {{1, "tracking_id", FieldType::kString},
                                 {2, "payment_id", FieldType::kString}}));
  add(msg("SendConfirmationRequest",
          {{1, "recipient", FieldType::kString},
           {2, "tracking_id", FieldType::kString}}));
  add(msg("SendConfirmationResponse", {{1, "sent", FieldType::kBool}}));
  add(msg("ReserveRequest", {{1, "items", FieldType::kString, true}}));
  add(msg("ReserveResponse", {{1, "ok", FieldType::kBool}}));
  add(msg("ConvertRequest", {{1, "amount", FieldType::kDouble},
                             {2, "from", FieldType::kString},
                             {3, "to", FieldType::kString}}));
  add(msg("ConvertResponse", {{1, "amount", FieldType::kDouble}}));
  add(msg("GetProductRequest", {{1, "name", FieldType::kString}}));
  add(msg("GetProductResponse", {{1, "price", FieldType::kDouble}}));
  add(msg("ListProductsRequest", {}));
  add(msg("ListProductsResponse", {{1, "names", FieldType::kString, true}}));
  add(msg("GetSupportedCurrenciesRequest", {}));
  add(msg("GetSupportedCurrenciesResponse",
          {{1, "codes", FieldType::kString, true}}));
  add(msg("GetCartRequest", {{1, "user_id", FieldType::kString}}));
  add(msg("GetCartResponse",
          {{1, "items", FieldType::kMessage, true, kNs + std::string("CartItem")}}));
  add(msg("AddItemRequest",
          {{1, "user_id", FieldType::kString},
           {2, "item", FieldType::kMessage, false, kNs + std::string("CartItem")}}));
  add(msg("AddItemResponse", {{1, "ok", FieldType::kBool}}));
  add(msg("ListRecommendationsRequest", {{1, "items", FieldType::kString, true}}));
  add(msg("ListRecommendationsResponse",
          {{1, "suggestions", FieldType::kString, true}}));
  add(msg("GetAdsRequest", {{1, "keywords", FieldType::kString, true}}));
  add(msg("GetAdsResponse", {{1, "creative", FieldType::kString}}));
  add(msg("RenderPageRequest", {{1, "user_id", FieldType::kString}}));
  add(msg("RenderPageResponse", {{1, "html", FieldType::kString}}));
}

void RetailRpcApp::start_services() {
  auto method = [](const char* name, const std::string& req,
                   const std::string& resp) {
    return MethodDescriptor{name, kNs + req, kNs + resp};
  };

  struct Def {
    const char* service;
    const char* node;
    std::vector<MethodDescriptor> methods;
  };
  std::vector<Def> defs = {
      {"Shipping", "pod-shipping",
       {method("ShipOrder", "ShipOrderRequest", "ShipOrderResponse"),
        method("GetQuote", "GetQuoteRequest", "GetQuoteResponse")}},
      {"Payment", "pod-payment",
       {method("Charge", "ChargeRequest", "ChargeResponse")}},
      {"Checkout", "pod-checkout",
       {method("PlaceOrder", "PlaceOrderRequest", "PlaceOrderResponse")}},
      {"Email", "pod-email",
       {method("SendConfirmation", "SendConfirmationRequest",
               "SendConfirmationResponse")}},
      {"Inventory", "pod-inventory",
       {method("Reserve", "ReserveRequest", "ReserveResponse")}},
      {"Currency", "pod-currency",
       {method("Convert", "ConvertRequest", "ConvertResponse"),
        method("GetSupportedCurrencies", "GetSupportedCurrenciesRequest",
               "GetSupportedCurrenciesResponse")}},
      {"Catalog", "pod-catalog",
       {method("GetProduct", "GetProductRequest", "GetProductResponse"),
        method("ListProducts", "ListProductsRequest",
               "ListProductsResponse")}},
      {"Cart", "pod-cart",
       {method("GetCart", "GetCartRequest", "GetCartResponse"),
        method("AddItem", "AddItemRequest", "AddItemResponse")}},
      {"Recommendation", "pod-recommendation",
       {method("ListRecommendations", "ListRecommendationsRequest",
               "ListRecommendationsResponse")}},
      {"Ad", "pod-ad", {method("GetAds", "GetAdsRequest", "GetAdsResponse")}},
      {"Frontend", "pod-frontend",
       {method("RenderPage", "RenderPageRequest", "RenderPageResponse")}},
  };

  for (const auto& def : defs) {
    auto server = std::make_unique<RpcServer>(*network_, def.node, pool_);
    ServiceDescriptor sd;
    sd.name = kNs + std::string(def.service);
    sd.methods = def.methods;
    auto added = server->add_service(sd, registry_);
    if (!added.ok()) {
      KN_ERROR << "retail-rpc: " << added.error().to_string();
    }
    services_.push_back(sd);
    servers_.push_back(std::move(server));
  }

  auto find_server = [this, &defs](const char* service) -> RpcServer& {
    for (std::size_t i = 0; i < defs.size(); ++i) {
      if (std::string(defs[i].service) == service) return *servers_[i];
    }
    std::abort();
  };
  auto descriptor = [this](const char* service) -> const ServiceDescriptor& {
    for (const auto& s : services_) {
      if (s.name == kNs + std::string(service)) return s;
    }
    std::abort();
  };

  // Shipping handlers.
  (void)find_server("Shipping")
      .add_handler(kNs + std::string("Shipping"), "GetQuote",
                   [](const Value& req, RpcServer::Respond respond) {
                     const Value* items = req.get("items");
                     double n = items != nullptr && items->is_array()
                                    ? static_cast<double>(items->as_array().size())
                                    : 1.0;
                     Value resp = Value::object();
                     resp.set("price", Value(5.0 + 10.0 * n));
                     resp.set("currency", Value("USD"));
                     respond(std::move(resp));
                   });
  (void)find_server("Shipping")
      .add_handler(
          kNs + std::string("Shipping"), "ShipOrder",
          [this](const Value& req, RpcServer::Respond respond) {
            (void)req;
            timings_.ship_handler_start = clock_.now();
            clock_.schedule_after(
                options_.shipment_processing.sample(rng_),
                [this, respond]() {
                  timings_.ship_handler_end = clock_.now();
                  Value resp = Value::object();
                  resp.set("tracking_id",
                           Value("track-" + std::to_string(++tracking_seq_)));
                  respond(std::move(resp));
                });
          });
  // Payment handler.
  (void)find_server("Payment")
      .add_handler(kNs + std::string("Payment"), "Charge",
                   [this](const Value& req, RpcServer::Respond respond) {
                     (void)req;
                     clock_.schedule_after(
                         options_.payment_processing.sample(rng_),
                         [this, respond]() {
                           Value resp = Value::object();
                           resp.set("id", Value("pay-" + std::to_string(
                                                             ++payment_seq_)));
                           respond(std::move(resp));
                         });
                   });
  // Side services.
  (void)find_server("Email").add_handler(
      kNs + std::string("Email"), "SendConfirmation",
      [](const Value&, RpcServer::Respond respond) {
        Value resp = Value::object();
        resp.set("sent", Value(true));
        respond(std::move(resp));
      });
  (void)find_server("Inventory")
      .add_handler(kNs + std::string("Inventory"), "Reserve",
                   [](const Value&, RpcServer::Respond respond) {
                     Value resp = Value::object();
                     resp.set("ok", Value(true));
                     respond(std::move(resp));
                   });
  (void)find_server("Currency")
      .add_handler(kNs + std::string("Currency"), "Convert",
                   [](const Value& req, RpcServer::Respond respond) {
                     const Value* amount = req.get("amount");
                     Value resp = Value::object();
                     resp.set("amount", amount != nullptr ? *amount : Value(0.0));
                     respond(std::move(resp));
                   });
  (void)find_server("Currency")
      .add_handler(kNs + std::string("Currency"), "GetSupportedCurrencies",
                   [](const Value&, RpcServer::Respond respond) {
                     Value resp = Value::object();
                     resp.set("codes",
                              Value(Value::Array{Value("USD"), Value("EUR"),
                                                 Value("GBP")}));
                     respond(std::move(resp));
                   });
  (void)find_server("Catalog")
      .add_handler(kNs + std::string("Catalog"), "ListProducts",
                   [](const Value&, RpcServer::Respond respond) {
                     Value resp = Value::object();
                     resp.set("names",
                              Value(Value::Array{Value("keyboard"),
                                                 Value("mouse")}));
                     respond(std::move(resp));
                   });
  (void)find_server("Catalog")
      .add_handler(kNs + std::string("Catalog"), "GetProduct",
                   [](const Value&, RpcServer::Respond respond) {
                     Value resp = Value::object();
                     resp.set("price", Value(45.0));
                     respond(std::move(resp));
                   });
  (void)find_server("Cart").add_handler(
      kNs + std::string("Cart"), "GetCart",
      [](const Value&, RpcServer::Respond respond) {
        respond(Value::object());
      });
  (void)find_server("Cart").add_handler(
      kNs + std::string("Cart"), "AddItem",
      [](const Value&, RpcServer::Respond respond) {
        Value resp = Value::object();
        resp.set("ok", Value(true));
        respond(std::move(resp));
      });
  (void)find_server("Recommendation")
      .add_handler(kNs + std::string("Recommendation"), "ListRecommendations",
                   [](const Value& req, RpcServer::Respond respond) {
                     Value resp = Value::object();
                     Value::Array suggestions;
                     const Value* items = req.get("items");
                     if (items != nullptr && items->is_array()) {
                       for (const auto& item : items->as_array()) {
                         if (item.is_string()) {
                           suggestions.emplace_back("like:" + item.as_string());
                         }
                       }
                     }
                     resp.set("suggestions", Value(std::move(suggestions)));
                     respond(std::move(resp));
                   });
  (void)find_server("Ad").add_handler(
      kNs + std::string("Ad"), "GetAds",
      [](const Value&, RpcServer::Respond respond) {
        Value resp = Value::object();
        resp.set("creative", Value("generic-banner"));
        respond(std::move(resp));
      });
  (void)find_server("Frontend")
      .add_handler(kNs + std::string("Frontend"), "RenderPage",
                   [](const Value&, RpcServer::Respond respond) {
                     Value resp = Value::object();
                     resp.set("html", Value("<html/>"));
                     respond(std::move(resp));
                   });

  // Checkout: the composition logic lives here, as client calls — the
  // scattered, coupled form the paper critiques. Checkout's channel is its
  // pod's client side.
  channels_.push_back(std::make_unique<RpcChannel>(*network_, "pod-checkout",
                                                   registry_, pool_));
  channels_.push_back(std::make_unique<RpcChannel>(*network_, "pod-loadgen",
                                                   registry_, pool_));
  (void)find_server("Checkout")
      .add_handler(
          kNs + std::string("Checkout"), "PlaceOrder",
          [this, descriptor](const Value& req, RpcServer::Respond respond) {
            RpcChannel& ch = *channels_[0];
            const Value* cost = req.get("cost");
            const Value* currency = req.get("currency");
            const Value* email = req.get("email");
            const Value* address = req.get("address");
            const Value* items = req.get("items");
            Value::Array names;
            if (items != nullptr && items->is_array()) {
              for (const auto& item : items->as_array()) {
                const Value* name = item.get("name");
                if (name != nullptr) names.push_back(*name);
              }
            }

            // 1. Charge payment.
            Value charge = Value::object();
            charge.set("amount", cost != nullptr ? *cost : Value(0.0));
            charge.set("currency",
                       currency != nullptr ? *currency : Value("USD"));
            auto names_copy = names;
            ch.call(
                descriptor("Payment"), "Charge", std::move(charge),
                [this, respond, descriptor, names = std::move(names_copy),
                 cost = cost != nullptr ? *cost : Value(0.0),
                 address = address != nullptr ? *address : Value(""),
                 email = email != nullptr ? *email : Value("")](
                    Result<Value> charged) mutable {
                  if (!charged.ok()) {
                    respond(charged.error());
                    return;
                  }
                  std::string payment_id =
                      charged.value().get("id")->as_string();
                  RpcChannel& ch = *channels_[0];
                  // 2. Quote, then ship.
                  Value quote_req = Value::object();
                  quote_req.set("items", Value(names));
                  quote_req.set("addr", address);
                  ch.call(
                      descriptor("Shipping"), "GetQuote", std::move(quote_req),
                      [this, respond, descriptor, names = std::move(names),
                       cost, address, email,
                       payment_id](Result<Value> quoted) mutable {
                        if (!quoted.ok()) {
                          respond(quoted.error());
                          return;
                        }
                        RpcChannel& ch = *channels_[0];
                        Value ship = Value::object();
                        ship.set("items", Value(names));
                        ship.set("addr", address);
                        ship.set("method",
                                 Value(cost.as_number() > 1000 ? "air"
                                                               : "ground"));
                        timings_.ship_request_sent = clock_.now();
                        ch.call(
                            descriptor("Shipping"), "ShipOrder",
                            std::move(ship),
                            [this, respond, descriptor, names, email,
                             payment_id](Result<Value> shipped) mutable {
                              timings_.ship_response_recv = clock_.now();
                              if (!shipped.ok()) {
                                respond(shipped.error());
                                return;
                              }
                              std::string tracking =
                                  shipped.value().get("tracking_id")->as_string();
                              RpcChannel& ch = *channels_[0];
                              // 3. Side calls: email, inventory,
                              // recommendations, ads (fire and forget).
                              Value confirm = Value::object();
                              confirm.set("recipient", email);
                              confirm.set("tracking_id", Value(tracking));
                              ch.call(descriptor("Email"), "SendConfirmation",
                                      std::move(confirm), [](Result<Value>) {});
                              Value reserve = Value::object();
                              reserve.set("items", Value(names));
                              ch.call(descriptor("Inventory"), "Reserve",
                                      std::move(reserve), [](Result<Value>) {});
                              Value recs = Value::object();
                              recs.set("items", Value(names));
                              ch.call(descriptor("Recommendation"),
                                      "ListRecommendations", std::move(recs),
                                      [](Result<Value>) {});
                              Value ads = Value::object();
                              ads.set("keywords", Value(names));
                              ch.call(descriptor("Ad"), "GetAds",
                                      std::move(ads), [](Result<Value>) {});

                              Value resp = Value::object();
                              resp.set("tracking_id", Value(tracking));
                              resp.set("payment_id", Value(payment_id));
                              respond(std::move(resp));
                            });
                      });
                });
          });
}

Result<std::string> RetailRpcApp::place_order_sync(
    double cost, std::vector<std::string> items) {
  Value::Array lines;
  for (const auto& name : items) {
    Value line = Value::object();
    line.set("name", Value(name));
    line.set("qty", Value(1));
    lines.push_back(std::move(line));
  }
  Value req = Value::object();
  req.set("items", Value(std::move(lines)));
  req.set("address", Value("1 Market St, San Francisco, CA"));
  req.set("cost", Value(cost));
  req.set("currency", Value("USD"));
  req.set("email", Value("user-1@example.com"));

  ServiceDescriptor checkout;
  for (const auto& s : services_) {
    if (s.name == kNs + std::string("Checkout")) checkout = s;
  }
  RpcChannel& loadgen = *channels_[1];
  KN_ASSIGN_OR_RETURN(Value resp,
                      loadgen.call_sync(checkout, "PlaceOrder", std::move(req)));
  const Value* tracking = resp.get("tracking_id");
  if (tracking == nullptr || !tracking->is_string()) {
    return Error::internal("retail-rpc: no tracking id in response");
  }
  // Drain side calls.
  clock_.run_all();
  return tracking->as_string();
}

void RetailRpcApp::configure_channels(sim::SimTime timeout,
                                      sim::RetryPolicy retry) {
  for (auto& ch : channels_) {
    ch->set_timeout(timeout);
    ch->set_retry_policy(retry);
  }
}

net::RpcChannel::Stats RetailRpcApp::channel_stats() const {
  net::RpcChannel::Stats total;
  for (const auto& ch : channels_) {
    total.calls += ch->stats().calls;
    total.retries += ch->stats().retries;
    total.timeouts += ch->stats().timeouts;
    total.failures += ch->stats().failures;
  }
  return total;
}

std::size_t RetailRpcApp::method_count() const {
  std::size_t n = 0;
  for (const auto& s : services_) n += s.methods.size();
  return n;
}

std::size_t RetailRpcApp::service_count() const { return services_.size(); }

}  // namespace knactor::apps
