// AST for the DXG expression language.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"

namespace knactor::expr {

struct Node;
using NodePtr = std::unique_ptr<Node>;

enum class NodeKind {
  kLiteral,    // 1000, "air", True, None
  kName,       // C, this, item
  kAttribute,  // base.name
  kIndex,      // base[expr]
  kCall,       // callee(args...)  — callee is a Name (function registry)
  kUnary,      // -x, +x, not x
  kBinary,     // + - * / % // ** and or == != < <= > >= in "not in"
  kTernary,    // a if cond else b
  kList,       // [a, b, c]
  kDict,       // {"k": v}
  kListComp,   // [expr for var in iter if cond]
};

struct Node {
  NodeKind kind;

  // kLiteral
  common::Value literal;

  // kName / kAttribute(name) / kCall(function name) / kListComp(loop var)
  std::string name;

  // kAttribute/kIndex base; kUnary operand; kTernary condition;
  // kListComp iterable.
  NodePtr a;
  // kIndex subscript; kBinary rhs (lhs in a); kTernary then; kListComp body.
  NodePtr b;
  // kTernary else; kListComp filter (optional).
  NodePtr c;

  // kBinary operator spelling ("+", "and", "in", "not in", ...);
  // kUnary operator ("-", "+", "not").
  std::string op;

  // kCall arguments; kList elements; kDict values (keys in dict_keys).
  std::vector<NodePtr> args;
  std::vector<std::string> dict_keys;

  // Source position of the construct within the expression text (byte
  // offset plus 1-based line/col), threaded from the lexer so static
  // analysis can point at the offending subexpression. Operator nodes
  // carry the position of their leftmost operand.
  std::size_t offset = 0;
  int line = 1;
  int col = 1;

  explicit Node(NodeKind k) : kind(k) {}
};

/// Pretty-prints an AST back to (normalized) expression text. Used by
/// error messages, the DXG analyzer output, and UDF push-down compilation.
std::string to_string(const Node& node);

/// Collects every root-relative data reference in the expression, e.g.
/// "C.order.items", "S.quote.price", "this.currency". References through
/// comprehension loop variables are reported against the iterable's root
/// (item.name over C.order.items contributes "C.order.items"). References
/// rooted at "this" are included; the DXG layer rewrites them against the
/// target store. Call names are not references.
std::vector<std::string> collect_refs(const Node& node);

}  // namespace knactor::expr
