// The unified subscription layer (de/subscription.h): content filters
// and projections compiled through the fused query planner, per-subscriber
// QoS (window, history depth), the kernel's subscription registry, and —
// the satellite regression this suite pins down — unsubscribe racing a
// pending coalesced flush resolving deterministically (drain or drop,
// never a dangling slot or a late delivery).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "de/log.h"
#include "de/object.h"
#include "de/subscription.h"
#include "sim/clock.h"

namespace knactor::de {
namespace {

using common::Value;

constexpr sim::SimTime kWindow = 10 * sim::kMillisecond;

class SubscriptionTest : public ::testing::Test {
 protected:
  SubscriptionTest() : de_(clock_, ObjectDeProfile::instant()) {
    store_ = &de_.create_store("things");
  }

  Value obj(int n) {
    Value v = Value::object();
    v.set("n", Value(static_cast<std::int64_t>(n)));
    v.set("tag", Value("t"));
    return v;
  }

  SubscriptionSpec filtered(const std::string& filter) {
    SubscriptionSpec spec;
    spec.filter = filter;
    return spec;
  }

  sim::VirtualClock clock_;
  ObjectDe de_;
  ObjectStore* store_ = nullptr;
  std::vector<WatchEvent> events_;
  std::vector<WatchBatch> batches_;
};

TEST_F(SubscriptionTest, FilterDeliversOnlyMatchingCommits) {
  auto id = store_->subscribe(
      "svc", filtered("n > 5"),
      [this](const WatchEvent& e) { events_.push_back(e); });
  ASSERT_TRUE(id.ok());
  (void)store_->put_sync("svc", "low", obj(3));
  (void)store_->put_sync("svc", "high", obj(7));
  clock_.run_all();

  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0].object.key, "high");
  EXPECT_EQ(de_.stats().watch_events_filtered, 1u);
  const auto* info = de_.kernel().find_subscription(id.value());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->matched, 2u);
  EXPECT_EQ(info->filtered, 1u);
  EXPECT_EQ(info->delivered, 1u);
  EXPECT_DOUBLE_EQ(info->selectivity(), 0.5);
  EXPECT_EQ(info->filter, "n > 5");
}

TEST_F(SubscriptionTest, ProjectionRewritesDeliveredPayload) {
  SubscriptionSpec spec;
  spec.project = {"n"};
  auto id = store_->subscribe(
      "svc", spec, [this](const WatchEvent& e) { events_.push_back(e); });
  ASSERT_TRUE(id.ok());
  (void)store_->put_sync("svc", "k", obj(1));
  clock_.run_all();

  ASSERT_EQ(events_.size(), 1u);
  EXPECT_NE(events_[0].object.data->get("n"), nullptr);
  EXPECT_EQ(events_[0].object.data->get("tag"), nullptr);
  // The stored object keeps every field — only the delivery is projected.
  auto stored = store_->get_sync("svc", "k");
  ASSERT_TRUE(stored.ok());
  EXPECT_NE(stored.value().data->get("tag"), nullptr);
}

TEST_F(SubscriptionTest, ErroringPredicateNeverMatches) {
  // `missing` is absent from every payload, so the comparison errors;
  // an erroring predicate deterministically rejects the commit.
  auto id = store_->subscribe(
      "svc", filtered("missing > 5"),
      [this](const WatchEvent& e) { events_.push_back(e); });
  ASSERT_TRUE(id.ok());
  (void)store_->put_sync("svc", "k", obj(9));
  clock_.run_all();

  EXPECT_TRUE(events_.empty());
  EXPECT_EQ(de_.stats().watch_events_filtered, 1u);
}

TEST_F(SubscriptionTest, BadFilterFailsAtSubscribeTime) {
  auto id = store_->subscribe("svc", filtered("n >"),
                              [](const WatchEvent&) {});
  EXPECT_FALSE(id.ok());
}

TEST_F(SubscriptionTest, HistoryDepthCapsDeliveredBatch) {
  SubscriptionSpec spec;
  spec.filter = "n >= 0";
  spec.qos.window = kWindow;
  spec.qos.history_depth = 2;
  auto id = store_->subscribe_batch(
      "svc", spec, [this](const WatchBatch& b) { batches_.push_back(b); });
  ASSERT_TRUE(id.ok());
  (void)store_->put_sync("svc", "a", obj(1));
  (void)store_->put_sync("svc", "b", obj(2));
  (void)store_->put_sync("svc", "c", obj(3));
  (void)store_->put_sync("svc", "d", obj(4));
  clock_.run_all();

  ASSERT_EQ(batches_.size(), 1u);
  // KEEP_LAST semantics: the newest `history_depth` slots survive, the
  // oldest are dropped deterministically and accounted.
  ASSERT_EQ(batches_[0].events.size(), 2u);
  EXPECT_EQ(batches_[0].events[0].object.key, "c");
  EXPECT_EQ(batches_[0].events[1].object.key, "d");
  EXPECT_EQ(de_.stats().watch_events_dropped, 2u);
  const auto* info = de_.kernel().find_subscription(id.value());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->dropped, 2u);
}

// Satellite regression: unsubscribe while a coalescing window is still
// open. drain=true must deliver the pending buffer synchronously (same
// order a flush would have produced); the already-scheduled flush must
// then find nothing and no-op.
TEST_F(SubscriptionTest, UnsubscribeDrainDeliversPendingWindow) {
  SubscriptionSpec spec;
  spec.qos.window = kWindow;
  auto id = store_->subscribe_batch(
      "svc", spec, [this](const WatchBatch& b) { batches_.push_back(b); });
  ASSERT_TRUE(id.ok());
  (void)store_->put_sync("svc", "a", obj(1));
  (void)store_->put_sync("svc", "b", obj(2));
  ASSERT_TRUE(batches_.empty());  // window still open

  store_->unsubscribe(id.value(), /*drain=*/true);
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0].events.size(), 2u);
  EXPECT_EQ(de_.kernel().find_subscription(id.value()), nullptr);

  clock_.run_all();  // the orphaned flush timer fires and must no-op
  EXPECT_EQ(batches_.size(), 1u);
  EXPECT_EQ(de_.stats().watch_events_dropped, 0u);
}

TEST_F(SubscriptionTest, UnsubscribeDropCountsPendingSlots) {
  SubscriptionSpec spec;
  spec.qos.window = kWindow;
  auto id = store_->subscribe_batch(
      "svc", spec, [this](const WatchBatch& b) { batches_.push_back(b); });
  ASSERT_TRUE(id.ok());
  (void)store_->put_sync("svc", "a", obj(1));
  (void)store_->put_sync("svc", "b", obj(2));

  store_->unsubscribe(id.value(), /*drain=*/false);
  clock_.run_all();
  EXPECT_TRUE(batches_.empty());
  EXPECT_EQ(de_.stats().watch_events_dropped, 2u);
}

// The legacy wrapper keeps its historical drop semantics, and the race it
// used to lose — unwatch between the flush being scheduled and firing —
// now resolves to "no delivery, no dangling coalesce slot".
TEST_F(SubscriptionTest, UnwatchRacingPendingFlushIsDeterministic) {
  std::uint64_t id = store_->watch_batch(
      "svc", "", kWindow,
      [this](const WatchBatch& b) { batches_.push_back(b); });
  ASSERT_NE(id, 0u);
  (void)store_->put_sync("svc", "a", obj(1));
  store_->unwatch(id);
  clock_.run_all();

  EXPECT_TRUE(batches_.empty());
  EXPECT_EQ(de_.stats().watch_events_dropped, 1u);
  // Re-subscribing reuses nothing from the dead buffer.
  std::uint64_t id2 = store_->watch_batch(
      "svc", "", kWindow,
      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "b", obj(2));
  clock_.run_all();
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0].events.size(), 1u);
  (void)id2;
}

TEST_F(SubscriptionTest, SubscribeDeniedByRbac) {
  de_.rbac().set_enabled(true);
  auto before = de_.stats().permission_denials;
  auto id = store_->subscribe("nobody", filtered("n > 0"),
                              [](const WatchEvent&) {});
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(de_.stats().permission_denials, before + 1);
}

TEST_F(SubscriptionTest, RegistryListsContractAndUnregisters) {
  SubscriptionSpec spec;
  spec.filter = "n > 0";
  spec.project = {"n"};
  spec.qos.window = kWindow;
  spec.qos.deadline = 50;
  spec.qos.stage = "hot";
  auto id = store_->subscribe_batch("svc", spec, [](const WatchBatch&) {});
  ASSERT_TRUE(id.ok());
  const auto* info = de_.kernel().find_subscription(id.value());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->store, "things");
  EXPECT_EQ(info->principal, "svc");
  EXPECT_TRUE(info->projected);
  EXPECT_TRUE(info->batched);
  EXPECT_EQ(info->deadline, 50);
  EXPECT_EQ(info->stage, "hot");
  store_->unsubscribe(id.value(), /*drain=*/false);
  EXPECT_EQ(de_.kernel().find_subscription(id.value()), nullptr);
}

// Log-pool subscriptions: the same compiled filter/projection surface on
// the append path, delivering synchronously at commit.
class LogSubscriptionTest : public ::testing::Test {
 protected:
  Value record(const char* device, double kwh) {
    Value v = Value::object();
    v.set("device", Value(device));
    v.set("kwh", Value(kwh));
    return v;
  }

  sim::VirtualClock clock_;
  LogDe de_{clock_, LogDeProfile::instant()};
};

TEST_F(LogSubscriptionTest, FilteredRecordCallbacks) {
  LogPool& pool = de_.create_pool("p");
  SubscriptionSpec spec;
  spec.filter = "kwh > 5";
  std::vector<LogRecord> got;
  auto id = pool.subscribe("svc", spec,
                           [&](const LogRecord& r) { got.push_back(r); });
  ASSERT_TRUE(id.ok());
  (void)pool.append_sync("svc", record("a", 2.0));
  (void)pool.append_sync("svc", record("b", 9.0));

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].data->get("device")->as_string(), "b");
  EXPECT_EQ(de_.stats().records_filtered, 1u);
  EXPECT_EQ(de_.stats().sub_deliveries, 1u);
  const auto* info = de_.kernel().find_subscription(id.value());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->matched, 2u);
  EXPECT_EQ(info->filtered, 1u);
}

TEST_F(LogSubscriptionTest, UnsubscribeStopsDelivery) {
  LogPool& pool = de_.create_pool("p");
  std::size_t calls = 0;
  auto id = pool.subscribe("svc", SubscriptionSpec{},
                           [&](const LogRecord&) { ++calls; });
  ASSERT_TRUE(id.ok());
  (void)pool.append_sync("svc", record("a", 1.0));
  EXPECT_EQ(calls, 1u);
  pool.unsubscribe(id.value());
  (void)pool.append_sync("svc", record("b", 2.0));
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(de_.kernel().find_subscription(id.value()), nullptr);
}

}  // namespace
}  // namespace knactor::de
