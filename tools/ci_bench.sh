#!/bin/sh
# CI bench smoke: the hot-path benchmark must produce a well-formed
# BENCH_hotpath.json (every section present, openloop percentiles sane —
# the --check contract), and the virtual-time `openloop` section must be
# same-seed deterministic: two standalone runs of the section have to emit
# byte-identical reports, or the latency tables in EXPERIMENTS.md can't be
# trusted across regenerations.
#
# Usage: tools/ci_bench.sh [path-to-bench_hotpath] [scratch_dir]
# Exit: 0 on success, 1 on any failure.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
bench=${1:-"$repo_root/build/bench/bench_hotpath"}
scratch=${2:-"${TMPDIR:-/tmp}"}

if [ ! -x "$bench" ]; then
  echo "ci_bench: bench_hotpath not found at $bench (build the repo first)" >&2
  exit 1
fi

report="$scratch/ci_bench_smoke.json"
ol_a="$scratch/ci_bench_openloop_a.json"
ol_b="$scratch/ci_bench_openloop_b.json"

echo "== bench_hotpath --smoke =="
if ! "$bench" --smoke --out "$report"; then
  echo "ci_bench: smoke run failed (gate tripped or crash)" >&2
  exit 1
fi

echo "== bench_hotpath --check =="
if ! "$bench" --check "$report"; then
  echo "ci_bench: report failed the well-formedness check" >&2
  exit 1
fi

echo "== openloop same-seed determinism =="
"$bench" --smoke --section openloop --out "$ol_a" > /dev/null
"$bench" --smoke --section openloop --out "$ol_b" > /dev/null
if ! cmp -s "$ol_a" "$ol_b"; then
  echo "ci_bench: two same-seed openloop runs differ byte-for-byte:" >&2
  diff "$ol_a" "$ol_b" >&2 || true
  exit 1
fi

rm -f "$report" "$ol_a" "$ol_b"
echo "ci_bench: OK"
exit 0
