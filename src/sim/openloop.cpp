#include "sim/openloop.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

namespace knactor::sim {

ArrivalSchedule ArrivalSchedule::constant(double rps) {
  ArrivalSchedule s;
  s.kind = Kind::kConstant;
  s.start_rps = rps;
  s.end_rps = rps;
  return s;
}

ArrivalSchedule ArrivalSchedule::ramp(double start_rps, double end_rps) {
  ArrivalSchedule s;
  s.kind = Kind::kRamp;
  s.start_rps = start_rps;
  s.end_rps = end_rps;
  return s;
}

ArrivalSchedule ArrivalSchedule::step(double start_rps, double end_rps,
                                      double at) {
  ArrivalSchedule s;
  s.kind = Kind::kStep;
  s.start_rps = start_rps;
  s.end_rps = end_rps;
  s.step_at = at;
  return s;
}

double ArrivalSchedule::rate_at(double f) const {
  switch (kind) {
    case Kind::kConstant:
      return start_rps;
    case Kind::kRamp:
      return start_rps + (end_rps - start_rps) * f;
    case Kind::kStep:
      return f < step_at ? start_rps : end_rps;
  }
  return start_rps;
}

const char* ArrivalSchedule::kind_name() const {
  switch (kind) {
    case Kind::kConstant:
      return "constant";
    case Kind::kRamp:
      return "ramp";
    case Kind::kStep:
      return "step";
  }
  return "constant";
}

OpenLoopRunner::RunResult OpenLoopRunner::run(VirtualClock& clock,
                                              const Options& opts,
                                              const Service& service) {
  // Shared mutable state across the scheduled arrival/completion
  // callbacks. Heap-allocated so the closures stay valid while the clock
  // drains; the RunResult is copied out at the end.
  struct State {
    Options opts;
    Service service;
    RunResult result;
    SimTime first_arrival = 0;
    SimTime last_completion = 0;
    std::uint64_t in_flight = 0;
    /// FIFO of arrivals waiting behind the admission gate: (index,
    /// arrival time).
    std::deque<std::pair<std::uint64_t, SimTime>> queue;
    VirtualClock* clock = nullptr;

    void admit(std::uint64_t index, SimTime arrived_at) {
      ++in_flight;
      const SimTime admitted_at = clock->now();
      service(index, [this, arrived_at, admitted_at] {
        const SimTime now = clock->now();
        result.latency.record(now - arrived_at);
        result.service_latency.record(now - admitted_at);
        ++result.completed;
        last_completion = now;
        --in_flight;
        if (!queue.empty()) {
          auto [next_index, next_arrived] = queue.front();
          queue.pop_front();
          admit(next_index, next_arrived);
        }
      });
    }

    void arrive(std::uint64_t index) {
      ++result.issued;
      const SimTime now = clock->now();
      if (result.issued == 1) first_arrival = now;
      if (in_flight < opts.max_in_flight) {
        admit(index, now);
      } else {
        queue.emplace_back(index, now);
        if (queue.size() > result.max_queue_depth) {
          result.max_queue_depth = queue.size();
        }
      }
    }
  };

  auto state = std::make_shared<State>();
  state->opts = opts;
  state->service = service;
  state->clock = &clock;

  // Pre-compute every arrival time by integrating the schedule: request i
  // arrives 1/rate_at(i/total) after request i-1. Doing this up front (as
  // opposed to scheduling arrival i+1 from arrival i's callback) keeps the
  // offered load a pure function of the schedule.
  const std::uint64_t total = opts.total_requests;
  double t_us = 0;
  double rate_sum = 0;
  std::vector<SimTime> arrivals;
  arrivals.reserve(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    const double f =
        total == 0 ? 0.0
                   : static_cast<double>(i) / static_cast<double>(total);
    const double rps = state->opts.schedule.rate_at(f);
    rate_sum += rps;
    arrivals.push_back(clock.now() + static_cast<SimTime>(std::llround(t_us)));
    if (rps > 0) {
      t_us += static_cast<double>(kSecond) / rps;
    }
  }
  for (std::uint64_t i = 0; i < total; ++i) {
    clock.schedule_at(arrivals[i], [state, i] { state->arrive(i); });
  }

  clock.run_all();

  RunResult out = std::move(state->result);
  out.makespan = state->last_completion - state->first_arrival;
  out.offered_rps =
      total == 0 ? 0.0 : rate_sum / static_cast<double>(total);
  out.achieved_rps =
      out.makespan > 0
          ? static_cast<double>(out.completed) *
                static_cast<double>(kSecond) / static_cast<double>(out.makespan)
          : 0.0;
  return out;
}

}  // namespace knactor::sim
