#!/bin/sh
# CI lint smoke: the repo's own specs must be clean under whole-composition
# lint, and the broken fixture must keep reproducing its golden findings.
# Mirrors the `ctest -L lint` script tests for environments that invoke the
# binary directly (pre-merge hooks, release pipelines).
#
# Usage: tools/ci_lint.sh [path/to/knctl]
# Exit: 0 on success, 1 on any lint drift.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
knctl=${1:-"$repo_root/build/tools/knctl"}

if [ ! -x "$knctl" ]; then
  echo "ci_lint: knctl not found at $knctl (build first, or pass a path)" >&2
  exit 1
fi

fail=0

echo "== knctl lint --project specs/ =="
if ! "$knctl" lint --project "$repo_root/specs"; then
  echo "ci_lint: specs/ must lint clean" >&2
  fail=1
fi

echo "== knctl lint --project tests/analysis/fixtures/project_broken =="
cd "$repo_root/tests/analysis/fixtures"
actual=$("$knctl" lint --project project_broken) && rc=0 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "ci_lint: expected exit 1 from the broken fixture, got $rc" >&2
  fail=1
fi
expected=$(cat project_broken.txt)
if [ "$actual" != "$expected" ]; then
  echo "ci_lint: project_broken output drifted from golden:" >&2
  echo "$actual" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "ci_lint: OK"
fi
exit "$fail"
