// Knactor-style online retail app (§4): 11 knactors — frontend, cart,
// catalog, currency, checkout, payment, shipping, email, recommendation,
// ad, inventory — composed by a Cast integrator over an Object DE.
//
// Services never call each other: each reconciler reacts only to its own
// data store. The integrator (configured with the Fig. 6 DXG or the full
// extended DXG) moves state between stores.
#pragma once

#include <string>

#include "core/runtime.h"
#include "sim/latency.h"

namespace knactor::apps {

struct RetailKnactorOptions {
  /// DE profile the app's stores live on.
  de::ObjectDeProfile de_profile = de::ObjectDeProfile::redis();
  /// Use the extended all-service DXG instead of the Fig. 6 three-service
  /// one.
  bool full_dxg = false;
  /// Compile the DXG into a DE-side UDF with triggers (push-down).
  bool pushdown = false;
  /// Integrator compute latency (the Table 2 "I" column).
  sim::LatencyModel integrator_compute = sim::LatencyModel::constant_ms(0.05);
  /// External shipment-processing duration (the Table 2 "S" column; the
  /// paper's FedEx-API stand-in).
  sim::LatencyModel shipment_processing =
      sim::LatencyModel::normal_ms(446.0, 4.0);
  /// Payment-provider processing duration.
  sim::LatencyModel payment_processing = sim::LatencyModel::normal_ms(2.0, 0.2);
  /// Enable RBAC with least-privilege roles for every reconciler and the
  /// integrator.
  bool rbac = false;
  /// Exchange-pass retry policy for the Cast integrator (chaos resilience;
  /// disabled by default).
  sim::RetryPolicy integrator_retry;
  /// Server-side watch-batch window for the Cast integrator (0 = one pass
  /// per watch event; see CastIntegrator::Options::batch_window).
  sim::SimTime batch_window = 0;
  /// Commit each integrator pass's writes through the DE's epoch pipeline
  /// (one put_epoch per target store; see
  /// CastIntegrator::Options::epoch_commit).
  bool epoch_commit = false;
  /// Optional counters sink passed through to the integrator.
  core::Metrics* metrics = nullptr;
  /// Key-space shards for the runtime's DEs (deterministic: observable
  /// behavior is identical for every value; see docs/ARCHITECTURE.md).
  std::size_t shards = 1;
  /// Worker-pool parallelism for shard-local work.
  int workers = 1;
};

/// Handles to the deployed app.
struct RetailKnactorApp {
  core::Runtime* runtime = nullptr;
  de::ObjectDe* de = nullptr;
  core::CastIntegrator* integrator = nullptr;
  de::ObjectStore* checkout_store = nullptr;
  de::ObjectStore* shipping_store = nullptr;
  de::ObjectStore* payment_store = nullptr;
  RetailKnactorOptions options;

  /// Places an order by writing it into the Checkout store (as the
  /// checkout knactor would after a cart checkout), then drives the clock
  /// until the order completes (trackingID present) or the event queue
  /// drains. Returns the final order object.
  common::Result<common::Value> place_order_sync(common::Value order);

  /// Resets per-order state so a fresh order can run (the pipeline is
  /// single-order, like the paper's benchmark).
  void reset_order_state();
};

/// Builds the app into `runtime`. The runtime must outlive the returned
/// handles.
RetailKnactorApp build_retail_knactor_app(core::Runtime& runtime,
                                          RetailKnactorOptions options = {});

/// A representative order: two items, US address, USD.
common::Value sample_order(double cost = 120.0);
/// An expensive order that triggers the air-shipping policy (T2).
common::Value expensive_order();

}  // namespace knactor::apps
