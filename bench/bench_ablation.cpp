// Ablations of the design choices DESIGN.md calls out (§3.3 of the paper):
//   1. DE backend choice      — exchange propagation on apiserver vs redis
//   2. UDF push-down          — client-side pass vs DE-side function
//   3. Zero-copy exchange     — bytes moved per read: deep copy vs shared
//   4. Operator consolidation — fused vs per-operator Sync passes
//   5. Watch-driven vs polling reconciliation — propagation delay vs work
// All latency numbers are virtual-clock milliseconds (deterministic).
#include <cstdio>

#include "apps/retail_fleet.h"
#include "core/cast.h"
#include "core/sync.h"
#include "de/log.h"
#include "de/object.h"
#include "sim/clock.h"

namespace {

using knactor::common::Value;
using knactor::sim::SimTime;
using knactor::sim::to_ms;

Value payload(int fields) {
  Value v = Value::object();
  for (int i = 0; i < fields; ++i) {
    v.set("field" + std::to_string(i), Value("value-" + std::to_string(i)));
  }
  return v;
}

constexpr const char* kCopySpec =
    "Input:\n  A: src\n  B: dst\nDXG:\n  B:\n    copied: A.value\n";

/// Measures one exchange's propagation latency for a profile and mode.
double exchange_latency(const knactor::de::ObjectDeProfile& profile,
                        bool pushdown, knactor::sim::SimTime poll_interval,
                        std::uint64_t seed) {
  using namespace knactor;
  sim::VirtualClock clock;
  de::ObjectDe de(clock, profile, seed);
  de::ObjectStore& src = de.create_store("src-store");
  de::ObjectStore& dst = de.create_store("dst-store");
  auto dxg = core::Dxg::parse(kCopySpec);
  core::CastIntegrator::Options options;
  options.compute = sim::LatencyModel::constant_ms(0.05);
  options.poll_interval = poll_interval;
  core::CastIntegrator cast("ab", de, dxg.take(),
                            {{"A", &src}, {"B", &dst}}, options);
  if (pushdown) {
    if (!cast.enable_pushdown().ok()) return -1;
  }
  if (!cast.start().ok()) return -1;
  clock.run_until(clock.now() + knactor::sim::from_ms(1));

  SimTime t0 = clock.now();
  src.put("svc", "state", Value::object({{"value", 42}}),
          [](knactor::common::Result<std::uint64_t>) {});
  // Drive until the destination holds the value (bounded for polling).
  SimTime deadline = t0 + 10 * sim::kSecond;
  while (clock.now() < deadline) {
    const de::StateObject* obj = dst.peek("state");
    if (obj != nullptr && obj->data && obj->data->get("copied") != nullptr) {
      break;
    }
    if (!clock.step()) {
      if (poll_interval == 0) break;
      clock.advance(poll_interval);
    }
  }
  const de::StateObject* obj = dst.peek("state");
  if (obj == nullptr || !obj->data || obj->data->get("copied") == nullptr) {
    return -1;
  }
  double latency = to_ms(obj->updated_at - t0);
  cast.stop();
  cast.disable_pushdown();
  return latency;
}

void ablation_backend_and_pushdown() {
  using namespace knactor;
  std::printf("1+2. DE backend & push-down: exchange propagation (ms)\n");
  std::printf("   %-28s %10s\n", "configuration", "latency");
  double apiserver =
      exchange_latency(de::ObjectDeProfile::apiserver(), false, 0, 1);
  double redis = exchange_latency(de::ObjectDeProfile::redis(), false, 0, 1);
  double redis_udf =
      exchange_latency(de::ObjectDeProfile::redis(), true, 0, 1);
  std::printf("   %-28s %10.2f\n", "apiserver, watch-driven", apiserver);
  std::printf("   %-28s %10.2f\n", "redis, watch-driven", redis);
  std::printf("   %-28s %10.2f\n", "redis, push-down (UDF)", redis_udf);
  std::printf("   -> in-memory DE: %.1fx faster; push-down: another %.1fx\n\n",
              apiserver / redis, redis / redis_udf);
}

void ablation_zero_copy() {
  using namespace knactor;
  std::printf("3. Zero-copy exchange: bytes materialized per read\n");
  std::printf("   %-12s %14s %14s\n", "object size", "deep copy", "shared");
  for (int fields : {8, 64, 512}) {
    sim::VirtualClock clock;
    de::ObjectDe de(clock, de::ObjectDeProfile::instant());
    de::ObjectStore& store = de.create_store("s");
    (void)store.put_sync("b", "k", payload(fields));

    auto copied = store.get_sync("b", "k");
    std::size_t deep_bytes = copied.value().data_copy().deep_size_bytes();

    knactor::common::SharedValue shared;
    store.get_shared("b", "k",
                     [&](knactor::common::Result<knactor::common::SharedValue> r) {
                       shared = r.take();
                     });
    clock.run_all();
    // The shared path moves a handle, not the buffer.
    std::size_t shared_bytes = sizeof(knactor::common::SharedValue);
    std::printf("   %-12d %12zu B %12zu B\n", fields, deep_bytes,
                shared_bytes);
  }
  std::printf("\n");
}

void ablation_consolidation() {
  using namespace knactor;
  std::printf("4. Operator consolidation: Sync round time (ms)\n");
  std::printf("   %-10s %12s %12s %8s\n", "records", "per-op", "fused",
              "speedup");
  for (int n : {100, 1000, 10000}) {
    auto run = [&](bool consolidate) -> double {
      sim::VirtualClock clock;
      de::LogDe de(clock, de::LogDeProfile::zed());
      de::LogPool& src = de.create_pool("src");
      de::LogPool& dst = de.create_pool("dst");
      std::vector<Value> batch;
      for (int i = 0; i < n; ++i) {
        Value v = Value::object();
        v.set("kwh", Value(0.01 * i));
        v.set("device", Value(i % 2 == 0 ? "lamp" : "heater"));
        batch.push_back(std::move(v));
      }
      (void)src.append_batch_sync("b", std::move(batch));
      core::SyncIntegrator::Options options;
      options.consolidate = consolidate;
      core::SyncIntegrator sync("ab", de, options);
      core::SyncRoute route;
      route.name = "r";
      route.source = &src;
      route.target = &dst;
      route.pipeline.push_back(de::LogOp::filter("kwh > 0.1").value());
      route.pipeline.push_back(de::LogOp::rename({{"kwh", "energy"}}));
      route.pipeline.push_back(de::LogOp::map("e2", "energy * 2").value());
      route.pipeline.push_back(de::LogOp::project({"device", "e2"}));
      (void)sync.add_route(std::move(route));
      SimTime t0 = clock.now();
      (void)sync.run_round_sync();
      return to_ms(clock.now() - t0);
    };
    double per_op = run(false);
    double fused = run(true);
    std::printf("   %-10d %12.2f %12.2f %7.2fx\n", n, per_op, fused,
                per_op / fused);
  }
  std::printf("\n");
}

void ablation_watch_vs_poll() {
  using namespace knactor;
  std::printf("5. Watch-driven vs polling: propagation delay (ms)\n");
  std::printf("   %-24s %12s\n", "mode", "latency");
  double watch = exchange_latency(de::ObjectDeProfile::redis(), false, 0, 2);
  std::printf("   %-24s %12.2f\n", "watch-driven", watch);
  for (double poll_ms : {10.0, 100.0, 1000.0}) {
    double poll = exchange_latency(de::ObjectDeProfile::redis(), false,
                                   sim::from_ms(poll_ms), 2);
    char label[32];
    std::snprintf(label, sizeof(label), "poll every %.0f ms", poll_ms);
    std::printf("   %-24s %12.2f\n", label, poll);
  }
  std::printf("   -> watches propagate immediately; polling adds up to one\n"
              "      interval of staleness per hop.\n\n");
}

void ablation_chain_depth() {
  using namespace knactor;
  // One integrator resolves an N-deep dependency chain in a single pass
  // (mappings see earlier writes within the pass). The interesting scaling
  // is N *independent* integrators — different teams each owning one hop —
  // where each hop pays a full exchange.
  std::printf("6. Composition chain depth (one integrator per hop):\n");
  std::printf("   end-to-end propagation (ms)\n");
  std::printf("   %-10s %10s %10s %14s\n", "hops", "apiserver", "redis",
              "single-cast");
  for (int depth : {1, 2, 4, 8}) {
    auto run = [&](const de::ObjectDeProfile& profile,
                   bool single_integrator) -> double {
      sim::VirtualClock clock;
      de::ObjectDe de(clock, profile, 3);
      std::vector<de::ObjectStore*> stores;
      for (int i = 0; i <= depth; ++i) {
        stores.push_back(&de.create_store("store-" + std::to_string(i)));
      }
      std::vector<std::unique_ptr<core::CastIntegrator>> casts;
      core::CastIntegrator::Options options;
      options.compute = sim::LatencyModel::constant_ms(0.05);
      options.max_rounds_per_event = depth + 2;
      if (single_integrator) {
        std::map<std::string, de::ObjectStore*> bindings;
        std::string spec = "Input:\n";
        for (int i = 0; i <= depth; ++i) {
          bindings["S" + std::to_string(i)] = stores[static_cast<size_t>(i)];
          spec += "  S" + std::to_string(i) + ": store-" +
                  std::to_string(i) + "\n";
        }
        spec += "DXG:\n";
        for (int i = 1; i <= depth; ++i) {
          spec += "  S" + std::to_string(i) + ":\n    v: S" +
                  std::to_string(i - 1) + ".v + 1\n";
        }
        auto dxg = core::Dxg::parse(spec);
        casts.push_back(std::make_unique<core::CastIntegrator>(
            "chain", de, dxg.take(), bindings, options));
      } else {
        for (int i = 1; i <= depth; ++i) {
          std::string spec = "Input:\n  A: store-" + std::to_string(i - 1) +
                             "\n  B: store-" + std::to_string(i) +
                             "\nDXG:\n  B:\n    v: A.v + 1\n";
          auto dxg = core::Dxg::parse(spec);
          casts.push_back(std::make_unique<core::CastIntegrator>(
              "hop-" + std::to_string(i), de, dxg.take(),
              std::map<std::string, de::ObjectStore*>{
                  {"A", stores[static_cast<size_t>(i - 1)]},
                  {"B", stores[static_cast<size_t>(i)]}},
              options));
        }
      }
      for (auto& cast : casts) {
        if (!cast->start().ok()) return -1;
      }
      clock.run_all();
      SimTime t0 = clock.now();
      stores[0]->put("svc", "state", Value::object({{"v", 0}}),
                     [](knactor::common::Result<std::uint64_t>) {});
      clock.run_all();
      const de::StateObject* last = stores[static_cast<size_t>(depth)]->peek("state");
      if (last == nullptr || !last->data ||
          last->data->get("v") == nullptr ||
          last->data->get("v")->as_int() != depth) {
        return -1;
      }
      return to_ms(last->updated_at - t0);
    };
    std::printf("   %-10d %10.1f %10.1f %14.1f\n", depth,
                run(de::ObjectDeProfile::apiserver(), false),
                run(de::ObjectDeProfile::redis(), false),
                run(de::ObjectDeProfile::redis(), true));
  }
  std::printf("   -> per-hop cost is one exchange; a consolidated DXG\n"
              "      (one integrator, last column) resolves the whole chain\n"
              "      in a single pass (§3.3 \"consolidate the state\n"
              "      processing logic\").\n\n");
}

void ablation_fleet_throughput() {
  using namespace knactor;
  std::printf("7. Fan-out composition: N concurrent orders, end-to-end (ms)\n");
  std::printf("   %-10s %12s %14s\n", "orders", "makespan", "ms/order");
  for (int n : {1, 4, 16, 64}) {
    core::Runtime runtime;
    apps::RetailFleetOptions options;
    options.shipment_processing = sim::LatencyModel::normal_ms(446.0, 4.0);
    auto app = apps::build_retail_fleet_app(runtime, options);
    sim::SimTime t0 = runtime.clock().now();
    auto orders = app.place_orders_sync(n);
    if (!orders.ok()) {
      std::fprintf(stderr, "fleet run failed: %s\n",
                   orders.error().to_string().c_str());
      continue;
    }
    double makespan = to_ms(runtime.clock().now() - t0);
    std::printf("   %-10d %12.0f %14.1f\n", n, makespan,
                makespan / static_cast<double>(n));
  }
  std::printf("   -> orders move through the exchange concurrently: the\n"
              "      makespan stays near one shipment time (~450 ms), so\n"
              "      per-order cost amortizes toward zero.\n\n");
}

}  // namespace

int main() {
  std::printf("Design-choice ablations (virtual-clock ms; see DESIGN.md §6)\n\n");
  ablation_backend_and_pushdown();
  ablation_zero_copy();
  ablation_consolidation();
  ablation_watch_vs_poll();
  ablation_chain_depth();
  ablation_fleet_throughput();
  return 0;
}
