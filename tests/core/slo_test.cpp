#include "core/slo.h"

#include <gtest/gtest.h>

namespace knactor::core {
namespace {

class SloTest : public ::testing::Test {
 protected:
  SloTest() : tracer_(clock_) {}

  void record(const std::string& name, double ms) {
    std::uint64_t id = tracer_.begin(name);
    clock_.advance(sim::from_ms(ms));
    tracer_.end(id);
  }

  sim::VirtualClock clock_;
  Tracer tracer_;
};

TEST_F(SloTest, PercentileNearestRank) {
  std::vector<sim::SimTime> xs = {10, 20, 30, 40, 50};
  EXPECT_EQ(SloMonitor::percentile(xs, 50), 30);
  EXPECT_EQ(SloMonitor::percentile(xs, 100), 50);
  EXPECT_EQ(SloMonitor::percentile(xs, 1), 10);
  EXPECT_EQ(SloMonitor::percentile(xs, 99), 50);
  EXPECT_EQ(SloMonitor::percentile({}, 50), 0);
  EXPECT_EQ(SloMonitor::percentile({7}, 99), 7);
}

TEST_F(SloTest, PercentileUnsortedInput) {
  std::vector<sim::SimTime> xs = {50, 10, 40, 20, 30};
  EXPECT_EQ(SloMonitor::percentile(xs, 50), 30);
}

TEST_F(SloTest, MetSlo) {
  for (int i = 0; i < 100; ++i) record("exchange", 5.0);
  SloMonitor monitor(tracer_);
  Slo slo{"exchange", sim::from_ms(10.0), 99.0};
  SloReport report = monitor.evaluate(slo);
  EXPECT_EQ(report.samples, 100u);
  EXPECT_TRUE(report.met);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.p50, sim::from_ms(5.0));
  EXPECT_EQ(report.p99, sim::from_ms(5.0));
}

TEST_F(SloTest, ViolatedSlo) {
  for (int i = 0; i < 95; ++i) record("exchange", 5.0);
  for (int i = 0; i < 5; ++i) record("exchange", 50.0);
  SloMonitor monitor(tracer_);
  SloReport report = monitor.evaluate({"exchange", sim::from_ms(10.0), 99.0});
  EXPECT_FALSE(report.met);  // p99 = 50 ms > 10 ms
  EXPECT_EQ(report.violations, 5u);
  EXPECT_EQ(report.attained, sim::from_ms(50.0));
  EXPECT_EQ(report.p50, sim::from_ms(5.0));
  EXPECT_EQ(report.max, sim::from_ms(50.0));
}

TEST_F(SloTest, PercentileChoiceMatters) {
  for (int i = 0; i < 95; ++i) record("exchange", 5.0);
  for (int i = 0; i < 5; ++i) record("exchange", 50.0);
  SloMonitor monitor(tracer_);
  // The same population meets a p90 target while failing p99.
  EXPECT_TRUE(monitor.evaluate({"exchange", sim::from_ms(10.0), 90.0}).met);
  EXPECT_FALSE(monitor.evaluate({"exchange", sim::from_ms(10.0), 99.0}).met);
}

TEST_F(SloTest, NoSamplesIsVacuouslyMet) {
  SloMonitor monitor(tracer_);
  SloReport report = monitor.evaluate({"ghost", sim::from_ms(1.0), 99.0});
  EXPECT_EQ(report.samples, 0u);
  EXPECT_TRUE(report.met);
}

TEST_F(SloTest, EvaluateAll) {
  record("a", 1.0);
  record("b", 100.0);
  SloMonitor monitor(tracer_);
  monitor.add_slo({"a", sim::from_ms(10.0), 99.0});
  monitor.add_slo({"b", sim::from_ms(10.0), 99.0});
  auto reports = monitor.evaluate_all();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].met);
  EXPECT_FALSE(reports[1].met);
}

TEST_F(SloTest, TextExport) {
  record("cast.pass.retail", 3.0);
  SloMonitor monitor(tracer_);
  monitor.add_slo({"cast.pass.retail", sim::from_ms(10.0), 99.0});
  std::string text = SloMonitor::to_text(monitor.evaluate_all());
  EXPECT_NE(text.find("knactor_slo_latency_ms_p99"), std::string::npos);
  EXPECT_NE(text.find("span=\"cast.pass.retail\""), std::string::npos);
  EXPECT_NE(text.find("knactor_slo_met"), std::string::npos);
}

}  // namespace
}  // namespace knactor::core
