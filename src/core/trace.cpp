#include "core/trace.h"

namespace knactor::core {

std::uint64_t Tracer::begin(const std::string& name, std::uint64_t parent) {
  std::lock_guard lock(mutex_);
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = name;
  span.start = clock_.now();
  span.end = -1;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::annotate(std::uint64_t span_id, const std::string& key,
                      const std::string& value) {
  std::lock_guard lock(mutex_);
  for (auto& span : spans_) {
    if (span.id == span_id) {
      span.attributes[key] = value;
      return;
    }
  }
}

void Tracer::end(std::uint64_t span_id) {
  std::lock_guard lock(mutex_);
  for (auto& span : spans_) {
    if (span.id == span_id) {
      span.end = clock_.now();
      return;
    }
  }
}

std::vector<Span> Tracer::by_name(const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::vector<Span> out;
  for (const auto& span : spans_) {
    if (span.name == name && span.end >= span.start) out.push_back(span);
  }
  return out;
}

std::vector<Span> Tracer::by_attribute(const std::string& key,
                                       const std::string& value) const {
  std::lock_guard lock(mutex_);
  std::vector<Span> out;
  for (const auto& span : spans_) {
    if (span.end < span.start) continue;
    auto it = span.attributes.find(key);
    if (it != span.attributes.end() && it->second == value) {
      out.push_back(span);
    }
  }
  return out;
}

sim::SimTime Tracer::total_duration(const std::string& name) const {
  std::lock_guard lock(mutex_);
  sim::SimTime total = 0;
  for (const auto& span : spans_) {
    if (span.name == name && span.end >= span.start) {
      total += span.duration();
    }
  }
  return total;
}

}  // namespace knactor::core
