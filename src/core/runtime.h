// Runtime: owns the virtual clock and hosts data exchanges, knactors, and
// integrators for one simulated deployment. This is the top-level entry
// point of the public API — see examples/quickstart.cpp.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cast.h"
#include "core/integrator.h"
#include "core/knactor.h"
#include "core/scheduler.h"
#include "core/sync.h"
#include "core/trace.h"
#include "de/log.h"
#include "de/object.h"
#include "de/retention.h"
#include "de/schema.h"
#include "net/network.h"
#include "sim/clock.h"

namespace knactor::core {

/// Bridges a network's chaos fault stream into span/counter telemetry:
/// every injected fault becomes a `chaos.fault` Tracer span and bumps the
/// `chaos.fault` / `chaos.fault.<kind>` Metrics counters. Runtime wires this
/// automatically for its own network; standalone networks (e.g. the RPC
/// baseline apps) can attach it explicitly.
void attach_fault_observer(net::SimNetwork& network, Tracer* tracer,
                           Metrics* metrics);

/// Result of Runtime::run_until_idle. Converts to the executed count so
/// existing `std::size_t n = rt.run_until_idle()` callers keep working;
/// `capped` surfaces whether the max_events safety cap stopped the run
/// with events still pending (previously indistinguishable from idle).
struct RunResult {
  std::size_t executed = 0;
  bool capped = false;
  operator std::size_t() const { return executed; }
};

class Runtime {
 public:
  Runtime() : tracer_(clock_) {}

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] sim::VirtualClock& clock() { return clock_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }

  /// The shard-aware scheduler: configures how many shards each hosted
  /// DE's key space partitions into and how many workers drive shard-local
  /// work between merge barriers. Deterministic: observable behavior is
  /// identical for every shards/workers setting (fixed seed).
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  /// Re-partitions every hosted DE (current and future) into `n` shards.
  void set_shards(std::size_t n);
  /// Sets worker-pool parallelism for shard-local work.
  void set_workers(int n) { scheduler_.set_workers(n); }

  /// Enables record-level lineage on every hosted DE (current and future):
  /// each DE kernel's provenance ring retains up to `capacity` derived-write
  /// records, and integrators start snapshotting the inputs of each write
  /// (see core/causality.h). Capacity 0 disables recording again.
  void enable_lineage(std::size_t capacity = 1024);
  [[nodiscard]] std::size_t lineage_capacity() const {
    return lineage_capacity_;
  }

  /// Creates a named Object DE with the given profile.
  de::ObjectDe& add_object_de(const std::string& name,
                              de::ObjectDeProfile profile);
  [[nodiscard]] de::ObjectDe* object_de(const std::string& name);

  de::LogDe& add_log_de(const std::string& name, de::LogDeProfile profile);
  [[nodiscard]] de::LogDe* log_de(const std::string& name);

  /// Simulated network for API-centric baselines hosted side by side.
  [[nodiscard]] net::SimNetwork& network();

  /// Registers a knactor. The runtime owns it.
  Knactor& add_knactor(std::unique_ptr<Knactor> knactor);
  [[nodiscard]] Knactor* knactor(const std::string& name);

  /// Registers an integrator. The runtime owns it.
  Integrator& add_integrator(std::unique_ptr<Integrator> integrator);
  [[nodiscard]] Integrator* integrator(const std::string& name);
  [[nodiscard]] CastIntegrator* cast(const std::string& name);
  [[nodiscard]] SyncIntegrator* sync(const std::string& name);

  /// Global schema registry (the Externalize step registers here).
  [[nodiscard]] de::SchemaRegistry& schemas() { return schemas_; }

  /// Starts every knactor and integrator.
  common::Status start_all();
  void stop_all();

  /// Drives the clock until no events remain or the max_events safety cap
  /// hits. A capped run logs a warning, bumps the `runtime.run_capped`
  /// metric, and reports `capped = true` on the result.
  RunResult run_until_idle(std::size_t max_events = 1'000'000);
  /// Drives the clock for a fixed sim duration.
  void run_for(sim::SimTime duration);

 private:
  sim::VirtualClock clock_;
  Tracer tracer_;
  Metrics metrics_;
  Scheduler scheduler_;
  std::size_t shards_ = 1;
  std::size_t lineage_capacity_ = 0;  // 0 = lineage off
  de::SchemaRegistry schemas_;
  std::map<std::string, std::unique_ptr<de::ObjectDe>> object_des_;
  std::map<std::string, std::unique_ptr<de::LogDe>> log_des_;
  std::unique_ptr<net::SimNetwork> network_;
  std::vector<std::unique_ptr<Knactor>> knactors_;
  std::vector<std::unique_ptr<Integrator>> integrators_;
};

}  // namespace knactor::core
