// Reusable chaos harness: runs a composition under a seeded FaultPlan and
// checks convergence against the fault-free oracle (§3.3, Fig. 8).
//
// Three pieces:
//   * ChaosHooks / CrashScheduler — map the plan's crash windows onto
//     component-level down/up actions (knactor stop / start+resync, DE
//     crash/recover). Network-level faults (loss, duplication, reorder,
//     flaps, node windows) are injected by SimNetwork itself via
//     set_fault_plan; crash hooks cover the components that exchange
//     through a DE instead of the wire.
//   * Fingerprints — canonical, order-independent serialization of store
//     contents with volatile sequence ids (pay-3, track-7) masked, so a
//     chaos run that needed retries still fingerprints equal to the
//     oracle.
//   * ChaosTrial — the convergence loop: apply plan, run workload, heal
//     (drain + resync + one integrator pass), fingerprint.
#pragma once

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "de/object.h"
#include "sim/clock.h"
#include "sim/fault.h"

namespace knactor::chaos {

// ---------------------------------------------------------------------------
// Crash-window scheduling
// ---------------------------------------------------------------------------

/// Down/up actions for one named chaos target. `down` is invoked at the
/// window start, `up` at the window end; both run as ordinary clock events
/// so they interleave deterministically with the workload.
struct ChaosHooks {
  struct Component {
    std::function<void()> down;
    std::function<void()> up;
  };
  std::map<std::string, Component> components;

  ChaosHooks& add(std::string name, std::function<void()> down,
                  std::function<void()> up) {
    components[std::move(name)] = Component{std::move(down), std::move(up)};
    return *this;
  }
};

/// Schedules every crash window of a plan through the hooks and records a
/// kCrash / kRestart FaultRecord per edge, mirroring what SimNetwork records
/// for wire-level faults. Must outlive the scheduled windows (keep it on the
/// test stack for the whole trial).
class CrashScheduler {
 public:
  CrashScheduler(sim::VirtualClock& clock, ChaosHooks hooks)
      : clock_(clock), hooks_(std::move(hooks)) {}

  CrashScheduler(const CrashScheduler&) = delete;
  CrashScheduler& operator=(const CrashScheduler&) = delete;

  /// Arms all windows whose target has a registered hook. Windows for
  /// unknown targets are counted in `skipped()` instead of silently
  /// vanishing.
  void arm(const sim::FaultPlan& plan) {
    for (const auto& window : plan.crashes) {
      auto it = hooks_.components.find(window.target);
      if (it == hooks_.components.end()) {
        ++skipped_;
        continue;
      }
      const std::string target = window.target;
      const std::string detail = "window [" + std::to_string(window.start) +
                                 "," + std::to_string(window.end) + ")";
      clock_.schedule_at(window.start, [this, target, detail]() {
        auto hook = hooks_.components.find(target);
        if (hook == hooks_.components.end() || !hook->second.down) return;
        hook->second.down();
        records_.push_back(sim::FaultRecord{clock_.now(),
                                            sim::FaultKind::kCrash, target,
                                            "", detail, 0});
      });
      clock_.schedule_at(window.end, [this, target, detail]() {
        auto hook = hooks_.components.find(target);
        if (hook == hooks_.components.end() || !hook->second.up) return;
        hook->second.up();
        records_.push_back(sim::FaultRecord{clock_.now(),
                                            sim::FaultKind::kRestart, target,
                                            "", detail, 0});
      });
    }
  }

  [[nodiscard]] const std::vector<sim::FaultRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t skipped() const { return skipped_; }

 private:
  sim::VirtualClock& clock_;
  ChaosHooks hooks_;
  std::vector<sim::FaultRecord> records_;
  std::size_t skipped_ = 0;
};

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// Masks the numeric suffix of volatile sequence ids: "pay-12" -> "pay-#",
/// "track-3" -> "track-#". A chaos run that retried a payment consumes more
/// sequence numbers than the oracle; the id's *presence* is the invariant,
/// not its value. Everything else passes through untouched.
inline std::string mask_sequence_id(const std::string& s) {
  for (const char* prefix : {"pay-", "track-"}) {
    const std::size_t len = std::string(prefix).size();
    if (s.size() <= len || s.compare(0, len, prefix) != 0) continue;
    if (std::all_of(s.begin() + static_cast<std::ptrdiff_t>(len), s.end(),
                    [](unsigned char c) { return std::isdigit(c) != 0; })) {
      return std::string(prefix) + "#";
    }
  }
  return s;
}

namespace detail {
inline void append_canonical(const common::Value& v, std::string& out) {
  using common::Value;
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kInt:
      out += std::to_string(v.as_int());
      break;
    case Value::Type::kDouble:
      out += std::to_string(v.as_double());
      break;
    case Value::Type::kString:
      out += '"';
      out += mask_sequence_id(v.as_string());
      out += '"';
      break;
    case Value::Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        append_canonical(item, out);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      // Sort keys: insertion order can legitimately differ between a clean
      // run and a chaos run (fields patched in a different interleaving).
      std::vector<const common::OrderedMap::Entry*> entries;
      for (const auto& entry : v.as_object()) entries.push_back(&entry);
      std::sort(entries.begin(), entries.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      out += '{';
      bool first = true;
      for (const auto* entry : entries) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += entry->first;
        out += "\":";
        append_canonical(entry->second, out);
      }
      out += '}';
      break;
    }
  }
}
}  // namespace detail

/// Canonical fingerprint of one value: sorted object keys, masked sequence
/// ids. Equal fingerprints <=> semantically equal state.
inline std::string canonical_fingerprint(const common::Value& v) {
  std::string out;
  detail::append_canonical(v, out);
  return out;
}

/// Fingerprint of a set of stores: every key of every store, sorted, with
/// object versions excluded (a retried write bumps the version without
/// changing the converged state).
inline std::string fingerprint_stores(
    const std::vector<const de::ObjectStore*>& stores) {
  std::string out;
  for (const de::ObjectStore* store : stores) {
    if (store == nullptr) continue;
    out += store->name();
    out += '{';
    std::vector<std::string> keys = store->keys();
    std::sort(keys.begin(), keys.end());
    for (const auto& key : keys) {
      const de::StateObject* obj = store->peek(key);
      if (obj == nullptr || !obj->data) continue;
      out += key;
      out += '=';
      detail::append_canonical(*obj->data, out);
      out += ';';
    }
    out += '}';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fault-schedule serialization (determinism checks)
// ---------------------------------------------------------------------------

/// Serializes a fault schedule to one line per record. Two runs with the
/// same seed must produce byte-identical serializations.
inline std::string serialize_schedule(
    const std::vector<sim::FaultRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += r.to_string();
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Convergence trial
// ---------------------------------------------------------------------------

/// Outcome of one seeded chaos trial.
struct ChaosTrialResult {
  bool workload_completed = false;  // did the order finish during chaos?
  bool converged = false;           // fingerprint equals oracle after heal
  std::string fingerprint;
  std::string schedule;             // serialized fault records (net + crash)
  std::size_t faults_injected = 0;
};

/// Runs one trial: `workload` executes under the armed plan, `heal` drives
/// the system to quiescence after all windows closed, `fingerprint` reads
/// the converged state. The harness itself is composition-agnostic — the
/// retail wiring lives in the test.
struct ChaosTrial {
  std::function<bool()> workload;           // returns "completed during run"
  std::function<void()> heal;               // drain + resync + settle
  std::function<std::string()> fingerprint; // canonical state digest

  ChaosTrialResult run(const std::string& oracle) const {
    ChaosTrialResult result;
    result.workload_completed = workload ? workload() : false;
    if (heal) heal();
    result.fingerprint = fingerprint ? fingerprint() : "";
    result.converged = result.fingerprint == oracle;
    return result;
  }
};

}  // namespace knactor::chaos
