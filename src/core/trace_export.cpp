#include "core/trace_export.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/json.h"
#include "common/value.h"

namespace knactor::core {

using common::Value;

std::map<std::string, StageStat> stage_breakdown(
    const std::vector<Span>& spans) {
  std::map<std::string, StageStat> out;
  for (const auto& span : spans) {
    if (span.end < span.start) continue;  // still open
    auto it = span.attributes.find("stage");
    const std::string stage = it == span.attributes.end() ? "-" : it->second;
    auto& stat = out[stage];
    ++stat.count;
    stat.total += span.duration();
  }
  return out;
}

std::string export_chrome_trace(const std::vector<Span>& spans) {
  Value events = Value::array();
  for (const auto& span : spans) {
    Value ev = Value::object();
    ev.set("name", Value(span.name));
    ev.set("cat", Value("knactor"));
    ev.set("pid", Value(1));
    ev.set("tid", Value(1));
    ev.set("ts", Value(static_cast<std::int64_t>(span.start)));
    if (span.end >= span.start) {
      ev.set("ph", Value("X"));
      ev.set("dur", Value(static_cast<std::int64_t>(span.duration())));
    } else {
      ev.set("ph", Value("B"));  // never closed
    }
    Value args = Value::object();
    args.set("span", Value(static_cast<std::int64_t>(span.id)));
    if (span.parent != 0) {
      args.set("parent", Value(static_cast<std::int64_t>(span.parent)));
    }
    for (const auto& [k, v] : span.attributes) {
      args.set(k, Value(v));
    }
    ev.set("args", std::move(args));
    events.as_array().push_back(std::move(ev));
  }
  Value doc = Value::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Value("ms"));
  return common::to_json_pretty(doc);
}

namespace {

/// Children of each span, in emission order.
std::map<std::uint64_t, std::vector<const Span*>> child_index(
    const std::vector<Span>& spans) {
  std::map<std::uint64_t, std::vector<const Span*>> children;
  for (const auto& span : spans) {
    if (span.parent != 0) children[span.parent].push_back(&span);
  }
  return children;
}

/// The nested-span chain under `span` with the largest summed duration.
std::vector<const Span*> critical_chain(
    const Span& span,
    const std::map<std::uint64_t, std::vector<const Span*>>& children) {
  std::vector<const Span*> best;
  sim::SimTime best_total = -1;
  auto it = children.find(span.id);
  if (it != children.end()) {
    for (const Span* child : it->second) {
      if (child->end < child->start) continue;
      auto chain = critical_chain(*child, children);
      sim::SimTime total = 0;
      for (const Span* s : chain) total += s->duration();
      if (total > best_total) {
        best_total = total;
        best = std::move(chain);
      }
    }
  }
  best.insert(best.begin(), &span);
  return best;
}

}  // namespace

std::string export_text_summary(const std::vector<Span>& spans) {
  std::ostringstream os;

  // Flame table: spans aggregated by name.
  struct NameStat {
    std::uint64_t count = 0;
    sim::SimTime total = 0;
  };
  std::map<std::string, NameStat> by_name;
  for (const auto& span : spans) {
    if (span.end < span.start) continue;
    auto& stat = by_name[span.name];
    ++stat.count;
    stat.total += span.duration();
  }
  os << "spans by name (count, total us, mean us):\n";
  for (const auto& [name, stat] : by_name) {
    os << "  " << name << "  " << stat.count << "  " << stat.total << "  "
       << (stat.count == 0 ? 0 : stat.total / static_cast<sim::SimTime>(
                                                  stat.count))
       << "\n";
  }

  // Per-stage attribution (the paper's Table 2 columns).
  os << "stage breakdown (count, total us, mean us):\n";
  for (const auto& [stage, stat] : stage_breakdown(spans)) {
    os << "  " << stage << "  " << stat.count << "  " << stat.total << "  "
       << static_cast<sim::SimTime>(stat.mean()) << "\n";
  }

  // Subscription deliveries: `sub.deliver` spans carry the subscription
  // id, the delivered-event count, and the filter's observed selectivity;
  // `sub.filter` spans count commits the predicate rejected. Grouping by
  // id turns the span stream into a per-subscriber QoS report.
  struct SubStat {
    std::uint64_t deliveries = 0;
    std::uint64_t events = 0;
    std::uint64_t filtered = 0;
    sim::SimTime total = 0;
    std::string selectivity = "-";  // latest observed value wins
  };
  std::map<std::string, SubStat> subs;
  for (const auto& span : spans) {
    if (span.end < span.start) continue;
    auto sit = span.attributes.find("subscription");
    if (sit == span.attributes.end()) continue;
    auto& stat = subs[sit->second];
    if (span.name == "sub.filter") {
      ++stat.filtered;
      continue;
    }
    if (span.name != "sub.deliver") continue;
    ++stat.deliveries;
    stat.total += span.duration();
    if (auto e = span.attributes.find("events"); e != span.attributes.end()) {
      stat.events += std::strtoull(e->second.c_str(), nullptr, 10);
    }
    if (auto s = span.attributes.find("selectivity");
        s != span.attributes.end()) {
      stat.selectivity = s->second;
    }
  }
  if (!subs.empty()) {
    os << "subscriptions (deliveries, events, filtered, mean us, "
          "selectivity):\n";
    for (const auto& [id, stat] : subs) {
      os << "  sub:" << id << "  " << stat.deliveries << "  " << stat.events
         << "  " << stat.filtered << "  "
         << (stat.deliveries == 0
                 ? 0
                 : stat.total / static_cast<sim::SimTime>(stat.deliveries))
         << "  " << stat.selectivity << "\n";
    }
  }

  // Critical path: the heaviest nested chain under the heaviest root.
  auto children = child_index(spans);
  const Span* root = nullptr;
  sim::SimTime root_total = -1;
  for (const auto& span : spans) {
    if (span.parent != 0 || span.end < span.start) continue;
    sim::SimTime total = 0;
    for (const Span* s : critical_chain(span, children)) total += s->duration();
    if (total > root_total) {
      root_total = total;
      root = &span;
    }
  }
  if (root != nullptr) {
    os << "critical path:\n";
    for (const Span* s : critical_chain(*root, children)) {
      os << "  " << s->name << " (" << s->duration() << "us)";
      auto it = s->attributes.find("stage");
      if (it != s->attributes.end()) os << " [" << it->second << "]";
      os << "\n";
    }
  }
  return os.str();
}

std::string explain(const ProvenanceRing& ring, const std::vector<Span>& spans,
                    const std::string& store, const std::string& key) {
  auto dag = lineage_dag(ring, store, key);
  if (dag.empty()) {
    return "no lineage recorded for " + store + "/" + key +
           " (is provenance enabled?)\n";
  }
  std::ostringstream os;
  os << "derivation of " << store << "/" << key << ":\n";
  os << format_lineage(dag);

  // Per-stage latencies of each producing pass, once per distinct span.
  auto children = child_index(spans);
  std::map<std::uint64_t, const Span*> by_id;
  for (const auto& span : spans) by_id[span.id] = &span;
  std::vector<std::uint64_t> seen;
  for (const auto& node : dag) {
    if (node.producer == nullptr || node.producer->span_id == 0) continue;
    const std::uint64_t id = node.producer->span_id;
    if (std::find(seen.begin(), seen.end(), id) != seen.end()) continue;
    seen.push_back(id);
    auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    const Span& pass = *it->second;
    os << "stage latencies of " << pass.name << " (span " << pass.id;
    if (pass.end >= pass.start) os << ", " << pass.duration() << "us";
    // A `sub.deliver` producer names the subscription and its observed
    // filter selectivity — the delivery hop's identity, not a stage.
    if (auto ait = pass.attributes.find("subscription");
        ait != pass.attributes.end()) {
      os << ", subscription " << ait->second;
      if (auto sel = pass.attributes.find("selectivity");
          sel != pass.attributes.end()) {
        os << ", selectivity " << sel->second;
      }
    }
    os << "):\n";
    auto cit = children.find(pass.id);
    if (cit != children.end()) {
      for (const Span* child : cit->second) {
        if (child->end < child->start) continue;
        auto sit = child->attributes.find("stage");
        os << "  " << (sit == child->attributes.end() ? "-" : sit->second)
           << "  " << child->name << "  " << child->duration() << "us\n";
      }
    }
  }
  return os.str();
}

}  // namespace knactor::core
