#include "net/network.h"

#include "common/json.h"
#include "common/logging.h"

namespace knactor::net {

using common::Error;
using common::Result;

void SimNetwork::add_node(const std::string& name) { nodes_.insert(name); }

bool SimNetwork::has_node(const std::string& name) const {
  return nodes_.count(name) != 0;
}

void SimNetwork::set_handler(const std::string& node, const std::string& type,
                             Handler handler) {
  handlers_[node][type] = std::move(handler);
}

void SimNetwork::set_link_latency(const std::string& src,
                                  const std::string& dst,
                                  sim::LatencyModel model) {
  links_[{src, dst}] = model;
}

void SimNetwork::set_partitioned(const std::string& a, const std::string& b,
                                 bool partitioned) {
  if (partitioned) {
    partitions_.insert({a, b});
    partitions_.insert({b, a});
  } else {
    partitions_.erase({a, b});
    partitions_.erase({b, a});
  }
}

sim::SimTime SimNetwork::link_delay(const std::string& src,
                                    const std::string& dst,
                                    std::size_t bytes) {
  sim::SimTime delay = 0;
  auto it = links_.find({src, dst});
  if (it != links_.end()) {
    delay = it->second.sample(rng_);
  } else if (src != dst) {
    delay = default_latency_.sample(rng_);
  }
  if (bytes_per_sec_ > 0 && bytes > 0) {
    delay += static_cast<sim::SimTime>(
        static_cast<double>(bytes) / static_cast<double>(bytes_per_sec_) *
        static_cast<double>(sim::kSecond));
  }
  return delay;
}

Result<std::uint64_t> SimNetwork::send(Message msg) {
  if (!has_node(msg.src)) {
    return Error::not_found("network: unknown source node '" + msg.src + "'");
  }
  if (!has_node(msg.dst)) {
    return Error::not_found("network: unknown destination node '" + msg.dst +
                            "'");
  }
  msg.id = next_id_++;
  if (msg.bytes == 0) {
    // Estimate the encoded size from the JSON form; the wire codec gives an
    // exact size when the caller pre-encodes.
    msg.bytes = common::to_json(msg.payload).size() + msg.type.size() + 16;
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += msg.bytes;

  if (partitions_.count({msg.src, msg.dst}) != 0) {
    ++stats_.messages_dropped;
    KN_DEBUG << "net: dropped (partition) " << msg.src << " -> " << msg.dst;
    return msg.id;
  }

  sim::SimTime delay = link_delay(msg.src, msg.dst, msg.bytes);
  std::uint64_t id = msg.id;
  clock_.schedule_after(delay, [this, msg = std::move(msg)]() {
    auto node_it = handlers_.find(msg.dst);
    if (node_it != handlers_.end()) {
      auto type_it = node_it->second.find(msg.type);
      if (type_it == node_it->second.end()) {
        type_it = node_it->second.find("");  // catch-all
      }
      if (type_it != node_it->second.end() && type_it->second) {
        ++stats_.messages_delivered;
        type_it->second(msg);
        return;
      }
    }
    ++stats_.messages_dropped;
    KN_DEBUG << "net: dropped (no handler) " << msg.src << " -> " << msg.dst
             << " type=" << msg.type;
  });
  return id;
}

}  // namespace knactor::net
