// Online-retail app artifacts: data-store schemas (Fig. 5 verbatim for
// Checkout) and the composition DXG (Fig. 6 verbatim, plus the extended
// full-app DXG covering all 11 knactors). These strings are both live
// configuration (parsed and executed by the knactor retail app) and the
// Table 1 measurement artifacts.
#pragma once

namespace knactor::apps {

/// Fig. 5: schema of the Checkout knactor's data store.
inline constexpr const char* kCheckoutSchema = R"(schema: OnlineRetail/v1/Checkout/Order
items: object
address: string
cost: number
shippingCost: number # +kr: external
totalCost: number
currency: string
paymentID: string # +kr: external
trackingID: string # +kr: external
status: string
email: string
)";

inline constexpr const char* kShippingSchema = R"(schema: OnlineRetail/v1/Shipping/Shipment
items: list # +kr: external
addr: string # +kr: external
method: string # +kr: external
quote: object
id: string
)";

inline constexpr const char* kPaymentSchema = R"(schema: OnlineRetail/v1/Payment/Charge
amount: number # +kr: external
currency: string # +kr: external
id: string
)";

inline constexpr const char* kEmailSchema = R"(schema: OnlineRetail/v1/Email/Notification
recipient: string # +kr: external
trackingID: string # +kr: external
sent: bool
)";

inline constexpr const char* kRecommendationSchema = R"(schema: OnlineRetail/v1/Recommendation/Profile
lastItems: list # +kr: external
suggestions: list
)";

inline constexpr const char* kAdSchema = R"(schema: OnlineRetail/v1/Ad/Context
keywords: list # +kr: external
creative: string
)";

inline constexpr const char* kInventorySchema = R"(schema: OnlineRetail/v1/Inventory/Ledger
lastOrder: list # +kr: external
applied: bool
)";

inline constexpr const char* kCartSchema = R"(schema: OnlineRetail/v1/Cart/Cart
items: object
userID: string
)";

inline constexpr const char* kCatalogSchema = R"(schema: OnlineRetail/v1/Catalog/Products
products: object
)";

inline constexpr const char* kCurrencySchema = R"(schema: OnlineRetail/v1/Currency/Rates
rates: object
)";

inline constexpr const char* kFrontendSchema = R"(schema: OnlineRetail/v1/Frontend/Session
userID: string
orderStatus: string # +kr: external
)";

/// Fig. 6: the DXG for the integrator in the online retail web app,
/// reproduced verbatim (T1+T2 applied).
inline constexpr const char* kRetailDxg = R"(Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
  P: OnlineRetail/v1/Payment/knactor-payment
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    paymentID: P.id
    trackingID: S.id
  P:
    # other fields in the data store: id
    amount: C.order.totalCost
    currency: C.order.currency
  S:
    # other fields in the data store: id, quote
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
)";

/// T1 baseline (before composing anything): only Checkout is declared and
/// no cross-service mappings exist yet.
inline constexpr const char* kRetailDxgBase = R"(Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
DXG:
)";

/// Extended DXG used by the full 11-knactor example: Fig. 6 plus email,
/// recommendation, ad, inventory, and frontend-status mappings.
inline constexpr const char* kRetailDxgFull = R"(Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
  P: OnlineRetail/v1/Payment/knactor-payment
  E: OnlineRetail/v1/Email/knactor-email
  R: OnlineRetail/v1/Recommendation/knactor-recommendation
  A: OnlineRetail/v1/Ad/knactor-ad
  I: OnlineRetail/v1/Inventory/knactor-inventory
  F: OnlineRetail/v1/Frontend/knactor-frontend
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    paymentID: P.id
    trackingID: S.id
  P:
    amount: C.order.totalCost
    currency: C.order.currency
  S:
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
  E:
    recipient: C.order.email
    trackingID: C.order.trackingID
  R:
    lastItems: '[item.name for item in C.order.items]'
  A:
    keywords: '[item.name for item in C.order.items]'
  I:
    lastOrder: >
      [{"name": item.name, "qty": item.qty} for item in C.order.items]
  F:
    orderStatus: C.order.status
)";

}  // namespace knactor::apps
