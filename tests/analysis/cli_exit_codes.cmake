# CI exit-code contract for knctl analyze/lint:
#   0 = clean (warnings allowed), 1 = findings, 2 = unusable input.
#
# Usage: cmake -DKNCTL=<path> -DSPECS=<dir> -DFIXTURES=<dir> -P cli_exit_codes.cmake
cmake_minimum_required(VERSION 3.16)
foreach(var KNCTL SPECS FIXTURES)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(scratch ${CMAKE_CURRENT_BINARY_DIR}/knctl_exit_scratch)
file(MAKE_DIRECTORY ${scratch})

function(expect_rc label want)
  execute_process(COMMAND ${ARGN}
                  OUTPUT_VARIABLE out ERROR_VARIABLE out
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${want})
    message(FATAL_ERROR "${label}: expected exit ${want}, got ${rc}\n${out}")
  endif()
  message(STATUS "${label}: exit ${rc} as expected")
endfunction()

# --- clean inputs -> 0 -------------------------------------------------------
expect_rc("analyze clean" 0
  ${KNCTL} analyze ${SPECS}/retail_dxg.yaml)
expect_rc("lint clean" 0
  ${KNCTL} lint ${SPECS}/retail_dxg.yaml
          --schema ${SPECS}/checkout_schema.yaml
          --schema ${SPECS}/shipping_schema.yaml
          --schema ${SPECS}/payment_schema.yaml)

# --- findings -> 1 -----------------------------------------------------------
file(WRITE ${scratch}/dangling.yaml
  "Input:\n  C: some/store\nDXG:\n  C:\n    a: Z.b\n")
expect_rc("analyze with issues" 1
  ${KNCTL} analyze ${scratch}/dangling.yaml)
expect_rc("lint with issues" 1
  ${KNCTL} lint ${scratch}/dangling.yaml)

# --- unusable input -> 2 -----------------------------------------------------
file(WRITE ${scratch}/garbage.yaml "- just\n- a\n- sequence\n")
expect_rc("analyze unparsable" 2
  ${KNCTL} analyze ${scratch}/garbage.yaml)
expect_rc("lint unparsable" 2
  ${KNCTL} lint ${scratch}/garbage.yaml)
expect_rc("lint missing file" 2
  ${KNCTL} lint ${scratch}/no_such_file.yaml)
expect_rc("lint bad schema file" 2
  ${KNCTL} lint ${SPECS}/retail_dxg.yaml --schema ${scratch}/garbage.yaml)

# --- json output stays well-formed and drives the same exit codes ------------
execute_process(COMMAND ${KNCTL} analyze ${scratch}/dangling.yaml --format json
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 1 OR NOT out MATCHES "\"code\": \"KN001\"")
  message(FATAL_ERROR "analyze --format json: rc=${rc} out:\n${out}")
endif()
execute_process(COMMAND ${KNCTL} lint ${scratch}/dangling.yaml --format json
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 1 OR NOT out MATCHES "\"diagnostics\"")
  message(FATAL_ERROR "lint --format json: rc=${rc} out:\n${out}")
endif()
message(STATUS "json smoke OK")
