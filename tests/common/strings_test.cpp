#include "common/strings.h"

#include <gtest/gtest.h>

namespace knactor::common {
namespace {

TEST(Strings, SplitBasic) {
  EXPECT_EQ(split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, SplitPreservesEmptySegments) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n x \n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("inner space"), "inner space");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foobar", "bar"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, CountSlocSkipsBlanksAndComments) {
  const char* text =
      "line1\n"
      "\n"
      "  # a comment\n"
      "// also a comment\n"
      "line2\n"
      "   \t \n"
      "line3";
  EXPECT_EQ(count_sloc(text), 3u);
}

TEST(Strings, CountSlocEmpty) {
  EXPECT_EQ(count_sloc(""), 0u);
  EXPECT_EQ(count_sloc("\n\n"), 0u);
  EXPECT_EQ(count_sloc("# only\n# comments"), 0u);
}

TEST(Strings, CountLinesContaining) {
  const char* text = "def HandleA\nx = 1\ndef HandleB\n";
  EXPECT_EQ(count_lines_containing(text, "def Handle"), 2u);
  EXPECT_EQ(count_lines_containing(text, "zzz"), 0u);
}

}  // namespace
}  // namespace knactor::common
