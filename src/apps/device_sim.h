// IoT device simulator — the Digibox analog (the paper adapts its smart-
// home app "from an open-source IoT app simulator" [45]). Devices run on
// the virtual clock and interact with the world exclusively through their
// knactor's stores: sensors write readings, actuators apply config state.
//
// An OccupancyPattern drives a motion sensor through a day: a sequence of
// (enter, leave) intervals; the sensor samples every `period` and reports
// `triggered` transitions into its Object store (current state) and Log
// pool (history), exactly as SmartHomeKnactorApp::trigger_motion does by
// hand.
#pragma once

#include <string>
#include <vector>

#include "de/log.h"
#include "de/object.h"
#include "sim/clock.h"
#include "sim/random.h"

namespace knactor::apps {

/// Occupancy schedule: the room is occupied during [enter, leave) windows
/// (sim time offsets within a day).
struct OccupancyPattern {
  struct Window {
    sim::SimTime enter = 0;
    sim::SimTime leave = 0;
  };
  std::vector<Window> windows;

  [[nodiscard]] bool occupied_at(sim::SimTime t) const;

  /// A typical weekday: 06:30-08:30 morning, 18:00-23:00 evening.
  static OccupancyPattern weekday();
  /// Always-off (vacation) and always-on (party) edge cases.
  static OccupancyPattern empty();
  static OccupancyPattern always();
};

/// A simulated motion sensor bound to a knactor's stores.
class MotionSensorSim {
 public:
  struct Options {
    sim::SimTime period = 30 * sim::kSecond;
    /// Probability a sample misreads (flaky sensor), in [0,1).
    double flake_rate = 0.0;
    std::uint64_t seed = 97;
  };

  MotionSensorSim(sim::VirtualClock& clock, de::ObjectStore& store,
                  de::LogPool* pool, OccupancyPattern pattern,
                  Options options);
  /// Default options.
  MotionSensorSim(sim::VirtualClock& clock, de::ObjectStore& store,
                  de::LogPool* pool, OccupancyPattern pattern);

  /// Starts periodic sampling; each sample writes `triggered` into the
  /// Object store (patch) and appends a reading to the Log pool.
  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::size_t samples_taken() const { return samples_; }
  [[nodiscard]] std::size_t transitions() const { return transitions_; }

 private:
  void sample();

  sim::VirtualClock& clock_;
  de::ObjectStore& store_;
  de::LogPool* pool_;
  OccupancyPattern pattern_;
  Options options_;
  sim::Rng rng_;
  bool running_ = false;
  bool last_reported_ = false;
  bool have_reported_ = false;
  std::size_t samples_ = 0;
  std::size_t transitions_ = 0;
};

}  // namespace knactor::apps
