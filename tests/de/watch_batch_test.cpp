// Coalesced watch delivery (ObjectStore::watch_batch): a window of commits
// arrives as one WatchBatch, per-key updates coalesce, and — the ordering
// regression this suite pins down — a delete that follows a modify of the
// same key within one window is neither reordered before other keys'
// earlier events nor dropped.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "de/object.h"
#include "sim/clock.h"

namespace knactor::de {
namespace {

using common::Value;

class WatchBatchTest : public ::testing::Test {
 protected:
  WatchBatchTest() : de_(clock_, ObjectDeProfile::instant()) {
    store_ = &de_.create_store("things");
  }

  Value obj(int n) {
    Value v = Value::object();
    v.set("n", Value(static_cast<std::int64_t>(n)));
    return v;
  }

  sim::VirtualClock clock_;
  ObjectDe de_;
  ObjectStore* store_ = nullptr;
  std::vector<WatchBatch> batches_;
};

constexpr sim::SimTime kWindow = 10 * sim::kMillisecond;

TEST_F(WatchBatchTest, BurstArrivesAsOneBatch) {
  std::uint64_t id = store_->watch_batch(
      "svc", "", kWindow,
      [this](const WatchBatch& b) { batches_.push_back(b); });
  ASSERT_NE(id, 0u);
  (void)store_->put_sync("svc", "a", obj(1));
  (void)store_->put_sync("svc", "b", obj(2));
  (void)store_->put_sync("svc", "c", obj(3));
  clock_.run_all();

  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0].events.size(), 3u);
  EXPECT_EQ(batches_[0].commits, 3u);
  EXPECT_EQ(de_.stats().watch_batches, 1u);
  EXPECT_EQ(de_.stats().watch_events, 3u);
  EXPECT_EQ(de_.stats().watch_batch_sizes.count(), 1u);
  EXPECT_EQ(de_.stats().watch_batch_sizes.max(), 3u);
}

TEST_F(WatchBatchTest, SameKeyCoalescesToLatestPayload) {
  store_->watch_batch("svc", "", kWindow,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "k", obj(1));
  (void)store_->put_sync("svc", "k", obj(2));
  (void)store_->put_sync("svc", "k", obj(3));
  clock_.run_all();

  ASSERT_EQ(batches_.size(), 1u);
  ASSERT_EQ(batches_[0].events.size(), 1u);
  EXPECT_EQ(batches_[0].commits, 3u);
  // An object the watcher has never seen stays kAdded through modifies,
  // carrying the newest payload.
  EXPECT_EQ(batches_[0].events[0].type, WatchEventType::kAdded);
  EXPECT_EQ(batches_[0].events[0].object.data->get("n")->as_int(), 3);
  EXPECT_EQ(de_.stats().watch_events_coalesced, 2u);
}

TEST_F(WatchBatchTest, DeleteAfterModifySurvivesInOrder) {
  // Satellite regression: key exists before the window; within the window
  // it is modified then deleted while another key changes in between. The
  // delete must not vanish and must stay AFTER the other key's event.
  (void)store_->put_sync("svc", "victim", obj(0));
  clock_.run_all();

  store_->watch_batch("svc", "", kWindow,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "victim", obj(1));   // modify
  (void)store_->put_sync("svc", "other", obj(2));    // unrelated commit
  ASSERT_TRUE(store_->remove_sync("svc", "victim").ok());
  clock_.run_all();

  ASSERT_EQ(batches_.size(), 1u);
  const auto& events = batches_[0].events;
  ASSERT_EQ(events.size(), 2u);
  // Flush orders by each key's LATEST commit: other (commit 2) before
  // victim's delete (commit 3).
  EXPECT_EQ(events[0].object.key, "other");
  EXPECT_EQ(events[1].object.key, "victim");
  EXPECT_EQ(events[1].type, WatchEventType::kDeleted);
}

TEST_F(WatchBatchTest, DeleteThenRecreateNetsToModified) {
  (void)store_->put_sync("svc", "k", obj(1));
  clock_.run_all();
  store_->watch_batch("svc", "", kWindow,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  ASSERT_TRUE(store_->remove_sync("svc", "k").ok());
  (void)store_->put_sync("svc", "k", obj(2));
  clock_.run_all();

  ASSERT_EQ(batches_.size(), 1u);
  ASSERT_EQ(batches_[0].events.size(), 1u);
  // The object still exists with new data: a watcher that never saw the
  // intermediate delete observes one modification.
  EXPECT_EQ(batches_[0].events[0].type, WatchEventType::kModified);
  EXPECT_EQ(batches_[0].events[0].object.data->get("n")->as_int(), 2);
}

TEST_F(WatchBatchTest, ZeroWindowDeliversPerCommitBatches) {
  store_->watch_batch("svc", "", 0,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "a", obj(1));
  clock_.run_all();
  (void)store_->put_sync("svc", "b", obj(2));
  clock_.run_all();

  ASSERT_EQ(batches_.size(), 2u);
  EXPECT_EQ(batches_[0].events.size(), 1u);
  EXPECT_EQ(batches_[1].events.size(), 1u);
}

TEST_F(WatchBatchTest, SeparateWindowsSeparateBatches) {
  store_->watch_batch("svc", "", kWindow,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "a", obj(1));
  clock_.run_all();  // flush window 1
  (void)store_->put_sync("svc", "a", obj(2));
  clock_.run_all();  // flush window 2

  ASSERT_EQ(batches_.size(), 2u);
  EXPECT_EQ(batches_[0].events[0].type, WatchEventType::kAdded);
  EXPECT_EQ(batches_[1].events[0].type, WatchEventType::kModified);
}

TEST_F(WatchBatchTest, UnwatchDropsBufferedEvents) {
  std::uint64_t id = store_->watch_batch(
      "svc", "", kWindow,
      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "a", obj(1));
  store_->unwatch(id);
  clock_.run_all();
  EXPECT_TRUE(batches_.empty());
}

TEST_F(WatchBatchTest, PrefixFilters) {
  store_->watch_batch("svc", "order/", kWindow,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "order/1", obj(1));
  (void)store_->put_sync("svc", "draft/1", obj(2));
  clock_.run_all();
  ASSERT_EQ(batches_.size(), 1u);
  ASSERT_EQ(batches_[0].events.size(), 1u);
  EXPECT_EQ(batches_[0].events[0].object.key, "order/1");
}

TEST_F(WatchBatchTest, PayloadIsSharedZeroCopy) {
  store_->watch_batch("svc", "", kWindow,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "a", obj(1));
  clock_.run_all();
  ASSERT_EQ(batches_.size(), 1u);
  // Without RBAC field filtering the delivered payload aliases the stored
  // buffer — no deep copy on the batch path.
  EXPECT_EQ(batches_[0].events[0].object.data.get(),
            store_->peek("a")->data.get());
}

TEST_F(WatchBatchTest, BatchAndPerEventWatchesCoexist) {
  std::vector<WatchEvent> singles;
  store_->watch("svc", "", [&](const WatchEvent& e) { singles.push_back(e); });
  store_->watch_batch("svc", "", kWindow,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  (void)store_->put_sync("svc", "a", obj(1));
  (void)store_->put_sync("svc", "a", obj(2));
  clock_.run_all();
  EXPECT_EQ(singles.size(), 2u);  // per-event path unchanged
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0].events.size(), 1u);
}

TEST_F(WatchBatchTest, TransactionCommitsArriveInOneBatch) {
  store_->watch_batch("svc", "", kWindow,
                      [this](const WatchBatch& b) { batches_.push_back(b); });
  std::vector<ObjectDe::TxnOp> ops;
  for (int i = 0; i < 3; ++i) {
    ObjectDe::TxnOp op;
    op.store = "things";
    op.key = "t" + std::to_string(i);
    op.data = obj(i);
    ops.push_back(std::move(op));
  }
  ASSERT_TRUE(de_.transact_sync("svc", std::move(ops)).ok());
  clock_.run_all();
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0].events.size(), 3u);
}

}  // namespace
}  // namespace knactor::de
